// Determinism suite for the pass-structured compiler: worker count, compile
// order, and the persistent disk cache must all be invisible in the
// compiled artifact. Each case compiles real zoo models (resnet18,
// bert-base) and compares full Compiled values with reflect.DeepEqual —
// bit-identical or bust. Run under -race with varying GOMAXPROCS to stress
// the fan-out (see Makefile's `check` target).
package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/service"
	"repro/internal/service/cache"
	"repro/internal/service/modelzoo"
)

// determinismModels are the compile workloads: a conv net and a transformer,
// shrunk where the shape does not change code paths (bert sequence length).
var determinismModels = []modelzoo.Spec{
	{Model: "resnet18", Batch: 1},
	{Model: "bert-base", Seq: 64},
}

func buildModel(t *testing.T, spec modelzoo.Spec) *graph.Graph {
	t.Helper()
	g, err := modelzoo.BuildGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCompileDeterminismAcrossWorkers: serial (Workers=1) and wide
// (Workers=8) compilation of the same model must produce identical
// Compiled values, including kernel programs and TOG latencies.
func TestCompileDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: repeated full compiles, ~1s (DESIGN.md \"Test tiers\")")
	}
	for _, spec := range determinismModels {
		t.Run(spec.Model, func(t *testing.T) {
			g := buildModel(t, spec)

			serial := compiler.New(npu.TPUv3Config(), compiler.DefaultOptions())
			serial.Workers = 1
			want, err := serial.Compile(g)
			if err != nil {
				t.Fatal(err)
			}

			parallel := compiler.New(npu.TPUv3Config(), compiler.DefaultOptions())
			parallel.Workers = 8
			got, err := parallel.Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("parallel compilation differs from serial")
			}
			if serial.MeasureCount() != parallel.MeasureCount() {
				t.Fatalf("measurement counts differ: serial %d, parallel %d",
					serial.MeasureCount(), parallel.MeasureCount())
			}
		})
	}
}

// TestCompileWarmDiskIdentical: a compile against a pre-warmed disk cache
// must measure zero kernels and still produce a bit-identical artifact.
func TestCompileWarmDiskIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: cold+warm disk-cache compiles, ~1s (DESIGN.md \"Test tiers\")")
	}
	for _, spec := range determinismModels {
		t.Run(spec.Model, func(t *testing.T) {
			g := buildModel(t, spec)
			dir := t.TempDir()

			coldSim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
			disk, err := cache.NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			coldSim.AttachStore(disk)
			want, err := coldSim.Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			if coldSim.Compiler.MeasureCount() == 0 {
				t.Fatal("cold compile measured nothing")
			}

			// Fresh process simulation: new simulator, new store handle on the
			// same directory.
			warmSim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
			disk2, err := cache.NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			warmSim.AttachStore(disk2)
			got, err := warmSim.Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			if n := warmSim.Compiler.MeasureCount(); n != 0 {
				t.Fatalf("warm compile re-measured %d kernels", n)
			}
			if hits, _ := warmSim.DiskStats(); hits == 0 {
				t.Fatal("warm compile never hit the disk store")
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("warm-disk compilation differs from cold")
			}
		})
	}
}

// TestCorruptDiskEntryRecompiles: flipping bytes in every persisted cache
// file must degrade to a clean cold compile — same artifact, fresh
// measurements, no error.
func TestCorruptDiskEntryRecompiles(t *testing.T) {
	spec := determinismModels[0]
	g := buildModel(t, spec)
	dir := t.TempDir()

	coldSim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
	disk, err := cache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldSim.AttachStore(disk)
	want, err := coldSim.Compile(g)
	if err != nil {
		t.Fatal(err)
	}

	corrupted := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0xff
		corrupted++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("cold compile persisted nothing to corrupt")
	}

	recSim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
	disk2, err := cache.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	recSim.AttachStore(disk2)
	got, err := recSim.Compile(g)
	if err != nil {
		t.Fatalf("compile against corrupted cache: %v", err)
	}
	if recSim.Compiler.MeasureCount() == 0 {
		t.Fatal("corrupted entry was trusted: no kernels re-measured")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("recompile after corruption differs from the original")
	}
	if _, misses := recSim.DiskStats(); misses == 0 {
		t.Fatal("corrupted entry did not register as a store miss")
	}
}

// TestServiceCacheWarmRestart exercises the daemon path: a fresh service
// compile cache over a pre-warmed disk directory (a restarted ptsimd) must
// serve the same compilation without a single new measurement.
func TestServiceCacheWarmRestart(t *testing.T) {
	spec := determinismModels[1]
	dir := t.TempDir()
	cfg := npu.TPUv3Config()
	opts := compiler.DefaultOptions()
	build := func() (*graph.Graph, error) { return modelzoo.BuildGraph(spec) }
	key := service.CompileKey(spec, cfg, opts)

	run := func() (*compiler.Compiled, int64) {
		disk, err := cache.NewDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		cc := service.NewCache()
		cc.SetStore(cache.NewLayered(cache.NewMemory(), disk))
		var built *compiler.Compiler
		cc.SetCompilerHook(func(c *compiler.Compiler) { built = c })
		comp, hit, err := cc.Compile(key, cfg, opts, build)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("first compile in a fresh cache reported a hit")
		}
		if built == nil {
			t.Fatal("compiler hook never ran")
		}
		return comp, built.MeasureCount()
	}

	first, coldMeasured := run()
	if coldMeasured == 0 {
		t.Fatal("cold service compile measured nothing")
	}
	second, warmMeasured := run()
	if warmMeasured != 0 {
		t.Fatalf("restarted service re-measured %d kernels", warmMeasured)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("compilation after service restart differs")
	}
}
