// Command experiments regenerates the paper's evaluation tables and
// figures (Fig. 5-10 plus the §5.1 sparse validation) on the TPUv3-like
// configuration.
//
// Usage:
//
//	experiments -fig all            # everything, full scale
//	experiments -fig 5 -quick       # one figure, scaled-down workloads
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/npu"
)

type figure struct {
	name string
	desc string
	run  func(cfg npu.Config, quick bool) (fmt.Stringer, error)
}

func figures() []figure {
	return []figure{
		{"5", "simulation accuracy vs detailed reference", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig5(c, q) }},
		{"6", "simulation speed (TLS vs ILS vs baselines)", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig6(c, q) }},
		{"7a", "heterogeneous dense-sparse NPU", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig7a(c, q) }},
		{"7b", "multi-model tenancy", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig7b(c, q) }},
		{"8a", "fine-grained DMA", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig8a(c, q) }},
		{"8b", "conv tiling, batch 1", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig8b(c, q) }},
		{"8c", "conv tiling, small input channels", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig8c(c, q) }},
		{"9", "chiplet NPU scheduling", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig9(c, q) }},
		{"10", "training batch-size study", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.Fig10(c, q) }},
		{"sparseval", "§5.1 sparse-core TLS validation", func(c npu.Config, q bool) (fmt.Stringer, error) { return exp.SparseValidation(c, q) }},
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (5, 6, 7a, 7b, 8a, 8b, 8c, 9, 10, sparseval, all)")
	quick := flag.Bool("quick", false, "scaled-down workloads for fast runs")
	small := flag.Bool("small", false, "use the small test NPU config instead of TPUv3")
	list := flag.Bool("list", false, "list available figures")
	flag.Parse()

	if *list {
		for _, f := range figures() {
			fmt.Printf("%-10s %s\n", f.name, f.desc)
		}
		return
	}
	cfg := npu.TPUv3Config()
	if *small {
		cfg = npu.SmallConfig()
	}
	ran := false
	for _, f := range figures() {
		if *fig != "all" && *fig != f.name {
			continue
		}
		ran = true
		fmt.Printf("=== Figure %s: %s ===\n", f.name, f.desc)
		start := time.Now()
		res, err := f.run(cfg, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(driver wall-clock: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(1)
	}
}
