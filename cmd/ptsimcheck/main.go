// Command ptsimcheck is the cross-simulator differential checker: it
// generates seeded random workloads (kernel shapes, model fragments, NPU
// configurations, compiler options) and holds every simulator in the
// repository against the others — ILS vs TLS cycle agreement (the paper's
// §3.8 determinism claim), funcsim numerics vs the host reference, and the
// bit-identical metamorphic invariants (event vs strict engine, serial vs
// parallel compile, cold vs warm artifact store, plain vs instrumented
// runs). A divergence is shrunk to a minimal case and written as a JSON
// repro replayable with -replay, turning any disagreement into a
// one-command bug report.
//
// Usage:
//
//	ptsimcheck -seed 1 -n 200            # the standing gate
//	ptsimcheck -replay repro.json        # re-run a recorded divergence
//	ptsimcheck -seed 1 -n 20 -fault      # self-test: inject a ±1-cycle
//	                                     # latency fault; MUST be detected
//	ptsimcheck -seed 1 -n 20 -fault-engine  # self-test: corrupt the parallel
//	                                        # engine barrier; MUST be detected
//	ptsimcheck -fleet -seed 1            # 1-node vs 3-node fleet bit-identity
//	ptsimcheck -fault-fleet              # self-test: corrupt one member's
//	                                     # response; MUST be detected
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/crosscheck"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptsimcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "generation stream seed")
	n := flag.Int("n", 200, "number of cases to generate and check")
	replay := flag.String("replay", "", "replay a recorded repro JSON file instead of generating")
	serveCheck := flag.Bool("serve", false, "run the serve-determinism oracle (same seed twice, serial vs parallel engine) instead of the case generator")
	topoCheck := flag.Bool("topo", false, "run the topology-parallel oracle (data/tensor-parallel numerics vs single-core funcsim + engine bit-identity on multi-package fabrics) instead of the case generator")
	fleetCheck := flag.Bool("fleet", false, "run the fleet-determinism oracle (seeded mixed batch through a 1-node service vs a 3-node sharded fleet, bit-identical JobResults) instead of the case generator")
	faultFleet := flag.Bool("fault-fleet", false, "self-test: corrupt one fleet member's response; the run SUCCEEDS only if the fleet oracle detects it (implies -fleet)")
	fault := flag.Bool("fault", false, "self-test: perturb one tile latency by +1 cycle after every compile; the run SUCCEEDS only if an oracle detects it")
	faultEngine := flag.Bool("fault-engine", false, "self-test: corrupt the parallel engine's barrier ordering; the run SUCCEEDS only if the serial-vs-parallel oracle detects it")
	out := flag.String("out", ".", "directory for divergence repro files")
	verbose := flag.Bool("v", false, "log every generated case")
	flag.Parse()

	ck := &crosscheck.Checker{}
	if *verbose {
		ck.Log = os.Stderr
	}
	if *fault {
		ck.Fault = crosscheck.PerturbTileLatency(1)
	}
	ck.EngineFault = *faultEngine
	faulted := *fault || *faultEngine

	if *replay != "" {
		return runReplay(ck, *replay)
	}
	if *serveCheck {
		start := time.Now()
		if err := crosscheck.CheckServe(int64(*seed)); err != nil {
			return err
		}
		fmt.Printf("ok: serve-determinism (seed %d, replay + serial-vs-parallel) in %v\n",
			*seed, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *fleetCheck || *faultFleet {
		start := time.Now()
		if err := crosscheck.CheckFleet(int64(*seed), *faultFleet); err != nil {
			return err
		}
		if *faultFleet {
			fmt.Printf("fault-injection self-test passed: the fleet oracle caught the corrupted member response (seed %d) in %v\n",
				*seed, time.Since(start).Round(time.Millisecond))
			return nil
		}
		fmt.Printf("ok: fleet-determinism (seed %d, 1-node vs 3-node sharded fleet, mixed batch incl. serve + pkg2-tensor) in %v\n",
			*seed, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *topoCheck {
		start := time.Now()
		if err := crosscheck.CheckTopology(*seed, *n); err != nil {
			return err
		}
		fmt.Printf("ok: topology-parallel (%d cases, data/tensor over pkg2+mesh, funcsim numerics + engine bit-identity) in %v\n",
			*n, time.Since(start).Round(time.Millisecond))
		return nil
	}

	start := time.Now()
	fail, stats := ck.Run(*seed, *n)
	if fail == nil {
		if faulted {
			return fmt.Errorf("fault injection escaped: %d faulted cases passed every oracle — the oracles have no teeth", stats.Cases)
		}
		fmt.Printf("ok: %d cases, 0 divergences across oracles [%s] in %v (%s)\n",
			stats.Cases, strings.Join(crosscheck.OracleNames(), " "), time.Since(start).Round(time.Millisecond), kindSummary(stats))
		return nil
	}

	fmt.Printf("DIVERGENCE after %d cases: oracle %q\n  %s\n  %s\n",
		stats.Cases, fail.Oracle, fail.Detail, fail.Case.String())
	shrunk := ck.Shrink(*fail)
	fmt.Printf("shrunk: %s\n  %s\n", shrunk.Case.String(), shrunk.Detail)

	path := filepath.Join(*out, fmt.Sprintf("ptsimcheck-repro-%s-seed%d.json", shrunk.Oracle, *seed))
	if err := crosscheck.NewRepro(shrunk, *fault, *faultEngine).Write(path); err != nil {
		return fmt.Errorf("writing repro: %w", err)
	}
	fmt.Printf("repro written to %s (replay: ptsimcheck -replay %s)\n", path, path)

	if faulted {
		// Self-test succeeded: the deliberate fault was detected and shrunk.
		fmt.Printf("fault-injection self-test passed: oracle %q caught the injected fault\n", shrunk.Oracle)
		return nil
	}
	return fmt.Errorf("simulators diverge (oracle %s)", shrunk.Oracle)
}

func runReplay(ck *crosscheck.Checker, path string) error {
	rep, err := crosscheck.LoadRepro(path)
	if err != nil {
		return err
	}
	fail := ck.Replay(rep)
	if fail == nil {
		fmt.Printf("repro no longer diverges (recorded oracle %q: %s)\n", rep.Oracle, rep.Detail)
		return nil
	}
	fmt.Printf("reproduced: oracle %q\n  %s\n  %s\n", fail.Oracle, fail.Detail, fail.Case.String())
	return fmt.Errorf("divergence reproduced (oracle %s)", fail.Oracle)
}

func kindSummary(st crosscheck.Stats) string {
	kinds := make([]string, 0, len(st.Kinds))
	for k := range st.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s:%d", k, st.Kinds[k])
	}
	return strings.Join(parts, " ")
}
