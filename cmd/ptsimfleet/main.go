// Command ptsimfleet is the compose-free fleet demo: it boots N full
// ptsimd member services on ephemeral loopback ports, wires them into one
// consistent-hash ring (so every member backfills compiled artifacts from
// the peer owning their hash), and serves the sharding coordinator's HTTP
// API on -addr. One command, a whole sharded simulation fleet:
//
//	ptsimfleet -n 3 -addr 127.0.0.1:8730
//
//	curl -X POST http://127.0.0.1:8730/jobs -d '{"model":"gemm","n":64,"tenant":"team-a"}'
//	curl http://127.0.0.1:8730/jobs/f1
//	curl http://127.0.0.1:8730/stats      # fleet + merged member stats
//	curl http://127.0.0.1:8730/metrics    # ptsimfleet_* aggregated exposition
//	curl http://127.0.0.1:8730/members    # ring membership + liveness
//
// Jobs route by the content hash of their compiled configuration:
// identical work always lands on the same member's warm cache, and a
// member that dies mid-batch has its jobs re-dispatched to survivors.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptsimfleet:", err)
		os.Exit(1)
	}
}

// parseTenantWeights parses "a=3,b=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed tenant weight %q (want name=weight)", pair)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("tenant %q: weight %q must be a positive integer", name, w)
		}
		out[name] = n
	}
	return out, nil
}

func run() error {
	n := flag.Int("n", 3, "fleet member count")
	addr := flag.String("addr", "127.0.0.1:8730", "coordinator listen address (port 0 = ephemeral)")
	workers := flag.Int("workers", 2, "simulation workers per member")
	queue := flag.Int("queue", 64, "queue capacity (coordinator and each member)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queue capacity (0 = no per-tenant bound)")
	tenantWeights := flag.String("tenant-weights", "", `weighted-fair tenant shares, e.g. "team-a=3,team-b=1"`)
	maxCycles := flag.Int64("max-cycles", 0, "per-job deadlock guard in simulated cycles (0 = package default)")
	cacheDir := flag.String("cache-dir", "", "persist each member's compile cache under <dir>/m<i>")
	flag.Parse()

	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}
	fl, err := fleet.StartLocal(fleet.LocalOptions{
		N: *n, Workers: *workers, QueueDepth: *queue,
		TenantQueueDepth: *tenantQueue, TenantWeights: weights,
		MaxCycles: *maxCycles, CacheDir: *cacheDir,
	})
	if err != nil {
		return err
	}
	defer fl.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// These lines are machine-readable on purpose: scripts/fleet_smoke.sh
	// starts us on an ephemeral port and scrapes the coordinator and member
	// URLs from them.
	fmt.Printf("ptsimfleet: coordinator on http://%s\n", ln.Addr())
	for i := 0; i < fl.N(); i++ {
		fmt.Printf("ptsimfleet: member %s on %s\n", fl.MemberName(i), fl.URL(i))
	}
	fmt.Printf("ptsimfleet: endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/events, GET /stats, GET /metrics, GET /members\n")

	srv := &http.Server{Handler: fleet.NewHandler(fl.Coord)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("ptsimfleet: %v, draining\n", s)
		srv.Close()
		return nil
	}
}
