// Command ptsimd is the simulation daemon: a long-running service that
// accepts simulation jobs over HTTP/JSON, runs them concurrently on a
// worker pool of independent TLS engines, and serves every repeated
// configuration from a content-addressed compile cache. It is the
// "simulation as a service" deployment of the framework — start it once,
// then sweep models, batch sizes, and NPU configs against it.
//
//	ptsimd -addr 127.0.0.1:8726 -workers 8 -queue 128
//
//	curl -X POST http://127.0.0.1:8726/jobs -d '{"model":"gemm","n":1024}'
//	curl http://127.0.0.1:8726/jobs/job-1
//	curl http://127.0.0.1:8726/stats
//	curl http://127.0.0.1:8726/metrics
//
// Submissions beyond the queue capacity are rejected immediately with
// HTTP 429 (the service's typed overload error), never by blocking. With
// -tenant-queue/-tenant-weights, admission and scheduling are per-tenant
// (weighted-fair, typed per-tenant 429s).
//
// As a fleet member, ptsimd joins a consistent-hash ring of peers and
// backfills compiled artifacts (kernel-latency tables) from whichever peer
// owns their hash instead of recomputing them:
//
//	ptsimd -addr 127.0.0.1:8726 -self http://127.0.0.1:8726 \
//	       -peers http://127.0.0.1:8727,http://127.0.0.1:8728
//
// (cmd/ptsimfleet boots a whole local fleet plus coordinator in one
// command.)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/service/cache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptsimd:", err)
		os.Exit(1)
	}
}

// parseTenantWeights parses "a=3,b=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed tenant weight %q (want name=weight)", pair)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("tenant %q: weight %q must be a positive integer", name, w)
		}
		out[name] = n
	}
	return out, nil
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8726", "listen address (port 0 = ephemeral)")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue capacity (admission control bound)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queue capacity (0 = no per-tenant bound beyond -queue)")
	tenantWeights := flag.String("tenant-weights", "", `weighted-fair tenant shares, e.g. "team-a=3,team-b=1" (absent tenants weigh 1)`)
	maxCycles := flag.Int64("max-cycles", 0, "default per-job deadlock guard in simulated cycles (0 = package default)")
	engineWorkers := flag.Int("engine-workers", 0, "default TLS engine goroutine count per job (0 or 1 = serial; jobs may override via engine_workers)")
	cacheDir := flag.String("cache-dir", "", "persist kernel-latency tables under this directory (reused across restarts)")
	self := flag.String("self", "", "this node's base URL on the fleet ring (required with -peers)")
	peers := flag.String("peers", "", "comma-separated base URLs of fleet peers; enables the remote peer-cache tier")
	flag.Parse()

	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}
	svc := service.New(service.Config{
		Workers: *workers, QueueDepth: *queue, MaxCycles: *maxCycles, EngineWorkers: *engineWorkers,
		TenantQueueDepth: *tenantQueue, TenantWeights: weights,
	})
	if *cacheDir != "" {
		if err := svc.EnableDiskCache(*cacheDir); err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		fmt.Printf("ptsimd: persistent compile cache at %s\n", *cacheDir)
	}
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this node's URL on the ring)")
		}
		// The ring is built over URLs: every member passes the same
		// self∪peers set (in any order), so ownership agrees fleet-wide.
		ids := append(strings.Split(*peers, ","), *self)
		for i := range ids {
			ids[i] = strings.TrimRight(strings.TrimSpace(ids[i]), "/")
		}
		ring := fleet.NewRing(ids)
		selfURL := strings.TrimRight(*self, "/")
		resolve := func(key string) []string {
			seq := ring.Sequence(key)
			out := make([]string, 0, 2)
			for _, id := range seq {
				if id == selfURL {
					continue
				}
				out = append(out, id)
				if len(out) == 2 {
					break
				}
			}
			return out
		}
		svc.EnablePeerCache(cache.NewPeer(resolve, 0))
		fmt.Printf("ptsimd: fleet member %s on a ring of %d nodes\n", selfURL, len(ring.Members()))
	}
	svc.Start()
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line is machine-readable on purpose: the smoke tests
	// (scripts/service_smoke.sh, scripts/fleet_smoke.sh) start us on an
	// ephemeral port and scrape the URL from it.
	fmt.Printf("ptsimd: listening on http://%s\n", ln.Addr())
	st := svc.Stats()
	fmt.Printf("ptsimd: %d workers, queue depth %d; endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/events, GET /stats, GET /metrics, GET|PUT /cache/{key}\n",
		st.Workers, st.QueueDepth)

	srv := &http.Server{Handler: service.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("ptsimd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
