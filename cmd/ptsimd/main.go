// Command ptsimd is the simulation daemon: a long-running service that
// accepts simulation jobs over HTTP/JSON, runs them concurrently on a
// worker pool of independent TLS engines, and serves every repeated
// configuration from a content-addressed compile cache. It is the
// "simulation as a service" deployment of the framework — start it once,
// then sweep models, batch sizes, and NPU configs against it.
//
//	ptsimd -addr 127.0.0.1:8726 -workers 8 -queue 128
//
//	curl -X POST http://127.0.0.1:8726/jobs -d '{"model":"gemm","n":1024}'
//	curl http://127.0.0.1:8726/jobs/job-1
//	curl http://127.0.0.1:8726/stats
//	curl http://127.0.0.1:8726/metrics
//
// Submissions beyond the queue capacity are rejected immediately with
// HTTP 429 (the service's typed overload error), never by blocking.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8726", "listen address (port 0 = ephemeral)")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue capacity (admission control bound)")
	maxCycles := flag.Int64("max-cycles", 0, "default per-job deadlock guard in simulated cycles (0 = package default)")
	engineWorkers := flag.Int("engine-workers", 0, "default TLS engine goroutine count per job (0 or 1 = serial; jobs may override via engine_workers)")
	cacheDir := flag.String("cache-dir", "", "persist kernel-latency tables under this directory (reused across restarts)")
	flag.Parse()

	svc := service.New(service.Config{Workers: *workers, QueueDepth: *queue, MaxCycles: *maxCycles, EngineWorkers: *engineWorkers})
	if *cacheDir != "" {
		if err := svc.EnableDiskCache(*cacheDir); err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		fmt.Printf("ptsimd: persistent compile cache at %s\n", *cacheDir)
	}
	svc.Start()
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line is machine-readable on purpose: the smoke test
	// (scripts/service_smoke.sh) starts us on an ephemeral port and scrapes
	// the URL from it.
	fmt.Printf("ptsimd: listening on http://%s\n", ln.Addr())
	st := svc.Stats()
	fmt.Printf("ptsimd: %d workers, queue depth %d; endpoints: POST /jobs, GET /jobs/{id}, GET /stats, GET /metrics\n",
		st.Workers, st.QueueDepth)

	srv := &http.Server{Handler: service.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("ptsimd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
