// Command ptserve is the LLM serving simulator: it synthesizes a seeded
// Poisson trace of generation requests and replays it through the
// continuous-batching scheduler, simulating every prefill pass and decode
// step on the NPU timing model. The report is serving-shaped — TTFT and
// per-token latency percentiles, tokens/sec, batch occupancy — plus the
// compile-cache behaviour of the autoregressive loop (decode steps after
// the first at a given shape are 100% cache hits).
//
// Usage:
//
//	ptserve -model decoder-small -requests 8 -rate 2000 -gen 16
//	ptserve -model decoder-tiny -small -requests 4 -prompt 8 -gen 8 -json
//	ptserve -model decoder-base -max-batch 8 -kv-block 128 -cache-dir ~/.ptsim-cache
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/service/cache"
	"repro/internal/service/modelzoo"
	"repro/internal/togsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptserve:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "decoder-small", "decoder model to serve (decoder-tiny, decoder-small, decoder-base)")
	requests := flag.Int("requests", 8, "number of requests in the arrival trace")
	rate := flag.Float64("rate", 1000, "Poisson arrival rate in requests per simulated second")
	seed := flag.Int64("seed", 1, "arrival-trace seed (same seed, same trace, same report)")
	prompt := flag.Int("prompt", 16, "prompt tokens per request")
	ctxDist := flag.String("ctx-dist", "", "per-request prompt-length distribution: fixed (default) or uniform:lo,hi (seeded)")
	gen := flag.Int("gen", 8, "tokens to generate per request")
	topology := flag.String("topology", "single", "topology preset: single, pkg2, or meshXxY")
	parStrat := flag.String("parallel", "none", "cross-package parallelism for multi-package topologies (tensor)")
	maxBatch := flag.Int("max-batch", 4, "continuous-batch capacity")
	kvBlock := flag.Int("kv-block", 64, "KV-cache page size in tokens (decode shapes pad up to this)")
	netKind := flag.String("net", "sn", "interconnect: sn or cn")
	small := flag.Bool("small", false, "use the small NPU config")
	engineWorkers := flag.Int("engine-workers", 0, "host goroutines stepping simulated cores per iteration (0 or 1 = serial; results are bit-identical)")
	maxCycles := flag.Int64("max-cycles", 0, "per-iteration deadlock guard (0 = engine default)")
	cacheDir := flag.String("cache-dir", "", "persist compile artifacts and kernel latencies under this directory")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of the whole serving run to this JSON file (per-iteration spans stitched onto one timeline)")
	showReport := flag.Bool("report", false, "print the per-request breakdown")
	jsonOut := flag.Bool("json", false, "print the serving report as JSON on stdout")
	flag.Parse()

	if !strings.HasPrefix(*model, "decoder-") || !modelzoo.Known(*model) {
		return fmt.Errorf("serving needs a decoder model, got %q", *model)
	}
	npuName := "tpuv3"
	if *small {
		npuName = "small"
	}
	npuCfg, err := modelzoo.NPUConfig(npuName)
	if err != nil {
		return err
	}
	net := togsim.SimpleNet
	switch *netKind {
	case "sn":
	case "cn":
		net = togsim.CycleNet
	default:
		return fmt.Errorf("unknown net %q (sn, cn)", *netKind)
	}

	// The same content-addressed compile cache the daemon uses: prefill
	// compiles once per prompt shape, decode once per (batch, padded-KV)
	// shape, and with -cache-dir the artifacts outlive this process.
	cc := service.NewCache()
	if *cacheDir != "" {
		disk, err := cache.NewDisk(*cacheDir)
		if err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		cc.SetStore(cache.NewLayered(cache.NewMemory(), disk))
	}
	opts := compiler.DefaultOptions()
	compile := func(spec modelzoo.Spec) (*compiler.Compiled, bool, error) {
		key := service.CompileKey(spec, npuCfg, opts)
		return cc.Compile(key, npuCfg, opts, func() (*graph.Graph, error) {
			return modelzoo.BuildFor(spec, npuCfg.Mem)
		})
	}

	cfg := serve.Config{
		Model:         *model,
		NPU:           npuCfg,
		Net:           net,
		MaxBatch:      *maxBatch,
		KVBlock:       *kvBlock,
		EngineWorkers: *engineWorkers,
		MaxCycles:     *maxCycles,
		Compile:       compile,
	}
	tc, err := modelzoo.Topology(modelzoo.Spec{Model: *model, Topology: *topology, Parallel: *parStrat}, npuCfg.Mem)
	if err != nil {
		return err
	}
	if tc.Packages() > 1 {
		if *parStrat != "tensor" {
			return fmt.Errorf("multi-package serving requires -parallel tensor, got %q", *parStrat)
		}
		cfg.Topo, cfg.Parallel = tc, *parStrat
	}
	var tw *obs.TraceWriter
	if *traceOut != "" {
		tw = obs.NewTraceWriter()
		cfg.Probe = tw
	}
	reqs := serve.PoissonTrace(*seed, *requests, *rate, npuCfg.FreqMHz, *prompt, *gen)
	dist, err := serve.ParseCtxDist(*ctxDist)
	if err != nil {
		return err
	}
	serve.ApplyCtxDist(reqs, dist, *seed)
	start := time.Now()
	rep, err := serve.Run(cfg, reqs)
	if err != nil {
		return err
	}
	rep.NPU = npuName
	rep.WallMs = float64(time.Since(start)) / 1e6
	if tw != nil {
		if err := tw.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace (%d events) to %s\n", tw.Len(), *traceOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if *showReport {
		fmt.Print(rep.Text())
	} else {
		brief := rep
		brief.PerRequest = nil
		fmt.Print(brief.Text())
	}
	fmt.Printf("host: %.0f ms wall\n", rep.WallMs)
	return nil
}
