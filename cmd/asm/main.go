// Command asm is the two-way assembler for the NPU ISA (§3.4): it assembles the
// textual syntax that Program.Dump produces into 64-bit instruction words,
// and disassembles binary images back to text. It is the command-line face
// of internal/isa, useful for inspecting the kernels the compiler emits
// (ptsim -dump-kernels) or for hand-writing microbenchmark kernels.
//
// Usage:
//
//	asm [-d] [-o out] [file]
//
// Reads assembler text (default) or, with -d, a binary image; reads stdin
// when no file is given. Output goes to stdout or -o.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble a binary image instead of assembling text")
	out := flag.String("o", "", "output file (default stdout)")
	name := flag.String("name", "a.out", "program name recorded in the output")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}

	var output []byte
	if *disasm {
		p, err := isa.DecodeProgram(*name, src)
		if err != nil {
			fatal(fmt.Errorf("disassemble: %w", err))
		}
		output = []byte(p.Dump())
	} else {
		p, err := isa.Assemble(*name, string(src))
		if err != nil {
			fatal(fmt.Errorf("assemble: %w", err))
		}
		if err := p.Validate(); err != nil {
			fatal(fmt.Errorf("validate: %w", err))
		}
		output = isa.EncodeProgram(p)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(output); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm:", err)
	os.Exit(1)
}
