// Command ptsim is the end-to-end model simulator: pick a built-in model,
// compile it for the target NPU, and simulate it in TLS (optionally ILS),
// printing cycles, simulated time, and compiler statistics — the
// PyTorchSim workflow of Fig. 1 from the command line.
//
// Model building and NPU selection live in internal/service/modelzoo, the
// same path the ptsimd daemon uses, so a CLI run and a service job of the
// same spec are bit-identical.
//
// Usage:
//
//	ptsim -model resnet18 -batch 1
//	ptsim -model gemm -n 1024 -mode ils
//	ptsim -model bert-base -seq 512 -net cn -dump-tog out.json
//	ptsim -model gemm -n 512 -small -report -trace gemm.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/obs/report"
	"repro/internal/parallel"
	"repro/internal/service/cache"
	"repro/internal/service/modelzoo"
	"repro/internal/tog"
	"repro/internal/togsim"
	"repro/internal/topo"
)

func main() {
	// All failure paths funnel through run's error: print to stderr, exit
	// non-zero. No fmt.Print-and-fall-through.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptsim:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "gemm", "model to simulate")
	batch := flag.Int("batch", 1, "batch size")
	n := flag.Int("n", 512, "GEMM dimension (model=gemm)")
	seq := flag.Int("seq", 512, "sequence length (BERT models)")
	ctx := flag.Int("ctx", 128, "context length (decoder models)")
	prefill := flag.Bool("prefill", false, "decoder models: simulate the prompt prefill pass instead of a decode step")
	topology := flag.String("topology", "single", "topology preset: single, pkg2, or meshXxY (e.g. mesh2x2)")
	parStrat := flag.String("parallel", "none", "cross-package parallelism: none, data, or tensor (multi-package topologies)")
	mode := flag.String("mode", "tls", "simulation mode: tls or ils")
	netKind := flag.String("net", "sn", "interconnect: sn or cn")
	small := flag.Bool("small", false, "use the small NPU config")
	fusion := flag.Bool("fusion", true, "enable operator fusion")
	convOpt := flag.Bool("convopt", true, "enable conv layout optimization")
	dmaMode := flag.String("dma", "selective", "DMA mode: coarse, fine, selective")
	maxCycles := flag.Int64("max-cycles", 0, "deadlock guard: abort past this many simulated cycles (0 = default)")
	engineWorkers := flag.Int("engine-workers", 0, "host goroutines stepping simulated cores in parallel (0 or 1 = serial; results are bit-identical)")
	dumpTOG := flag.String("dump-tog", "", "write the first TOG to this JSON file")
	dumpKernels := flag.String("dump-kernels", "", "write each compiled kernel's assembly into this directory")
	autotune := flag.Bool("autotune", false, "sweep tile-size candidates through TLS and report the best (tls mode)")
	tuneObjective := flag.String("autotune-objective", "cycles", "autotune winner metric: cycles or energy-delay (cycles x total energy)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of the TLS run to this JSON file")
	cacheDir := flag.String("cache-dir", "", "persist the kernel-latency cache under this directory (reused across runs)")
	showReport := flag.Bool("report", false, "print the full utilization and stall breakdown (tls mode)")
	jsonOut := flag.Bool("json", false, "print the run report as JSON on stdout (tls mode)")
	flag.Parse()

	if *mode != "tls" && (*traceOut != "" || *showReport || *jsonOut) {
		return fmt.Errorf("-trace, -report, and -json require -mode tls")
	}
	// With -json, stdout carries exactly one JSON document; progress and
	// compiler chatter move to stderr.
	var logw io.Writer = os.Stdout
	if *jsonOut {
		logw = os.Stderr
	}

	spec := modelzoo.Spec{Model: *model, Batch: *batch, N: *n, Seq: *seq, Ctx: *ctx, Prefill: *prefill,
		Topology: *topology, Parallel: *parStrat}
	npuName := "tpuv3"
	if *small {
		npuName = "small"
	}
	cfg, err := modelzoo.NPUConfig(npuName)
	if err != nil {
		return err
	}
	tc, err := modelzoo.Topology(spec, cfg.Mem)
	if err != nil {
		return err
	}
	multi := tc.Packages() > 1
	if multi {
		if *mode != "tls" {
			return fmt.Errorf("-topology %s requires -mode tls", *topology)
		}
		if *autotune || *traceOut != "" {
			return fmt.Errorf("-autotune and -trace are not supported with multi-package topologies")
		}
	}
	g, err := modelzoo.BuildRankGraph(spec, tc.Packages())
	if err != nil {
		return err
	}
	opts := compiler.DefaultOptions()
	opts.Fusion = *fusion
	opts.ConvLayoutOpt = *convOpt
	switch *dmaMode {
	case "coarse":
		opts.DMA = compiler.DMACoarse
	case "fine":
		opts.DMA = compiler.DMAFine
	case "selective":
	default:
		return fmt.Errorf("unknown dma mode %q (coarse, fine, selective)", *dmaMode)
	}

	sim := core.NewSimulator(cfg, opts)
	sim.MaxCycles = *maxCycles
	sim.EngineWorkers = *engineWorkers
	switch *tuneObjective {
	case "cycles":
	case "energy-delay":
		sim.Objective = core.TuneEnergyDelay
	default:
		return fmt.Errorf("unknown autotune objective %q (cycles, energy-delay)", *tuneObjective)
	}
	if *cacheDir != "" {
		disk, err := cache.NewDisk(*cacheDir)
		if err != nil {
			return fmt.Errorf("opening cache dir: %w", err)
		}
		sim.AttachStore(disk)
	}
	var tw *obs.TraceWriter
	if *traceOut != "" {
		tw = obs.NewTraceWriter()
		sim.Probe = tw
	}
	comp, err := sim.Compile(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "compiled %q: %d layers, %d unique kernels measured, %.1f MB DRAM footprint\n",
		g.Name, len(comp.TOGs), sim.Compiler.MeasureCount(), float64(comp.TotalBytes)/1e6)
	if *cacheDir != "" {
		hits, misses := sim.DiskStats()
		fmt.Fprintf(logw, "disk cache: %d hits, %d misses (%s)\n", hits, misses, *cacheDir)
	}

	if *dumpTOG != "" && len(comp.TOGs) > 0 {
		data, err := tog.Encode(comp.TOGs[0])
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dumpTOG, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(logw, "wrote first TOG to %s\n", *dumpTOG)
	}
	if *dumpKernels != "" {
		if err := os.MkdirAll(*dumpKernels, 0o755); err != nil {
			return err
		}
		for id, p := range comp.Kernels {
			path := filepath.Join(*dumpKernels, sanitize(id)+".s")
			if err := os.WriteFile(path, []byte(p.Dump()), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(logw, "wrote %d kernels to %s (reassemble with cmd/asm)\n", len(comp.Kernels), *dumpKernels)
	}

	kind := core.SimpleNet
	switch *netKind {
	case "cn":
		kind = core.CycleNet
	case "sn":
	default:
		return fmt.Errorf("unknown net %q (sn, cn)", *netKind)
	}
	switch *mode {
	case "ils":
		rep, ils, err := sim.SimulateILS(comp, kind)
		if err != nil {
			return err
		}
		fmt.Printf("ILS: %s; %d dynamic instructions across %d kernel instances\n",
			rep.String(), ils.Instrs, ils.KernelRuns)
	case "tls":
		if multi {
			return runTopology(logw, cfg, tc, spec, comp, *engineWorkers, *showReport, *jsonOut)
		}
		rep, err := sim.SimulateTLS(comp, kind)
		if err != nil {
			return err
		}
		if *autotune {
			opts, _, tuned, err := sim.AutoTune(g, nil, kind)
			if err != nil {
				return err
			}
			fmt.Fprintf(logw, "autotune: best MaxMt=%d -> %d cycles (heuristic: %d, %+.1f%%)\n",
				opts.MaxMt, tuned.Cycles, rep.Cycles,
				100*float64(tuned.Cycles-rep.Cycles)/float64(rep.Cycles))
			rep = tuned
		}
		// One formatter for every surface: the CLI summary, -report, -json,
		// and the ptsimd job response all render the same report.Report.
		full := report.Build(cfg, report.Inputs{
			Res:      togsim.Result{Cycles: rep.Cycles, Jobs: rep.Jobs, Cores: rep.Cores},
			Mem:      rep.MemStats,
			NoCFlits: rep.NoCFlits,
			Rounds:   rep.Rounds,
			Wall:     rep.WallClock,
		})
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(full); err != nil {
				return err
			}
		} else {
			fmt.Printf("TLS: %s\n", full.Summary())
			if *showReport {
				fmt.Print(full.Text())
			} else {
				// Compact default: utilization and DRAM lines, no per-job
				// breakdown (that is what -report adds).
				brief := full
				brief.Jobs = nil
				fmt.Print(brief.Text())
			}
		}
		if tw != nil {
			if err := tw.WriteFile(*traceOut); err != nil {
				return err
			}
			fmt.Fprintf(logw, "wrote trace (%d events) to %s\n", tw.Len(), *traceOut)
		}
	default:
		return fmt.Errorf("unknown mode %q (tls, ils)", *mode)
	}
	return nil
}

// runTopology simulates one rank of the compiled artifact per package of
// the topology: place ranks around the collective ring, run them on a
// topo.Fabric (serial or parallel engine — bit-identical), and render the
// same report.Report as the single-package path, now with the per-package
// and collective breakdown attached.
func runTopology(logw io.Writer, cfg npu.Config, tc topo.Config, spec modelzoo.Spec,
	comp *compiler.Compiled, workers int, showReport, jsonOut bool) error {
	spec = spec.Normalize()
	jobs, err := parallel.PlaceJobs(spec.Model, comp, tc)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "topology %s: %d packages x %d cores, %s parallelism, %d ranks placed\n",
		tc.Name, tc.Packages(), tc.CoresPerPackage, spec.Parallel, len(jobs))
	start := time.Now()
	res, fab, err := parallel.Simulate(cfg, tc, jobs, workers)
	if err != nil {
		return err
	}
	cfg.Cores = tc.TotalCores()
	full := report.Build(cfg, report.Inputs{
		Res:       res,
		Mem:       fab.MemTotals(),
		LinkFlits: fab.LinkFlits,
		Wall:      time.Since(start),
		Topo:      fab,
	})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(full)
	}
	fmt.Printf("TLS: %s\n", full.Summary())
	if showReport {
		fmt.Print(full.Text())
	} else {
		brief := full
		brief.Jobs = nil
		fmt.Print(brief.Text())
	}
	return nil
}

// sanitize maps a kernel id to a safe filename.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, id)
}
