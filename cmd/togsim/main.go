// Command togsim executes a Tile Operation Graph file (the JSON
// serialization of §3.7's ONNX-like format) on the TLS engine and prints
// the simulated cycle count and memory statistics — the standalone TOGSim
// of Fig. 1, usable with TOGs produced by other compilers.
//
// Usage:
//
//	togsim -tog model.tog.json [-net cn] [-sched fcfs] [-cores 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/tog"
	"repro/internal/togsim"
)

func main() {
	togPath := flag.String("tog", "", "path to a TOG JSON file")
	netKind := flag.String("net", "sn", "interconnect model: sn (simple) or cn (cycle-accurate crossbar)")
	sched := flag.String("sched", "frfcfs", "memory scheduler: frfcfs or fcfs")
	small := flag.Bool("small", false, "use the small NPU config instead of TPUv3")
	strict := flag.Bool("strict", false, "tick every cycle instead of event-driven cycle skipping (results are identical; slower)")
	dump := flag.Bool("stats", false, "print TOG static statistics only (no simulation)")
	flag.Parse()

	if *togPath == "" {
		fmt.Fprintln(os.Stderr, "usage: togsim -tog <file> [-net sn|cn] [-sched frfcfs|fcfs] [-stats]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*togPath)
	if err != nil {
		fatal(err)
	}
	g, err := tog.Decode(data)
	if err != nil {
		fatal(err)
	}
	stats, err := g.CollectStats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("TOG %q: %d compute nodes (%d cycles), %d loads (%d bytes), %d stores (%d bytes)\n",
		g.Name, stats.ComputeNodes, stats.ComputeCycles, stats.LoadNodes, stats.LoadBytes, stats.StoreNodes, stats.StoreBytes)
	if *dump {
		return
	}

	cfg := npu.TPUv3Config()
	if *small {
		cfg = npu.SmallConfig()
	}
	kind := togsim.SimpleNet
	if *netKind == "cn" {
		kind = togsim.CycleNet
	}
	policy := dram.FRFCFS
	if *sched == "fcfs" {
		policy = dram.FCFS
	}
	s := togsim.NewStandard(cfg, kind, policy)
	s.Engine.StrictTick = *strict
	// Bind every tensor to a distinct region.
	bases := map[string]uint64{}
	var next uint64
	for _, t := range g.Tensors {
		bases[t] = next
		next += 1 << 28
	}
	res, err := s.Engine.RunSingle(g, bases)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated: %d cycles (%.3f ms @ %d MHz)\n",
		res.Cycles, float64(res.Cycles)/float64(cfg.FreqMHz)/1e3, cfg.FreqMHz)
	fmt.Printf("DRAM: %d reads, %d writes, row hits %d / misses %d, achieved %.1f B/cycle (peak %.1f)\n",
		s.Mem.Stats.Reads, s.Mem.Stats.Writes, s.Mem.Stats.RowHits, s.Mem.Stats.RowMisses,
		s.Mem.AchievedBandwidth(), s.Mem.PeakBandwidth())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "togsim:", err)
	os.Exit(1)
}
