// Command togsim executes a Tile Operation Graph file (the JSON
// serialization of §3.7's ONNX-like format) on the TLS engine and prints
// the simulated cycle count, utilization breakdown, and memory statistics
// — the standalone TOGSim of Fig. 1, usable with TOGs produced by other
// compilers.
//
// Usage:
//
//	togsim -tog model.tog.json [-net cn] [-sched fcfs]
//	togsim -tog model.tog.json -trace model.trace.json -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/obs/report"
	"repro/internal/service/cache"
	"repro/internal/tog"
	"repro/internal/togsim"
)

func main() {
	togPath := flag.String("tog", "", "path to a TOG JSON file")
	netKind := flag.String("net", "sn", "interconnect model: sn (simple) or cn (cycle-accurate crossbar)")
	sched := flag.String("sched", "frfcfs", "memory scheduler: frfcfs or fcfs")
	small := flag.Bool("small", false, "use the small NPU config instead of TPUv3")
	strict := flag.Bool("strict", false, "tick every cycle instead of event-driven cycle skipping (results are identical; slower)")
	engineWorkers := flag.Int("engine-workers", 0, "host goroutines stepping simulated cores in parallel (0 or 1 = serial; results are bit-identical, so the report cache key is unchanged)")
	dump := flag.Bool("stats", false, "print TOG static statistics only (no simulation)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this JSON file")
	jsonOut := flag.Bool("json", false, "print the run report as JSON on stdout")
	cacheDir := flag.String("cache-dir", "", "cache run reports under this directory, keyed by TOG content and configuration (ignored with -trace)")
	flag.Parse()

	if *togPath == "" {
		fmt.Fprintln(os.Stderr, "usage: togsim -tog <file> [-net sn|cn] [-sched frfcfs|fcfs] [-trace out.json] [-json] [-stats]")
		os.Exit(2)
	}
	// With -json, stdout carries exactly one JSON document; the static
	// statistics and trace confirmation move to stderr.
	var logw io.Writer = os.Stdout
	if *jsonOut {
		logw = os.Stderr
	}
	data, err := os.ReadFile(*togPath)
	if err != nil {
		fatal(err)
	}
	g, err := tog.Decode(data)
	if err != nil {
		fatal(err)
	}
	stats, err := g.CollectStats()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(logw, "TOG %q: %d compute nodes (%d cycles), %d loads (%d bytes), %d stores (%d bytes)\n",
		g.Name, stats.ComputeNodes, stats.ComputeCycles, stats.LoadNodes, stats.LoadBytes, stats.StoreNodes, stats.StoreBytes)
	if *dump {
		return
	}

	cfg := npu.TPUv3Config()
	if *small {
		cfg = npu.SmallConfig()
	}
	kind := togsim.SimpleNet
	if *netKind == "cn" {
		kind = togsim.CycleNet
	}
	policy := dram.FRFCFS
	if *sched == "fcfs" {
		policy = dram.FCFS
	}
	// The run is deterministic in (TOG, config, net, scheduler, strictness),
	// so the finished report can be served content-addressed from disk. A
	// trace request always simulates for real: the trace IS the run.
	var store *cache.Disk
	var reportKey string
	if *cacheDir != "" && *traceOut == "" {
		store, err = cache.NewDisk(*cacheDir)
		if err != nil {
			fatal(err)
		}
		reportKey = "report-" + cache.CanonicalHash(string(data), cfg, *netKind, *sched, *strict)
		if blob, ok := store.Get(reportKey); ok {
			var rep report.Report
			if err := json.Unmarshal(blob, &rep); err == nil {
				fmt.Fprintf(logw, "run report served from cache (%s)\n", *cacheDir)
				render(rep, *jsonOut)
				return
			}
		}
	}

	s := togsim.NewStandard(cfg, kind, policy)
	s.Engine.StrictTick = *strict
	s.Engine.Workers = *engineWorkers
	var tw *obs.TraceWriter
	if *traceOut != "" {
		tw = obs.NewTraceWriter()
		s.AttachProbe(tw)
	}
	// Bind every tensor to a distinct region.
	bases := map[string]uint64{}
	var next uint64
	for _, t := range g.Tensors {
		bases[t] = next
		next += 1 << 28
	}
	start := time.Now()
	res, err := s.Engine.RunSingle(g, bases)
	if err != nil {
		fatal(err)
	}
	// The same report.Report that ptsim and the ptsimd job response render.
	rep := report.Build(cfg, report.Inputs{
		Res:      res,
		Mem:      s.MemStats(),
		NoCFlits: s.NetFlits(),
		Rounds:   s.Engine.Rounds,
		Wall:     time.Since(start),
	})
	if store != nil {
		// Strip host wall time and parallel-engine round counts so the cached
		// artifact is fully deterministic: the cache key deliberately excludes
		// -engine-workers (results are bit-identical), but round counts differ
		// between serial and parallel runs.
		canonical := rep
		canonical.WallMs = 0
		canonical.Rounds = nil
		if blob, err := json.Marshal(canonical); err == nil {
			_ = store.Put(reportKey, blob)
		}
	}
	render(rep, *jsonOut)
	if tw != nil {
		if err := tw.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(logw, "wrote trace (%d events) to %s\n", tw.Len(), *traceOut)
	}
}

func render(rep report.Report, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("simulated: %s\n", rep.Summary())
	fmt.Print(rep.Text())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "togsim:", err)
	os.Exit(1)
}
