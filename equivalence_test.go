// Equivalence regression: the event-driven (cycle-skipping) TLS engine
// must produce bit-identical Results to the strict per-cycle polling loop
// on real compiled workloads — the quickstart GEMM and a multi-tenant mix
// with staggered arrivals. Guards the invariant DESIGN.md's "Simulation
// kernel" section documents.
package main

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/togsim"
)

// runModes executes the same jobs on fresh setups in event-driven mode,
// strict mode, and event-driven mode with a trace probe attached, and
// requires all three Results to be identical — cycle-skipping and
// observability must both be invisible in the numbers.
func runModes(t *testing.T, kind togsim.NetKind, mkJobs func() []*togsim.Job, cores int) togsim.Result {
	t.Helper()
	cfg := benchCfg()
	if cores > 0 {
		cfg.Cores = cores
	}
	run := func(strict bool, probe obs.Probe) togsim.Result {
		s := togsim.NewStandard(cfg, kind, dram.FRFCFS)
		s.Engine.StrictTick = strict
		if probe != nil {
			s.AttachProbe(probe)
		}
		res, err := s.Engine.Run(mkJobs())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	event, strict := run(false, nil), run(true, nil)
	if !reflect.DeepEqual(event, strict) {
		t.Fatalf("event-driven engine diverges from strict ticking:\nevent:  %+v\nstrict: %+v", event, strict)
	}
	tw := obs.NewTraceWriter()
	traced := run(false, tw)
	if !reflect.DeepEqual(event, traced) {
		t.Fatalf("attaching a trace probe changed the result:\nplain:  %+v\ntraced: %+v", event, traced)
	}
	if tw.Len() == 0 {
		t.Fatal("instrumented run produced an empty trace")
	}
	return event
}

// TestEquivalenceQuickstartGEMM runs the quickstart GEMM (compiled through
// the real compiler, like examples/quickstart) under both engine modes.
func TestEquivalenceQuickstartGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: full TPUv3 GEMM under three engine modes, ~2s (DESIGN.md \"Test tiers\")")
	}
	c := compiler.New(benchCfg(), compiler.DefaultOptions())
	comp, err := c.Compile(exp.GEMMGraph(512))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []togsim.NetKind{togsim.SimpleNet, togsim.CycleNet} {
		runModes(t, kind, func() []*togsim.Job {
			return []*togsim.Job{comp.Job("gemm", 0, 0)}
		}, 0)
	}
}

// TestEquivalenceMultiTenant co-locates two compiled GEMMs with staggered
// arrivals on separate cores (the §5.2 shape): shared-DRAM contention plus
// idle admission gaps, both of which the skip logic must not disturb.
func TestEquivalenceMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: three-tenant TPUv3 mix under three engine modes, ~1s (DESIGN.md \"Test tiers\")")
	}
	cfg := benchCfg()
	cfg.Cores = 2
	c := compiler.New(cfg, compiler.DefaultOptions())
	big, err := c.Compile(exp.GEMMGraph(512))
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.Compile(exp.GEMMRectGraph(128, 512, 512))
	if err != nil {
		t.Fatal(err)
	}
	res := runModes(t, togsim.SimpleNet, func() []*togsim.Job {
		a := big.Job("tenant-a", 0, 0)
		b := small.Job("tenant-b", 1, 1)
		b.Arrival = 50_000
		c2 := small.Job("tenant-c", 0, 2)
		c2.Arrival = 400_000
		return []*togsim.Job{a, b, c2}
	}, 2)
	if len(res.Jobs) != 3 {
		t.Fatalf("want 3 job results, got %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Start < 0 || j.End < j.Start {
			t.Fatalf("bad job timing: %+v", j)
		}
	}
}
