// Package dram implements the cycle-accurate off-chip memory model (the
// paper's Ramulator 2 role): multi-channel HBM2-like DRAM with per-bank
// row-buffer state, FR-FCFS or FCFS scheduling, and tCL/tRCD/tRP/tRAS/tWR
// timing. It is the component that produces the contention, locality, and
// fairness effects the paper's case studies depend on (§5.1, §5.2).
package dram

import (
	"fmt"

	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Request is one burst-granularity memory access.
type Request struct {
	Addr    uint64
	IsWrite bool
	Src     int   // requestor id (core / DMA stream), used for fairness stats
	Tag     int64 // opaque caller tag
	Arrive  int64 // cycle the request entered the controller
	Finish  int64 // cycle data transfer completes (set by the model)

	issued bool
	// Decomposed address, cached at Submit so the FR-FCFS scan does not
	// re-derive it every cycle.
	ch, bk int
	row    int64
}

// SchedulerKind selects the memory scheduling policy.
type SchedulerKind int

const (
	// FRFCFS prefers row-buffer hits, then oldest-first (the default; the
	// §5.1 study shows it starves low-locality requestors).
	FRFCFS SchedulerKind = iota
	// FCFS is strict oldest-first.
	FCFS
)

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes   int64
	RowHits         int64
	RowMisses       int64
	RowConflicts    int64 // miss that required closing another row
	BytesBySrc      map[int]int64
	TotalBytes      int64
	BusyCycles      int64
	QueueFullStalls int64
}

type bank struct {
	openRow int64 // -1 when closed
	readyAt int64 // earliest next command
	actAt   int64 // last activate time (for tRAS)
	wrLast  bool  // last access was a write (for tWR)
}

type channel struct {
	queue       []*Request
	banks       []bank
	busFree     int64
	nextRefresh int64
}

// Memory is the multi-channel DRAM controller model.
type Memory struct {
	cfg   npu.MemConfig
	sched SchedulerKind
	chans []channel
	cycle int64
	// Issued requests keyed by Finish. Each channel's data bus serializes
	// transfers, so Finish is strictly monotone per channel — one
	// MonotonicQueue lane per channel.
	inFlight     *sim.MonotonicQueue[*Request]
	done         []*Request
	spare        []*Request // double buffer swapped with done at Completed
	queueCap     int
	burstsPerRow int64
	refreshes    int64

	Stats Stats

	// Probe receives occupancy and bandwidth counters on obs.DRAMTrack when
	// non-nil. Counters are emitted only when the value changes, and never
	// influence timing.
	Probe       obs.Probe
	lastPending int
	lastBytes   int64
}

// Refreshes counts all-bank refreshes performed.
func (m *Memory) Refreshes() int64 { return m.refreshes }

// New returns a memory model for the given configuration and scheduler.
func New(cfg npu.MemConfig, sched SchedulerKind) *Memory {
	if cfg.Channels <= 0 || cfg.BanksPerChan <= 0 || cfg.RowBytes <= 0 || cfg.BurstBytes <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	m := &Memory{
		cfg:          cfg,
		sched:        sched,
		chans:        make([]channel, cfg.Channels),
		inFlight:     sim.NewMonotonicQueue[*Request](cfg.Channels),
		queueCap:     64,
		burstsPerRow: int64(cfg.RowBytes / cfg.BurstBytes),
	}
	for i := range m.chans {
		m.chans[i].banks = make([]bank, cfg.BanksPerChan)
		for b := range m.chans[i].banks {
			m.chans[i].banks[b].openRow = -1
		}
		if cfg.TREFI > 0 {
			m.chans[i].nextRefresh = int64(cfg.TREFI)
		}
	}
	m.Stats.BytesBySrc = map[int]int64{}
	return m
}

// Cycle returns the current cycle.
func (m *Memory) Cycle() int64 { return m.cycle }

// BurstBytes returns the request granularity.
func (m *Memory) BurstBytes() int { return m.cfg.BurstBytes }

// mapAddr decomposes a byte address into channel, bank, and row, using a
// row:bank:channel:offset interleave so sequential streams hit open rows
// within each channel.
func (m *Memory) mapAddr(addr uint64) (ch, bk int, row int64) {
	burst := addr / uint64(m.cfg.BurstBytes)
	ch = int(burst % uint64(m.cfg.Channels))
	rest := burst / uint64(m.cfg.Channels)
	rest2 := rest / uint64(m.burstsPerRow)
	bk = int(rest2 % uint64(m.cfg.BanksPerChan))
	row = int64(rest2 / uint64(m.cfg.BanksPerChan))
	return
}

// CanAccept reports whether the target channel queue has room for addr.
func (m *Memory) CanAccept(addr uint64) bool {
	ch, _, _ := m.mapAddr(addr)
	return len(m.chans[ch].queue) < m.queueCap
}

// Submit enqueues a burst request. It returns false (and drops the request)
// when the channel queue is full; callers must retry.
func (m *Memory) Submit(r *Request) bool {
	r.ch, r.bk, r.row = m.mapAddr(r.Addr)
	c := &m.chans[r.ch]
	if len(c.queue) >= m.queueCap {
		m.Stats.QueueFullStalls++
		return false
	}
	r.Arrive = m.cycle
	c.queue = append(c.queue, r)
	return true
}

// Tick advances the controller one cycle: each channel may issue one request
// chosen by the scheduling policy; finished requests move to the completion
// list.
func (m *Memory) Tick() {
	m.cycle++
	for ci := range m.chans {
		m.issueOne(ci)
	}
	// Deliver completions.
	m.done = m.inFlight.PopDue(m.cycle, m.done)
	if m.Probe != nil {
		if p := m.Pending(); p != m.lastPending {
			m.Probe.Counter(obs.DRAMTrack, "dram.inflight", m.cycle, float64(p))
			m.lastPending = p
		}
		if m.Stats.TotalBytes != m.lastBytes {
			m.Probe.Counter(obs.DRAMTrack, "dram.bytes_total", m.cycle, float64(m.Stats.TotalBytes))
			m.lastBytes = m.Stats.TotalBytes
		}
	}
}

// NextEvent implements the event-kernel contract: with queued requests a
// command may issue next cycle; otherwise the next observable change is
// the earliest in-flight completion. All-bank refresh is deliberately not
// an event — SkipTo replays the refreshes that fall inside a jump, so
// idle stretches can be skipped across refresh boundaries bit-identically.
func (m *Memory) NextEvent() int64 {
	if len(m.done) > 0 {
		return m.cycle + 1
	}
	for i := range m.chans {
		if len(m.chans[i].queue) > 0 {
			return m.cycle + 1
		}
	}
	next := m.inFlight.NextCycle()
	if next <= m.cycle {
		return m.cycle + 1
	}
	return next
}

// SkipTo advances the controller's clock to cycle without per-cycle
// ticking. Legal only when every channel queue is empty and no in-flight
// request finishes at or before cycle (guaranteed by NextEvent). The
// tREFI-periodic all-bank refreshes that per-cycle ticking would have
// performed in the skipped range are replayed exactly: same refresh
// cycles, same bank-state updates, same counters.
func (m *Memory) SkipTo(cycle int64) {
	if m.cfg.TREFI > 0 {
		for ci := range m.chans {
			c := &m.chans[ci]
			for c.nextRefresh <= cycle {
				m.refreshes++
				until := c.nextRefresh + int64(m.cfg.TRFC)
				for b := range c.banks {
					c.banks[b].openRow = -1
					if c.banks[b].readyAt < until {
						c.banks[b].readyAt = until
					}
				}
				c.nextRefresh += int64(m.cfg.TREFI)
			}
		}
	}
	m.cycle = cycle
}

// Completed drains and returns requests whose data transfer has finished.
func (m *Memory) Completed() []*Request {
	out := m.done
	m.done = m.spare[:0]
	m.spare = out
	return out
}

// issueOne applies the scheduling policy to channel ci.
func (m *Memory) issueOne(ci int) {
	c := &m.chans[ci]
	// All-bank refresh (tREFI/tRFC): precharge every bank and hold the
	// channel for tRFC.
	if m.cfg.TREFI > 0 && m.cycle >= c.nextRefresh {
		c.nextRefresh += int64(m.cfg.TREFI)
		m.refreshes++
		until := m.cycle + int64(m.cfg.TRFC)
		for b := range c.banks {
			c.banks[b].openRow = -1
			if c.banks[b].readyAt < until {
				c.banks[b].readyAt = until
			}
		}
		return
	}
	if len(c.queue) == 0 {
		return
	}
	// One command per channel per cycle; data transfers pipeline behind CAS
	// latency, so the bus being busy later does not block issuing now, but
	// we do bound how far the data bus may run ahead (command queue depth).
	if c.busFree > m.cycle+int64(m.cfg.TCL) {
		return
	}
	pick := -1
	if m.sched == FRFCFS {
		// Oldest row hit first.
		for i, r := range c.queue {
			b := &c.banks[r.bk]
			if b.openRow == r.row && b.readyAt <= m.cycle {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		// Oldest request whose bank can take a command now-ish; fall back to
		// the absolute oldest to preserve forward progress.
		pick = 0
	}
	r := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	m.serve(ci, r)
}

// serve computes the timing of one request against its bank and the channel
// data bus, updating all state.
func (m *Memory) serve(ci int, r *Request) {
	c := &m.chans[ci]
	bk, row := r.bk, r.row
	b := &c.banks[bk]
	cfg := m.cfg

	start := m.cycle
	if b.readyAt > start {
		start = b.readyAt
	}

	var casAt int64
	switch {
	case b.openRow == row:
		m.Stats.RowHits++
		casAt = start
	case b.openRow == -1:
		m.Stats.RowMisses++
		actAt := start
		casAt = actAt + int64(cfg.TRCD)
		b.openRow = row
		b.actAt = actAt
	default:
		m.Stats.RowMisses++
		m.Stats.RowConflicts++
		preAt := start
		if min := b.actAt + int64(cfg.TRAS); preAt < min {
			preAt = min
		}
		if b.wrLast {
			preAt += int64(cfg.TWR)
		}
		actAt := preAt + int64(cfg.TRP)
		casAt = actAt + int64(cfg.TRCD)
		b.openRow = row
		b.actAt = actAt
	}

	// Data burst: one bus slot after CAS latency.
	dataAt := casAt + int64(cfg.TCL)
	if dataAt < c.busFree {
		dataAt = c.busFree
	}
	c.busFree = dataAt + 1
	b.readyAt = casAt + 1
	b.wrLast = r.IsWrite
	r.Finish = dataAt + 1
	r.issued = true
	m.inFlight.Push(ci, r.Finish, r)

	// Stats.
	if r.IsWrite {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}
	m.Stats.BytesBySrc[r.Src] += int64(cfg.BurstBytes)
	m.Stats.TotalBytes += int64(cfg.BurstBytes)
	m.Stats.BusyCycles++
}

// Pending returns the number of requests queued or in flight.
func (m *Memory) Pending() int {
	n := m.inFlight.Len() + len(m.done)
	for i := range m.chans {
		n += len(m.chans[i].queue)
	}
	return n
}

// Drain advances the clock until all submitted requests have completed,
// returning the completions. It panics after a very large number of cycles
// (deadlock guard).
func (m *Memory) Drain() []*Request {
	var out []*Request
	for guard := 0; m.Pending() > 0; guard++ {
		if guard > 100_000_000 {
			panic("dram: drain did not converge")
		}
		m.Tick()
		out = append(out, m.Completed()...)
	}
	return out
}

// AchievedBandwidth returns bytes per cycle served so far.
func (m *Memory) AchievedBandwidth() float64 {
	if m.cycle == 0 {
		return 0
	}
	return float64(m.Stats.TotalBytes) / float64(m.cycle)
}

// PeakBandwidth returns the theoretical bytes per cycle.
func (m *Memory) PeakBandwidth() float64 {
	return float64(m.cfg.Channels * m.cfg.BurstBytes)
}
