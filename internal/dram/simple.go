package dram

// Simple is a fixed-latency, bandwidth-unlimited memory model, used for the
// §5.1 sparse-core validation ("a simple 100 ns DRAM latency model") and as
// a fast stand-in in unit tests. It implements the same Submit/Tick/
// Completed protocol as Memory.
type Simple struct {
	Latency  int64 // cycles from submit to completion
	cycle    int64
	inFlight []*Request
	done     []*Request

	Stats Stats
}

// NewSimple returns a flat-latency model.
func NewSimple(latencyCycles int64) *Simple {
	return &Simple{Latency: latencyCycles, Stats: Stats{BytesBySrc: map[int]int64{}}}
}

// Cycle returns the current cycle.
func (s *Simple) Cycle() int64 { return s.cycle }

// CanAccept always reports true (unbounded queue).
func (s *Simple) CanAccept(addr uint64) bool { return true }

// Submit implements the controller protocol.
func (s *Simple) Submit(r *Request) bool {
	r.Arrive = s.cycle
	r.Finish = s.cycle + s.Latency
	s.inFlight = append(s.inFlight, r)
	if r.IsWrite {
		s.Stats.Writes++
	} else {
		s.Stats.Reads++
	}
	return true
}

// Tick advances one cycle.
func (s *Simple) Tick() {
	s.cycle++
	remaining := s.inFlight[:0]
	for _, r := range s.inFlight {
		if r.Finish <= s.cycle {
			s.done = append(s.done, r)
		} else {
			remaining = append(remaining, r)
		}
	}
	s.inFlight = remaining
}

// Completed drains finished requests.
func (s *Simple) Completed() []*Request {
	out := s.done
	s.done = nil
	return out
}

// Pending returns requests not yet delivered.
func (s *Simple) Pending() int { return len(s.inFlight) + len(s.done) }

// Controller is the interface shared by Memory and Simple; TOGSim programs
// against it so experiments can swap models.
type Controller interface {
	Submit(r *Request) bool
	CanAccept(addr uint64) bool
	Tick()
	Completed() []*Request
	Cycle() int64
	Pending() int
}

var (
	_ Controller = (*Memory)(nil)
	_ Controller = (*Simple)(nil)
)
