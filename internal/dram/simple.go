package dram

import "repro/internal/sim"

// Simple is a fixed-latency, bandwidth-unlimited memory model, used for the
// §5.1 sparse-core validation ("a simple 100 ns DRAM latency model") and as
// a fast stand-in in unit tests. It implements the same Submit/Tick/
// Completed protocol as Memory.
type Simple struct {
	Latency  int64 // cycles from submit to completion
	cycle    int64
	inFlight sim.EventQueue[*Request]
	done     []*Request
	spare    []*Request // double buffer swapped with done at Completed

	Stats Stats
}

// NewSimple returns a flat-latency model.
func NewSimple(latencyCycles int64) *Simple {
	return &Simple{Latency: latencyCycles, Stats: Stats{BytesBySrc: map[int]int64{}}}
}

// Cycle returns the current cycle.
func (s *Simple) Cycle() int64 { return s.cycle }

// CanAccept always reports true (unbounded queue).
func (s *Simple) CanAccept(addr uint64) bool { return true }

// Submit implements the controller protocol.
func (s *Simple) Submit(r *Request) bool {
	r.Arrive = s.cycle
	r.Finish = s.cycle + s.Latency
	slot := r.Finish
	if slot <= s.cycle {
		slot = s.cycle + 1 // zero-latency models still take one cycle
	}
	s.inFlight.Push(slot, r)
	if r.IsWrite {
		s.Stats.Writes++
	} else {
		s.Stats.Reads++
	}
	return true
}

// Tick advances one cycle.
func (s *Simple) Tick() {
	s.cycle++
	s.done = s.inFlight.PopDue(s.cycle, s.done)
}

// NextEvent implements sim.Component: the earliest in-flight completion.
func (s *Simple) NextEvent() int64 {
	if len(s.done) > 0 {
		return s.cycle + 1
	}
	next := s.inFlight.NextCycle()
	if next <= s.cycle {
		return s.cycle + 1
	}
	return next
}

// SkipTo implements sim.Component (all state is absolute-cycle keyed).
func (s *Simple) SkipTo(cycle int64) { s.cycle = cycle }

// Completed drains finished requests.
func (s *Simple) Completed() []*Request {
	out := s.done
	s.done = s.spare[:0]
	s.spare = out
	return out
}

// Pending returns requests not yet delivered.
func (s *Simple) Pending() int { return s.inFlight.Len() + len(s.done) }

// Controller is the interface shared by Memory and Simple; TOGSim programs
// against it so experiments can swap models. It embeds the discrete-event
// kernel contract so fabrics can propagate NextEvent/SkipTo.
type Controller interface {
	sim.Component
	Submit(r *Request) bool
	CanAccept(addr uint64) bool
	Completed() []*Request
	Cycle() int64
	Pending() int
}

var (
	_ Controller = (*Memory)(nil)
	_ Controller = (*Simple)(nil)
)
