package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/npu"
	"repro/internal/tensor"
)

func testCfg() npu.MemConfig {
	c := npu.SmallConfig().Mem
	return c
}

func TestSingleReadLatency(t *testing.T) {
	m := New(testCfg(), FRFCFS)
	r := &Request{Addr: 0}
	if !m.Submit(r) {
		t.Fatal("submit rejected")
	}
	done := m.Drain()
	if len(done) != 1 {
		t.Fatalf("completions = %d", len(done))
	}
	cfg := testCfg()
	// Closed bank: ACT(tRCD) + CAS(tCL) + burst.
	want := int64(cfg.TRCD+cfg.TCL) + 2
	if r.Finish < want-1 || r.Finish > want+2 {
		t.Fatalf("first read finished at %d, want ~%d", r.Finish, want)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := testCfg()
	// Hit: two requests to the same row.
	m1 := New(cfg, FRFCFS)
	a := &Request{Addr: 0}
	b := &Request{Addr: uint64(cfg.BurstBytes * cfg.Channels)} // same channel, same row, next burst
	m1.Submit(a)
	m1.Submit(b)
	m1.Drain()
	hitGap := b.Finish - a.Finish

	// Conflict: second request to a different row of the same bank.
	m2 := New(cfg, FRFCFS)
	c := &Request{Addr: 0}
	rowStride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChan)
	d := &Request{Addr: rowStride} // same channel+bank, different row
	m2.Submit(c)
	m2.Submit(d)
	m2.Drain()
	confGap := d.Finish - c.Finish

	if m1.Stats.RowHits == 0 {
		t.Fatal("expected a row hit")
	}
	if m2.Stats.RowConflicts == 0 {
		t.Fatal("expected a row conflict")
	}
	if confGap <= hitGap {
		t.Fatalf("conflict gap %d must exceed hit gap %d", confGap, hitGap)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := testCfg()
	// Requests to different channels overlap; same channel serializes on
	// the data bus.
	mSame := New(cfg, FRFCFS)
	mDiff := New(cfg, FRFCFS)
	n := 16
	chanStride := uint64(cfg.BurstBytes * cfg.Channels)
	var lastSame, lastDiff int64
	for i := 0; i < n; i++ {
		rs := &Request{Addr: uint64(i) * chanStride}             // all to channel 0
		rd := &Request{Addr: uint64(i) * uint64(cfg.BurstBytes)} // round-robin channels
		mSame.Submit(rs)
		mDiff.Submit(rd)
	}
	for _, r := range mSame.Drain() {
		if r.Finish > lastSame {
			lastSame = r.Finish
		}
	}
	for _, r := range mDiff.Drain() {
		if r.Finish > lastDiff {
			lastDiff = r.Finish
		}
	}
	if lastDiff >= lastSame {
		t.Fatalf("multi-channel (%d) must beat single-channel (%d)", lastDiff, lastSame)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := testCfg()
	m := New(cfg, FRFCFS)
	rowStride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChan)
	// First open row 0, then submit a conflicting request (row 1) followed
	// by a row-0 hit. FR-FCFS serves the hit before the older conflict once
	// the row is open.
	opener := &Request{Addr: 0}
	m.Submit(opener)
	for m.Pending() > 0 {
		m.Tick()
		m.Completed()
	}
	conflict := &Request{Addr: rowStride}
	hit := &Request{Addr: uint64(cfg.BurstBytes * cfg.Channels)}
	m.Submit(conflict)
	m.Submit(hit)
	m.Drain()
	if hit.Finish >= conflict.Finish {
		t.Fatalf("FR-FCFS should finish the row hit (%d) before the conflict (%d)", hit.Finish, conflict.Finish)
	}

	// FCFS serves strictly in order.
	m2 := New(cfg, FCFS)
	opener2 := &Request{Addr: 0}
	m2.Submit(opener2)
	for m2.Pending() > 0 {
		m2.Tick()
		m2.Completed()
	}
	conflict2 := &Request{Addr: rowStride}
	hit2 := &Request{Addr: uint64(cfg.BurstBytes * cfg.Channels)}
	m2.Submit(conflict2)
	m2.Submit(hit2)
	m2.Drain()
	if conflict2.Finish >= hit2.Finish {
		t.Fatalf("FCFS must preserve order: conflict %d, hit %d", conflict2.Finish, hit2.Finish)
	}
}

func TestStreamingApproachesPeakBandwidth(t *testing.T) {
	cfg := testCfg()
	m := New(cfg, FRFCFS)
	// Stream 64 KiB sequentially; with row hits across channels the model
	// should achieve a large fraction of peak.
	total := 64 << 10
	for a := 0; a < total; a += cfg.BurstBytes {
		r := &Request{Addr: uint64(a)}
		for !m.Submit(r) {
			m.Tick()
			m.Completed()
		}
	}
	m.Drain()
	frac := m.AchievedBandwidth() / m.PeakBandwidth()
	if frac < 0.5 {
		t.Fatalf("streaming achieved only %.2f of peak", frac)
	}
	if m.Stats.RowHits < m.Stats.RowMisses {
		t.Fatalf("streaming should be hit-dominated: %d hits, %d misses", m.Stats.RowHits, m.Stats.RowMisses)
	}
}

func TestRandomSlowerThanStreaming(t *testing.T) {
	cfg := testCfg()
	nReq := 512
	run := func(random bool) int64 {
		m := New(cfg, FRFCFS)
		rng := tensor.NewRNG(7)
		rowStride := uint64(cfg.RowBytes * cfg.Channels * cfg.BanksPerChan)
		for i := 0; i < nReq; i++ {
			var addr uint64
			if random {
				addr = uint64(rng.Intn(1024))*rowStride + uint64(rng.Intn(4))*uint64(cfg.BurstBytes)
			} else {
				addr = uint64(i) * uint64(cfg.BurstBytes)
			}
			r := &Request{Addr: addr}
			for !m.Submit(r) {
				m.Tick()
				m.Completed()
			}
		}
		m.Drain()
		return m.Cycle()
	}
	stream, random := run(false), run(true)
	if random <= stream {
		t.Fatalf("random access (%d cycles) must be slower than streaming (%d)", random, stream)
	}
}

func TestQueueFullRejection(t *testing.T) {
	m := New(testCfg(), FRFCFS)
	rejected := false
	for i := 0; i < 1000; i++ {
		if !m.Submit(&Request{Addr: 0}) { // all to one channel
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("expected queue-full rejection")
	}
	if m.Stats.QueueFullStalls == 0 {
		t.Fatal("stall counter not incremented")
	}
}

func TestPerSourceAccounting(t *testing.T) {
	cfg := testCfg()
	m := New(cfg, FRFCFS)
	for i := 0; i < 8; i++ {
		m.Submit(&Request{Addr: uint64(i * cfg.BurstBytes), Src: i % 2})
	}
	m.Drain()
	if m.Stats.BytesBySrc[0] != int64(4*cfg.BurstBytes) || m.Stats.BytesBySrc[1] != int64(4*cfg.BurstBytes) {
		t.Fatalf("per-source bytes wrong: %v", m.Stats.BytesBySrc)
	}
	if m.Stats.TotalBytes != int64(8*cfg.BurstBytes) {
		t.Fatalf("total bytes = %d", m.Stats.TotalBytes)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := testCfg()
		m := New(cfg, FRFCFS)
		rng := tensor.NewRNG(seed)
		n := 64 + rng.Intn(128)
		submitted, completed := 0, 0
		for i := 0; i < n; i++ {
			r := &Request{
				Addr:    uint64(rng.Intn(1<<20)) &^ uint64(cfg.BurstBytes-1),
				IsWrite: rng.Intn(2) == 0,
			}
			for !m.Submit(r) {
				m.Tick()
				completed += len(m.Completed())
			}
			submitted++
		}
		completed += len(m.Drain())
		return completed == submitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleModelFlatLatency(t *testing.T) {
	s := NewSimple(100)
	a := &Request{Addr: 0}
	b := &Request{Addr: 4096}
	s.Submit(a)
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	s.Submit(b)
	for s.Pending() > 0 {
		s.Tick()
		s.Completed()
	}
	if a.Finish != 100 {
		t.Fatalf("a.Finish = %d, want 100", a.Finish)
	}
	if b.Finish != 110 {
		t.Fatalf("b.Finish = %d, want 110", b.Finish)
	}
}

func TestRefreshStallsAndCounts(t *testing.T) {
	cfg := testCfg()
	cfg.TREFI = 200
	cfg.TRFC = 50
	withRef := New(cfg, FRFCFS)
	noRefCfg := cfg
	noRefCfg.TREFI = 0
	noRef := New(noRefCfg, FRFCFS)
	// Stream enough traffic to span several refresh intervals.
	total := 32 << 10
	feed := func(m *Memory) int64 {
		for a := 0; a < total; a += cfg.BurstBytes {
			r := &Request{Addr: uint64(a)}
			for !m.Submit(r) {
				m.Tick()
				m.Completed()
			}
		}
		m.Drain()
		return m.Cycle()
	}
	tRef, tNo := feed(withRef), feed(noRef)
	if withRef.Refreshes() == 0 {
		t.Fatal("no refreshes performed")
	}
	if tRef <= tNo {
		t.Fatalf("refresh must cost cycles: %d vs %d", tRef, tNo)
	}
	// Overhead should be roughly TRFC/TREFI (= 25%) of the runtime.
	overhead := float64(tRef-tNo) / float64(tNo)
	if overhead > 0.6 {
		t.Fatalf("refresh overhead implausibly high: %.2f", overhead)
	}
}
