package chiplet

import (
	"testing"

	"repro/internal/npu"
	"repro/internal/tog"
	"repro/internal/togsim"
)

func chipCfg() (npu.Config, Config) {
	base := npu.SmallConfig()
	base.Cores = 2
	cc := DefaultConfig(base.Mem)
	cc.ChipletAddrBits = 24 // 16 MiB per chiplet keeps test addresses small
	return base, cc
}

// dmaJob builds a load-heavy job on the given core reading `tiles` tiles
// from tensor "in" and (when withStore) writing to "out".
func dmaJob(name string, core int, tiles int64, inBase, outBase uint64, withStore bool) *togsim.Job {
	b := tog.NewBuilder(name, "in", "out")
	desc := npu.DMADesc{Rows: 8, Cols: 128} // 4 KiB tiles
	tileBytes := int64(desc.TotalBytes())
	b.Loop("i", 0, tiles, 1)
	b.Load("in", desc, tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "i", Coeff: tileBytes}}}, 0, 0)
	b.Wait(0)
	b.Compute(tog.UnitSA, 20)
	if withStore {
		b.Store("out", desc, tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "i", Coeff: tileBytes}}}, 1, 0)
	}
	b.EndLoop()
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &togsim.Job{
		Name:  name,
		TOGs:  []*tog.TOG{g},
		Bases: []map[string]uint64{{"in": inBase, "out": outBase}},
		Core:  core,
		Src:   core,
	}
}

func runJobs(t *testing.T, base npu.Config, cc Config, jobs []*togsim.Job) (int64, *Fabric) {
	t.Helper()
	f := NewFabric(cc)
	eng := togsim.NewEngine(base, f)
	res, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles, f
}

func TestLocalFasterThanRemote(t *testing.T) {
	base, cc := chipCfg()
	local, fl := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("local", 0, 64, cc.ChipletBase(0), cc.ChipletBase(0)+(1<<20), false),
	})
	remote, fr := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("remote", 0, 64, cc.ChipletBase(1), cc.ChipletBase(1)+(1<<20), false),
	})
	if remote <= local {
		t.Fatalf("remote traffic (%d) must be slower than local (%d)", remote, local)
	}
	if fl.RemoteBytes != 0 {
		t.Fatalf("local job produced remote bytes: %d", fl.RemoteBytes)
	}
	if fr.LocalBytes != 0 {
		t.Fatalf("remote job produced local bytes: %d", fr.LocalBytes)
	}
	// The link (34 B/cycle) is narrower than local HBM (64 B/cycle): expect
	// a substantial slowdown on a bandwidth-bound read stream.
	if float64(remote)/float64(local) < 1.3 {
		t.Fatalf("remote slowdown only %.2fx", float64(remote)/float64(local))
	}
}

func TestMixedTrafficSplitsBytes(t *testing.T) {
	base, cc := chipCfg()
	// in local, out remote: both counters must move, and the run must be
	// slower than a pure-local load-only stream (the remote stores ride the
	// narrow link).
	mixed, fm := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("mixed", 0, 64, cc.ChipletBase(0), cc.ChipletBase(1)+(1<<20), true),
	})
	localLoads, _ := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("local", 0, 64, cc.ChipletBase(0), cc.ChipletBase(0)+(1<<20), false),
	})
	if mixed <= localLoads {
		t.Fatalf("mixed load+remote-store (%d) must exceed local load-only (%d)", mixed, localLoads)
	}
	if fm.LocalBytes == 0 || fm.RemoteBytes == 0 {
		t.Fatalf("mixed job should split traffic: local %d remote %d", fm.LocalBytes, fm.RemoteBytes)
	}
}

func TestTwoChipletCoresRunConcurrently(t *testing.T) {
	base, cc := chipCfg()
	solo, _ := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("a", 0, 64, cc.ChipletBase(0), cc.ChipletBase(0)+(1<<20), false),
	})
	both, _ := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("a", 0, 64, cc.ChipletBase(0), cc.ChipletBase(0)+(1<<20), false),
		dmaJob("b", 1, 64, cc.ChipletBase(1), cc.ChipletBase(1)+(1<<20), false),
	})
	// All-local jobs on separate chiplets should barely interfere.
	if float64(both) > float64(solo)*1.3 {
		t.Fatalf("local jobs on separate chiplets should overlap: solo %d, both %d", solo, both)
	}
}

func TestLinkContentionBetweenCores(t *testing.T) {
	base, cc := chipCfg()
	// Both cores read remotely in the same direction pattern; the shared
	// link directions serialize.
	soloRemote, _ := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("r0", 0, 64, cc.ChipletBase(1), cc.ChipletBase(0)+(1<<20), false),
	})
	bothRemote, _ := runJobs(t, base, cc, []*togsim.Job{
		dmaJob("r0", 0, 64, cc.ChipletBase(1), cc.ChipletBase(0)+(1<<20), false),
		dmaJob("r1", 1, 64, cc.ChipletBase(0), cc.ChipletBase(1)+(1<<20), false),
	})
	// Opposite directions: the data paths are independent per direction, so
	// the two jobs largely overlap (each direction still carries the other
	// flow's request headers, so perfect overlap is not expected).
	if float64(bothRemote) > float64(soloRemote)*1.8 {
		t.Fatalf("opposite-direction remote jobs should mostly overlap: %d vs %d", bothRemote, soloRemote)
	}
	if bothRemote < soloRemote {
		t.Fatalf("shared link cannot make things faster: %d vs %d", bothRemote, soloRemote)
	}
}
