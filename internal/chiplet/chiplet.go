// Package chiplet implements the NUMA memory fabric of the §5.4 case
// study: a multi-chiplet NPU where each chiplet pairs one core with one
// local HBM stack, and chiplets are connected by a narrow off-chip link.
// Requests to the local stack go straight to its controller; remote
// requests serialize over the link in both directions (request header out,
// data back for loads; data out for stores).
package chiplet

import (
	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/togsim"
)

// Config describes the chiplet system.
type Config struct {
	Chiplets      int
	MemPerChiplet npu.MemConfig
	// ChipletAddrBits: address bit selecting the chiplet (memory capacity
	// per chiplet = 1 << ChipletAddrBits bytes).
	ChipletAddrBits uint
	// Link parameters (paper: 64 GB/s total, 32 GB/s each direction, 20 ns).
	LinkLatency       int64
	LinkBytesPerCycle int64 // per direction
}

// DefaultConfig mirrors the paper's setup at 940 MHz: two chiplets, 20 ns
// (~19 cycles) link latency, 32 GB/s (~34 B/cycle) per direction.
func DefaultConfig(mem npu.MemConfig) Config {
	return Config{
		Chiplets:          2,
		MemPerChiplet:     mem,
		ChipletAddrBits:   32,
		LinkLatency:       19,
		LinkBytesPerCycle: 34,
	}
}

// ChipletBase returns the DRAM base address of chiplet c's local memory.
func (c Config) ChipletBase(ch int) uint64 { return uint64(ch) << c.ChipletAddrBits }

// Fabric implements togsim.Fabric over per-chiplet DRAM controllers and
// inter-chiplet links.
type Fabric struct {
	cfg   Config
	mems  []*dram.Memory
	cycle int64

	// Per-direction link occupancy: linkFree[from][to].
	linkFree [][]int64

	// Per-chiplet FIFOs of requests staged for DRAM submission after link
	// traversal, and the queue of load data returning over the link.
	toMem   [][]stagedReq
	returns sim.EventQueue[*togsim.MemReq]
	byDram  map[*dram.Request]*togsim.MemReq
	done    []*togsim.MemReq
	pending int

	// Stats.
	LocalBytes, RemoteBytes int64
	// LinkFlits counts link serialization slots (LinkBytesPerCycle bytes
	// each, minimum one per traversal), both directions summed.
	LinkFlits int64

	// Probe receives link traffic and occupancy counters on obs.LinkTrack
	// when non-nil (change-triggered; never affects timing).
	Probe       obs.Probe
	lastPending int
	lastBytes   int64
	lastFlits   int64
}

type stagedReq struct {
	at  int64
	req *dram.Request
	mr  *togsim.MemReq
}

// NewFabric builds the chiplet fabric with FR-FCFS controllers.
func NewFabric(cfg Config) *Fabric {
	f := &Fabric{
		cfg:    cfg,
		byDram: map[*dram.Request]*togsim.MemReq{},
		toMem:  make([][]stagedReq, cfg.Chiplets),
	}
	for i := 0; i < cfg.Chiplets; i++ {
		f.mems = append(f.mems, dram.New(cfg.MemPerChiplet, dram.FRFCFS))
	}
	f.linkFree = make([][]int64, cfg.Chiplets)
	for i := range f.linkFree {
		f.linkFree[i] = make([]int64, cfg.Chiplets)
	}
	return f
}

// Mem returns chiplet ch's controller (for stats).
func (f *Fabric) Mem(ch int) *dram.Memory { return f.mems[ch] }

func (f *Fabric) chipletOf(addr uint64) int {
	ch := int(addr >> f.cfg.ChipletAddrBits)
	if ch >= f.cfg.Chiplets {
		ch = f.cfg.Chiplets - 1
	}
	return ch
}

// linkDelay accounts a transfer of n bytes from chiplet a to b, returning
// the arrival time.
func (f *Fabric) linkDelay(a, b int, bytes int, now int64) int64 {
	start := now
	if t := f.linkFree[a][b]; t > start {
		start = t
	}
	ser := int64(bytes) / f.cfg.LinkBytesPerCycle
	if ser < 1 {
		ser = 1
	}
	f.LinkFlits += ser
	f.linkFree[a][b] = start + ser
	return start + ser + f.cfg.LinkLatency
}

// Submit implements togsim.Fabric.
func (f *Fabric) Submit(r *togsim.MemReq) bool {
	src := r.Core % f.cfg.Chiplets
	dst := f.chipletOf(r.Addr)
	local := src == dst

	if local {
		f.LocalBytes += int64(r.Bytes)
	} else {
		f.RemoteBytes += int64(r.Bytes)
	}

	// The controller sees the local offset within its chiplet's stack.
	dr := &dram.Request{
		Addr:    r.Addr & (1<<f.cfg.ChipletAddrBits - 1),
		IsWrite: r.IsWrite,
		Src:     r.Src,
	}
	f.byDram[dr] = r
	at := f.cycle + 1
	if !local {
		// Request traverses the link; stores carry data, loads a header.
		bytes := 8
		if r.IsWrite {
			bytes = r.Bytes
		}
		at = f.linkDelay(src, dst, bytes, f.cycle)
	}
	f.toMem[dst] = append(f.toMem[dst], stagedReq{at: at, req: dr, mr: r})
	f.pending++
	return true
}

// Tick implements togsim.Fabric.
func (f *Fabric) Tick() {
	f.cycle++
	// Release staged requests whose link traversal finished, per chiplet,
	// in FIFO order; stop at a not-yet-due entry or a full controller.
	for ch := range f.toMem {
		q := f.toMem[ch]
		i := 0
		for ; i < len(q); i++ {
			if q[i].at > f.cycle {
				break
			}
			if !f.mems[ch].Submit(q[i].req) {
				break
			}
		}
		if i > 0 {
			f.toMem[ch] = append(q[:0], q[i:]...)
		}
	}

	for ch, m := range f.mems {
		m.Tick()
		for _, dr := range m.Completed() {
			r := f.byDram[dr]
			delete(f.byDram, dr)
			if r == nil {
				continue
			}
			src := r.Core % f.cfg.Chiplets
			if src == ch || r.IsWrite {
				// Local completion, or write acknowledged at the controller.
				f.done = append(f.done, r)
				f.pending--
				continue
			}
			// Load data returns over the link; queue by arrival cycle.
			at := f.linkDelay(ch, src, r.Bytes, f.cycle)
			if at <= f.cycle {
				at = f.cycle + 1
			}
			f.returns.Push(at, r)
		}
	}
	// Deliver link-returned loads due this cycle.
	n := len(f.done)
	f.done = f.returns.PopDue(f.cycle, f.done)
	f.pending -= len(f.done) - n
	if f.Probe != nil {
		if f.pending != f.lastPending {
			f.Probe.Counter(obs.LinkTrack, "chiplet.inflight", f.cycle, float64(f.pending))
			f.lastPending = f.pending
		}
		if b := f.LocalBytes + f.RemoteBytes; b != f.lastBytes {
			f.Probe.Counter(obs.LinkTrack, "chiplet.bytes_total", f.cycle, float64(b))
			f.lastBytes = b
		}
		if f.LinkFlits != f.lastFlits {
			f.Probe.Counter(obs.LinkTrack, "chiplet.link_flits_total", f.cycle, float64(f.LinkFlits))
			f.lastFlits = f.LinkFlits
		}
	}
}

// NextEvent implements togsim.Fabric. Each per-chiplet link FIFO's next
// activity is its head entry's arrival time (or next cycle when the head
// is already due but stalled on a full controller); beyond that the
// fabric wakes for link returns and the chiplet DRAM controllers.
func (f *Fabric) NextEvent() int64 {
	if len(f.done) > 0 {
		return f.cycle + 1
	}
	next := f.returns.NextCycle()
	for ch := range f.toMem {
		if q := f.toMem[ch]; len(q) > 0 {
			at := q[0].at
			if at <= f.cycle {
				return f.cycle + 1
			}
			if at < next {
				next = at
			}
		}
	}
	for _, m := range f.mems {
		if e := m.NextEvent(); e < next {
			next = e
		}
	}
	if next <= f.cycle {
		return f.cycle + 1
	}
	return next
}

// SkipTo implements togsim.Fabric, advancing every chiplet controller's
// clock in lock-step (link occupancy is kept in absolute cycles).
func (f *Fabric) SkipTo(cycle int64) {
	f.cycle = cycle
	for _, m := range f.mems {
		m.SkipTo(cycle)
	}
}

// Completed implements togsim.Fabric.
func (f *Fabric) Completed() []*togsim.MemReq {
	out := f.done
	f.done = nil
	return out
}

// Pending implements togsim.Fabric.
func (f *Fabric) Pending() int { return f.pending }

var _ togsim.Fabric = (*Fabric)(nil)

// Monolithic builds a same-capacity single-package fabric for the Fig. 9
// baseline: all stacks local, aggregated bandwidth.
func Monolithic(cfg npu.Config) *togsim.Setup {
	return togsim.NewStandard(cfg, togsim.SimpleNet, dram.FRFCFS)
}
