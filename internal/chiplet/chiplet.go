// Package chiplet is the §5.4 case-study view of the topology layer: a
// multi-chiplet NPU where each chiplet pairs one core with one local HBM
// stack, and chiplets are connected by a narrow off-chip link. It is now a
// thin shim over internal/topo — a chiplet system is an N×1 package mesh
// with one core per package — kept so the §5.4 experiment code and its
// vocabulary survive unchanged. The timing model (and its bit-exact
// behaviour, held by the equivalence tests in this package) lives in
// topo.Fabric.
package chiplet

import (
	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// Config describes the chiplet system.
type Config struct {
	Chiplets      int
	MemPerChiplet npu.MemConfig
	// ChipletAddrBits: address bit selecting the chiplet (memory capacity
	// per chiplet = 1 << ChipletAddrBits bytes).
	ChipletAddrBits uint
	// Link parameters (paper: 64 GB/s total, 32 GB/s each direction, 20 ns).
	LinkLatency       int64
	LinkBytesPerCycle int64 // per direction
}

// DefaultConfig mirrors the paper's setup at 940 MHz: two chiplets, 20 ns
// (~19 cycles) link latency, 32 GB/s (~34 B/cycle) per direction.
func DefaultConfig(mem npu.MemConfig) Config {
	return Config{
		Chiplets:          2,
		MemPerChiplet:     mem,
		ChipletAddrBits:   32,
		LinkLatency:       19,
		LinkBytesPerCycle: 34,
	}
}

// ChipletBase returns the DRAM base address of chiplet c's local memory.
func (c Config) ChipletBase(ch int) uint64 { return uint64(ch) << c.ChipletAddrBits }

// Topology expresses the chiplet system in the unified topology tree: an
// N×1 chain of single-core packages with zero extra on-package NoC latency
// (the pre-topology chiplet fabric had no such term).
func (c Config) Topology() topo.Config {
	return topo.Config{
		Name:              "chiplet",
		MeshX:             c.Chiplets,
		MeshY:             1,
		CoresPerPackage:   1,
		MemPerPackage:     c.MemPerChiplet,
		PkgAddrBits:       c.ChipletAddrBits,
		LinkLatency:       c.LinkLatency,
		LinkBytesPerCycle: c.LinkBytesPerCycle,
	}
}

// Fabric is the chiplet NUMA fabric — the 2-package special case of the
// topology fabric.
type Fabric = topo.Fabric

// NewFabric builds the chiplet fabric with FR-FCFS controllers.
func NewFabric(cfg Config) *Fabric { return topo.NewFabric(cfg.Topology()) }

// Monolithic builds a same-capacity single-package fabric for the Fig. 9
// baseline: all stacks local, aggregated bandwidth.
func Monolithic(cfg npu.Config) *togsim.Setup {
	return togsim.NewStandard(cfg, togsim.SimpleNet, dram.FRFCFS)
}
