package chiplet

// This file pins the refactor invariant of the topology layer: the old
// chiplet-specific fabric implementation (pre-internal/topo, reproduced
// below verbatim as legacyFabric) and topo.Fabric configured as an N×1
// single-core-package chain must be bit-identical — same cycle counts,
// same per-job results, same traffic stats — on arbitrary workloads. The
// §5.4 experiment additionally pins absolute cycle numbers in
// internal/exp (TestFig9Regression).

import (
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/togsim"
)

// legacyFabric is the pre-topology chiplet fabric, kept only as a test
// oracle.
type legacyFabric struct {
	cfg   Config
	mems  []*dram.Memory
	cycle int64

	linkFree [][]int64

	toMem   [][]legacyStaged
	returns sim.EventQueue[*togsim.MemReq]
	byDram  map[*dram.Request]*togsim.MemReq
	done    []*togsim.MemReq
	pending int

	LocalBytes, RemoteBytes int64
	LinkFlits               int64
}

type legacyStaged struct {
	at  int64
	req *dram.Request
	mr  *togsim.MemReq
}

func newLegacyFabric(cfg Config) *legacyFabric {
	f := &legacyFabric{
		cfg:    cfg,
		byDram: map[*dram.Request]*togsim.MemReq{},
		toMem:  make([][]legacyStaged, cfg.Chiplets),
	}
	for i := 0; i < cfg.Chiplets; i++ {
		f.mems = append(f.mems, dram.New(cfg.MemPerChiplet, dram.FRFCFS))
	}
	f.linkFree = make([][]int64, cfg.Chiplets)
	for i := range f.linkFree {
		f.linkFree[i] = make([]int64, cfg.Chiplets)
	}
	return f
}

func (f *legacyFabric) chipletOf(addr uint64) int {
	ch := int(addr >> f.cfg.ChipletAddrBits)
	if ch >= f.cfg.Chiplets {
		ch = f.cfg.Chiplets - 1
	}
	return ch
}

func (f *legacyFabric) linkDelay(a, b int, bytes int, now int64) int64 {
	start := now
	if t := f.linkFree[a][b]; t > start {
		start = t
	}
	ser := int64(bytes) / f.cfg.LinkBytesPerCycle
	if ser < 1 {
		ser = 1
	}
	f.LinkFlits += ser
	f.linkFree[a][b] = start + ser
	return start + ser + f.cfg.LinkLatency
}

func (f *legacyFabric) Submit(r *togsim.MemReq) bool {
	src := r.Core % f.cfg.Chiplets
	dst := f.chipletOf(r.Addr)
	local := src == dst

	if local {
		f.LocalBytes += int64(r.Bytes)
	} else {
		f.RemoteBytes += int64(r.Bytes)
	}

	dr := &dram.Request{
		Addr:    r.Addr & (1<<f.cfg.ChipletAddrBits - 1),
		IsWrite: r.IsWrite,
		Src:     r.Src,
	}
	f.byDram[dr] = r
	at := f.cycle + 1
	if !local {
		bytes := 8
		if r.IsWrite {
			bytes = r.Bytes
		}
		at = f.linkDelay(src, dst, bytes, f.cycle)
	}
	f.toMem[dst] = append(f.toMem[dst], legacyStaged{at: at, req: dr, mr: r})
	f.pending++
	return true
}

func (f *legacyFabric) Tick() {
	f.cycle++
	for ch := range f.toMem {
		q := f.toMem[ch]
		i := 0
		for ; i < len(q); i++ {
			if q[i].at > f.cycle {
				break
			}
			if !f.mems[ch].Submit(q[i].req) {
				break
			}
		}
		if i > 0 {
			f.toMem[ch] = append(q[:0], q[i:]...)
		}
	}

	for ch, m := range f.mems {
		m.Tick()
		for _, dr := range m.Completed() {
			r := f.byDram[dr]
			delete(f.byDram, dr)
			if r == nil {
				continue
			}
			src := r.Core % f.cfg.Chiplets
			if src == ch || r.IsWrite {
				f.done = append(f.done, r)
				f.pending--
				continue
			}
			at := f.linkDelay(ch, src, r.Bytes, f.cycle)
			if at <= f.cycle {
				at = f.cycle + 1
			}
			f.returns.Push(at, r)
		}
	}
	n := len(f.done)
	f.done = f.returns.PopDue(f.cycle, f.done)
	f.pending -= len(f.done) - n
}

func (f *legacyFabric) NextEvent() int64 {
	if len(f.done) > 0 {
		return f.cycle + 1
	}
	next := f.returns.NextCycle()
	for ch := range f.toMem {
		if q := f.toMem[ch]; len(q) > 0 {
			at := q[0].at
			if at <= f.cycle {
				return f.cycle + 1
			}
			if at < next {
				next = at
			}
		}
	}
	for _, m := range f.mems {
		if e := m.NextEvent(); e < next {
			next = e
		}
	}
	if next <= f.cycle {
		return f.cycle + 1
	}
	return next
}

func (f *legacyFabric) SkipTo(cycle int64) {
	f.cycle = cycle
	for _, m := range f.mems {
		m.SkipTo(cycle)
	}
}

func (f *legacyFabric) Completed() []*togsim.MemReq {
	out := f.done
	f.done = nil
	return out
}

func (f *legacyFabric) Pending() int { return f.pending }

var _ togsim.Fabric = (*legacyFabric)(nil)

// randChipletJobs builds a seeded random multi-core job mix with local and
// remote loads/stores in both directions.
func randChipletJobs(r *tensor.RNG, cc Config, cores int) []*togsim.Job {
	var jobs []*togsim.Job
	n := 1 + r.Intn(3)
	for j := 0; j < n; j++ {
		core := r.Intn(cores)
		inCh := r.Intn(cc.Chiplets)
		outCh := r.Intn(cc.Chiplets)
		tiles := 4 + int64(r.Intn(24))
		job := dmaJob("j", core, tiles,
			cc.ChipletBase(inCh)+uint64(j)<<18,
			cc.ChipletBase(outCh)+(1<<20)+uint64(j)<<18,
			r.Intn(2) == 0)
		job.Name = job.Name + string(rune('0'+j))
		job.Arrival = int64(r.Intn(3000))
		jobs = append(jobs, job)
	}
	return jobs
}

// TestTopoFabricMatchesLegacyChiplet holds the new topology fabric against
// the pre-refactor implementation: identical Result structs (cycles,
// per-job spans and counters) and identical traffic stats, across random
// workloads and both event-driven and strict engines. The comparison is
// the two-chiplet §5.4 configuration — the case the refactor must preserve
// bit-exactly. (Beyond two packages the models legitimately differ: the
// legacy fabric pretended every chiplet pair had a direct link, while the
// topology fabric routes multi-hop through the mesh.)
func TestTopoFabricMatchesLegacyChiplet(t *testing.T) {
	base, _ := chipCfg()
	for seed := uint64(1); seed <= 12; seed++ {
		r := tensor.NewRNG(seed * 0x9e3779b97f4a7c15)
		cc := DefaultConfig(base.Mem)
		cc.ChipletAddrBits = 24
		cfg := base
		jobs := randChipletJobs(r, cc, cfg.Cores)
		strict := seed%2 == 0

		run := func(f togsim.Fabric) togsim.Result {
			eng := togsim.NewEngine(cfg, f)
			eng.StrictTick = strict
			// Jobs are mutated by the engine (result bookkeeping), so each
			// run gets a fresh copy.
			cp := make([]*togsim.Job, len(jobs))
			for i, j := range jobs {
				cj := *j
				cp[i] = &cj
			}
			res, err := eng.Run(cp)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}

		leg := newLegacyFabric(cc)
		legRes := run(leg)
		neu := NewFabric(cc)
		neuRes := run(neu)

		if !reflect.DeepEqual(legRes, neuRes) {
			t.Fatalf("seed %d: results diverge\nlegacy: %+v\ntopo:   %+v", seed, legRes, neuRes)
		}
		if leg.LocalBytes != neu.LocalBytes || leg.RemoteBytes != neu.RemoteBytes || leg.LinkFlits != neu.LinkFlits {
			t.Fatalf("seed %d: stats diverge: legacy local/remote/flits %d/%d/%d, topo %d/%d/%d",
				seed, leg.LocalBytes, leg.RemoteBytes, leg.LinkFlits,
				neu.LocalBytes, neu.RemoteBytes, neu.LinkFlits)
		}
	}
}

// TestTopoPerPackageStatsSum checks the per-package split partitions the
// fabric-wide totals exactly.
func TestTopoPerPackageStatsSum(t *testing.T) {
	base, cc := chipCfg()
	f := NewFabric(cc)
	eng := togsim.NewEngine(base, f)
	jobs := []*togsim.Job{
		dmaJob("a", 0, 32, cc.ChipletBase(1), cc.ChipletBase(0)+(1<<20), true),
		dmaJob("b", 1, 32, cc.ChipletBase(1), cc.ChipletBase(0)+(1<<20), true),
	}
	if _, err := eng.Run(jobs); err != nil {
		t.Fatal(err)
	}
	var local, remote, flits int64
	for _, p := range f.Pkg {
		local += p.LocalBytes
		remote += p.RemoteBytes
		flits += p.LinkFlits
	}
	if local != f.LocalBytes || remote != f.RemoteBytes || flits != f.LinkFlits {
		t.Fatalf("per-package stats do not sum: %d/%d/%d vs totals %d/%d/%d",
			local, remote, flits, f.LocalBytes, f.RemoteBytes, f.LinkFlits)
	}
	if f.LinkFlits == 0 || f.RemoteBytes == 0 {
		t.Fatal("remote workload should cross the link")
	}
}
