package tensor

import "fmt"

// MatMul returns a @ b for 2-D tensors of shapes (M,K) x (K,N).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// ikj loop order for cache friendliness on row-major data.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB returns a @ b^T for shapes (M,K) x (N,K).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += arow[kk] * brow[kk]
			}
			out.Data[i*n+j] = acc
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// AddBiasRows adds a length-N bias vector to every row of an (M,N) tensor.
func AddBiasRows(a, bias *Tensor) *Tensor {
	if a.Rank() != 2 || bias.Rank() != 1 || a.Shape[1] != bias.Shape[0] {
		panic(fmt.Sprintf("tensor: AddBiasRows shape mismatch %v + %v", a.Shape, bias.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + bias.Data[j]
		}
	}
	return out
}

// Softmax computes a row-wise numerically-stable softmax over the last
// dimension of a 2-D tensor.
func Softmax(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Softmax requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := exp32(v - maxv)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// LayerNorm normalizes each row of a 2-D tensor to zero mean and unit
// variance, then applies gamma and beta (both length-N vectors).
func LayerNorm(a, gamma, beta *Tensor, eps float32) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: LayerNorm requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	if gamma.Len() != n || beta.Len() != n {
		panic("tensor: LayerNorm gamma/beta size mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(n)
		var varsum float32
		for _, v := range row {
			d := v - mean
			varsum += d * d
		}
		inv := 1 / sqrt32(varsum/float32(n)+eps)
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			orow[j] = (v-mean)*inv*gamma.Data[j] + beta.Data[j]
		}
	}
	return out
}

// RMSNorm scales each row of a 2-D tensor by the reciprocal of its root
// mean square, then applies gamma (a length-N vector) — the decoder-block
// normalization (no mean subtraction, no shift).
func RMSNorm(a, gamma *Tensor, eps float32) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: RMSNorm requires a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	if gamma.Len() != n {
		panic("tensor: RMSNorm gamma size mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		var ms float32
		for _, v := range row {
			ms += v * v
		}
		inv := 1 / sqrt32(ms/float32(n)+eps)
		orow := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			orow[j] = v * inv * gamma.Data[j]
		}
	}
	return out
}
