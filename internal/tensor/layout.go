package tensor

import (
	"fmt"
	"math"
)

// Layout names a memory layout for a 4-D activation tensor. The compiler's
// layout pass (§3.6.3 of the paper) picks among these to keep the systolic
// array utilized; the transpose-capable DMA engine performs the conversion
// on the fly during mvin.
type Layout int

const (
	// NCHW is PyTorch's default DRAM layout for conv activations.
	NCHW Layout = iota
	// HWNC is the default scratchpad tile layout for typical convolutions:
	// the two innermost dims (N, C) form a single GEMM tile.
	HWNC
	// HWC drops the batch dim; used when N == 1 so a WxC tile feeds the SA.
	HWC
	// HNWC is used when C is small: the input tile is N x (Kw*C).
	HNWC
	// NSH is the Transformer layout (batch, sequence, hidden).
	NSH
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case HWNC:
		return "HWNC"
	case HWC:
		return "HWC"
	case HNWC:
		return "HNWC"
	case NSH:
		return "NSH"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ConvShape describes a 2-D convolution problem. Stride and padding are
// symmetric in H and W.
type ConvShape struct {
	N, C, H, W  int // input: batch, channels, height, width
	K           int // output channels
	KH, KW      int // kernel height/width
	Stride, Pad int
}

// OutH returns the output height.
func (c ConvShape) OutH() int { return (c.H+2*c.Pad-c.KH)/c.Stride + 1 }

// OutW returns the output width.
func (c ConvShape) OutW() int { return (c.W+2*c.Pad-c.KW)/c.Stride + 1 }

// MACs returns the number of multiply-accumulate operations.
func (c ConvShape) MACs() int64 {
	return int64(c.N) * int64(c.K) * int64(c.OutH()) * int64(c.OutW()) *
		int64(c.C) * int64(c.KH) * int64(c.KW)
}

// GEMMDims returns the (M, K, N) dimensions of the implicit-im2col GEMM that
// implements this convolution.
func (c ConvShape) GEMMDims() (m, k, n int) {
	return c.N * c.OutH() * c.OutW(), c.C * c.KH * c.KW, c.K
}

// Im2Col expands an NCHW input tensor into the (N*OH*OW, C*KH*KW) matrix so
// that convolution becomes a GEMM against a (C*KH*KW, K) filter matrix.
func Im2Col(in *Tensor, cs ConvShape) *Tensor {
	if in.Rank() != 4 || in.Shape[0] != cs.N || in.Shape[1] != cs.C || in.Shape[2] != cs.H || in.Shape[3] != cs.W {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v does not match %+v", in.Shape, cs))
	}
	oh, ow := cs.OutH(), cs.OutW()
	rows := cs.N * oh * ow
	cols := cs.C * cs.KH * cs.KW
	out := New(rows, cols)
	for n := 0; n < cs.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				r := (n*oh+y)*ow + x
				for c := 0; c < cs.C; c++ {
					for ky := 0; ky < cs.KH; ky++ {
						iy := y*cs.Stride + ky - cs.Pad
						for kx := 0; kx < cs.KW; kx++ {
							ix := x*cs.Stride + kx - cs.Pad
							col := (c*cs.KH+ky)*cs.KW + kx
							var v float32
							if iy >= 0 && iy < cs.H && ix >= 0 && ix < cs.W {
								v = in.At(n, c, iy, ix)
							}
							out.Data[r*cols+col] = v
						}
					}
				}
			}
		}
	}
	return out
}

// FilterToMatrix reshapes a (K, C, KH, KW) filter tensor into the
// (C*KH*KW, K) matrix used by the im2col GEMM.
func FilterToMatrix(f *Tensor, cs ConvShape) *Tensor {
	if f.Rank() != 4 || f.Shape[0] != cs.K || f.Shape[1] != cs.C || f.Shape[2] != cs.KH || f.Shape[3] != cs.KW {
		panic(fmt.Sprintf("tensor: FilterToMatrix shape %v does not match %+v", f.Shape, cs))
	}
	cols := cs.C * cs.KH * cs.KW
	out := New(cols, cs.K)
	for k := 0; k < cs.K; k++ {
		for c := 0; c < cs.C; c++ {
			for ky := 0; ky < cs.KH; ky++ {
				for kx := 0; kx < cs.KW; kx++ {
					row := (c*cs.KH+ky)*cs.KW + kx
					out.Data[row*cs.K+k] = f.At(k, c, ky, kx)
				}
			}
		}
	}
	return out
}

// Conv2D computes a reference convolution via im2col + GEMM. Input is NCHW,
// filter is KCHW; output is (N, K, OH, OW).
func Conv2D(in, filter *Tensor, cs ConvShape) *Tensor {
	cols := Im2Col(in, cs)
	fm := FilterToMatrix(filter, cs)
	prod := MatMul(cols, fm) // (N*OH*OW, K)
	oh, ow := cs.OutH(), cs.OutW()
	out := New(cs.N, cs.K, oh, ow)
	for n := 0; n < cs.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				r := (n*oh+y)*ow + x
				for k := 0; k < cs.K; k++ {
					out.Set(prod.Data[r*cs.K+k], n, k, y, x)
				}
			}
		}
	}
	return out
}

// MaxPool2D applies max pooling with the given window and stride over NCHW.
func MaxPool2D(in *Tensor, window, stride int) *Tensor {
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	out := New(n, c, oh, ow)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					m := float32(math.Inf(-1))
					for ky := 0; ky < window; ky++ {
						for kx := 0; kx < window; kx++ {
							v := in.At(ni, ci, y*stride+ky, x*stride+kx)
							if v > m {
								m = v
							}
						}
					}
					out.Set(m, ni, ci, y, x)
				}
			}
		}
	}
	return out
}

// GlobalAvgPool2D averages over the spatial dimensions of NCHW, returning
// an (N, C) tensor.
func GlobalAvgPool2D(in *Tensor) *Tensor {
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := New(n, c)
	inv := 1 / float32(h*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			var s float32
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					s += in.At(ni, ci, y, x)
				}
			}
			out.Set(s*inv, ni, ci)
		}
	}
	return out
}

// ToHWNC converts an NCHW tensor to HWNC order (contiguous).
func ToHWNC(in *Tensor) *Tensor {
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := New(h, w, n, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out.Set(in.At(ni, ci, y, x), y, x, ni, ci)
				}
			}
		}
	}
	return out
}

// FromHWNC converts an HWNC tensor back to NCHW.
func FromHWNC(in *Tensor) *Tensor {
	h, w, n, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := New(n, c, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ni := 0; ni < n; ni++ {
				for ci := 0; ci < c; ci++ {
					out.Set(in.At(y, x, ni, ci), ni, ci, y, x)
				}
			}
		}
	}
	return out
}

func exp32(x float32) float32  { return float32(math.Exp(float64(x))) }
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }
