package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvShapeDims(t *testing.T) {
	cs := ConvShape{N: 1, C: 64, H: 56, W: 56, K: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if cs.OutH() != 56 || cs.OutW() != 56 {
		t.Fatalf("padded 3x3 stride-1 conv must preserve spatial dims, got %dx%d", cs.OutH(), cs.OutW())
	}
	m, k, n := cs.GEMMDims()
	if m != 56*56 || k != 64*9 || n != 64 {
		t.Fatalf("GEMMDims = (%d,%d,%d)", m, k, n)
	}
	if cs.MACs() != int64(56*56)*int64(64*9)*64 {
		t.Fatalf("MACs = %d", cs.MACs())
	}
}

// direct convolution used as an independent oracle for Im2Col+GEMM.
func convDirect(in, filter *Tensor, cs ConvShape) *Tensor {
	oh, ow := cs.OutH(), cs.OutW()
	out := New(cs.N, cs.K, oh, ow)
	for n := 0; n < cs.N; n++ {
		for k := 0; k < cs.K; k++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float32
					for c := 0; c < cs.C; c++ {
						for ky := 0; ky < cs.KH; ky++ {
							for kx := 0; kx < cs.KW; kx++ {
								iy := y*cs.Stride + ky - cs.Pad
								ix := x*cs.Stride + kx - cs.Pad
								if iy < 0 || iy >= cs.H || ix < 0 || ix >= cs.W {
									continue
								}
								acc += in.At(n, c, iy, ix) * filter.At(k, c, ky, kx)
							}
						}
					}
					out.Set(acc, n, k, y, x)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		cs := ConvShape{
			N: 1 + r.Intn(2), C: 1 + r.Intn(4), H: 4 + r.Intn(5), W: 4 + r.Intn(5),
			K: 1 + r.Intn(4), KH: 3, KW: 3, Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		in := RandNormal(r, 0, 1, cs.N, cs.C, cs.H, cs.W)
		filt := RandNormal(r, 0, 1, cs.K, cs.C, cs.KH, cs.KW)
		return AllClose(Conv2D(in, filt, cs), convDirect(in, filt, cs), 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHWNCRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		in := RandNormal(r, 0, 1, 1+r.Intn(3), 1+r.Intn(4), 1+r.Intn(5), 1+r.Intn(5))
		return AllClose(FromHWNC(ToHWNC(in)), in, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := MaxPool2D(in, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("MaxPool2D[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := GlobalAvgPool2D(in)
	if out.At(0, 0) != 2.5 {
		t.Fatalf("GlobalAvgPool2D = %g, want 2.5", out.At(0, 0))
	}
}

func TestLayoutString(t *testing.T) {
	cases := map[Layout]string{NCHW: "NCHW", HWNC: "HWNC", HWC: "HWC", HNWC: "HNWC", NSH: "NSH"}
	for l, want := range cases {
		if l.String() != want {
			t.Fatalf("Layout(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG must be deterministic for equal seeds")
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %g", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %g", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %g", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestXavierInitBounds(t *testing.T) {
	r := NewRNG(13)
	w := XavierInit(r, 100, 50)
	bound := float32(0.2) // sqrt(6/150) ~ 0.2
	for _, v := range w.Data {
		if v < -bound-1e-6 || v > bound+1e-6 {
			t.Fatalf("Xavier value %g outside +-%g", v, bound)
		}
	}
}
