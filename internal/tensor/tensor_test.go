package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", a.Rank())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
	if a.SizeBytes() != 96 {
		t.Fatalf("SizeBytes = %d, want 96", a.SizeBytes())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 1, 2)
	if got := a.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := a.Data[1*4+2]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %g", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 1)
	if a.At(0, 1) != 99 {
		t.Fatal("Reshape must be a view over the same data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 42
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data; got[0] != 5 || got[3] != 5 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(a, b).Data; got[0] != -3 || got[3] != 3 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 6 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Div(a, b).Data; got[3] != 4 {
		t.Fatalf("Div wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
	if got := AddScalar(a, 1).Data; got[0] != 2 {
		t.Fatalf("AddScalar wrong: %v", got)
	}
}

func TestReLUAndActivations(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2}, 3)
	r := ReLU(a)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 {
		t.Fatalf("ReLU wrong: %v", r.Data)
	}
	g := GELU(FromSlice([]float32{0}, 1))
	if g.Data[0] != 0 {
		t.Fatalf("GELU(0) = %g, want 0", g.Data[0])
	}
	// GELU(x) ~ x for large positive x.
	gl := GELU(FromSlice([]float32{10}, 1))
	if math.Abs(float64(gl.Data[0])-10) > 1e-3 {
		t.Fatalf("GELU(10) = %g, want ~10", gl.Data[0])
	}
	th := Tanh(FromSlice([]float32{0}, 1))
	if th.Data[0] != 0 {
		t.Fatal("Tanh(0) != 0")
	}
}

func TestSumMaxArgMax(t *testing.T) {
	a := FromSlice([]float32{1, 5, 3, 2, 9, 4}, 2, 3)
	if Sum(a) != 24 {
		t.Fatalf("Sum = %g", Sum(a))
	}
	if Max(a) != 9 {
		t.Fatalf("Max = %g", Max(a))
	}
	if ArgMaxRow(a, 0) != 1 {
		t.Fatalf("ArgMaxRow(0) = %d", ArgMaxRow(a, 0))
	}
	if ArgMaxRow(a, 1) != 1 {
		t.Fatalf("ArgMaxRow(1) = %d", ArgMaxRow(a, 1))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	r := NewRNG(1)
	a := RandNormal(r, 0, 1, 5, 7)
	b := RandNormal(r, 0, 1, 4, 7)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose2D(b))
	if !AllClose(got, want, 1e-5, 1e-5) {
		t.Fatal("MatMulTransB disagrees with MatMul(a, b^T)")
	}
}

func TestTranspose2DInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := RandNormal(r, 0, 1, m, n)
		return AllClose(Transpose2D(Transpose2D(a)), a, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(12)
		a := RandNormal(r, 0, 1, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		return AllClose(MatMul(a, id), a, 1e-6, 1e-6) && AllClose(MatMul(id, a), a, 1e-6, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		c := RandNormal(r, 0, 1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(lhs, rhs, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, n := 1+r.Intn(6), 1+r.Intn(20)
		a := RandNormal(r, 0, 5, m, n)
		s := Softmax(a)
		for i := 0; i < m; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				v := float64(s.At(i, j))
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	r := NewRNG(3)
	a := RandNormal(r, 0, 1, 4, 8)
	b := AddScalar(a, 100)
	if !AllClose(Softmax(a), Softmax(b), 1e-4, 1e-5) {
		t.Fatal("softmax must be invariant to constant shifts")
	}
}

func TestLayerNormStatistics(t *testing.T) {
	r := NewRNG(4)
	a := RandNormal(r, 3, 2, 5, 64)
	gamma := Full(1, 64)
	beta := New(64)
	out := LayerNorm(a, gamma, beta, 1e-5)
	for i := 0; i < 5; i++ {
		var mean, varsum float64
		for j := 0; j < 64; j++ {
			mean += float64(out.At(i, j))
		}
		mean /= 64
		for j := 0; j < 64; j++ {
			d := float64(out.At(i, j)) - mean
			varsum += d * d
		}
		varsum /= 64
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean = %g, want ~0", i, mean)
		}
		if math.Abs(varsum-1) > 1e-2 {
			t.Fatalf("row %d var = %g, want ~1", i, varsum)
		}
	}
}

func TestAddBiasRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	bias := FromSlice([]float32{10, 20}, 2)
	out := AddBiasRows(a, bias)
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("AddBiasRows[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.0001}, 2)
	if !AllClose(a, b, 1e-3, 1e-3) {
		t.Fatal("AllClose should accept small diffs")
	}
	if AllClose(a, b, 0, 1e-6) {
		t.Fatal("AllClose should reject with tight tolerance")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0001) > 1e-5 {
		t.Fatalf("MaxAbsDiff = %g", d)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Add(New(2), New(3))
}
