// Package tensor implements the dense tensor substrate used throughout the
// simulator: shapes, strides, elementwise math, reference GEMM/CONV, layout
// transforms (NCHW/HWNC/NSH) and im2col. It plays the role of the numeric
// core of the ML framework (the paper builds on PyTorch; we build on this).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or FromSlice to construct one.
type Tensor struct {
	Shape  []int
	Stride []int
	Data   []float32
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := NumElements(shape)
	return &Tensor{
		Shape:  append([]int(nil), shape...),
		Stride: contiguousStrides(shape),
		Data:   make([]float32, n),
	}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != NumElements(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{
		Shape:  append([]int(nil), shape...),
		Stride: contiguousStrides(shape),
		Data:   data,
	}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// NumElements returns the number of elements implied by shape.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func contiguousStrides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return NumElements(t.Shape) }

// SizeBytes returns the footprint in bytes (4 bytes per element).
func (t *Tensor) SizeBytes() int { return 4 * t.Len() }

// Clone returns a deep copy of t (always contiguous).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off += x * t.Stride[i]
	}
	return off
}

// Reshape returns a view with a new shape covering the same data. The volume
// must match. The receiver must be contiguous.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if NumElements(shape) != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{
		Shape:  append([]int(nil), shape...),
		Stride: contiguousStrides(shape),
		Data:   t.Data,
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description (shape plus leading values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := t.Len()
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if show < n {
		fmt.Fprintf(&b, " ... (%d)", n)
	}
	b.WriteString("]")
	return b.String()
}

// --- Elementwise operations ---------------------------------------------

func checkSame(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("add", a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("sub", a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame("mul", a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSame("div", a, b)
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] / b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddScalar returns a + s.
func AddScalar(a *Tensor, s float32) *Tensor {
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	return out
}

// Map applies f to every element.
func Map(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.Shape...)
	for i := range out.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	return Map(a, func(x float32) float32 {
		if x < 0 {
			return 0
		}
		return x
	})
}

// GELU returns the tanh-approximation GELU of a, matching the activation
// used in BERT.
func GELU(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return Map(a, func(x float32) float32 {
		x64 := float64(x)
		return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	})
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	return Map(a, func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	return Map(a, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// Sqrt returns sqrt(a) elementwise.
func Sqrt(a *Tensor) *Tensor {
	return Map(a, func(x float32) float32 { return float32(math.Sqrt(float64(x))) })
}

// Sum returns the sum of all elements (accumulated in float64 for stability).
func Sum(a *Tensor) float32 {
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	return float32(s)
}

// Max returns the maximum element. It panics on an empty tensor.
func Max(a *Tensor) float32 {
	if a.Len() == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMaxRow returns the index of the maximum in row r of a 2-D tensor.
func ArgMaxRow(a *Tensor, r int) int {
	if a.Rank() != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := a.Shape[1]
	best, bestIdx := a.Data[r*cols], 0
	for c := 1; c < cols; c++ {
		if v := a.Data[r*cols+c]; v > best {
			best, bestIdx = v, c
		}
	}
	return bestIdx
}

// AllClose reports whether all elements of a and b are within atol + rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		if math.IsNaN(x) != math.IsNaN(y) {
			return false
		}
		if math.Abs(x-y) > atol+rtol*math.Abs(y) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference.
func MaxAbsDiff(a, b *Tensor) float64 {
	checkSame("MaxAbsDiff", a, b)
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}
