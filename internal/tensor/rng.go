package tensor

import "math"

// RNG is a small deterministic SplitMix64-based generator used everywhere in
// the repository so experiments are reproducible without pulling in
// math/rand's global state.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandUniform fills a new tensor with uniform values in [lo, hi).
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float32()
	}
	return t
}

// RandNormal fills a new tensor with Gaussian samples N(mean, std^2).
func RandNormal(r *RNG, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = mean + std*float32(r.Norm())
	}
	return t
}

// XavierInit returns a weight tensor with Xavier/Glorot uniform init for a
// (fanIn, fanOut) linear layer.
func XavierInit(r *RNG, fanIn, fanOut int) *Tensor {
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return RandUniform(r, -bound, bound, fanIn, fanOut)
}
