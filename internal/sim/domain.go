package sim

import "sync"

// Domain is one independently steppable partition of a simulation: it owns
// its own clock position, event sources, and component state, and promises
// that stepping it never touches another domain's mutable state. Cross-
// domain effects must be staged locally and applied by the engine at a
// barrier between windows — that confinement is what makes it legal to
// step domains in parallel goroutines.
//
// The time model is the conservative window scheme: the engine computes a
// safe horizon (no cross-domain effect can become visible inside the
// window, bounded by the coupling fabric's lookahead), then every domain
// executes its local events inside the window independently.
type Domain interface {
	// NextEvent returns the earliest cycle strictly greater than now at
	// which the domain has local work, or Never. Like Component.NextEvent,
	// the value must never overshoot: undershooting only costs speed,
	// overshooting breaks equivalence with serial execution.
	NextEvent(now int64) int64
	// StepTo executes the domain's local events in (now, limit] and
	// returns the cycle actually reached. A domain may stop early
	// (reached < limit) when it stages a cross-domain effect whose
	// lookahead expires before the window does; it must then not have
	// executed any event beyond the returned cycle. On error the returned
	// cycle is the cycle at which the error occurred.
	StepTo(now, limit int64) (int64, error)
}

// DomainError is a stepping failure tagged with where it happened, so an
// engine can pick the same error a serial execution would have hit first
// (lowest cycle, then lowest domain index) regardless of goroutine timing.
type DomainError struct {
	Domain int
	Cycle  int64
	Err    error
}

func (e *DomainError) Error() string { return e.Err.Error() }
func (e *DomainError) Unwrap() error { return e.Err }

// WindowPool runs domain windows on a fixed set of persistent worker
// goroutines. Reusing workers keeps the per-window cost to a channel
// send/receive pair per active domain, which matters because conservative
// windows can be short when cross-domain traffic is dense.
type WindowPool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
}

// NewWindowPool starts workers goroutines (minimum 1).
func NewWindowPool(workers int) *WindowPool {
	if workers < 1 {
		workers = 1
	}
	p := &WindowPool{workers: workers, tasks: make(chan func(), workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *WindowPool) Workers() int { return p.workers }

// Close stops the workers. The pool must be idle (no StepAll in flight).
func (p *WindowPool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// StepAll advances every domain through the window ending at limit: domain
// i starts from now[i] (its own watermark — domains are allowed to run
// ahead of each other between barriers). Domains with no local event in
// the window are not stepped and report reached = limit, which is sound
// because having no event ≤ limit means stepping would be a no-op.
//
// reached[i] is written for every domain. The returned error is
// deterministic: among failing domains, the one with the lowest error
// cycle wins, ties broken by the lowest domain index — the same error a
// serial sweep in index order would have hit first.
func (p *WindowPool) StepAll(domains []Domain, now []int64, limit int64, reached []int64) error {
	errs := make([]error, len(domains))
	// Collect the active domains first; a window with zero or one active
	// domain runs inline (no cross-goroutine handoff to amortize).
	active := 0
	last := -1
	for i, d := range domains {
		if now[i] >= limit {
			reached[i] = now[i]
			continue
		}
		if d.NextEvent(now[i]) > limit {
			reached[i] = limit
			continue
		}
		reached[i] = -1 // marks "step me"
		active++
		last = i
	}
	switch {
	case active == 0:
	case active == 1:
		reached[last], errs[last] = domains[last].StepTo(now[last], limit)
	default:
		var wg sync.WaitGroup
		wg.Add(active)
		for i := range domains {
			if reached[i] != -1 {
				continue
			}
			i := i
			p.tasks <- func() {
				defer wg.Done()
				reached[i], errs[i] = domains[i].StepTo(now[i], limit)
			}
		}
		wg.Wait()
	}
	var worst *DomainError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if worst == nil || reached[i] < worst.Cycle {
			worst = &DomainError{Domain: i, Cycle: reached[i], Err: err}
		}
	}
	if worst != nil {
		return worst
	}
	return nil
}
