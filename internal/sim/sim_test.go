package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue[int]
	if q.NextCycle() != Never {
		t.Fatalf("empty queue NextCycle = %d, want Never", q.NextCycle())
	}
	q.Push(30, 1)
	q.Push(10, 2)
	q.Push(20, 3)
	if q.NextCycle() != 10 {
		t.Fatalf("NextCycle = %d, want 10", q.NextCycle())
	}
	var got []int
	for q.Len() > 0 {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		got = append(got, v)
	}
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue must report !ok")
	}
}

// Same-cycle events must pop in insertion order: the component refactors
// depend on this to keep completion order identical to per-cycle scans.
func TestEventQueueFIFOWithinCycle(t *testing.T) {
	var q EventQueue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	q.Push(3, -1)
	for i := -1; i < 100; i++ {
		v, _ := q.Pop()
		if v != i {
			t.Fatalf("pop = %d, want %d", v, i)
		}
	}
}

func TestEventQueuePopDue(t *testing.T) {
	var q EventQueue[string]
	q.Push(1, "a")
	q.Push(3, "c")
	q.Push(2, "b")
	q.Push(7, "d")
	out := q.PopDue(3, nil)
	if len(out) != 3 || out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Fatalf("PopDue(3) = %v", out)
	}
	if q.NextCycle() != 7 {
		t.Fatalf("NextCycle after PopDue = %d, want 7", q.NextCycle())
	}
	if out = q.PopDue(6, out[:0]); len(out) != 0 {
		t.Fatalf("PopDue(6) = %v, want empty", out)
	}
}

func TestEventQueueRandomizedAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var q EventQueue[int]
	type ev struct {
		cycle int64
		id    int
	}
	var ref []ev
	for i := 0; i < 2000; i++ {
		c := int64(r.Intn(50))
		q.Push(c, i)
		ref = append(ref, ev{c, i})
	}
	sort.SliceStable(ref, func(a, b int) bool { return ref[a].cycle < ref[b].cycle })
	for i, want := range ref {
		v, ok := q.Pop()
		if !ok || v != want.id {
			t.Fatalf("pop %d = %d (ok=%v), want %d", i, v, ok, want.id)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	if c.Tick() != 1 || c.Now() != 1 {
		t.Fatal("Tick must advance by one")
	}
	c.SkipTo(100)
	if c.Now() != 100 {
		t.Fatalf("SkipTo: now = %d", c.Now())
	}
	c.SkipTo(100) // same cycle is legal
	defer func() {
		if recover() == nil {
			t.Fatal("backwards SkipTo must panic")
		}
	}()
	c.SkipTo(99)
}

func TestEarliest(t *testing.T) {
	if Earliest() != Never {
		t.Fatal("Earliest() must be Never")
	}
	if Earliest(5, Never, 3, 9) != 3 {
		t.Fatal("Earliest picked wrong minimum")
	}
}

// countingComponent records Tick/SkipTo calls for Meter tests.
type countingComponent struct {
	ticks     int
	skippedTo int64
}

func (c *countingComponent) Tick()              { c.ticks++ }
func (c *countingComponent) NextEvent() int64   { return Never }
func (c *countingComponent) SkipTo(cycle int64) { c.skippedTo = cycle }

func TestMeter(t *testing.T) {
	inner := &countingComponent{}
	m := Meter{C: inner}
	m.Tick()
	m.Tick()
	m.Tick()
	if m.Ticked != 3 || inner.ticks != 3 {
		t.Fatalf("Ticked = %d (inner %d), want 3", m.Ticked, inner.ticks)
	}
	m.SkipTo(10) // now = 3, so 7 cycles skipped
	if m.Skipped != 7 || inner.skippedTo != 10 {
		t.Fatalf("Skipped = %d (inner at %d), want 7 at 10", m.Skipped, inner.skippedTo)
	}
	m.SkipTo(10) // same-cycle skip adds nothing
	m.SkipTo(9)  // backwards skip is forwarded but counts nothing
	if m.Skipped != 7 {
		t.Fatalf("redundant skips changed the count: %d", m.Skipped)
	}
	m.Tick()
	if m.Ticked != 4 || m.Skipped != 7 {
		t.Fatalf("after mixed use: Ticked=%d Skipped=%d, want 4/7", m.Ticked, m.Skipped)
	}
	if m.NextEvent() != Never {
		t.Fatal("NextEvent must delegate to the wrapped component")
	}
}

// TestMonotonicQueueMatchesEventQueue: on any stream of pushes that is
// monotone per lane, MonotonicQueue must pop in exactly the (cycle,
// insertion) order the stable heap produces.
func TestMonotonicQueueMatchesEventQueue(t *testing.T) {
	const lanes = 5
	mq := NewMonotonicQueue[int](lanes)
	var eq EventQueue[int]
	clocks := make([]int64, lanes)
	rnd := uint64(12345)
	next := func(n uint64) uint64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return (rnd >> 33) % n
	}
	for i := 0; i < 10_000; i++ {
		lane := int(next(lanes))
		clocks[lane] += int64(next(7)) // nondecreasing, with repeats
		mq.Push(lane, clocks[lane], i)
		eq.Push(clocks[lane], i)
	}
	if mq.Len() != eq.Len() {
		t.Fatalf("Len: %d vs %d", mq.Len(), eq.Len())
	}
	for step := int64(0); eq.Len() > 0; step += 3 {
		if mq.NextCycle() != eq.NextCycle() {
			t.Fatalf("NextCycle at %d: %d vs %d", step, mq.NextCycle(), eq.NextCycle())
		}
		got := mq.PopDue(step, nil)
		want := eq.PopDue(step, nil)
		if len(got) != len(want) {
			t.Fatalf("PopDue(%d): %d events vs %d", step, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("PopDue(%d)[%d]: %d vs %d", step, k, got[k], want[k])
			}
		}
	}
	if mq.Len() != 0 {
		t.Fatalf("%d events left", mq.Len())
	}
}

// TestMonotonicQueueRejectsRegression: a lane pushing backwards in time is
// a modeling bug and must panic.
func TestMonotonicQueueRejectsRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on regressing lane cycle")
		}
	}()
	q := NewMonotonicQueue[int](1)
	q.Push(0, 10, 1)
	q.Push(0, 9, 2)
}
