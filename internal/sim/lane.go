package sim

// MonotonicQueue is an event queue for producers whose due cycles are
// monotone nondecreasing within each lane — the common shape of pipelined
// hardware models, where each channel's data bus or each port's
// serialization clock only moves forward. Each lane is a head-indexed
// FIFO, so Push and Pop are O(1) plus a merge across the (few) lane
// heads; under saturation this replaces O(log n) heap sifts over
// thousands of in-flight events with a scan of per-lane heads.
//
// Pops come out ordered by (due cycle, global insertion sequence) — the
// exact order EventQueue produces — so swapping one for the other never
// changes simulation results, only the cost of reaching them.
type MonotonicQueue[T any] struct {
	lanes []laneFIFO[T]
	n     int
	seq   uint64
	next  int64 // exact earliest queued cycle; Never when empty
}

type laneEv[T any] struct {
	cycle int64
	seq   uint64
	v     T
}

type laneFIFO[T any] struct {
	q    []laneEv[T]
	head int
}

// NewMonotonicQueue returns a queue with the given number of lanes.
func NewMonotonicQueue[T any](lanes int) *MonotonicQueue[T] {
	return &MonotonicQueue[T]{lanes: make([]laneFIFO[T], lanes), next: Never}
}

// AddLane grows the queue by one lane and returns its index.
func (q *MonotonicQueue[T]) AddLane() int {
	q.lanes = append(q.lanes, laneFIFO[T]{})
	return len(q.lanes) - 1
}

// Len returns the number of queued events.
func (q *MonotonicQueue[T]) Len() int { return q.n }

// NextCycle returns the due cycle of the earliest event, or Never when
// empty.
func (q *MonotonicQueue[T]) NextCycle() int64 { return q.next }

// Push schedules v at the given cycle on a lane. Cycles must be monotone
// nondecreasing per lane; a violation panics rather than silently
// reordering deliveries.
func (q *MonotonicQueue[T]) Push(lane int, cycle int64, v T) {
	l := &q.lanes[lane]
	if k := len(l.q); k > l.head && cycle < l.q[k-1].cycle {
		panic("sim: MonotonicQueue lane cycle decreased")
	}
	l.q = append(l.q, laneEv[T]{cycle: cycle, seq: q.seq, v: v})
	q.seq++
	q.n++
	if cycle < q.next {
		q.next = cycle
	}
}

// PopDue appends to out every event due at or before cycle, in due-cycle
// then insertion order, and returns the extended slice.
func (q *MonotonicQueue[T]) PopDue(cycle int64, out []T) []T {
	if q.next > cycle {
		return out
	}
	for q.n > 0 {
		// One scan finds the winning lane and the runner-up bound; the
		// winner then drains its whole run (consecutive events that stay
		// globally minimal) without rescanning — bursty hardware delivers
		// runs from one lane, so most pops cost O(1), not O(lanes).
		best := -1
		var bCycle, sCycle int64
		var bSeq, sSeq uint64
		sCycle = Never
		for i := range q.lanes {
			l := &q.lanes[i]
			if l.head < len(l.q) {
				e := &l.q[l.head]
				switch {
				case best < 0 || e.cycle < bCycle || (e.cycle == bCycle && e.seq < bSeq):
					if best >= 0 {
						sCycle, sSeq = bCycle, bSeq
					}
					best, bCycle, bSeq = i, e.cycle, e.seq
				case e.cycle < sCycle || (e.cycle == sCycle && e.seq < sSeq):
					sCycle, sSeq = e.cycle, e.seq
				}
			}
		}
		if best < 0 || bCycle > cycle {
			break
		}
		l := &q.lanes[best]
		for l.head < len(l.q) {
			e := &l.q[l.head]
			if e.cycle > cycle || e.cycle > sCycle || (e.cycle == sCycle && e.seq > sSeq) {
				break
			}
			out = append(out, e.v)
			l.q[l.head] = laneEv[T]{} // release the payload for GC
			l.head++
			q.n--
		}
		switch {
		case l.head == len(l.q):
			l.q, l.head = l.q[:0], 0
		case l.head >= 1024 && 2*l.head >= len(l.q):
			// Amortized compaction: shift the (smaller) tail once per
			// >=1024 pops so saturated lanes do not grow without bound.
			l.q, l.head = l.q[:copy(l.q, l.q[l.head:])], 0
		}
	}
	q.recompute()
	return out
}

func (q *MonotonicQueue[T]) recompute() {
	q.next = Never
	if q.n == 0 {
		return
	}
	for i := range q.lanes {
		l := &q.lanes[i]
		if l.head < len(l.q) && l.q[l.head].cycle < q.next {
			q.next = l.q[l.head].cycle
		}
	}
}
