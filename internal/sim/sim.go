// Package sim provides the discrete-event simulation kernel shared by the
// TLS engine and its component models (DRAM controllers, NoC models, the
// chiplet NUMA fabric). Instead of polling every component every cycle, the
// engine asks each component for the earliest future cycle at which its
// observable state can change (NextEvent) and jumps the clock straight
// there (SkipTo), skipping idle stretches entirely. The contract is
// designed so that cycle-skipping is *observationally equivalent* to
// per-cycle ticking: a component may only be skipped across cycles in
// which ticking it would have been a no-op, and SkipTo must leave it in
// exactly the state per-cycle ticking would have (including time-keyed
// side effects such as DRAM refresh, which implementations replay).
package sim

import "math"

// Never is the NextEvent value of a component with no scheduled work: the
// engine may skip it entirely until some other event feeds it new input.
const Never = int64(math.MaxInt64)

// Component is the clocked-model contract. All components sharing an
// engine advance in lock-step: one Tick per simulated cycle, or one SkipTo
// when the engine proves the intervening cycles are idle.
type Component interface {
	// Tick advances the component one cycle.
	Tick()
	// NextEvent returns the earliest future cycle (in the shared clock
	// domain, i.e. strictly greater than the current cycle) at which the
	// component's observable state can change, or Never when idle. A
	// component that cannot cheaply bound its next event must return
	// current cycle + 1; returning too small a value only costs speed,
	// returning too large a value breaks equivalence.
	NextEvent() int64
	// SkipTo advances the component's clock to cycle without simulating
	// the intermediate cycles. Only legal when cycle < NextEvent(); the
	// resulting state must be bit-identical to calling Tick repeatedly.
	SkipTo(cycle int64)
}

// Clock tracks simulated time for an engine driving Components.
type Clock struct {
	now int64
}

// Now returns the current cycle.
func (c *Clock) Now() int64 { return c.now }

// Tick advances one cycle and returns the new time.
func (c *Clock) Tick() int64 {
	c.now++
	return c.now
}

// SkipTo jumps the clock forward to cycle. Jumping backwards is a kernel
// misuse and panics rather than silently corrupting time.
func (c *Clock) SkipTo(cycle int64) {
	if cycle < c.now {
		panic("sim: clock skipped backwards")
	}
	c.now = cycle
}

// Earliest returns the minimum of the given event cycles (Never when
// called with none). Engines use it to fold component NextEvents.
func Earliest(cycles ...int64) int64 {
	next := Never
	for _, c := range cycles {
		if c < next {
			next = c
		}
	}
	return next
}

// Meter wraps a Component and accounts busy versus skipped cycles at the
// kernel boundary: every Tick is one busy cycle, every SkipTo jump is
// skipped idle time. Engines drive the wrapped component through the
// meter and read Ticked/Skipped afterwards — the raw data behind
// "cycle-skipping made this run N× cheaper" and the per-component
// occupancy counters the observability layer exports. The wrapper is two
// integer updates per call; it is cheap enough to leave permanently
// installed.
type Meter struct {
	C       Component
	Ticked  int64 // cycles advanced one at a time (the component did work)
	Skipped int64 // cycles jumped over (provably idle)

	now int64
}

// Tick implements Component.
func (m *Meter) Tick() {
	m.C.Tick()
	m.now++
	m.Ticked++
}

// NextEvent implements Component.
func (m *Meter) NextEvent() int64 { return m.C.NextEvent() }

// SkipTo implements Component.
func (m *Meter) SkipTo(cycle int64) {
	if cycle > m.now {
		m.Skipped += cycle - m.now
		m.now = cycle
	}
	m.C.SkipTo(cycle)
}

var _ Component = (*Meter)(nil)

// event is one queue entry: a payload due at a cycle, with an insertion
// sequence number so same-cycle events pop in FIFO order (components rely
// on this to keep completion order bit-identical to per-cycle scanning).
type event[T any] struct {
	cycle int64
	seq   uint64
	v     T
}

// EventQueue is a stable min-heap of cycle-keyed events. The zero value is
// an empty queue ready for use. Internally a 4-ary heap: pops are the hot
// operation in DMA-heavy runs (pushes arrive nearly sorted and exit up()
// immediately), and the wider node halves the sift-down depth while
// keeping the four children on one cache line pair. The pop order — due
// cycle, then insertion order — is a total order, so it is independent of
// the internal arity.
type EventQueue[T any] struct {
	h   []event[T]
	seq uint64
}

// Len returns the number of queued events.
func (q *EventQueue[T]) Len() int { return len(q.h) }

// NextCycle returns the due cycle of the earliest event, or Never when
// empty.
func (q *EventQueue[T]) NextCycle() int64 {
	if len(q.h) == 0 {
		return Never
	}
	return q.h[0].cycle
}

// Push schedules v at the given cycle.
func (q *EventQueue[T]) Push(cycle int64, v T) {
	q.h = append(q.h, event[T]{cycle: cycle, seq: q.seq, v: v})
	q.seq++
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event's payload (FIFO among events
// sharing a cycle). ok is false when the queue is empty.
func (q *EventQueue[T]) Pop() (v T, ok bool) {
	if len(q.h) == 0 {
		return v, false
	}
	v = q.h[0].v
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	var zero event[T]
	q.h[last] = zero // release the payload for GC
	q.h = q.h[:last]
	if len(q.h) > 0 {
		q.down(0)
	}
	return v, true
}

// PopDue appends to out every event due at or before cycle, in due-cycle
// then FIFO order, and returns the extended slice.
func (q *EventQueue[T]) PopDue(cycle int64, out []T) []T {
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		v, _ := q.Pop()
		out = append(out, v)
	}
	return out
}

func lessEv[T any](a, b *event[T]) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.seq < b.seq)
}

func (q *EventQueue[T]) up(i int) {
	e := q.h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEv(&e, &q.h[parent]) {
			break
		}
		q.h[i] = q.h[parent]
		i = parent
	}
	q.h[i] = e
}

func (q *EventQueue[T]) down(i int) {
	n := len(q.h)
	e := q.h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if lessEv(&q.h[j], &q.h[min]) {
				min = j
			}
		}
		if !lessEv(&q.h[min], &e) {
			break
		}
		q.h[i] = q.h[min]
		i = min
	}
	q.h[i] = e
}
