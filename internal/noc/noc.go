// Package noc models the on-chip interconnect between NPU cores and memory
// channels. Two models are provided, matching the paper's evaluation
// (§4.1): SN, a simple latency-bandwidth model, and CN, a cycle-accurate
// input-queued crossbar with flit-granularity transfers, per-output
// round-robin allocation, and bounded queues (the Booksim role).
package noc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Message is one network transfer between ports (a memory request or
// response payload).
type Message struct {
	Src, Dst int
	Bytes    int
	Tag      int64
	Arrive   int64
	Finish   int64
}

// Network is the interface shared by both models. It embeds the
// discrete-event kernel contract so engines can skip idle stretches.
type Network interface {
	sim.Component
	Submit(m *Message) bool
	Completed() []*Message
	Cycle() int64
	Pending() int
	// Flits returns the cumulative flit count the network has carried
	// (accepted for SN, switched for CN) — the activity counter energy
	// accounting prices per flit-hop.
	Flits() int64
	// SetPortWidth configures a port's bandwidth in flits per cycle.
	SetPortWidth(port, width int)
	// SetProbe attaches an observability probe (nil detaches). Probes
	// receive occupancy counters on obs.NoCTrack and never affect timing.
	SetProbe(p obs.Probe)
}

// --- SN: simple latency + bandwidth model ---------------------------------

// Simple models each port pair as a fixed-latency link with per-port
// serialization bandwidth of FlitBytes per cycle.
type Simple struct {
	FlitBytes int
	Latency   int64

	cycle int64
	// srcClock tracks each source port's occupancy in flit-time units
	// (cycle * width + flits), so wide ports move many single-flit
	// messages per cycle. Receive ports are ideal (never the bottleneck in
	// this model — CN models them). Ports are small dense integers, so
	// per-port state lives in slices grown on demand, not maps.
	srcClock []int64
	width    []int // flits per cycle per port (0 = default 1)

	// In-flight deliveries. Per-source delivery slots are monotone (the
	// serialization clock only moves forward), so each source is a lane of
	// a MonotonicQueue instead of a shared heap.
	inFlight *sim.MonotonicQueue[*Message]
	laneOf   []int // source port -> lane index + 1 (0 = none yet)

	done  []*Message
	spare []*Message // double buffer swapped with done at Completed

	// FlitsSent counts flits accepted for serialization (always on).
	FlitsSent int64

	probe       obs.Probe
	lastPending int
	lastFlits   int64
}

// NewSimple returns the SN model.
func NewSimple(flitBytes int, latency int64) *Simple {
	if flitBytes <= 0 {
		panic("noc: non-positive flit size")
	}
	return &Simple{
		FlitBytes: flitBytes,
		Latency:   latency,
		inFlight:  sim.NewMonotonicQueue[*Message](0),
	}
}

// Cycle returns the current cycle.
func (s *Simple) Cycle() int64 { return s.cycle }

// SetPortWidth sets a port's bandwidth in flits per cycle (a core's memory
// interface spans every channel, so its port is many flits wide).
func (s *Simple) SetPortWidth(port, width int) {
	if width < 1 {
		width = 1
	}
	for port >= len(s.width) {
		s.width = append(s.width, 0)
	}
	s.width[port] = width
}

func (s *Simple) portWidth(port int) int {
	if port < len(s.width) && s.width[port] > 0 {
		return s.width[port]
	}
	return 1
}

// Submit schedules a message: its flits serialize through the source
// port's flit clock (width flits per cycle); delivery happens Latency
// cycles after the last flit leaves.
func (s *Simple) Submit(m *Message) bool {
	m.Arrive = s.cycle
	flits := int64((m.Bytes + s.FlitBytes - 1) / s.FlitBytes)
	if flits == 0 {
		flits = 1
	}
	s.FlitsSent += flits
	w := int64(s.portWidth(m.Src))
	for m.Src >= len(s.srcClock) {
		s.srcClock = append(s.srcClock, 0)
	}
	startFlit := s.cycle * w
	if t := s.srcClock[m.Src]; t > startFlit {
		startFlit = t
	}
	endFlit := startFlit + flits
	s.srcClock[m.Src] = endFlit
	txDone := (endFlit + w - 1) / w
	arrive := txDone + s.Latency
	m.Finish = arrive
	slot := arrive
	if slot <= s.cycle {
		slot = s.cycle + 1
	}
	for m.Src >= len(s.laneOf) {
		s.laneOf = append(s.laneOf, 0)
	}
	lane := s.laneOf[m.Src] - 1
	if lane < 0 {
		lane = s.inFlight.AddLane()
		s.laneOf[m.Src] = lane + 1
	}
	s.inFlight.Push(lane, slot, m)
	return true
}

// SetProbe implements Network.
func (s *Simple) SetProbe(p obs.Probe) { s.probe = p }

// Tick advances one cycle, delivering due messages.
func (s *Simple) Tick() {
	s.cycle++
	s.done = s.inFlight.PopDue(s.cycle, s.done)
	if s.probe != nil {
		if p := s.Pending(); p != s.lastPending {
			s.probe.Counter(obs.NoCTrack, "noc.inflight", s.cycle, float64(p))
			s.lastPending = p
		}
		if s.FlitsSent != s.lastFlits {
			s.probe.Counter(obs.NoCTrack, "noc.flits_total", s.cycle, float64(s.FlitsSent))
			s.lastFlits = s.FlitsSent
		}
	}
}

// NextEvent implements sim.Component: the next delivery, or Never when
// nothing is in flight. Undrained completions pin the event to the next
// cycle so a caller never skips past them.
func (s *Simple) NextEvent() int64 {
	if len(s.done) > 0 {
		return s.cycle + 1
	}
	next := s.inFlight.NextCycle()
	if next <= s.cycle {
		return s.cycle + 1
	}
	return next
}

// SkipTo implements sim.Component. All SN state is kept in absolute
// cycles, so an idle jump is just a clock update.
func (s *Simple) SkipTo(cycle int64) { s.cycle = cycle }

// Completed drains delivered messages.
func (s *Simple) Completed() []*Message {
	out := s.done
	s.done = s.spare[:0]
	s.spare = out
	return out
}

// Pending returns undelivered message count.
func (s *Simple) Pending() int { return s.inFlight.Len() + len(s.done) }

// Flits implements Network.
func (s *Simple) Flits() int64 { return s.FlitsSent }

// --- CN: cycle-accurate input-queued crossbar ------------------------------

type flit struct {
	msg  *Message
	last bool
}

type inputPort struct {
	queue []flit
}

// Crossbar is an input-queued crossbar switch: each input port holds a flit
// FIFO; every cycle a round-robin allocator grants each output port to at
// most one requesting input (head-of-line), and each input sends at most one
// flit. Messages are delivered when their tail flit leaves the switch plus
// the pipeline latency.
type Crossbar struct {
	FlitBytes int
	Latency   int64 // switch pipeline traversal latency
	QueueCap  int   // per-input queue capacity in flits

	width    map[int]int // flits per cycle per port (default 1)
	maxWidth int

	cycle   int64
	inputs  map[int]*inputPort
	rrNext  map[int]int // per-output round-robin pointer over input ids
	inIDs   []int       // stable order of known input ports
	pending map[*Message]int
	done    []*Message
	spare   []*Message               // double buffer swapped with done at Completed
	delayed sim.EventQueue[*Message] // waiting out the pipeline latency

	// Scratch reused across ticks to avoid per-cycle allocation.
	reqScratch map[int][]int
	reqOuts    []int
	idIndex    map[int]int // input id -> position in inIDs
	granted    []bool      // per input index, reused per tick

	// Stats.
	FlitsSwitched  int64
	AllocConflicts int64

	probe       obs.Probe
	lastPending int
	lastFlits   int64
}

// NewCrossbar returns the CN model.
func NewCrossbar(flitBytes int, latency int64, queueCap int) *Crossbar {
	if queueCap <= 0 {
		queueCap = 64
	}
	return &Crossbar{
		FlitBytes: flitBytes,
		Latency:   latency,
		QueueCap:  queueCap,
		width:     map[int]int{},
		maxWidth:  1,
		inputs:    map[int]*inputPort{},
		rrNext:    map[int]int{},
		pending:   map[*Message]int{},
	}
}

// Cycle returns the current cycle.
func (x *Crossbar) Cycle() int64 { return x.cycle }

// SetPortWidth sets a port's bandwidth in flits per cycle, for both its
// input and output sides.
func (x *Crossbar) SetPortWidth(port, width int) {
	if width < 1 {
		width = 1
	}
	x.width[port] = width
	if width > x.maxWidth {
		x.maxWidth = width
	}
}

func (x *Crossbar) portWidth(port int) int {
	if w, ok := x.width[port]; ok {
		return w
	}
	return 1
}

func (x *Crossbar) input(id int) *inputPort {
	p, ok := x.inputs[id]
	if !ok {
		p = &inputPort{}
		x.inputs[id] = p
		if x.idIndex == nil {
			x.idIndex = map[int]int{}
		}
		x.idIndex[id] = len(x.inIDs)
		x.inIDs = append(x.inIDs, id)
		x.granted = append(x.granted, false)
	}
	return p
}

// Submit enqueues a message's flits at its source port. It returns false if
// the input queue lacks space for all flits (caller retries).
func (x *Crossbar) Submit(m *Message) bool {
	flits := (m.Bytes + x.FlitBytes - 1) / x.FlitBytes
	if flits == 0 {
		flits = 1
	}
	p := x.input(m.Src)
	if len(p.queue)+flits > x.QueueCap {
		return false
	}
	m.Arrive = x.cycle
	for i := 0; i < flits; i++ {
		p.queue = append(p.queue, flit{msg: m, last: i == flits-1})
	}
	x.pending[m] = flits
	return true
}

// Tick performs one cycle of switch allocation: per-port input/output
// capacities equal the configured port widths; allocation runs in passes,
// each granting at most one flit per (input, output) pair round-robin.
func (x *Crossbar) Tick() {
	x.cycle++
	if x.reqScratch == nil {
		x.reqScratch = map[int][]int{}
	}
	// Remaining per-port capacities this cycle.
	inCap := make(map[int]int, len(x.inIDs))
	outCap := map[int]int{}
	for _, id := range x.inIDs {
		inCap[id] = x.portWidth(id)
	}
	for pass := 0; pass < x.maxWidth; pass++ {
		// Collect head-of-line requests per output among inputs with
		// remaining capacity and queued flits.
		for _, out := range x.reqOuts {
			x.reqScratch[out] = x.reqScratch[out][:0]
		}
		x.reqOuts = x.reqOuts[:0]
		reqs := x.reqScratch
		any := false
		for _, id := range x.inIDs {
			p := x.inputs[id]
			if len(p.queue) == 0 || inCap[id] <= 0 {
				continue
			}
			dst := p.queue[0].msg.Dst
			if _, ok := outCap[dst]; !ok {
				outCap[dst] = x.portWidth(dst)
			}
			if outCap[dst] <= 0 {
				continue
			}
			if len(reqs[dst]) == 0 {
				x.reqOuts = append(x.reqOuts, dst)
			}
			reqs[dst] = append(reqs[dst], id)
			any = true
		}
		if !any {
			break
		}
		for i := range x.granted {
			x.granted[i] = false
		}
		for _, out := range x.reqOuts {
			ins := reqs[out]
			if pass == 0 && len(ins) > 1 {
				x.AllocConflicts += int64(len(ins) - 1)
			}
			// Round-robin among the requesting inputs: choose the one
			// closest after rrNext[out] in inIDs order.
			start := x.rrNext[out]
			n := len(x.inIDs)
			pick, best := -1, n+1
			for _, rid := range ins {
				idx := x.idIndex[rid]
				if x.granted[idx] {
					continue
				}
				score := idx - start
				if score <= 0 {
					score += n
				}
				if score < best {
					best, pick = score, idx
				}
			}
			if pick < 0 {
				continue
			}
			id := x.inIDs[pick]
			x.granted[pick] = true
			x.rrNext[out] = pick
			inCap[id]--
			outCap[out]--
			p := x.inputs[id]
			f := p.queue[0]
			p.queue = p.queue[1:]
			x.FlitsSwitched++
			x.pending[f.msg]--
			if f.last {
				f.msg.Finish = x.cycle + x.Latency
				delete(x.pending, f.msg)
				x.delayed.Push(f.msg.Finish, f.msg)
			}
		}
	}
	// Deliver messages whose pipeline latency elapsed.
	x.done = x.delayed.PopDue(x.cycle, x.done)
	if x.probe != nil {
		if p := x.Pending(); p != x.lastPending {
			x.probe.Counter(obs.NoCTrack, "noc.inflight", x.cycle, float64(p))
			x.lastPending = p
		}
		if x.FlitsSwitched != x.lastFlits {
			x.probe.Counter(obs.NoCTrack, "noc.flits_total", x.cycle, float64(x.FlitsSwitched))
			x.lastFlits = x.FlitsSwitched
		}
	}
}

// NextEvent implements sim.Component. Any queued flit means allocation
// work next cycle; otherwise the next event is the earliest pipeline
// delivery.
func (x *Crossbar) NextEvent() int64 {
	if len(x.done) > 0 {
		return x.cycle + 1
	}
	for _, id := range x.inIDs {
		if len(x.inputs[id].queue) > 0 {
			return x.cycle + 1
		}
	}
	next := x.delayed.NextCycle()
	if next <= x.cycle {
		return x.cycle + 1
	}
	return next
}

// SkipTo implements sim.Component: with empty input queues, the only
// time-dependent state is the absolute-cycle delivery queue.
func (x *Crossbar) SkipTo(cycle int64) { x.cycle = cycle }

// SetProbe implements Network.
func (x *Crossbar) SetProbe(p obs.Probe) { x.probe = p }

// Completed drains delivered messages.
func (x *Crossbar) Completed() []*Message {
	out := x.done
	x.done = x.spare[:0]
	x.spare = out
	return out
}

// Pending returns messages not yet delivered.
func (x *Crossbar) Pending() int {
	return len(x.pending) + x.delayed.Len() + len(x.done)
}

// Flits implements Network.
func (x *Crossbar) Flits() int64 { return x.FlitsSwitched }

var (
	_ Network = (*Simple)(nil)
	_ Network = (*Crossbar)(nil)
)

// Drain runs net until empty (test/benchmark helper).
func Drain(n Network) []*Message {
	var out []*Message
	for guard := 0; n.Pending() > 0; guard++ {
		if guard > 50_000_000 {
			panic(fmt.Sprintf("noc: drain did not converge (%d pending)", n.Pending()))
		}
		n.Tick()
		out = append(out, n.Completed()...)
	}
	return out
}
