package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSimpleSingleMessageLatency(t *testing.T) {
	s := NewSimple(32, 4)
	m := &Message{Src: 0, Dst: 1, Bytes: 64} // 2 flits
	s.Submit(m)
	done := Drain(s)
	if len(done) != 1 {
		t.Fatalf("delivered %d messages", len(done))
	}
	if m.Finish != 2+4 {
		t.Fatalf("Finish = %d, want 6 (2 flit cycles + 4 latency)", m.Finish)
	}
}

func TestSimpleSourceSerialization(t *testing.T) {
	s := NewSimple(32, 4)
	a := &Message{Src: 0, Dst: 1, Bytes: 320} // 10 flits
	b := &Message{Src: 0, Dst: 2, Bytes: 32}  // 1 flit, behind a
	s.Submit(a)
	s.Submit(b)
	Drain(s)
	if b.Finish <= a.Finish-4 {
		t.Fatalf("second message from same source must serialize: a=%d b=%d", a.Finish, b.Finish)
	}
	// Different sources are independent.
	s2 := NewSimple(32, 4)
	c := &Message{Src: 0, Dst: 1, Bytes: 320}
	d := &Message{Src: 3, Dst: 2, Bytes: 32}
	s2.Submit(c)
	s2.Submit(d)
	Drain(s2)
	if d.Finish >= c.Finish {
		t.Fatalf("independent sources must not serialize: c=%d d=%d", c.Finish, d.Finish)
	}
}

func TestSimpleBandwidthBound(t *testing.T) {
	s := NewSimple(32, 0)
	// 100 messages of 32B from one source: >= 100 cycles.
	var last int64
	for i := 0; i < 100; i++ {
		m := &Message{Src: 0, Dst: 1, Bytes: 32}
		s.Submit(m)
	}
	for _, m := range Drain(s) {
		if m.Finish > last {
			last = m.Finish
		}
	}
	if last < 100 {
		t.Fatalf("one flit per cycle bound violated: %d", last)
	}
}

func TestCrossbarSingleMessage(t *testing.T) {
	x := NewCrossbar(32, 3, 64)
	m := &Message{Src: 0, Dst: 1, Bytes: 96} // 3 flits
	if !x.Submit(m) {
		t.Fatal("submit rejected")
	}
	done := Drain(x)
	if len(done) != 1 {
		t.Fatalf("delivered %d", len(done))
	}
	// 3 flits leave at cycles 1,2,3; tail at 3 + latency 3 = 6.
	if m.Finish != 6 {
		t.Fatalf("Finish = %d, want 6", m.Finish)
	}
	if x.FlitsSwitched != 3 {
		t.Fatalf("FlitsSwitched = %d", x.FlitsSwitched)
	}
}

func TestCrossbarOutputContention(t *testing.T) {
	// Two inputs to the same output: each gets half throughput.
	x := NewCrossbar(32, 0, 1024)
	a := &Message{Src: 0, Dst: 9, Bytes: 32 * 10}
	b := &Message{Src: 1, Dst: 9, Bytes: 32 * 10}
	x.Submit(a)
	x.Submit(b)
	Drain(x)
	lastFinish := a.Finish
	if b.Finish > lastFinish {
		lastFinish = b.Finish
	}
	// 20 flits through one output port: >= 20 cycles.
	if lastFinish < 20 {
		t.Fatalf("output port overdriven: done at %d", lastFinish)
	}
	if x.AllocConflicts == 0 {
		t.Fatal("expected allocation conflicts")
	}

	// Same flits to different outputs: parallel, ~10 cycles.
	x2 := NewCrossbar(32, 0, 1024)
	c := &Message{Src: 0, Dst: 8, Bytes: 32 * 10}
	d := &Message{Src: 1, Dst: 9, Bytes: 32 * 10}
	x2.Submit(c)
	x2.Submit(d)
	Drain(x2)
	if c.Finish > 12 || d.Finish > 12 {
		t.Fatalf("parallel outputs should not contend: %d, %d", c.Finish, d.Finish)
	}
}

func TestCrossbarRoundRobinFairness(t *testing.T) {
	x := NewCrossbar(32, 0, 4096)
	// Three sources each send 30 one-flit messages to output 7.
	msgs := map[int][]*Message{}
	for i := 0; i < 30; i++ {
		for src := 0; src < 3; src++ {
			m := &Message{Src: src, Dst: 7, Bytes: 32}
			x.Submit(m)
			msgs[src] = append(msgs[src], m)
		}
	}
	Drain(x)
	// Last delivery per source should be within a few cycles of each other.
	var lasts []int64
	for src := 0; src < 3; src++ {
		var last int64
		for _, m := range msgs[src] {
			if m.Finish > last {
				last = m.Finish
			}
		}
		lasts = append(lasts, last)
	}
	for _, l := range lasts {
		if l < lasts[0]-3 || l > lasts[0]+3 {
			t.Fatalf("round robin unfair: %v", lasts)
		}
	}
}

func TestCrossbarQueueBackpressure(t *testing.T) {
	x := NewCrossbar(32, 0, 4)
	a := &Message{Src: 0, Dst: 1, Bytes: 32 * 4}
	if !x.Submit(a) {
		t.Fatal("first message should fit")
	}
	b := &Message{Src: 0, Dst: 1, Bytes: 32}
	if x.Submit(b) {
		t.Fatal("queue-full submit must be rejected")
	}
	x.Tick()
	if !x.Submit(b) {
		t.Fatal("after a flit drains, submit should succeed")
	}
	Drain(x)
}

func TestCrossbarPerPairOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		x := NewCrossbar(32, 2, 4096)
		var sent []*Message
		for i := 0; i < 50; i++ {
			m := &Message{Src: r.Intn(4), Dst: 4 + r.Intn(4), Bytes: 32 * (1 + r.Intn(3))}
			for !x.Submit(m) {
				x.Tick()
				x.Completed()
			}
			sent = append(sent, m)
		}
		Drain(x)
		// For each (src,dst) pair, finishes must be in submission order.
		lastByPair := map[[2]int]int64{}
		for _, m := range sent {
			key := [2]int{m.Src, m.Dst}
			if m.Finish < lastByPair[key] {
				return false
			}
			lastByPair[key] = m.Finish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMessagesDelivered(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		nets := []Network{NewSimple(32, 3), NewCrossbar(32, 3, 256)}
		for _, n := range nets {
			sent := 0
			for i := 0; i < 100; i++ {
				m := &Message{Src: r.Intn(4), Dst: 4 + r.Intn(4), Bytes: 32 * (1 + r.Intn(4))}
				for !n.Submit(m) {
					n.Tick()
					n.Completed()
				}
				sent++
			}
			got := len(Drain(n))
			// Completions drained during submit retries are not in Drain's
			// return; count via Pending instead.
			if n.Pending() != 0 {
				return false
			}
			_ = got
			_ = sent
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossbarSlowerOrEqualThanSimpleUnderContention(t *testing.T) {
	// With many sources hammering one destination, the detailed crossbar
	// must not be faster than the idealized SN model's destination port.
	load := func(n Network) int64 {
		var msgs []*Message
		for i := 0; i < 64; i++ {
			m := &Message{Src: i % 4, Dst: 8, Bytes: 64}
			for !n.Submit(m) {
				n.Tick()
				n.Completed()
			}
			msgs = append(msgs, m)
		}
		Drain(n)
		var last int64
		for _, m := range msgs {
			if m.Finish > last {
				last = m.Finish
			}
		}
		return last
	}
	sn := load(NewSimple(32, 2))
	cn := load(NewCrossbar(32, 2, 256))
	if cn+4 < sn {
		t.Fatalf("crossbar (%d) should not beat idealized SN (%d) under contention", cn, sn)
	}
}
