package codegen

import (
	"fmt"

	"repro/internal/isa"
)

// ScaleShiftRowSpec is the folded-batch-norm kernel for NCHW data viewed as
// (Rows, Cols) where Rows = planes (n,c) and Cols = H*W: each row is scaled
// by gamma[c] and shifted by beta[c]. ChanOf[r] gives the channel of row r;
// gamma and beta (each C floats) live at GOff and BOff.
type ScaleShiftRowSpec struct {
	Rows, Cols               int
	Channels                 int
	VLEN                     int
	AOff, GOff, BOff, OutOff int64
}

// Signature is the kernel cache key.
func (s ScaleShiftRowSpec) Signature() string {
	return fmt.Sprintf("scaleshiftrow_r%d_c%d_ch%d_v%d", s.Rows, s.Cols, s.Channels, s.VLEN)
}

// ScaleShiftRow generates the per-row scale/shift kernel. Row r uses channel
// r % Channels (rows are (n, c) planes in c-major order per batch element).
func ScaleShiftRow(s ScaleShiftRowSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	for r := 0; r < s.Rows; r++ {
		c := r % s.Channels
		// f1 = gamma[c], f2 = beta[c]
		emitSpadAddr(b, rTmp, s.GOff+int64(c*4))
		b.Emit(isa.Instr{Op: isa.OpFLW, Rd: 1, Rs1: rTmp})
		emitSpadAddr(b, rTmp, s.BOff+int64(c*4))
		b.Emit(isa.Instr{Op: isa.OpFLW, Rd: 2, Rs1: rTmp})
		for off := 0; off < s.Cols; off += s.VLEN {
			n := s.VLEN
			if s.Cols-off < n {
				n = s.Cols - off
			}
			emitSetVL(b, n)
			at := int64((r*s.Cols + off) * 4)
			emitSpadAddr(b, rTmp, s.AOff+at)
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: 1})
			b.Emit(isa.Instr{Op: isa.OpVADDVF, Rd: vOut, Rs1: vIn, Rs2: 2})
			emitSpadAddr(b, rTmp, s.OutOff+at)
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// PlanePoolSpec pools one (H, W) plane resident in scratchpad into an
// (OH, OW) plane: out[oy, ox] = max over the Window x Window region at
// stride Stride. The kernel uses strided vector loads directly from the
// plane, so the DMA only moves the raw plane.
type PlanePoolSpec struct {
	H, W, OH, OW   int
	Window, Stride int
	VLEN           int
	AOff, OutOff   int64
}

// Signature is the kernel cache key.
func (s PlanePoolSpec) Signature() string {
	return fmt.Sprintf("planepool_h%d_w%d_k%d_s%d_v%d", s.H, s.W, s.Window, s.Stride, s.VLEN)
}

// PlanePool generates the plane max-pooling kernel over a densely stored
// plane.
func PlanePool(s PlanePoolSpec) *isa.Program {
	return PlanePoolStrided(s, 1)
}

// PlanePoolStrided generates the pooling kernel for a plane whose elements
// are interleaved with `interleave`-element stride — the (position, n*c)
// activation layout: element (y, x) lives at (y*W + x)*interleave*4 from
// AOff, and outputs are stored with the same interleave.
func PlanePoolStrided(s PlanePoolSpec, interleave int) *isa.Program {
	if interleave < 1 {
		interleave = 1
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	// x4: input x-stride in bytes; x5: output x-stride in bytes.
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 4, Rs1: 0, Imm: int32(s.Stride * interleave * 4)})
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: int32(interleave * 4)})
	for oy := 0; oy < s.OH; oy++ {
		for ox := 0; ox < s.OW; ox += s.VLEN {
			n := s.VLEN
			if s.OW-ox < n {
				n = s.OW - ox
			}
			emitSetVL(b, n)
			first := true
			for ky := 0; ky < s.Window; ky++ {
				for kx := 0; kx < s.Window; kx++ {
					iy := oy*s.Stride + ky
					ix := ox*s.Stride + kx
					emitSpadAddr(b, rTmp, s.AOff+int64((iy*s.W+ix)*interleave*4))
					if first {
						b.Emit(isa.Instr{Op: isa.OpVLSE32, Rd: vAcc, Rs1: rTmp, Rs2: 4})
						first = false
					} else {
						b.Emit(isa.Instr{Op: isa.OpVLSE32, Rd: vIn, Rs1: rTmp, Rs2: 4})
						b.Emit(isa.Instr{Op: isa.OpVMAX, Rd: vAcc, Rs1: vAcc, Rs2: vIn})
					}
				}
			}
			emitSpadAddr(b, rTmp, s.OutOff+int64((oy*s.OW+ox)*interleave*4))
			if interleave == 1 {
				b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vAcc, Rs1: rTmp})
			} else {
				b.Emit(isa.Instr{Op: isa.OpVSSE32, Funct: vAcc, Rs1: rTmp, Rs2: 5})
			}
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// GlobalAvgSpec averages Planes planes of PlaneElems elements each into
// Planes scalars.
type GlobalAvgSpec struct {
	Planes, PlaneElems int
	VLEN               int
	AOff, OutOff       int64
}

// Signature is the kernel cache key.
func (s GlobalAvgSpec) Signature() string {
	return fmt.Sprintf("gavg_p%d_e%d_v%d", s.Planes, s.PlaneElems, s.VLEN)
}

// GlobalAvg generates the global-average-pool kernel.
func GlobalAvg(s GlobalAvgSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	b.Emit(isa.FLI(3, 1/float32(s.PlaneElems)))
	for p := 0; p < s.Planes; p++ {
		b.Emit(isa.FLI(1, 0)) // accumulator
		for off := 0; off < s.PlaneElems; off += s.VLEN {
			n := s.VLEN
			if s.PlaneElems-off < n {
				n = s.PlaneElems - off
			}
			emitSetVL(b, n)
			emitSpadAddr(b, rTmp, s.AOff+int64((p*s.PlaneElems+off)*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: 2, Rs1: vIn})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: 1, Rs1: 1, Rs2: 2})
		}
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: 1, Rs1: 1, Rs2: 3})
		emitSpadAddr(b, rTmp, s.OutOff+int64(p*4))
		b.Emit(isa.Instr{Op: isa.OpFSW, Rs2: 1, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// SoftmaxCESpec computes both the mean cross-entropy loss (one float at
// LossOff) and, when WithGrad is set, dLogits = (softmax(logits) -
// onehot(labels)) / Rows at GradOff. Labels are Rows float32 class indices
// at LabelOff.
type SoftmaxCESpec struct {
	Rows, Cols                       int
	VLEN                             int
	WithGrad                         bool
	AOff, LabelOff, LossOff, GradOff int64
}

// Signature is the kernel cache key.
func (s SoftmaxCESpec) Signature() string {
	g := ""
	if s.WithGrad {
		g = "_grad"
	}
	return fmt.Sprintf("softmaxce_r%d_c%d_v%d%s", s.Rows, s.Cols, s.VLEN, g)
}

// SoftmaxCE generates the fused loss (+gradient) kernel in two phases.
// Phase 1 runs a stable softmax per row (constant VL, no toggling) and,
// when WithGrad is set, stores dLogits = probs/Rows with the label element
// corrected by -1/Rows (a short scalar fix-up per row). Phase 2 gathers
// each row's label probability into a staging row with scalar loads/stores,
// then computes -log over the whole staging row with one vectorized SFU
// pass and reduces it to the mean loss.
func SoftmaxCE(s SoftmaxCESpec) *isa.Program {
	if s.Cols > s.VLEN {
		panic("codegen: softmax_ce rows wider than VLEN need multi-pass lowering")
	}
	if s.Rows > s.VLEN {
		panic("codegen: softmax_ce batch larger than VLEN needs multi-pass lowering")
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const (
		fOne       = 2
		fInvM      = 4
		fTmp       = 5
		rLabel     = 5
		rAddr      = 6
		rRow       = 9  // probs/grad row base walker
		rStage     = 10 // staging slot walker
		rLbl       = 11 // labels walker
		rStrideRow = 12
	)
	// The probability rows live in the grad area (pre-scaled by 1/Rows when
	// WithGrad); the label-probability staging row sits after the loss slot.
	probBase := s.GradOff
	scale := 1 / float32(s.Rows)
	if !s.WithGrad {
		scale = 1
	}
	stageOff := s.LossOff + 64

	emitSetVL(b, s.Cols)
	b.Emit(isa.FLI(fOne, 1))
	b.Emit(isa.FLI(fInvM, scale))

	// Phase 1: softmax rows (and gradient fix-ups).
	for r := 0; r < s.Rows; r++ {
		rowOff := int64(r * s.Cols * 4)
		emitSpadAddr(b, rTmp, s.AOff+rowOff)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpVREDMAX, Rd: fTmp, Rs1: vIn})
		b.Emit(isa.Instr{Op: isa.OpVSUBVF, Rd: vIn, Rs1: vIn, Rs2: fTmp})
		b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vIn, Rs1: vIn, Funct: isa.SFUExp})
		b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vIn})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fTmp, Rs1: fOne, Rs2: fTmp})
		// probs (optionally pre-scaled by 1/Rows for the gradient).
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fTmp, Rs1: fTmp, Rs2: fInvM})
		b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vOut, Rs1: vIn, Rs2: fTmp})
		emitSpadAddr(b, rTmp, probBase+rowOff)
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
	}
	if s.WithGrad {
		// grad[label] -= 1/Rows, per row (scalar fix-up).
		emitSpadAddr(b, rRow, probBase)
		emitSpadAddr(b, rLbl, s.LabelOff)
		emitLoadConst(b, rStrideRow, int64(s.Cols*4))
		for r := 0; r < s.Rows; r++ {
			b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fTmp, Rs1: rLbl})
			b.Emit(isa.Instr{Op: isa.OpFMVXF, Rd: rLabel, Rs1: fTmp})
			b.Emit(isa.Instr{Op: isa.OpSLLI, Rd: rLabel, Rs1: rLabel, Imm: 2})
			b.Emit(isa.Instr{Op: isa.OpADD, Rd: rAddr, Rs1: rRow, Rs2: rLabel})
			b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fTmp, Rs1: rAddr})
			b.Emit(isa.Instr{Op: isa.OpFSUB, Rd: fTmp, Rs1: fTmp, Rs2: fInvM})
			b.Emit(isa.Instr{Op: isa.OpFSW, Rs2: fTmp, Rs1: rAddr})
			b.Emit(isa.Instr{Op: isa.OpADD, Rd: rRow, Rs1: rRow, Rs2: rStrideRow})
			b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rLbl, Rs1: rLbl, Imm: 4})
		}
	}

	// Phase 2: gather label probabilities into the staging row.
	emitSpadAddr(b, rRow, probBase)
	emitSpadAddr(b, rLbl, s.LabelOff)
	emitSpadAddr(b, rStage, stageOff)
	emitLoadConst(b, rStrideRow, int64(s.Cols*4))
	for r := 0; r < s.Rows; r++ {
		b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fTmp, Rs1: rLbl})
		b.Emit(isa.Instr{Op: isa.OpFMVXF, Rd: rLabel, Rs1: fTmp})
		b.Emit(isa.Instr{Op: isa.OpSLLI, Rd: rLabel, Rs1: rLabel, Imm: 2})
		b.Emit(isa.Instr{Op: isa.OpADD, Rd: rAddr, Rs1: rRow, Rs2: rLabel})
		b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fTmp, Rs1: rAddr})
		if s.WithGrad {
			// The stored rows hold probs/Rows (with the label element
			// shifted by -1/Rows): recover probs[label] = v*Rows + 1.
			b.Emit(isa.FLI(6, float32(s.Rows)))
			b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fTmp, Rs1: fTmp, Rs2: 6})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fTmp, Rs1: fTmp, Rs2: fOne})
		}
		b.Emit(isa.Instr{Op: isa.OpFSW, Rs2: fTmp, Rs1: rStage})
		b.Emit(isa.Instr{Op: isa.OpADD, Rd: rRow, Rs1: rRow, Rs2: rStrideRow})
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rLbl, Rs1: rLbl, Imm: 4})
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rStage, Rs1: rStage, Imm: 4})
	}
	// loss = -mean(log(staged)).
	emitSetVL(b, s.Rows)
	emitSpadAddr(b, rTmp, stageOff)
	b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
	b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vIn, Rs1: vIn, Funct: isa.SFULog})
	b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vIn})
	b.Emit(isa.FLI(6, -1/float32(s.Rows)))
	b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fTmp, Rs1: fTmp, Rs2: 6})
	emitSpadAddr(b, rTmp, s.LossOff)
	b.Emit(isa.Instr{Op: isa.OpFSW, Rs2: fTmp, Rs1: rTmp})
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}
