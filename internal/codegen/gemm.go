// Package codegen generates NPU machine-code kernels for tile operations —
// the role of the paper's MLIR kernel templates (§3.6.2): a software-
// pipelined weight-stationary GEMM template with fused epilogues, and
// loop-level-IR-style vector kernels for pointwise, reduction, softmax,
// layernorm, pooling, and optimizer ops. Kernels operate on tiles already
// resident in scratchpad (DMA happens at the TOG level); the timing
// simulator measures each kernel once per unique shape to obtain the TOG
// compute-node latency.
package codegen

import (
	"fmt"

	"repro/internal/isa"
)

// Epilogue selects the fused operation applied to GEMM output rows before
// they are stored (operator fusion, §3.6.3).
type Epilogue struct {
	Bias       bool // add a bias row (at BiasOff)
	ScaleShift bool // multiply by gamma row and add beta row (folded BN)
	ReLU       bool
	GELU       bool
}

func (e Epilogue) String() string {
	s := ""
	if e.Bias {
		s += "_bias"
	}
	if e.ScaleShift {
		s += "_bn"
	}
	if e.ReLU {
		s += "_relu"
	}
	if e.GELU {
		s += "_gelu"
	}
	return s
}

// GEMMSpec describes one GEMM tile operation: out[M,N] (+)= in[M,K] @ w[K,N].
// Offsets are scratchpad byte offsets (relative to isa.SpadBase).
type GEMMSpec struct {
	M, K, N    int
	Accumulate bool // add into existing output tile (K-panel accumulation)
	Epi        Epilogue
	InOff      int64
	WOff       int64
	OutOff     int64
	BiasOff    int64
	GammaOff   int64 // scale_shift epilogue: gamma row
	BetaOff    int64 // scale_shift epilogue: beta row
	PipeDepth  int   // software pipelining depth (rows in flight); 0 = default

	// InRowStride is the byte stride between consecutive input-tile rows in
	// scratchpad; 0 means K*4 (a densely packed tile). A K-panel kernel
	// reading from a wider resident stripe passes the stripe's row pitch.
	InRowStride int64
	// OutRowStride likewise for the output tile; 0 means N*4.
	OutRowStride int64
}

// Signature returns the kernel cache key: kernels with equal signatures
// have identical instruction streams up to scratchpad offsets, hence equal
// deterministic latency.
func (s GEMMSpec) Signature() string {
	acc := ""
	if s.Accumulate {
		acc = "_acc"
	}
	// Row strides appear because address materialization cost differs for
	// wide strides (12-bit vs 32-bit immediates).
	return fmt.Sprintf("gemm_m%d_k%d_n%d_is%d_os%d%s%s", s.M, s.K, s.N, s.InRowStride, s.OutRowStride, acc, s.Epi)
}

// Register conventions used by generated kernels.
const (
	rTmp    = 1 // scratch address register
	rTmp2   = 2
	rVL     = 3
	rZero   = 0
	rBase   = 8 // cached scratchpad base (set once per kernel)
	rOffTmp = 7 // scratch for large-offset materialization
	vWeight = 1 // weight row staging
	vIn     = 2 // input row staging
	vOut    = 3 // popped output row
	vAcc    = 4 // accumulator / epilogue scratch
	vBias   = 5
	vGamma  = 6
	vBeta   = 7
	fZero   = 1
)

// emitSpadBase caches SpadBase (1 << 47, which fits no immediate) in rBase.
// Every kernel emits this prologue once.
func emitSpadBase(b *isa.Builder) {
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rBase, Rs1: 0, Imm: 1})
	b.Emit(isa.Instr{Op: isa.OpSLLI, Rd: rBase, Rs1: rBase, Imm: 47})
}

// emitSpadAddr materializes SpadBase+off into rd in a constant number of
// instructions: always LUI+ADDI+ADD (hi is simply 0 for 12-bit offsets).
// Constant length is load-bearing: kernel signatures exclude scratchpad
// offsets, so the latency cache assumes placement never changes the
// instruction stream's shape. A short-form ADDI for small offsets would
// make two same-signature kernels differ in length once one of them is
// placed past the 12-bit boundary, and the cached latency would be wrong
// for the other — breaking ILS/TLS cycle agreement.
func emitSpadAddr(b *isa.Builder, rd uint8, off int64) {
	hi := (off + 0x800) >> 12
	lo := off - hi<<12
	b.Emit(isa.Instr{Op: isa.OpLUI, Rd: rOffTmp, Imm: int32(hi)})
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rOffTmp, Rs1: rOffTmp, Imm: int32(lo)})
	b.Emit(isa.Instr{Op: isa.OpADD, Rd: rd, Rs1: rBase, Rs2: rOffTmp})
}

// emitSetVL sets VL to n.
func emitSetVL(b *isa.Builder, n int) {
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rVL, Rs1: 0, Imm: int32(n)})
	b.Emit(isa.Instr{Op: isa.OpSETVL, Rd: rVL, Rs1: rVL})
}

// Additional pointer registers used by the GEMM template.
const (
	rInPtr     = 9
	rOutPtr    = 10
	rStrideIn  = 11
	rStrideOut = 12
	rWPtr      = 13
	rStrideW   = 14
)

// emitLoadConst materializes a constant into rd (1-2 instructions).
func emitLoadConst(b *isa.Builder, rd uint8, v int64) {
	if v >= -2048 && v <= 2047 {
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: 0, Imm: int32(v)})
		return
	}
	hi := (v + 0x800) >> 12
	lo := v - hi<<12
	b.Emit(isa.Instr{Op: isa.OpLUI, Rd: rd, Imm: int32(hi)})
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: int32(lo)})
}

// GEMM generates the weight-stationary GEMM tile kernel. Weight rows are
// pushed first; input rows then stream through the array in groups (the
// next group's rows are pushed before the current group's outputs pop, so
// up to two groups are in flight and the SA fill/drain latency is hidden);
// row addresses advance by pointer increments, and the vector length only
// changes at group boundaries. Each popped output row has the epilogue
// applied and is stored (or accumulated) to the output tile.
func GEMM(spec GEMMSpec) *isa.Program {
	if spec.M <= 0 || spec.K <= 0 || spec.N <= 0 {
		panic(fmt.Sprintf("codegen: bad GEMM spec %+v", spec))
	}
	// By default all M rows stream before the first pop: the deserializer
	// FIFO (accumulator) is deep enough to hold a full tile's outputs, so
	// the SA's K+N pipeline fill is paid once per tile, not per group.
	group := spec.PipeDepth
	if group <= 0 {
		group = spec.M
	}
	if group > spec.M {
		group = spec.M
	}
	inStride := spec.InRowStride
	if inStride == 0 {
		inStride = int64(spec.K * 4)
	}
	outStride := spec.OutRowStride
	if outStride == 0 {
		outStride = int64(spec.N * 4)
	}
	b := isa.NewBuilder(spec.Signature())
	emitSpadBase(b)

	// Load weights: VL = N; walk a pointer over the K rows.
	emitSetVL(b, spec.N)
	emitSpadAddr(b, rWPtr, spec.WOff)
	emitLoadConst(b, rStrideW, int64(spec.N*4))
	for k := 0; k < spec.K; k++ {
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vWeight, Rs1: rWPtr})
		b.Emit(isa.Instr{Op: isa.OpWVPUSH, Rs1: vWeight})
		b.Emit(isa.Instr{Op: isa.OpADD, Rd: rWPtr, Rs1: rWPtr, Rs2: rStrideW})
	}
	if spec.Epi.Bias {
		emitSpadAddr(b, rTmp, spec.BiasOff)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp})
	}
	if spec.Epi.ScaleShift {
		emitSpadAddr(b, rTmp, spec.GammaOff)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vGamma, Rs1: rTmp})
		emitSpadAddr(b, rTmp, spec.BetaOff)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBeta, Rs1: rTmp})
	}
	if spec.Epi.ReLU {
		b.Emit(isa.FLI(fZero, 0))
	}

	// Row pointers and strides.
	emitSpadAddr(b, rInPtr, spec.InOff)
	emitSpadAddr(b, rOutPtr, spec.OutOff)
	emitLoadConst(b, rStrideIn, inStride)
	emitLoadConst(b, rStrideOut, outStride)

	pushGroup := func(rows int) {
		emitSetVL(b, spec.K)
		for g := 0; g < rows; g++ {
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rInPtr})
			b.Emit(isa.Instr{Op: isa.OpIVPUSH, Rs1: vIn})
			b.Emit(isa.Instr{Op: isa.OpADD, Rd: rInPtr, Rs1: rInPtr, Rs2: rStrideIn})
		}
	}
	popGroup := func(rows int) {
		emitSetVL(b, spec.N)
		for g := 0; g < rows; g++ {
			b.Emit(isa.Instr{Op: isa.OpVPOP, Rd: vOut})
			if spec.Accumulate {
				b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vAcc, Rs1: rOutPtr})
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vOut, Rs2: vAcc})
			}
			if spec.Epi.Bias {
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vOut, Rs2: vBias})
			}
			if spec.Epi.ScaleShift {
				b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vOut, Rs1: vOut, Rs2: vGamma})
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vOut, Rs2: vBeta})
			}
			if spec.Epi.ReLU {
				b.Emit(isa.Instr{Op: isa.OpVMAXVF, Rd: vOut, Rs1: vOut, Rs2: fZero})
			}
			if spec.Epi.GELU {
				b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vOut, Rs1: vOut, Funct: isa.SFUGelu})
			}
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rOutPtr})
			b.Emit(isa.Instr{Op: isa.OpADD, Rd: rOutPtr, Rs1: rOutPtr, Rs2: rStrideOut})
		}
	}

	// Group sizes covering M.
	var groups []int
	for m := 0; m < spec.M; m += group {
		g := group
		if spec.M-m < g {
			g = spec.M - m
		}
		groups = append(groups, g)
	}
	pushGroup(groups[0])
	for i := range groups {
		if i+1 < len(groups) {
			pushGroup(groups[i+1])
		}
		popGroup(groups[i])
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}
