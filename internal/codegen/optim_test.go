package codegen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/funcsim"
	"repro/internal/tensor"
)

func TestAXPBYKernel(t *testing.T) {
	r := tensor.NewRNG(11)
	n := 53 // not a multiple of VLEN: exercises the tail chunk
	a := tensor.RandNormal(r, 0, 1, n)
	bb := tensor.RandNormal(r, 0, 1, n)
	alpha, beta := float32(0.9), float32(1.0)
	spec := AXPBYSpec{N: n, Alpha: alpha, Beta: beta, VLEN: 16, AOff: 0, BOff: 4096, OutOff: 8192}
	core := runKernel(t, AXPBY(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.BOff, bb.Data)
	})
	got := readSpad(core, spec.OutOff, n)
	for i := range got {
		want := alpha*a.Data[i] + beta*bb.Data[i]
		if d := got[i] - want; d > 1e-5 || d < -1e-5 {
			t.Fatalf("axpby[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestAXPBYKernelProperty(t *testing.T) {
	// Property: for any coefficients, the kernel matches the scalar formula.
	f := func(seed uint64, rawA, rawB int8) bool {
		alpha := float32(rawA) / 16
		beta := float32(rawB) / 16
		r := tensor.NewRNG(seed)
		n := 1 + int(seed%40)
		a := tensor.RandNormal(r, 0, 1, n)
		bb := tensor.RandNormal(r, 0, 1, n)
		spec := AXPBYSpec{N: n, Alpha: alpha, Beta: beta, VLEN: 8, AOff: 0, BOff: 4096, OutOff: 8192}
		core := runKernel(t, AXPBY(spec), func(fc *funcsim.Core) {
			writeSpad(fc, spec.AOff, a.Data)
			writeSpad(fc, spec.BOff, bb.Data)
		})
		got := readSpad(core, spec.OutOff, n)
		for i := range got {
			want := alpha*a.Data[i] + beta*bb.Data[i]
			if d := got[i] - want; d > 1e-4 || d < -1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamStepKernel(t *testing.T) {
	r := tensor.NewRNG(12)
	n := 37
	p := tensor.RandNormal(r, 0, 1, n)
	m := tensor.RandNormal(r, 0, 0.1, n)
	v := tensor.RandNormal(r, 0, 0.1, n)
	for i := range v.Data {
		if v.Data[i] < 0 {
			v.Data[i] = -v.Data[i] // second moments are non-negative
		}
	}
	negLR, eps := float32(-0.001), float32(1e-8)
	spec := AdamSpec{N: n, VLEN: 16, POff: 0, MOff: 4096, VOff: 8192, CoefOff: 12288, OutOff: 16384}
	core := runKernel(t, AdamStep(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.POff, p.Data)
		writeSpad(fc, spec.MOff, m.Data)
		writeSpad(fc, spec.VOff, v.Data)
		writeSpad(fc, spec.CoefOff, []float32{negLR, eps})
	})
	got := readSpad(core, spec.OutOff, n)
	for i := range got {
		den := float32(math.Sqrt(float64(v.Data[i]))) + eps
		want := p.Data[i] + negLR*m.Data[i]/den
		rel := (got[i] - want) / (want + 1e-12)
		if rel > 1e-4 || rel < -1e-4 {
			t.Fatalf("adam[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestAdamStepKernelZeroSecondMoment(t *testing.T) {
	// v = 0 must not produce NaN/Inf: the denominator degrades to eps.
	n := 8
	p := make([]float32, n)
	m := make([]float32, n)
	for i := range p {
		p[i] = 1
		m[i] = 0.5
	}
	spec := AdamSpec{N: n, VLEN: 8, POff: 0, MOff: 4096, VOff: 8192, CoefOff: 12288, OutOff: 16384}
	core := runKernel(t, AdamStep(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.POff, p)
		writeSpad(fc, spec.MOff, m)
		writeSpad(fc, spec.VOff, make([]float32, n)) // v = 0
		writeSpad(fc, spec.CoefOff, []float32{-0.1, 1e-8})
	})
	got := readSpad(core, spec.OutOff, n)
	for i, g := range got {
		if math.IsNaN(float64(g)) || math.IsInf(float64(g), 0) {
			t.Fatalf("adam[%d] = %g with zero v", i, g)
		}
		// p - 0.1*0.5/1e-8 is a huge step; just check direction and finiteness.
		if g >= p[i] {
			t.Fatalf("adam[%d] did not move against the moment: %g", i, g)
		}
	}
}

func TestAdamStepKernelWithDecay(t *testing.T) {
	r := tensor.NewRNG(13)
	n := 21
	p := tensor.RandNormal(r, 0, 1, n)
	m := tensor.RandNormal(r, 0, 0.1, n)
	v := tensor.RandNormal(r, 0, 0.1, n)
	for i := range v.Data {
		if v.Data[i] < 0 {
			v.Data[i] = -v.Data[i]
		}
	}
	negLR, eps, decay := float32(-0.001), float32(1e-8), float32(-0.0004) // -lr*wd
	spec := AdamSpec{N: n, VLEN: 8, Decay: decay,
		POff: 0, MOff: 4096, VOff: 8192, CoefOff: 12288, OutOff: 16384}
	core := runKernel(t, AdamStep(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.POff, p.Data)
		writeSpad(fc, spec.MOff, m.Data)
		writeSpad(fc, spec.VOff, v.Data)
		writeSpad(fc, spec.CoefOff, []float32{negLR, eps})
	})
	got := readSpad(core, spec.OutOff, n)
	for i := range got {
		den := float32(math.Sqrt(float64(v.Data[i]))) + eps
		pd := p.Data[i] + decay*p.Data[i]
		want := pd + negLR*m.Data[i]/den
		if d := got[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("adamw[%d] = %g, want %g", i, got[i], want)
		}
	}
}
