package codegen

import (
	"fmt"

	"repro/internal/isa"
)

// AXPBYSpec describes the fused two-scalar blend out = Alpha*a + Beta*b
// over N elements. It is the building block of stateful optimizers:
// momentum (v' = mu*v + g) and Adam's first/second-moment EMAs
// (m' = b1*m + (1-b1)*g).
type AXPBYSpec struct {
	N                  int
	Alpha, Beta        float32
	VLEN               int
	AOff, BOff, OutOff int64
}

// Signature is the kernel cache key (coefficients excluded: latency depends
// only on shape).
func (s AXPBYSpec) Signature() string {
	return fmt.Sprintf("axpby_n%d_v%d", s.N, s.VLEN)
}

// AXPBY generates the blend kernel: one multiply plus one fused
// multiply-accumulate per chunk.
func AXPBY(s AXPBYSpec) *isa.Program {
	if s.N <= 0 || s.VLEN <= 0 {
		panic(fmt.Sprintf("codegen: bad axpby spec %+v", s))
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const fAlpha, fBeta = 1, 2
	b.Emit(isa.FLI(fAlpha, s.Alpha))
	b.Emit(isa.FLI(fBeta, s.Beta))
	for off := 0; off < s.N; off += s.VLEN {
		n := s.VLEN
		if s.N-off < n {
			n = s.N - off
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.AOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fAlpha})
		emitSpadAddr(b, rTmp, s.BOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vAcc, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpVMACCVF, Rd: vIn, Rs1: vAcc, Rs2: fBeta})
		emitSpadAddr(b, rTmp, s.OutOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// AdamSpec describes the fused Adam parameter step
//
//	out = p + coef[0] * m / (sqrt(v) + coef[1])
//
// over N elements, where coef is a 2-element scratchpad tensor holding the
// *negated* bias-corrected step size and the (bias-corrected) epsilon. The
// coefficients arrive through memory rather than as immediates so the same
// compiled kernel serves every training step (the step size changes with
// the Adam bias correction, and kernels — like TOGs — are compiled once per
// shape, §3.10).
type AdamSpec struct {
	N                                 int
	VLEN                              int
	POff, MOff, VOff, CoefOff, OutOff int64
	// Decay, when non-zero, applies AdamW-style decoupled weight decay
	// before the moment update: p += Decay*p, with Decay = -lr*wd. It is a
	// compile-time immediate (unlike the bias-corrected step size, it does
	// not change across steps).
	Decay float32
}

// Signature is the kernel cache key (decay excluded: latency is unchanged
// by one fused multiply-accumulate when it is zero, and the compiler keys
// kernel identity separately).
func (s AdamSpec) Signature() string {
	if s.Decay != 0 {
		return fmt.Sprintf("adamw_n%d_v%d", s.N, s.VLEN)
	}
	return fmt.Sprintf("adam_n%d_v%d", s.N, s.VLEN)
}

// AdamStep generates the fused optimizer kernel: vector sqrt through the
// SFU, one divide, and a scalar-broadcast fused multiply-accumulate.
func AdamStep(s AdamSpec) *isa.Program {
	if s.N <= 0 || s.VLEN <= 0 {
		panic(fmt.Sprintf("codegen: bad adam spec %+v", s))
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const fNegLR, fEps, fDecay = 1, 2, 3
	const vP, vM, vV = vIn, vAcc, vBias
	emitSpadAddr(b, rTmp, s.CoefOff)
	b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fNegLR, Rs1: rTmp, Imm: 0})
	b.Emit(isa.Instr{Op: isa.OpFLW, Rd: fEps, Rs1: rTmp, Imm: 4})
	if s.Decay != 0 {
		b.Emit(isa.FLI(fDecay, s.Decay))
	}
	for off := 0; off < s.N; off += s.VLEN {
		n := s.VLEN
		if s.N-off < n {
			n = s.N - off
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.POff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vP, Rs1: rTmp})
		if s.Decay != 0 {
			b.Emit(isa.Instr{Op: isa.OpVMACCVF, Rd: vP, Rs1: vP, Rs2: fDecay})
		}
		emitSpadAddr(b, rTmp, s.MOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vM, Rs1: rTmp})
		emitSpadAddr(b, rTmp, s.VOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vV, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vV, Rs1: vV, Funct: isa.SFUSqrt})
		b.Emit(isa.Instr{Op: isa.OpVADDVF, Rd: vV, Rs1: vV, Rs2: fEps})
		b.Emit(isa.Instr{Op: isa.OpVDIV, Rd: vM, Rs1: vM, Rs2: vV})
		b.Emit(isa.Instr{Op: isa.OpVMACCVF, Rd: vP, Rs1: vM, Rs2: fNegLR})
		emitSpadAddr(b, rTmp, s.OutOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vP, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}
