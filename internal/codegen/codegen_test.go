package codegen

import (
	"testing"
	"testing/quick"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tensor"
)

// runKernel executes a kernel against a fresh functional core whose
// scratchpad has been pre-populated by fill, returning the core.
func runKernel(t *testing.T, p *isa.Program, fill func(c *funcsim.Core)) *funcsim.Core {
	t.Helper()
	core := funcsim.NewCore(npu.SmallConfig().Core, npu.NewPagedMem())
	if fill != nil {
		fill(core)
	}
	if _, err := core.Run(p); err != nil {
		t.Fatalf("kernel %q failed: %v\n%s", p.Name, err, p.Dump())
	}
	return core
}

func writeSpad(c *funcsim.Core, off int64, data []float32) {
	for i, v := range data {
		c.Mem.Spad.StoreF(isa.SpadBase+uint64(off)+uint64(4*i), v)
	}
}

func readSpad(c *funcsim.Core, off int64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = c.Mem.Spad.LoadF(isa.SpadBase + uint64(off) + uint64(4*i))
	}
	return out
}

func TestGEMMKernelMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m := 1 + r.Intn(12)
		k := 1 + r.Intn(8) // <= SA rows (8)
		n := 1 + r.Intn(8) // <= SA cols (8)
		in := tensor.RandNormal(r, 0, 1, m, k)
		w := tensor.RandNormal(r, 0, 1, k, n)
		spec := GEMMSpec{M: m, K: k, N: n, InOff: 0, WOff: 4096, OutOff: 8192}
		core := runKernel(t, GEMM(spec), func(c *funcsim.Core) {
			writeSpad(c, spec.InOff, in.Data)
			writeSpad(c, spec.WOff, w.Data)
		})
		got := tensor.FromSlice(readSpad(core, spec.OutOff, m*n), m, n)
		return tensor.AllClose(got, tensor.MatMul(in, w), 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMKernelAccumulate(t *testing.T) {
	r := tensor.NewRNG(1)
	m, k, n := 5, 8, 8
	in := tensor.RandNormal(r, 0, 1, m, k)
	w := tensor.RandNormal(r, 0, 1, k, n)
	prev := tensor.RandNormal(r, 0, 1, m, n)
	spec := GEMMSpec{M: m, K: k, N: n, Accumulate: true, InOff: 0, WOff: 4096, OutOff: 8192}
	core := runKernel(t, GEMM(spec), func(c *funcsim.Core) {
		writeSpad(c, spec.InOff, in.Data)
		writeSpad(c, spec.WOff, w.Data)
		writeSpad(c, spec.OutOff, prev.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, m*n), m, n)
	want := tensor.Add(prev, tensor.MatMul(in, w))
	if !tensor.AllClose(got, want, 1e-4, 1e-4) {
		t.Fatal("accumulating GEMM wrong")
	}
}

func TestGEMMKernelEpilogues(t *testing.T) {
	r := tensor.NewRNG(2)
	m, k, n := 4, 6, 8
	in := tensor.RandNormal(r, 0, 1, m, k)
	w := tensor.RandNormal(r, 0, 1, k, n)
	bias := tensor.RandNormal(r, 0, 1, n)

	cases := []struct {
		epi  Epilogue
		want func() *tensor.Tensor
	}{
		{Epilogue{Bias: true}, func() *tensor.Tensor {
			return tensor.AddBiasRows(tensor.MatMul(in, w), bias)
		}},
		{Epilogue{Bias: true, ReLU: true}, func() *tensor.Tensor {
			return tensor.ReLU(tensor.AddBiasRows(tensor.MatMul(in, w), bias))
		}},
		{Epilogue{GELU: true}, func() *tensor.Tensor {
			return tensor.GELU(tensor.MatMul(in, w))
		}},
	}
	for _, c := range cases {
		spec := GEMMSpec{M: m, K: k, N: n, Epi: c.epi, InOff: 0, WOff: 4096, OutOff: 8192, BiasOff: 12288}
		core := runKernel(t, GEMM(spec), func(fc *funcsim.Core) {
			writeSpad(fc, spec.InOff, in.Data)
			writeSpad(fc, spec.WOff, w.Data)
			writeSpad(fc, spec.BiasOff, bias.Data)
		})
		got := tensor.FromSlice(readSpad(core, spec.OutOff, m*n), m, n)
		if !tensor.AllClose(got, c.want(), 1e-4, 1e-4) {
			t.Fatalf("epilogue %v wrong", c.epi)
		}
	}
}

func TestEltwiseKernels(t *testing.T) {
	r := tensor.NewRNG(3)
	rows, cols := 5, 20 // cols > VLEN=16 exercises chunking
	a := tensor.RandNormal(r, 0, 1, rows, cols)
	bb := tensor.RandNormal(r, 0, 1, rows, cols)
	vlen := npu.SmallConfig().Core.VLEN()

	cases := []struct {
		op   EltOp
		want *tensor.Tensor
	}{
		{EltAdd, tensor.Add(a, bb)},
		{EltMul, tensor.Mul(a, bb)},
		{EltReLU, tensor.ReLU(a)},
		{EltGELU, tensor.GELU(a)},
		{EltTanh, tensor.Tanh(a)},
		{EltScale, tensor.Scale(a, 2.5)},
	}
	for _, c := range cases {
		spec := EltSpec{Op: c.op, Rows: rows, Cols: cols, ScaleF: 2.5, VLEN: vlen, AOff: 0, BOff: 4096, OutOff: 8192}
		core := runKernel(t, Eltwise(spec), func(fc *funcsim.Core) {
			writeSpad(fc, spec.AOff, a.Data)
			writeSpad(fc, spec.BOff, bb.Data)
		})
		got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
		if !tensor.AllClose(got, c.want, 1e-4, 1e-4) {
			t.Fatalf("eltwise %s wrong", c.op)
		}
	}
}

func TestEltwiseReLUGrad(t *testing.T) {
	r := tensor.NewRNG(4)
	rows, cols := 3, 8
	dy := tensor.RandNormal(r, 0, 1, rows, cols)
	x := tensor.RandNormal(r, 0, 1, rows, cols)
	vlen := npu.SmallConfig().Core.VLEN()
	spec := EltSpec{Op: EltReLUGrad, Rows: rows, Cols: cols, VLEN: vlen, AOff: 0, BOff: 4096, OutOff: 8192}
	core := runKernel(t, Eltwise(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, dy.Data)
		writeSpad(fc, spec.BOff, x.Data)
	})
	got := readSpad(core, spec.OutOff, rows*cols)
	for i := range got {
		want := float32(0)
		if x.Data[i] > 0 {
			want = dy.Data[i]
		}
		if got[i] != want {
			t.Fatalf("relu_grad[%d] = %g, want %g (x=%g)", i, got[i], want, x.Data[i])
		}
	}
}

func TestBiasAddAndScaleShiftKernels(t *testing.T) {
	r := tensor.NewRNG(5)
	rows, cols := 4, 12
	a := tensor.RandNormal(r, 0, 1, rows, cols)
	bias := tensor.RandNormal(r, 0, 1, cols)
	vlen := npu.SmallConfig().Core.VLEN()
	spec := EltSpec{Op: EltBiasAdd, Rows: rows, Cols: cols, VLEN: vlen, AOff: 0, BOff: 4096, OutOff: 8192}
	core := runKernel(t, Eltwise(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.BOff, bias.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	if !tensor.AllClose(got, tensor.AddBiasRows(a, bias), 1e-5, 1e-5) {
		t.Fatal("bias_add kernel wrong")
	}

	gamma := tensor.RandNormal(r, 1, 0.1, cols)
	beta := tensor.RandNormal(r, 0, 0.1, cols)
	gb := append(append([]float32{}, gamma.Data...), beta.Data...)
	spec2 := EltSpec{Op: EltScaleSh, Rows: rows, Cols: cols, VLEN: vlen, AOff: 0, BOff: 4096, OutOff: 8192}
	core2 := runKernel(t, Eltwise(spec2), func(fc *funcsim.Core) {
		writeSpad(fc, spec2.AOff, a.Data)
		writeSpad(fc, spec2.BOff, gb)
	})
	got2 := readSpad(core2, spec2.OutOff, rows*cols)
	for i := 0; i < rows*cols; i++ {
		want := a.Data[i]*gamma.Data[i%cols] + beta.Data[i%cols]
		if diff := got2[i] - want; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("scale_shift[%d] = %g, want %g", i, got2[i], want)
		}
	}
}

func TestSoftmaxKernelMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows, cols := 1+r.Intn(6), 2+r.Intn(15) // cols <= VLEN = 16
		a := tensor.RandNormal(r, 0, 3, rows, cols)
		spec := SoftmaxSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, OutOff: 8192}
		core := runKernel(t, Softmax(spec), func(fc *funcsim.Core) {
			writeSpad(fc, spec.AOff, a.Data)
		})
		got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
		return tensor.AllClose(got, tensor.Softmax(a), 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerNormKernelMatchesReference(t *testing.T) {
	r := tensor.NewRNG(6)
	rows, cols := 4, 16
	a := tensor.RandNormal(r, 2, 3, rows, cols)
	gamma := tensor.RandNormal(r, 1, 0.2, cols)
	beta := tensor.RandNormal(r, 0, 0.2, cols)
	spec := LayerNormSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, GOff: 4096, BOff: 5120, OutOff: 8192}
	core := runKernel(t, LayerNorm(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.GOff, gamma.Data)
		writeSpad(fc, spec.BOff, beta.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	want := tensor.LayerNorm(a, gamma, beta, 1e-5)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("layernorm kernel wrong:\n got %v\nwant %v", got, want)
	}
}

func TestColSumKernel(t *testing.T) {
	r := tensor.NewRNG(7)
	rows, cols := 6, 20
	a := tensor.RandNormal(r, 0, 1, rows, cols)
	spec := ColSumSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, OutOff: 8192}
	core := runKernel(t, ColSum(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
	})
	got := readSpad(core, spec.OutOff, cols)
	for j := 0; j < cols; j++ {
		var want float32
		for i := 0; i < rows; i++ {
			want += a.Data[i*cols+j]
		}
		if d := got[j] - want; d > 1e-4 || d < -1e-4 {
			t.Fatalf("colsum[%d] = %g, want %g", j, got[j], want)
		}
	}
}

func TestSGDKernel(t *testing.T) {
	r := tensor.NewRNG(8)
	n := 37
	w := tensor.RandNormal(r, 0, 1, n)
	g := tensor.RandNormal(r, 0, 1, n)
	lr := float32(0.05)
	spec := SGDSpec{N: n, LR: lr, VLEN: 16, WOff: 0, GOff: 4096, OutOff: 8192}
	core := runKernel(t, SGD(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.WOff, w.Data)
		writeSpad(fc, spec.GOff, g.Data)
	})
	got := readSpad(core, spec.OutOff, n)
	for i := range got {
		want := w.Data[i] - lr*g.Data[i]
		if d := got[i] - want; d > 1e-5 || d < -1e-5 {
			t.Fatalf("sgd[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestMaxPoolKernel(t *testing.T) {
	// 8 outputs, 4 taps, tap-major layout.
	outs, taps := 8, 4
	vals := make([]float32, outs*taps)
	r := tensor.NewRNG(9)
	for i := range vals {
		vals[i] = float32(r.Norm())
	}
	spec := PoolSpec{OutElems: outs, Taps: taps, VLEN: 16, TapStride: int64(outs * 4), AOff: 0, OutOff: 8192}
	core := runKernel(t, MaxPool(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, vals)
	})
	got := readSpad(core, spec.OutOff, outs)
	for o := 0; o < outs; o++ {
		want := vals[o]
		for t2 := 1; t2 < taps; t2++ {
			if v := vals[t2*outs+o]; v > want {
				want = v
			}
		}
		if got[o] != want {
			t.Fatalf("pool[%d] = %g, want %g", o, got[o], want)
		}
	}
}

func TestSignaturesDistinguishKernels(t *testing.T) {
	a := GEMMSpec{M: 8, K: 8, N: 8}
	b := GEMMSpec{M: 8, K: 8, N: 8, Accumulate: true}
	c := GEMMSpec{M: 8, K: 8, N: 8, Epi: Epilogue{ReLU: true}}
	if a.Signature() == b.Signature() || a.Signature() == c.Signature() {
		t.Fatal("signatures must distinguish accumulate/epilogue variants")
	}
	// Offsets must NOT change the signature (latency-equivalent kernels).
	d := GEMMSpec{M: 8, K: 8, N: 8, InOff: 4096}
	if a.Signature() != d.Signature() {
		t.Fatal("offsets must not affect the signature")
	}
}
