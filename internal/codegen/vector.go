package codegen

import (
	"fmt"

	"repro/internal/isa"
)

// EltOp enumerates pointwise tile kernels (the loop-level-IR lowering path
// for non-GEMM ops).
type EltOp string

const (
	EltAdd      EltOp = "add"         // out = a + b
	EltMul      EltOp = "mul"         // out = a * b
	EltReLU     EltOp = "relu"        // out = max(a, 0)
	EltGELU     EltOp = "gelu"        // out = gelu(a)
	EltTanh     EltOp = "tanh"        // out = tanh(a)
	EltScale    EltOp = "scale"       // out = a * const
	EltBiasAdd  EltOp = "bias_add"    // out = a + bias-row (b is a row vector)
	EltReLUGrad EltOp = "relu_grad"   // out = a * (b > 0): a=dY, b=X
	EltScaleSh  EltOp = "scale_shift" // out = a*gamma + beta per column-pair rows
)

// EltSpec describes a pointwise kernel over a tile of Rows x Cols float32
// elements. AOff/BOff/OutOff are scratchpad byte offsets; BOff is unused by
// unary ops. For bias_add and scale_shift, B holds one row of Cols values.
type EltSpec struct {
	Op                 EltOp
	Rows, Cols         int
	ScaleF             float32 // for EltScale
	VLEN               int     // core logical vector length
	AOff, BOff, OutOff int64
}

// Signature is the kernel cache key.
func (s EltSpec) Signature() string {
	return fmt.Sprintf("elt_%s_r%d_c%d_v%d", s.Op, s.Rows, s.Cols, s.VLEN)
}

// Eltwise generates a pointwise tile kernel: the tile is processed in
// VL-sized chunks, row-major.
func Eltwise(s EltSpec) *isa.Program {
	if s.Rows <= 0 || s.Cols <= 0 || s.VLEN <= 0 {
		panic(fmt.Sprintf("codegen: bad elt spec %+v", s))
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	total := s.Rows * s.Cols
	if s.Op == EltScale {
		b.Emit(isa.FLI(fZero, s.ScaleF))
	}
	if s.Op == EltReLU {
		b.Emit(isa.FLI(fZero, 0))
	}
	if s.Op == EltBiasAdd || s.Op == EltScaleSh {
		// Row-vector operands stay resident in vector registers; process
		// row by row so each chunk aligns with the bias row.
		eltwiseRows(b, s)
		b.Emit(isa.Instr{Op: isa.OpHALT})
		return b.Build()
	}
	for off := 0; off < total; off += s.VLEN {
		n := s.VLEN
		if total-off < n {
			n = total - off
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.AOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		switch s.Op {
		case EltAdd, EltMul, EltReLUGrad:
			emitSpadAddr(b, rTmp, s.BOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vAcc, Rs1: rTmp})
		}
		switch s.Op {
		case EltAdd:
			b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vIn, Rs2: vAcc})
		case EltMul:
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vOut, Rs1: vIn, Rs2: vAcc})
		case EltReLU:
			b.Emit(isa.Instr{Op: isa.OpVMAXVF, Rd: vOut, Rs1: vIn, Rs2: fZero})
		case EltGELU:
			b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vOut, Rs1: vIn, Funct: isa.SFUGelu})
		case EltTanh:
			b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vOut, Rs1: vIn, Funct: isa.SFUTanh})
		case EltScale:
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vOut, Rs1: vIn, Rs2: fZero})
		case EltReLUGrad:
			// out = dY where X > 0: sign mask via (max(X,0) recip trick is
			// numerically unsafe); compute mask = min(max(X*BIG,0),1).
			b.Emit(isa.FLI(2, 1e30))
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vAcc, Rs1: vAcc, Rs2: 2})
			b.Emit(isa.FLI(2, 0))
			b.Emit(isa.Instr{Op: isa.OpVMAXVF, Rd: vAcc, Rs1: vAcc, Rs2: 2})
			b.Emit(isa.FLI(2, 1))
			b.Emit(isa.Instr{Op: isa.OpVBCAST, Rd: vBias, Rs1: 2})
			b.Emit(isa.Instr{Op: isa.OpVMIN, Rd: vAcc, Rs1: vAcc, Rs2: vBias})
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vOut, Rs1: vIn, Rs2: vAcc})
		default:
			panic(fmt.Sprintf("codegen: unknown elt op %q", s.Op))
		}
		emitSpadAddr(b, rTmp, s.OutOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// eltwiseRows handles row-vector-operand kernels (bias_add, scale_shift).
// For scale_shift, B holds gamma in its first row and beta in its second.
func eltwiseRows(b *isa.Builder, s EltSpec) {
	for c := 0; c < s.Cols; c += s.VLEN {
		n := s.VLEN
		if s.Cols-c < n {
			n = s.Cols - c
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.BOff+int64(c*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp})
		if s.Op == EltScaleSh {
			emitSpadAddr(b, rTmp, s.BOff+int64((s.Cols+c)*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vWeight, Rs1: rTmp})
		}
		for r := 0; r < s.Rows; r++ {
			off := int64((r*s.Cols + c) * 4)
			emitSpadAddr(b, rTmp, s.AOff+off)
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			if s.Op == EltScaleSh {
				b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vIn, Rs1: vIn, Rs2: vBias})
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vIn, Rs2: vWeight})
			} else {
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vIn, Rs2: vBias})
			}
			emitSpadAddr(b, rTmp, s.OutOff+off)
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
		}
	}
}

// SoftmaxSpec describes a row-wise softmax tile kernel (Cols must fit in
// VLEN; wider rows are split by the compiler into multi-pass reductions).
type SoftmaxSpec struct {
	Rows, Cols   int
	VLEN         int
	AOff, OutOff int64
}

// Signature is the kernel cache key.
func (s SoftmaxSpec) Signature() string {
	return fmt.Sprintf("softmax_r%d_c%d_v%d", s.Rows, s.Cols, s.VLEN)
}

// Softmax generates the numerically stable row-wise softmax kernel:
// max-reduce, subtract, exp (SFU), sum-reduce, reciprocal multiply. Rows
// wider than VLEN use the multi-pass lowering.
func Softmax(s SoftmaxSpec) *isa.Program {
	if s.Cols > s.VLEN {
		return softmaxWide(s)
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	emitSetVL(b, s.Cols)
	b.Emit(isa.FLI(2, 1)) // f2 = 1.0 for reciprocal
	for r := 0; r < s.Rows; r++ {
		off := int64(r * s.Cols * 4)
		emitSpadAddr(b, rTmp, s.AOff+off)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpVREDMAX, Rd: fZero, Rs1: vIn})
		b.Emit(isa.Instr{Op: isa.OpVSUBVF, Rd: vIn, Rs1: vIn, Rs2: fZero})
		b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vIn, Rs1: vIn, Funct: isa.SFUExp})
		b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fZero, Rs1: vIn})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fZero, Rs1: 2, Rs2: fZero})
		b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vOut, Rs1: vIn, Rs2: fZero})
		emitSpadAddr(b, rTmp, s.OutOff+off)
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// LayerNormSpec describes a row-wise layer normalization tile kernel.
// Gamma and beta rows live at GOff and BOff.
type LayerNormSpec struct {
	Rows, Cols               int
	VLEN                     int
	Eps                      float32
	AOff, GOff, BOff, OutOff int64
}

// Signature is the kernel cache key.
func (s LayerNormSpec) Signature() string {
	return fmt.Sprintf("layernorm_r%d_c%d_v%d", s.Rows, s.Cols, s.VLEN)
}

// LayerNorm generates the row-wise layernorm kernel: mean, variance,
// rsqrt, scale by gamma, shift by beta. Rows wider than VLEN use the
// multi-pass lowering.
func LayerNorm(s LayerNormSpec) *isa.Program {
	if s.Cols > s.VLEN {
		return layerNormWide(s)
	}
	eps := s.Eps
	if eps == 0 {
		eps = 1e-5
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	emitSetVL(b, s.Cols)
	b.Emit(isa.FLI(2, 1/float32(s.Cols))) // f2 = 1/n
	b.Emit(isa.FLI(3, eps))               // f3 = eps
	emitSpadAddr(b, rTmp, s.GOff)
	b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp}) // gamma
	emitSpadAddr(b, rTmp, s.BOff)
	b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vWeight, Rs1: rTmp}) // beta
	for r := 0; r < s.Rows; r++ {
		off := int64(r * s.Cols * 4)
		emitSpadAddr(b, rTmp, s.AOff+off)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		// mean = sum(x)/n
		b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fZero, Rs1: vIn})
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fZero, Rs1: fZero, Rs2: 2})
		// x -= mean
		b.Emit(isa.Instr{Op: isa.OpVSUBVF, Rd: vIn, Rs1: vIn, Rs2: fZero})
		// var = sum(x^2)/n
		b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vAcc, Rs1: vIn, Rs2: vIn})
		b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fZero, Rs1: vAcc})
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fZero, Rs1: fZero, Rs2: 2})
		// inv = 1/sqrt(var + eps)
		b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fZero, Rs1: fZero, Rs2: 3})
		b.Emit(isa.Instr{Op: isa.OpFSQRT, Rd: fZero, Rs1: fZero})
		b.Emit(isa.Instr{Op: isa.OpFLI, Rd: 4, Imm: isa.FLI(4, 1).Imm})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fZero, Rs1: 4, Rs2: fZero})
		// out = x*inv*gamma + beta
		b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fZero})
		b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vIn, Rs1: vIn, Rs2: vBias})
		b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vOut, Rs1: vIn, Rs2: vWeight})
		emitSpadAddr(b, rTmp, s.OutOff+off)
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// RMSNormSpec describes a row-wise RMS normalization tile kernel (the
// decoder-block norm): out = x / sqrt(mean(x^2) + eps) * gamma. Unlike
// layernorm there is no mean subtraction and no beta shift.
type RMSNormSpec struct {
	Rows, Cols         int
	VLEN               int
	Eps                float32
	AOff, GOff, OutOff int64
}

// Signature is the kernel cache key.
func (s RMSNormSpec) Signature() string {
	return fmt.Sprintf("rmsnorm_r%d_c%d_v%d", s.Rows, s.Cols, s.VLEN)
}

// RMSNorm generates the row-wise RMS-norm kernel: mean square, rsqrt,
// scale by gamma. Rows wider than VLEN use the multi-pass lowering.
func RMSNorm(s RMSNormSpec) *isa.Program {
	if s.Cols > s.VLEN {
		return rmsNormWide(s)
	}
	eps := s.Eps
	if eps == 0 {
		eps = 1e-5
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	emitSetVL(b, s.Cols)
	b.Emit(isa.FLI(2, 1/float32(s.Cols))) // f2 = 1/n
	b.Emit(isa.FLI(3, eps))               // f3 = eps
	emitSpadAddr(b, rTmp, s.GOff)
	b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp}) // gamma
	for r := 0; r < s.Rows; r++ {
		off := int64(r * s.Cols * 4)
		emitSpadAddr(b, rTmp, s.AOff+off)
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		// ms = sum(x^2)/n
		b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vAcc, Rs1: vIn, Rs2: vIn})
		b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fZero, Rs1: vAcc})
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fZero, Rs1: fZero, Rs2: 2})
		// inv = 1/sqrt(ms + eps)
		b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fZero, Rs1: fZero, Rs2: 3})
		b.Emit(isa.Instr{Op: isa.OpFSQRT, Rd: fZero, Rs1: fZero})
		b.Emit(isa.Instr{Op: isa.OpFLI, Rd: 4, Imm: isa.FLI(4, 1).Imm})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fZero, Rs1: 4, Rs2: fZero})
		// out = x*inv*gamma
		b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fZero})
		b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vOut, Rs1: vIn, Rs2: vBias})
		emitSpadAddr(b, rTmp, s.OutOff+off)
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vOut, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// ColSumSpec describes the column-sum reduction (M,N) -> (N,) used for bias
// gradients.
type ColSumSpec struct {
	Rows, Cols   int
	VLEN         int
	AOff, OutOff int64
}

// Signature is the kernel cache key.
func (s ColSumSpec) Signature() string {
	return fmt.Sprintf("colsum_r%d_c%d_v%d", s.Rows, s.Cols, s.VLEN)
}

// ColSum generates the column-sum kernel: accumulate rows with VADD.
func ColSum(s ColSumSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	for c := 0; c < s.Cols; c += s.VLEN {
		n := s.VLEN
		if s.Cols-c < n {
			n = s.Cols - c
		}
		emitSetVL(b, n)
		b.Emit(isa.FLI(fZero, 0))
		b.Emit(isa.Instr{Op: isa.OpVBCAST, Rd: vAcc, Rs1: fZero})
		for r := 0; r < s.Rows; r++ {
			emitSpadAddr(b, rTmp, s.AOff+int64((r*s.Cols+c)*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vAcc, Rs1: vAcc, Rs2: vIn})
		}
		emitSpadAddr(b, rTmp, s.OutOff+int64(c*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vAcc, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// SGDSpec describes the fused optimizer step w -= lr * g over N elements.
type SGDSpec struct {
	N                  int
	LR                 float32
	VLEN               int
	WOff, GOff, OutOff int64
}

// Signature is the kernel cache key.
func (s SGDSpec) Signature() string {
	return fmt.Sprintf("sgd_n%d_v%d", s.N, s.VLEN)
}

// SGD generates the optimizer kernel using fused multiply-accumulate with a
// negative learning rate.
func SGD(s SGDSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	b.Emit(isa.FLI(fZero, -s.LR))
	for off := 0; off < s.N; off += s.VLEN {
		n := s.VLEN
		if s.N-off < n {
			n = s.N - off
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.WOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
		emitSpadAddr(b, rTmp, s.GOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vAcc, Rs1: rTmp})
		b.Emit(isa.Instr{Op: isa.OpVMACCVF, Rd: vIn, Rs1: vAcc, Rs2: fZero})
		emitSpadAddr(b, rTmp, s.OutOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// PoolSpec describes max pooling over one tile: OutElems output elements,
// each the max over Window*Window strided input elements. The compiler
// arranges the input tile so that, for output chunk base o, input element
// (o, tap t) lives at AOff + t*TapStride + o*4 (tap-major layout produced by
// the transpose-capable DMA).
type PoolSpec struct {
	OutElems     int
	Taps         int // window*window
	VLEN         int
	TapStride    int64
	AOff, OutOff int64
}

// Signature is the kernel cache key.
func (s PoolSpec) Signature() string {
	return fmt.Sprintf("pool_o%d_t%d_v%d", s.OutElems, s.Taps, s.VLEN)
}

// MaxPool generates the pooling kernel: per chunk, VMAX across taps.
func MaxPool(s PoolSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	for off := 0; off < s.OutElems; off += s.VLEN {
		n := s.VLEN
		if s.OutElems-off < n {
			n = s.OutElems - off
		}
		emitSetVL(b, n)
		emitSpadAddr(b, rTmp, s.AOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vAcc, Rs1: rTmp})
		for t := 1; t < s.Taps; t++ {
			emitSpadAddr(b, rTmp, s.AOff+int64(t)*s.TapStride+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMAX, Rd: vAcc, Rs1: vAcc, Rs2: vIn})
		}
		emitSpadAddr(b, rTmp, s.OutOff+int64(off*4))
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vAcc, Rs1: rTmp})
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}
