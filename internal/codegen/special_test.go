package codegen

import (
	"math"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/tensor"
)

func TestScaleShiftRowKernel(t *testing.T) {
	r := tensor.NewRNG(1)
	channels, planes, elems := 3, 6, 10 // 2 batch x 3 channels
	a := tensor.RandNormal(r, 0, 1, planes, elems)
	gamma := tensor.RandNormal(r, 1, 0.2, channels)
	beta := tensor.RandNormal(r, 0, 0.2, channels)
	spec := ScaleShiftRowSpec{Rows: planes, Cols: elems, Channels: channels, VLEN: 16,
		AOff: 0, GOff: 4096, BOff: 5120, OutOff: 8192}
	core := runKernel(t, ScaleShiftRow(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.GOff, gamma.Data)
		writeSpad(fc, spec.BOff, beta.Data)
	})
	got := readSpad(core, spec.OutOff, planes*elems)
	for p := 0; p < planes; p++ {
		c := p % channels
		for e := 0; e < elems; e++ {
			want := a.Data[p*elems+e]*gamma.Data[c] + beta.Data[c]
			if d := got[p*elems+e] - want; d > 1e-5 || d < -1e-5 {
				t.Fatalf("scale_shift_row[%d,%d] = %g, want %g", p, e, got[p*elems+e], want)
			}
		}
	}
}

func TestPlanePoolKernel(t *testing.T) {
	r := tensor.NewRNG(2)
	h, w, window, stride := 6, 6, 2, 2
	oh, ow := (h-window)/stride+1, (w-window)/stride+1
	plane := tensor.RandNormal(r, 0, 1, 1, 1, h, w)
	spec := PlanePoolSpec{H: h, W: w, OH: oh, OW: ow, Window: window, Stride: stride,
		VLEN: 16, AOff: 0, OutOff: 8192}
	core := runKernel(t, PlanePool(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, plane.Data)
	})
	got := readSpad(core, spec.OutOff, oh*ow)
	want := tensor.MaxPool2D(plane, window, stride)
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("planepool[%d] = %g, want %g", i, got[i], want.Data[i])
		}
	}
}

func TestPlanePoolStride1Window3(t *testing.T) {
	r := tensor.NewRNG(3)
	h, w, window, stride := 7, 7, 3, 2
	oh, ow := (h-window)/stride+1, (w-window)/stride+1
	plane := tensor.RandNormal(r, 0, 1, 1, 1, h, w)
	spec := PlanePoolSpec{H: h, W: w, OH: oh, OW: ow, Window: window, Stride: stride,
		VLEN: 16, AOff: 0, OutOff: 8192}
	core := runKernel(t, PlanePool(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, plane.Data)
	})
	got := readSpad(core, spec.OutOff, oh*ow)
	want := tensor.MaxPool2D(plane, window, stride)
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("planepool 3x3s2 [%d] = %g, want %g", i, got[i], want.Data[i])
		}
	}
}

func TestGlobalAvgKernel(t *testing.T) {
	r := tensor.NewRNG(4)
	planes, elems := 5, 24
	a := tensor.RandNormal(r, 0, 1, planes, elems)
	spec := GlobalAvgSpec{Planes: planes, PlaneElems: elems, VLEN: 16, AOff: 0, OutOff: 8192}
	core := runKernel(t, GlobalAvg(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
	})
	got := readSpad(core, spec.OutOff, planes)
	for p := 0; p < planes; p++ {
		var want float32
		for e := 0; e < elems; e++ {
			want += a.Data[p*elems+e]
		}
		want /= float32(elems)
		if d := got[p] - want; d > 1e-5 || d < -1e-5 {
			t.Fatalf("gavg[%d] = %g, want %g", p, got[p], want)
		}
	}
}

func TestSoftmaxCEKernelLossOnly(t *testing.T) {
	r := tensor.NewRNG(5)
	rows, cols := 4, 10
	logits := tensor.RandNormal(r, 0, 2, rows, cols)
	labels := tensor.New(rows)
	for i := range labels.Data {
		labels.Data[i] = float32(r.Intn(cols))
	}
	spec := SoftmaxCESpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, LabelOff: 2048, LossOff: 8192}
	core := runKernel(t, SoftmaxCE(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, logits.Data)
		writeSpad(fc, spec.LabelOff, labels.Data)
	})
	got := readSpad(core, spec.LossOff, 1)[0]
	// Reference loss.
	probs := tensor.Softmax(logits)
	var want float64
	for i := 0; i < rows; i++ {
		want -= math.Log(float64(probs.At(i, int(labels.Data[i]))))
	}
	want /= float64(rows)
	if math.Abs(float64(got)-want) > 1e-4*(1+math.Abs(want)) {
		t.Fatalf("CE loss = %g, want %g", got, want)
	}
}

func TestSoftmaxCEKernelWithGrad(t *testing.T) {
	r := tensor.NewRNG(6)
	rows, cols := 3, 8
	logits := tensor.RandNormal(r, 0, 2, rows, cols)
	labels := tensor.New(rows)
	for i := range labels.Data {
		labels.Data[i] = float32(r.Intn(cols))
	}
	spec := SoftmaxCESpec{Rows: rows, Cols: cols, VLEN: 16, WithGrad: true,
		AOff: 0, LabelOff: 2048, LossOff: 4096, GradOff: 8192}
	core := runKernel(t, SoftmaxCE(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, logits.Data)
		writeSpad(fc, spec.LabelOff, labels.Data)
	})
	gotLoss := readSpad(core, spec.LossOff, 1)[0]
	gotGrad := readSpad(core, spec.GradOff, rows*cols)

	probs := tensor.Softmax(logits)
	var wantLoss float64
	for i := 0; i < rows; i++ {
		wantLoss -= math.Log(float64(probs.At(i, int(labels.Data[i]))))
	}
	wantLoss /= float64(rows)
	if math.Abs(float64(gotLoss)-wantLoss) > 1e-4*(1+math.Abs(wantLoss)) {
		t.Fatalf("CE loss = %g, want %g", gotLoss, wantLoss)
	}
	inv := 1 / float32(rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			want := probs.At(i, j) * inv
			if j == int(labels.Data[i]) {
				want -= inv
			}
			if d := gotGrad[i*cols+j] - want; d > 1e-5 || d < -1e-5 {
				t.Fatalf("CE grad[%d,%d] = %g, want %g", i, j, gotGrad[i*cols+j], want)
			}
		}
	}
}

func TestWideSoftmaxMatchesReference(t *testing.T) {
	// Cols = 40 > SmallConfig VLEN = 16 exercises the multi-pass path.
	r := tensor.NewRNG(10)
	rows, cols := 3, 40
	a := tensor.RandNormal(r, 0, 3, rows, cols)
	spec := SoftmaxSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, OutOff: 8192}
	core := runKernel(t, Softmax(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	if !tensor.AllClose(got, tensor.Softmax(a), 1e-4, 1e-5) {
		t.Fatal("wide softmax kernel wrong")
	}
}

func TestWideLayerNormMatchesReference(t *testing.T) {
	r := tensor.NewRNG(11)
	rows, cols := 3, 48
	a := tensor.RandNormal(r, 2, 3, rows, cols)
	gamma := tensor.RandNormal(r, 1, 0.2, cols)
	beta := tensor.RandNormal(r, 0, 0.2, cols)
	spec := LayerNormSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, GOff: 4096, BOff: 5120, OutOff: 8192}
	core := runKernel(t, LayerNorm(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.GOff, gamma.Data)
		writeSpad(fc, spec.BOff, beta.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	want := tensor.LayerNorm(a, gamma, beta, 1e-5)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("wide layernorm kernel wrong (max diff %g)", tensor.MaxAbsDiff(got, want))
	}
}

func TestRMSNormMatchesReference(t *testing.T) {
	r := tensor.NewRNG(12)
	rows, cols := 4, 12 // Cols <= VLEN exercises the single-pass kernel
	a := tensor.RandNormal(r, 0.5, 2, rows, cols)
	gamma := tensor.RandNormal(r, 1, 0.2, cols)
	spec := RMSNormSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, GOff: 4096, OutOff: 8192}
	core := runKernel(t, RMSNorm(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.GOff, gamma.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	want := tensor.RMSNorm(a, gamma, 1e-5)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("rmsnorm kernel wrong (max diff %g)", tensor.MaxAbsDiff(got, want))
	}
}

func TestWideRMSNormMatchesReference(t *testing.T) {
	r := tensor.NewRNG(13)
	rows, cols := 3, 48 // Cols > SmallConfig VLEN = 16 exercises the multi-pass path
	a := tensor.RandNormal(r, 0.5, 2, rows, cols)
	gamma := tensor.RandNormal(r, 1, 0.2, cols)
	spec := RMSNormSpec{Rows: rows, Cols: cols, VLEN: 16, AOff: 0, GOff: 4096, OutOff: 8192}
	core := runKernel(t, RMSNorm(spec), func(fc *funcsim.Core) {
		writeSpad(fc, spec.AOff, a.Data)
		writeSpad(fc, spec.GOff, gamma.Data)
	})
	got := tensor.FromSlice(readSpad(core, spec.OutOff, rows*cols), rows, cols)
	want := tensor.RMSNorm(a, gamma, 1e-5)
	if !tensor.AllClose(got, want, 1e-3, 1e-3) {
		t.Fatalf("wide rmsnorm kernel wrong (max diff %g)", tensor.MaxAbsDiff(got, want))
	}
}
