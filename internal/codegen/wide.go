package codegen

import "repro/internal/isa"

// Wide-row lowering: rows wider than the logical vector length are
// processed with multi-pass reductions (chunked max/sum passes combined in
// scalar float registers), as the compiler's loop-level lowering would do.

// softmaxWide emits the three-pass softmax for Cols > VLEN.
func softmaxWide(s SoftmaxSpec) *isa.Program {
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const (
		fMax = 1
		fSum = 2
		fTmp = 3
		fOne = 4
	)
	b.Emit(isa.FLI(fOne, 1))
	chunks := chunkSizes(s.Cols, s.VLEN)
	for r := 0; r < s.Rows; r++ {
		rowOff := int64(r * s.Cols * 4)
		// Pass 1: global max across chunks.
		b.Emit(isa.FLI(fMax, -3.4e38))
		off := 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVREDMAX, Rd: fTmp, Rs1: vIn})
			b.Emit(isa.Instr{Op: isa.OpFMAX, Rd: fMax, Rs1: fMax, Rs2: fTmp})
			off += cs
		}
		// Pass 2: exponentiate into the output row, accumulating the sum.
		b.Emit(isa.FLI(fSum, 0))
		off = 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVSUBVF, Rd: vIn, Rs1: vIn, Rs2: fMax})
			b.Emit(isa.Instr{Op: isa.OpSFU, Rd: vIn, Rs1: vIn, Funct: isa.SFUExp})
			emitSpadAddr(b, rTmp, s.OutOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vIn})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fSum, Rs1: fSum, Rs2: fTmp})
			off += cs
		}
		// Pass 3: scale by the reciprocal of the sum.
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fSum, Rs1: fOne, Rs2: fSum})
		off = 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.OutOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fSum})
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
			off += cs
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// layerNormWide emits the multi-pass layernorm for Cols > VLEN.
func layerNormWide(s LayerNormSpec) *isa.Program {
	eps := s.Eps
	if eps == 0 {
		eps = 1e-5
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const (
		fMean = 1
		fVar  = 2
		fTmp  = 3
		fInvN = 4
		fEps  = 5
		fOne  = 6
	)
	b.Emit(isa.FLI(fInvN, 1/float32(s.Cols)))
	b.Emit(isa.FLI(fEps, eps))
	b.Emit(isa.FLI(fOne, 1))
	chunks := chunkSizes(s.Cols, s.VLEN)
	for r := 0; r < s.Rows; r++ {
		rowOff := int64(r * s.Cols * 4)
		// Pass 1: mean.
		b.Emit(isa.FLI(fMean, 0))
		off := 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vIn})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fMean, Rs1: fMean, Rs2: fTmp})
			off += cs
		}
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fMean, Rs1: fMean, Rs2: fInvN})
		// Pass 2: center into the output row, accumulating the variance.
		b.Emit(isa.FLI(fVar, 0))
		off = 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVSUBVF, Rd: vIn, Rs1: vIn, Rs2: fMean})
			emitSpadAddr(b, rTmp, s.OutOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vAcc, Rs1: vIn, Rs2: vIn})
			b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vAcc})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fVar, Rs1: fVar, Rs2: fTmp})
			off += cs
		}
		// inv = 1/sqrt(var/n + eps)
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fVar, Rs1: fVar, Rs2: fInvN})
		b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fVar, Rs1: fVar, Rs2: fEps})
		b.Emit(isa.Instr{Op: isa.OpFSQRT, Rd: fVar, Rs1: fVar})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fVar, Rs1: fOne, Rs2: fVar})
		// Pass 3: scale by inv, gamma and beta (chunked row operands).
		off = 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.OutOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fVar})
			emitSpadAddr(b, rTmp2, s.GOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp2})
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vIn, Rs1: vIn, Rs2: vBias})
			emitSpadAddr(b, rTmp2, s.BOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp2})
			b.Emit(isa.Instr{Op: isa.OpVADD, Rd: vIn, Rs1: vIn, Rs2: vBias})
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
			off += cs
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

// rmsNormWide emits the multi-pass RMS norm for Cols > VLEN.
func rmsNormWide(s RMSNormSpec) *isa.Program {
	eps := s.Eps
	if eps == 0 {
		eps = 1e-5
	}
	b := isa.NewBuilder(s.Signature())
	emitSpadBase(b)
	const (
		fMS   = 1
		fTmp  = 2
		fInvN = 3
		fEps  = 4
		fOne  = 5
	)
	b.Emit(isa.FLI(fInvN, 1/float32(s.Cols)))
	b.Emit(isa.FLI(fEps, eps))
	b.Emit(isa.FLI(fOne, 1))
	chunks := chunkSizes(s.Cols, s.VLEN)
	for r := 0; r < s.Rows; r++ {
		rowOff := int64(r * s.Cols * 4)
		// Pass 1: mean square.
		b.Emit(isa.FLI(fMS, 0))
		off := 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vAcc, Rs1: vIn, Rs2: vIn})
			b.Emit(isa.Instr{Op: isa.OpVREDSUM, Rd: fTmp, Rs1: vAcc})
			b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fMS, Rs1: fMS, Rs2: fTmp})
			off += cs
		}
		// inv = 1/sqrt(ms/n + eps)
		b.Emit(isa.Instr{Op: isa.OpFMUL, Rd: fMS, Rs1: fMS, Rs2: fInvN})
		b.Emit(isa.Instr{Op: isa.OpFADD, Rd: fMS, Rs1: fMS, Rs2: fEps})
		b.Emit(isa.Instr{Op: isa.OpFSQRT, Rd: fMS, Rs1: fMS})
		b.Emit(isa.Instr{Op: isa.OpFDIV, Rd: fMS, Rs1: fOne, Rs2: fMS})
		// Pass 2: scale by inv and gamma (chunked row operand).
		off = 0
		for _, cs := range chunks {
			emitSetVL(b, cs)
			emitSpadAddr(b, rTmp, s.AOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vIn, Rs1: rTmp})
			b.Emit(isa.Instr{Op: isa.OpVMULVF, Rd: vIn, Rs1: vIn, Rs2: fMS})
			emitSpadAddr(b, rTmp2, s.GOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: vBias, Rs1: rTmp2})
			b.Emit(isa.Instr{Op: isa.OpVMUL, Rd: vIn, Rs1: vIn, Rs2: vBias})
			emitSpadAddr(b, rTmp, s.OutOff+rowOff+int64(off*4))
			b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: vIn, Rs1: rTmp})
			off += cs
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

func chunkSizes(total, vlen int) []int {
	var out []int
	for c := 0; c < total; c += vlen {
		n := vlen
		if total-c < n {
			n = total - c
		}
		out = append(out, n)
	}
	return out
}
