// Package tog defines the Tile Operation Graph (§3.7 of the paper): the
// compiler-generated representation a DNN takes for Tile-Level Simulation.
// A TOG is a structured sequence of nodes — loopBegin/loopEnd pairs,
// compute nodes carrying offline-measured tile latencies, asynchronous
// loadDMA/storeDMA nodes, and waitDMA nodes expressing compute-to-DMA
// dependencies. DMA addresses are affine expressions over the loop index
// variables, so the graph stays compact while describing every transfer.
//
// The paper serializes TOGs in a customized ONNX format; ONNX is a protobuf
// schema, so this reproduction serializes the same information as JSON with
// an ONNX-like node/attribute structure (see DESIGN.md, substitutions).
package tog

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/npu"
)

// Kind enumerates TOG node types (Fig. 4b).
type Kind string

const (
	LoopBegin Kind = "loopBegin"
	LoopEnd   Kind = "loopEnd"
	Compute   Kind = "compute"
	LoadDMA   Kind = "loadDMA"
	StoreDMA  Kind = "storeDMA"
	WaitDMA   Kind = "waitDMA"

	// Collective region markers. A collective op is lowered (ring schedule,
	// see compiler.lowerCollective) into a begin marker of one of the three
	// collective kinds, the expanded DMA/compute primitive schedule that
	// actually moves and reduces the data, and a collEnd marker. The
	// markers execute in zero cycles; the engine uses them only to
	// attribute the enclosed cycles to collective communication. Because
	// the primitives between the markers are ordinary TOG nodes, the
	// collectives run — and stay bit-identical — under the event-driven,
	// strict-tick, and parallel engines with no engine special-casing.
	AllReduce     Kind = "all_reduce"
	AllGather     Kind = "all_gather"
	ReduceScatter Kind = "reduce_scatter"
	CollEnd       Kind = "collEnd"
)

// IsCollective reports whether k is a collective region-begin marker.
func IsCollective(k Kind) bool {
	return k == AllReduce || k == AllGather || k == ReduceScatter
}

// Unit names the compute unit a compute node occupies; the paper captures
// vector and matrix unit latencies separately (§3.7).
type Unit string

const (
	UnitSA     Unit = "sa"
	UnitVector Unit = "vector"
	UnitSparse Unit = "sparse"
)

// AddrTerm is one "coefficient * loopVar" term of an affine address.
type AddrTerm struct {
	Var   string `json:"var"`
	Coeff int64  `json:"coeff"`
}

// AddrExpr is an affine address expression: Const + sum(Coeff_i * Var_i),
// added to the named tensor's base address at execution time.
type AddrExpr struct {
	Const int64      `json:"const"`
	Terms []AddrTerm `json:"terms,omitempty"`
}

// Eval computes the expression under the given loop-variable binding.
func (e AddrExpr) Eval(vars map[string]int64) (int64, error) {
	v := e.Const
	for _, t := range e.Terms {
		val, ok := vars[t.Var]
		if !ok {
			return 0, fmt.Errorf("tog: unbound loop variable %q in address", t.Var)
		}
		v += t.Coeff * val
	}
	return v, nil
}

// Node is one TOG node. Fields are used according to Kind.
type Node struct {
	ID   int  `json:"id"`
	Kind Kind `json:"kind"`

	// LoopBegin: iterate Var from Init while < Limit, advancing by Step.
	Var   string `json:"var,omitempty"`
	Init  int64  `json:"init,omitempty"`
	Limit int64  `json:"limit,omitempty"`
	Step  int64  `json:"step,omitempty"`

	// Compute: deterministic latency in cycles, or a data-dependent latency
	// key (with {var} placeholders) into the TOG's auxiliary tile-latency
	// table. Unit selects the occupied compute unit. Kernel optionally names
	// the machine-code kernel implementing the node (for functional
	// execution of the TOG through the ISA simulator).
	Cycles int64  `json:"cycles,omitempty"`
	LatKey string `json:"latKey,omitempty"`
	Unit   Unit   `json:"unit,omitempty"`
	Kernel string `json:"kernel,omitempty"`

	// DMA: transfer Desc at Tensor base + Off; Tag links to waitDMA.
	Tensor string      `json:"tensor,omitempty"`
	Desc   npu.DMADesc `json:"desc,omitempty"`
	Off    AddrExpr    `json:"off,omitempty"`
	Tag    int         `json:"tag,omitempty"`

	// DMA scratchpad-side placement (offset into the context's spad slice).
	SpadOff int64 `json:"spadOff,omitempty"`

	// Collective markers: Parts is the ring size (participating shards),
	// Payload the per-rank payload in bytes, Tensor the local buffer, and
	// Peer the declared tensor aliasing the ring predecessor's buffer
	// (bound to the neighbouring package's memory at job placement).
	// Expanded records that the lowering emitted the primitive schedule
	// between this marker and its collEnd — the engine refuses unexpanded
	// collectives rather than silently skipping the communication.
	Parts    int    `json:"parts,omitempty"`
	Payload  int64  `json:"payload,omitempty"`
	Peer     string `json:"peer,omitempty"`
	Expanded bool   `json:"expanded,omitempty"`
}

// TOG is a complete tile operation graph for one compiled kernel or model
// region, plus the auxiliary data-dependent tile latency table (§3.8).
type TOG struct {
	Name    string   `json:"name"`
	Tensors []string `json:"tensors"` // named DRAM tensors (bases bound at dispatch)
	Nodes   []Node   `json:"nodes"`

	// TileLatencies holds offline-measured latencies for data-dependent
	// compute nodes, keyed by the node's LatKey after index substitution.
	TileLatencies map[string]int64 `json:"tileLatencies,omitempty"`

	// SpadBytes is the scratchpad footprint of one context executing this
	// TOG (two tile sets for double buffering, §3.3.1).
	SpadBytes int64 `json:"spadBytes,omitempty"`
}

// Validate checks structural well-formedness: matched loops, positive trip
// counts, DMA tensors declared, and waitDMA tags preceded by a DMA with the
// same tag in the same or an enclosing scope.
func (g *TOG) Validate() error {
	depth := 0
	vars := map[string]bool{}
	tensors := map[string]bool{}
	for _, t := range g.Tensors {
		tensors[t] = true
	}
	seenTags := map[int]bool{}
	inColl, collDepth := false, 0
	var loopStack []string
	for i, n := range g.Nodes {
		switch n.Kind {
		case LoopBegin:
			if n.Var == "" {
				return fmt.Errorf("tog: node %d: loopBegin without variable", i)
			}
			if vars[n.Var] {
				return fmt.Errorf("tog: node %d: loop variable %q shadows an active loop", i, n.Var)
			}
			if n.Step <= 0 || n.Limit < n.Init {
				return fmt.Errorf("tog: node %d: loop %q has invalid bounds [%d,%d) step %d", i, n.Var, n.Init, n.Limit, n.Step)
			}
			vars[n.Var] = true
			loopStack = append(loopStack, n.Var)
			depth++
		case LoopEnd:
			if depth == 0 {
				return fmt.Errorf("tog: node %d: loopEnd without loopBegin", i)
			}
			depth--
			delete(vars, loopStack[len(loopStack)-1])
			loopStack = loopStack[:len(loopStack)-1]
		case Compute:
			if n.Cycles <= 0 && n.LatKey == "" {
				return fmt.Errorf("tog: node %d: compute without latency", i)
			}
			if n.Unit == "" {
				return fmt.Errorf("tog: node %d: compute without unit", i)
			}
		case LoadDMA, StoreDMA:
			if !tensors[n.Tensor] {
				return fmt.Errorf("tog: node %d: DMA references undeclared tensor %q", i, n.Tensor)
			}
			if err := n.Desc.Validate(); err != nil {
				return fmt.Errorf("tog: node %d: %w", i, err)
			}
			for _, t := range n.Off.Terms {
				if !vars[t.Var] {
					return fmt.Errorf("tog: node %d: address uses inactive loop var %q", i, t.Var)
				}
			}
			seenTags[n.Tag] = true
		case WaitDMA:
			if !seenTags[n.Tag] {
				return fmt.Errorf("tog: node %d: waitDMA on tag %d with no preceding DMA", i, n.Tag)
			}
		case AllReduce, AllGather, ReduceScatter:
			if inColl {
				return fmt.Errorf("tog: node %d: nested collective", i)
			}
			if n.Parts < 2 {
				return fmt.Errorf("tog: node %d: collective over %d parts", i, n.Parts)
			}
			if n.Payload < 4 {
				return fmt.Errorf("tog: node %d: collective payload %d bytes", i, n.Payload)
			}
			if !tensors[n.Tensor] {
				return fmt.Errorf("tog: node %d: collective references undeclared tensor %q", i, n.Tensor)
			}
			if n.Peer != "" && !tensors[n.Peer] {
				return fmt.Errorf("tog: node %d: collective references undeclared peer tensor %q", i, n.Peer)
			}
			inColl, collDepth = true, depth
		case CollEnd:
			if !inColl {
				return fmt.Errorf("tog: node %d: collEnd without a collective begin", i)
			}
			if depth != collDepth {
				return fmt.Errorf("tog: node %d: collEnd crosses loop boundaries", i)
			}
			inColl = false
		default:
			return fmt.Errorf("tog: node %d: unknown kind %q", i, n.Kind)
		}
	}
	if depth != 0 {
		return fmt.Errorf("tog: %d unclosed loops", depth)
	}
	if inColl {
		return fmt.Errorf("tog: unclosed collective region")
	}
	return nil
}

// SubstituteKey replaces "{var}" placeholders in a latency key with the
// current loop variable values.
func SubstituteKey(key string, vars map[string]int64) string {
	if !strings.Contains(key, "{") {
		return key
	}
	out := key
	for v, val := range vars {
		out = strings.ReplaceAll(out, "{"+v+"}", strconv.FormatInt(val, 10))
	}
	return out
}

// Stats summarizes a TOG by fully accounting loop trip counts (without
// simulating): total compute cycles (sum of node latencies), DMA bytes, and
// node execution counts.
type Stats struct {
	ComputeNodes  int64
	LoadNodes     int64
	StoreNodes    int64
	WaitNodes     int64
	ComputeCycles int64
	LoadBytes     int64
	StoreBytes    int64
}

// CollectStats walks the TOG, expanding loops, and accumulates totals.
// Data-dependent compute nodes contribute their table latencies.
func (g *TOG) CollectStats() (Stats, error) {
	var s Stats
	vars := map[string]int64{}
	var walk func(from, to int) error
	walk = func(from, to int) error {
		for i := from; i < to; i++ {
			n := g.Nodes[i]
			switch n.Kind {
			case LoopBegin:
				end, err := g.matchEnd(i)
				if err != nil {
					return err
				}
				for v := n.Init; v < n.Limit; v += n.Step {
					vars[n.Var] = v
					if err := walk(i+1, end); err != nil {
						return err
					}
				}
				delete(vars, n.Var)
				i = end
			case LoopEnd:
				// handled by matchEnd skipping
			case Compute:
				s.ComputeNodes++
				lat := n.Cycles
				if n.LatKey != "" {
					key := SubstituteKey(n.LatKey, vars)
					l, ok := g.TileLatencies[key]
					if !ok {
						return fmt.Errorf("tog: missing tile latency for key %q", key)
					}
					lat = l
				}
				s.ComputeCycles += lat
			case LoadDMA:
				s.LoadNodes++
				s.LoadBytes += int64(n.Desc.TotalBytes())
			case StoreDMA:
				s.StoreNodes++
				s.StoreBytes += int64(n.Desc.TotalBytes())
			case WaitDMA:
				s.WaitNodes++
			case AllReduce, AllGather, ReduceScatter, CollEnd:
				// Zero-cycle markers; the enclosed primitives are counted
				// as ordinary nodes.
			}
		}
		return nil
	}
	if err := walk(0, len(g.Nodes)); err != nil {
		return Stats{}, err
	}
	return s, nil
}

// matchEnd returns the index of the loopEnd matching the loopBegin at i.
func (g *TOG) matchEnd(i int) (int, error) {
	depth := 0
	for j := i; j < len(g.Nodes); j++ {
		switch g.Nodes[j].Kind {
		case LoopBegin:
			depth++
		case LoopEnd:
			depth--
			if depth == 0 {
				return j, nil
			}
		}
	}
	return 0, fmt.Errorf("tog: unmatched loopBegin at node %d", i)
}

// MarshalJSON round-trip helpers -------------------------------------------

// Encode serializes the TOG to its JSON wire form.
func Encode(g *TOG) ([]byte, error) {
	return json.MarshalIndent(g, "", " ")
}

// Decode parses a TOG from JSON and validates it.
func Decode(data []byte) (*TOG, error) {
	var g TOG
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("tog: decode: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
