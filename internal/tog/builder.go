package tog

import (
	"fmt"

	"repro/internal/npu"
)

// Builder constructs TOGs incrementally; the compiler backend's TOG lowering
// pass uses it.
type Builder struct {
	g      TOG
	nextID int
}

// NewBuilder starts a TOG with the given name and declared tensors.
func NewBuilder(name string, tensors ...string) *Builder {
	return &Builder{g: TOG{
		Name:          name,
		Tensors:       append([]string(nil), tensors...),
		TileLatencies: map[string]int64{},
	}}
}

func (b *Builder) add(n Node) *Builder {
	n.ID = b.nextID
	b.nextID++
	b.g.Nodes = append(b.g.Nodes, n)
	return b
}

// DeclareTensor adds a tensor name (idempotent).
func (b *Builder) DeclareTensor(name string) *Builder {
	for _, t := range b.g.Tensors {
		if t == name {
			return b
		}
	}
	b.g.Tensors = append(b.g.Tensors, name)
	return b
}

// Loop opens a loop over v in [init, limit) with the given step.
func (b *Builder) Loop(v string, init, limit, step int64) *Builder {
	return b.add(Node{Kind: LoopBegin, Var: v, Init: init, Limit: limit, Step: step})
}

// EndLoop closes the innermost open loop.
func (b *Builder) EndLoop() *Builder {
	return b.add(Node{Kind: LoopEnd})
}

// Load emits an asynchronous loadDMA.
func (b *Builder) Load(tensor string, desc npu.DMADesc, off AddrExpr, tag int, spadOff int64) *Builder {
	return b.add(Node{Kind: LoadDMA, Tensor: tensor, Desc: desc, Off: off, Tag: tag, SpadOff: spadOff})
}

// Store emits an asynchronous storeDMA.
func (b *Builder) Store(tensor string, desc npu.DMADesc, off AddrExpr, tag int, spadOff int64) *Builder {
	return b.add(Node{Kind: StoreDMA, Tensor: tensor, Desc: desc, Off: off, Tag: tag, SpadOff: spadOff})
}

// Wait emits a waitDMA on the given tag.
func (b *Builder) Wait(tag int) *Builder {
	return b.add(Node{Kind: WaitDMA, Tag: tag})
}

// Compute emits a fixed-latency compute node.
func (b *Builder) Compute(unit Unit, cycles int64) *Builder {
	return b.add(Node{Kind: Compute, Unit: unit, Cycles: cycles})
}

// ComputeKernel emits a fixed-latency compute node that references the
// machine-code kernel implementing it (for functional TOG execution).
func (b *Builder) ComputeKernel(unit Unit, cycles int64, kernelID string) *Builder {
	return b.add(Node{Kind: Compute, Unit: unit, Cycles: cycles, Kernel: kernelID})
}

// ComputeKeyed emits a data-dependent compute node whose latency is looked
// up in the tile-latency table under key (after {var} substitution).
func (b *Builder) ComputeKeyed(unit Unit, key string) *Builder {
	return b.add(Node{Kind: Compute, Unit: unit, LatKey: key})
}

// BeginCollective emits a collective region-begin marker of the given
// collective kind (AllReduce, AllGather, or ReduceScatter) over `parts`
// ring participants, with the local buffer `tensor`, the ring
// predecessor's aliased buffer `peer`, and a per-rank payload in bytes.
// The caller emits the expanded primitive schedule next, then
// EndCollective. Both tensors are declared as a side effect.
func (b *Builder) BeginCollective(kind Kind, tensor, peer string, parts int, payload int64) *Builder {
	if !IsCollective(kind) {
		panic(fmt.Sprintf("tog: BeginCollective with non-collective kind %q", kind))
	}
	b.DeclareTensor(tensor)
	if peer != "" {
		b.DeclareTensor(peer)
	}
	return b.add(Node{Kind: kind, Tensor: tensor, Peer: peer, Parts: parts, Payload: payload, Expanded: true})
}

// EndCollective closes the open collective region.
func (b *Builder) EndCollective() *Builder {
	return b.add(Node{Kind: CollEnd})
}

// SetTileLatency records an offline-measured per-tile latency.
func (b *Builder) SetTileLatency(key string, cycles int64) *Builder {
	b.g.TileLatencies[key] = cycles
	return b
}

// SetSpadBytes records the context scratchpad footprint.
func (b *Builder) SetSpadBytes(n int64) *Builder {
	b.g.SpadBytes = n
	return b
}

// LastNodeID returns the id of the most recently added node (-1 before any
// node is added). Pass-structured compilers use it to remember compute nodes
// whose latencies are resolved after structure building (PatchComputeCycles).
func (b *Builder) LastNodeID() int {
	return b.nextID - 1
}

// PatchComputeCycles sets the fixed latency of the compute node with the
// given id. It exists for staged compilation pipelines that emit the TOG
// structure first and measure kernel latencies later: nodes are emitted with
// a zero placeholder and patched before Build (whose validation rejects
// unresolved compute nodes).
func (b *Builder) PatchComputeCycles(id int, cycles int64) error {
	if id < 0 || id >= len(b.g.Nodes) {
		return fmt.Errorf("tog: patch of unknown node %d", id)
	}
	if b.g.Nodes[id].Kind != Compute {
		return fmt.Errorf("tog: patch of non-compute node %d (%s)", id, b.g.Nodes[id].Kind)
	}
	b.g.Nodes[id].Cycles = cycles
	return nil
}

// Build validates and returns the TOG.
func (b *Builder) Build() (*TOG, error) {
	g := b.g
	if len(g.TileLatencies) == 0 {
		g.TileLatencies = nil
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
