package tog

import (
	"testing"
	"testing/quick"

	"repro/internal/npu"
	"repro/internal/tensor"
)

// simpleGEMMTOG builds a canonical tiled-GEMM-shaped TOG used across tests:
// for i in [0,ni): load tile; wait; compute; store.
func simpleGEMMTOG(t *testing.T, ni int64, cycles int64) *TOG {
	t.Helper()
	desc := npu.DMADesc{Rows: 4, Cols: 4}
	b := NewBuilder("gemm", "in", "out")
	b.Loop("i", 0, ni, 1)
	b.Load("in", desc, AddrExpr{Terms: []AddrTerm{{Var: "i", Coeff: 64}}}, 1, 0)
	b.Wait(1)
	b.Compute(UnitSA, cycles)
	b.Store("out", desc, AddrExpr{Terms: []AddrTerm{{Var: "i", Coeff: 64}}}, 2, 0)
	b.EndLoop()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderAndValidate(t *testing.T) {
	g := simpleGEMMTOG(t, 8, 100)
	if len(g.Nodes) != 6 {
		t.Fatalf("nodes = %d, want 6", len(g.Nodes))
	}
	if g.Nodes[0].Kind != LoopBegin || g.Nodes[5].Kind != LoopEnd {
		t.Fatal("loop structure wrong")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	desc := npu.DMADesc{Rows: 2, Cols: 2}
	cases := []struct {
		name string
		g    TOG
	}{
		{"unclosed loop", TOG{Nodes: []Node{{Kind: LoopBegin, Var: "i", Limit: 4, Step: 1}}}},
		{"loopEnd without begin", TOG{Nodes: []Node{{Kind: LoopEnd}}}},
		{"bad bounds", TOG{Nodes: []Node{{Kind: LoopBegin, Var: "i", Init: 4, Limit: 0, Step: 1}, {Kind: LoopEnd}}}},
		{"zero step", TOG{Nodes: []Node{{Kind: LoopBegin, Var: "i", Limit: 4}, {Kind: LoopEnd}}}},
		{"compute no latency", TOG{Nodes: []Node{{Kind: Compute, Unit: UnitSA}}}},
		{"compute no unit", TOG{Nodes: []Node{{Kind: Compute, Cycles: 5}}}},
		{"undeclared tensor", TOG{Nodes: []Node{{Kind: LoadDMA, Tensor: "x", Desc: desc}}}},
		{"wait without dma", TOG{Nodes: []Node{{Kind: WaitDMA, Tag: 3}}}},
		{"inactive loop var", TOG{
			Tensors: []string{"x"},
			Nodes:   []Node{{Kind: LoadDMA, Tensor: "x", Desc: desc, Off: AddrExpr{Terms: []AddrTerm{{Var: "i", Coeff: 4}}}}},
		}},
		{"shadowed loop var", TOG{Nodes: []Node{
			{Kind: LoopBegin, Var: "i", Limit: 2, Step: 1},
			{Kind: LoopBegin, Var: "i", Limit: 2, Step: 1},
			{Kind: LoopEnd}, {Kind: LoopEnd},
		}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestAddrExprEval(t *testing.T) {
	e := AddrExpr{Const: 100, Terms: []AddrTerm{{Var: "i", Coeff: 64}, {Var: "j", Coeff: 4}}}
	v, err := e.Eval(map[string]int64{"i": 2, "j": 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 100+128+12 {
		t.Fatalf("Eval = %d", v)
	}
	if _, err := e.Eval(map[string]int64{"i": 2}); err == nil {
		t.Fatal("unbound variable must error")
	}
}

func TestSubstituteKey(t *testing.T) {
	vars := map[string]int64{"i": 3, "j": 7}
	if got := SubstituteKey("tile_{i}_{j}", vars); got != "tile_3_7" {
		t.Fatalf("SubstituteKey = %q", got)
	}
	if got := SubstituteKey("fixed", vars); got != "fixed" {
		t.Fatalf("no-placeholder key changed: %q", got)
	}
}

func TestCollectStatsExpandsLoops(t *testing.T) {
	g := simpleGEMMTOG(t, 8, 100)
	s, err := g.CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeNodes != 8 || s.LoadNodes != 8 || s.StoreNodes != 8 || s.WaitNodes != 8 {
		t.Fatalf("node counts wrong: %+v", s)
	}
	if s.ComputeCycles != 800 {
		t.Fatalf("ComputeCycles = %d", s.ComputeCycles)
	}
	if s.LoadBytes != 8*64 || s.StoreBytes != 8*64 {
		t.Fatalf("bytes wrong: %+v", s)
	}
}

func TestCollectStatsNestedLoops(t *testing.T) {
	b := NewBuilder("nested", "x")
	b.Loop("i", 0, 3, 1)
	b.Loop("j", 0, 4, 1)
	b.Compute(UnitVector, 10)
	b.EndLoop()
	b.EndLoop()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeNodes != 12 || s.ComputeCycles != 120 {
		t.Fatalf("nested stats wrong: %+v", s)
	}
}

func TestDataDependentLatencies(t *testing.T) {
	b := NewBuilder("sparse", "a")
	b.Loop("i", 0, 3, 1)
	b.ComputeKeyed(UnitSparse, "tile_{i}")
	b.EndLoop()
	b.SetTileLatency("tile_0", 10)
	b.SetTileLatency("tile_1", 20)
	b.SetTileLatency("tile_2", 30)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.ComputeCycles != 60 {
		t.Fatalf("data-dependent cycles = %d, want 60", s.ComputeCycles)
	}
	// A missing key must surface as an error.
	delete(g.TileLatencies, "tile_2")
	if _, err := g.CollectStats(); err == nil {
		t.Fatal("missing tile latency must error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := simpleGEMMTOG(t, 4, 42)
	g.TileLatencies = map[string]int64{"k": 9}
	g.SpadBytes = 1024
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || len(back.Nodes) != len(g.Nodes) {
		t.Fatal("round trip lost structure")
	}
	for i := range g.Nodes {
		a, b := g.Nodes[i], back.Nodes[i]
		if a.Kind != b.Kind || a.Cycles != b.Cycles || a.Tag != b.Tag || a.Tensor != b.Tensor {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if back.TileLatencies["k"] != 9 || back.SpadBytes != 1024 {
		t.Fatal("aux data lost")
	}
	s1, _ := g.CollectStats()
	s2, _ := back.CollectStats()
	if s1 != s2 {
		t.Fatal("stats differ after round trip")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := Decode([]byte(`{"name":"x","nodes":[{"id":0,"kind":"loopEnd"}]}`)); err == nil {
		t.Fatal("invalid graph must error")
	}
}

func TestStatsLinearInTripCount(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := int64(1 + r.Intn(20))
		cyc := int64(1 + r.Intn(1000))
		g := simpleGEMMTOG(&testing.T{}, n, cyc)
		s, err := g.CollectStats()
		if err != nil {
			return false
		}
		return s.ComputeCycles == n*cyc && s.LoadBytes == n*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareTensorIdempotent(t *testing.T) {
	b := NewBuilder("x", "a")
	b.DeclareTensor("a").DeclareTensor("b").DeclareTensor("b")
	b.Compute(UnitSA, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tensors) != 2 {
		t.Fatalf("tensors = %v", g.Tensors)
	}
}
