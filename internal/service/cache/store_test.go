package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemoryRoundTrip(t *testing.T) {
	s := NewMemory()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Get("k")
	if !ok || string(data) != "payload" {
		t.Fatalf("Get = %q, %v", data, ok)
	}
	// The returned slice is a copy: mutating it must not poison the store.
	data[0] = 'X'
	again, _ := s.Get("k")
	if string(again) != "payload" {
		t.Fatalf("store mutated through returned slice: %q", again)
	}
	hits, misses := s.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalHash("some", "content")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	want := []byte("artifact bytes\nwith newlines\x00and zeros")
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, want)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalHash("persisted")
	if err := s1.Put(key, []byte("value")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "value" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

// entryFile locates the single entry file written for key.
func entryFile(t *testing.T, dir, key string) string {
	t.Helper()
	p := filepath.Join(dir, diskVersion, key[:2], key)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file missing: %v", err)
	}
	return p
}

func TestDiskCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalHash("corrupt-me")
	if err := s.Put(key, []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	p := entryFile(t, dir, key)

	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: checksum mismatch.
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}

	// Truncated file: no complete envelope.
	if err := os.WriteFile(p, []byte(diskMagic+"\nabc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("truncated entry served as a hit")
	}

	// A fresh Put repairs the entry.
	if err := s.Put(key, []byte("repaired")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "repaired" {
		t.Fatalf("repaired Get = %q, %v", got, ok)
	}
}

func TestDiskWrongMagicIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalHash("wrong-magic")
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	p := entryFile(t, dir, key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	stale := []byte("ptsimc0\n" + strings.SplitN(string(raw), "\n", 2)[1])
	if err := os.WriteFile(p, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("wrong-magic entry served as a hit")
	}
}

func TestDiskRejectsTraversalKeys(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "..", "a/b", `a\b`, "x:y"} {
		if err := s.Put(key, []byte("v")); err == nil {
			t.Errorf("Put(%q) accepted an unsafe key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) reported a hit", key)
		}
	}
}

func TestLayeredBackfill(t *testing.T) {
	fast, slow := NewMemory(), NewMemory()
	s := NewLayered(fast, slow)

	// Seed only the slow tier (a disk entry from a previous process).
	if err := slow.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("layered Get = %q, %v", got, ok)
	}
	// The hit must have backfilled the fast tier.
	if _, ok := fast.Get("k"); !ok {
		t.Fatal("slow-tier hit did not backfill the fast tier")
	}

	// Put writes through to both tiers.
	if err := s.Put("w", []byte("both")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fast.Get("w"); !ok {
		t.Fatal("Put missed the fast tier")
	}
	if _, ok := slow.Get("w"); !ok {
		t.Fatal("Put missed the slow tier")
	}

	if _, ok := s.Get("absent"); ok {
		t.Fatal("miss reported as hit")
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestLatencyCodecRoundTrip(t *testing.T) {
	in := map[string]int64{"gemm_m8_k8_n8": 123, "elt_add_r1_c64": 7}
	data, err := EncodeLatencies(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeLatencies(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out["gemm_m8_k8_n8"] != 123 || out["elt_add_r1_c64"] != 7 {
		t.Fatalf("round trip = %v", out)
	}
}

func TestLatencyCodecRejectsWrongSchema(t *testing.T) {
	if _, err := DecodeLatencies([]byte(`{"schema":99,"latencies":{}}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := DecodeLatencies([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLatencyKeyDistinguishesCores(t *testing.T) {
	type core struct{ SARows, SACols int }
	a := LatencyKey(core{8, 8})
	b := LatencyKey(core{16, 16})
	if a == b {
		t.Fatal("different cores share a latency key")
	}
	if a != LatencyKey(core{8, 8}) {
		t.Fatal("latency key not stable")
	}
	if !strings.HasPrefix(a, "lat-") {
		t.Fatalf("latency key %q lacks prefix", a)
	}
}
