// Package cache provides the content-addressed artifact store underneath
// the simulation service's compile cache: canonical content hashing, a
// Store interface with in-memory and versioned on-disk implementations, and
// the codec for the persisted kernel-latency tables (the paper's offline
// TOG/tile-latency cache, §3.10 — explicitly a reusable artifact that
// should survive process restarts).
//
// The package is a leaf: cmds and core can hash configurations and attach
// stores without importing the service itself.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"reflect"
	"sort"
)

// CanonicalHash computes a content hash of the given values with a
// canonical, order-independent encoding: struct fields are walked in
// sorted name order (so two configs assembled differently — or structs
// whose field declarations move — hash identically when their contents
// are equal) and map entries in sorted key order. Scalars append
// "name=value;" pairs. The hash keys the service's compile cache and the
// on-disk artifact store, so it must be stable across processes: only data
// reachable from the values contributes, never addresses or iteration
// order.
func CanonicalHash(vs ...any) string {
	h := sha256.New()
	for _, v := range vs {
		writeCanonical(h, "", reflect.ValueOf(v))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LatencyKey is the store key of the kernel-latency table measured on one
// core configuration (pass npu.CoreConfig). Latencies depend only on the
// core, not the full machine, so every model compiled for the same core
// shares one table.
func LatencyKey(core any) string {
	return LatencyKeyForHash(CanonicalHash(core))
}

// LatencyKeyForHash is LatencyKey for an already-computed core-config hash.
func LatencyKeyForHash(coreHash string) string {
	return "lat-" + coreHash
}

func writeCanonical(h hash.Hash, name string, v reflect.Value) {
	if !v.IsValid() {
		fmt.Fprintf(h, "%s=<nil>;", name)
		return
	}
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			fmt.Fprintf(h, "%s=<nil>;", name)
			return
		}
		writeCanonical(h, name, v.Elem())
	case reflect.Struct:
		t := v.Type()
		idx := make([]int, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				idx = append(idx, i)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return t.Field(idx[a]).Name < t.Field(idx[b]).Name })
		fmt.Fprintf(h, "%s{", name)
		for _, i := range idx {
			writeCanonical(h, t.Field(i).Name, v.Field(i))
		}
		fmt.Fprintf(h, "}")
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		byKey := map[string]reflect.Value{}
		iter := v.MapRange()
		for iter.Next() {
			k := fmt.Sprintf("%v", iter.Key().Interface())
			keys = append(keys, k)
			byKey[k] = iter.Value()
		}
		sort.Strings(keys)
		fmt.Fprintf(h, "%smap{", name)
		for _, k := range keys {
			writeCanonical(h, k, byKey[k])
		}
		fmt.Fprintf(h, "}")
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(h, "%s[", name)
		for i := 0; i < v.Len(); i++ {
			writeCanonical(h, fmt.Sprintf("%d", i), v.Index(i))
		}
		fmt.Fprintf(h, "]")
	default:
		fmt.Fprintf(h, "%s=%v;", name, v.Interface())
	}
}
