package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// diskVersion names the on-disk layout; entries live under <dir>/<version>/
// so an incompatible future layout simply starts a fresh subtree and old
// entries become unreachable rather than misread.
const diskVersion = "v1"

// diskMagic is the first line of every entry file. Bumping it invalidates
// all existing entries (treated as misses) without touching the directory
// layout — the envelope-schema analogue of diskVersion.
const diskMagic = "ptsimc1"

// Disk is the persistent Store tier: one file per key under a versioned
// directory, each wrapped in a checksummed envelope
//
//	ptsimc1\n<sha256 hex of payload>\n<payload>
//
// so torn writes, manual edits, and entries from incompatible versions are
// detected on read and treated as misses. Writes go to a temp file in the
// same directory and rename into place, which is atomic on POSIX — a
// crashed writer can leave a stray .tmp file but never a half-visible
// entry.
type Disk struct {
	root string // <dir>/<diskVersion>

	hits, misses atomic.Int64
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	root := filepath.Join(dir, diskVersion)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating %s: %w", root, err)
	}
	return &Disk{root: root}, nil
}

// path maps a key to its entry file, sharding by the first two key bytes to
// keep directories small. Keys are content hashes; anything that could
// escape the root is rejected by validKey.
func (s *Disk) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.root, shard, key)
}

func validKey(key string) bool {
	if key == "" || len(key) > 256 {
		return false
	}
	return !strings.ContainsAny(key, "/\\:\x00") && key != "." && key != ".."
}

// Get implements Store: any unreadable, truncated, corrupt, or
// wrong-version entry is a miss.
func (s *Disk) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := openEnvelope(raw)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put implements Store.
func (s *Disk) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cache: invalid store key %q", key)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("cache: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), key+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: creating temp entry: %w", err)
	}
	_, werr := tmp.Write(sealEnvelope(data))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("cache: writing entry: %w", werr)
		}
		return fmt.Errorf("cache: closing entry: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: publishing entry: %w", err)
	}
	return nil
}

// Stats implements Store.
func (s *Disk) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// sealEnvelope wraps a payload in the magic + checksum header.
func sealEnvelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(diskMagic) + 1 + hex.EncodedLen(len(sum)) + 1 + len(payload))
	b.WriteString(diskMagic)
	b.WriteByte('\n')
	b.WriteString(hex.EncodeToString(sum[:]))
	b.WriteByte('\n')
	b.Write(payload)
	return b.Bytes()
}

// openEnvelope verifies the header and checksum, returning the payload.
func openEnvelope(raw []byte) ([]byte, bool) {
	rest, ok := strings.CutPrefix(string(raw), diskMagic+"\n")
	if !ok {
		return nil, false
	}
	sumHex, payload, ok := strings.Cut(rest, "\n")
	if !ok {
		return nil, false
	}
	want, err := hex.DecodeString(sumHex)
	if err != nil || len(want) != sha256.Size {
		return nil, false
	}
	got := sha256.Sum256([]byte(payload))
	if !bytes.Equal(got[:], want) {
		return nil, false
	}
	return []byte(payload), true
}
