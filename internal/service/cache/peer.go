package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// PeerMaxEntryBytes caps one peer-transferred artifact. Latency tables are
// a few KB; anything larger than this is either corruption or a future
// artifact class that should negotiate its own limit.
const PeerMaxEntryBytes = 16 << 20

// DefaultPeerTimeout bounds every peer round trip. A slow peer must read
// as a clean miss on the compile path, never as a stall: the worst case a
// dead-but-routable peer can add to a compilation is this timeout once.
const DefaultPeerTimeout = 2 * time.Second

// Peer is the remote Store tier of a simulation fleet: Get fetches an
// artifact from the cluster member that owns the key's hash, Put pushes a
// freshly built artifact to that owner so every other member can backfill
// from it. It speaks the daemon's /cache/{key} HTTP protocol, with every
// payload wrapped in the same checksummed envelope as the disk tier — a
// corrupt, truncated, or malicious peer response fails verification and
// degrades to a miss.
//
// Peer implements Store and never returns an error from Get: unreachable,
// slow, and corrupt peers all count as misses, so the compile path's only
// possible degradation is recomputing what the peer would have supplied.
type Peer struct {
	// resolve maps a key to candidate peer base URLs in preference order
	// (typically the key's consistent-hash owner first, excluding the
	// caller itself). An empty slice means this node owns the key locally.
	resolve func(key string) []string
	client  *http.Client
	// maxCandidates bounds how many peers one Get tries before giving up.
	maxCandidates int

	hits, misses atomic.Int64
	puts         atomic.Int64
	errs         atomic.Int64
}

// NewPeer returns a peer tier that asks the given candidates for every
// key. timeout <= 0 means DefaultPeerTimeout.
func NewPeer(resolve func(key string) []string, timeout time.Duration) *Peer {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Peer{
		resolve:       resolve,
		client:        &http.Client{Timeout: timeout},
		maxCandidates: 2,
	}
}

// Get implements Store: try each candidate owner in order, verify the
// envelope, and treat every failure mode as a miss.
func (p *Peer) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		p.misses.Add(1)
		return nil, false
	}
	cands := p.resolve(key)
	if len(cands) > p.maxCandidates {
		cands = cands[:p.maxCandidates]
	}
	for _, base := range cands {
		resp, err := p.client.Get(base + "/cache/" + key)
		if err != nil {
			p.errs.Add(1)
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, PeerMaxEntryBytes+1))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(raw) > PeerMaxEntryBytes {
			if resp.StatusCode != http.StatusNotFound {
				p.errs.Add(1)
			}
			continue
		}
		payload, ok := openEnvelope(raw)
		if !ok {
			// Corrupt response: the checksum envelope failed. Miss, and the
			// next candidate (if any) gets a chance.
			p.errs.Add(1)
			continue
		}
		p.hits.Add(1)
		return payload, true
	}
	p.misses.Add(1)
	return nil, false
}

// Put implements Store: push the sealed artifact to the key's owner,
// best-effort. A failed push only costs a future recompute on some other
// member, never correctness, so errors are reported but callers may ignore
// them.
func (p *Peer) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cache: invalid peer key %q", key)
	}
	cands := p.resolve(key)
	if len(cands) == 0 {
		return nil // this node owns the key; the local tier already has it
	}
	req, err := http.NewRequest(http.MethodPut, cands[0]+"/cache/"+key, bytes.NewReader(sealEnvelope(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		p.errs.Add(1)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.errs.Add(1)
		return fmt.Errorf("cache: peer %s rejected put: %s", cands[0], resp.Status)
	}
	p.puts.Add(1)
	return nil
}

// Stats implements Store.
func (p *Peer) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// NetStats reports pushes completed and transport-or-verification errors
// so far (both absent from the Store interface's hit/miss view).
func (p *Peer) NetStats() (puts, errs int64) {
	return p.puts.Load(), p.errs.Load()
}

// SealEnvelope wraps payload in the checksummed wire envelope the
// /cache/{key} protocol carries (the same format the disk tier persists).
func SealEnvelope(payload []byte) []byte { return sealEnvelope(payload) }

// OpenEnvelope verifies a wire envelope and returns its payload; ok=false
// on any corruption or version mismatch.
func OpenEnvelope(raw []byte) ([]byte, bool) { return openEnvelope(raw) }
