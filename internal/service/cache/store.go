package cache

import (
	"sync"
	"sync/atomic"
)

// Store is a content-addressed blob store: keys are canonical content
// hashes (CanonicalHash / LatencyKey), values are opaque artifact bytes.
// Implementations must be safe for concurrent use and must treat any entry
// they cannot fully verify (corrupt, truncated, written by an incompatible
// schema version) as absent — callers always fall back to recomputing.
type Store interface {
	// Get returns the artifact stored under key, or ok=false on any kind
	// of miss (absent, corrupt, stale version).
	Get(key string) ([]byte, bool)
	// Put stores the artifact under key, overwriting a previous value.
	Put(key string, data []byte) error
	// Stats reports Get hits and misses so far.
	Stats() (hits, misses int64)
}

// Memory is the in-process Store tier: a plain mutex-guarded map.
type Memory struct {
	mu sync.Mutex
	m  map[string][]byte

	hits, misses atomic.Int64
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{m: map[string][]byte{}}
}

// Get implements Store.
func (s *Memory) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), data...), true
}

// Put implements Store.
func (s *Memory) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Stats implements Store.
func (s *Memory) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Layered stacks a fast tier over a slow one (memory over disk): Get tries
// fast first and backfills it on a slow-tier hit; Put writes through to
// both. Its Stats count Layered's own outcomes — a hit in either tier is
// one hit — while the per-tier stores keep their own counts.
type Layered struct {
	fast, slow Store

	hits, misses atomic.Int64
}

// NewLayered returns the two-tier store. Both tiers must be non-nil.
func NewLayered(fast, slow Store) *Layered {
	return &Layered{fast: fast, slow: slow}
}

// Get implements Store.
func (s *Layered) Get(key string) ([]byte, bool) {
	if data, ok := s.fast.Get(key); ok {
		s.hits.Add(1)
		return data, true
	}
	data, ok := s.slow.Get(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	// Backfill so the next lookup stays in the fast tier. A backfill
	// failure only costs future speed, never correctness.
	_ = s.fast.Put(key, data)
	return data, true
}

// Put implements Store.
func (s *Layered) Put(key string, data []byte) error {
	if err := s.fast.Put(key, data); err != nil {
		return err
	}
	return s.slow.Put(key, data)
}

// Stats implements Store.
func (s *Layered) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}
