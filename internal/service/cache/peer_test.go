package cache

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// peerHandler serves a Memory store over the /cache/{key} wire protocol —
// the same shape the daemon exposes, minimal enough to corrupt at will.
func peerHandler(st *Memory) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := st.Get(r.PathValue("key"))
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		_, _ = w.Write(sealEnvelope(data))
	})
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		payload, ok := openEnvelope(raw)
		if !ok {
			http.Error(w, "corrupt", http.StatusBadRequest)
			return
		}
		_ = st.Put(r.PathValue("key"), payload)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

const peerKey = "deadbeef00112233"

func TestPeerGetHit(t *testing.T) {
	st := NewMemory()
	_ = st.Put(peerKey, []byte("artifact-bytes"))
	ts := httptest.NewServer(peerHandler(st))
	defer ts.Close()

	p := NewPeer(func(string) []string { return []string{ts.URL} }, 0)
	data, ok := p.Get(peerKey)
	if !ok || string(data) != "artifact-bytes" {
		t.Fatalf("Get = %q, %v; want artifact-bytes, true", data, ok)
	}
	if hits, misses := p.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("stats %d/%d, want 1/0", hits, misses)
	}
}

func TestPeerGetMissOnAbsent(t *testing.T) {
	ts := httptest.NewServer(peerHandler(NewMemory()))
	defer ts.Close()
	p := NewPeer(func(string) []string { return []string{ts.URL} }, 0)
	if _, ok := p.Get(peerKey); ok {
		t.Fatal("absent key reported as hit")
	}
	if _, errs := p.NetStats(); errs != 0 {
		t.Fatalf("a 404 is a clean miss, not an error (errs=%d)", errs)
	}
}

// An unreachable peer (connection refused) is a clean miss, never an error
// surfaced to the compile path.
func TestPeerGetMissOnUnreachable(t *testing.T) {
	ts := httptest.NewServer(peerHandler(NewMemory()))
	url := ts.URL
	ts.Close() // port now refuses connections
	p := NewPeer(func(string) []string { return []string{url} }, 0)
	if _, ok := p.Get(peerKey); ok {
		t.Fatal("unreachable peer reported a hit")
	}
	if hits, misses := p.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats %d/%d, want 0/1", hits, misses)
	}
	if _, errs := p.NetStats(); errs == 0 {
		t.Fatal("transport failure not counted")
	}
}

// A peer slower than the client timeout degrades to a bounded-latency miss.
func TestPeerGetMissOnSlowPeer(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); ts.Close() }()

	p := NewPeer(func(string) []string { return []string{ts.URL} }, 50*time.Millisecond)
	start := time.Now()
	_, ok := p.Get(peerKey)
	if ok {
		t.Fatal("slow peer reported a hit")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("slow peer stalled the caller %v", d)
	}
}

// A corrupt response body (checksum mismatch) fails envelope verification
// and degrades to a miss.
func TestPeerGetMissOnCorruptBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env := sealEnvelope([]byte("artifact-bytes"))
		env[len(env)-1] ^= 0xff // flip a payload bit after sealing
		_, _ = w.Write(env)
	}))
	defer ts.Close()
	p := NewPeer(func(string) []string { return []string{ts.URL} }, 0)
	if _, ok := p.Get(peerKey); ok {
		t.Fatal("corrupt envelope accepted")
	}
	if _, errs := p.NetStats(); errs != 1 {
		t.Fatal("corruption not counted as an error")
	}
}

// Get falls through the candidate list: a dead first owner hides nothing
// when the second has the artifact.
func TestPeerGetSecondCandidate(t *testing.T) {
	st := NewMemory()
	_ = st.Put(peerKey, []byte("artifact-bytes"))
	good := httptest.NewServer(peerHandler(st))
	defer good.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	p := NewPeer(func(string) []string { return []string{deadURL, good.URL} }, 0)
	data, ok := p.Get(peerKey)
	if !ok || string(data) != "artifact-bytes" {
		t.Fatalf("fallback Get = %q, %v", data, ok)
	}
}

// Put writes through to the owner; a following Get from another node sees
// the artifact (the backfill path a fleet member uses after compiling).
func TestPeerPutWriteThrough(t *testing.T) {
	st := NewMemory()
	ts := httptest.NewServer(peerHandler(st))
	defer ts.Close()

	writer := NewPeer(func(string) []string { return []string{ts.URL} }, 0)
	if err := writer.Put(peerKey, []byte("compiled")); err != nil {
		t.Fatal(err)
	}
	if puts, errs := writer.NetStats(); puts != 1 || errs != 0 {
		t.Fatalf("net stats %d/%d, want 1 put, 0 errs", puts, errs)
	}
	reader := NewPeer(func(string) []string { return []string{ts.URL} }, 0)
	data, ok := reader.Get(peerKey)
	if !ok || string(data) != "compiled" {
		t.Fatalf("read-back = %q, %v", data, ok)
	}
}

// Put with no candidates (this node owns the key) is a no-op success, and
// Put against a dead owner reports the error without panicking — the
// compile path ignores it.
func TestPeerPutEdgeCases(t *testing.T) {
	own := NewPeer(func(string) []string { return nil }, 0)
	if err := own.Put(peerKey, []byte("x")); err != nil {
		t.Fatalf("self-owned put errored: %v", err)
	}
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	dead := NewPeer(func(string) []string { return []string{url} }, 0)
	if err := dead.Put(peerKey, []byte("x")); err == nil {
		t.Fatal("put to dead owner reported success")
	}
}

// Invalid keys never touch the network.
func TestPeerRejectsInvalidKeys(t *testing.T) {
	called := false
	p := NewPeer(func(string) []string { called = true; return nil }, 0)
	if _, ok := p.Get("../../etc/passwd"); ok {
		t.Fatal("path-traversal key hit")
	}
	if err := p.Put("nested/key", []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "invalid") {
		t.Fatalf("invalid key put: %v", err)
	}
	if called {
		t.Fatal("resolver consulted for invalid key")
	}
}

// The exported envelope helpers round-trip and reject tampering — the
// integrity contract the HTTP handlers rely on.
func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("some artifact")
	env := SealEnvelope(payload)
	got, ok := OpenEnvelope(env)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	env[len(env)-1] ^= 1
	if _, ok := OpenEnvelope(env); ok {
		t.Fatal("tampered envelope verified")
	}
	if _, ok := OpenEnvelope([]byte("garbage")); ok {
		t.Fatal("garbage verified")
	}
}
