package cache

import (
	"encoding/json"
	"fmt"
)

// latSchema versions the latency-table payload independently of the disk
// envelope: bumping it makes old tables decode as errors (callers treat
// that as a miss and re-measure) even though their checksums still verify.
const latSchema = 1

type latEnvelope struct {
	Schema    int              `json:"schema"`
	Latencies map[string]int64 `json:"latencies"`
}

// EncodeLatencies serializes a kernel-latency table for the store.
func EncodeLatencies(m map[string]int64) ([]byte, error) {
	return json.Marshal(latEnvelope{Schema: latSchema, Latencies: m})
}

// DecodeLatencies parses a stored latency table, rejecting payloads written
// under a different schema version.
func DecodeLatencies(data []byte) (map[string]int64, error) {
	var env latEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("cache: latency table: %w", err)
	}
	if env.Schema != latSchema {
		return nil, fmt.Errorf("cache: latency table schema %d, want %d", env.Schema, latSchema)
	}
	if env.Latencies == nil {
		env.Latencies = map[string]int64{}
	}
	return env.Latencies, nil
}
