package service

import (
	"bufio"
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs/report"
)

// expoFamily is one metric family parsed from the text exposition.
type expoFamily struct {
	name    string
	help    string
	typ     string // counter | gauge | histogram
	samples []expoSample
}

type expoSample struct {
	name   string // family name plus any _bucket/_sum/_count suffix
	labels map[string]string
	value  float64
}

// parseExposition parses the complete Prometheus text exposition format
// (version 0.0.4): every line must be blank, a # HELP, a # TYPE, or a
// sample, and every sample must follow its family's TYPE declaration. It is
// deliberately strict — any line the parser does not understand fails the
// test, so format drift cannot hide.
func parseExposition(t *testing.T, r io.Reader) map[string]*expoFamily {
	t.Helper()
	fams := map[string]*expoFamily{}
	var cur *expoFamily
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %q", lineNo, name)
			}
			cur = &expoFamily{name: name, help: help}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE %q does not follow its HELP", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
				cur.typ = typ
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, typ)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unrecognized comment %q", lineNo, line)
		default:
			s := parseSampleLine(t, lineNo, line)
			fam := familyOf(s.name)
			f, ok := fams[fam]
			if !ok || f.typ == "" {
				t.Fatalf("line %d: sample %q before its # TYPE declaration", lineNo, s.name)
			}
			f.samples = append(f.samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// parseSampleLine parses `name{label="v",...} value`.
func parseSampleLine(t *testing.T, lineNo int, line string) expoSample {
	t.Helper()
	s := expoSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value in sample %q", lineNo, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", lineNo, pair)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parseExpoValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

func parseExpoValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips the histogram sample suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestMetricsExpositionParsesCompletely fetches GET /metrics over HTTP after
// real jobs ran and structurally parses every line of the body: families
// must be declared (HELP+TYPE) before their samples, histogram buckets must
// be cumulative with a +Inf bucket equal to _count, and counter/gauge
// families carry exactly one unlabeled sample.
func TestMetricsExpositionParsesCompletely(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	svc.Start()
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	const n = 4
	for i := 0; i < n; i++ {
		j, err := svc.Submit(JobSpec{Model: "gemm", N: 32 + 16*i, NPU: "small"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(j.ID); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	fams := parseExposition(t, resp.Body)
	if len(fams) == 0 {
		t.Fatal("exposition declared no metric families")
	}

	for name, f := range fams {
		if f.typ == "" {
			t.Errorf("family %q has HELP but no TYPE", name)
			continue
		}
		if f.help == "" {
			t.Errorf("family %q has an empty HELP", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %q declared but has no samples", name)
			continue
		}
		switch f.typ {
		case "counter", "gauge":
			if labeled(f) {
				// A labeled family (e.g. ptsimd_energy_joules_total{unit=...})
				// carries one sample per label value, all on the same key.
				for _, s := range f.samples {
					if s.name != name || len(s.labels) != 1 {
						t.Errorf("%s family %q has a malformed labeled sample: %+v", f.typ, name, s)
					}
				}
			} else if len(f.samples) != 1 || f.samples[0].name != name || len(f.samples[0].labels) != 0 {
				t.Errorf("%s family %q must carry exactly one unlabeled sample, got %+v", f.typ, name, f.samples)
			}
			if f.typ == "counter" {
				for _, s := range f.samples {
					if s.value < 0 {
						t.Errorf("counter %q is negative: %g", name, s.value)
					}
				}
			}
		case "histogram":
			checkHistogram(t, f)
		}
	}

	// The §3.8-adjacent service invariant: the HTTP surface and the internal
	// snapshot render identical bytes.
	var buf strings.Builder
	if _, err := svc.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	body := fetchBody(t, srv, "/metrics")
	if body != buf.String() {
		t.Fatalf("HTTP body differs from Metrics().WriteTo output")
	}

	// The jobs actually ran, so the core counters cannot all be zero.
	if v := fams["ptsimd_jobs_done_total"].samples[0].value; v != n {
		t.Fatalf("ptsimd_jobs_done_total = %g, want %d", v, n)
	}
	if v := fams["ptsimd_job_duration_seconds"].sampleValue(t, "ptsimd_job_duration_seconds_count"); v != n {
		t.Fatalf("job duration histogram count = %g, want %d", v, n)
	}

	// The small config carries the default energy table, so finished jobs
	// must have accumulated per-unit energy: one sample per unit class in
	// the fixed report.EnergyUnits order, with nonzero total.
	ef := fams["ptsimd_energy_joules_total"]
	if ef == nil {
		t.Fatal("ptsimd_energy_joules_total missing after energy-priced jobs")
	}
	if len(ef.samples) != len(report.EnergyUnits) {
		t.Fatalf("energy family has %d samples, want %d", len(ef.samples), len(report.EnergyUnits))
	}
	var totalJ float64
	for i, s := range ef.samples {
		if s.labels["unit"] != report.EnergyUnits[i] {
			t.Fatalf("energy sample %d labeled %q, want %q", i, s.labels["unit"], report.EnergyUnits[i])
		}
		totalJ += s.value
	}
	if totalJ <= 0 {
		t.Fatalf("energy counters sum to %g after %d jobs", totalJ, n)
	}
}

// labeled reports whether every sample of the family carries labels (a
// counter/gauge vector rather than a scalar).
func labeled(f *expoFamily) bool {
	for _, s := range f.samples {
		if len(s.labels) == 0 {
			return false
		}
	}
	return len(f.samples) > 0
}

// checkHistogram validates bucket structure: le labels parse, buckets are
// cumulative (sorted by le, non-decreasing), the +Inf bucket exists and
// equals _count, and _sum/_count are present.
func checkHistogram(t *testing.T, f *expoFamily) {
	t.Helper()
	type bkt struct {
		le    float64
		count float64
	}
	var buckets []bkt
	var sum, count *float64
	for i := range f.samples {
		s := f.samples[i]
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Errorf("histogram %q bucket missing le label", f.name)
				return
			}
			v, err := parseExpoValue(le)
			if err != nil {
				t.Errorf("histogram %q: bad le %q", f.name, le)
				return
			}
			buckets = append(buckets, bkt{le: v, count: s.value})
		case f.name + "_sum":
			sum = &s.value
		case f.name + "_count":
			count = &s.value
		default:
			t.Errorf("histogram %q: unexpected sample %q", f.name, s.name)
		}
	}
	if sum == nil || count == nil {
		t.Errorf("histogram %q missing _sum or _count", f.name)
		return
	}
	if len(buckets) == 0 {
		t.Errorf("histogram %q has no buckets", f.name)
		return
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Errorf("histogram %q buckets not cumulative: le=%g has %g < %g",
				f.name, buckets[i].le, buckets[i].count, buckets[i-1].count)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		t.Errorf("histogram %q missing +Inf bucket", f.name)
	}
	if last.count != *count {
		t.Errorf("histogram %q: +Inf bucket %g != count %g", f.name, last.count, *count)
	}
}

// sampleValue returns the value of the family's sample with the given name.
func (f *expoFamily) sampleValue(t *testing.T, name string) float64 {
	t.Helper()
	for _, s := range f.samples {
		if s.name == name {
			return s.value
		}
	}
	t.Fatalf("family %q has no sample %q", f.name, name)
	return 0
}

func fetchBody(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
