package service

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/metrics/promtest"
	"repro/internal/obs/report"
)

// TestMetricsExpositionParsesCompletely fetches GET /metrics over HTTP after
// real jobs ran and structurally parses every line of the body: families
// must be declared (HELP+TYPE) before their samples, histogram buckets must
// be cumulative with a +Inf bucket equal to _count, and counter/gauge
// families carry exactly one unlabeled sample (or a uniform label key).
func TestMetricsExpositionParsesCompletely(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	svc.Start()
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	const n = 4
	for i := 0; i < n; i++ {
		j, err := svc.Submit(JobSpec{Model: "gemm", N: 32 + 16*i, NPU: "small"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(j.ID); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	fams := promtest.Parse(t, resp.Body)
	if len(fams) == 0 {
		t.Fatal("exposition declared no metric families")
	}
	promtest.CheckFamilies(t, fams)

	// The §3.8-adjacent service invariant: the HTTP surface and the internal
	// snapshot render identical bytes.
	var buf strings.Builder
	if _, err := svc.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	body := fetchBody(t, srv, "/metrics")
	if body != buf.String() {
		t.Fatalf("HTTP body differs from Metrics().WriteTo output")
	}

	// The jobs actually ran, so the core counters cannot all be zero.
	if v := fams["ptsimd_jobs_done_total"].Samples[0].Value; v != n {
		t.Fatalf("ptsimd_jobs_done_total = %g, want %d", v, n)
	}
	if v := fams["ptsimd_job_duration_seconds"].SampleValue(t, "ptsimd_job_duration_seconds_count"); v != n {
		t.Fatalf("job duration histogram count = %g, want %d", v, n)
	}

	// The small config carries the default energy table, so finished jobs
	// must have accumulated per-unit energy: one sample per unit class in
	// the fixed report.EnergyUnits order, with nonzero total.
	ef := fams["ptsimd_energy_joules_total"]
	if ef == nil {
		t.Fatal("ptsimd_energy_joules_total missing after energy-priced jobs")
	}
	if len(ef.Samples) != len(report.EnergyUnits) {
		t.Fatalf("energy family has %d samples, want %d", len(ef.Samples), len(report.EnergyUnits))
	}
	var totalJ float64
	for i, s := range ef.Samples {
		if s.Labels["unit"] != report.EnergyUnits[i] {
			t.Fatalf("energy sample %d labeled %q, want %q", i, s.Labels["unit"], report.EnergyUnits[i])
		}
		totalJ += s.Value
	}
	if totalJ <= 0 {
		t.Fatalf("energy counters sum to %g after %d jobs", totalJ, n)
	}
}

func fetchBody(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
