package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/service/cache"
)

// NewHandler wraps a service in its HTTP/JSON API:
//
//	POST /jobs             submit a JobSpec; 202 with the job snapshot,
//	                       429 when the queue (or the tenant's share of
//	                       it) is full — the body names the tenant for
//	                       per-tenant throttling, 400 on an invalid spec
//	GET  /jobs/{id}        job snapshot (state, result once done); 404 if
//	                       unknown
//	GET  /jobs/{id}/events Server-Sent Events stream of the job's
//	                       lifecycle (queued/running/done) and coarse
//	                       engine progress fed from the obs probes
//	GET  /stats            service counters (queue, cache, tenants,
//	                       simulation rate)
//	GET  /metrics          the same counters in Prometheus text exposition
//	                       format, plus queue-wait and job-latency
//	                       histograms
//	GET  /cache/{key}      one artifact from the node's local cache tier,
//	                       wrapped in the checksummed wire envelope — the
//	                       fleet peer-cache protocol (404 on miss)
//	PUT  /cache/{key}      store an envelope-wrapped artifact pushed by a
//	                       fleet peer (400 on a corrupt envelope)
//
// The handler is what cmd/ptsimd serves; tests drive it via httptest so
// the daemon binary stays a thin main.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			var over *OverloadError
			var tover *TenantOverloadError
			switch {
			case errors.As(err, &tover):
				w.Header().Set("X-Overloaded-Tenant", tover.Tenant)
				writeJSON(w, http.StatusTooManyRequests,
					map[string]string{"error": err.Error(), "tenant": tover.Tenant})
			case errors.As(err, &over):
				writeErr(w, http.StatusTooManyRequests, err.Error())
			default:
				writeErr(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveJobEvents(s, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = s.Metrics().WriteTo(w)
	})
	mux.HandleFunc("GET /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.CacheGet(r.PathValue("key"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no artifact for key")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(cache.SealEnvelope(data))
	})
	mux.HandleFunc("PUT /cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, cache.PeerMaxEntryBytes+1))
		if err != nil || len(raw) > cache.PeerMaxEntryBytes {
			writeErr(w, http.StatusBadRequest, "artifact too large or unreadable")
			return
		}
		payload, ok := cache.OpenEnvelope(raw)
		if !ok {
			// A corrupt push is rejected, never stored: the envelope is the
			// fleet's end-to-end integrity check.
			writeErr(w, http.StatusBadRequest, "corrupt artifact envelope")
			return
		}
		if err := s.CachePut(r.PathValue("key"), payload); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// serveJobEvents streams a job's events as SSE: one `event:`/`data:` pair
// per JobEvent, ending after the terminal state. A subscriber arriving
// after the job finished gets a single synthetic state event.
func serveJobEvents(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// Subscribe before snapshotting so no terminal transition can fall
	// between the snapshot and the stream.
	ch, cancel := s.events.subscribe(id)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	job, _ = s.Get(id)
	snap := JobEvent{Kind: "state", State: job.State, Tenant: job.Spec.Tenant, Error: job.Error}
	if job.Result != nil {
		snap.Cycles = job.Result.Cycles
	}
	writeSSE(w, snap)
	fl.Flush()
	if job.State == StateDone || job.State == StateFailed {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Stream closed: emit the final snapshot in case the
				// terminal event was dropped by a full buffer.
				if job, ok := s.Get(id); ok && (job.State == StateDone || job.State == StateFailed) {
					fin := JobEvent{Kind: "state", State: job.State, Tenant: job.Spec.Tenant, Error: job.Error}
					if job.Result != nil {
						fin.Cycles = job.Result.Cycles
					}
					writeSSE(w, fin)
					fl.Flush()
				}
				return
			}
			writeSSE(w, ev)
			fl.Flush()
			if ev.Kind == "state" && (ev.State == StateDone || ev.State == StateFailed) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev JobEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
