package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler wraps a service in its HTTP/JSON API:
//
//	POST /jobs      submit a JobSpec; 202 with the job snapshot,
//	                429 when the queue is full (admission control),
//	                400 on an invalid spec
//	GET  /jobs/{id} job snapshot (state, result once done); 404 if unknown
//	GET  /stats     service counters (queue, cache, simulation rate)
//	GET  /metrics   the same counters in Prometheus text exposition
//	                format, plus queue-wait and job-latency histograms
//
// The handler is what cmd/ptsimd serves; tests drive it via httptest so
// the daemon binary stays a thin main.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			var over *OverloadError
			if errors.As(err, &over) {
				writeErr(w, http.StatusTooManyRequests, err.Error())
				return
			}
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = s.Metrics().WriteTo(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
