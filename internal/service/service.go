// Package service is the simulation-as-a-service subsystem: a bounded job
// queue feeding a pool of workers that each run an independent
// togsim.Engine, in front of a content-addressed compile cache
// (CompileKey → compiled TOGs + tile-latency table). TLS is fast precisely
// so that many simulations become cheap (§3.8, §3.10); this package turns
// that into throughput — a long-running daemon (cmd/ptsimd) amortizes
// compilation across requests and saturates cores with concurrent runs.
//
// Engines share no mutable state: each job gets its own fabric, memory and
// NoC via togsim.NewStandard, and the cached *compiler.Compiled artifacts
// (TOGs, base maps, latency tables) are read-only during simulation, so
// any number of jobs over the same compilation run race-free in parallel.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/obs/report"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/service/cache"
	"repro/internal/service/modelzoo"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// OverloadError is the typed admission-control failure: the queue was full
// at submission time. Submissions never block and never panic — callers
// (e.g. the HTTP layer, which maps it to 429) get this immediately.
type OverloadError struct {
	Capacity int // configured queue depth
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded, job queue full (capacity %d)", e.Capacity)
}

// TenantOverloadError is the per-tenant admission-control failure: the
// whole queue still has room, but this tenant's share is full. The HTTP
// layer maps it to 429 too, with the tenant named so a client can tell "I
// am being throttled" apart from "the service is saturated".
type TenantOverloadError struct {
	Tenant   string
	Capacity int // configured per-tenant queue depth
}

func (e *TenantOverloadError) Error() string {
	return fmt.Sprintf("service: tenant %q overloaded, per-tenant queue full (capacity %d)", e.Tenant, e.Capacity)
}

// JobSpec is a simulation request as submitted by a client (JSON over the
// daemon API, or directly in-process). Zero values mean defaults.
type JobSpec struct {
	Model string `json:"model"`
	// Tenant names the submitter for fair queueing and per-tenant limits
	// ("" is the anonymous default tenant). Priority orders jobs within a
	// tenant's queue (higher runs earlier); it never lets one tenant jump
	// another's share.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Batch    int    `json:"batch,omitempty"`
	N        int    `json:"n,omitempty"`   // GEMM dimension
	Seq      int    `json:"seq,omitempty"` // BERT sequence length
	// Ctx/Prefill shape the decoder models: context length and whether to
	// run the prompt prefill pass instead of a single decode step.
	Ctx     int  `json:"ctx,omitempty"`
	Prefill bool `json:"prefill,omitempty"`
	// Topology/Parallel spread the job across a multi-package mesh:
	// topology preset name ("single" default, "pkg2", "meshXxY") and
	// cross-package strategy ("none" default, "data", "tensor"). Both enter
	// the compile-cache key via the canonical spec.
	Topology string `json:"topology,omitempty"`
	Parallel string `json:"parallel,omitempty"`
	NPU      string `json:"npu,omitempty"`    // "tpuv3" (default) or "small"
	Net      string `json:"net,omitempty"`    // "sn" (default) or "cn"
	DMA      string `json:"dma,omitempty"`    // "selective" (default), "coarse", "fine"
	MaxMt    int    `json:"max_mt,omitempty"` // cap on M-tile rows (0 = compiler default)
	// Fusion/ConvOpt are tri-state so that absent JSON fields keep the
	// paper's defaults (both enabled).
	Fusion  *bool `json:"fusion,omitempty"`
	ConvOpt *bool `json:"convopt,omitempty"`
	// MaxCycles overrides the engine's deadlock guard for this job
	// (0 = the service default, which itself defaults to
	// togsim.DefaultMaxCycles).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// NodesPerCycle overrides the engine's zero-cost node budget per
	// context per cycle (0 = the engine default).
	NodesPerCycle int `json:"nodes_per_cycle,omitempty"`
	// EngineWorkers sets the TLS engine's host goroutine count for this
	// job (0 = the service default; 1 = serial). Results are bit-identical
	// at any worker count.
	EngineWorkers int `json:"engine_workers,omitempty"`
	// Serve turns the job into an LLM serving run: instead of simulating
	// the model once, the worker replays a seeded arrival trace through the
	// continuous-batching scheduler (decoder models only).
	Serve *ServeSpec `json:"serve,omitempty"`
}

// ServeSpec parameterizes a serving job's synthetic workload. Zero values
// mean defaults.
type ServeSpec struct {
	Requests   int     `json:"requests,omitempty"`     // trace length (default 4)
	RatePerSec float64 `json:"rate_per_sec,omitempty"` // Poisson arrival rate in simulated seconds (default 1000)
	Seed       int64   `json:"seed,omitempty"`         // trace seed (default 1)
	Prompt     int     `json:"prompt,omitempty"`       // prompt tokens per request (default 16)
	Output     int     `json:"output,omitempty"`       // generated tokens per request (default 8)
	MaxBatch   int     `json:"max_batch,omitempty"`    // continuous-batch capacity (default 4)
	KVBlock    int     `json:"kv_block,omitempty"`     // KV-cache page size in tokens (default 64)
	// CtxDist draws each request's prompt length from a seeded
	// distribution instead of the fixed Prompt: "" or "fixed" (default),
	// or "uniform:lo,hi".
	CtxDist string `json:"ctx_dist,omitempty"`
}

func (sv ServeSpec) withDefaults() ServeSpec {
	if sv.Requests <= 0 {
		sv.Requests = 4
	}
	if sv.RatePerSec <= 0 {
		sv.RatePerSec = 1000
	}
	if sv.Seed == 0 {
		sv.Seed = 1
	}
	if sv.Prompt <= 0 {
		sv.Prompt = 16
	}
	if sv.Output <= 0 {
		sv.Output = 8
	}
	if sv.MaxBatch <= 0 {
		sv.MaxBatch = 4
	}
	if sv.KVBlock <= 0 {
		sv.KVBlock = 64
	}
	return sv
}

// resolve maps the wire spec onto the internal compile/simulate inputs.
func (s JobSpec) resolve() (resolved, error) {
	var r resolved
	r.Spec = modelzoo.Spec{Model: s.Model, Batch: s.Batch, N: s.N, Seq: s.Seq, Ctx: s.Ctx, Prefill: s.Prefill,
		Topology: s.Topology, Parallel: s.Parallel}.Normalize()
	cfg, err := modelzoo.NPUConfig(s.NPU)
	if err != nil {
		return r, err
	}
	r.Cfg = cfg
	r.Topo, err = modelzoo.Topology(r.Spec, cfg.Mem)
	if err != nil {
		return r, err
	}
	switch s.Net {
	case "", "sn":
		r.Net = togsim.SimpleNet
	case "cn":
		r.Net = togsim.CycleNet
	default:
		return r, fmt.Errorf("service: unknown net %q (sn, cn)", s.Net)
	}
	r.Opts = compiler.DefaultOptions()
	switch s.DMA {
	case "", "selective":
	case "coarse":
		r.Opts.DMA = compiler.DMACoarse
	case "fine":
		r.Opts.DMA = compiler.DMAFine
	default:
		return r, fmt.Errorf("service: unknown dma mode %q (coarse, fine, selective)", s.DMA)
	}
	if s.Fusion != nil {
		r.Opts.Fusion = *s.Fusion
	}
	if s.ConvOpt != nil {
		r.Opts.ConvLayoutOpt = *s.ConvOpt
	}
	r.Opts.MaxMt = s.MaxMt
	if s.MaxCycles < 0 {
		return r, fmt.Errorf("service: negative max_cycles %d", s.MaxCycles)
	}
	r.MaxCycles = s.MaxCycles
	if s.NodesPerCycle < 0 {
		return r, fmt.Errorf("service: negative nodes_per_cycle %d", s.NodesPerCycle)
	}
	r.NodesPerCycle = s.NodesPerCycle
	if s.EngineWorkers < 0 {
		return r, fmt.Errorf("service: negative engine_workers %d", s.EngineWorkers)
	}
	r.EngineWorkers = s.EngineWorkers
	if s.Serve != nil {
		if !strings.HasPrefix(s.Model, "decoder-") {
			return r, fmt.Errorf("service: serve jobs need a decoder model, got %q", s.Model)
		}
		if r.Topo.Packages() > 1 && r.Spec.Parallel != string(parallel.Tensor) {
			return r, fmt.Errorf("service: multi-package serving requires tensor parallelism, got %q", r.Spec.Parallel)
		}
		if s.Serve.Requests < 0 || s.Serve.Prompt < 0 || s.Serve.Output < 0 ||
			s.Serve.MaxBatch < 0 || s.Serve.KVBlock < 0 || s.Serve.RatePerSec < 0 {
			return r, fmt.Errorf("service: negative serve parameter in %+v", *s.Serve)
		}
		if _, err := serve.ParseCtxDist(s.Serve.CtxDist); err != nil {
			return r, err
		}
		sv := s.Serve.withDefaults()
		r.Serve = &sv
	}
	return r, nil
}

type resolved struct {
	Spec          modelzoo.Spec
	Topo          topo.Config
	Cfg           npu.Config
	Opts          compiler.Options
	Net           togsim.NetKind
	MaxCycles     int64
	NodesPerCycle int
	EngineWorkers int
	Serve         *ServeSpec
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// JobResult is the outcome of a finished simulation.
type JobResult struct {
	Cycles      int64   `json:"cycles"`
	FreqMHz     int     `json:"freq_mhz"`
	SimulatedMs float64 `json:"simulated_ms"`
	WallMs      float64 `json:"wall_ms"`    // host time of the simulation run
	CompileMs   float64 `json:"compile_ms"` // host time spent compiling (0 on cache hit)
	CacheHit    bool    `json:"cache_hit"`  // compilation served from the cache
	CompileKey  string  `json:"compile_key"`

	// Report is the derived observability breakdown (per-core utilization,
	// per-job cycle classes, memory bandwidth) — the same formatter ptsim
	// -report prints, so the daemon response and the CLI can never drift.
	Report *report.Report `json:"report,omitempty"`

	// ServeReport is set instead of Report for serving jobs: request
	// latency percentiles, tokens/sec, and the prefill/decode compile-cache
	// breakdown.
	ServeReport *report.ServeReport `json:"serve_report,omitempty"`
}

// Canonical returns a deep copy with every host-time field zeroed —
// WallMs, CompileMs, CacheHit, and the reports' wall clocks. Everything
// left is a deterministic function of the spec, which is exactly the claim
// the fleet determinism oracle and the chaos test pin with DeepEqual:
// where a job ran (cold cache, warm peer, re-dispatched after a member
// death) may change how long it took, never what it computed.
func (r JobResult) Canonical() JobResult {
	r.WallMs = 0
	r.CompileMs = 0
	r.CacheHit = false
	if r.Report != nil {
		rep := *r.Report
		rep.WallMs = 0
		r.Report = &rep
	}
	if r.ServeReport != nil {
		sr := *r.ServeReport
		sr.WallMs = 0
		r.ServeReport = &sr
	}
	return r
}

// Job is the service's record of one submission. Snapshot copies are
// returned to callers; the live record is only mutated by the service.
type Job struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	Error string  `json:"error,omitempty"`
	// ErrorKind classifies failures machine-readably; "deadlock" carries
	// the engine's full stuck-job diagnostic in Error.
	ErrorKind string     `json:"error_kind,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   time.Time  `json:"started,omitempty"`
	Finished  time.Time  `json:"finished,omitempty"`

	done chan struct{}
}

// Config sizes the service.
type Config struct {
	Workers    int   // concurrent simulations (default: GOMAXPROCS)
	QueueDepth int   // bounded queue capacity across all tenants (default 64)
	MaxCycles  int64 // default per-job deadlock guard (0 = togsim.DefaultMaxCycles)
	// EngineWorkers is the default per-job TLS engine goroutine count when
	// the spec leaves engine_workers unset (0 or 1 = serial).
	EngineWorkers int
	// TenantQueueDepth bounds one tenant's share of the queue
	// (0 = QueueDepth, i.e. no per-tenant throttling beyond the total).
	TenantQueueDepth int
	// TenantWeights sets weighted-fair shares per tenant name; absent
	// tenants weigh 1. A weight-3 tenant gets three dequeues for every one
	// of a weight-1 tenant under contention.
	TenantWeights map[string]int
}

// Stats is the service's observability surface. Every field is captured
// under one lock in a single snapshot, so the numbers are mutually
// consistent: queue depth, in-flight jobs, and the cumulative counters all
// describe the same instant (the /metrics endpoint renders the same
// snapshot, so the two surfaces can never disagree mid-scrape).
type Stats struct {
	Submitted int64 `json:"submitted"` // cumulative jobs accepted
	Queued    int64 `json:"queued"`    // current queue depth
	Running   int64 `json:"running"`   // jobs currently simulating
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// DiskHits/DiskMisses count lookups against the attached artifact
	// store stack — persistent disk and/or remote peer tiers (always zero
	// until EnableDiskCache or EnablePeerCache).
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`

	// PeerHits/PeerMisses count lookups that reached the remote peer tier;
	// PeerPuts counts artifacts pushed to their hash owner; PeerErrors
	// counts transport or verification failures (every one degraded to a
	// clean miss). All zero until EnablePeerCache.
	PeerHits   int64 `json:"peer_hits,omitempty"`
	PeerMisses int64 `json:"peer_misses,omitempty"`
	PeerPuts   int64 `json:"peer_puts,omitempty"`
	PeerErrors int64 `json:"peer_errors,omitempty"`

	// KernelsMeasured counts kernel measurements run by compilations so
	// far. A node that compiled a model whose latency table arrived whole
	// from a warm peer (or disk) shows a compile-cache miss here but zero
	// new measurements — the "zero recompilation" pin of the fleet's
	// remote cache tier.
	KernelsMeasured int64 `json:"kernels_measured"`

	// TenantQueued is the per-tenant queue depth; TenantDone counts
	// finished jobs per tenant. Tenants appear once they have submitted.
	TenantQueued map[string]int64 `json:"tenant_queued,omitempty"`
	TenantDone   map[string]int64 `json:"tenant_done,omitempty"`

	// TotalCycles sums simulated cycles over finished jobs; WallSeconds
	// sums the host time those simulations took; CyclesPerSecond is their
	// ratio — the aggregate simulation rate the paper's speed argument is
	// about.
	TotalCycles     int64   `json:"total_cycles"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`

	// ServeRequests/ServeTokens accumulate over finished serving jobs:
	// requests completed and tokens generated by the continuous-batching
	// scheduler.
	ServeRequests int64 `json:"serve_requests"`
	ServeTokens   int64 `json:"serve_tokens"`

	// EnergyJoules accumulates the post-hoc energy of finished jobs keyed
	// by unit class (report.EnergyUnits order on /metrics). Empty until a
	// job's NPU config carries a non-zero energy table.
	EnergyJoules map[string]float64 `json:"energy_joules,omitempty"`

	// PackageEnergyJoules accumulates multi-package jobs' per-package
	// energy, keyed by package index as a string (exported on /metrics as
	// ptsimd_package_energy_joules_total{package="<i>"}; the unit-class
	// split of the same joules stays in EnergyJoules). Empty until a
	// multi-package job finishes.
	PackageEnergyJoules map[string]float64 `json:"package_energy_joules,omitempty"`

	// WindowRounds/SerialRounds/WindowedCycles accumulate the parallel
	// engine's scheduling split over finished jobs (all zero for serial
	// runs; see togsim.RoundStats).
	WindowRounds   int64 `json:"window_rounds"`
	SerialRounds   int64 `json:"serial_rounds"`
	WindowedCycles int64 `json:"windowed_cycles"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
}

// Service runs simulations from a bounded weighted-fair queue on a fixed
// worker pool.
type Service struct {
	cfg   Config
	cache *Cache

	// localStore is the tier this node serves to fleet peers over
	// /cache/{key} (memory, or memory-over-disk); the compile cache sees
	// it stacked under the peer tier when one is attached. Serving only
	// the local tier to peers keeps peer lookups from recursing across
	// the cluster.
	localStore cache.Store
	peer       *cache.Peer

	events *eventHub

	mu          sync.Mutex
	byID        map[string]*Job
	nextID      int64
	closed      bool
	submitted   int64
	queued      int64
	running     int64
	done        int64
	failed      int64
	cycles      int64
	wallNs      int64
	cacheHits   int64 // compile-cache accounting under s.mu, so Stats()
	cacheMisses int64 // is one consistent snapshot (the cache has its own lock)
	serveReqs   int64
	serveTokens int64
	tenantDone  map[string]int64

	energyJ        map[string]float64 // cumulative joules by unit class
	pkgEnergyJ     map[string]float64 // cumulative joules by package index
	windowRounds   int64              // parallel-engine scheduling split,
	serialRounds   int64              // summed over finished jobs
	windowedCycles int64

	reg          *metrics.Registry
	queueWait    *metrics.Histogram
	jobLat       *metrics.Histogram
	serveTTFT    *metrics.Histogram
	compilePhase map[compiler.Phase]*metrics.Histogram

	queue *sched.FairQueue[*Job]
	wg    sync.WaitGroup
}

// New returns a stopped service; call Start to launch the worker pool.
// (The split lets tests fill the queue deterministically first.)
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	weight := func(tenant string) int { return cfg.TenantWeights[tenant] }
	s := &Service{
		cfg:        cfg,
		cache:      NewCache(),
		byID:       map[string]*Job{},
		queue:      sched.NewFairQueue[*Job](cfg.QueueDepth, cfg.TenantQueueDepth, weight),
		reg:        metrics.NewRegistry(),
		events:     newEventHub(),
		tenantDone: map[string]int64{},
	}
	s.queueWait = s.reg.NewHistogram("ptsimd_queue_wait_seconds",
		"Time jobs spend queued before a worker picks them up.",
		metrics.ExpBuckets(0.001, 4, 10))
	s.jobLat = s.reg.NewHistogram("ptsimd_job_duration_seconds",
		"End-to-end job latency from submission to completion.",
		metrics.ExpBuckets(0.001, 4, 12))
	s.serveTTFT = s.reg.NewHistogram("ptsimd_serve_ttft_seconds",
		"Simulated time-to-first-token of serving-job requests.",
		metrics.ExpBuckets(1e-6, 4, 12))
	s.compilePhase = map[compiler.Phase]*metrics.Histogram{}
	for _, ph := range compiler.Phases() {
		s.compilePhase[ph] = s.reg.NewHistogram(
			fmt.Sprintf("ptsimd_compile_%s_seconds", ph),
			fmt.Sprintf("Host time of the compiler's %s pass.", ph),
			metrics.ExpBuckets(0.0001, 4, 10))
	}
	// Every compiler the cache creates reports its pass latencies into the
	// phase histograms.
	s.cache.SetCompilerHook(func(c *compiler.Compiler) {
		c.PhaseHook = func(ph compiler.Phase, d time.Duration) {
			if h := s.compilePhase[ph]; h != nil {
				h.Observe(d.Seconds())
			}
		}
	})
	s.reg.Register(metrics.CollectorFunc(s.collect))
	return s
}

// EnableDiskCache attaches the persistent compile-cache tier rooted at dir
// (layered: in-memory over versioned on-disk entries). Kernel-latency
// tables measured by this or any previous process become warm-start seeds,
// so a daemon restart re-measures nothing already covered. Call before
// Start.
func (s *Service) EnableDiskCache(dir string) error {
	disk, err := cache.NewDisk(dir)
	if err != nil {
		return err
	}
	s.localStore = cache.NewLayered(cache.NewMemory(), disk)
	s.rewireStore()
	return nil
}

// EnablePeerCache attaches the fleet's remote cache tier: artifact lookups
// that miss locally ask the key's consistent-hash owner, and freshly built
// artifacts are pushed to that owner so any member can backfill them. The
// peer tier always stacks below the local one, and this node serves its
// local tier (never the peer tier) on GET /cache/{key}, so lookups cannot
// recurse around the ring. Call before Start (after EnableDiskCache when
// both are wanted).
func (s *Service) EnablePeerCache(p *cache.Peer) {
	s.peer = p
	s.rewireStore()
}

// rewireStore rebuilds the compile cache's store stack from the attached
// tiers: local (memory and/or disk), with the peer tier layered beneath.
func (s *Service) rewireStore() {
	if s.localStore == nil {
		s.localStore = cache.NewMemory()
	}
	st := s.localStore
	if s.peer != nil {
		st = cache.NewLayered(st, s.peer)
	}
	s.cache.SetStore(st)
}

// CacheGet serves one artifact from the node's local store tier to a fleet
// peer (GET /cache/{key}); ok=false when no store is attached or the key
// is absent.
func (s *Service) CacheGet(key string) ([]byte, bool) {
	if s.localStore == nil {
		return nil, false
	}
	return s.localStore.Get(key)
}

// CachePut stores one artifact pushed by a fleet peer (PUT /cache/{key})
// into the node's local store tier.
func (s *Service) CachePut(key string, data []byte) error {
	if s.localStore == nil {
		return fmt.Errorf("service: no cache store attached")
	}
	return s.localStore.Put(key, data)
}

// Metrics returns the registry backing GET /metrics. The histograms are
// fed by the workers; everything else is emitted at scrape time from one
// Stats snapshot.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// collect emits every point-in-time family from a single Stats snapshot,
// so one scrape can never observe counters that disagree with each other
// or with /stats.
func (s *Service) collect(e *metrics.Emitter) {
	st := s.Stats()
	e.Gauge("ptsimd_jobs_queued", "Jobs waiting in the bounded queue.", float64(st.Queued))
	e.Gauge("ptsimd_jobs_running", "Jobs currently simulating.", float64(st.Running))
	e.Counter("ptsimd_jobs_submitted_total", "Jobs accepted by admission control.", float64(st.Submitted))
	e.Counter("ptsimd_jobs_done_total", "Jobs finished successfully.", float64(st.Done))
	e.Counter("ptsimd_jobs_failed_total", "Jobs that ended in an error.", float64(st.Failed))
	e.Counter("ptsimd_compile_cache_hits_total", "Compilations served from the content-addressed cache.", float64(st.CacheHits))
	e.Counter("ptsimd_compile_cache_misses_total", "Compilations that ran the compiler.", float64(st.CacheMisses))
	e.Counter("ptsimd_compile_disk_hits_total", "Persistent-store lookups that found a valid artifact.", float64(st.DiskHits))
	e.Counter("ptsimd_compile_disk_misses_total", "Persistent-store lookups that missed (absent, corrupt, or stale).", float64(st.DiskMisses))
	e.Counter("ptsimd_kernels_measured_total", "Kernel measurements run by compilations (zero on warm-cache compiles).", float64(st.KernelsMeasured))
	if s.peerAttached() {
		e.Counter("ptsimd_peer_cache_hits_total", "Artifact lookups served by a fleet peer.", float64(st.PeerHits))
		e.Counter("ptsimd_peer_cache_misses_total", "Artifact lookups no peer could serve.", float64(st.PeerMisses))
		e.Counter("ptsimd_peer_cache_puts_total", "Artifacts pushed to their consistent-hash owner.", float64(st.PeerPuts))
		e.Counter("ptsimd_peer_cache_errors_total", "Peer transport or verification failures (each degraded to a miss).", float64(st.PeerErrors))
	}
	if len(st.TenantQueued) > 0 {
		e.GaugeVec("ptsimd_tenant_queued", "Per-tenant queue depth in the weighted-fair queue.",
			"tenant", tenantSamples(st.TenantQueued))
	}
	if len(st.TenantDone) > 0 {
		e.CounterVec("ptsimd_tenant_jobs_done_total", "Finished jobs per tenant.",
			"tenant", tenantSamples(st.TenantDone))
	}
	e.Counter("ptsimd_simulated_cycles_total", "Simulated cycles summed over finished jobs.", float64(st.TotalCycles))
	e.Counter("ptsimd_serve_requests_total", "Requests completed by serving jobs.", float64(st.ServeRequests))
	e.Counter("ptsimd_serve_tokens_generated_total", "Tokens generated by serving jobs.", float64(st.ServeTokens))
	e.Gauge("ptsimd_simulation_cycles_per_second", "Aggregate simulation rate: simulated cycles per host second.", st.CyclesPerSecond)
	if len(st.EnergyJoules) > 0 {
		// Fixed unit order keeps the scrape byte-stable.
		samples := make([]metrics.LabeledSample, 0, len(report.EnergyUnits))
		for _, unit := range report.EnergyUnits {
			samples = append(samples, metrics.LabeledSample{Label: unit, Value: st.EnergyJoules[unit]})
		}
		e.CounterVec("ptsimd_energy_joules_total",
			"Post-hoc simulated energy of finished jobs by unit class.",
			"unit", samples)
	}
	if len(st.PackageEnergyJoules) > 0 {
		// Sorted numeric package order keeps the scrape byte-stable.
		keys := make([]string, 0, len(st.PackageEnergyJoules))
		for k := range st.PackageEnergyJoules {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, _ := strconv.Atoi(keys[i])
			b, _ := strconv.Atoi(keys[j])
			return a < b
		})
		samples := make([]metrics.LabeledSample, 0, len(keys))
		for _, k := range keys {
			samples = append(samples, metrics.LabeledSample{Label: k, Value: st.PackageEnergyJoules[k]})
		}
		e.CounterVec("ptsimd_package_energy_joules_total",
			"Post-hoc simulated energy of finished multi-package jobs by package.",
			"package", samples)
	}
	e.Gauge("ptsimd_engine_window_rounds", "Parallel-engine window rounds summed over finished jobs.", float64(st.WindowRounds))
	e.Gauge("ptsimd_engine_serial_rounds", "Parallel-engine serial fallback rounds summed over finished jobs.", float64(st.SerialRounds))
	e.Gauge("ptsimd_engine_windowed_cycles", "Simulated cycles covered by parallel windows, summed over finished jobs.", float64(st.WindowedCycles))
	e.Gauge("ptsimd_workers", "Size of the worker pool.", float64(st.Workers))
	e.Gauge("ptsimd_queue_capacity", "Bounded job queue capacity.", float64(st.QueueDepth))
	busy := 0.0
	if st.Workers > 0 {
		busy = float64(st.Running) / float64(st.Workers)
	}
	e.Gauge("ptsimd_worker_busy_fraction", "Fraction of workers currently simulating.", busy)
}

// Cache exposes the compile cache (shared with e.g. sched adapters).
func (s *Service) Cache() *Cache { return s.cache }

// peerAttached reports whether a peer tier is wired (metrics families for
// the peer cache only render on fleet members).
func (s *Service) peerAttached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer != nil
}

// tenantSamples renders a per-tenant map as labeled samples in sorted
// tenant order, with "" shown as "default", so scrapes are byte-stable.
func tenantSamples(m map[string]int64) []metrics.LabeledSample {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	samples := make([]metrics.LabeledSample, 0, len(keys))
	for _, k := range keys {
		label := k
		if label == "" {
			label = "default"
		}
		samples = append(samples, metrics.LabeledSample{Label: label, Value: float64(m[k])})
	}
	return samples
}

// Start launches the worker pool. It is idempotent per service lifetime:
// call once.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops admission, drains the queue, and waits for in-flight jobs.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()
	s.wg.Wait()
	s.events.closeAll()
}

// Submit validates and enqueues a job. It never blocks: a full queue
// returns *OverloadError immediately (admission control), an invalid spec
// returns the validation error, and otherwise the queued job's snapshot is
// returned.
func (s *Service) Submit(spec JobSpec) (Job, error) {
	if _, err := spec.resolve(); err != nil {
		return Job{}, err
	}
	if !modelzoo.Known(spec.Model) {
		// Reject unknown models at admission rather than at run time.
		return Job{}, fmt.Errorf("service: unknown model %q (have %v)", spec.Model, modelzoo.Models())
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("service: closed")
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if err := s.queue.Push(spec.Tenant, spec.Priority, j); err != nil {
		s.nextID--
		s.mu.Unlock()
		var over *sched.QueueOverloadError
		if errors.As(err, &over) && over.Tenant != "" {
			return Job{}, &TenantOverloadError{Tenant: over.Tenant, Capacity: over.Capacity}
		}
		return Job{}, &OverloadError{Capacity: s.cfg.QueueDepth}
	}
	s.byID[j.ID] = j
	s.submitted++
	s.queued++
	snap := *j
	s.mu.Unlock()
	s.events.publish(j.ID, JobEvent{Kind: "state", State: StateQueued, Tenant: spec.Tenant})
	return snap, nil
}

// Get returns a snapshot of the job with the given id.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Wait blocks until the job finishes (done or failed) and returns its
// final snapshot.
func (s *Service) Wait(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("service: unknown job %q", id)
	}
	<-j.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return *j, nil
}

// Stats returns the current counters as one consistent snapshot: every
// field is read under the same lock acquisition.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: s.submitted,
		Queued:    s.queued, Running: s.running, Done: s.done, Failed: s.failed,
		CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		TotalCycles: s.cycles, WallSeconds: float64(s.wallNs) / 1e9,
		ServeRequests: s.serveReqs, ServeTokens: s.serveTokens,
		Workers: s.cfg.Workers, QueueDepth: s.cfg.QueueDepth,
	}
	if st.WallSeconds > 0 {
		st.CyclesPerSecond = float64(st.TotalCycles) / st.WallSeconds
	}
	st.WindowRounds, st.SerialRounds, st.WindowedCycles = s.windowRounds, s.serialRounds, s.windowedCycles
	if len(s.energyJ) > 0 {
		st.EnergyJoules = make(map[string]float64, len(s.energyJ))
		for k, v := range s.energyJ {
			st.EnergyJoules[k] = v
		}
	}
	if len(s.pkgEnergyJ) > 0 {
		st.PackageEnergyJoules = make(map[string]float64, len(s.pkgEnergyJ))
		for k, v := range s.pkgEnergyJ {
			st.PackageEnergyJoules[k] = v
		}
	}
	st.KernelsMeasured = s.cache.Measured()
	if len(s.tenantDone) > 0 {
		st.TenantDone = make(map[string]int64, len(s.tenantDone))
		for k, v := range s.tenantDone {
			st.TenantDone[k] = v
		}
	}
	// The queue keeps its own lock; s.mu -> queue.mu is the same order
	// Submit uses, so this cannot deadlock.
	depths := s.queue.Depths()
	if len(depths) > 0 {
		st.TenantQueued = make(map[string]int64, len(depths))
		for k, v := range depths {
			st.TenantQueued[k] = int64(v)
		}
	}
	st.DiskHits, st.DiskMisses = s.cache.StoreStats()
	if s.peer != nil {
		st.PeerHits, st.PeerMisses = s.peer.Stats()
		st.PeerPuts, st.PeerErrors = s.peer.NetStats()
	}
	return st
}

// accountRun folds one finished run's derived energy breakdown (nil when
// the config has no energy table) and parallel-engine round counts into
// the cumulative service counters.
func (s *Service) accountRun(e *report.EnergyReport, rounds togsim.RoundStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windowRounds += rounds.Window
	s.serialRounds += rounds.Serial
	s.windowedCycles += rounds.WindowedCycles
	if e == nil {
		return
	}
	if s.energyJ == nil {
		s.energyJ = map[string]float64{}
	}
	for _, u := range e.UnitMilliJ() {
		s.energyJ[u.Unit] += u.MJ / 1e3
	}
}

// accountPackages folds a multi-package run's per-package energy into the
// cumulative counters behind ptsimd_package_energy_joules_total. No-op for
// nil breakdowns or zero energy tables.
func (s *Service) accountPackages(t *report.TopologyReport) {
	if t == nil || t.EnergyMilliJ == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pkgEnergyJ == nil {
		s.pkgEnergyJ = map[string]float64{}
	}
	for _, p := range t.PerPackage {
		s.pkgEnergyJ[fmt.Sprintf("%d", p.Package)] += p.EnergyMilliJ / 1e3
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.run(j)
	}
}

func (s *Service) run(j *Job) {
	s.mu.Lock()
	s.queued--
	s.running++
	j.State = StateRunning
	j.Started = time.Now()
	s.mu.Unlock()
	s.queueWait.Observe(j.Started.Sub(j.Submitted).Seconds())
	s.events.publish(j.ID, JobEvent{Kind: "state", State: StateRunning, Tenant: j.Spec.Tenant})

	res, err := s.simulate(j.Spec, s.events.progressProbe(j.ID))

	s.mu.Lock()
	s.running--
	j.Finished = time.Now()
	if err != nil {
		s.failed++
		j.State = StateFailed
		j.Error = err.Error()
		var dl *togsim.DeadlockError
		if errors.As(err, &dl) {
			j.ErrorKind = "deadlock"
		}
	} else {
		s.done++
		j.State = StateDone
		j.Result = &res
		s.cycles += res.Cycles
		s.wallNs += int64(res.WallMs * 1e6)
	}
	s.tenantDone[j.Spec.Tenant]++
	final := JobEvent{Kind: "state", State: j.State, Tenant: j.Spec.Tenant, Error: j.Error}
	if j.Result != nil {
		final.Cycles = j.Result.Cycles
	}
	s.mu.Unlock()
	s.jobLat.Observe(j.Finished.Sub(j.Submitted).Seconds())
	s.events.publish(j.ID, final)
	s.events.finish(j.ID)
	close(j.done)
}

// simulate is one job's whole pipeline: resolve, compile-or-fetch, run.
// Everything here is also what a standalone ptsim run does, so service
// cycles are bit-identical to the CLI's for the same spec. probe, when
// non-nil, streams coarse progress to event subscribers on the
// single-package path; attached probes are proven invisible in Results by
// the crosscheck probe oracle, so subscribing to a job's events can never
// change its outcome.
func (s *Service) simulate(spec JobSpec, probe obs.Probe) (JobResult, error) {
	r, err := spec.resolve()
	if err != nil {
		return JobResult{}, err
	}
	if r.Serve != nil {
		return s.runServe(r)
	}
	key := CompileKey(r.Spec, r.Cfg, r.Opts)
	compileStart := time.Now()
	comp, hit, err := s.cache.Compile(key, r.Cfg, r.Opts, func() (*graph.Graph, error) {
		return modelzoo.BuildFor(r.Spec, r.Cfg.Mem)
	})
	if err != nil {
		return JobResult{}, err
	}
	s.mu.Lock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
	s.mu.Unlock()
	compileMs := float64(time.Since(compileStart)) / 1e6
	if hit {
		compileMs = 0
	}
	if r.Topo.Packages() > 1 {
		return s.simulateTopo(r, comp, key, hit, compileMs)
	}

	setup := togsim.NewStandard(r.Cfg, r.Net, dram.FRFCFS)
	if probe != nil {
		setup.AttachProbe(probe)
	}
	setup.Engine.MaxCycles = r.MaxCycles
	if setup.Engine.MaxCycles == 0 {
		setup.Engine.MaxCycles = s.cfg.MaxCycles
	}
	if r.NodesPerCycle > 0 {
		setup.Engine.NodesPerCycle = r.NodesPerCycle
	}
	setup.Engine.Workers = r.EngineWorkers
	if setup.Engine.Workers == 0 {
		setup.Engine.Workers = s.cfg.EngineWorkers
	}
	start := time.Now()
	res, err := setup.Engine.Run([]*togsim.Job{comp.Job(comp.Name, 0, 0)})
	if err != nil {
		return JobResult{}, err
	}
	wall := time.Since(start)
	rep := report.Build(r.Cfg, report.Inputs{
		Res:      res,
		Mem:      setup.MemStats(),
		NoCFlits: setup.NetFlits(),
		Rounds:   setup.Engine.Rounds,
		Wall:     wall,
	})
	s.accountRun(rep.Energy, setup.Engine.Rounds)
	return JobResult{
		Cycles:      res.Cycles,
		FreqMHz:     r.Cfg.FreqMHz,
		SimulatedMs: float64(res.Cycles) / float64(r.Cfg.FreqMHz) / 1e3,
		WallMs:      float64(wall) / 1e6,
		CompileMs:   compileMs,
		CacheHit:    hit,
		CompileKey:  key,
		Report:      &rep,
	}, nil
}

// simulateTopo is the multi-package tail of simulate: place one rank of
// the compiled artifact per package, run them on a topology fabric (same
// engine-worker and deadlock-guard knobs as a single-package job), and
// report with the per-package breakdown attached.
func (s *Service) simulateTopo(r resolved, comp *compiler.Compiled, key string, hit bool, compileMs float64) (JobResult, error) {
	jobs, err := parallel.PlaceJobs(comp.Name, comp, r.Topo)
	if err != nil {
		return JobResult{}, err
	}
	cfg := r.Cfg
	cfg.Cores = r.Topo.TotalCores()
	fab := topo.NewFabric(r.Topo)
	eng := togsim.NewEngine(cfg, fab)
	eng.MaxCycles = r.MaxCycles
	if eng.MaxCycles == 0 {
		eng.MaxCycles = s.cfg.MaxCycles
	}
	if r.NodesPerCycle > 0 {
		eng.NodesPerCycle = r.NodesPerCycle
	}
	eng.Workers = r.EngineWorkers
	if eng.Workers == 0 {
		eng.Workers = s.cfg.EngineWorkers
	}
	start := time.Now()
	res, err := eng.Run(jobs)
	if err != nil {
		return JobResult{}, err
	}
	wall := time.Since(start)
	rep := report.Build(cfg, report.Inputs{
		Res:       res,
		Mem:       fab.MemTotals(),
		LinkFlits: fab.LinkFlits,
		Rounds:    eng.Rounds,
		Wall:      wall,
		Topo:      fab,
	})
	s.accountRun(rep.Energy, eng.Rounds)
	s.accountPackages(rep.Topology)
	return JobResult{
		Cycles:      res.Cycles,
		FreqMHz:     cfg.FreqMHz,
		SimulatedMs: float64(res.Cycles) / float64(cfg.FreqMHz) / 1e3,
		WallMs:      float64(wall) / 1e6,
		CompileMs:   compileMs,
		CacheHit:    hit,
		CompileKey:  key,
		Report:      &rep,
	}, nil
}

// ServeCompileFn adapts the service's content-addressed compile cache to
// the serving loop's compile interface: every prefill pass and decode step
// resolves through the same CompileKey path as a plain job, with hits and
// misses accounted in the service stats.
func (s *Service) ServeCompileFn(cfg npu.Config, opts compiler.Options) serve.CompileFn {
	return func(spec modelzoo.Spec) (*compiler.Compiled, bool, error) {
		key := CompileKey(spec, cfg, opts)
		comp, hit, err := s.cache.Compile(key, cfg, opts, func() (*graph.Graph, error) {
			return modelzoo.BuildFor(spec, cfg.Mem)
		})
		if err == nil {
			s.mu.Lock()
			if hit {
				s.cacheHits++
			} else {
				s.cacheMisses++
			}
			s.mu.Unlock()
		}
		return comp, hit, err
	}
}

// runServe is a serving job's whole pipeline: synthesize the seeded
// arrival trace and replay it through the continuous-batching scheduler,
// with every iteration compiled through the shared cache.
func (s *Service) runServe(r resolved) (JobResult, error) {
	sv := *r.Serve
	workers := r.EngineWorkers
	if workers == 0 {
		workers = s.cfg.EngineWorkers
	}
	maxCycles := r.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.cfg.MaxCycles
	}
	cfg := serve.Config{
		Model:         r.Spec.Model,
		NPU:           r.Cfg,
		Net:           r.Net,
		MaxBatch:      sv.MaxBatch,
		KVBlock:       sv.KVBlock,
		EngineWorkers: workers,
		MaxCycles:     maxCycles,
		Compile:       s.ServeCompileFn(r.Cfg, r.Opts),
	}
	if r.Topo.Packages() > 1 {
		cfg.Topo, cfg.Parallel = r.Topo, r.Spec.Parallel
	}
	reqs := serve.PoissonTrace(sv.Seed, sv.Requests, sv.RatePerSec, r.Cfg.FreqMHz, sv.Prompt, sv.Output)
	dist, err := serve.ParseCtxDist(sv.CtxDist)
	if err != nil {
		return JobResult{}, err
	}
	serve.ApplyCtxDist(reqs, dist, sv.Seed)
	start := time.Now()
	rep, err := serve.Run(cfg, reqs)
	if err != nil {
		return JobResult{}, err
	}
	wall := time.Since(start)
	rep.WallMs = float64(wall) / 1e6
	for _, rr := range rep.PerRequest {
		s.serveTTFT.Observe(rr.TTFTMs / 1e3)
	}
	s.mu.Lock()
	s.serveReqs += int64(rep.Requests)
	s.serveTokens += rep.TokensOut
	s.mu.Unlock()
	// Serving jobs account each phase's energy; the per-iteration engines
	// are internal to serve.Run, so round counts are not surfaced here.
	s.accountRun(rep.PrefillEnergy, togsim.RoundStats{})
	s.accountRun(rep.DecodeEnergy, togsim.RoundStats{})
	return JobResult{
		Cycles:      rep.Cycles,
		FreqMHz:     r.Cfg.FreqMHz,
		SimulatedMs: rep.SimulatedMs,
		WallMs:      rep.WallMs,
		ServeReport: &rep,
	}, nil
}
