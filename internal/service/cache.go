package service

import (
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/service/cache"
	"repro/internal/service/modelzoo"
)

// CompileKey returns the content address of one compilation: the canonical
// hash of (model spec, NPU configuration, compiler options). Anything that
// changes the compiled TOGs or their tile latencies is in the key; anything
// that only changes how the result is simulated (interconnect model, cycle
// limits) is not.
func CompileKey(spec modelzoo.Spec, cfg npu.Config, opts compiler.Options) string {
	return CanonicalHash(spec.Normalize(), cfg, opts)
}

// ContentKey resolves a wire JobSpec to its compile content address — the
// same key the service's cache uses. The fleet coordinator routes jobs by
// this key so identical submissions land on the member whose caches are
// already warm for them. Tenant, priority, and simulation-only knobs are
// deliberately absent: they never change what gets compiled.
func ContentKey(spec JobSpec) (string, error) {
	r, err := spec.resolve()
	if err != nil {
		return "", err
	}
	if !modelzoo.Known(spec.Model) {
		// Mirror Submit's admission check so the coordinator rejects
		// exactly what a member would.
		return "", fmt.Errorf("service: unknown model %q (have %v)", spec.Model, modelzoo.Models())
	}
	return CompileKey(r.Spec, r.Cfg, r.Opts), nil
}

// cacheEntry is one in-flight or finished compilation. ready is closed when
// comp/err are set; waiters block on it, giving singleflight semantics —
// N concurrent identical submissions compile exactly once.
type cacheEntry struct {
	ready chan struct{}
	comp  *compiler.Compiled
	err   error
}

// Cache is the content-addressed compile cache of the simulation service:
// it stores, per CompileKey, the compiled TOGs plus the tile-latency table,
// so repeated or swept requests skip compilation (and even distinct models
// on the same core configuration reuse each other's kernel measurements
// through the shared per-core latency cache). With a persistent Store
// attached, each per-core latency table is seeded from disk on first use
// and written back after every compilation that measured new kernels — the
// paper's offline tile-latency cache surviving process restarts.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// lat shares measured kernel latencies across compilations, keyed by
	// the core configuration they were measured on (latencies depend only
	// on npu.CoreConfig, not on the full machine). The caches are the
	// compiler's own thread-safe singleflight tables, so compilations on
	// different workers dedupe measurements live, not just after the fact.
	lat    map[string]*compiler.LatencyCache
	seeded map[string]bool
	store  cache.Store
	hook   func(*compiler.Compiler)

	hits, misses int64
	measured     int64
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{
		entries: map[string]*cacheEntry{},
		lat:     map[string]*compiler.LatencyCache{},
		seeded:  map[string]bool{},
	}
}

// SetStore attaches the persistent artifact tier. Latency tables load from
// it lazily (first compilation per core configuration) and persist back
// after compilations that measured new kernels. Call before serving.
func (c *Cache) SetStore(st cache.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	// Re-seed on the next use of each core table in case the store knows
	// more than what has been measured so far.
	c.seeded = map[string]bool{}
}

// SetCompilerHook registers a function applied to every compiler the cache
// creates — the service uses it to attach phase-latency metrics and worker
// limits. Call before serving.
func (c *Cache) SetCompilerHook(f func(*compiler.Compiler)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = f
}

// StoreStats reports the persistent tier's hits and misses (zeros when no
// store is attached).
func (c *Cache) StoreStats() (hits, misses int64) {
	c.mu.Lock()
	st := c.store
	c.mu.Unlock()
	if st == nil {
		return 0, 0
	}
	return st.Stats()
}

// Stats reports cache hits and misses so far. A hit is any Compile call
// served by a finished or in-flight entry; a miss is a call that ran the
// compiler.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Measured reports kernel measurements run by compilations so far. A
// compile whose latency table was fully seeded (from disk or a fleet peer)
// contributes zero — the observable pin for "warm cache, no recompute".
func (c *Cache) Measured() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.measured
}

// latFor returns the shared latency cache for one core configuration,
// seeding it from the persistent store on first use. Callers hold c.mu.
func (c *Cache) latFor(coreKey string) *compiler.LatencyCache {
	lc := c.lat[coreKey]
	if lc == nil {
		lc = compiler.NewLatencyCache()
		c.lat[coreKey] = lc
	}
	if c.store != nil && !c.seeded[coreKey] {
		c.seeded[coreKey] = true
		if data, ok := c.store.Get(cache.LatencyKeyForHash(coreKey)); ok {
			if m, err := cache.DecodeLatencies(data); err == nil {
				lc.Seed(m)
			}
			// A decode error means a stale-schema entry: treat as a miss
			// and let the write-back below replace it.
		}
	}
	return lc
}

// Compile returns the compilation for key, building it at most once per
// key across all concurrent callers. Errors are not cached: a failed build
// clears the entry so a later call can retry, and waiters on the failed
// entry receive the error without being counted as hits.
func (c *Cache) Compile(key string, cfg npu.Config, opts compiler.Options,
	build func() (*graph.Graph, error)) (*compiler.Compiled, bool, error) {

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e.comp, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	coreKey := CanonicalHash(cfg.Core)
	lc := c.latFor(coreKey)
	comp := compiler.NewShared(cfg, opts, lc)
	if c.hook != nil {
		c.hook(comp)
	}
	st := c.store
	c.mu.Unlock()

	e.comp, e.err = c.build(comp, build)
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		c.measured += comp.MeasureCount()
	}
	c.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	// Persist the (grown) latency table when this build measured kernels
	// the store had not seen. Best-effort: a failed write only costs a
	// future recompute, never correctness.
	if st != nil && comp.MeasureCount() > 0 {
		if data, err := cache.EncodeLatencies(lc.Snapshot()); err == nil {
			_ = st.Put(cache.LatencyKeyForHash(coreKey), data)
		}
	}
	return e.comp, false, nil
}

func (c *Cache) build(comp *compiler.Compiler, build func() (*graph.Graph, error)) (*compiler.Compiled, error) {
	g, err := build()
	if err != nil {
		return nil, err
	}
	return comp.Compile(g)
}
