package service

import (
	"sync"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/service/modelzoo"
)

// CompileKey returns the content address of one compilation: the canonical
// hash of (model spec, NPU configuration, compiler options). Anything that
// changes the compiled TOGs or their tile latencies is in the key; anything
// that only changes how the result is simulated (interconnect model, cycle
// limits) is not.
func CompileKey(spec modelzoo.Spec, cfg npu.Config, opts compiler.Options) string {
	return CanonicalHash(spec.Normalize(), cfg, opts)
}

// cacheEntry is one in-flight or finished compilation. ready is closed when
// comp/err are set; waiters block on it, giving singleflight semantics —
// N concurrent identical submissions compile exactly once.
type cacheEntry struct {
	ready chan struct{}
	comp  *compiler.Compiled
	err   error
}

// Cache is the content-addressed compile cache of the simulation service:
// it stores, per CompileKey, the compiled TOGs plus the tile-latency table,
// so repeated or swept requests skip compilation (and even distinct models
// on the same core configuration reuse each other's kernel measurements
// through the shared per-core latency table).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// lat shares measured kernel latencies across compilations, keyed by
	// the core configuration they were measured on (latencies depend only
	// on npu.CoreConfig, not on the full machine).
	lat          map[string]map[string]int64
	hits, misses int64
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}, lat: map[string]map[string]int64{}}
}

// Stats reports cache hits and misses so far. A hit is any Compile call
// served by a finished or in-flight entry; a miss is a call that ran the
// compiler.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Compile returns the compilation for key, building it at most once per
// key across all concurrent callers. Errors are not cached: a failed build
// clears the entry so a later call can retry, and waiters on the failed
// entry receive the error without being counted as hits.
func (c *Cache) Compile(key string, cfg npu.Config, opts compiler.Options,
	build func() (*graph.Graph, error)) (*compiler.Compiled, bool, error) {

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e.comp, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	coreKey := CanonicalHash(cfg.Core)
	comp := compiler.New(cfg, opts)
	comp.SeedLatencies(c.lat[coreKey])
	c.mu.Unlock()

	e.comp, e.err = c.build(comp, build)
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		// Fold this compilation's measurements into the shared table.
		tbl := c.lat[coreKey]
		if tbl == nil {
			tbl = map[string]int64{}
			c.lat[coreKey] = tbl
		}
		for k, v := range comp.Latencies() {
			tbl[k] = v
		}
	}
	c.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	return e.comp, false, nil
}

func (c *Cache) build(comp *compiler.Compiler, build func() (*graph.Graph, error)) (*compiler.Compiled, error) {
	g, err := build()
	if err != nil {
		return nil, err
	}
	return comp.Compile(g)
}
