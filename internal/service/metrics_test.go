package service

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var metricsSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-?[0-9.eE+-]+)$`)

// TestMetricsEndpoint drives real jobs through the service and checks the
// /metrics surface: correct content type, parseable exposition, the
// job-latency histogram populated with one observation per job, and
// counter values that agree exactly with /stats (both render the same
// one-lock snapshot).
func TestMetricsEndpoint(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	svc.Start()
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	const n = 3
	for i := 0; i < n; i++ {
		j, err := svc.Submit(JobSpec{Model: "gemm", N: 64, NPU: "small"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(j.ID); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var buf strings.Builder
	if _, err := svc.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	st := svc.Stats()
	for _, want := range []string{
		fmt.Sprintf("ptsimd_jobs_submitted_total %d", st.Submitted),
		fmt.Sprintf("ptsimd_jobs_done_total %d", st.Done),
		"ptsimd_jobs_failed_total 0",
		fmt.Sprintf("ptsimd_compile_cache_hits_total %d", st.CacheHits),
		fmt.Sprintf("ptsimd_compile_cache_misses_total %d", st.CacheMisses),
		fmt.Sprintf("ptsimd_simulated_cycles_total %d", st.TotalCycles),
		"ptsimd_jobs_queued 0",
		"ptsimd_jobs_running 0",
		fmt.Sprintf("ptsimd_workers %d", st.Workers),
		fmt.Sprintf("ptsimd_queue_capacity %d", st.QueueDepth),
		"# TYPE ptsimd_queue_wait_seconds histogram",
		"# TYPE ptsimd_job_duration_seconds histogram",
		fmt.Sprintf(`ptsimd_job_duration_seconds_bucket{le="+Inf"} %d`, n),
		fmt.Sprintf("ptsimd_job_duration_seconds_count %d", n),
		fmt.Sprintf("ptsimd_queue_wait_seconds_count %d", n),
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !metricsSample.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

// TestJobResponseIncludesReport: a finished job's result carries the
// derived report, and its header matches the raw cycle count.
func TestJobResponseIncludesReport(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	svc.Start()
	defer svc.Close()
	j, err := svc.Submit(JobSpec{Model: "gemm", N: 64, NPU: "small"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := svc.Wait(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	rep := fin.Result.Report
	if rep == nil {
		t.Fatal("result has no report")
	}
	if rep.Cycles != fin.Result.Cycles {
		t.Fatalf("report cycles %d != result cycles %d", rep.Cycles, fin.Result.Cycles)
	}
	if len(rep.Cores) == 0 || len(rep.Jobs) == 0 || rep.Mem == nil {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.Jobs[0].ComputeCycles <= 0 {
		t.Fatalf("GEMM job must show compute cycles: %+v", rep.Jobs[0])
	}
	if rep.Mem.BandwidthUtil <= 0 || rep.Mem.BandwidthUtil > 1 {
		t.Fatalf("bandwidth utilization out of range: %+v", rep.Mem)
	}
}
