package service

import (
	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/sched"
	"repro/internal/service/modelzoo"
)

// SchedCompileFn adapts the content-addressed compile cache to the
// multi-tenant scheduler: the returned sched.CompileFn keys each
// (model, batch) by the same canonical hash the service uses, so scheduler
// sweeps (e.g. temporal vs spatial policy over the same request stream)
// and daemon jobs share one cache and each unique configuration compiles
// exactly once per process. build maps scheduler model names to graphs;
// pass nil to use the built-in model zoo.
func SchedCompileFn(cache *Cache, cfg npu.Config, opts compiler.Options,
	build func(model string, batch int) (*graph.Graph, error)) sched.CompileFn {
	if build == nil {
		build = func(model string, batch int) (*graph.Graph, error) {
			return modelzoo.BuildGraph(modelzoo.Spec{Model: model, Batch: batch})
		}
	}
	return func(model string, batch int) (sched.CompiledJob, error) {
		// Scheduler model names are free-form (callers may map arbitrary
		// names to graphs), so the name itself joins the hash alongside
		// the shape and machine.
		key := CanonicalHash(struct {
			Model string
			Batch int
		}{model, batch}, cfg, opts)
		comp, _, err := cache.Compile(key, cfg, opts, func() (*graph.Graph, error) {
			return build(model, batch)
		})
		if err != nil {
			return nil, err
		}
		return comp, nil
	}
}
