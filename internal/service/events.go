package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// JobEvent is one entry of a job's progress stream: a lifecycle state
// transition, or a coarse mid-run progress sample fed by the engine's
// observability probe. Events are advisory — the job record (Get/Wait) is
// the source of truth — so slow consumers lose progress samples, never
// final states arriving out of order (the stream closes after the terminal
// state event).
type JobEvent struct {
	Seq    int64  `json:"seq"`
	Kind   string `json:"kind"` // "state" or "progress"
	State  State  `json:"state,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Spans/Cycle describe progress events: engine spans completed so far
	// and the simulated cycle of the latest one.
	Spans int64 `json:"spans,omitempty"`
	Cycle int64 `json:"cycle,omitempty"`
	// Cycles is the final cycle count on the terminal "done" event.
	Cycles int64  `json:"cycles,omitempty"`
	Error  string `json:"error,omitempty"`
}

// progressEvery throttles probe-fed progress events: one event per this
// many engine spans keeps the stream light even for billion-cycle runs.
const progressEvery = 4096

// eventHub fans job events out to SSE subscribers. Publishing never
// blocks: a subscriber that cannot keep up drops events (the buffer holds
// the most recent window, and terminal states are always the last thing
// sent before close).
type eventHub struct {
	mu   sync.Mutex
	subs map[string][]chan JobEvent
	done map[string]bool
	seq  int64
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[string][]chan JobEvent{}, done: map[string]bool{}}
}

// subscribe returns a channel of events for the job and a cancel func.
// Subscribing to an already-finished job returns a closed channel: the
// caller renders the final job snapshot and ends the stream.
func (h *eventHub) subscribe(jobID string) (<-chan JobEvent, func()) {
	ch := make(chan JobEvent, 64)
	h.mu.Lock()
	if h.done[jobID] {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[jobID] = append(h.subs[jobID], ch)
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		subs := h.subs[jobID]
		for i, c := range subs {
			if c == ch {
				h.subs[jobID] = append(subs[:i], subs[i+1:]...)
				return
			}
		}
	}
	return ch, cancel
}

// publish sends ev to every subscriber of jobID, dropping on full buffers.
func (h *eventHub) publish(jobID string, ev JobEvent) {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	subs := h.subs[jobID]
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop rather than stall a worker
		}
	}
	h.mu.Unlock()
}

// finish closes every subscriber stream of jobID; later subscribers get a
// pre-closed channel.
func (h *eventHub) finish(jobID string) {
	h.mu.Lock()
	subs := h.subs[jobID]
	delete(h.subs, jobID)
	h.done[jobID] = true
	h.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// closeAll terminates every open stream (service shutdown).
func (h *eventHub) closeAll() {
	h.mu.Lock()
	subs := h.subs
	h.subs = map[string][]chan JobEvent{}
	h.mu.Unlock()
	for _, chans := range subs {
		for _, ch := range chans {
			close(ch)
		}
	}
}

// hasSubscribers reports whether anyone is listening to jobID right now.
func (h *eventHub) hasSubscribers(jobID string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs[jobID]) > 0
}

// progressProbe returns an obs.Probe that feeds throttled progress events
// to the job's subscribers, or nil when nobody is listening at run start
// (the nil probe keeps the engine hot path allocation-free). Probes are
// proven invisible in Results by the crosscheck probe oracle, so attaching
// one cannot change the job's outcome.
func (h *eventHub) progressProbe(jobID string) obs.Probe {
	if !h.hasSubscribers(jobID) {
		return nil
	}
	return &progressProbe{hub: h, job: jobID}
}

type progressProbe struct {
	hub   *eventHub
	job   string
	spans atomic.Int64
	cycle atomic.Int64
}

func (p *progressProbe) TrackName(t obs.Track, process, lane string) {}

func (p *progressProbe) Span(t obs.Track, name string, start, end int64, info obs.SpanInfo) {
	for {
		old := p.cycle.Load()
		if end <= old || p.cycle.CompareAndSwap(old, end) {
			break
		}
	}
	if n := p.spans.Add(1); n%progressEvery == 0 {
		p.hub.publish(p.job, JobEvent{Kind: "progress", Spans: n, Cycle: p.cycle.Load()})
	}
}

func (p *progressProbe) Counter(t obs.Track, name string, cycle int64, value float64) {}
