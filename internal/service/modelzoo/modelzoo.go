// Package modelzoo is the shared model-building and compile path used by
// both the ptsim CLI and the ptsimd simulation service: it maps a small,
// serializable Spec (model name + shape parameters) to a captured graph
// and a target NPU configuration, so every front end compiles and
// simulates through one code path.
package modelzoo

import (
	"fmt"
	"sort"

	"repro/internal/autograd"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/parallel"
	"repro/internal/topo"
)

// Spec identifies a built-in workload by name and shape. The zero values
// of Batch/N/Seq mean "default"; Normalize resolves them so that two specs
// describing the same workload compare (and hash) identically.
type Spec struct {
	Model   string // gemm, mlp, mlp-train, resnet18, resnet50, bert-base, bert-large, decoder-{tiny,small,base}
	Batch   int    // batch size (default 1)
	N       int    // GEMM dimension (model=gemm, default 512)
	Seq     int    // sequence length (BERT models, default 512)
	Ctx     int    // context length (decoder models, default 128)
	Prefill bool   // decoder models: prompt pass instead of a decode step

	// Topology names the topo.Preset the workload targets (default
	// "single"); Parallel selects the cross-package strategy
	// (none|data|tensor). Both are part of the canonical spec — the same
	// model compiled for different topologies or strategies is a different
	// artifact, so compile caches must key on them.
	Topology string
	Parallel string
}

// Normalize fills defaults and drops shape parameters the model ignores,
// so e.g. {Model: "gemm", Seq: 384} and {Model: "gemm"} produce the same
// canonical spec (Seq only matters to BERT).
func (s Spec) Normalize() Spec {
	if s.Batch <= 0 {
		s.Batch = 1
	}
	if s.N <= 0 {
		s.N = 512
	}
	if s.Seq <= 0 {
		s.Seq = 512
	}
	if s.Ctx <= 0 {
		s.Ctx = 128
	}
	switch s.Model {
	case "gemm":
		s.Batch, s.Seq, s.Ctx, s.Prefill = 1, 0, 0, false
	case "bert-base", "bert-large":
		s.N, s.Ctx, s.Prefill = 0, 0, false
	case "decoder-tiny", "decoder-small", "decoder-base":
		s.N, s.Seq = 0, 0
	default:
		s.N, s.Seq, s.Ctx, s.Prefill = 0, 0, 0, false
	}
	if s.Topology == "" {
		s.Topology = "single"
	}
	if s.Parallel == "" || s.Topology == "single" {
		s.Parallel = string(parallel.None)
	}
	return s
}

// Models lists the built-in model names, sorted.
func Models() []string {
	out := []string{"gemm", "mlp", "mlp-train", "resnet18", "resnet50", "bert-base", "bert-large",
		"decoder-tiny", "decoder-small", "decoder-base"}
	sort.Strings(out)
	return out
}

// Known reports whether model names a built-in workload, without building
// anything (cheap admission-time validation).
func Known(model string) bool {
	for _, m := range Models() {
		if m == model {
			return true
		}
	}
	return false
}

// BuildGraph captures the graph for a spec (the model zoo of Fig. 1).
func BuildGraph(s Spec) (*graph.Graph, error) {
	s = s.Normalize()
	switch s.Model {
	case "gemm":
		return exp.GEMMGraph(s.N), nil
	case "mlp":
		return nn.MLP(nn.DefaultMLP(s.Batch)).Graph, nil
	case "resnet18":
		return nn.ResNet(nn.ResNet18Config(s.Batch)).Graph, nil
	case "resnet50":
		return nn.ResNet(nn.ResNet50Config(s.Batch)).Graph, nil
	case "bert-base":
		return nn.BERT(nn.BERTBaseConfig(s.Batch, s.Seq)).Graph, nil
	case "bert-large":
		return nn.BERT(nn.BERTLargeConfig(s.Batch, s.Seq)).Graph, nil
	case "decoder-tiny":
		return nn.Decoder(nn.DecoderTinyConfig(s.Batch, s.Ctx, s.Prefill)).Graph, nil
	case "decoder-small":
		return nn.Decoder(nn.DecoderSmallConfig(s.Batch, s.Ctx, s.Prefill)).Graph, nil
	case "decoder-base":
		return nn.Decoder(nn.DecoderBaseConfig(s.Batch, s.Ctx, s.Prefill)).Graph, nil
	case "mlp-train":
		// One full training step (forward + backward + SGD updates), the
		// §5.5 per-iteration workload.
		m, lossID := nn.MLPWithLoss(nn.DefaultMLP(s.Batch))
		ts, err := autograd.Build(m.Graph, lossID, 0.05)
		if err != nil {
			return nil, err
		}
		return ts.Graph, nil
	default:
		return nil, fmt.Errorf("modelzoo: unknown model %q (have %v)", s.Model, Models())
	}
}

// Topology resolves the spec's topology preset against the target NPU's
// memory system (the monolithic HBM stack splits across packages).
func Topology(s Spec, mem npu.MemConfig) (topo.Config, error) {
	return topo.Preset(s.Normalize().Topology, mem)
}

// decoderConfig resolves a decoder spec's nn config (decoder models only).
func decoderConfig(s Spec) (nn.DecoderConfig, bool) {
	switch s.Model {
	case "decoder-tiny":
		return nn.DecoderTinyConfig(s.Batch, s.Ctx, s.Prefill), true
	case "decoder-small":
		return nn.DecoderSmallConfig(s.Batch, s.Ctx, s.Prefill), true
	case "decoder-base":
		return nn.DecoderBaseConfig(s.Batch, s.Ctx, s.Prefill), true
	}
	return nn.DecoderConfig{}, false
}

// BuildRankGraph captures the rank-0-normalized per-rank graph for a spec
// spread over `parts` packages: the plain graph when the strategy is none
// (or parts is 1), the replicated graph plus output all-reduce for data
// parallelism, and the Megatron-sharded decoder for tensor parallelism.
// One compile of this graph serves every rank (parallel.PlaceJobs rotates
// the placement).
func BuildRankGraph(s Spec, parts int) (*graph.Graph, error) {
	s = s.Normalize()
	strat, err := parallel.ParseStrategy(s.Parallel)
	if err != nil {
		return nil, err
	}
	if parts <= 1 || strat == parallel.None {
		return BuildGraph(s)
	}
	switch strat {
	case parallel.Data:
		g, err := BuildGraph(s)
		if err != nil {
			return nil, err
		}
		return parallel.DataParallel(g, parts), nil
	case parallel.Tensor:
		cfg, ok := decoderConfig(s)
		if !ok {
			return nil, fmt.Errorf("modelzoo: tensor parallelism supports decoder models, not %q", s.Model)
		}
		if cfg.Heads%parts != 0 || cfg.FFN%parts != 0 {
			return nil, fmt.Errorf("modelzoo: %s (heads=%d, ffn=%d) does not shard %d ways",
				s.Model, cfg.Heads, cfg.FFN, parts)
		}
		return nn.DecoderTP(cfg, parts).Graph, nil
	default:
		return nil, fmt.Errorf("modelzoo: unknown strategy %q", s.Parallel)
	}
}

// BuildFor captures the graph a spec compiles to on a machine with the
// given memory system: the plain model graph on single-package topologies,
// the rank-0-normalized per-rank graph (one rank per package) otherwise.
// Every compile path — CLI, service cache, serving iterations — funnels
// through this so a spec always means the same artifact.
func BuildFor(s Spec, mem npu.MemConfig) (*graph.Graph, error) {
	tc, err := Topology(s, mem)
	if err != nil {
		return nil, err
	}
	return BuildRankGraph(s, tc.Packages())
}

// NPUConfig resolves a named target NPU ("" and "tpuv3" → the paper's
// TPUv3-like machine, "small" → the scaled-down test machine).
func NPUConfig(name string) (npu.Config, error) {
	switch name {
	case "", "tpuv3":
		return npu.TPUv3Config(), nil
	case "small":
		return npu.SmallConfig(), nil
	default:
		return npu.Config{}, fmt.Errorf("modelzoo: unknown NPU config %q (tpuv3, small)", name)
	}
}
