package service

import "repro/internal/service/cache"

// CanonicalHash computes a stable content hash of the given values; see
// cache.CanonicalHash (the implementation moved into the leaf cache package
// so cmds and core can hash configurations without importing the service).
func CanonicalHash(vs ...any) string {
	return cache.CanonicalHash(vs...)
}
