package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/service/modelzoo"
)

// A batch of N identical submissions compiles exactly once (cache hit
// count N-1), every job reports the same cycle count, and that count is
// bit-identical to a standalone run through the same path ptsim uses.
func TestServiceCompilesOnceAndMatchesStandalone(t *testing.T) {
	svc := New(Config{Workers: 4, QueueDepth: 16})
	svc.Start()
	defer svc.Close()

	const n = 6
	spec := JobSpec{Model: "gemm", N: 64, NPU: "small"}
	ids := make([]string, n)
	for i := range ids {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	var cycles []int64
	for _, id := range ids {
		j, err := svc.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, j.State, j.Error)
		}
		cycles = append(cycles, j.Result.Cycles)
	}
	for i, c := range cycles {
		if c != cycles[0] {
			t.Fatalf("job %d: %d cycles, want %d", i, c, cycles[0])
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Fatalf("cache hits=%d misses=%d, want hits=%d misses=1", st.CacheHits, st.CacheMisses, n-1)
	}
	if st.Done != n || st.Failed != 0 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats %+v: want %d done and nothing else", st, n)
	}
	if st.TotalCycles != int64(n)*cycles[0] {
		t.Fatalf("TotalCycles=%d, want %d", st.TotalCycles, int64(n)*cycles[0])
	}

	// Standalone: exactly what cmd/ptsim -model gemm -n 64 -small does.
	cfg, _ := modelzoo.NPUConfig("small")
	g, err := modelzoo.BuildGraph(modelzoo.Spec{Model: "gemm", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	comp, err := sim.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.SimulateTLS(comp, core.SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	if cycles[0] != rep.Cycles {
		t.Fatalf("service reported %d cycles, standalone %d — must be bit-identical", cycles[0], rep.Cycles)
	}
}

// Submissions beyond queue capacity fail fast with the typed overload
// error — never by blocking. Workers are not started, so the queue cannot
// drain under us.
func TestServiceOverload(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 2})
	// No Start(): the queue fills deterministically.
	spec := JobSpec{Model: "gemm", N: 64, NPU: "small"}
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	_, err := svc.Submit(spec)
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("third submission: got %v, want *OverloadError", err)
	}
	if over.Capacity != 2 {
		t.Fatalf("overload capacity %d, want 2", over.Capacity)
	}
	// Draining the queue restores admission.
	svc.Start()
	st, err := svc.Submit(spec)
	if err == nil {
		if _, err := svc.Wait(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
}

func TestSubmitValidation(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 2})
	for _, spec := range []JobSpec{
		{Model: "no-such-model"},
		{Model: "gemm", NPU: "no-such-npu"},
		{Model: "gemm", Net: "no-such-net"},
		{Model: "gemm", DMA: "no-such-dma"},
	} {
		if _, err := svc.Submit(spec); err == nil {
			t.Errorf("spec %+v: accepted, want validation error", spec)
		}
	}
	if st := svc.Stats(); st.Queued != 0 {
		t.Fatalf("invalid specs consumed queue slots: %+v", st)
	}
}

// The HTTP layer: submit, poll to done, stats; 429 on overload, 400 on
// invalid specs, 404 on unknown ids.
func TestHTTPAPI(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	svc.Start()
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	resp, m := post(`{"model":"gemm","n":64,"npu":"small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d, want 202 (%v)", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", m)
	}
	if _, err := svc.Wait(id); err != nil {
		t.Fatal(err)
	}
	get, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(get.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if job.State != StateDone || job.Result == nil || job.Result.Cycles <= 0 {
		t.Fatalf("GET /jobs/%s: %+v", id, job)
	}

	if resp, _ := post(`{"model":"no-such-model"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid model: %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{broken json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON: %d, want 400", resp.StatusCode)
	}
	if get, _ := http.Get(ts.URL + "/jobs/job-999"); get.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", get.StatusCode)
	}
	stats, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if st.Done < 1 || st.TotalCycles <= 0 {
		t.Fatalf("GET /stats: %+v", st)
	}
}

// A full queue surfaces as HTTP 429 through the daemon API.
func TestHTTPOverload(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	// Workers not started: the one queue slot fills and stays full.
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	body := `{"model":"gemm","n":64,"npu":"small"}`
	first, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d, want 202", first.StatusCode)
	}
	second, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST: %d, want 429", second.StatusCode)
	}
	svc.Start()
	svc.Close()
}

// BenchmarkServiceWorkers compares serial (1 worker) against parallel
// simulation of the same distinct-job sweep — ≥2 workers beat serial
// wherever the host grants more than one hardware thread (on a 1-CPU
// container the lines coincide; the engines still interleave race-free).
// The cache is pre-warmed so the benchmark isolates simulation throughput.
func BenchmarkServiceWorkers(b *testing.B) {
	specs := make([]JobSpec, 8)
	for i := range specs {
		// N ≤ 80: larger tiles exceed the small config's scratchpad.
		specs[i] = JobSpec{Model: "gemm", N: 24 + 8*i, NPU: "small"}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc := New(Config{Workers: workers, QueueDepth: len(specs) * (b.N + 1)})
			svc.Start()
			defer svc.Close()
			warm := make([]string, len(specs))
			for i, s := range specs {
				j, err := svc.Submit(s)
				if err != nil {
					b.Fatal(err)
				}
				warm[i] = j.ID
			}
			for _, id := range warm {
				if j, err := svc.Wait(id); err != nil || j.State != StateDone {
					b.Fatalf("warmup %s: %v %+v", id, err, j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, len(specs))
				for k, s := range specs {
					j, err := svc.Submit(s)
					if err != nil {
						b.Fatal(err)
					}
					ids[k] = j.ID
				}
				for _, id := range ids {
					if _, err := svc.Wait(id); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestServiceEngineKnobs: engine_workers must not change reported cycles
// (bit-identical parallel engine), nodes_per_cycle must plumb through, and
// a job hitting its max_cycles guard must fail with error_kind "deadlock"
// and the full stuck-job diagnostic in the error body.
func TestServiceEngineKnobs(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16})
	svc.Start()
	defer svc.Close()

	base := JobSpec{Model: "gemm", N: 64, NPU: "small"}
	run := func(spec JobSpec) Job {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		j, err = svc.Wait(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	serial := run(base)
	if serial.State != StateDone {
		t.Fatalf("serial job failed: %q", serial.Error)
	}
	withKnobs := base
	withKnobs.EngineWorkers = 4
	withKnobs.NodesPerCycle = 512
	par := run(withKnobs)
	if par.State != StateDone {
		t.Fatalf("parallel job failed: %q", par.Error)
	}
	if par.Result.Cycles != serial.Result.Cycles {
		t.Fatalf("engine_workers=4 reported %d cycles, serial %d — must be bit-identical",
			par.Result.Cycles, serial.Result.Cycles)
	}

	stuck := base
	stuck.MaxCycles = 3 // guaranteed to trip the deadlock guard
	dead := run(stuck)
	if dead.State != StateFailed {
		t.Fatalf("max_cycles=3 job did not fail: state %s", dead.State)
	}
	if dead.ErrorKind != "deadlock" {
		t.Fatalf("error_kind = %q, want \"deadlock\" (error: %q)", dead.ErrorKind, dead.Error)
	}
	if !strings.Contains(dead.Error, "exceeded max cycles") {
		t.Fatalf("deadlock diagnostic missing from error body: %q", dead.Error)
	}

	if _, err := svc.Submit(JobSpec{Model: "gemm", N: 8, EngineWorkers: -1}); err == nil {
		t.Fatal("negative engine_workers accepted")
	}
}

// A serving job runs the continuous-batching loop through the shared
// compile cache and reports serving metrics: replayed decode steps at a
// settled shape must all be cache hits, and the serve counters accumulate.
func TestServiceServeJob(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	svc.Start()
	defer svc.Close()

	j, err := svc.Submit(JobSpec{Model: "decoder-tiny", NPU: "small",
		Serve: &ServeSpec{Requests: 2, Prompt: 4, Output: 4, MaxBatch: 2, KVBlock: 16, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := svc.Wait(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("serve job failed: %s %q", fin.State, fin.Error)
	}
	rep := fin.Result.ServeReport
	if rep == nil {
		t.Fatal("serve job has no ServeReport")
	}
	if rep.Requests != 2 || rep.TokensOut != 8 {
		t.Fatalf("requests %d tokens %d", rep.Requests, rep.TokensOut)
	}
	if rep.TokensPerSec <= 0 || rep.TTFTp50Ms <= 0 {
		t.Fatalf("degenerate serving report: %+v", rep)
	}
	// Every decode step past the first at a given shape hits the cache.
	if want := rep.DecodeSteps - int64(rep.DecodeShapes); rep.DecodeHits != want {
		t.Fatalf("decode hits %d, want %d (%d steps over %d shapes)",
			rep.DecodeHits, want, rep.DecodeSteps, rep.DecodeShapes)
	}
	st := svc.Stats()
	if st.ServeRequests != 2 || st.ServeTokens != 8 {
		t.Fatalf("serve stats %d/%d, want 2/8", st.ServeRequests, st.ServeTokens)
	}

	// Serve jobs are decoder-only; anything else is rejected at admission.
	if _, err := svc.Submit(JobSpec{Model: "gemm", Serve: &ServeSpec{}}); err == nil {
		t.Fatal("serve job on a non-decoder model must be rejected")
	}
}
