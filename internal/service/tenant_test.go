package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service/cache"
)

// A tenant that fills its share of the queue gets a typed per-tenant
// rejection naming it, while other tenants are still admitted — the
// noisy-neighbour admission contract.
func TestTenantOverloadTyped(t *testing.T) {
	// Not started: submissions stay queued, so the depths are exact.
	s := New(Config{Workers: 1, QueueDepth: 16, TenantQueueDepth: 2})
	defer s.Close()

	spec := JobSpec{Model: "gemm", N: 32, NPU: "small", Tenant: "noisy"}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(spec)
	var tover *TenantOverloadError
	if !errors.As(err, &tover) {
		t.Fatalf("third submit: got %v, want *TenantOverloadError", err)
	}
	if tover.Tenant != "noisy" {
		t.Fatalf("overload names tenant %q, want noisy", tover.Tenant)
	}
	// A generic OverloadError must NOT match: callers that switch on the
	// tenant-typed error first rely on the distinction.
	quiet := spec
	quiet.Tenant = "quiet"
	if _, err := s.Submit(quiet); err != nil {
		t.Fatalf("other tenant rejected during noisy overload: %v", err)
	}
	st := s.Stats()
	if st.TenantQueued["noisy"] != 2 || st.TenantQueued["quiet"] != 1 {
		t.Fatalf("tenant queue depths: %+v", st.TenantQueued)
	}
}

// With weighted-fair scheduling and one worker, a 3:1 tenant outweighs a
// 1:1 tenant: both heavy jobs start before either light job, and the
// per-tenant done counters record the split.
func TestTenantWeightedFairness(t *testing.T) {
	s := New(Config{Workers: 1, TenantWeights: map[string]int{"heavy": 3, "light": 1}})
	defer s.Close()

	// Enqueue before starting so the fair queue orders all four at once.
	var heavy, light []string
	for i := 0; i < 2; i++ {
		j, err := s.Submit(JobSpec{Model: "gemm", N: 32 + 8*i, NPU: "small", Tenant: "heavy"})
		if err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, j.ID)
		j, err = s.Submit(JobSpec{Model: "gemm", N: 48 + 8*i, NPU: "small", Tenant: "light"})
		if err != nil {
			t.Fatal(err)
		}
		light = append(light, j.ID)
	}
	s.Start()
	for _, id := range append(append([]string{}, heavy...), light...) {
		fin, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %s failed: %s", id, fin.Error)
		}
	}
	// One worker runs jobs strictly in pop order, so Started timestamps
	// order the schedule: virtual time puts heavy at 1/3, 2/3 ahead of
	// light at 1, 2.
	for _, h := range heavy {
		hj, _ := s.Get(h)
		for _, l := range light {
			lj, _ := s.Get(l)
			if !hj.Started.Before(lj.Started) {
				t.Fatalf("weight-3 job %s started %v, after weight-1 job %s at %v",
					h, hj.Started, l, lj.Started)
			}
		}
	}
	st := s.Stats()
	if st.TenantDone["heavy"] != 2 || st.TenantDone["light"] != 2 {
		t.Fatalf("tenant done counts: %+v", st.TenantDone)
	}
}

// The HTTP surface of per-tenant overload: 429 with the tenant named in
// both the X-Overloaded-Tenant header and the JSON body.
func TestHTTPTenantOverload(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, TenantQueueDepth: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	spec := `{"model":"gemm","n":32,"npu":"small","tenant":"bulk"}`
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Overloaded-Tenant"); got != "bulk" {
		t.Fatalf("X-Overloaded-Tenant = %q, want bulk", got)
	}
	var body struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tenant != "bulk" || body.Error == "" {
		t.Fatalf("429 body: %+v", body)
	}
}

// readSSE decodes every `data:` payload from an SSE stream.
func readSSE(t *testing.T, body *bufio.Reader) []JobEvent {
	t.Helper()
	var events []JobEvent
	for {
		line, err := body.ReadString('\n')
		if strings.HasPrefix(line, "data: ") {
			var ev JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			events = append(events, ev)
		}
		if err != nil {
			return events
		}
	}
}

// The /jobs/{id}/events stream delivers the job's lifecycle over SSE and
// terminates itself after the terminal state, which carries the final
// cycle count.
func TestHTTPJobEventsSSE(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"model":"gemm","n":64,"npu":"small","tenant":"sse"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, bufio.NewReader(stream.Body))
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.Kind != "state" || last.State != StateDone {
		t.Fatalf("stream did not end on done: %+v", last)
	}
	if last.Cycles <= 0 {
		t.Fatalf("terminal event has no cycle count: %+v", last)
	}
	if last.Tenant != "sse" {
		t.Fatalf("terminal event tenant = %q", last.Tenant)
	}

	// A late subscriber gets one synthetic terminal snapshot and the
	// stream closes immediately.
	fin, err := s.Wait(job.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("wait: %v %+v", err, fin)
	}
	late, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	lateEvents := readSSE(t, bufio.NewReader(late.Body))
	if len(lateEvents) != 1 || lateEvents[0].State != StateDone || lateEvents[0].Cycles != fin.Result.Cycles {
		t.Fatalf("late subscriber events: %+v", lateEvents)
	}

	// Unknown job: 404, not a stream.
	notFound, err := http.Get(srv.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: %d, want 404", notFound.StatusCode)
	}
}

// A long-enough run with a subscriber attached must surface "progress"
// events fed from the engine's obs probe — and attaching the probe must
// not change the result (the crosscheck probe oracle's claim, re-checked
// here end to end over HTTP).
func TestHTTPJobProgressEvents(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Submit while stopped, subscribe, then start: the subscriber is
	// guaranteed to be attached when the run begins, so the progress
	// probe is installed.
	spec := JobSpec{Model: "mlp", Batch: 4, NPU: "small"}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(srv.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	s.Start()
	events := readSSE(t, bufio.NewReader(stream.Body))
	progress := 0
	for _, ev := range events {
		if ev.Kind == "progress" {
			progress++
			if ev.Spans <= 0 || ev.Cycle <= 0 {
				t.Fatalf("empty progress event: %+v", ev)
			}
		}
	}
	if progress == 0 {
		t.Fatalf("no progress events among %d events", len(events))
	}
	fin, err := s.Wait(j.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("wait: %v %+v", err, fin)
	}

	// Same spec on a probe-free service: bit-identical cycles.
	plain := New(Config{Workers: 1})
	plain.Start()
	defer plain.Close()
	pj, err := plain.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	pfin, err := plain.Wait(pj.ID)
	if err != nil || pfin.State != StateDone {
		t.Fatalf("plain wait: %v %+v", err, pfin)
	}
	if fin.Result.Cycles != pfin.Result.Cycles {
		t.Fatalf("probe changed the result: %d vs %d cycles", fin.Result.Cycles, pfin.Result.Cycles)
	}
}

// The peer-cache wire endpoints: GET serves a checksummed envelope, PUT
// stores one, and a corrupt envelope is rejected without touching the
// store.
func TestHTTPCacheEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	// A peer tier (even with no peers to ask) wires up the local store
	// tier the wire endpoints serve.
	s.EnablePeerCache(cache.NewPeer(nil, 0))
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	payload := []byte("artifact-bytes")
	if err := s.CachePut("wire-key", payload); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/cache/wire-key")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache get: %d", resp.StatusCode)
	}
	if buf.Len() <= len(payload) {
		t.Fatalf("envelope not larger than payload: %d bytes", buf.Len())
	}

	miss, err := http.Get(srv.URL + "/cache/absent-key")
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("cache miss: %d, want 404", miss.StatusCode)
	}

	// Corrupt PUT: flip a byte inside a valid envelope.
	envelope := buf.Bytes()
	envelope[len(envelope)-1] ^= 1
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/cache/poisoned", bytes.NewReader(envelope))
	bad, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt put: %d, want 400", bad.StatusCode)
	}
	if _, ok := s.CacheGet("poisoned"); ok {
		t.Fatal("corrupt artifact was stored")
	}
}
