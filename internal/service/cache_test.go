package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/service/modelzoo"
)

// Distinct configurations must hash to distinct compile keys: different
// sequence lengths, different core counts, different compiler options.
func TestCompileKeyDistinct(t *testing.T) {
	base := modelzoo.Spec{Model: "bert-base", Batch: 1, Seq: 128}
	cfg := npu.TPUv3Config()
	opts := compiler.DefaultOptions()

	keys := map[string]string{}
	add := func(name, key string) {
		for prev, pk := range keys {
			if pk == key {
				t.Fatalf("%s collides with %s: %s", name, prev, key)
			}
		}
		keys[name] = key
	}
	add("base", CompileKey(base, cfg, opts))

	seq512 := base
	seq512.Seq = 512
	add("seq=512", CompileKey(seq512, cfg, opts))

	batch4 := base
	batch4.Batch = 4
	add("batch=4", CompileKey(batch4, cfg, opts))

	cores4 := cfg
	cores4.Cores = 4
	add("cores=4", CompileKey(base, cores4, opts))

	smallSA := cfg
	smallSA.Core.SARows = 64
	add("sarows=64", CompileKey(base, smallSA, opts))

	noFusion := opts
	noFusion.Fusion = false
	add("fusion=off", CompileKey(base, cfg, noFusion))

	mt64 := opts
	mt64.MaxMt = 64
	add("maxmt=64", CompileKey(base, cfg, mt64))

	gemm := modelzoo.Spec{Model: "gemm", N: 512}
	add("model=gemm", CompileKey(gemm, cfg, opts))
}

// Identical configurations built in different orders — struct fields
// assigned in a different sequence, map entries inserted in a different
// order, shape parameters the model ignores — must hash identically.
func TestCompileKeyCanonical(t *testing.T) {
	opts := compiler.DefaultOptions()

	// Same machine assembled two different ways.
	a := npu.TPUv3Config()
	var b npu.Config
	b.NoC = a.NoC
	b.Mem = a.Mem
	b.Core = a.Core
	b.Energy = a.Energy
	b.FreqMHz = a.FreqMHz
	b.Cores = a.Cores
	b.Name = a.Name
	spec := modelzoo.Spec{Model: "bert-base", Batch: 2, Seq: 384}
	if CompileKey(spec, a, opts) != CompileKey(spec, b, opts) {
		t.Fatal("same npu.Config assembled in different orders hashed differently")
	}

	// gemm ignores Seq and Batch: normalization must drop them.
	g1 := modelzoo.Spec{Model: "gemm", N: 256, Seq: 128, Batch: 3}
	g2 := modelzoo.Spec{Model: "gemm", N: 256}
	if CompileKey(g1, a, opts) != CompileKey(g2, a, opts) {
		t.Fatal("irrelevant shape parameters changed a gemm compile key")
	}

	// Map insertion order must not matter to the canonical hash.
	m1 := map[string]int64{}
	m2 := map[string]int64{}
	for i := 0; i < 32; i++ {
		m1[fmt.Sprintf("k%d", i)] = int64(i)
	}
	for i := 31; i >= 0; i-- {
		m2[fmt.Sprintf("k%d", i)] = int64(i)
	}
	if CanonicalHash(m1) != CanonicalHash(m2) {
		t.Fatal("map insertion order changed the canonical hash")
	}

	// And differing map contents must.
	m2["k0"] = 99
	if CanonicalHash(m1) == CanonicalHash(m2) {
		t.Fatal("differing map contents hashed identically")
	}
}

// N concurrent compiles of the same key run the compiler exactly once
// (singleflight), and every caller gets the same artifact.
func TestCacheSingleflight(t *testing.T) {
	cache := NewCache()
	cfg, _ := modelzoo.NPUConfig("small")
	opts := compiler.DefaultOptions()
	spec := modelzoo.Spec{Model: "gemm", N: 64}
	key := CompileKey(spec, cfg, opts)

	var builds int
	var mu sync.Mutex
	var wg sync.WaitGroup
	const callers = 8
	comps := make([]*compiler.Compiled, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comp, _, err := cache.Compile(key, cfg, opts, func() (*graph.Graph, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				return modelzoo.BuildGraph(spec)
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			comps[i] = comp
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("compiled %d times, want exactly 1", builds)
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want hits=%d misses=1", hits, misses, callers-1)
	}
	for i := 1; i < callers; i++ {
		if comps[i] != comps[0] {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
}

// Errors are not cached: a failed build clears the entry so a later call
// retries, and failed calls count as neither hits nor (lasting) entries.
func TestCacheErrorNotCached(t *testing.T) {
	cache := NewCache()
	cfg, _ := modelzoo.NPUConfig("small")
	opts := compiler.DefaultOptions()
	calls := 0
	build := func() (*graph.Graph, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return modelzoo.BuildGraph(modelzoo.Spec{Model: "gemm", N: 64})
	}
	if _, _, err := cache.Compile("k", cfg, opts, build); err == nil {
		t.Fatal("first compile should fail")
	}
	comp, hit, err := cache.Compile("k", cfg, opts, build)
	if err != nil || comp == nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if hit {
		t.Fatal("retry after failure reported a cache hit")
	}
}

// A compiler seeded with a previous compilation's tile-latency table skips
// the timing simulator entirely (MeasureCount stays 0) and produces the
// same latencies — the property that lets the cache persist the table.
func TestSeededCompilerSkipsMeasurement(t *testing.T) {
	cfg, _ := modelzoo.NPUConfig("small")
	opts := compiler.DefaultOptions()
	g, err := modelzoo.BuildGraph(modelzoo.Spec{Model: "gemm", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	c1 := compiler.New(cfg, opts)
	a, err := c1.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if c1.MeasureCount() == 0 {
		t.Fatal("first compile measured nothing")
	}

	c2 := compiler.New(cfg, opts)
	c2.SeedLatencies(c1.Latencies())
	b, err := c2.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if c2.MeasureCount() != 0 {
		t.Fatalf("seeded compile ran the timing simulator %d times, want 0", c2.MeasureCount())
	}
	for i := range a.TOGs {
		for k, v := range a.TOGs[i].TileLatencies {
			if bv := b.TOGs[i].TileLatencies[k]; bv != v {
				t.Fatalf("latency %q differs in seeded compile: %d vs %d", k, v, bv)
			}
		}
	}
}
