package topo

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/togsim"
)

// PackageStats is one package's traffic roll-up: bytes its cores moved to
// the local stack, bytes they moved to remote stacks, link serialization
// slots on out-edges of this package, and DMA cycles its local controller
// observed. Per-package energy derivation consumes exactly these counters.
type PackageStats struct {
	LocalBytes  int64
	RemoteBytes int64
	// LinkFlits counts serialization slots (LinkBytesPerCycle bytes each,
	// minimum one per edge traversal) on links leaving this package, so
	// summing over packages gives the fabric-wide LinkFlits exactly.
	LinkFlits int64
}

// Fabric implements togsim.Fabric over the topology tree: one FR-FCFS
// DRAM controller per package and per-direction occupancy on every mesh
// link, with remote requests store-and-forwarded hop by hop along the
// deterministic X-then-Y route. With two packages and NoCLatency zero it
// reproduces the pre-topology chiplet fabric bit-identically (its timing
// rules are a superset: a direct link is a one-hop route).
type Fabric struct {
	cfg   Config
	mems  []*dram.Memory
	cycle int64

	// Per-direction link occupancy: linkFree[from][to], allocated for every
	// ordered package pair but only neighbour entries are ever used.
	linkFree [][]int64

	// routes[a][b] is the package sequence of the a->b route.
	routes [][][]int

	// Per-package FIFOs of requests staged for DRAM submission after link
	// traversal, and the queue of load data returning over the links.
	toMem   [][]stagedReq
	returns sim.EventQueue[*togsim.MemReq]
	byDram  map[*dram.Request]*togsim.MemReq
	done    []*togsim.MemReq
	pending int

	// Stats (fabric-wide; Pkg holds the per-package split).
	LocalBytes, RemoteBytes int64
	// LinkFlits counts link serialization slots (LinkBytesPerCycle bytes
	// each, minimum one per hop), all edges and directions summed.
	LinkFlits int64
	Pkg       []PackageStats

	// Probe receives link traffic and occupancy counters on obs.LinkTrack
	// when non-nil (change-triggered; never affects timing).
	Probe       obs.Probe
	lastPending int
	lastBytes   int64
	lastFlits   int64
}

type stagedReq struct {
	at  int64
	req *dram.Request
	mr  *togsim.MemReq
}

// NewFabric builds the topology fabric with FR-FCFS controllers. The
// config must validate.
func NewFabric(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("topo.NewFabric: %v", err))
	}
	p := cfg.Packages()
	f := &Fabric{
		cfg:    cfg,
		byDram: map[*dram.Request]*togsim.MemReq{},
		toMem:  make([][]stagedReq, p),
		Pkg:    make([]PackageStats, p),
	}
	for i := 0; i < p; i++ {
		f.mems = append(f.mems, dram.New(cfg.MemPerPackage, dram.FRFCFS))
	}
	f.linkFree = make([][]int64, p)
	f.routes = make([][][]int, p)
	for i := range f.linkFree {
		f.linkFree[i] = make([]int64, p)
		f.routes[i] = make([][]int, p)
		for j := range f.routes[i] {
			f.routes[i][j] = cfg.Route(i, j)
		}
	}
	return f
}

// Config returns the topology this fabric was built from.
func (f *Fabric) Config() Config { return f.cfg }

// Mem returns package p's DRAM controller (for stats).
func (f *Fabric) Mem(p int) *dram.Memory { return f.mems[p] }

// MemTotals sums every package controller's DRAM stats (for fabric-wide
// bandwidth and energy accounting).
func (f *Fabric) MemTotals() *dram.Stats {
	var t dram.Stats
	for _, m := range f.mems {
		t.Reads += m.Stats.Reads
		t.Writes += m.Stats.Writes
		t.RowHits += m.Stats.RowHits
		t.RowMisses += m.Stats.RowMisses
		t.RowConflicts += m.Stats.RowConflicts
		t.TotalBytes += m.Stats.TotalBytes
		t.BusyCycles += m.Stats.BusyCycles
		t.QueueFullStalls += m.Stats.QueueFullStalls
	}
	return &t
}

// linkDelay accounts a transfer of n bytes along the route from package a
// to package b (store-and-forward per hop), returning the arrival time.
func (f *Fabric) linkDelay(a, b int, bytes int, now int64) int64 {
	t := now
	route := f.routes[a][b]
	for h := 0; h+1 < len(route); h++ {
		from, to := route[h], route[h+1]
		start := t
		if free := f.linkFree[from][to]; free > start {
			start = free
		}
		ser := int64(bytes) / f.cfg.LinkBytesPerCycle
		if ser < 1 {
			ser = 1
		}
		f.LinkFlits += ser
		f.Pkg[from].LinkFlits += ser
		f.linkFree[from][to] = start + ser
		t = start + ser + f.cfg.LinkLatency
	}
	return t
}

// Submit implements togsim.Fabric.
func (f *Fabric) Submit(r *togsim.MemReq) bool {
	src := f.cfg.PackageOfCore(r.Core)
	dst := f.cfg.PackageOf(r.Addr)
	local := src == dst

	if local {
		f.LocalBytes += int64(r.Bytes)
		f.Pkg[src].LocalBytes += int64(r.Bytes)
	} else {
		f.RemoteBytes += int64(r.Bytes)
		f.Pkg[src].RemoteBytes += int64(r.Bytes)
	}

	// The controller sees the local offset within its package's stack.
	dr := &dram.Request{
		Addr:    f.cfg.LocalOff(r.Addr),
		IsWrite: r.IsWrite,
		Src:     r.Src,
	}
	f.byDram[dr] = r
	at := f.cycle + 1 + f.cfg.NoCLatency
	if !local {
		// Request traverses the link path; stores carry data, loads a header.
		bytes := 8
		if r.IsWrite {
			bytes = r.Bytes
		}
		at = f.linkDelay(src, dst, bytes, f.cycle)
	}
	f.toMem[dst] = append(f.toMem[dst], stagedReq{at: at, req: dr, mr: r})
	f.pending++
	return true
}

// Tick implements togsim.Fabric.
func (f *Fabric) Tick() {
	f.cycle++
	// Release staged requests whose link traversal finished, per package,
	// in FIFO order; stop at a not-yet-due entry or a full controller.
	for p := range f.toMem {
		q := f.toMem[p]
		i := 0
		for ; i < len(q); i++ {
			if q[i].at > f.cycle {
				break
			}
			if !f.mems[p].Submit(q[i].req) {
				break
			}
		}
		if i > 0 {
			f.toMem[p] = append(q[:0], q[i:]...)
		}
	}

	for p, m := range f.mems {
		m.Tick()
		for _, dr := range m.Completed() {
			r := f.byDram[dr]
			delete(f.byDram, dr)
			if r == nil {
				continue
			}
			src := f.cfg.PackageOfCore(r.Core)
			if src == p || r.IsWrite {
				// Local completion, or write acknowledged at the controller.
				f.done = append(f.done, r)
				f.pending--
				continue
			}
			// Load data returns over the links; queue by arrival cycle.
			at := f.linkDelay(p, src, r.Bytes, f.cycle)
			if at <= f.cycle {
				at = f.cycle + 1
			}
			f.returns.Push(at, r)
		}
	}
	// Deliver link-returned loads due this cycle.
	n := len(f.done)
	f.done = f.returns.PopDue(f.cycle, f.done)
	f.pending -= len(f.done) - n
	if f.Probe != nil {
		if f.pending != f.lastPending {
			f.Probe.Counter(obs.LinkTrack, "topo.inflight", f.cycle, float64(f.pending))
			f.lastPending = f.pending
		}
		if b := f.LocalBytes + f.RemoteBytes; b != f.lastBytes {
			f.Probe.Counter(obs.LinkTrack, "topo.bytes_total", f.cycle, float64(b))
			f.lastBytes = b
		}
		if f.LinkFlits != f.lastFlits {
			f.Probe.Counter(obs.LinkTrack, "topo.link_flits_total", f.cycle, float64(f.LinkFlits))
			f.lastFlits = f.LinkFlits
		}
	}
}

// NextEvent implements togsim.Fabric. Each per-package staging FIFO's next
// activity is its head entry's arrival time (or next cycle when the head
// is already due but stalled on a full controller); beyond that the fabric
// wakes for link returns and the package DRAM controllers.
func (f *Fabric) NextEvent() int64 {
	if len(f.done) > 0 {
		return f.cycle + 1
	}
	next := f.returns.NextCycle()
	for p := range f.toMem {
		if q := f.toMem[p]; len(q) > 0 {
			at := q[0].at
			if at <= f.cycle {
				return f.cycle + 1
			}
			if at < next {
				next = at
			}
		}
	}
	for _, m := range f.mems {
		if e := m.NextEvent(); e < next {
			next = e
		}
	}
	if next <= f.cycle {
		return f.cycle + 1
	}
	return next
}

// SkipTo implements togsim.Fabric, advancing every package controller's
// clock in lock-step (link occupancy is kept in absolute cycles).
func (f *Fabric) SkipTo(cycle int64) {
	f.cycle = cycle
	for _, m := range f.mems {
		m.SkipTo(cycle)
	}
}

// Completed implements togsim.Fabric.
func (f *Fabric) Completed() []*togsim.MemReq {
	out := f.done
	f.done = nil
	return out
}

// Pending implements togsim.Fabric.
func (f *Fabric) Pending() int { return f.pending }

// Lookahead implements togsim.WindowFabric. A submission at cycle c is
// staged with arrival at earliest c+1 (local, before any NoC latency) or
// after at least one link serialization slot plus LinkLatency (remote),
// and a staged request reaches DRAM no earlier than its arrival cycle, so
// nothing submitted at c can complete before c+1.
func (f *Fabric) Lookahead() int64 {
	l := int64(1)
	if f.cfg.NoCLatency > 0 && f.cfg.Packages() == 1 {
		// Single package: every request pays the NoC latency.
		l += f.cfg.NoCLatency
	}
	return l
}

// NextDelivery implements togsim.WindowFabric: the earliest cycle any
// in-flight request could appear in Completed is bounded below by the
// already-delivered queue, the link-return queue, the staging FIFO heads,
// and the DRAM controllers' next events.
func (f *Fabric) NextDelivery() int64 {
	if len(f.done) > 0 {
		return f.cycle + 1
	}
	if f.pending == 0 {
		return sim.Never
	}
	next := f.returns.NextCycle()
	for p := range f.toMem {
		if q := f.toMem[p]; len(q) > 0 && q[0].at < next {
			next = q[0].at
		}
	}
	for _, m := range f.mems {
		if e := m.NextEvent(); e < next {
			next = e
		}
	}
	if next <= f.cycle {
		return f.cycle + 1
	}
	return next
}

// WindowSafe implements togsim.WindowFabric: Submit never refuses.
func (f *Fabric) WindowSafe() bool { return true }

var (
	_ togsim.Fabric       = (*Fabric)(nil)
	_ togsim.WindowFabric = (*Fabric)(nil)
)
