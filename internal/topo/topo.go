// Package topo describes the full hardware hierarchy of a scale-out NPU
// system as one validated tree: core ×N → package (cores + local HBM stack
// behind the on-package NoC) ×M → mesh (packages connected by narrow
// chiplet-style off-package links). The single-package machine and the
// §5.4 two-chiplet NPU are the M=1 and M=2 degenerate cases of the same
// config — internal/chiplet is now a thin shim over this package, and
// exp/fig9 reproduces its pre-refactor cycle counts bit-identically
// through it (see the equivalence tests).
//
// A Config is pure data: it can be named by a preset ("pkg2", "mesh2x2"),
// embedded in a job spec, and hashed into compile-cache keys. The timing
// model lives in Fabric (fabric.go).
package topo

import (
	"fmt"

	"repro/internal/npu"
)

// Config is the topology tree: MeshX×MeshY packages, each owning
// CoresPerPackage cores and one local HBM stack of MemPerPackage, joined
// by per-direction off-package links routed X-then-Y through the mesh.
type Config struct {
	// Name is the preset name this config was resolved from ("" when built
	// by hand). Purely descriptive.
	Name string `json:"name,omitempty"`

	// Mesh shape: MeshX*MeshY packages, package p at grid position
	// (p % MeshX, p / MeshX).
	MeshX int `json:"mesh_x"`
	MeshY int `json:"mesh_y"`

	// CoresPerPackage: engine core c belongs to package c/CoresPerPackage.
	CoresPerPackage int `json:"cores_per_package"`

	// MemPerPackage is one package's local HBM stack.
	MemPerPackage npu.MemConfig `json:"mem_per_package"`

	// PkgAddrBits: the DRAM address bit selecting the package; each package
	// owns 1<<PkgAddrBits bytes of the global physical address space.
	PkgAddrBits uint `json:"pkg_addr_bits"`

	// Off-package link parameters (per direction, per mesh edge). The §5.4
	// paper values are 19 cycles and 34 B/cycle at 940 MHz.
	LinkLatency       int64 `json:"link_latency"`
	LinkBytesPerCycle int64 `json:"link_bytes_per_cycle"`

	// NoCLatency is an extra on-package latency added to every local memory
	// submission. Zero keeps the fabric bit-identical to the pre-topology
	// chiplet fabric (which had no such term).
	NoCLatency int64 `json:"noc_latency,omitempty"`
}

// Packages returns the package count of the mesh.
func (c Config) Packages() int { return c.MeshX * c.MeshY }

// TotalCores returns the engine core count the topology describes.
func (c Config) TotalCores() int { return c.Packages() * c.CoresPerPackage }

// Validate rejects malformed trees.
func (c Config) Validate() error {
	if c.MeshX < 1 || c.MeshY < 1 {
		return fmt.Errorf("topo: mesh %dx%d must have positive dimensions", c.MeshX, c.MeshY)
	}
	if c.CoresPerPackage < 1 {
		return fmt.Errorf("topo: %d cores per package", c.CoresPerPackage)
	}
	if c.PkgAddrBits < 16 || c.PkgAddrBits > 48 {
		return fmt.Errorf("topo: package address bits %d outside [16,48]", c.PkgAddrBits)
	}
	if c.MemPerPackage.Channels < 1 {
		return fmt.Errorf("topo: package memory needs at least one channel")
	}
	if c.Packages() > 1 {
		if c.LinkLatency < 0 {
			return fmt.Errorf("topo: negative link latency %d", c.LinkLatency)
		}
		if c.LinkBytesPerCycle < 1 {
			return fmt.Errorf("topo: link bandwidth %d B/cycle must be positive", c.LinkBytesPerCycle)
		}
	}
	if c.NoCLatency < 0 {
		return fmt.Errorf("topo: negative NoC latency %d", c.NoCLatency)
	}
	return nil
}

// PackageBase returns the DRAM base address of package p's local stack.
func (c Config) PackageBase(p int) uint64 { return uint64(p) << c.PkgAddrBits }

// PackageOf returns the package owning a global DRAM address (clamped to
// the last package, matching the pre-topology chiplet fabric).
func (c Config) PackageOf(addr uint64) int {
	p := int(addr >> c.PkgAddrBits)
	if p >= c.Packages() {
		p = c.Packages() - 1
	}
	return p
}

// LocalOff returns the offset of a global address within its package stack.
func (c Config) LocalOff(addr uint64) uint64 { return addr & (1<<c.PkgAddrBits - 1) }

// PackageOfCore returns the package owning engine core `core` (clamped).
func (c Config) PackageOfCore(core int) int {
	p := core / c.CoresPerPackage
	if p >= c.Packages() {
		p = c.Packages() - 1
	}
	return p
}

// CoreOf returns the engine core index of package p's i-th core.
func (c Config) CoreOf(p, i int) int { return p*c.CoresPerPackage + i }

// coord returns package p's mesh grid position.
func (c Config) coord(p int) (x, y int) { return p % c.MeshX, p / c.MeshX }

// Route returns the directed package sequence from a to b under
// deterministic X-then-Y mesh routing: a, every intermediate hop, b.
// len(Route(a,b)) - 1 is the hop count; Route(a,a) is {a}.
func (c Config) Route(a, b int) []int {
	ax, ay := c.coord(a)
	bx, by := c.coord(b)
	path := []int{a}
	x, y := ax, ay
	for x != bx {
		if x < bx {
			x++
		} else {
			x--
		}
		path = append(path, y*c.MeshX+x)
	}
	for y != by {
		if y < by {
			y++
		} else {
			y--
		}
		path = append(path, y*c.MeshX+x)
	}
	return path
}

// RingOrder returns the package indices in collective-ring order: a snake
// over the mesh rows, so every consecutive pair is one hop apart (the
// wrap-around pair is one hop on multi-row meshes and crosses the chain on
// 1×N ones). mesh2x2 yields [0 1 3 2].
func (c Config) RingOrder() []int {
	order := make([]int, 0, c.Packages())
	for y := 0; y < c.MeshY; y++ {
		if y%2 == 0 {
			for x := 0; x < c.MeshX; x++ {
				order = append(order, y*c.MeshX+x)
			}
		} else {
			for x := c.MeshX - 1; x >= 0; x-- {
				order = append(order, y*c.MeshX+x)
			}
		}
	}
	return order
}

// RingPrev returns the package preceding package p in ring order — the
// neighbour a pull-based ring collective reads from.
func (c Config) RingPrev(p int) int {
	order := c.RingOrder()
	for i, q := range order {
		if q == p {
			return order[(i-1+len(order))%len(order)]
		}
	}
	return p
}

// Preset resolves a named topology against a base machine's memory system:
// the base HBM channels are divided evenly across packages (minimum one
// channel each), matching how the §5.4 study splits the monolithic stack.
//
//	single         1 package (no links)
//	pkg2           1x2 packages — the §5.4 two-chiplet configuration
//	meshXxY        X*Y packages, e.g. mesh2x2, mesh1x4
func Preset(name string, mem npu.MemConfig) (Config, error) {
	c := Config{
		Name:              name,
		CoresPerPackage:   1,
		PkgAddrBits:       32,
		LinkLatency:       19,
		LinkBytesPerCycle: 34,
	}
	switch name {
	case "single":
		c.MeshX, c.MeshY = 1, 1
	case "pkg2":
		c.MeshX, c.MeshY = 1, 2
	default:
		var x, y int
		if n, err := fmt.Sscanf(name, "mesh%dx%d", &x, &y); err != nil || n != 2 || x < 1 || y < 1 {
			return Config{}, fmt.Errorf("topo: unknown topology %q (single, pkg2, meshXxY)", name)
		}
		c.MeshX, c.MeshY = x, y
	}
	c.MemPerPackage = mem
	if ch := mem.Channels / c.Packages(); ch >= 1 {
		c.MemPerPackage.Channels = ch
	} else {
		c.MemPerPackage.Channels = 1
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
