package topo_test

import (
	"reflect"
	"testing"

	"repro/internal/npu"
	"repro/internal/tog"
	"repro/internal/togsim"
	"repro/internal/topo"
)

func testTopo(name string, t *testing.T) topo.Config {
	t.Helper()
	base := npu.SmallConfig()
	tc, err := topo.Preset(name, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	tc.PkgAddrBits = 24
	return tc
}

func TestPresets(t *testing.T) {
	base := npu.SmallConfig()
	for name, pkgs := range map[string]int{"single": 1, "pkg2": 2, "mesh2x2": 4, "mesh1x4": 4, "mesh4x2": 8} {
		tc, err := topo.Preset(name, base.Mem)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tc.Packages() != pkgs {
			t.Fatalf("%s: %d packages, want %d", name, tc.Packages(), pkgs)
		}
		if err := tc.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tc.MemPerPackage.Channels < 1 {
			t.Fatalf("%s: no channels", name)
		}
		if tc.MemPerPackage.Channels*tc.Packages() > base.Mem.Channels && tc.MemPerPackage.Channels != 1 {
			t.Fatalf("%s: per-package channels %d oversubscribe the %d-channel base",
				name, tc.MemPerPackage.Channels, base.Mem.Channels)
		}
	}
	if _, err := topo.Preset("donut", base.Mem); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestRouteAndRing(t *testing.T) {
	tc := testTopo("mesh2x2", t)
	// Packages: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).
	if got := tc.Route(0, 3); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("route 0->3 = %v", got)
	}
	if got := tc.Route(3, 0); !reflect.DeepEqual(got, []int{3, 2, 0}) {
		t.Fatalf("route 3->0 = %v", got)
	}
	if got := tc.Route(2, 2); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("route 2->2 = %v", got)
	}
	if got := tc.RingOrder(); !reflect.DeepEqual(got, []int{0, 1, 3, 2}) {
		t.Fatalf("ring order = %v", got)
	}
	if tc.RingPrev(0) != 2 || tc.RingPrev(1) != 0 || tc.RingPrev(3) != 1 || tc.RingPrev(2) != 3 {
		t.Fatalf("ring prev wrong: %d %d %d %d",
			tc.RingPrev(0), tc.RingPrev(1), tc.RingPrev(3), tc.RingPrev(2))
	}
	// Every consecutive ring pair on a 2-row mesh is a single hop.
	order := tc.RingOrder()
	for i, p := range order {
		q := order[(i+1)%len(order)]
		if hops := len(tc.Route(p, q)) - 1; hops != 1 {
			t.Fatalf("ring edge %d->%d spans %d hops", p, q, hops)
		}
	}
}

func TestAddressMap(t *testing.T) {
	tc := testTopo("mesh1x4", t)
	for p := 0; p < tc.Packages(); p++ {
		if got := tc.PackageOf(tc.PackageBase(p) + 123); got != p {
			t.Fatalf("PackageOf(base %d) = %d", p, got)
		}
	}
	if tc.PackageOf(tc.PackageBase(17)) != tc.Packages()-1 {
		t.Fatal("out-of-range addresses must clamp to the last package")
	}
	if tc.LocalOff(tc.PackageBase(2)+999) != 999 {
		t.Fatal("LocalOff must strip the package bits")
	}
	if tc.PackageOfCore(2) != 2 || tc.PackageOfCore(99) != tc.Packages()-1 {
		t.Fatal("core mapping wrong")
	}
}

// loadJob builds a load-heavy job on `core` streaming `tiles` 4 KiB tiles
// from `base`.
func loadJob(name string, core int, tiles int64, base uint64) *togsim.Job {
	b := tog.NewBuilder(name, "in")
	desc := npu.DMADesc{Rows: 8, Cols: 128}
	tileBytes := int64(desc.TotalBytes())
	b.Loop("i", 0, tiles, 1)
	b.Load("in", desc, tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "i", Coeff: tileBytes}}}, 0, 0)
	b.Wait(0)
	b.Compute(tog.UnitSA, 20)
	b.EndLoop()
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &togsim.Job{
		Name: name, TOGs: []*tog.TOG{g},
		Bases: []map[string]uint64{{"in": base}},
		Core:  core, Src: core,
	}
}

func runOn(t *testing.T, tc topo.Config, workers int, strict bool, jobs func() []*togsim.Job) (togsim.Result, *topo.Fabric) {
	t.Helper()
	cfg := npu.SmallConfig()
	cfg.Cores = tc.TotalCores()
	f := topo.NewFabric(tc)
	eng := togsim.NewEngine(cfg, f)
	eng.Workers = workers
	eng.StrictTick = strict
	res, err := eng.Run(jobs())
	if err != nil {
		t.Fatal(err)
	}
	return res, f
}

// TestChainHopsCostMore: on a 1x4 chain, pulling from a 3-hop-distant stack
// must cost more cycles and more link flits than from the adjacent one.
func TestChainHopsCostMore(t *testing.T) {
	tc := testTopo("mesh1x4", t)
	near, fn := runOn(t, tc, 0, false, func() []*togsim.Job {
		return []*togsim.Job{loadJob("near", 0, 32, tc.PackageBase(1))}
	})
	far, ff := runOn(t, tc, 0, false, func() []*togsim.Job {
		return []*togsim.Job{loadJob("far", 0, 32, tc.PackageBase(3))}
	})
	if far.Cycles <= near.Cycles {
		t.Fatalf("3-hop remote (%d) must be slower than 1-hop (%d)", far.Cycles, near.Cycles)
	}
	if ff.LinkFlits <= fn.LinkFlits {
		t.Fatalf("3-hop transfer should serialize more flits: %d vs %d", ff.LinkFlits, fn.LinkFlits)
	}
	if fn.LocalBytes != 0 || ff.LocalBytes != 0 {
		t.Fatal("remote-only jobs must not count local bytes")
	}
}

// TestEngineModesBitIdentical: one mesh2x2 workload through the
// event-driven, strict-tick, and parallel (workers=4) engines must produce
// identical results and identical fabric stats.
func TestEngineModesBitIdentical(t *testing.T) {
	tc := testTopo("mesh2x2", t)
	jobs := func() []*togsim.Job {
		return []*togsim.Job{
			loadJob("a", 0, 24, tc.PackageBase(1)),
			loadJob("b", 1, 24, tc.PackageBase(3)),
			loadJob("c", 2, 24, tc.PackageBase(2)),
			loadJob("d", 3, 24, tc.PackageBase(0)),
		}
	}
	ev, fe := runOn(t, tc, 0, false, jobs)
	st, fs := runOn(t, tc, 0, true, jobs)
	pw, fp := runOn(t, tc, 4, false, jobs)
	if !reflect.DeepEqual(ev, st) {
		t.Fatalf("event vs strict diverge:\n%+v\n%+v", ev, st)
	}
	if !reflect.DeepEqual(ev, pw) {
		t.Fatalf("event vs workers=4 diverge:\n%+v\n%+v", ev, pw)
	}
	for _, f := range []*topo.Fabric{fs, fp} {
		if f.LocalBytes != fe.LocalBytes || f.RemoteBytes != fe.RemoteBytes || f.LinkFlits != fe.LinkFlits {
			t.Fatalf("fabric stats diverge across engine modes")
		}
		if !reflect.DeepEqual(f.Pkg, fe.Pkg) {
			t.Fatalf("per-package stats diverge across engine modes")
		}
	}
	if fe.RemoteBytes == 0 || fe.LinkFlits == 0 {
		t.Fatal("workload should exercise the links")
	}
}

// collJob hand-builds one rank of an expanded 2-party all-reduce: the
// region marker, then the ring schedule (pull the peer's chunk, add it
// into the local buffer, store the result), then the region end. `peer`
// is the ring predecessor's buffer base on its home package.
func collJob(name string, core int, local, peer uint64, payload int64) *togsim.Job {
	b := tog.NewBuilder(name)
	desc := npu.DMADesc{Rows: 1, Cols: int(payload)}
	b.BeginCollective(tog.AllReduce, "buf", "peer:buf", 2, payload)
	b.Load("peer:buf", desc, tog.AddrExpr{}, 1, 0)
	b.Wait(1)
	b.Compute(tog.UnitVector, payload/4)
	b.Store("buf", desc, tog.AddrExpr{}, 2, 0)
	b.Wait(2)
	b.EndCollective()
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &togsim.Job{
		Name: name, TOGs: []*tog.TOG{g},
		Bases: []map[string]uint64{{"buf": local, "peer:buf": peer}},
		Core:  core, Src: core,
	}
}

// TestCollectiveRegionAccounting: an expanded all-reduce region runs
// bit-identically across all three engine modes, attributes its cycles to
// JobResult.CollectiveCycles, and moves bytes over the package link.
func TestCollectiveRegionAccounting(t *testing.T) {
	tc := testTopo("pkg2", t)
	const payload = 4096
	jobs := func() []*togsim.Job {
		return []*togsim.Job{
			collJob("rank0", 0, tc.PackageBase(0), tc.PackageBase(1)+1<<16, payload),
			collJob("rank1", 1, tc.PackageBase(1)+1<<16, tc.PackageBase(0), payload),
		}
	}
	ev, fe := runOn(t, tc, 0, false, jobs)
	st, _ := runOn(t, tc, 0, true, jobs)
	pw, _ := runOn(t, tc, 2, false, jobs)
	if !reflect.DeepEqual(ev, st) || !reflect.DeepEqual(ev, pw) {
		t.Fatalf("collective diverges across engine modes:\n%+v\n%+v\n%+v", ev, st, pw)
	}
	for _, jr := range ev.Jobs {
		if jr.Collectives != 1 {
			t.Fatalf("%s: %d collective regions, want 1", jr.Name, jr.Collectives)
		}
		if jr.CollectiveCycles <= 0 || jr.CollectiveCycles > jr.End-jr.Start {
			t.Fatalf("%s: collective cycles %d outside (0, %d]", jr.Name, jr.CollectiveCycles, jr.End-jr.Start)
		}
	}
	if fe.LinkFlits == 0 || fe.RemoteBytes == 0 {
		t.Fatal("all-reduce must cross the package link")
	}
}

// TestUnexpandedCollectiveRejected: a marker the compiler never lowered
// must abort the run, not silently cost zero cycles.
func TestUnexpandedCollectiveRejected(t *testing.T) {
	tc := testTopo("pkg2", t)
	b := tog.NewBuilder("raw")
	b.BeginCollective(tog.AllReduce, "buf", "", 2, 64)
	b.EndCollective()
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g.Nodes[0].Expanded = false
	cfg := npu.SmallConfig()
	cfg.Cores = tc.TotalCores()
	eng := togsim.NewEngine(cfg, topo.NewFabric(tc))
	_, err = eng.Run([]*togsim.Job{{
		Name: "raw", TOGs: []*tog.TOG{g},
		Bases: []map[string]uint64{{"buf": 0}}, Core: 0,
	}})
	if err == nil {
		t.Fatal("unexpanded collective must error")
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	base := npu.SmallConfig()
	good, _ := topo.Preset("pkg2", base.Mem)
	for _, mut := range []func(*topo.Config){
		func(c *topo.Config) { c.MeshX = 0 },
		func(c *topo.Config) { c.CoresPerPackage = 0 },
		func(c *topo.Config) { c.PkgAddrBits = 8 },
		func(c *topo.Config) { c.MemPerPackage.Channels = 0 },
		func(c *topo.Config) { c.LinkBytesPerCycle = 0 },
		func(c *topo.Config) { c.NoCLatency = -1 },
	} {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %+v must fail validation", c)
		}
	}
}
