package fleet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/service"
)

// Killing a member mid-batch loses nothing: the coordinator re-dispatches
// the stranded jobs, every job completes exactly once, and every result is
// bit-identical to a single-node run of the same specs. Small enough to run
// under -race in tier-1.
func TestChaosKillMemberMidBatch(t *testing.T) {
	specs := make([]service.JobSpec, 0, 12)
	tenants := []string{"a", "b", "c"}
	for i := 0; i < 12; i++ {
		specs = append(specs, service.JobSpec{
			Model: "gemm", N: 24 + 4*i, NPU: "small",
			Tenant: tenants[i%len(tenants)], Priority: i % 2,
		})
	}

	single := service.New(service.Config{Workers: 2})
	single.Start()
	want := map[int]service.JobResult{}
	for i, spec := range specs {
		j, err := single.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := single.Wait(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("single-node job %d failed: %s", i, fin.Error)
		}
		want[i] = fin.Result.Canonical()
	}
	single.Close()

	fl, err := StartLocal(LocalOptions{
		N: 3, Workers: 1,
		Dispatchers:    2, // keep the batch in flight long enough to be killed under
		HealthInterval: 20 * time.Millisecond,
		MaxAttempts:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	// Find the member that owns the most jobs — the highest-impact victim.
	ownCount := map[int]int{}
	for _, spec := range specs {
		key, err := service.ContentKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		ownCount[fl.OwnerIndex(key)]++
	}
	victim, best := 0, -1
	for i, n := range ownCount {
		if n > best {
			victim, best = i, n
		}
	}

	ids := make([]string, len(specs))
	for i, spec := range specs {
		j, err := fl.Coord.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}

	// Kill the victim once the batch is genuinely mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := fl.Coord.Stats()
		if st.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	fl.KillMember(victim)
	t.Logf("killed member %d (owned %d of %d jobs)", victim, best, len(specs))

	redispatched := 0
	for i, id := range ids {
		fin, err := fl.Coord.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("job %d (%s) failed after kill: %s", i, id, fin.Error)
		}
		if fin.Attempts > 1 {
			redispatched++
			if fin.Member == fl.MemberName(victim) {
				t.Errorf("job %d re-dispatched back onto the dead member %s", i, fin.Member)
			}
		}
		if got := fin.Result.Canonical(); !reflect.DeepEqual(got, want[i]) {
			t.Errorf("job %d: post-chaos result differs from single node:\nfleet:  %+v\nsingle: %+v",
				i, got, want[i])
		}
	}
	st := fl.Coord.Stats()
	if st.Done != int64(len(specs)) || st.Failed != 0 {
		t.Fatalf("loss after member kill: %+v", st)
	}
	if st.DuplicateCompletions != 0 {
		t.Fatalf("%d duplicate completions", st.DuplicateCompletions)
	}
	// The kill must actually have been observable (some jobs either
	// re-dispatched or the victim had finished its share before dying);
	// requeues are expected but not guaranteed if the victim drained first.
	t.Logf("stats after chaos: done=%d requeued=%d redispatched_jobs=%d members_up=%d",
		st.Done, st.Requeued, redispatched, st.MembersUp)
	if st.MembersUp != 2 {
		// Health probes may need a beat to notice; poll briefly.
		ok := false
		for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
			if fl.Coord.Stats().MembersUp == 2 {
				ok = true
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("dead member still counted up: %+v", fl.Coord.Stats())
		}
	}
}

// Exhausting every member fails the job with a terminal error instead of
// hanging.
func TestChaosAllMembersDead(t *testing.T) {
	fl, err := StartLocal(LocalOptions{
		N: 2, Workers: 1,
		HealthInterval: 10 * time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fl.KillMember(0)
	fl.KillMember(1)

	j, err := fl.Coord.Submit(service.JobSpec{Model: "gemm", N: 40, NPU: "small"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Job, 1)
	go func() {
		fin, _ := fl.Coord.Wait(j.ID)
		done <- fin
	}()
	select {
	case fin := <-done:
		if fin.State != service.StateFailed || fin.Error == "" {
			t.Fatalf("job against dead fleet: %+v", fin)
		}
	case <-time.After(30 * time.Second):
		t.Fatal(fmt.Errorf("job against dead fleet hung"))
	}
}
