package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/sched"
	"repro/internal/service"
)

// Config sizes a coordinator.
type Config struct {
	// Members is the fleet: names must match the ring every member's peer
	// cache resolver was built over, or routing and cache locality disagree.
	Members []Member
	// QueueDepth bounds the coordinator's admission queue across tenants
	// (default 256); TenantQueueDepth bounds one tenant's share (0 = all).
	QueueDepth       int
	TenantQueueDepth int
	// TenantWeights sets weighted-fair dispatch shares (absent tenants
	// weigh 1), mirroring the per-member service queues.
	TenantWeights map[string]int
	// Dispatchers is the number of concurrent dispatch loops
	// (default 2 per member): each owns a job end to end — submit to the
	// routed member, poll, re-dispatch on member death, finish.
	Dispatchers int
	// PollInterval is the result-poll period (default 5ms); HealthInterval
	// the member probe period (default 250ms).
	PollInterval   time.Duration
	HealthInterval time.Duration
	// MaxAttempts bounds dispatch attempts per job across members
	// (default 3).
	MaxAttempts int
	// Timeout bounds each member HTTP round trip (default 10s).
	Timeout time.Duration
	// ResultFault, when set, mutates every result arriving from a member
	// before the coordinator records it — the fault-injection hook the
	// fleet crosscheck oracle uses to prove it would catch a member
	// returning corrupt results. Never set outside tests.
	ResultFault func(member string, res *service.JobResult)
}

// Job is the coordinator's record of one fleet submission. Snapshots are
// returned to callers; the live record is mutated only by the coordinator.
type Job struct {
	ID   string          `json:"id"`
	Spec service.JobSpec `json:"spec"`
	// Key is the compile content address the job was routed by: jobs with
	// equal keys land on the same member's warm caches.
	Key   string        `json:"compile_key"`
	State service.State `json:"state"`
	// Member is the fleet member that ran (or is running) the job;
	// Attempts counts dispatches, so >1 means the job survived a member
	// death by re-dispatch.
	Member   string             `json:"member,omitempty"`
	Attempts int                `json:"attempts,omitempty"`
	Error    string             `json:"error,omitempty"`
	Result   *service.JobResult `json:"result,omitempty"`

	tenant   string
	tried    map[string]bool // members that failed this job already
	finished bool
	done     chan struct{}
}

// Stats is the coordinator's observability surface: its own routing
// counters plus a merged view of the member fleet (summed from the health
// loop's cached /stats snapshots).
type Stats struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	// Requeued counts re-dispatches after a member rejection or death;
	// DuplicateCompletions counts finish attempts on already-finished jobs
	// (always 0 — the chaos test pins it).
	Requeued             int64 `json:"requeued"`
	DuplicateCompletions int64 `json:"duplicate_completions"`

	MembersUp int                    `json:"members_up"`
	Members   map[string]MemberStats `json:"members"`

	TenantQueued map[string]int64 `json:"tenant_queued,omitempty"`
	TenantDone   map[string]int64 `json:"tenant_done,omitempty"`

	// Fleet merges the member snapshots: cache and peer traffic, kernel
	// measurements, and simulated cycles summed across the fleet.
	Fleet FleetTotals `json:"fleet"`
}

// MemberStats is one member's entry in the coordinator's stats.
type MemberStats struct {
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	Dispatched int64  `json:"dispatched"`
	// Service is the member's last /stats snapshot (nil before the first
	// successful health probe).
	Service *service.Stats `json:"service,omitempty"`
}

// FleetTotals sums member counters from their last health snapshots.
type FleetTotals struct {
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	DiskHits        int64 `json:"disk_hits"`
	PeerHits        int64 `json:"peer_hits"`
	PeerMisses      int64 `json:"peer_misses"`
	PeerPuts        int64 `json:"peer_puts"`
	PeerErrors      int64 `json:"peer_errors"`
	KernelsMeasured int64 `json:"kernels_measured"`
	TotalCycles     int64 `json:"total_cycles"`
	JobsDone        int64 `json:"jobs_done"`
}

// Coordinator shards jobs across a fleet of ptsimd members by the
// consistent hash of each job's compile content address. It owns admission
// (weighted-fair, per-tenant bounds), dispatch with bounded retry, health
// checking, re-dispatch of jobs stranded on dead members, and the
// fleet-merged stats/metrics surface.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	members map[string]*memberState
	order   []string // member names, sorted, for stable iteration

	queue  *sched.FairQueue[*Job]
	events *hub
	reg    *metrics.Registry

	mu         sync.Mutex
	byID       map[string]*Job
	nextID     int64
	closed     bool
	submitted  int64
	running    int64
	done       int64
	failed     int64
	requeued   int64
	dup        int64
	tenantDone map[string]int64

	wg       sync.WaitGroup
	stopped  chan struct{}
	stopOnce sync.Once
}

// NewCoordinator returns a stopped coordinator; call Start to launch the
// dispatchers and health loop.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("fleet: coordinator needs at least one member")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Dispatchers <= 0 {
		cfg.Dispatchers = 2 * len(cfg.Members)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	names := make([]string, 0, len(cfg.Members))
	members := map[string]*memberState{}
	for _, m := range cfg.Members {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("fleet: member needs name and URL, got %+v", m)
		}
		if members[m.Name] != nil {
			return nil, fmt.Errorf("fleet: duplicate member name %q", m.Name)
		}
		members[m.Name] = newMemberState(m, cfg.Timeout)
		names = append(names, m.Name)
	}
	sort.Strings(names)
	weight := func(tenant string) int { return cfg.TenantWeights[tenant] }
	c := &Coordinator{
		cfg:        cfg,
		ring:       NewRing(names),
		members:    members,
		order:      names,
		queue:      sched.NewFairQueue[*Job](cfg.QueueDepth, cfg.TenantQueueDepth, weight),
		events:     newHub(),
		reg:        metrics.NewRegistry(),
		byID:       map[string]*Job{},
		tenantDone: map[string]int64{},
		stopped:    make(chan struct{}),
	}
	c.reg.Register(metrics.CollectorFunc(c.collect))
	return c, nil
}

// Start launches the dispatch loops and the health prober.
func (c *Coordinator) Start() {
	for i := 0; i < c.cfg.Dispatchers; i++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for {
				j, ok := c.queue.Pop()
				if !ok {
					return
				}
				c.runJob(j)
			}
		}()
	}
	c.wg.Add(1)
	go c.healthLoop()
}

// Close drains the queue, waits for in-flight jobs, and stops the prober.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.queue.Close()
	c.stopOnce.Do(func() { close(c.stopped) })
	c.wg.Wait()
	c.events.closeAll()
}

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopped:
			return
		case <-t.C:
			for _, name := range c.order {
				c.members[name].probe()
			}
		}
	}
}

// Submit admits one job. The spec is resolved immediately — both to reject
// invalid jobs at the door and to compute the routing key. Queue-full maps
// to the same typed overload errors the single-node service returns.
func (c *Coordinator) Submit(spec service.JobSpec) (Job, error) {
	key, err := service.ContentKey(spec)
	if err != nil {
		return Job{}, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Job{}, errors.New("fleet: coordinator is shut down")
	}
	c.nextID++
	j := &Job{
		ID:     fmt.Sprintf("f%d", c.nextID),
		Spec:   spec,
		Key:    key,
		State:  service.StateQueued,
		tenant: spec.Tenant,
		tried:  map[string]bool{},
		done:   make(chan struct{}),
	}
	c.byID[j.ID] = j
	c.submitted++
	c.mu.Unlock()

	if err := c.queue.Push(spec.Tenant, spec.Priority, j); err != nil {
		c.mu.Lock()
		delete(c.byID, j.ID)
		c.submitted--
		c.mu.Unlock()
		var qerr *sched.QueueOverloadError
		if errors.As(err, &qerr) && qerr.Tenant != "" {
			return Job{}, &service.TenantOverloadError{Tenant: qerr.Tenant, Capacity: qerr.Capacity}
		}
		if errors.As(err, &qerr) {
			return Job{}, &service.OverloadError{Capacity: qerr.Capacity}
		}
		return Job{}, err
	}
	c.events.publish(j.ID, Event{Kind: "state", State: service.StateQueued})
	return c.snapshot(j), nil
}

// Get returns a snapshot of one job.
func (c *Coordinator) Get(id string) (Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.byID[id]
	if !ok {
		return Job{}, false
	}
	return c.snapshotLocked(j), true
}

// Wait blocks until the job finishes and returns its final snapshot.
func (c *Coordinator) Wait(id string) (Job, error) {
	c.mu.Lock()
	j, ok := c.byID[id]
	c.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("fleet: unknown job %s", id)
	}
	<-j.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked(j), nil
}

func (c *Coordinator) snapshot(j *Job) Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked(j)
}

// snapshotLocked copies the caller-visible fields under c.mu.
func (c *Coordinator) snapshotLocked(j *Job) Job {
	cp := Job{
		ID: j.ID, Spec: j.Spec, Key: j.Key, State: j.State,
		Member: j.Member, Attempts: j.Attempts, Error: j.Error,
	}
	if j.Result != nil {
		r := *j.Result
		cp.Result = &r
	}
	return cp
}

// runJob owns one job end to end: walk the key's ring preference order,
// submit to the first live member not already tried, poll for the result,
// and on member death re-dispatch until MaxAttempts is exhausted.
func (c *Coordinator) runJob(j *Job) {
	c.mu.Lock()
	c.running++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.running--
		c.mu.Unlock()
	}()
	for {
		m := c.pickMember(j)
		if m == nil {
			c.finish(j, nil, errors.New("fleet: no live member to run job"))
			return
		}
		c.mu.Lock()
		j.Attempts++
		j.Member = m.Name
		j.State = service.StateRunning
		attempt := j.Attempts
		c.mu.Unlock()
		m.noteDispatch()
		c.events.publish(j.ID, Event{Kind: "route", State: service.StateRunning, Member: m.Name, Attempt: attempt})

		remote, err := m.submit(j.Spec)
		if err != nil {
			if isPermanent(err) {
				c.finish(j, nil, err)
				return
			}
			m.markDown()
			if !c.requeue(j, m) {
				c.finish(j, nil, fmt.Errorf("fleet: job failed after %d attempts: %w", j.Attempts, err))
				return
			}
			continue
		}
		final, err := c.pollResult(m, remote.ID)
		if err != nil {
			m.markDown()
			if !c.requeue(j, m) {
				c.finish(j, nil, fmt.Errorf("fleet: job failed after %d attempts: %w", j.Attempts, err))
				return
			}
			continue
		}
		c.finish(j, final, nil)
		return
	}
}

// pickMember returns the first live member in the job's ring preference
// order that has not already failed it; when every preferred member was
// tried, any live member may take it (a re-dispatched job prefers warmth
// but settles for liveness).
func (c *Coordinator) pickMember(j *Job) *memberState {
	seq := c.ring.Sequence(j.Key)
	c.mu.Lock()
	tried := make(map[string]bool, len(j.tried))
	for k, v := range j.tried {
		tried[k] = v
	}
	c.mu.Unlock()
	for _, name := range seq {
		if m := c.members[name]; !tried[name] && m.isUp() {
			return m
		}
	}
	for _, name := range seq {
		if m := c.members[name]; m.isUp() {
			return m
		}
	}
	return nil
}

// requeue records the failed member and reports whether the job has
// attempts left; the caller loops to re-dispatch (no queue round trip — the
// dispatcher already owns the job).
func (c *Coordinator) requeue(j *Job, failed *memberState) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j.tried[failed.Name] = true
	c.requeued++
	if j.Attempts >= c.cfg.MaxAttempts {
		return false
	}
	c.events.publish(j.ID, Event{Kind: "route", State: service.StateQueued, Member: failed.Name, Attempt: j.Attempts})
	return true
}

// pollResult polls the member for the remote job until it reaches a
// terminal state. Transport errors are tolerated up to healthFailures in a
// row (a blip), then reported; a member marked down by the health loop
// aborts the poll immediately so stranded jobs re-dispatch fast.
func (c *Coordinator) pollResult(m *memberState, remoteID string) (*service.Job, error) {
	errs := 0
	for {
		job, err := m.getJob(remoteID)
		switch {
		case err != nil:
			errs++
			if errs >= healthFailures {
				return nil, err
			}
		case job.State == service.StateDone || job.State == service.StateFailed:
			return &job, nil
		default:
			errs = 0
		}
		if !m.isUp() {
			return nil, fmt.Errorf("fleet: member %s went down mid-job", m.Name)
		}
		select {
		case <-c.stopped:
			return nil, errors.New("fleet: coordinator shutting down")
		case <-time.After(c.cfg.PollInterval):
		}
	}
}

// finish records the job's terminal state exactly once. A second finish
// attempt (impossible by construction — one dispatcher owns a job — but
// pinned by the chaos test) only increments DuplicateCompletions.
func (c *Coordinator) finish(j *Job, final *service.Job, err error) {
	c.mu.Lock()
	if j.finished {
		c.dup++
		c.mu.Unlock()
		return
	}
	j.finished = true
	ev := Event{Kind: "state", Member: j.Member, Attempt: j.Attempts}
	switch {
	case err != nil:
		j.State = service.StateFailed
		j.Error = err.Error()
	case final.State == service.StateFailed:
		j.State = service.StateFailed
		j.Error = final.Error
	default:
		j.State = service.StateDone
		if final.Result != nil {
			r := *final.Result
			if c.cfg.ResultFault != nil {
				c.cfg.ResultFault(j.Member, &r)
			}
			j.Result = &r
			ev.Cycles = r.Cycles
		}
	}
	if j.State == service.StateFailed {
		c.failed++
	} else {
		c.done++
	}
	c.tenantDone[j.tenant]++
	ev.State = j.State
	ev.Error = j.Error
	c.mu.Unlock()
	c.events.publish(j.ID, ev)
	c.events.finish(j.ID)
	close(j.done)
}

// Stats returns one consistent snapshot of the coordinator plus the merged
// member view.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := Stats{
		Submitted:            c.submitted,
		Running:              c.running,
		Done:                 c.done,
		Failed:               c.failed,
		Requeued:             c.requeued,
		DuplicateCompletions: c.dup,
		Members:              map[string]MemberStats{},
		TenantDone:           map[string]int64{},
	}
	for t, n := range c.tenantDone {
		st.TenantDone[t] = n
	}
	c.mu.Unlock()
	st.Queued = int64(c.queue.Len())
	depths := c.queue.Depths()
	if len(depths) > 0 {
		st.TenantQueued = map[string]int64{}
		for t, n := range depths {
			st.TenantQueued[t] = int64(n)
		}
	}
	for _, name := range c.order {
		up, svc, dispatched := c.members[name].snapshot()
		if up {
			st.MembersUp++
		}
		st.Members[name] = MemberStats{URL: c.members[name].URL, Up: up, Dispatched: dispatched, Service: svc}
		if svc != nil {
			st.Fleet.CacheHits += svc.CacheHits
			st.Fleet.CacheMisses += svc.CacheMisses
			st.Fleet.DiskHits += svc.DiskHits
			st.Fleet.PeerHits += svc.PeerHits
			st.Fleet.PeerMisses += svc.PeerMisses
			st.Fleet.PeerPuts += svc.PeerPuts
			st.Fleet.PeerErrors += svc.PeerErrors
			st.Fleet.KernelsMeasured += svc.KernelsMeasured
			st.Fleet.TotalCycles += svc.TotalCycles
			st.Fleet.JobsDone += svc.Done
		}
	}
	return st
}

// Members lists the configured fleet with current health.
func (c *Coordinator) MemberList() []MemberStats {
	out := make([]MemberStats, 0, len(c.order))
	for _, name := range c.order {
		up, svc, dispatched := c.members[name].snapshot()
		out = append(out, MemberStats{URL: c.members[name].URL, Up: up, Dispatched: dispatched, Service: svc})
	}
	return out
}

// Metrics returns the coordinator's metrics registry (rendered by the
// /metrics endpoint).
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// collect renders the coordinator's counters plus the fleet-merged
// families from one Stats snapshot, so /metrics and /stats can never
// disagree mid-scrape.
func (c *Coordinator) collect(e *metrics.Emitter) {
	st := c.Stats()
	e.Counter("ptsimfleet_jobs_submitted_total", "Jobs admitted by the coordinator.", float64(st.Submitted))
	e.Counter("ptsimfleet_jobs_done_total", "Jobs finished successfully.", float64(st.Done))
	e.Counter("ptsimfleet_jobs_failed_total", "Jobs that failed terminally.", float64(st.Failed))
	e.Counter("ptsimfleet_jobs_requeued_total", "Re-dispatches after member rejection or death.", float64(st.Requeued))
	e.Counter("ptsimfleet_duplicate_completions_total", "Finish attempts on already-finished jobs (must stay 0).", float64(st.DuplicateCompletions))
	e.Gauge("ptsimfleet_jobs_queued", "Jobs waiting for a dispatcher.", float64(st.Queued))
	e.Gauge("ptsimfleet_jobs_running", "Jobs currently dispatched to members.", float64(st.Running))
	e.Gauge("ptsimfleet_members", "Configured fleet size.", float64(len(c.order)))
	e.Gauge("ptsimfleet_members_up", "Members passing health checks.", float64(st.MembersUp))

	up := make([]metrics.LabeledSample, 0, len(c.order))
	disp := make([]metrics.LabeledSample, 0, len(c.order))
	for _, name := range c.order {
		ms := st.Members[name]
		v := 0.0
		if ms.Up {
			v = 1
		}
		up = append(up, metrics.LabeledSample{Label: name, Value: v})
		disp = append(disp, metrics.LabeledSample{Label: name, Value: float64(ms.Dispatched)})
	}
	e.GaugeVec("ptsimfleet_member_up", "Per-member health (1 = passing probes).", "member", up)
	e.CounterVec("ptsimfleet_member_dispatched_total", "Jobs dispatched per member.", "member", disp)

	if len(st.TenantQueued) > 0 {
		e.GaugeVec("ptsimfleet_tenant_queued", "Queued jobs per tenant.", "tenant", tenantSamples(st.TenantQueued))
	}
	if len(st.TenantDone) > 0 {
		e.CounterVec("ptsimfleet_tenant_jobs_done_total", "Finished jobs per tenant.", "tenant", tenantSamples(st.TenantDone))
	}

	e.Counter("ptsimfleet_fleet_cache_hits_total", "Compile-cache hits summed across members.", float64(st.Fleet.CacheHits))
	e.Counter("ptsimfleet_fleet_cache_misses_total", "Compile-cache misses summed across members.", float64(st.Fleet.CacheMisses))
	e.Counter("ptsimfleet_fleet_peer_hits_total", "Peer-cache hits summed across members.", float64(st.Fleet.PeerHits))
	e.Counter("ptsimfleet_fleet_peer_puts_total", "Peer-cache pushes summed across members.", float64(st.Fleet.PeerPuts))
	e.Counter("ptsimfleet_fleet_kernels_measured_total", "Kernel measurements summed across members.", float64(st.Fleet.KernelsMeasured))
	e.Counter("ptsimfleet_fleet_cycles_total", "Simulated cycles summed across members.", float64(st.Fleet.TotalCycles))
}

// tenantSamples renders a per-tenant map as sorted labeled samples (the
// anonymous tenant renders as "default"), matching the service's encoding.
func tenantSamples(m map[string]int64) []metrics.LabeledSample {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]metrics.LabeledSample, 0, len(keys))
	for _, k := range keys {
		label := k
		if label == "" {
			label = "default"
		}
		out = append(out, metrics.LabeledSample{Label: label, Value: float64(m[k])})
	}
	return out
}
