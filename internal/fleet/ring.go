// Package fleet shards a simulation service across N ptsimd instances.
//
// The coordinator consistent-hashes every job's compile content address
// (service.ContentKey) onto a ring of members, so identical jobs always
// land on the same member's warm caches, and members backfill compiled
// artifacts from each other through the cache.Peer remote tier. Determinism
// is preserved end to end: a fleet returns bit-identical JobResults to a
// single ptsimd for the same specs, which the crosscheck fleet oracle and
// the chaos test both pin.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringReplicas is the number of virtual nodes per member. 64 keeps the
// worst-case member load within a few percent of uniform for small fleets
// while the ring stays tiny (N*64 points).
const ringReplicas = 64

// Ring is an immutable consistent-hash ring over member IDs. Lookup is a
// binary search over virtual points; the ring is deterministic in the set
// of IDs (insertion order does not matter), so every member of a fleet
// computes identical ownership from the same membership list.
type Ring struct {
	points []ringPoint
	ids    []string
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring over the given member IDs (duplicates collapse).
func NewRing(ids []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.ids = append(r.ids, id)
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", id, i)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // total order even on hash collision
	})
	sort.Strings(r.ids)
	return r
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the distinct member IDs on the ring, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Owner returns the member owning key: the first virtual point at or after
// the key's hash, wrapping. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// Sequence returns every member in the key's preference order: the owner
// first, then each further distinct member in ring order. The coordinator
// walks this list when the owner is down, and the peer cache tier asks the
// first entries (minus the caller) for artifacts.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	out := make([]string, 0, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
