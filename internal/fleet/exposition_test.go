package fleet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/metrics/promtest"
	"repro/internal/service"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// The coordinator's /metrics shape is pinned by a golden file: families,
// types, labels, and histogram bounds, with run-dependent values stripped.
// A renamed family or dropped label breaks the golden; a different cycle
// count does not. The coordinator is built over fixed member names and not
// started, so the exposition is fully deterministic (two tenants queued,
// no health snapshots yet).
func TestFleetExpositionGolden(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Members: []Member{
			{Name: "m0", URL: "http://127.0.0.1:1"},
			{Name: "m1", URL: "http://127.0.0.1:2"},
			{Name: "m2", URL: "http://127.0.0.1:3"},
		},
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for _, tenant := range []string{"a", "b", "b"} {
		if _, err := coord.Submit(service.JobSpec{Model: "gemm", N: 32, NPU: "small", Tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if _, err := coord.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams := promtest.Parse(t, bytes.NewReader(buf.Bytes()))
	promtest.CheckFamilies(t, fams)
	got := []byte(promtest.Strip(fams))

	path := filepath.Join("testdata", "golden", "coordinator_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/fleet -run TestFleetExpositionGolden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\nRegenerate with `go test ./internal/fleet -run TestFleetExpositionGolden -update`",
			got, want)
	}
}

// After a live fleet ran jobs, the merged families must reflect the member
// snapshots: cycles summed over members match the coordinator's own done
// count, per-tenant queue depth family appears while queued, and every
// family passes the structural checks.
func TestFleetMetricsLive(t *testing.T) {
	fl, err := StartLocal(LocalOptions{N: 3, Workers: 1, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	ids := []string{}
	for i := 0; i < 4; i++ {
		j, err := fl.Coord.Submit(service.JobSpec{Model: "gemm", N: 32 + 8*i, NPU: "small", Tenant: "t"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	var cycles int64
	for _, id := range ids {
		fin, err := fl.Coord.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("job failed: %s", fin.Error)
		}
		cycles += fin.Result.Cycles
	}

	// Wait for a health sweep so the merged member snapshots include every
	// finished job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fl.Coord.Stats()
		if st.Fleet.JobsDone == int64(len(ids)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged member stats never caught up: %+v", st.Fleet)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var buf bytes.Buffer
	if _, err := fl.Coord.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams := promtest.Parse(t, strings.NewReader(buf.String()))
	promtest.CheckFamilies(t, fams)

	if v := fams["ptsimfleet_jobs_done_total"].Samples[0].Value; v != float64(len(ids)) {
		t.Fatalf("ptsimfleet_jobs_done_total = %g, want %d", v, len(ids))
	}
	if v := fams["ptsimfleet_fleet_cycles_total"].Samples[0].Value; v != float64(cycles) {
		t.Fatalf("merged cycles = %g, want %d", v, cycles)
	}
	upFam := fams["ptsimfleet_member_up"]
	if upFam == nil || len(upFam.Samples) != 3 {
		t.Fatalf("member_up family: %+v", upFam)
	}
	for _, s := range upFam.Samples {
		if s.Value != 1 {
			t.Fatalf("member %s not up: %+v", s.Labels["member"], s)
		}
	}
	if fams["ptsimfleet_tenant_jobs_done_total"] == nil {
		t.Fatal("tenant done family missing after tenant jobs")
	}
}
