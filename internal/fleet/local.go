package fleet

import (
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/service/cache"
)

// LocalOptions sizes an in-process fleet.
type LocalOptions struct {
	// N is the member count (default 3).
	N int
	// Workers is each member's simulation worker count (default 2).
	Workers int
	// QueueDepth/TenantQueueDepth/TenantWeights configure both the member
	// services and the coordinator identically.
	QueueDepth       int
	TenantQueueDepth int
	TenantWeights    map[string]int
	// CacheDir, when set, gives each member a persistent disk tier under
	// CacheDir/m<i> beneath its peer tier.
	CacheDir string
	// MaxCycles is each member's deadlock guard override (0 = default).
	MaxCycles int64
	// PeerTimeout bounds peer cache round trips (0 = cache default).
	PeerTimeout time.Duration
	// Coordinator knobs, zero = NewCoordinator defaults.
	Dispatchers    int
	PollInterval   time.Duration
	HealthInterval time.Duration
	MaxAttempts    int
	// ResultFault is the coordinator's test-only fault hook.
	ResultFault func(member string, res *service.JobResult)
}

// Local is an in-process fleet: N full ptsimd services on ephemeral
// loopback ports, wired into one ring for peer caching, behind one
// coordinator. It is the compose-free demo (cmd/ptsimfleet), the chaos
// test's victim, and the crosscheck fleet oracle's subject — all the same
// code path a multi-host deployment runs, minus real network distance.
type Local struct {
	Coord *Coordinator

	members []*localMember
	killWG  sync.WaitGroup
}

type localMember struct {
	name string
	url  string
	svc  *service.Service
	srv  *http.Server

	mu     sync.Mutex
	killed bool
}

// StartLocal boots the fleet: listeners first (so every member knows the
// full ring before serving), then services with peer cache tiers, then the
// coordinator.
func StartLocal(opt LocalOptions) (*Local, error) {
	n := opt.N
	if n <= 0 {
		n = 3
	}
	if opt.Workers <= 0 {
		opt.Workers = 2
	}

	listeners := make([]net.Listener, 0, n)
	closeAll := func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}
	names := make([]string, n)
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("fleet: local listener: %w", err)
		}
		listeners = append(listeners, ln)
		names[i] = fmt.Sprintf("m%d", i)
		urls[names[i]] = "http://" + ln.Addr().String()
	}
	ring := NewRing(names)

	l := &Local{}
	for i := 0; i < n; i++ {
		self := names[i]
		// A member's peer tier asks the key's ring owners, skipping itself:
		// when this node owns the key, resolve returns nil and the lookup
		// stays local.
		resolve := func(key string) []string {
			seq := ring.Sequence(key)
			out := make([]string, 0, 2)
			for _, name := range seq {
				if name == self {
					continue
				}
				out = append(out, urls[name])
				if len(out) == 2 {
					break
				}
			}
			return out
		}
		svc := service.New(service.Config{
			Workers:          opt.Workers,
			QueueDepth:       opt.QueueDepth,
			TenantQueueDepth: opt.TenantQueueDepth,
			TenantWeights:    opt.TenantWeights,
			MaxCycles:        opt.MaxCycles,
		})
		if opt.CacheDir != "" {
			if err := svc.EnableDiskCache(filepath.Join(opt.CacheDir, self)); err != nil {
				closeAll()
				l.Close()
				return nil, err
			}
		}
		svc.EnablePeerCache(cache.NewPeer(resolve, opt.PeerTimeout))
		svc.Start()
		srv := &http.Server{Handler: service.NewHandler(svc)}
		m := &localMember{name: self, url: urls[self], svc: svc, srv: srv}
		l.members = append(l.members, m)
		go srv.Serve(listeners[i])
	}

	members := make([]Member, n)
	for i, name := range names {
		members[i] = Member{Name: name, URL: urls[name]}
	}
	coord, err := NewCoordinator(Config{
		Members:          members,
		QueueDepth:       opt.QueueDepth,
		TenantQueueDepth: opt.TenantQueueDepth,
		TenantWeights:    opt.TenantWeights,
		Dispatchers:      opt.Dispatchers,
		PollInterval:     opt.PollInterval,
		HealthInterval:   opt.HealthInterval,
		MaxAttempts:      opt.MaxAttempts,
		ResultFault:      opt.ResultFault,
	})
	if err != nil {
		l.Close()
		return nil, err
	}
	coord.Start()
	l.Coord = coord
	return l, nil
}

// N returns the member count.
func (l *Local) N() int { return len(l.members) }

// URL returns member i's base URL.
func (l *Local) URL(i int) string { return l.members[i].url }

// MemberName returns member i's ring name.
func (l *Local) MemberName(i int) string { return l.members[i].name }

// Service returns member i's in-process service, for tests that inspect a
// member directly (e.g. the peer-backfill pin on KernelsMeasured).
func (l *Local) Service(i int) *service.Service { return l.members[i].svc }

// OwnerIndex returns the index of the member owning key on the ring.
func (l *Local) OwnerIndex(key string) int {
	owner := l.Coord.ring.Owner(key)
	for i, m := range l.members {
		if m.name == owner {
			return i
		}
	}
	return -1
}

// KillMember abruptly stops member i's HTTP server — in-flight fleet jobs
// on it strand and must be re-dispatched by the coordinator. The member's
// service drains in the background; Close waits for it.
func (l *Local) KillMember(i int) {
	m := l.members[i]
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return
	}
	m.killed = true
	m.mu.Unlock()
	m.srv.Close()
	l.killWG.Add(1)
	go func() {
		defer l.killWG.Done()
		m.svc.Close()
	}()
}

// Close shuts the coordinator down first (draining fleet jobs), then every
// member.
func (l *Local) Close() {
	if l.Coord != nil {
		l.Coord.Close()
	}
	for i := range l.members {
		l.KillMember(i)
	}
	l.killWG.Wait()
}
