package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// readFleetSSE decodes every `data:` payload from an SSE stream.
func readFleetSSE(t *testing.T, body *bufio.Reader) []Event {
	t.Helper()
	var events []Event
	for {
		line, err := body.ReadString('\n')
		if strings.HasPrefix(line, "data: ") {
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			events = append(events, ev)
		}
		if err != nil {
			return events
		}
	}
}

// The coordinator's /jobs/{id}/events stream carries routing and lifecycle
// events and self-terminates on the terminal state, which names the member
// that ran the job and the final cycle count.
func TestFleetJobEventsSSE(t *testing.T) {
	fl, err := StartLocal(LocalOptions{N: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	srv := httptest.NewServer(NewHandler(fl.Coord))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"model":"gemm","n":48,"npu":"small","tenant":"sse"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readFleetSSE(t, bufio.NewReader(stream.Body))
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.Kind != "state" || last.State != service.StateDone {
		t.Fatalf("stream did not end on done: %+v", last)
	}
	if last.Member == "" || last.Cycles <= 0 {
		t.Fatalf("terminal event missing member or cycles: %+v", last)
	}

	// A late subscriber gets a single synthetic terminal snapshot.
	late, err := http.Get(srv.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	lateEvents := readFleetSSE(t, bufio.NewReader(late.Body))
	if len(lateEvents) != 1 || lateEvents[0].State != service.StateDone || lateEvents[0].Cycles != last.Cycles {
		t.Fatalf("late subscriber events: %+v", lateEvents)
	}
}

// API error paths: unknown job and events stream 404, malformed JSON 400,
// invalid spec 400, per-tenant overload 429 with the tenant header.
func TestFleetAPIErrors(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Members: []Member{
			{Name: "m0", URL: "http://127.0.0.1:1"},
			{Name: "m1", URL: "http://127.0.0.1:2"},
		},
		QueueDepth:       8,
		TenantQueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	for _, path := range []string{"/jobs/nope", "/jobs/nope/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"model":"no-such-model"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d, want 400", resp.StatusCode)
	}

	// The coordinator is not started, so submissions queue up: the second
	// job under a depth-1 tenant is rejected with the typed 429.
	spec := `{"model":"gemm","n":32,"npu":"small","tenant":"bulk"}`
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Overloaded-Tenant"); got != "bulk" {
		t.Fatalf("X-Overloaded-Tenant = %q, want bulk", got)
	}
	var body struct {
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tenant != "bulk" {
		t.Fatalf("429 body tenant = %q", body.Tenant)
	}
}
