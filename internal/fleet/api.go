package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/service"
)

// NewHandler wraps a coordinator in its HTTP/JSON API — the same shape as
// one ptsimd, plus fleet membership:
//
//	POST /jobs             submit; 202 with the fleet job snapshot, 429 on
//	                       coordinator overload (global or per-tenant)
//	GET  /jobs/{id}        fleet job snapshot (routing member, attempts,
//	                       result once done)
//	GET  /jobs/{id}/events SSE stream of routing and lifecycle events
//	GET  /stats            coordinator counters plus the merged member view
//	GET  /metrics          the same, in Prometheus text exposition format
//	GET  /members          fleet membership and health
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec service.JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			fleetErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		job, err := c.Submit(spec)
		if err != nil {
			var over *service.OverloadError
			var tover *service.TenantOverloadError
			switch {
			case errors.As(err, &tover):
				w.Header().Set("X-Overloaded-Tenant", tover.Tenant)
				fleetJSON(w, http.StatusTooManyRequests,
					map[string]string{"error": err.Error(), "tenant": tover.Tenant})
			case errors.As(err, &over):
				fleetErr(w, http.StatusTooManyRequests, err.Error())
			default:
				fleetErr(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		fleetJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := c.Get(r.PathValue("id"))
		if !ok {
			fleetErr(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
			return
		}
		fleetJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveFleetEvents(c, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		fleetJSON(w, http.StatusOK, c.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = c.Metrics().WriteTo(w)
	})
	mux.HandleFunc("GET /members", func(w http.ResponseWriter, r *http.Request) {
		fleetJSON(w, http.StatusOK, c.MemberList())
	})
	return mux
}

func serveFleetEvents(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := c.Get(id); !ok {
		fleetErr(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		fleetErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := c.events.subscribe(id)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	job, _ := c.Get(id)
	snap := Event{Kind: "state", State: job.State, Member: job.Member, Attempt: job.Attempts, Error: job.Error}
	if job.Result != nil {
		snap.Cycles = job.Result.Cycles
	}
	writeFleetSSE(w, snap)
	fl.Flush()
	if job.State == service.StateDone || job.State == service.StateFailed {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if job, ok := c.Get(id); ok && (job.State == service.StateDone || job.State == service.StateFailed) {
					fin := Event{Kind: "state", State: job.State, Member: job.Member, Attempt: job.Attempts, Error: job.Error}
					if job.Result != nil {
						fin.Cycles = job.Result.Cycles
					}
					writeFleetSSE(w, fin)
					fl.Flush()
				}
				return
			}
			writeFleetSSE(w, ev)
			fl.Flush()
			if ev.Kind == "state" && (ev.State == service.StateDone || ev.State == service.StateFailed) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeFleetSSE(w io.Writer, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

func fleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func fleetErr(w http.ResponseWriter, code int, msg string) {
	fleetJSON(w, code, map[string]string{"error": msg})
}
