package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

// The ring is deterministic in the membership set: insertion order must not
// matter, and every node computing ownership from the same list agrees.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"m0", "m1", "m2"})
	b := NewRing([]string{"m2", "m0", "m1", "m0"}) // shuffled + duplicate
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring order sensitivity: %q owned by %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		if !reflect.DeepEqual(a.Sequence(key), b.Sequence(key)) {
			t.Fatalf("sequence differs for %q: %v vs %v", key, a.Sequence(key), b.Sequence(key))
		}
	}
}

// Virtual nodes keep the load roughly uniform: with 3 members and many
// keys, no member owns more than ~half or less than ~a fifth.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"m0", "m1", "m2"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own keys: %v", len(counts), counts)
	}
	for id, c := range counts {
		if c < n/5 || c > n/2 {
			t.Fatalf("member %s owns %d of %d keys (outside [%d,%d]): %v",
				id, c, n, n/5, n/2, counts)
		}
	}
}

// Sequence lists every member exactly once, owner first.
func TestRingSequence(t *testing.T) {
	r := NewRing([]string{"m0", "m1", "m2", "m3"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != 4 {
			t.Fatalf("sequence for %q has %d members, want 4: %v", key, len(seq), seq)
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence for %q starts with %s, owner is %s", key, seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("duplicate %s in sequence %v", id, seq)
			}
			seen[id] = true
		}
	}
}

// Removing a member only moves the keys it owned: everyone else's keys
// stay put — the property that makes member death cheap for cache warmth.
func TestRingStabilityUnderRemoval(t *testing.T) {
	full := NewRing([]string{"m0", "m1", "m2"})
	reduced := NewRing([]string{"m0", "m2"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "m1" && after != before {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.Sequence("k"); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
}
