package fleet

import (
	"sync"

	"repro/internal/service"
)

// Event is one entry of a fleet job's routing/lifecycle stream: which
// member the job was dispatched to, re-dispatches after a member death, and
// the terminal state. Progress samples stay on the member's own
// /jobs/{id}/events stream; the coordinator's stream is about routing.
type Event struct {
	Seq     int64         `json:"seq"`
	Kind    string        `json:"kind"` // "state" or "route"
	State   service.State `json:"state,omitempty"`
	Member  string        `json:"member,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	Cycles  int64         `json:"cycles,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// hub fans fleet job events out to SSE subscribers; publishing never
// blocks (slow consumers drop events, the job record stays authoritative).
type hub struct {
	mu   sync.Mutex
	subs map[string][]chan Event
	done map[string]bool
	seq  int64
}

func newHub() *hub {
	return &hub{subs: map[string][]chan Event{}, done: map[string]bool{}}
}

func (h *hub) subscribe(jobID string) (<-chan Event, func()) {
	ch := make(chan Event, 64)
	h.mu.Lock()
	if h.done[jobID] {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[jobID] = append(h.subs[jobID], ch)
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		subs := h.subs[jobID]
		for i, c := range subs {
			if c == ch {
				h.subs[jobID] = append(subs[:i], subs[i+1:]...)
				return
			}
		}
	}
}

func (h *hub) publish(jobID string, ev Event) {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	for _, ch := range h.subs[jobID] {
		select {
		case ch <- ev:
		default:
		}
	}
	h.mu.Unlock()
}

func (h *hub) finish(jobID string) {
	h.mu.Lock()
	subs := h.subs[jobID]
	delete(h.subs, jobID)
	h.done[jobID] = true
	h.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

func (h *hub) closeAll() {
	h.mu.Lock()
	subs := h.subs
	h.subs = map[string][]chan Event{}
	h.mu.Unlock()
	for _, chans := range subs {
		for _, ch := range chans {
			close(ch)
		}
	}
}
