package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/service"
)

// testSpecs is a small mixed batch: distinct gemm shapes (distinct compile
// keys) across tenants and priorities, with deliberate duplicates so
// routing locality is observable.
func testSpecs() []service.JobSpec {
	specs := []service.JobSpec{
		{Model: "gemm", N: 32, NPU: "small", Tenant: "a"},
		{Model: "gemm", N: 48, NPU: "small", Tenant: "b", Priority: 1},
		{Model: "gemm", N: 64, NPU: "small", Tenant: "a"},
		{Model: "mlp", Batch: 2, NPU: "small", Tenant: "b"},
		{Model: "gemm", N: 32, NPU: "small", Tenant: "b"}, // dup of [0]
		{Model: "gemm", N: 64, NPU: "small", Tenant: "a"}, // dup of [2]
	}
	return specs
}

// A 3-member fleet returns bit-identical canonical results to one
// single-node service for the same specs, and duplicate specs route to the
// same member.
func TestFleetMatchesSingleNode(t *testing.T) {
	single := service.New(service.Config{Workers: 2})
	single.Start()
	defer single.Close()

	fl, err := StartLocal(LocalOptions{N: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	specs := testSpecs()
	want := make([]service.JobResult, len(specs))
	for i, spec := range specs {
		j, err := single.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := single.Wait(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("single-node job %d failed: %s", i, fin.Error)
		}
		want[i] = fin.Result.Canonical()
	}

	ids := make([]string, len(specs))
	for i, spec := range specs {
		j, err := fl.Coord.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	memberOf := map[string]string{}
	for i, id := range ids {
		fin, err := fl.Coord.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != service.StateDone {
			t.Fatalf("fleet job %d failed: %s", i, fin.Error)
		}
		got := fin.Result.Canonical()
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("job %d: fleet result differs from single node:\nfleet:  %+v\nsingle: %+v", i, got, want[i])
		}
		if prev, ok := memberOf[fin.Key]; ok && prev != fin.Member {
			t.Errorf("key %s routed to both %s and %s", fin.Key, prev, fin.Member)
		}
		memberOf[fin.Key] = fin.Member
	}

	st := fl.Coord.Stats()
	if st.Done != int64(len(specs)) || st.Failed != 0 || st.DuplicateCompletions != 0 {
		t.Fatalf("coordinator stats: %+v", st)
	}
	if st.TenantDone["a"] != 3 || st.TenantDone["b"] != 3 {
		t.Fatalf("tenant done split: %+v", st.TenantDone)
	}
}

// An invalid spec is rejected at the coordinator's door, before any
// dispatch.
func TestCoordinatorValidates(t *testing.T) {
	fl, err := StartLocal(LocalOptions{N: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if _, err := fl.Coord.Submit(service.JobSpec{Model: "no-such-model"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if st := fl.Coord.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid spec counted as submitted: %+v", st)
	}
}

// The coordinator HTTP API: submit + poll matches the in-process result,
// tenant overload returns a typed 429, /members and /metrics respond.
func TestFleetHTTPAPI(t *testing.T) {
	fl, err := StartLocal(LocalOptions{N: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	ts := httptest.NewServer(NewHandler(fl.Coord))
	defer ts.Close()

	body, _ := json.Marshal(service.JobSpec{Model: "gemm", N: 32, NPU: "small", Tenant: "t"})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || j.ID == "" {
		t.Fatalf("POST /jobs: %d %+v", resp.StatusCode, j)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		get, err := http.Get(ts.URL + "/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(get.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		get.Body.Close()
		if j.State == service.StateDone || j.State == service.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if j.State != service.StateDone || j.Result == nil || j.Result.Cycles <= 0 || j.Member == "" {
		t.Fatalf("fleet job via HTTP: %+v", j)
	}

	var members []MemberStats
	mresp, err := http.Get(ts.URL + "/members")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&members); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(members) != 2 {
		t.Fatalf("/members: %+v", members)
	}

	met, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer met.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(met.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("ptsimfleet_jobs_done_total")) {
		t.Fatalf("/metrics missing fleet families:\n%s", buf.String())
	}
}

// Per-tenant admission bounds at the coordinator: a tenant that floods the
// queue gets typed TenantOverloadErrors (HTTP 429) while other tenants
// still get in.
func TestCoordinatorTenantOverload(t *testing.T) {
	// No dispatchers pull (Start not called), so pushes accumulate.
	coord, err := NewCoordinator(Config{
		Members:          []Member{{Name: "m0", URL: "http://127.0.0.1:1"}},
		QueueDepth:       8,
		TenantQueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := service.JobSpec{Model: "gemm", N: 32, NPU: "small", Tenant: "noisy"}
	for i := 0; i < 2; i++ {
		if _, err := coord.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	_, err = coord.Submit(spec)
	tover, ok := err.(*service.TenantOverloadError)
	if !ok || tover.Tenant != "noisy" {
		t.Fatalf("third submit: %v, want TenantOverloadError for noisy", err)
	}
	other := spec
	other.Tenant = "quiet"
	if _, err := coord.Submit(other); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	st := coord.Stats()
	if st.TenantQueued["noisy"] != 2 || st.TenantQueued["quiet"] != 1 {
		t.Fatalf("tenant queue depths: %+v", st.TenantQueued)
	}
	coord.Close()
}

// The second identical job submitted to a *different* member compiles with
// zero kernel measurements: the latency table arrives through the peer
// cache tier, not recomputation.
func TestPeerCacheBackfill(t *testing.T) {
	fl, err := StartLocal(LocalOptions{N: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	spec := service.JobSpec{Model: "gemm", N: 56, NPU: "small"}
	key, err := service.ContentKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	owner := fl.OwnerIndex(key)
	if owner < 0 {
		t.Fatalf("no owner for %s", key)
	}

	// Run the job once through the fleet: it lands on the owner, compiles,
	// and pushes its latency table to the table's own ring owner.
	j, err := fl.Coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := fl.Coord.Wait(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone {
		t.Fatalf("warmup job failed: %s", fin.Error)
	}
	if fin.Member != fl.MemberName(owner) {
		t.Fatalf("job routed to %s, ring owner is %s", fin.Member, fl.MemberName(owner))
	}
	warm := fl.Service(owner).Stats()
	if warm.KernelsMeasured == 0 {
		t.Fatalf("owner compiled without measuring kernels: %+v", warm)
	}

	// Submit the identical spec directly to a different member, bypassing
	// the coordinator: its compile must be fed entirely by the fleet.
	other := (owner + 1) % fl.N()
	cold := fl.Service(other)
	before := cold.Stats()
	if before.KernelsMeasured != 0 {
		t.Fatalf("member %d measured kernels before its first job: %+v", other, before)
	}
	j2, err := cold.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := cold.Wait(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != service.StateDone {
		t.Fatalf("direct job failed: %s", fin2.Error)
	}
	after := cold.Stats()
	if after.KernelsMeasured != 0 {
		t.Fatalf("cold member re-measured %d kernels; want 0 (peer backfill): %+v",
			after.KernelsMeasured, after)
	}
	if after.DiskHits == 0 {
		t.Fatalf("cold member compiled without any store hit: %+v", after)
	}
	// And the results agree bit-for-bit.
	if err := compareCanonical(fin.Result, fin2.Result); err != nil {
		t.Fatal(err)
	}
}

func compareCanonical(a, b *service.JobResult) error {
	if a == nil || b == nil {
		return fmt.Errorf("nil result (a=%v b=%v)", a == nil, b == nil)
	}
	ca, cb := a.Canonical(), b.Canonical()
	if !reflect.DeepEqual(ca, cb) {
		return fmt.Errorf("results differ:\na: %+v\nb: %+v", ca, cb)
	}
	return nil
}
