package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// Member identifies one ptsimd instance: a stable name (the consistent-hash
// ring ID, shared by every node so ownership agrees fleet-wide) and the base
// URL of its HTTP API.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// submitRetries bounds how many times a dispatcher retries a 429 from one
// member before requeueing the job; each retry backs off exponentially from
// submitBackoff.
const (
	submitRetries = 4
	submitBackoff = 25 * time.Millisecond
	// healthFailures consecutive probe failures mark a member down; one
	// success marks it back up.
	healthFailures = 3
	// maxRespBytes caps any member response the coordinator parses.
	maxRespBytes = 8 << 20
)

// permanentError marks a member rejection that re-dispatching cannot fix
// (an invalid spec): the job fails instead of walking the ring.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// memberState is the coordinator's live view of one member: the HTTP
// client, health, the last /stats snapshot the health loop cached (the
// source of the fleet-merged metric families), and dispatch accounting.
type memberState struct {
	Member
	client *http.Client

	mu         sync.Mutex
	up         bool
	fails      int // consecutive probe failures
	skip       int // health probes to skip (backoff while down)
	skipLeft   int // countdown of the current skip window
	stats      service.Stats
	statsOK    bool
	dispatched int64 // jobs this coordinator sent here
}

func newMemberState(m Member, timeout time.Duration) *memberState {
	return &memberState{
		Member: m,
		client: &http.Client{Timeout: timeout},
		up:     true, // optimistic until the first probe says otherwise
	}
}

// submit posts the spec, retrying briefly on 429 (the member's queue, or
// the tenant's share of it, is momentarily full). A 4xx other than 429 is
// permanent; transport errors are retryable by re-dispatch.
func (m *memberState) submit(spec service.JobSpec) (service.Job, error) {
	var job service.Job
	body, err := json.Marshal(spec)
	if err != nil {
		return job, &permanentError{err}
	}
	backoff := submitBackoff
	for attempt := 0; ; attempt++ {
		resp, err := m.client.Post(m.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return job, err
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
		resp.Body.Close()
		if rerr != nil {
			return job, rerr
		}
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return job, json.Unmarshal(data, &job)
		case resp.StatusCode == http.StatusTooManyRequests && attempt < submitRetries:
			time.Sleep(backoff)
			backoff *= 2
		case resp.StatusCode == http.StatusTooManyRequests:
			return job, fmt.Errorf("fleet: member %s still overloaded after %d retries", m.Name, submitRetries)
		default:
			err := fmt.Errorf("fleet: member %s rejected job: %s: %s",
				m.Name, resp.Status, strings.TrimSpace(string(data)))
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				return job, &permanentError{err}
			}
			return job, err
		}
	}
}

// getJob fetches one job snapshot from the member.
func (m *memberState) getJob(id string) (service.Job, error) {
	var job service.Job
	resp, err := m.client.Get(m.URL + "/jobs/" + id)
	if err != nil {
		return job, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return job, err
	}
	if resp.StatusCode != http.StatusOK {
		return job, fmt.Errorf("fleet: member %s: %s: %s", m.Name, resp.Status, strings.TrimSpace(string(data)))
	}
	return job, json.Unmarshal(data, &job)
}

// probe hits /stats and updates health: one success marks the member up
// and caches the snapshot; healthFailures consecutive failures mark it
// down, after which probes back off exponentially (1, 2, 4, ... intervals,
// capped) so a dead member costs little.
func (m *memberState) probe() {
	m.mu.Lock()
	if m.skipLeft > 0 {
		m.skipLeft--
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	var st service.Stats
	resp, err := m.client.Get(m.URL + "/stats")
	if err == nil {
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK {
			err = json.Unmarshal(data, &st)
		} else {
			err = fmt.Errorf("fleet: probe %s: status %d", m.Name, resp.StatusCode)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		m.up = true
		m.fails = 0
		m.skip = 0
		m.stats = st
		m.statsOK = true
		return
	}
	m.fails++
	if m.fails >= healthFailures {
		m.up = false
		if m.skip < 8 {
			if m.skip == 0 {
				m.skip = 1
			} else {
				m.skip *= 2
			}
		}
		m.skipLeft = m.skip
	}
}

// isUp reports current health.
func (m *memberState) isUp() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.up
}

// markDown records an observed failure from the dispatch path (a transport
// error submitting or polling), feeding the same counter the prober uses so
// a dead member is detected from either side.
func (m *memberState) markDown() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fails++
	if m.fails >= healthFailures {
		m.up = false
	}
}

// snapshot returns the member's health, cached service stats, and dispatch
// count.
func (m *memberState) snapshot() (up bool, st *service.Stats, dispatched int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.statsOK {
		c := m.stats
		st = &c
	}
	return m.up, st, m.dispatched
}

func (m *memberState) noteDispatch() {
	m.mu.Lock()
	m.dispatched++
	m.mu.Unlock()
}
