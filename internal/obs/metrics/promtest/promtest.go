// Package promtest is a strict structural parser for the Prometheus text
// exposition format (version 0.0.4), shared by every test that validates a
// /metrics endpoint: the service's own exposition test, the fleet
// coordinator's merged-family test, and the golden-file tests. It is
// deliberately unforgiving — any line it does not understand fails the
// test, so format drift cannot hide behind a lenient parser.
package promtest

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Family is one metric family parsed from the text exposition.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram
	Samples []Sample
}

// Sample is one sample line: the family name plus any _bucket/_sum/_count
// suffix, its labels, and the parsed value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Parse parses a complete exposition: every line must be blank, a # HELP,
// a # TYPE, or a sample, and every sample must follow its family's TYPE
// declaration.
func Parse(t *testing.T, r io.Reader) map[string]*Family {
	t.Helper()
	fams := map[string]*Family{}
	var cur *Family
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %q", lineNo, name)
			}
			cur = &Family{Name: name, Help: help}
			fams[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || cur == nil || cur.Name != name {
				t.Fatalf("line %d: TYPE %q does not follow its HELP", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
				cur.Type = typ
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, typ)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unrecognized comment %q", lineNo, line)
		default:
			s := parseSampleLine(t, lineNo, line)
			fam := FamilyOf(s.Name)
			f, ok := fams[fam]
			if !ok || f.Type == "" {
				t.Fatalf("line %d: sample %q before its # TYPE declaration", lineNo, s.Name)
			}
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// parseSampleLine parses `name{label="v",...} value`.
func parseSampleLine(t *testing.T, lineNo int, line string) Sample {
	t.Helper()
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value in sample %q", lineNo, line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", lineNo, pair)
			}
			s.Labels[k] = v[1 : len(v)-1]
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := ParseValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, rest, err)
	}
	s.Value = v
	return s
}

// ParseValue parses a sample value, accepting the ±Inf spellings.
func ParseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// FamilyOf strips the histogram sample suffixes from a sample name.
func FamilyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// Labeled reports whether every sample of the family carries labels (a
// counter/gauge vector rather than a scalar).
func Labeled(f *Family) bool {
	for _, s := range f.Samples {
		if len(s.Labels) == 0 {
			return false
		}
	}
	return len(f.Samples) > 0
}

// CheckFamilies runs the generic structural checks over every parsed
// family: HELP and TYPE present, at least one sample, scalar families carry
// exactly one unlabeled sample, vector families are uniformly labeled,
// counters are non-negative, and histograms are cumulative with a +Inf
// bucket equal to _count.
func CheckFamilies(t *testing.T, fams map[string]*Family) {
	t.Helper()
	for name, f := range fams {
		if f.Type == "" {
			t.Errorf("family %q has HELP but no TYPE", name)
			continue
		}
		if f.Help == "" {
			t.Errorf("family %q has an empty HELP", name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %q declared but has no samples", name)
			continue
		}
		switch f.Type {
		case "counter", "gauge":
			if Labeled(f) {
				for _, s := range f.Samples {
					if s.Name != name || len(s.Labels) != 1 {
						t.Errorf("%s family %q has a malformed labeled sample: %+v", f.Type, name, s)
					}
				}
			} else if len(f.Samples) != 1 || f.Samples[0].Name != name || len(f.Samples[0].Labels) != 0 {
				t.Errorf("%s family %q must carry exactly one unlabeled sample, got %+v", f.Type, name, f.Samples)
			}
			if f.Type == "counter" {
				for _, s := range f.Samples {
					if s.Value < 0 {
						t.Errorf("counter %q is negative: %g", name, s.Value)
					}
				}
			}
		case "histogram":
			CheckHistogram(t, f)
		}
	}
}

// CheckHistogram validates bucket structure: le labels parse, buckets are
// cumulative (sorted by le, non-decreasing), the +Inf bucket exists and
// equals _count, and _sum/_count are present.
func CheckHistogram(t *testing.T, f *Family) {
	t.Helper()
	type bkt struct {
		le    float64
		count float64
	}
	var buckets []bkt
	var sum, count *float64
	for i := range f.Samples {
		s := f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				t.Errorf("histogram %q bucket missing le label", f.Name)
				return
			}
			v, err := ParseValue(le)
			if err != nil {
				t.Errorf("histogram %q: bad le %q", f.Name, le)
				return
			}
			buckets = append(buckets, bkt{le: v, count: s.Value})
		case f.Name + "_sum":
			sum = &s.Value
		case f.Name + "_count":
			count = &s.Value
		default:
			t.Errorf("histogram %q: unexpected sample %q", f.Name, s.Name)
		}
	}
	if sum == nil || count == nil {
		t.Errorf("histogram %q missing _sum or _count", f.Name)
		return
	}
	if len(buckets) == 0 {
		t.Errorf("histogram %q has no buckets", f.Name)
		return
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Errorf("histogram %q buckets not cumulative: le=%g has %g < %g",
				f.Name, buckets[i].le, buckets[i].count, buckets[i-1].count)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		t.Errorf("histogram %q missing +Inf bucket", f.Name)
	}
	if last.count != *count {
		t.Errorf("histogram %q: +Inf bucket %g != count %g", f.Name, last.count, *count)
	}
}

// SampleValue returns the value of the family's sample with the given name.
func (f *Family) SampleValue(t *testing.T, name string) float64 {
	t.Helper()
	for _, s := range f.Samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("family %q has no sample %q", f.Name, name)
	return 0
}

// Strip renders a parsed exposition back to text with every sample value
// replaced by "V" and every histogram bucket count elided — the shape of
// the exposition without its run-dependent numbers. Families and samples
// render in sorted order. Golden-file tests compare this: a renamed family,
// a dropped label, or a type change breaks the golden; a different cycle
// count does not.
func Strip(fams map[string]*Family) string {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		b.WriteString("# HELP " + f.Name + " " + f.Help + "\n")
		b.WriteString("# TYPE " + f.Name + " " + f.Type + "\n")
		lines := make([]string, 0, len(f.Samples))
		for _, s := range f.Samples {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var lb strings.Builder
			lb.WriteString(s.Name)
			if len(keys) > 0 {
				lb.WriteString("{")
				for i, k := range keys {
					if i > 0 {
						lb.WriteString(",")
					}
					// Label values (incl. histogram le bounds) are part of
					// the shape; only sample values are stripped.
					lb.WriteString(k + "=\"" + s.Labels[k] + "\"")
				}
				lb.WriteString("}")
			}
			lb.WriteString(" V")
			lines = append(lines, lb.String())
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l + "\n")
		}
	}
	return b.String()
}
