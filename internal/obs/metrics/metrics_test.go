package metrics

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// sampleLine matches a valid text-exposition sample: name, optional
// labels, a value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-?[0-9.eE+-]+)$`)

func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_done_total", "Finished jobs.")
	g := r.NewGauge("queue_depth", "Jobs waiting.")
	h := r.NewHistogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10})

	c.Add(3)
	c.Inc()
	g.Set(7)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP jobs_done_total Finished jobs.",
		"# TYPE jobs_done_total counter",
		"jobs_done_total 4",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every non-comment line must be a parseable sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
	}
}

func TestCollectorFuncSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(e *Emitter) {
		// A server-side collector emits several families from one snapshot.
		e.Gauge("a", "first", 1)
		e.Counter("b_total", "second", 2)
	}))
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "a 1\n") || !strings.Contains(got, "b_total 2\n") {
		t.Fatalf("collector output wrong:\n%s", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}
