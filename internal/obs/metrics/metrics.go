// Package metrics is a small, dependency-free metrics registry exposing
// the Prometheus text exposition format (the role of client_golang,
// without the dependency). It supports monotonic counters, gauges,
// fixed-bucket histograms, and scrape-time collector functions so a
// server can emit every gauge from one consistent snapshot — the property
// the ptsimd /metrics endpoint relies on to never disagree with /stats
// mid-scrape.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Collector emits zero or more metric families at scrape time.
type Collector interface {
	Collect(e *Emitter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(e *Emitter)

// Collect implements Collector.
func (f CollectorFunc) Collect(e *Emitter) { f(e) }

// Registry is an ordered set of collectors; WriteTo renders them all in
// registration order.
type Registry struct {
	mu sync.Mutex
	cs []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.cs = append(r.cs, c)
	r.mu.Unlock()
}

// NewCounter registers and returns a monotonic counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.Register(c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.Register(g)
	return g
}

// NewHistogram registers and returns a histogram over the given ascending
// bucket upper bounds (an implicit +Inf bucket is always added).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := &Histogram{name: name, help: help,
		buckets: append([]float64(nil), buckets...),
		counts:  make([]uint64, len(buckets))}
	r.Register(h)
	return h
}

// WriteTo renders every registered collector in the Prometheus text
// exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	cs := append([]Collector(nil), r.cs...)
	r.mu.Unlock()
	e := &Emitter{w: w}
	for _, c := range cs {
		c.Collect(e)
	}
	return e.n, e.err
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// --- instruments ----------------------------------------------------------

// Counter is a monotonically increasing integer counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Collect implements Collector.
func (c *Counter) Collect(e *Emitter) { e.Counter(c.name, c.help, float64(c.v.Load())) }

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collect implements Collector.
func (g *Gauge) Collect(e *Emitter) { e.Gauge(g.name, g.help, g.Value()) }

// Histogram counts observations into fixed buckets.
type Histogram struct {
	name, help string
	mu         sync.Mutex
	buckets    []float64 // ascending upper bounds
	counts     []uint64  // per-bucket (non-cumulative) counts
	sum        float64
	count      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Collect implements Collector.
func (h *Histogram) Collect(e *Emitter) {
	h.mu.Lock()
	buckets := append([]float64(nil), h.buckets...)
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	e.Histogram(h.name, h.help, buckets, counts, sum, count)
}

// --- text exposition -------------------------------------------------------

// Emitter writes metric families in the text exposition format. Errors are
// sticky: after the first write error every call is a no-op.
type Emitter struct {
	w   io.Writer
	n   int64
	err error
}

func (e *Emitter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	n, err := fmt.Fprintf(e.w, format, args...)
	e.n += int64(n)
	e.err = err
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *Emitter) header(name, help, typ string) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter family with a single sample.
func (e *Emitter) Counter(name, help string, v float64) {
	e.header(name, help, "counter")
	e.printf("%s %s\n", name, fmtFloat(v))
}

// Gauge emits one gauge family with a single sample.
func (e *Emitter) Gauge(name, help string, v float64) {
	e.header(name, help, "gauge")
	e.printf("%s %s\n", name, fmtFloat(v))
}

// LabeledSample is one sample of a labeled family: value keyed by one
// label value.
type LabeledSample struct {
	Label string
	Value float64
}

// CounterVec emits one counter family with one sample per label value
// (e.g. ptsimd_energy_joules_total{unit="sa"}). Samples render in the
// given order so scrapes are byte-stable.
func (e *Emitter) CounterVec(name, help, label string, samples []LabeledSample) {
	e.header(name, help, "counter")
	for _, s := range samples {
		e.printf("%s{%s=%q} %s\n", name, label, s.Label, fmtFloat(s.Value))
	}
}

// GaugeVec emits one gauge family with one sample per label value
// (e.g. ptsimfleet_tenant_queued{tenant="a"}). Samples render in the given
// order so scrapes are byte-stable.
func (e *Emitter) GaugeVec(name, help, label string, samples []LabeledSample) {
	e.header(name, help, "gauge")
	for _, s := range samples {
		e.printf("%s{%s=%q} %s\n", name, label, s.Label, fmtFloat(s.Value))
	}
}

// Histogram emits one histogram family: cumulative buckets, +Inf, sum and
// count.
func (e *Emitter) Histogram(name, help string, buckets []float64, counts []uint64, sum float64, count uint64) {
	e.header(name, help, "histogram")
	var cum uint64
	for i, ub := range buckets {
		cum += counts[i]
		e.printf("%s_bucket{le=%q} %d\n", name, fmtFloat(ub), cum)
	}
	e.printf("%s_bucket{le=\"+Inf\"} %d\n", name, count)
	e.printf("%s_sum %s\n", name, fmtFloat(sum))
	e.printf("%s_count %d\n", name, count)
}
