package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// Event is one Chrome trace-event JSON object, the subset Perfetto's
// legacy JSON importer understands: "M" metadata (process/thread names),
// "X" complete spans (ts + dur), and "C" counter samples. Timestamps are
// simulated cycles exported as microseconds, so 1 trace µs = 1 cycle.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON document ui.perfetto.dev accepts.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// TraceWriter is a Probe that buffers events in memory and exports them as
// Chrome trace-event JSON loadable by ui.perfetto.dev (or
// chrome://tracing). It is safe for concurrent emission.
type TraceWriter struct {
	mu     sync.Mutex
	procs  map[int32]string
	lanes  map[Track]string
	events []Event
}

// NewTraceWriter returns an empty trace buffer.
func NewTraceWriter() *TraceWriter {
	return &TraceWriter{
		procs: map[int32]string{},
		lanes: map[Track]string{},
	}
}

// TrackName implements Probe.
func (t *TraceWriter) TrackName(tr Track, process, lane string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[tr.PID] = process
	t.lanes[tr] = lane
}

// Span implements Probe.
func (t *TraceWriter) Span(tr Track, name string, start, end int64, info SpanInfo) {
	if end <= start {
		end = start + 1 // Perfetto hides zero-width spans; clamp to one cycle
	}
	ev := Event{Name: name, Ph: "X", TS: start, Dur: end - start, PID: tr.PID, TID: tr.TID}
	if info.Wait != 0 || info.Bytes != 0 {
		args := make(map[string]any, 3)
		if info.Wait != 0 {
			args["wait_cycles"] = info.Wait
			args["exec_cycles"] = (end - start) - info.Wait
		}
		if info.Bytes != 0 {
			args["bytes"] = info.Bytes
		}
		ev.Args = args
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Counter implements Probe.
func (t *TraceWriter) Counter(tr Track, name string, cycle int64, value float64) {
	ev := Event{Name: name, Ph: "C", TS: cycle, PID: tr.PID, TID: tr.TID,
		Args: map[string]any{"value": value}}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns the buffered span/counter events sorted by timestamp
// (metadata excluded), mainly for tests.
func (t *TraceWriter) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Len returns the number of buffered span/counter events.
func (t *TraceWriter) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo exports the trace as a single JSON document: metadata events
// first (processes by pid, lanes by pid/tid), then all span and counter
// events in monotonically non-decreasing timestamp order.
func (t *TraceWriter) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	all := make([]Event, 0, len(t.procs)+len(t.lanes)+len(t.events))
	pids := make([]int32, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		all = append(all, Event{Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": t.procs[pid]}})
	}
	tracks := make([]Track, 0, len(t.lanes))
	for tr := range t.lanes {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		a, b := tracks[i], tracks[j]
		return a.PID < b.PID || (a.PID == b.PID && a.TID < b.TID)
	})
	for _, tr := range tracks {
		all = append(all, Event{Name: "thread_name", Ph: "M", PID: tr.PID, TID: tr.TID,
			Args: map[string]any{"name": t.lanes[tr]}})
	}
	body := append([]Event(nil), t.events...)
	t.mu.Unlock()

	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	all = append(all, body...)

	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	err := enc.Encode(traceFile{TraceEvents: all, DisplayTimeUnit: "ms"})
	return cw.n, err
}

// WriteFile exports the trace to path.
func (t *TraceWriter) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

var _ Probe = (*TraceWriter)(nil)
