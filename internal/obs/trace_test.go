package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceWriterGolden pins the exact JSON a small trace exports to: the
// Perfetto-loadable envelope, metadata first, then events sorted by
// timestamp even when emitted out of order.
func TestTraceWriterGolden(t *testing.T) {
	tw := NewTraceWriter()
	tw.TrackName(CoreTrack(0, LaneSA), "core 0", "SA")
	tw.TrackName(CoreTrack(0, LaneDMA), "core 0", "DMA")
	// Emit out of timestamp order on purpose.
	tw.Span(CoreTrack(0, LaneSA), "gemm_128", 50, 80, SpanInfo{Wait: 10})
	tw.Span(CoreTrack(0, LaneDMA), "load in", 5, 40, SpanInfo{Bytes: 4096})
	tw.Counter(DRAMTrack, "dram.inflight", 20, 3)

	var buf bytes.Buffer
	if _, err := tw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"core 0"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"SA"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":4,"args":{"name":"DMA"}},` +
		`{"name":"load in","ph":"X","ts":5,"dur":35,"pid":0,"tid":4,"args":{"bytes":4096}},` +
		`{"name":"dram.inflight","ph":"C","ts":20,"pid":1048576,"tid":1,"args":{"value":3}},` +
		`{"name":"gemm_128","ph":"X","ts":50,"dur":30,"pid":0,"tid":1,"args":{"exec_cycles":20,"wait_cycles":10}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestTraceWriterValidEvents checks the structural invariants any exported
// trace must satisfy: the document parses, every event has a valid ph,
// complete events carry ts and positive dur, and non-metadata events are
// monotonically ordered by ts.
func TestTraceWriterValidEvents(t *testing.T) {
	tw := NewTraceWriter()
	tw.TrackName(CoreTrack(1, LaneVector), "core 1", "vector")
	for i := int64(10); i > 0; i-- {
		tw.Span(CoreTrack(1, LaneVector), "op", i*100, i*100+37, SpanInfo{})
		tw.Counter(NoCTrack, "noc.inflight", i*50, float64(i))
	}
	tw.Span(CoreTrack(1, LaneVector), "instant", 7, 7, SpanInfo{}) // zero-width clamps to 1

	var buf bytes.Buffer
	if _, err := tw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2+21 {
		t.Fatalf("event count = %d, want 23", len(doc.TraceEvents))
	}
	last := int64(-1)
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if i > 0 && doc.TraceEvents[i-1].Ph != "M" {
				t.Fatalf("metadata event %d after non-metadata", i)
			}
			continue
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %d", ev.Name, ev.Dur)
			}
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter event %q missing value", ev.Name)
			}
		default:
			t.Fatalf("unknown ph %q", ev.Ph)
		}
		if ev.TS < last {
			t.Fatalf("event %d (%q) ts %d < previous %d: not monotonic", i, ev.Name, ev.TS, last)
		}
		last = ev.TS
	}
}
