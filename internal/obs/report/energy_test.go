package report

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
)

func sampleTotals() (npu.Config, ActivityTotals) {
	cfg := npu.SmallConfig()
	return cfg, ActivityTotals{
		Cycles:      10_000,
		SAMacCycles: 4_000, SATileLoads: 16,
		VectorCycles: 1_000, SparseCycles: 500,
		SpadReadBytes: 1 << 16, SpadWriteBytes: 1 << 17,
		DRAMActivates: 300, DRAMBytes: 1 << 20,
		NoCFlits: 2_000, LinkFlits: 100,
	}
}

// TestBuildEnergySumsExactly: the total is defined as the sum of the unit
// fields in declaration order, so equality must hold bitwise — the
// contract the smoke script and the energy-determinism oracle re-check
// end to end.
func TestBuildEnergySumsExactly(t *testing.T) {
	cfg, a := sampleTotals()
	e := BuildEnergy(cfg, a)
	if e == nil {
		t.Fatal("nil energy report for a priced config")
	}
	var sum float64
	units := e.UnitMilliJ()
	if len(units) != len(EnergyUnits) {
		t.Fatalf("UnitMilliJ has %d entries, EnergyUnits %d", len(units), len(EnergyUnits))
	}
	for i, u := range units {
		if u.Unit != EnergyUnits[i] {
			t.Fatalf("unit %d is %q, want %q", i, u.Unit, EnergyUnits[i])
		}
		sum += u.MJ
	}
	if sum != e.TotalMilliJ {
		t.Fatalf("unit sum %v != total %v", sum, e.TotalMilliJ)
	}
	if e.TotalMilliJ <= 0 || e.AvgPowerW <= 0 || e.PJPerCycle <= 0 || e.AreaMM2 <= 0 {
		t.Fatalf("derived figures missing: %+v", e)
	}
}

func TestBuildEnergyZeroTableDisables(t *testing.T) {
	cfg, a := sampleTotals()
	cfg.Energy = npu.EnergyTable{}
	if e := BuildEnergy(cfg, a); e != nil {
		t.Fatalf("zero table must disable energy reporting, got %+v", e)
	}
}

// TestTotalsAggregatesJobs: run-wide totals sum per-job activity and adopt
// the memory-side counters (row misses are activations).
func TestTotalsAggregatesJobs(t *testing.T) {
	res := togsim.Result{
		Cycles: 500,
		Jobs: []togsim.JobResult{
			{Activity: togsim.Activity{SAMacCycles: 10, SpadReadBytes: 100}},
			{Activity: togsim.Activity{SAMacCycles: 5, VectorCycles: 7, SpadWriteBytes: 50}},
		},
	}
	mem := &dram.Stats{RowMisses: 42, TotalBytes: 4096}
	a := Totals(res, mem, 9, 3)
	want := ActivityTotals{
		Cycles: 500, SAMacCycles: 15, VectorCycles: 7,
		SpadReadBytes: 100, SpadWriteBytes: 50,
		DRAMActivates: 42, DRAMBytes: 4096, NoCFlits: 9, LinkFlits: 3,
	}
	if a != want {
		t.Fatalf("Totals = %+v, want %+v", a, want)
	}
	if b := Totals(res, nil, 0, 0); b.DRAMActivates != 0 || b.DRAMBytes != 0 {
		t.Fatalf("flat-latency run must report zero DRAM activity: %+v", b)
	}
}
