package report

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
)

func sampleInputs() (npu.Config, togsim.Result, *dram.Stats) {
	cfg := npu.SmallConfig()
	cfg.FreqMHz = 1000
	cfg.Cores = 2
	res := togsim.Result{
		Cycles: 10_000,
		Jobs: []togsim.JobResult{{
			Name: "gemm", Start: 100, End: 8100,
			ComputeBusy: 4000, UnitWait: 500, DMAWait: 2500, DMABytes: 1 << 20,
		}},
		Cores: []togsim.CoreStats{
			{SABusy: 4000, VectorBusy: 1000},
			{},
		},
	}
	mem := &dram.Stats{
		Reads: 800, Writes: 200, RowHits: 700, RowMisses: 300,
		TotalBytes: int64(1000 * cfg.Mem.BurstBytes),
	}
	return cfg, res, mem
}

func TestBuild(t *testing.T) {
	cfg, res, mem := sampleInputs()
	r := Build(cfg, Inputs{Res: res, Mem: mem, Wall: 50 * time.Millisecond})

	if r.Cycles != 10_000 || r.FreqMHz != 1000 {
		t.Fatalf("header wrong: %+v", r)
	}
	if r.SimulatedMs != 0.01 {
		t.Fatalf("SimulatedMs = %v, want 0.01", r.SimulatedMs)
	}
	if len(r.Cores) != 2 || len(r.Jobs) != 1 || r.Mem == nil {
		t.Fatalf("sections missing: %+v", r)
	}
	if want := res.Cores[0].SAUtil(res.Cycles, cfg.Core.NumSAs); r.Cores[0].SAUtil != want {
		t.Fatalf("SAUtil = %v, want %v", r.Cores[0].SAUtil, want)
	}
	j := r.Jobs[0]
	if j.TotalCycles != 8000 {
		t.Fatalf("TotalCycles = %d, want 8000", j.TotalCycles)
	}
	if j.OtherCycles != 8000-4000-500-2500 {
		t.Fatalf("OtherCycles = %d", j.OtherCycles)
	}
	if j.ComputeFrac != 0.5 || j.DMAWaitFrac != 2500.0/8000 {
		t.Fatalf("fractions wrong: %+v", j)
	}
	if r.Mem.AchievedBpc <= 0 || r.Mem.PeakBpc <= 0 || r.Mem.BandwidthUtil <= 0 {
		t.Fatalf("memory bandwidth not derived: %+v", r.Mem)
	}
	if r.Mem.BandwidthUtil != r.Mem.AchievedBpc/r.Mem.PeakBpc {
		t.Fatalf("BandwidthUtil inconsistent: %+v", r.Mem)
	}
}

// TestBuildClampsOther: inconsistent inputs (waits exceeding the span) must
// clamp OtherCycles at zero rather than going negative.
func TestBuildClampsOther(t *testing.T) {
	cfg, res, _ := sampleInputs()
	res.Jobs[0].DMAWait = 100_000
	r := Build(cfg, Inputs{Res: res})
	if r.Jobs[0].OtherCycles != 0 {
		t.Fatalf("OtherCycles = %d, want clamped 0", r.Jobs[0].OtherCycles)
	}
	if r.Mem != nil {
		t.Fatal("nil dram stats must produce nil Mem section")
	}
}

// TestSummaryFormat pins the smoke-test contract: the summary starts with
// the cycle count so scripts can parse `^TLS: ([0-9]*) cycles`.
func TestSummaryFormat(t *testing.T) {
	cfg, res, mem := sampleInputs()
	r := Build(cfg, Inputs{Res: res, Mem: mem, Wall: 50 * time.Millisecond})
	s := r.Summary()
	if !regexp.MustCompile(`^10000 cycles \(0\.010 ms simulated @ 1000 MHz, 50 ms host\)$`).MatchString(s) {
		t.Fatalf("summary format drifted: %q", s)
	}
	noWall := Build(cfg, Inputs{Res: res, Mem: mem}).Summary()
	if strings.Contains(noWall, "host") {
		t.Fatalf("zero wall time must omit host clause: %q", noWall)
	}
}

func TestTextBreakdown(t *testing.T) {
	cfg, res, mem := sampleInputs()
	txt := Build(cfg, Inputs{Res: res, Mem: mem}).Text()
	for _, want := range []string{"core 0:", `job "gemm"`, "dma-stall", "DRAM:", "bandwidth"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "core 1:") {
		t.Fatalf("idle core must be omitted:\n%s", txt)
	}
}

// TestJSONRoundTrip: the report is the daemon response payload, so it must
// serialize with stable field names.
func TestJSONRoundTrip(t *testing.T) {
	cfg, res, mem := sampleInputs()
	b, err := json.Marshal(Build(cfg, Inputs{Res: res, Mem: mem}))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cycles"`, `"sa_util"`, `"dma_wait_cycles"`, `"bandwidth_util"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON missing %s: %s", key, b)
		}
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != 10_000 || len(back.Jobs) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
