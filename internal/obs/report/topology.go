package report

import (
	"fmt"
	"strings"

	"repro/internal/npu"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// PackageReport is one package's slice of a multi-package run: the cycle
// and traffic counters of the ranks placed on its cores, its local HBM
// stack's traffic, the serialization slots on its outgoing mesh links, and
// the energy those counters price to. The integer counters of all packages
// sum exactly to the fabric-wide totals (they are disjoint int64 splits of
// the same events); EnergyMilliJ sums to TopologyReport.EnergyMilliJ
// bitwise because the latter is defined as the ordered sum.
type PackageReport struct {
	Package          int     `json:"package"`
	ComputeCycles    int64   `json:"compute_cycles"`
	CollectiveCycles int64   `json:"collective_cycles"`
	Collectives      int64   `json:"collectives"`
	LocalBytes       int64   `json:"local_bytes"`
	RemoteBytes      int64   `json:"remote_bytes"`
	LinkFlits        int64   `json:"link_flits"`
	DRAMBytes        int64   `json:"dram_bytes"`
	EnergyMilliJ     float64 `json:"energy_mj,omitempty"`
}

// TopologyReport is the multi-package breakdown of a run on a topo.Fabric:
// per-package counters plus the collective-time roll-up. EnergyMilliJ is
// the exact sum of the per-package energies in package order (same
// bitwise-sums-to-total contract as EnergyReport.TotalMilliJ).
type TopologyReport struct {
	Name             string          `json:"name,omitempty"`
	Packages         int             `json:"packages"`
	PerPackage       []PackageReport `json:"per_package"`
	CollectiveCycles int64           `json:"collective_cycles"`
	Collectives      int64           `json:"collectives"`
	LinkFlits        int64           `json:"link_flits"`
	EnergyMilliJ     float64         `json:"energy_mj,omitempty"`
}

// buildTopology derives the per-package breakdown from the fabric the run
// used. Jobs are attributed to the package owning their core; each
// package's energy is priced from its own activity slice with the same
// table as the run-wide EnergyReport (static leakage charged per package
// core count, DRAM from the package's local controller, link from the
// package's outgoing flits).
func buildTopology(cfg npu.Config, res togsim.Result, fab *topo.Fabric) *TopologyReport {
	tc := fab.Config()
	parts := tc.Packages()
	tr := &TopologyReport{
		Name:       tc.Name,
		Packages:   parts,
		PerPackage: make([]PackageReport, parts),
		LinkFlits:  fab.LinkFlits,
	}
	acts := make([]ActivityTotals, parts)
	for p := 0; p < parts; p++ {
		pr := &tr.PerPackage[p]
		pr.Package = p
		pr.LocalBytes = fab.Pkg[p].LocalBytes
		pr.RemoteBytes = fab.Pkg[p].RemoteBytes
		pr.LinkFlits = fab.Pkg[p].LinkFlits
		ms := fab.Mem(p).Stats
		pr.DRAMBytes = ms.TotalBytes
		acts[p] = ActivityTotals{
			Cycles:        res.Cycles,
			DRAMActivates: ms.RowMisses,
			DRAMBytes:     ms.TotalBytes,
			LinkFlits:     fab.Pkg[p].LinkFlits,
		}
	}
	for _, j := range res.Jobs {
		p := tc.PackageOfCore(j.Core)
		pr := &tr.PerPackage[p]
		pr.ComputeCycles += j.ComputeBusy
		pr.CollectiveCycles += j.CollectiveCycles
		pr.Collectives += j.Collectives
		tr.CollectiveCycles += j.CollectiveCycles
		tr.Collectives += j.Collectives
		acts[p].SAMacCycles += j.Activity.SAMacCycles
		acts[p].SATileLoads += j.Activity.SATileLoads
		acts[p].VectorCycles += j.Activity.VectorCycles
		acts[p].SparseCycles += j.Activity.SparseCycles
		acts[p].SpadReadBytes += j.Activity.SpadReadBytes
		acts[p].SpadWriteBytes += j.Activity.SpadWriteBytes
	}
	// Price each package with the package-local machine: its own cores for
	// static leakage, its own stack and links for memory traffic.
	pkgCfg := cfg
	pkgCfg.Cores = tc.CoresPerPackage
	for p := 0; p < parts; p++ {
		if e := BuildEnergy(pkgCfg, acts[p]); e != nil {
			tr.PerPackage[p].EnergyMilliJ = e.TotalMilliJ
			tr.EnergyMilliJ += tr.PerPackage[p].EnergyMilliJ
		}
	}
	return tr
}

// Text renders the per-package block of the CLI text report.
func (t TopologyReport) Text() string {
	var b strings.Builder
	for _, p := range t.PerPackage {
		fmt.Fprintf(&b, "package %d: compute %d cycles, collective %d cycles, %.1f MB local, %.1f MB remote, %d link flits",
			p.Package, p.ComputeCycles, p.CollectiveCycles,
			float64(p.LocalBytes)/1e6, float64(p.RemoteBytes)/1e6, p.LinkFlits)
		if p.EnergyMilliJ > 0 {
			fmt.Fprintf(&b, ", %.3f mJ", p.EnergyMilliJ)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "topology %s: %d packages, %d link flits, collective %d cycles over %d regions",
		t.Name, t.Packages, t.LinkFlits, t.CollectiveCycles, t.Collectives)
	if t.EnergyMilliJ > 0 {
		fmt.Fprintf(&b, ", %.3f mJ across packages", t.EnergyMilliJ)
	}
	b.WriteByte('\n')
	return b.String()
}
