package report

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
)

// ActivityTotals is the run-wide roll-up of the simulators' plain int64
// activity counters — the only inputs energy derivation is allowed to use.
// Because every field is an integer that is bit-identical across the
// strict, event-driven, and parallel engines, the floats derived from them
// are bit-identical too (same values through the same expressions).
type ActivityTotals struct {
	Cycles         int64 `json:"cycles"`
	SAMacCycles    int64 `json:"sa_mac_cycles"`
	SATileLoads    int64 `json:"sa_tile_loads"`
	VectorCycles   int64 `json:"vector_cycles"`
	SparseCycles   int64 `json:"sparse_cycles,omitempty"`
	SpadReadBytes  int64 `json:"spad_read_bytes"`
	SpadWriteBytes int64 `json:"spad_write_bytes"`
	DRAMActivates  int64 `json:"dram_activates"`
	DRAMBytes      int64 `json:"dram_bytes"`
	NoCFlits       int64 `json:"noc_flits"`
	LinkFlits      int64 `json:"link_flits,omitempty"`
}

// Totals aggregates one engine run: per-job activity from the Result plus
// the memory-side counters. mem may be nil (flat-latency fabric).
func Totals(res togsim.Result, mem *dram.Stats, nocFlits, linkFlits int64) ActivityTotals {
	t := ActivityTotals{Cycles: res.Cycles, NoCFlits: nocFlits, LinkFlits: linkFlits}
	for _, j := range res.Jobs {
		t.SAMacCycles += j.Activity.SAMacCycles
		t.SATileLoads += j.Activity.SATileLoads
		t.VectorCycles += j.Activity.VectorCycles
		t.SparseCycles += j.Activity.SparseCycles
		t.SpadReadBytes += j.Activity.SpadReadBytes
		t.SpadWriteBytes += j.Activity.SpadWriteBytes
	}
	if mem != nil {
		t.DRAMActivates = mem.RowMisses
		t.DRAMBytes = mem.TotalBytes
	}
	return t
}

// Add accumulates b into a (phase roll-ups in the serving layer). Cycles
// add too: phases are disjoint slices of the serve timeline.
func (a *ActivityTotals) Add(b ActivityTotals) {
	a.Cycles += b.Cycles
	a.SAMacCycles += b.SAMacCycles
	a.SATileLoads += b.SATileLoads
	a.VectorCycles += b.VectorCycles
	a.SparseCycles += b.SparseCycles
	a.SpadReadBytes += b.SpadReadBytes
	a.SpadWriteBytes += b.SpadWriteBytes
	a.DRAMActivates += b.DRAMActivates
	a.DRAMBytes += b.DRAMBytes
	a.NoCFlits += b.NoCFlits
	a.LinkFlits += b.LinkFlits
}

// EnergyReport is the per-unit energy breakdown of one run (or one serving
// phase). All energies are millijoules; TotalMilliJ is the exact sum of
// the unit fields in declaration order, so "breakdown sums to total" holds
// bitwise, not just within a tolerance.
type EnergyReport struct {
	SAMilliJ     float64 `json:"sa_mj"`
	VectorMilliJ float64 `json:"vector_mj"`
	SpadMilliJ   float64 `json:"spad_mj"`
	DRAMMilliJ   float64 `json:"dram_mj"`
	NoCMilliJ    float64 `json:"noc_mj"`
	LinkMilliJ   float64 `json:"link_mj"`
	StaticMilliJ float64 `json:"static_mj"`
	TotalMilliJ  float64 `json:"total_mj"`

	AvgPowerW  float64 `json:"avg_power_w,omitempty"`
	PJPerCycle float64 `json:"pj_per_cycle,omitempty"`
	AreaMM2    float64 `json:"area_mm2,omitempty"`
}

// EnergyUnits is the fixed unit-class order every exporter renders in
// (reports, /metrics, /stats), so scrapes are byte-stable run to run.
var EnergyUnits = []string{"sa", "vector", "spad", "dram", "noc", "link", "static"}

// UnitMilliJ returns the per-unit breakdown as (class, mJ) pairs in the
// fixed declaration order, for exporters that label by unit class.
func (e EnergyReport) UnitMilliJ() []struct {
	Unit string
	MJ   float64
} {
	return []struct {
		Unit string
		MJ   float64
	}{
		{"sa", e.SAMilliJ},
		{"vector", e.VectorMilliJ},
		{"spad", e.SpadMilliJ},
		{"dram", e.DRAMMilliJ},
		{"noc", e.NoCMilliJ},
		{"link", e.LinkMilliJ},
		{"static", e.StaticMilliJ},
	}
}

// BuildEnergy prices the activity totals with the config's energy table.
// It returns nil when the table is zero (energy reporting disabled). The
// derivation is strictly post-hoc: nothing here feeds back into any
// simulator, and identical totals produce identical floats.
func BuildEnergy(cfg npu.Config, a ActivityTotals) *EnergyReport {
	t := cfg.Energy
	if t.IsZero() {
		return nil
	}
	pes := float64(cfg.Core.SARows) * float64(cfg.Core.SACols)
	vlen := float64(cfg.Core.VLEN())
	e := &EnergyReport{
		// One SA busy cycle streams one input row across rows x cols PEs;
		// one tile load streams a rows x cols weight set into the array.
		SAMilliJ: (float64(a.SAMacCycles)*pes*t.PJPerMAC +
			float64(a.SATileLoads)*pes*t.PJPerWeightLoad) / 1e9,
		// Vector and sparse units run VLEN lanes in lockstep per busy cycle.
		VectorMilliJ: float64(a.VectorCycles+a.SparseCycles) * vlen * t.PJPerLaneOp / 1e9,
		SpadMilliJ: (float64(a.SpadReadBytes)*t.PJPerSpadRead +
			float64(a.SpadWriteBytes)*t.PJPerSpadWrite) / 1e9,
		DRAMMilliJ: (float64(a.DRAMActivates)*t.PJPerDRAMAct +
			float64(a.DRAMBytes)*t.PJPerDRAMByte) / 1e9,
		NoCMilliJ:    float64(a.NoCFlits) * t.PJPerFlitHop / 1e9,
		LinkMilliJ:   float64(a.LinkFlits) * t.PJPerLinkFlit / 1e9,
		StaticMilliJ: float64(a.Cycles) * float64(cfg.Cores) * t.StaticPJPerCyc / 1e9,
		AreaMM2:      cfg.TotalAreaMM2(),
	}
	e.TotalMilliJ = e.SAMilliJ + e.VectorMilliJ + e.SpadMilliJ + e.DRAMMilliJ +
		e.NoCMilliJ + e.LinkMilliJ + e.StaticMilliJ
	if a.Cycles > 0 {
		e.PJPerCycle = e.TotalMilliJ * 1e9 / float64(a.Cycles)
		if cfg.FreqMHz > 0 {
			// total_mJ / simulated_ms = average watts.
			simMs := float64(a.Cycles) / float64(cfg.FreqMHz) / 1e3
			e.AvgPowerW = e.TotalMilliJ / simMs
		}
	}
	return e
}

// Text renders the one-block energy summary used by the CLI text reports.
func (e EnergyReport) Text() string {
	s := fmt.Sprintf("energy: %.3f mJ total = SA %.3f + vector %.3f + spad %.3f + DRAM %.3f + NoC %.3f + link %.3f + static %.3f\n",
		e.TotalMilliJ, e.SAMilliJ, e.VectorMilliJ, e.SpadMilliJ, e.DRAMMilliJ,
		e.NoCMilliJ, e.LinkMilliJ, e.StaticMilliJ)
	if e.AvgPowerW > 0 {
		s += fmt.Sprintf("power: %.2f W average (%.0f pJ/cycle)", e.AvgPowerW, e.PJPerCycle)
		if e.AreaMM2 > 0 {
			s += fmt.Sprintf("; core area %.1f mm²", e.AreaMM2)
		}
		s += "\n"
	}
	return s
}
