package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ServeRequestReport is one request's lifecycle through the serving loop,
// in simulated cycles and derived milliseconds.
type ServeRequestReport struct {
	ID           string  `json:"id"`
	ArrivalCycle int64   `json:"arrival_cycle"`
	Prompt       int     `json:"prompt_tokens"`
	Output       int     `json:"output_tokens"`
	FirstToken   int64   `json:"first_token_cycle"` // prefill completion
	Finished     int64   `json:"finished_cycle"`
	TTFTMs       float64 `json:"ttft_ms"`           // first token − arrival
	TPOTMs       float64 `json:"tpot_ms,omitempty"` // mean decode latency per token after the first
}

// BatchSample is one point of the batch-occupancy timeline: how many
// requests were decoded together in the iteration ending at Cycle.
type BatchSample struct {
	Cycle int64 `json:"cycle"`
	Batch int   `json:"batch"`
}

// ServeReport is the outcome of one continuous-batching serving run. All
// latency fields are simulated time; WallMs is the only host-time field and
// is deliberately NOT set by the generator so that two runs of the same
// seeded scenario produce identical reports (the serve-determinism oracle
// compares them with DeepEqual).
type ServeReport struct {
	Model    string `json:"model"`
	NPU      string `json:"npu,omitempty"`
	FreqMHz  int    `json:"freq_mhz"`
	MaxBatch int    `json:"max_batch"`
	KVBlock  int    `json:"kv_block"`

	Requests    int     `json:"requests"`
	TokensOut   int64   `json:"tokens_out"`
	Cycles      int64   `json:"cycles"` // makespan: last request finished
	SimulatedMs float64 `json:"simulated_ms"`
	WallMs      float64 `json:"wall_ms,omitempty"` // set by callers, never by the generator

	TokensPerSec float64 `json:"tokens_per_sec"` // per simulated second

	TTFTp50Ms float64 `json:"ttft_p50_ms"`
	TTFTp99Ms float64 `json:"ttft_p99_ms"`
	TPOTp50Ms float64 `json:"tpot_p50_ms"`
	TPOTp99Ms float64 `json:"tpot_p99_ms"`

	// Compile-cache behaviour of the autoregressive loop: prefill compiles
	// once per distinct prompt shape; decode steps past the first at a given
	// (batch, padded-KV) shape must all be cache hits.
	PrefillRuns   int64 `json:"prefill_runs"`
	PrefillHits   int64 `json:"prefill_cache_hits"`
	PrefillShapes int   `json:"prefill_shapes"`
	DecodeSteps   int64 `json:"decode_steps"`
	DecodeHits    int64 `json:"decode_cache_hits"`
	DecodeShapes  int   `json:"decode_shapes"`

	// AvgBatchOccupancy is the decode-cycle-weighted mean batch size — how
	// full the continuous batch actually ran.
	AvgBatchOccupancy float64 `json:"avg_batch_occupancy"`

	// Energy, derived post-hoc from per-phase activity totals (nil when the
	// config has no energy table). Phase energies and per-unit breakdowns
	// are deterministic functions of the int64 activity counters, so the
	// serve-determinism oracle's DeepEqual covers them automatically.
	PrefillEnergy *EnergyReport `json:"prefill_energy,omitempty"`
	DecodeEnergy  *EnergyReport `json:"decode_energy,omitempty"`
	TotalEnergyMJ float64       `json:"total_energy_mj,omitempty"`
	// EnergyPerTokenMJ is total serving energy amortized over every token
	// produced — the LLM serving efficiency figure the bench sweeps.
	EnergyPerTokenMJ float64 `json:"energy_per_token_mj,omitempty"`
	AvgPowerW        float64 `json:"avg_power_w,omitempty"`

	PerRequest []ServeRequestReport `json:"per_request,omitempty"`
	Timeline   []BatchSample        `json:"timeline,omitempty"`
}

// Percentile returns the nearest-rank q-th percentile of xs (q in (0,100]).
// It sorts a copy; an empty input yields 0.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(q / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Summary is the one-line serving summary (smoke tests parse the
// tokens/s figure).
func (r ServeReport) Summary() string {
	return fmt.Sprintf("%d requests, %d tokens in %.3f ms simulated (%.0f tokens/s)",
		r.Requests, r.TokensOut, r.SimulatedMs, r.TokensPerSec)
}

// Text renders the multi-line serving breakdown: latency percentiles,
// compile-cache behaviour of the prefill/decode loop, and batch occupancy.
func (r ServeReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving %q: %s\n", r.Model, r.Summary())
	fmt.Fprintf(&b, "TTFT p50 %.3f ms, p99 %.3f ms; TPOT p50 %.3f ms, p99 %.3f ms\n",
		r.TTFTp50Ms, r.TTFTp99Ms, r.TPOTp50Ms, r.TPOTp99Ms)
	fmt.Fprintf(&b, "prefill: %d runs over %d shapes (%d cache hits); decode: %d steps over %d shapes (%d cache hits)\n",
		r.PrefillRuns, r.PrefillShapes, r.PrefillHits, r.DecodeSteps, r.DecodeShapes, r.DecodeHits)
	fmt.Fprintf(&b, "batch occupancy: avg %.2f of max %d (kv block %d)\n",
		r.AvgBatchOccupancy, r.MaxBatch, r.KVBlock)
	if r.TotalEnergyMJ > 0 {
		pf, dc := 0.0, 0.0
		if r.PrefillEnergy != nil {
			pf = r.PrefillEnergy.TotalMilliJ
		}
		if r.DecodeEnergy != nil {
			dc = r.DecodeEnergy.TotalMilliJ
		}
		fmt.Fprintf(&b, "energy: %.3f mJ total (prefill %.3f, decode %.3f); %.4f mJ/token; %.2f W average\n",
			r.TotalEnergyMJ, pf, dc, r.EnergyPerTokenMJ, r.AvgPowerW)
	}
	for _, rr := range r.PerRequest {
		fmt.Fprintf(&b, "request %s: arrive @%d, first token @%d (TTFT %.3f ms), done @%d, %d+%d tokens\n",
			rr.ID, rr.ArrivalCycle, rr.FirstToken, rr.TTFTMs, rr.Finished, rr.Prompt, rr.Output)
	}
	return b.String()
}
