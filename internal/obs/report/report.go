// Package report derives human- and machine-readable observability
// summaries from a TLS run: per-core compute-unit utilization, memory
// bandwidth utilization, and a compute/unit-wait/DMA-stall cycle breakdown
// per job. It is the single source of truth for run summaries — ptsim,
// togsim, and the ptsimd job response all render the same Report, so the
// CLI text, -json output, and daemon API can never drift apart.
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// CoreReport is one core's compute-unit utilization over the run.
type CoreReport struct {
	Core       int     `json:"core"`
	SAUtil     float64 `json:"sa_util"`
	VectorUtil float64 `json:"vector_util"`
	SparseUtil float64 `json:"sparse_util,omitempty"`
}

// JobReport is one job's cycle breakdown. The four cycle classes
// partition [Start, End): executing on a compute unit, waiting for a busy
// unit, stalled on DMA (wait nodes, drains, fabric backpressure), and
// everything else (node issue, loop bookkeeping, context scheduling).
type JobReport struct {
	Name          string  `json:"name"`
	Start         int64   `json:"start"`
	End           int64   `json:"end"`
	TotalCycles   int64   `json:"total_cycles"`
	ComputeCycles int64   `json:"compute_cycles"`
	UnitWait      int64   `json:"unit_wait_cycles"`
	DMAWait       int64   `json:"dma_wait_cycles"`
	OtherCycles   int64   `json:"other_cycles"`
	DMABytes      int64   `json:"dma_bytes"`
	ComputeFrac   float64 `json:"compute_frac"`
	DMAWaitFrac   float64 `json:"dma_wait_frac"`

	// Collective time: cycles this job spent inside collective regions
	// (all_reduce/all_gather/reduce_scatter) and how many regions ran.
	CollectiveCycles int64   `json:"collective_cycles,omitempty"`
	Collectives      int64   `json:"collectives,omitempty"`
	CollectiveFrac   float64 `json:"collective_frac,omitempty"`

	// Per-unit activity counters (see togsim.Activity).
	SAMacCycles    int64 `json:"sa_mac_cycles,omitempty"`
	SATileLoads    int64 `json:"sa_tile_loads,omitempty"`
	VectorCycles   int64 `json:"vector_cycles,omitempty"`
	SparseCycles   int64 `json:"sparse_cycles,omitempty"`
	SpadReadBytes  int64 `json:"spad_read_bytes,omitempty"`
	SpadWriteBytes int64 `json:"spad_write_bytes,omitempty"`
}

// RoundsReport surfaces the parallel engine's scheduling split: how much
// of the run executed in concurrent safe windows versus globally ordered
// serial rounds (the ROADMAP item-3 degradation mode). Present only after
// a parallel run.
type RoundsReport struct {
	WindowRounds   int64 `json:"window_rounds"`
	SerialRounds   int64 `json:"serial_rounds"`
	WindowedCycles int64 `json:"windowed_cycles"`
}

// MemReport summarizes DRAM activity and achieved bandwidth.
type MemReport struct {
	Reads         int64   `json:"reads"`
	Writes        int64   `json:"writes"`
	RowHits       int64   `json:"row_hits"`
	RowMisses     int64   `json:"row_misses"`
	RowConflicts  int64   `json:"row_conflicts"`
	TotalBytes    int64   `json:"total_bytes"`
	AchievedBpc   float64 `json:"achieved_bytes_per_cycle"`
	PeakBpc       float64 `json:"peak_bytes_per_cycle"`
	BandwidthUtil float64 `json:"bandwidth_util"`
}

// Report is the derived summary of one timing-simulation run.
type Report struct {
	Cycles      int64           `json:"cycles"`
	FreqMHz     int             `json:"freq_mhz"`
	SimulatedMs float64         `json:"simulated_ms"`
	WallMs      float64         `json:"wall_ms,omitempty"`
	Cores       []CoreReport    `json:"cores,omitempty"`
	Jobs        []JobReport     `json:"jobs,omitempty"`
	Mem         *MemReport      `json:"mem,omitempty"`
	Activity    *ActivityTotals `json:"activity,omitempty"`
	Energy      *EnergyReport   `json:"energy,omitempty"`
	Topology    *TopologyReport `json:"topology,omitempty"`
	Rounds      *RoundsReport   `json:"parallel_rounds,omitempty"`
}

// Inputs bundles everything Build derives a Report from. Res is required;
// the rest default sensibly: Mem may be nil (flat-latency fabric),
// NoCFlits/LinkFlits zero when the fabric has no such model, Rounds zero
// after a serial run, Wall zero when host time was not measured.
type Inputs struct {
	Res       togsim.Result
	Mem       *dram.Stats
	NoCFlits  int64
	LinkFlits int64
	Rounds    togsim.RoundStats
	Wall      time.Duration

	// Topo, when the run used a multi-package topology fabric, yields the
	// per-package breakdown (Report.Topology). Callers still pass the
	// fabric-wide Mem/LinkFlits totals above.
	Topo *topo.Fabric
}

// Build derives a Report from an engine run and the target configuration.
func Build(cfg npu.Config, in Inputs) Report {
	res, mem := in.Res, in.Mem
	r := Report{
		Cycles:  res.Cycles,
		FreqMHz: cfg.FreqMHz,
		WallMs:  float64(in.Wall) / 1e6,
	}
	if cfg.FreqMHz > 0 {
		r.SimulatedMs = float64(res.Cycles) / float64(cfg.FreqMHz) / 1e3
	}
	for ci, cs := range res.Cores {
		cr := CoreReport{Core: ci, SAUtil: cs.SAUtil(res.Cycles, cfg.Core.NumSAs)}
		if res.Cycles > 0 {
			cr.VectorUtil = float64(cs.VectorBusy) / float64(res.Cycles)
			cr.SparseUtil = float64(cs.SparseBusy) / float64(res.Cycles)
		}
		r.Cores = append(r.Cores, cr)
	}
	for _, j := range res.Jobs {
		jr := JobReport{
			Name:          j.Name,
			Start:         j.Start,
			End:           j.End,
			TotalCycles:   j.End - j.Start,
			ComputeCycles: j.ComputeBusy,
			UnitWait:      j.UnitWait,
			DMAWait:       j.DMAWait,
			DMABytes:      j.DMABytes,

			CollectiveCycles: j.CollectiveCycles,
			Collectives:      j.Collectives,

			SAMacCycles:    j.Activity.SAMacCycles,
			SATileLoads:    j.Activity.SATileLoads,
			VectorCycles:   j.Activity.VectorCycles,
			SparseCycles:   j.Activity.SparseCycles,
			SpadReadBytes:  j.Activity.SpadReadBytes,
			SpadWriteBytes: j.Activity.SpadWriteBytes,
		}
		jr.OtherCycles = jr.TotalCycles - jr.ComputeCycles - jr.UnitWait - jr.DMAWait
		if jr.OtherCycles < 0 {
			jr.OtherCycles = 0
		}
		if jr.TotalCycles > 0 {
			jr.ComputeFrac = float64(jr.ComputeCycles) / float64(jr.TotalCycles)
			jr.DMAWaitFrac = float64(jr.DMAWait) / float64(jr.TotalCycles)
			jr.CollectiveFrac = float64(jr.CollectiveCycles) / float64(jr.TotalCycles)
		}
		r.Jobs = append(r.Jobs, jr)
	}
	if mem != nil {
		mr := &MemReport{
			Reads: mem.Reads, Writes: mem.Writes,
			RowHits: mem.RowHits, RowMisses: mem.RowMisses, RowConflicts: mem.RowConflicts,
			TotalBytes: mem.TotalBytes,
			PeakBpc:    float64(cfg.Mem.Channels * cfg.Mem.BurstBytes),
		}
		if res.Cycles > 0 {
			mr.AchievedBpc = float64(mem.TotalBytes) / float64(res.Cycles)
		}
		if mr.PeakBpc > 0 {
			mr.BandwidthUtil = mr.AchievedBpc / mr.PeakBpc
		}
		r.Mem = mr
	}
	totals := Totals(res, mem, in.NoCFlits, in.LinkFlits)
	r.Activity = &totals
	r.Energy = BuildEnergy(cfg, totals)
	if in.Topo != nil {
		r.Topology = buildTopology(cfg, res, in.Topo)
	}
	if in.Rounds.Window > 0 || in.Rounds.Serial > 0 {
		r.Rounds = &RoundsReport{
			WindowRounds:   in.Rounds.Window,
			SerialRounds:   in.Rounds.Serial,
			WindowedCycles: in.Rounds.WindowedCycles,
		}
	}
	return r
}

// Summary is the one-line run summary every CLI prints (and the smoke
// tests parse): cycle count first, then simulated and host time.
func (r Report) Summary() string {
	s := fmt.Sprintf("%d cycles (%.3f ms simulated @ %d MHz", r.Cycles, r.SimulatedMs, r.FreqMHz)
	if r.WallMs > 0 {
		s += fmt.Sprintf(", %.0f ms host", r.WallMs)
	}
	return s + ")"
}

// Text renders the full multi-line breakdown: per-core utilization,
// per-job cycle classes, and DRAM bandwidth.
func (r Report) Text() string {
	var b strings.Builder
	for _, c := range r.Cores {
		if c.SAUtil == 0 && c.VectorUtil == 0 && c.SparseUtil == 0 {
			continue
		}
		fmt.Fprintf(&b, "core %d: SA %.1f%% busy, vector %.1f%% busy", c.Core, 100*c.SAUtil, 100*c.VectorUtil)
		if c.SparseUtil > 0 {
			fmt.Fprintf(&b, ", sparse %.1f%% busy", 100*c.SparseUtil)
		}
		b.WriteByte('\n')
	}
	for _, j := range r.Jobs {
		if j.TotalCycles <= 0 {
			continue
		}
		tot := float64(j.TotalCycles)
		fmt.Fprintf(&b, "job %q: %d cycles = %.1f%% compute, %.1f%% unit-wait, %.1f%% dma-stall, %.1f%% other; %.1f MB DMA",
			j.Name, j.TotalCycles,
			100*float64(j.ComputeCycles)/tot,
			100*float64(j.UnitWait)/tot,
			100*float64(j.DMAWait)/tot,
			100*float64(j.OtherCycles)/tot,
			float64(j.DMABytes)/1e6)
		if j.Collectives > 0 {
			fmt.Fprintf(&b, "; collectives %d in %d cycles (%.1f%%)",
				j.Collectives, j.CollectiveCycles, 100*float64(j.CollectiveCycles)/tot)
		}
		b.WriteByte('\n')
	}
	if m := r.Mem; m != nil {
		fmt.Fprintf(&b, "DRAM: %d reads, %d writes, row hits %d / misses %d, %.1f B/cycle of %.1f peak (%.1f%% bandwidth)\n",
			m.Reads, m.Writes, m.RowHits, m.RowMisses, m.AchievedBpc, m.PeakBpc, 100*m.BandwidthUtil)
	}
	if e := r.Energy; e != nil {
		b.WriteString(e.Text())
	}
	if t := r.Topology; t != nil {
		b.WriteString(t.Text())
	}
	if rd := r.Rounds; rd != nil {
		fmt.Fprintf(&b, "parallel engine: %d window rounds covering %d cycles, %d serial rounds\n",
			rd.WindowRounds, rd.WindowedCycles, rd.SerialRounds)
	}
	return b.String()
}
