package report

import (
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// topoFixture fakes a finished 2-package run: one rank per package with
// distinct activity, per-package fabric counters, and per-package DRAM
// stats, so the breakdown's attribution and sum contracts are checkable
// without running an engine.
func topoFixture(t *testing.T) (npu.Config, togsim.Result, *topo.Fabric) {
	t.Helper()
	cfg := npu.SmallConfig()
	tc, err := topo.Preset("pkg2", cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	fab := topo.NewFabric(tc)
	fab.LocalBytes, fab.RemoteBytes, fab.LinkFlits = 3000, 1100, 70
	fab.Pkg[0] = topo.PackageStats{LocalBytes: 2000, RemoteBytes: 600, LinkFlits: 30}
	fab.Pkg[1] = topo.PackageStats{LocalBytes: 1000, RemoteBytes: 500, LinkFlits: 40}
	fab.Mem(0).Stats = dram.Stats{Reads: 10, RowMisses: 5, TotalBytes: 2600}
	fab.Mem(1).Stats = dram.Stats{Reads: 6, RowMisses: 3, TotalBytes: 1500}
	res := togsim.Result{
		Cycles: 5000,
		Jobs: []togsim.JobResult{
			{Name: "tp.r0", Core: 0, Start: 0, End: 4000, ComputeBusy: 1500,
				CollectiveCycles: 400, Collectives: 2,
				Activity: togsim.Activity{SAMacCycles: 100, VectorCycles: 50}},
			{Name: "tp.r1", Core: 1, Start: 0, End: 4100, ComputeBusy: 1400,
				CollectiveCycles: 500, Collectives: 2,
				Activity: togsim.Activity{SAMacCycles: 90, VectorCycles: 60}},
		},
		Cores: make([]togsim.CoreStats, 2),
	}
	return cfg, res, fab
}

// The per-package integer counters are disjoint splits of the fabric-wide
// totals, and the topology energy is the exact ordered sum of the
// per-package energies — the "breakdown sums exactly" contract.
func TestTopologyBreakdownSumsExactly(t *testing.T) {
	cfg, res, fab := topoFixture(t)
	r := Build(cfg, Inputs{Res: res, Mem: fab.MemTotals(), LinkFlits: fab.LinkFlits, Topo: fab})
	tr := r.Topology
	if tr == nil || tr.Packages != 2 || len(tr.PerPackage) != 2 {
		t.Fatalf("missing topology breakdown: %+v", tr)
	}
	var local, remote, flits, dramBytes int64
	var energy float64
	for _, p := range tr.PerPackage {
		local += p.LocalBytes
		remote += p.RemoteBytes
		flits += p.LinkFlits
		dramBytes += p.DRAMBytes
		energy += p.EnergyMilliJ
	}
	if local != fab.LocalBytes || remote != fab.RemoteBytes || flits != fab.LinkFlits {
		t.Fatalf("package traffic does not sum to fabric totals: %d/%d/%d", local, remote, flits)
	}
	if flits != tr.LinkFlits {
		t.Fatalf("topology link flits %d != package sum %d", tr.LinkFlits, flits)
	}
	if dramBytes != fab.MemTotals().TotalBytes {
		t.Fatalf("package DRAM bytes %d != controller sum %d", dramBytes, fab.MemTotals().TotalBytes)
	}
	if energy != tr.EnergyMilliJ {
		t.Fatalf("per-package energy sum %.9f != topology energy %.9f", energy, tr.EnergyMilliJ)
	}
	if !cfg.Energy.IsZero() && tr.EnergyMilliJ <= 0 {
		t.Fatal("energy table is live but topology energy is zero")
	}
}

// Jobs land on the package owning their core; collective cycles follow.
func TestTopologyAttributesJobsByPackage(t *testing.T) {
	cfg, res, fab := topoFixture(t)
	r := Build(cfg, Inputs{Res: res, Mem: fab.MemTotals(), LinkFlits: fab.LinkFlits, Topo: fab})
	tr := r.Topology
	p0, p1 := tr.PerPackage[0], tr.PerPackage[1]
	if p0.ComputeCycles != 1500 || p1.ComputeCycles != 1400 {
		t.Fatalf("compute misattributed: %d/%d", p0.ComputeCycles, p1.ComputeCycles)
	}
	if p0.CollectiveCycles != 400 || p1.CollectiveCycles != 500 {
		t.Fatalf("collective cycles misattributed: %d/%d", p0.CollectiveCycles, p1.CollectiveCycles)
	}
	if tr.CollectiveCycles != 900 || tr.Collectives != 4 {
		t.Fatalf("roll-up wrong: %d cycles, %d regions", tr.CollectiveCycles, tr.Collectives)
	}
	if r.Jobs[0].CollectiveCycles != 400 || r.Jobs[0].Collectives != 2 {
		t.Fatalf("job report lost collective fields: %+v", r.Jobs[0])
	}
	txt := r.Text()
	for _, want := range []string{"package 0:", "package 1:", "topology pkg2: 2 packages", "collectives 2 in 400 cycles"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text report missing %q:\n%s", want, txt)
		}
	}
}
