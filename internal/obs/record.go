package obs

// Recorder is a buffering Probe for engines that step simulation domains
// in parallel goroutines: each domain writes into its own Recorder
// (single-threaded by construction), and the engine merges the buffers
// into the real probe at a barrier, in deterministic time-then-domain
// order. That keeps the exported trace independent of goroutine
// interleaving without putting a lock on the instrumentation hot path.
//
// Entries are ordered by the recorder's Now cycle, which the owning
// domain advances as it executes events; within one cycle, insertion
// order is preserved.
type Recorder struct {
	// Now is the ordering key stamped on every recorded call. The owner
	// sets it to the cycle being executed before emitting.
	Now int64

	entries []recEntry
}

// recKind discriminates the buffered call types.
type recKind uint8

const (
	recTrackName recKind = iota
	recSpan
	recCounter
)

type recEntry struct {
	at   int64 // Recorder.Now at emission time
	kind recKind
	t    Track

	name    string
	process string // TrackName only
	start   int64
	end     int64
	info    SpanInfo
	value   float64
}

// TrackName implements Probe.
func (r *Recorder) TrackName(t Track, process, lane string) {
	r.entries = append(r.entries, recEntry{at: r.Now, kind: recTrackName, t: t, process: process, name: lane})
}

// Span implements Probe.
func (r *Recorder) Span(t Track, name string, start, end int64, info SpanInfo) {
	r.entries = append(r.entries, recEntry{at: r.Now, kind: recSpan, t: t, name: name, start: start, end: end, info: info})
}

// Counter implements Probe.
func (r *Recorder) Counter(t Track, name string, cycle int64, value float64) {
	r.entries = append(r.entries, recEntry{at: r.Now, kind: recCounter, t: t, name: name, start: cycle, value: value})
}

// Len returns the number of buffered calls.
func (r *Recorder) Len() int { return len(r.entries) }

var _ Probe = (*Recorder)(nil)

// MergeRecorders replays the buffered calls of every recorder into dst in
// (cycle, recorder index, insertion order) order. Each recorder's entries
// must be in nondecreasing cycle order (true when the owning domain
// executed its events in time order), so the merge preserves global trace
// ordering: what a serial engine would have emitted cycle by cycle, with
// same-cycle events grouped by domain index. Buffers are consumed.
func MergeRecorders(dst Probe, recs ...*Recorder) {
	if dst == nil {
		return
	}
	idx := make([]int, len(recs))
	for {
		best := -1
		var bestAt int64
		for i, r := range recs {
			if idx[i] >= len(r.entries) {
				continue
			}
			if at := r.entries[idx[i]].at; best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		e := &recs[best].entries[idx[best]]
		idx[best]++
		switch e.kind {
		case recTrackName:
			dst.TrackName(e.t, e.process, e.name)
		case recSpan:
			dst.Span(e.t, e.name, e.start, e.end, e.info)
		case recCounter:
			dst.Counter(e.t, e.name, e.start, e.value)
		}
	}
	for _, r := range recs {
		r.entries = r.entries[:0]
	}
}
