// Package obs is the simulation-wide observability layer: a Probe
// interface that simulation components emit trace spans and counter
// samples into, plus the exporters built on it (the Perfetto trace writer
// here, the Prometheus-style registry in obs/metrics, and the derived
// utilization/stall reports in obs/report).
//
// The contract is deliberately asymmetric: instrumentation sites pay for
// observability only when someone is watching. Every probe call site in
// the simulators is guarded by a nil check, and every Probe method takes
// value arguments only, so a disabled (nil) probe adds zero allocations
// and a handful of predicted branches to the engine hot path. Attaching a
// probe must never change simulation results — probes are read-only
// observers, enforced by the equivalence tests in internal/togsim and at
// the repository root.
package obs

// Track identifies one timeline row: a (process, lane) pair in the
// Chrome/Perfetto trace model. Simulators use core ids as PIDs (one
// process group per core, with one lane per compute unit plus DMA and
// stall lanes) and PIDMemory for the shared memory system.
type Track struct {
	PID int32
	TID int32
}

// Lane ids within a core's track group.
const (
	LaneJobs int32 = iota
	LaneSA
	LaneVector
	LaneSparse
	LaneDMA
	LaneStall
	LaneEnergy // cumulative dynamic compute energy (pJ) — slope is power
)

// PIDMemory groups the shared memory-system tracks (fabric, DRAM, NoC,
// chiplet link) under one Perfetto process, away from the core pids.
const PIDMemory int32 = 1 << 20

// PIDCompile groups the compiler's pass spans (lower, codegen, measure,
// emit) under their own Perfetto process. Unlike the simulation tracks,
// compile spans are host-time: start/end are microseconds since the
// beginning of the Compile call, not simulated cycles.
const PIDCompile int32 = 1 << 21

// CompileTrack is the timeline row carrying compiler pass spans.
var CompileTrack = Track{PID: PIDCompile, TID: 0}

// Shared memory-system tracks.
var (
	FabricTrack = Track{PID: PIDMemory, TID: 0}
	DRAMTrack   = Track{PID: PIDMemory, TID: 1}
	NoCTrack    = Track{PID: PIDMemory, TID: 2}
	LinkTrack   = Track{PID: PIDMemory, TID: 3}
)

// CoreTrack returns the track for one lane of one core.
func CoreTrack(core int, lane int32) Track {
	return Track{PID: int32(core), TID: lane}
}

// SpanInfo carries optional span detail by value (no allocation at the
// call site). Zero fields are omitted from exported traces.
type SpanInfo struct {
	// Wait is the leading portion of the span spent queued (e.g. a tile
	// waiting for a busy systolic array) rather than executing.
	Wait int64
	// Bytes is the payload size for DMA/transfer spans.
	Bytes int64
}

// Probe receives simulation trace events. All cycle arguments are in the
// emitting engine's clock domain. Implementations must tolerate events
// arriving out of timestamp order (components complete work at different
// times) and concurrent use is not required — one probe instance observes
// one engine run.
//
// A nil Probe means "disabled"; call sites guard with `if p != nil` so the
// instrumented hot path costs nothing when tracing is off.
type Probe interface {
	// TrackName attaches human-readable names to a track; idempotent.
	TrackName(t Track, process, lane string)
	// Span records a completed interval [start, end) on a track.
	Span(t Track, name string, start, end int64, info SpanInfo)
	// Counter records an instantaneous sample of a named counter series.
	Counter(t Track, name string, cycle int64, value float64)
}

// OffsetProbe shifts every event it forwards by Delta cycles. The serving
// layer uses it to stitch per-iteration engine runs (each starting at
// cycle 0 in its own engine) onto one continuous serve timeline.
type OffsetProbe struct {
	Base  Probe
	Delta int64
}

// TrackName implements Probe (names carry no timestamps; passthrough).
func (o OffsetProbe) TrackName(t Track, process, lane string) {
	o.Base.TrackName(t, process, lane)
}

// Span implements Probe.
func (o OffsetProbe) Span(t Track, name string, start, end int64, info SpanInfo) {
	o.Base.Span(t, name, start+o.Delta, end+o.Delta, info)
}

// Counter implements Probe.
func (o OffsetProbe) Counter(t Track, name string, cycle int64, value float64) {
	o.Base.Counter(t, name, cycle+o.Delta, value)
}
