// Package graph defines the captured computation graph IR — the analog of
// the FX graph / Aten IR the paper's PyTorch 2 frontend produces (§2.2).
// Model builders (internal/nn) emit these graphs; the compiler backend
// (internal/compiler) lowers them to tile loops, kernels, and TOGs; the
// reference executor evaluates them on the host CPU for functional
// validation (the paper validates NPU output against a real CPU).
package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// OpKind enumerates the supported Aten-level operators.
type OpKind string

const (
	// Structural.
	OpInput OpKind = "input" // external input tensor
	OpParam OpKind = "param" // trainable parameter
	OpConst OpKind = "const" // constant tensor

	// Matrix / convolution (lowered to SA kernels).
	OpMatMul   OpKind = "matmul"    // (M,K) x (K,N)
	OpMatMulTA OpKind = "matmul_ta" // A^T @ B: (K,M) x (K,N) -> (M,N)
	OpMatMulTB OpKind = "matmul_tb" // A @ B^T: (M,K) x (N,K) -> (M,N)
	OpConv2D   OpKind = "conv2d"    // NCHW x KCHW
	OpSparseMM OpKind = "sparse_mm" // sparse x sparse (heterogeneous NPU, §5.1)

	// Pointwise / activation (vector unit).
	OpAdd        OpKind = "add"      // elementwise a + b
	OpMul        OpKind = "mul"      // elementwise a * b
	OpBiasAdd    OpKind = "bias_add" // (M,N) + (N,)
	OpScale      OpKind = "scale"    // x * scalar attr
	OpReLU       OpKind = "relu"
	OpGELU       OpKind = "gelu"
	OpTanh       OpKind = "tanh"
	OpReLUGrad   OpKind = "relu_grad"   // dY * (X > 0)
	OpScaleShift OpKind = "scale_shift" // per-channel x*gamma+beta on NCHW (folded BN)

	// Normalization / softmax (vector + SFU).
	OpSoftmax   OpKind = "softmax"   // row-wise over last dim of 2-D
	OpLayerNorm OpKind = "layernorm" // row-wise, with gamma/beta inputs
	OpRMSNorm   OpKind = "rmsnorm"   // row-wise RMS norm, gamma input only

	// Pooling / shape.
	OpMaxPool   OpKind = "maxpool"   // window/stride attrs, NCHW
	OpAvgPool   OpKind = "avgpool"   // global average pool NCHW -> (N,C)
	OpReshape   OpKind = "reshape"   // view change
	OpTranspose OpKind = "transpose" // 2-D transpose

	// Reductions.
	OpColSum OpKind = "col_sum" // (M,N) -> (N,) column sums (bias gradient)

	// Collectives (multi-package parallelism): synchronization points
	// between the per-rank replicas of a sharded graph. Parts gives the
	// number of participating ranks. The host reference executes them in
	// lockstep across replicas (ExecuteSharded); the compiler lowers them
	// to ring schedules over the package links (internal/topo).
	OpAllReduce     OpKind = "all_reduce"     // elementwise sum across ranks, replicated result
	OpAllGather     OpKind = "all_gather"     // concat rank shards along dim 0
	OpReduceScatter OpKind = "reduce_scatter" // sum across ranks, rank r keeps chunk r

	// Training-specific.
	OpSoftmaxCE     OpKind = "softmax_ce"      // logits,labels -> scalar loss
	OpSoftmaxCEGrad OpKind = "softmax_ce_grad" // logits,labels -> dLogits
	OpSGDUpdate     OpKind = "sgd_update"      // param - lr*grad (lr attr)
	OpAXPBY         OpKind = "axpby"           // Alpha*a + Beta*b (momentum / EMA updates)
	OpAdamStep      OpKind = "adam_step"       // param + coef[0]*m/(sqrt(v)+coef[1])
)

// Node is one operator instance.
type Node struct {
	ID     int
	Op     OpKind
	Name   string
	Inputs []int
	Shape  []int // output shape

	// Attributes (used per Op).
	Conv    tensor.ConvShape // conv2d
	Window  int              // maxpool
	Stride  int              // maxpool
	ScaleF  float32          // scale / sgd_update (learning rate)
	Alpha   float32          // axpby: coefficient of input 0
	Beta    float32          // axpby: coefficient of input 1
	Eps     float32          // layernorm
	Classes int              // softmax_ce: number of classes
	Parts   int              // collectives: number of participating ranks
}

// Graph is a topologically ordered DAG of nodes.
type Graph struct {
	Name    string
	Nodes   []*Node
	Outputs []int
}

// New returns an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

// Add appends a node, assigning its ID; inputs must already exist.
func (g *Graph) Add(n *Node) *Node {
	n.ID = len(g.Nodes)
	for _, in := range n.Inputs {
		if in < 0 || in >= n.ID {
			panic(fmt.Sprintf("graph: node %q input %d out of range", n.Name, in))
		}
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// Input declares an external input of the given shape.
func (g *Graph) Input(name string, shape ...int) *Node {
	return g.Add(&Node{Op: OpInput, Name: name, Shape: shape})
}

// Param declares a trainable parameter of the given shape.
func (g *Graph) Param(name string, shape ...int) *Node {
	return g.Add(&Node{Op: OpParam, Name: name, Shape: shape})
}

// Validate checks topological order and shape consistency.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		want, err := InferShape(g, n)
		if err != nil {
			return fmt.Errorf("graph %q node %d (%s %q): %w", g.Name, n.ID, n.Op, n.Name, err)
		}
		if want != nil && !shapeEq(want, n.Shape) {
			return fmt.Errorf("graph %q node %d (%s %q): declared shape %v, inferred %v",
				g.Name, n.ID, n.Op, n.Name, n.Shape, want)
		}
	}
	for _, o := range g.Outputs {
		if o < 0 || o >= len(g.Nodes) {
			return fmt.Errorf("graph %q: output %d out of range", g.Name, o)
		}
	}
	return nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InferShape computes the output shape of n from its inputs, or returns nil
// when the op's shape is free-form (input/param/const/reshape).
func InferShape(g *Graph, n *Node) ([]int, error) {
	in := func(i int) *Node { return g.Nodes[n.Inputs[i]] }
	need := func(k int) error {
		if len(n.Inputs) != k {
			return fmt.Errorf("%s needs %d inputs, has %d", n.Op, k, len(n.Inputs))
		}
		return nil
	}
	switch n.Op {
	case OpInput, OpParam, OpConst, OpReshape:
		if n.Op == OpReshape {
			if err := need(1); err != nil {
				return nil, err
			}
			if tensor.NumElements(n.Shape) != tensor.NumElements(in(0).Shape) {
				return nil, fmt.Errorf("reshape volume mismatch %v -> %v", in(0).Shape, n.Shape)
			}
		}
		return nil, nil
	case OpMatMul:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := in(0).Shape, in(1).Shape
		if len(a) != 2 || len(b) != 2 || a[1] != b[0] {
			return nil, fmt.Errorf("matmul shapes %v x %v", a, b)
		}
		return []int{a[0], b[1]}, nil
	case OpMatMulTA:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := in(0).Shape, in(1).Shape
		if len(a) != 2 || len(b) != 2 || a[0] != b[0] {
			return nil, fmt.Errorf("matmul_ta shapes %v x %v", a, b)
		}
		return []int{a[1], b[1]}, nil
	case OpMatMulTB:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := in(0).Shape, in(1).Shape
		if len(a) != 2 || len(b) != 2 || a[1] != b[1] {
			return nil, fmt.Errorf("matmul_tb shapes %v x %v", a, b)
		}
		return []int{a[0], b[0]}, nil
	case OpConv2D:
		if err := need(2); err != nil {
			return nil, err
		}
		cs := n.Conv
		return []int{cs.N, cs.K, cs.OutH(), cs.OutW()}, nil
	case OpSparseMM:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := in(0).Shape, in(1).Shape
		if len(a) != 2 || len(b) != 2 || a[1] != b[0] {
			return nil, fmt.Errorf("sparse_mm shapes %v x %v", a, b)
		}
		return []int{a[0], b[1]}, nil
	case OpAdd, OpMul, OpReLUGrad:
		if err := need(2); err != nil {
			return nil, err
		}
		if !shapeEq(in(0).Shape, in(1).Shape) {
			return nil, fmt.Errorf("%s shape mismatch %v vs %v", n.Op, in(0).Shape, in(1).Shape)
		}
		return in(0).Shape, nil
	case OpBiasAdd:
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := in(0).Shape, in(1).Shape
		if len(a) != 2 || len(b) != 1 || a[1] != b[0] {
			return nil, fmt.Errorf("bias_add shapes %v + %v", a, b)
		}
		return a, nil
	case OpScale, OpReLU, OpGELU, OpTanh, OpSoftmax:
		if err := need(1); err != nil {
			return nil, err
		}
		return in(0).Shape, nil
	case OpScaleShift:
		if err := need(3); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 4 || in(1).Shape[0] != a[1] || in(2).Shape[0] != a[1] {
			return nil, fmt.Errorf("scale_shift shapes %v, %v, %v", a, in(1).Shape, in(2).Shape)
		}
		return a, nil
	case OpLayerNorm:
		if err := need(3); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 2 || in(1).Shape[0] != a[1] || in(2).Shape[0] != a[1] {
			return nil, fmt.Errorf("layernorm shapes %v, %v, %v", a, in(1).Shape, in(2).Shape)
		}
		return a, nil
	case OpRMSNorm:
		if err := need(2); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 2 || in(1).Shape[0] != a[1] {
			return nil, fmt.Errorf("rmsnorm shapes %v, %v", a, in(1).Shape)
		}
		return a, nil
	case OpMaxPool:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 4 {
			return nil, fmt.Errorf("maxpool needs NCHW, got %v", a)
		}
		oh := (a[2]-n.Window)/n.Stride + 1
		ow := (a[3]-n.Window)/n.Stride + 1
		return []int{a[0], a[1], oh, ow}, nil
	case OpAvgPool:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 4 {
			return nil, fmt.Errorf("avgpool needs NCHW, got %v", a)
		}
		return []int{a[0], a[1]}, nil
	case OpTranspose:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 2 {
			return nil, fmt.Errorf("transpose needs 2-D, got %v", a)
		}
		return []int{a[1], a[0]}, nil
	case OpColSum:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if len(a) != 2 {
			return nil, fmt.Errorf("col_sum needs 2-D, got %v", a)
		}
		return []int{a[1]}, nil
	case OpAllReduce:
		if err := need(1); err != nil {
			return nil, err
		}
		if n.Parts < 2 {
			return nil, fmt.Errorf("all_reduce needs parts >= 2, has %d", n.Parts)
		}
		return in(0).Shape, nil
	case OpAllGather:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if n.Parts < 2 || len(a) == 0 {
			return nil, fmt.Errorf("all_gather needs parts >= 2 and a shaped input, has parts=%d shape=%v", n.Parts, a)
		}
		out := append([]int{a[0] * n.Parts}, a[1:]...)
		return out, nil
	case OpReduceScatter:
		if err := need(1); err != nil {
			return nil, err
		}
		a := in(0).Shape
		if n.Parts < 2 || len(a) == 0 || a[0]%n.Parts != 0 {
			return nil, fmt.Errorf("reduce_scatter needs parts >= 2 dividing dim 0, has parts=%d shape=%v", n.Parts, a)
		}
		out := append([]int{a[0] / n.Parts}, a[1:]...)
		return out, nil
	case OpSoftmaxCE:
		if err := need(2); err != nil {
			return nil, err
		}
		return []int{1}, nil
	case OpSoftmaxCEGrad:
		if err := need(2); err != nil {
			return nil, err
		}
		return in(0).Shape, nil
	case OpSGDUpdate:
		if err := need(2); err != nil {
			return nil, err
		}
		if !shapeEq(in(0).Shape, in(1).Shape) {
			return nil, fmt.Errorf("sgd_update shape mismatch %v vs %v", in(0).Shape, in(1).Shape)
		}
		return in(0).Shape, nil
	case OpAXPBY:
		if err := need(2); err != nil {
			return nil, err
		}
		if !shapeEq(in(0).Shape, in(1).Shape) {
			return nil, fmt.Errorf("axpby shape mismatch %v vs %v", in(0).Shape, in(1).Shape)
		}
		return in(0).Shape, nil
	case OpAdamStep:
		if err := need(4); err != nil {
			return nil, err
		}
		if !shapeEq(in(0).Shape, in(1).Shape) || !shapeEq(in(0).Shape, in(2).Shape) {
			return nil, fmt.Errorf("adam_step param/m/v shape mismatch %v/%v/%v",
				in(0).Shape, in(1).Shape, in(2).Shape)
		}
		if len(in(3).Shape) != 1 || in(3).Shape[0] != 2 {
			return nil, fmt.Errorf("adam_step coef must be shape (2,), got %v", in(3).Shape)
		}
		return in(0).Shape, nil
	default:
		return nil, fmt.Errorf("unknown op %q", n.Op)
	}
}
