package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestBuildAndValidateLinearLayer(t *testing.T) {
	g := New("linear")
	x := g.Input("x", 4, 8)
	w := g.Param("w", 8, 16)
	b := g.Param("b", 16)
	mm := g.Add(&Node{Op: OpMatMul, Name: "mm", Inputs: []int{x.ID, w.ID}, Shape: []int{4, 16}})
	ba := g.Add(&Node{Op: OpBiasAdd, Name: "ba", Inputs: []int{mm.ID, b.ID}, Shape: []int{4, 16}})
	out := g.Add(&Node{Op: OpReLU, Name: "out", Inputs: []int{ba.ID}, Shape: []int{4, 16}})
	g.Outputs = []int{out.ID}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	g := New("bad")
	x := g.Input("x", 4, 8)
	w := g.Param("w", 9, 16) // inner dim mismatch
	g.Add(&Node{Op: OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{4, 16}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected shape error")
	}

	g2 := New("bad2")
	x2 := g2.Input("x", 4, 8)
	w2 := g2.Param("w", 8, 16)
	g2.Add(&Node{Op: OpMatMul, Inputs: []int{x2.ID, w2.ID}, Shape: []int{4, 99}}) // wrong declared shape
	if err := g2.Validate(); err == nil {
		t.Fatal("expected declared-shape error")
	}
}

func TestExecuteLinearMatchesTensorOps(t *testing.T) {
	g := New("linear")
	x := g.Input("x", 4, 8)
	w := g.Param("w", 8, 16)
	b := g.Param("b", 16)
	mm := g.Add(&Node{Op: OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{4, 16}})
	ba := g.Add(&Node{Op: OpBiasAdd, Inputs: []int{mm.ID, b.ID}, Shape: []int{4, 16}})
	out := g.Add(&Node{Op: OpReLU, Inputs: []int{ba.ID}, Shape: []int{4, 16}})
	g.Outputs = []int{out.ID}

	r := tensor.NewRNG(1)
	xv := tensor.RandNormal(r, 0, 1, 4, 8)
	wv := tensor.RandNormal(r, 0, 1, 8, 16)
	bv := tensor.RandNormal(r, 0, 1, 16)
	env := NewEnv().Set("x", xv).Set("w", wv).Set("b", bv)
	vals, err := Execute(g, env)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ReLU(tensor.AddBiasRows(tensor.MatMul(xv, wv), bv))
	if !tensor.AllClose(vals[out.ID], want, 1e-5, 1e-5) {
		t.Fatal("graph execution disagrees with direct tensor ops")
	}
}

func TestMatMulVariants(t *testing.T) {
	r := tensor.NewRNG(2)
	a := tensor.RandNormal(r, 0, 1, 5, 3)
	b := tensor.RandNormal(r, 0, 1, 5, 4) // for TA: a^T @ b -> (3,4)
	g := New("ta")
	an := g.Input("a", 5, 3)
	bn := g.Input("b", 5, 4)
	ta := g.Add(&Node{Op: OpMatMulTA, Inputs: []int{an.ID, bn.ID}, Shape: []int{3, 4}})
	g.Outputs = []int{ta.ID}
	vals, err := Execute(g, NewEnv().Set("a", a).Set("b", b))
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(tensor.Transpose2D(a), b)
	if !tensor.AllClose(vals[ta.ID], want, 1e-5, 1e-5) {
		t.Fatal("matmul_ta wrong")
	}

	c := tensor.RandNormal(r, 0, 1, 6, 3)
	d := tensor.RandNormal(r, 0, 1, 7, 3)
	g2 := New("tb")
	cn := g2.Input("c", 6, 3)
	dn := g2.Input("d", 7, 3)
	tb := g2.Add(&Node{Op: OpMatMulTB, Inputs: []int{cn.ID, dn.ID}, Shape: []int{6, 7}})
	vals2, err := Execute(g2, NewEnv().Set("c", c).Set("d", d))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(vals2[tb.ID], tensor.MatMulTransB(c, d), 1e-5, 1e-5) {
		t.Fatal("matmul_tb wrong")
	}
}

func TestConvAndPoolOps(t *testing.T) {
	r := tensor.NewRNG(3)
	cs := tensor.ConvShape{N: 2, C: 3, H: 8, W: 8, K: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := tensor.RandNormal(r, 0, 1, 2, 3, 8, 8)
	f := tensor.RandNormal(r, 0, 1, 4, 3, 3, 3)
	g := New("conv")
	xn := g.Input("x", 2, 3, 8, 8)
	fn := g.Param("f", 4, 3, 3, 3)
	cv := g.Add(&Node{Op: OpConv2D, Inputs: []int{xn.ID, fn.ID}, Conv: cs, Shape: []int{2, 4, 8, 8}})
	mp := g.Add(&Node{Op: OpMaxPool, Inputs: []int{cv.ID}, Window: 2, Stride: 2, Shape: []int{2, 4, 4, 4}})
	ap := g.Add(&Node{Op: OpAvgPool, Inputs: []int{mp.ID}, Shape: []int{2, 4}})
	g.Outputs = []int{ap.ID}
	vals, err := Execute(g, NewEnv().Set("x", x).Set("f", f))
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.GlobalAvgPool2D(tensor.MaxPool2D(tensor.Conv2D(x, f, cs), 2, 2))
	if !tensor.AllClose(vals[ap.ID], want, 1e-4, 1e-4) {
		t.Fatal("conv/pool chain wrong")
	}
}

func TestSoftmaxCELossAndGrad(t *testing.T) {
	r := tensor.NewRNG(4)
	logits := tensor.RandNormal(r, 0, 2, 6, 10)
	labels := tensor.New(6)
	for i := range labels.Data {
		labels.Data[i] = float32(r.Intn(10))
	}
	g := New("loss")
	ln := g.Input("logits", 6, 10)
	lb := g.Input("labels", 6)
	loss := g.Add(&Node{Op: OpSoftmaxCE, Inputs: []int{ln.ID, lb.ID}, Shape: []int{1}})
	grad := g.Add(&Node{Op: OpSoftmaxCEGrad, Inputs: []int{ln.ID, lb.ID}, Shape: []int{6, 10}})
	g.Outputs = []int{loss.ID, grad.ID}
	vals, err := Execute(g, NewEnv().Set("logits", logits).Set("labels", labels))
	if err != nil {
		t.Fatal(err)
	}
	// Numerical gradient check on a few elements.
	base := float64(vals[loss.ID].Data[0])
	if base <= 0 {
		t.Fatalf("loss = %g, want positive", base)
	}
	const h = 1e-3
	for _, idx := range []int{0, 7, 33} {
		pert := logits.Clone()
		pert.Data[idx] += h
		g2vals, err := Execute(g, NewEnv().Set("logits", pert).Set("labels", labels))
		if err != nil {
			t.Fatal(err)
		}
		num := (float64(g2vals[loss.ID].Data[0]) - base) / h
		ana := float64(vals[grad.ID].Data[idx])
		if math.Abs(num-ana) > 5e-3 {
			t.Fatalf("gradient check at %d: numeric %g vs analytic %g", idx, num, ana)
		}
	}
}

func TestReLUGradMasksCorrectly(t *testing.T) {
	g := New("rg")
	dy := g.Input("dy", 2, 2)
	x := g.Input("x", 2, 2)
	rg := g.Add(&Node{Op: OpReLUGrad, Inputs: []int{dy.ID, x.ID}, Shape: []int{2, 2}})
	g.Outputs = []int{rg.ID}
	vals, err := Execute(g, NewEnv().
		Set("dy", tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)).
		Set("x", tensor.FromSlice([]float32{-1, 5, 0, 2}, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 2, 0, 4}
	for i, w := range want {
		if vals[rg.ID].Data[i] != w {
			t.Fatalf("relu_grad[%d] = %g, want %g", i, vals[rg.ID].Data[i], w)
		}
	}
}

func TestSGDUpdateAndColSum(t *testing.T) {
	g := New("sgd")
	w := g.Input("w", 2, 2)
	gr := g.Input("g", 2, 2)
	up := g.Add(&Node{Op: OpSGDUpdate, Inputs: []int{w.ID, gr.ID}, ScaleF: 0.5, Shape: []int{2, 2}})
	cs := g.Add(&Node{Op: OpColSum, Inputs: []int{gr.ID}, Shape: []int{2}})
	g.Outputs = []int{up.ID, cs.ID}
	vals, err := Execute(g, NewEnv().
		Set("w", tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)).
		Set("g", tensor.FromSlice([]float32{2, 2, 2, 2}, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if vals[up.ID].Data[0] != 0 || vals[up.ID].Data[3] != 3 {
		t.Fatalf("sgd_update wrong: %v", vals[up.ID].Data)
	}
	if vals[cs.ID].Data[0] != 4 || vals[cs.ID].Data[1] != 4 {
		t.Fatalf("col_sum wrong: %v", vals[cs.ID].Data)
	}
}

func TestLayerNormAndScaleShift(t *testing.T) {
	r := tensor.NewRNG(5)
	x := tensor.RandNormal(r, 1, 3, 4, 32)
	gamma := tensor.Full(2, 32)
	beta := tensor.Full(0.5, 32)
	g := New("ln")
	xn := g.Input("x", 4, 32)
	gn := g.Param("gamma", 32)
	bn := g.Param("beta", 32)
	ln := g.Add(&Node{Op: OpLayerNorm, Inputs: []int{xn.ID, gn.ID, bn.ID}, Shape: []int{4, 32}})
	g.Outputs = []int{ln.ID}
	vals, err := Execute(g, NewEnv().Set("x", x).Set("gamma", gamma).Set("beta", beta))
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.LayerNorm(x, gamma, beta, 1e-5)
	if !tensor.AllClose(vals[ln.ID], want, 1e-5, 1e-5) {
		t.Fatal("layernorm wrong")
	}

	// ScaleShift (folded batch norm) on NCHW.
	x4 := tensor.RandNormal(r, 0, 1, 1, 2, 2, 2)
	g2 := New("ss")
	x4n := g2.Input("x", 1, 2, 2, 2)
	g2g := g2.Param("g", 2)
	g2b := g2.Param("b", 2)
	ss := g2.Add(&Node{Op: OpScaleShift, Inputs: []int{x4n.ID, g2g.ID, g2b.ID}, Shape: []int{1, 2, 2, 2}})
	vals2, err := Execute(g2, NewEnv().Set("x", x4).
		Set("g", tensor.FromSlice([]float32{2, 3}, 2)).
		Set("b", tensor.FromSlice([]float32{1, -1}, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vals2[ss.ID].At(0, 0, 0, 0), x4.At(0, 0, 0, 0)*2+1; got != want {
		t.Fatalf("scale_shift wrong: %g vs %g", got, want)
	}
	if got, want := vals2[ss.ID].At(0, 1, 1, 1), x4.At(0, 1, 1, 1)*3-1; got != want {
		t.Fatalf("scale_shift channel 1 wrong: %g vs %g", got, want)
	}
}

func TestReshapeAndTranspose(t *testing.T) {
	g := New("rt")
	x := g.Input("x", 2, 6)
	rs := g.Add(&Node{Op: OpReshape, Inputs: []int{x.ID}, Shape: []int{3, 4}})
	tp := g.Add(&Node{Op: OpTranspose, Inputs: []int{rs.ID}, Shape: []int{4, 3}})
	g.Outputs = []int{tp.ID}
	xv := tensor.FromSlice([]float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 2, 6)
	vals, err := Execute(g, NewEnv().Set("x", xv))
	if err != nil {
		t.Fatal(err)
	}
	if vals[tp.ID].At(1, 2) != xv.Data[9] {
		t.Fatal("reshape+transpose wrong")
	}
}

func TestUnboundInputErrors(t *testing.T) {
	g := New("ub")
	x := g.Input("x", 2)
	g.Outputs = []int{x.ID}
	if _, err := Execute(g, NewEnv()); err == nil {
		t.Fatal("expected unbound input error")
	}
}

func TestSoftmaxGraphMatchesReference(t *testing.T) {
	// Property body shared with FuzzSoftmaxGraph (fuzz_test.go).
	if err := quick.Check(propSoftmaxGraph, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
