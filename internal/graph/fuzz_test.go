package graph

import (
	"testing"

	"repro/internal/tensor"
)

// The native fuzz target promotes the package's testing/quick property:
// the same seed-driven body runs under quick.Check in the unit suite, over
// the checked-in corpus (testdata/fuzz) in every plain `go test`, and under
// coverage-guided mutation via `go test -fuzz` / `make fuzz-smoke`.

// propSoftmaxGraph: executing a softmax node matches the tensor-level
// reference for any shape and input scale.
func propSoftmaxGraph(seed uint64) bool {
	r := tensor.NewRNG(seed)
	m, n := 1+r.Intn(5), 2+r.Intn(16)
	x := tensor.RandNormal(r, 0, 3, m, n)
	g := New("sm")
	xn := g.Input("x", m, n)
	sm := g.Add(&Node{Op: OpSoftmax, Inputs: []int{xn.ID}, Shape: []int{m, n}})
	g.Outputs = []int{sm.ID}
	vals, err := Execute(g, NewEnv().Set("x", x))
	if err != nil {
		return false
	}
	return tensor.AllClose(vals[sm.ID], tensor.Softmax(x), 1e-5, 1e-5)
}

func FuzzSoftmaxGraph(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !propSoftmaxGraph(seed) {
			t.Fatalf("graph softmax diverges from tensor.Softmax (seed %d)", seed)
		}
	})
}
