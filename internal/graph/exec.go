package graph

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Env binds input and parameter names to tensors for graph execution.
type Env struct {
	Values map[string]*tensor.Tensor
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{Values: map[string]*tensor.Tensor{}} }

// Set binds a name.
func (e *Env) Set(name string, t *tensor.Tensor) *Env {
	e.Values[name] = t
	return e
}

// Execute evaluates the graph on the host CPU (the "real CPU" reference the
// paper validates against) and returns the value of every node.
func Execute(g *Graph, env *Env) (map[int]*tensor.Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	vals := make(map[int]*tensor.Tensor, len(g.Nodes))
	for _, n := range g.Nodes {
		v, err := evalNode(g, n, vals, env)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d (%s %q): %w", g.Name, n.ID, n.Op, n.Name, err)
		}
		vals[n.ID] = v
	}
	return vals, nil
}

func evalNode(g *Graph, n *Node, vals map[int]*tensor.Tensor, env *Env) (*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return vals[n.Inputs[i]] }
	switch n.Op {
	case OpInput, OpParam, OpConst:
		v, ok := env.Values[n.Name]
		if !ok {
			return nil, fmt.Errorf("unbound %s %q", n.Op, n.Name)
		}
		if !shapeEq(v.Shape, n.Shape) {
			return nil, fmt.Errorf("%q bound with shape %v, want %v", n.Name, v.Shape, n.Shape)
		}
		return v, nil
	case OpMatMul:
		return tensor.MatMul(in(0), in(1)), nil
	case OpMatMulTA:
		return tensor.MatMul(tensor.Transpose2D(in(0)), in(1)), nil
	case OpMatMulTB:
		return tensor.MatMulTransB(in(0), in(1)), nil
	case OpConv2D:
		return tensor.Conv2D(in(0), in(1), n.Conv), nil
	case OpSparseMM:
		// Reference semantics: dense product of the (dense-represented)
		// sparse operands; the NPU path runs this on the sparse core.
		return tensor.MatMul(in(0), in(1)), nil
	case OpAdd:
		return tensor.Add(in(0), in(1)), nil
	case OpMul:
		return tensor.Mul(in(0), in(1)), nil
	case OpBiasAdd:
		return tensor.AddBiasRows(in(0), in(1)), nil
	case OpScale:
		return tensor.Scale(in(0), n.ScaleF), nil
	case OpReLU:
		return tensor.ReLU(in(0)), nil
	case OpGELU:
		return tensor.GELU(in(0)), nil
	case OpTanh:
		return tensor.Tanh(in(0)), nil
	case OpReLUGrad:
		x, dy := in(1), in(0)
		out := tensor.New(dy.Shape...)
		for i := range out.Data {
			if x.Data[i] > 0 {
				out.Data[i] = dy.Data[i]
			}
		}
		return out, nil
	case OpScaleShift:
		x, gamma, beta := in(0), in(1), in(2)
		nn, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		out := tensor.New(nn, c, h, w)
		for ni := 0; ni < nn; ni++ {
			for ci := 0; ci < c; ci++ {
				gam, bet := gamma.Data[ci], beta.Data[ci]
				for y := 0; y < h; y++ {
					for xx := 0; xx < w; xx++ {
						out.Set(x.At(ni, ci, y, xx)*gam+bet, ni, ci, y, xx)
					}
				}
			}
		}
		return out, nil
	case OpSoftmax:
		return tensor.Softmax(in(0)), nil
	case OpLayerNorm:
		eps := n.Eps
		if eps == 0 {
			eps = 1e-5
		}
		return tensor.LayerNorm(in(0), in(1), in(2), eps), nil
	case OpRMSNorm:
		eps := n.Eps
		if eps == 0 {
			eps = 1e-5
		}
		return tensor.RMSNorm(in(0), in(1), eps), nil
	case OpMaxPool:
		return tensor.MaxPool2D(in(0), n.Window, n.Stride), nil
	case OpAvgPool:
		return tensor.GlobalAvgPool2D(in(0)), nil
	case OpReshape:
		return in(0).Reshape(n.Shape...), nil
	case OpTranspose:
		return tensor.Transpose2D(in(0)), nil
	case OpColSum:
		x := in(0)
		m, cols := x.Shape[0], x.Shape[1]
		out := tensor.New(cols)
		for i := 0; i < m; i++ {
			for j := 0; j < cols; j++ {
				out.Data[j] += x.Data[i*cols+j]
			}
		}
		return out, nil
	case OpSoftmaxCE:
		logits, labels := in(0), in(1)
		m := logits.Shape[0]
		probs := tensor.Softmax(logits)
		var loss float64
		for i := 0; i < m; i++ {
			cls := int(labels.Data[i])
			p := float64(probs.At(i, cls))
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= math.Log(p)
		}
		return tensor.FromSlice([]float32{float32(loss / float64(m))}, 1), nil
	case OpSoftmaxCEGrad:
		logits, labels := in(0), in(1)
		m, c := logits.Shape[0], logits.Shape[1]
		probs := tensor.Softmax(logits)
		out := probs.Clone()
		inv := 1 / float32(m)
		for i := 0; i < m; i++ {
			cls := int(labels.Data[i])
			out.Data[i*c+cls] -= 1
		}
		return tensor.Scale(out, inv), nil
	case OpSGDUpdate:
		w, grad := in(0), in(1)
		out := tensor.New(w.Shape...)
		lr := n.ScaleF
		for i := range out.Data {
			out.Data[i] = w.Data[i] - lr*grad.Data[i]
		}
		return out, nil
	case OpAXPBY:
		a, b := in(0), in(1)
		out := tensor.New(a.Shape...)
		for i := range out.Data {
			out.Data[i] = n.Alpha*a.Data[i] + n.Beta*b.Data[i]
		}
		return out, nil
	case OpAdamStep:
		p, m, v, coef := in(0), in(1), in(2), in(3)
		negLR, eps := coef.Data[0], coef.Data[1]
		decay := n.ScaleF // AdamW decoupled decay: -lr*wd (0 = plain Adam)
		out := tensor.New(p.Shape...)
		for i := range out.Data {
			den := float32(math.Sqrt(float64(v.Data[i]))) + eps
			pd := p.Data[i] + decay*p.Data[i]
			out.Data[i] = pd + negLR*m.Data[i]/den
		}
		return out, nil
	case OpAllReduce, OpAllGather, OpReduceScatter:
		return nil, fmt.Errorf("collective %s outside sharded execution (use ExecuteSharded)", n.Op)
	default:
		return nil, fmt.Errorf("unknown op %q", n.Op)
	}
}

// ExecuteSharded evaluates one sharded graph replica per rank in lockstep
// on the host CPU: non-collective nodes evaluate independently per rank,
// and collective nodes exchange values across ranks with the canonical
// semantics (all_reduce = elementwise sum broadcast to every rank,
// all_gather = dim-0 concat in rank order, reduce_scatter = sum then rank
// r keeps chunk r). All replicas must share node structure — the compiler
// emits them rank-0-normalized, so matching IDs line up by construction.
// It returns the per-rank node values.
func ExecuteSharded(replicas []*Graph, envs []*Env) ([]map[int]*tensor.Tensor, error) {
	if len(replicas) == 0 || len(replicas) != len(envs) {
		return nil, fmt.Errorf("graph: %d replicas, %d envs", len(replicas), len(envs))
	}
	for r, g := range replicas {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
		if len(g.Nodes) != len(replicas[0].Nodes) {
			return nil, fmt.Errorf("graph: rank %d has %d nodes, rank 0 has %d",
				r, len(g.Nodes), len(replicas[0].Nodes))
		}
	}
	ranks := len(replicas)
	vals := make([]map[int]*tensor.Tensor, ranks)
	for r := range vals {
		vals[r] = make(map[int]*tensor.Tensor, len(replicas[r].Nodes))
	}
	for i := range replicas[0].Nodes {
		op := replicas[0].Nodes[i].Op
		for r := 1; r < ranks; r++ {
			if replicas[r].Nodes[i].Op != op {
				return nil, fmt.Errorf("graph: node %d op diverges across ranks (%s vs %s)",
					i, op, replicas[r].Nodes[i].Op)
			}
		}
		switch op {
		case OpAllReduce, OpAllGather, OpReduceScatter:
			// Gather every rank's input shard, combine, scatter results.
			shards := make([]*tensor.Tensor, ranks)
			for r := 0; r < ranks; r++ {
				n := replicas[r].Nodes[i]
				if n.Parts != ranks {
					return nil, fmt.Errorf("graph: node %d %s has parts=%d, %d ranks executing",
						i, op, n.Parts, ranks)
				}
				shards[r] = vals[r][n.Inputs[0]]
			}
			outs, err := combineShards(op, shards)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d: %w", i, err)
			}
			for r := 0; r < ranks; r++ {
				vals[r][replicas[r].Nodes[i].ID] = outs[r]
			}
		default:
			for r := 0; r < ranks; r++ {
				g, n := replicas[r], replicas[r].Nodes[i]
				v, err := evalNode(g, n, vals[r], envs[r])
				if err != nil {
					return nil, fmt.Errorf("rank %d graph %q node %d (%s %q): %w",
						r, g.Name, n.ID, n.Op, n.Name, err)
				}
				vals[r][n.ID] = v
			}
		}
	}
	return vals, nil
}

// combineShards applies one collective's semantics to the per-rank inputs.
func combineShards(op OpKind, shards []*tensor.Tensor) ([]*tensor.Tensor, error) {
	ranks := len(shards)
	sum := func() *tensor.Tensor {
		acc := shards[0].Clone()
		for r := 1; r < ranks; r++ {
			for i := range acc.Data {
				acc.Data[i] += shards[r].Data[i]
			}
		}
		return acc
	}
	outs := make([]*tensor.Tensor, ranks)
	switch op {
	case OpAllReduce:
		acc := sum()
		for r := range outs {
			outs[r] = acc.Clone()
		}
	case OpAllGather:
		shape := append([]int{shards[0].Shape[0] * ranks}, shards[0].Shape[1:]...)
		cat := tensor.New(shape...)
		per := len(shards[0].Data)
		for r := 0; r < ranks; r++ {
			copy(cat.Data[r*per:(r+1)*per], shards[r].Data)
		}
		for r := range outs {
			outs[r] = cat.Clone()
		}
	case OpReduceScatter:
		acc := sum()
		per := len(acc.Data) / ranks
		shape := append([]int{shards[0].Shape[0] / ranks}, shards[0].Shape[1:]...)
		for r := range outs {
			outs[r] = tensor.New(shape...)
			copy(outs[r].Data, acc.Data[r*per:(r+1)*per])
		}
	default:
		return nil, fmt.Errorf("combineShards: %s is not a collective", op)
	}
	return outs, nil
}
