package npu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/tensor"
)

func TestConfigsSane(t *testing.T) {
	for _, cfg := range []Config{TPUv3Config(), SmallConfig()} {
		if cfg.Cores <= 0 || cfg.FreqMHz <= 0 {
			t.Fatalf("%s: bad top-level config", cfg.Name)
		}
		if cfg.Core.VLEN() <= 0 || cfg.Core.MACsPerCycle() <= 0 {
			t.Fatalf("%s: bad core config", cfg.Name)
		}
		if cfg.Mem.Channels <= 0 || cfg.Mem.BytesPerSec <= 0 {
			t.Fatalf("%s: bad mem config", cfg.Name)
		}
	}
	tpu := TPUv3Config()
	if tpu.Core.VLEN() != 2048 {
		t.Fatalf("TPUv3 VLEN = %d, want 2048 (128 units x 16 lanes)", tpu.Core.VLEN())
	}
	if tpu.Core.MACsPerCycle() != 2*128*128 {
		t.Fatalf("TPUv3 MACs/cycle = %d", tpu.Core.MACsPerCycle())
	}
	if tpu.Core.SpadBytes != 16<<20 {
		t.Fatalf("TPUv3 scratchpad = %d", tpu.Core.SpadBytes)
	}
}

func TestPagedMemRoundTrip(t *testing.T) {
	m := NewPagedMem()
	m.StoreW(0, 42)
	m.StoreW(1<<30, 7) // far page
	if m.LoadW(0) != 42 || m.LoadW(1<<30) != 7 {
		t.Fatal("paged mem round trip failed")
	}
	if m.LoadW(4096) != 0 {
		t.Fatal("untouched memory must read 0")
	}
	m.StoreF(8, 3.5)
	if m.LoadF(8) != 3.5 {
		t.Fatal("float round trip failed")
	}
}

func TestPagedMemFloatsBulk(t *testing.T) {
	m := NewPagedMem()
	vals := []float32{1, 2, 3, 4, 5}
	m.WriteFloats(100<<10, vals)
	got := m.ReadFloats(100<<10, 5)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("bulk floats mismatch at %d", i)
		}
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned access")
		}
	}()
	NewPagedMem().LoadW(2)
}

func TestScratchpadBounds(t *testing.T) {
	s := NewScratchpad(1024)
	s.StoreF(isa.SpadBase+4, 9)
	if s.LoadF(isa.SpadBase+4) != 9 {
		t.Fatal("scratchpad round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range scratchpad access")
		}
	}()
	s.LoadW(isa.SpadBase + 2048)
}

func TestScratchpadRejectsLowAddress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for DRAM address on scratchpad")
		}
	}()
	NewScratchpad(1024).LoadW(64)
}

func TestAddressSpaceRouting(t *testing.T) {
	as := AddressSpace{DRAM: NewPagedMem(), Spad: NewScratchpad(4096)}
	as.StoreF(16, 1.5)
	as.StoreF(isa.SpadBase+16, 2.5)
	if as.LoadF(16) != 1.5 {
		t.Fatal("DRAM routing failed")
	}
	if as.LoadF(isa.SpadBase+16) != 2.5 {
		t.Fatal("scratchpad routing failed")
	}
	if as.DRAM.LoadF(16) != 1.5 || as.Spad.LoadF(isa.SpadBase+16) != 2.5 {
		t.Fatal("underlying memories not written")
	}
}

func TestDMADescNormalizeDefaults(t *testing.T) {
	d := DMADesc{Rows: 4, Cols: 8}.Normalize()
	if d.ElemBytes != 4 || d.DRAMStride != 32 || d.SpadStride != 32 || d.Outer != 1 {
		t.Fatalf("Normalize defaults wrong: %+v", d)
	}
	if d.TotalBytes() != 4*8*4 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestDMARunInOutRoundTrip(t *testing.T) {
	// Property body shared with FuzzDMARoundTrip (fuzz_test.go).
	if err := quick.Check(propDMARoundTrip, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDMATranspose(t *testing.T) {
	r := tensor.NewRNG(5)
	rows, cols := 3, 5
	src := tensor.RandNormal(r, 0, 1, rows, cols)
	dram := NewPagedMem()
	dram.WriteFloats(0, src.Data)
	spad := NewScratchpad(4096)
	d := DMADesc{Rows: rows, Cols: cols, Transpose: true}
	if err := d.RunIn(dram, spad, 0, isa.SpadBase); err != nil {
		t.Fatal(err)
	}
	// The scratchpad now holds the cols x rows transpose.
	for c := 0; c < cols; c++ {
		for rr := 0; rr < rows; rr++ {
			got := spad.LoadF(isa.SpadBase + uint64(c*rows*4+rr*4))
			if got != src.At(rr, c) {
				t.Fatalf("transpose mismatch at (%d,%d): %g vs %g", c, rr, got, src.At(rr, c))
			}
		}
	}
}

func TestDMAOuterBlocks(t *testing.T) {
	// Two outer blocks of 2x2, separated in DRAM, packed in scratchpad.
	dram := NewPagedMem()
	for i := 0; i < 16; i++ {
		dram.StoreF(uint64(i*4), float32(i))
	}
	spad := NewScratchpad(4096)
	d := DMADesc{Rows: 2, Cols: 2, DRAMStride: 16, Outer: 2, OuterStride: 32}
	if err := d.RunIn(dram, spad, 0, isa.SpadBase); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 4, 5, 8, 9, 12, 13}
	for i, w := range want {
		if got := spad.LoadF(isa.SpadBase + uint64(i*4)); got != w {
			t.Fatalf("outer block element %d = %g, want %g", i, got, w)
		}
	}
}

func TestDMAValidate(t *testing.T) {
	if err := (DMADesc{Rows: 2, Cols: 2, ElemBytes: 2}).Validate(); err == nil {
		t.Fatal("non-4-byte elements must be rejected")
	}
	if err := (DMADesc{Rows: 2, Cols: 4, DRAMStride: 8}).Validate(); err == nil {
		t.Fatal("stride smaller than row must be rejected")
	}
	if err := (DMADesc{Rows: 2, Cols: 2}).Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
}

func TestDMARangesCoalesced(t *testing.T) {
	// Contiguous rows collapse into one range.
	d := DMADesc{Rows: 4, Cols: 8}
	rs := d.DRAMRanges(0)
	if len(rs) != 1 || rs[0].Bytes != 4*8*4 {
		t.Fatalf("contiguous ranges not coalesced: %+v", rs)
	}
	// Strided rows stay separate.
	d2 := DMADesc{Rows: 3, Cols: 2, DRAMStride: 64}
	rs2 := d2.DRAMRanges(100 << 10)
	if len(rs2) != 3 {
		t.Fatalf("want 3 strided ranges, got %+v", rs2)
	}
	for i, rg := range rs2 {
		if rg.Addr != uint64(100<<10)+uint64(i*64) || rg.Bytes != 8 {
			t.Fatalf("range %d wrong: %+v", i, rg)
		}
	}
}

func TestDMARangesTotalMatchesTotalBytes(t *testing.T) {
	// Property body shared with FuzzDMARangesTotal (fuzz_test.go).
	if err := quick.Check(propDMARangesTotal, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreConfigValidate(t *testing.T) {
	for _, cfg := range []CoreConfig{SmallConfig().Core, TPUv3Config().Core} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("stock config invalid: %v", err)
		}
	}
	bad := SmallConfig().Core
	bad.NumVectorUnits, bad.LanesPerUnit = 1, bad.SARows-1
	if err := bad.Validate(); err == nil {
		t.Fatalf("VLEN %d < SA %dx%d accepted", bad.VLEN(), bad.SARows, bad.SACols)
	}
	bad = SmallConfig().Core
	bad.SARows = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero SARows accepted")
	}
	bad = SmallConfig().Core
	bad.LanesPerUnit = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero LanesPerUnit accepted")
	}
}
