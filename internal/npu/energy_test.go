package npu

import (
	"strings"
	"testing"
)

func TestEnergyTableValidate(t *testing.T) {
	if err := (EnergyTable{}).Validate(); err != nil {
		t.Fatalf("zero table (energy disabled) must validate: %v", err)
	}
	if err := DefaultEnergyTable().Validate(); err != nil {
		t.Fatalf("default table must validate: %v", err)
	}

	neg := DefaultEnergyTable()
	neg.PJPerDRAMAct = -1
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "pj_per_dram_act") {
		t.Fatalf("negative entry must be rejected by name, got %v", err)
	}

	// A non-zero table that prices no compute would report a misleading
	// all-memory breakdown; require the compute entries.
	partial := EnergyTable{PJPerDRAMByte: 31.2}
	if err := partial.Validate(); err == nil {
		t.Fatal("table without MAC/lane prices must be rejected")
	}
}

func TestEnergyTableIsZero(t *testing.T) {
	if !(EnergyTable{}).IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	if DefaultEnergyTable().IsZero() {
		t.Fatal("default table must not report IsZero")
	}
}

func TestAreaMM2(t *testing.T) {
	c := CoreConfig{
		NumSAs: 2, SAAreaMM2: 14.0,
		NumVectorUnits: 128, VectorAreaMM2: 0.05,
		SpadBytes: 16 << 20, SpadAreaMM2PerMiB: 0.85,
	}
	want := 2*14.0 + 128*0.05 + 16*0.85
	if got := c.AreaMM2(); got != want {
		t.Fatalf("AreaMM2 = %v, want %v", got, want)
	}
	cfg := Config{Cores: 2, Core: c}
	if got := cfg.TotalAreaMM2(); got != 2*want {
		t.Fatalf("TotalAreaMM2 = %v, want %v", got, 2*want)
	}
	if (CoreConfig{NumSAs: 4}).AreaMM2() != 0 {
		t.Fatal("unset area entries must contribute nothing")
	}
}

// TestStockConfigsPriceEnergy: both built-in machines ship the documented
// default table and positive area estimates, so every CLI surface reports
// energy out of the box.
func TestStockConfigsPriceEnergy(t *testing.T) {
	for _, cfg := range []Config{TPUv3Config(), SmallConfig()} {
		if cfg.Energy.IsZero() {
			t.Fatalf("%s: no energy table", cfg.Name)
		}
		if err := cfg.Energy.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if cfg.TotalAreaMM2() <= 0 {
			t.Fatalf("%s: no area estimate", cfg.Name)
		}
	}
}
