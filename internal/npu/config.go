// Package npu defines the NPU hardware configuration (core organization,
// scratchpad, DMA engine descriptors, memory abstraction) shared by the
// functional simulator, the core timing simulator, and TOGSim.
package npu

import "fmt"

// CoreConfig describes one NPU core (Fig. 2 of the paper): scalar unit,
// N vector units of L lanes each, one or more weight-stationary systolic
// arrays behind a VCIX-like interface, a software-managed scratchpad, and a
// transpose-capable multi-dimensional DMA engine.
type CoreConfig struct {
	NumVectorUnits int // vector units per core
	LanesPerUnit   int // 32-bit lanes per vector unit
	SARows         int // systolic array rows (weight depth)
	SACols         int // systolic array columns (output width)
	NumSAs         int // systolic arrays per core
	SpadBytes      int // scratchpad capacity per core
	DesFIFORows    int // SA deserializer capacity in output rows

	// Latencies (cycles) of the in-order pipeline's functional units.
	ScalarLatency int
	FloatLatency  int
	VectorLatency int // base latency of a vector ALU op
	SFULatency    int // special-function unit latency
	MemLatency    int // scratchpad access latency

	// Area estimates (mm²) per hardware block, combined by AreaMM2.
	// Zero entries simply contribute nothing.
	SAAreaMM2         float64 // one systolic array
	VectorAreaMM2     float64 // one vector unit (all lanes)
	SpadAreaMM2PerMiB float64 // scratchpad SRAM per MiB
}

// VLEN returns the maximum logical vector length in 32-bit elements
// (all vector units operate in lockstep on one logical register).
func (c CoreConfig) VLEN() int { return c.NumVectorUnits * c.LanesPerUnit }

// VectorThroughput returns elements processed per cycle by the vector ALUs.
func (c CoreConfig) VectorThroughput() int { return c.VLEN() }

// Validate rejects core shapes the code generator cannot target. GEMM
// kernels stage one systolic-array row (up to SARows input elements) or one
// output row (up to SACols elements) per vector instruction, so VLEN must
// cover both array dimensions. SETVL silently clamps to VLEN, so an
// undersized vector unit would drop tail elements and corrupt results
// rather than merely run slowly.
func (c CoreConfig) Validate() error {
	if c.SARows <= 0 || c.SACols <= 0 || c.NumSAs <= 0 {
		return fmt.Errorf("npu: systolic array shape %dx%d x%d must be positive", c.SARows, c.SACols, c.NumSAs)
	}
	if c.NumVectorUnits <= 0 || c.LanesPerUnit <= 0 {
		return fmt.Errorf("npu: vector shape %d units x %d lanes must be positive", c.NumVectorUnits, c.LanesPerUnit)
	}
	if v := c.VLEN(); v < c.SARows || v < c.SACols {
		return fmt.Errorf("npu: VLEN %d (%d units x %d lanes) is smaller than the %dx%d systolic array: a tile row must fit one vector load",
			v, c.NumVectorUnits, c.LanesPerUnit, c.SARows, c.SACols)
	}
	return nil
}

// MACsPerCycle returns peak MACs per cycle across the core's SAs.
func (c CoreConfig) MACsPerCycle() int64 {
	return int64(c.SARows) * int64(c.SACols) * int64(c.NumSAs)
}

// MemConfig describes the off-chip memory system (an HBM2-like stack set).
type MemConfig struct {
	Channels       int   // independent channels (pseudo-channels)
	BanksPerChan   int   // banks per channel
	RowBytes       int   // row-buffer size in bytes
	BurstBytes     int   // bytes transferred per column access (burst)
	FreqMHz        int   // memory controller clock
	TCL, TRCD, TRP int   // timing in controller cycles
	TRAS, TWR      int   // timing in controller cycles
	TREFI, TRFC    int   // refresh interval / refresh cycle time (0 = no refresh)
	BytesPerSec    int64 // peak aggregate bandwidth (derived, for SN model)
}

// NoCConfig describes the on-chip interconnect.
type NoCConfig struct {
	FlitBytes    int // flit width (paper: 256-bit = 32 bytes)
	LatencyCycle int // base traversal latency of the crossbar (SN model)
	Radix        int // ports (cores + memory channels)
}

// Config is a full NPU: multiple cores sharing the memory system through the
// interconnect.
type Config struct {
	Name    string
	Cores   int
	FreqMHz int // core clock
	Core    CoreConfig
	Mem     MemConfig
	NoC     NoCConfig

	// Energy prices the activity counters in pJ per event; the zero table
	// disables energy reporting. See energy.go.
	Energy EnergyTable
}

// TPUv3Config returns the Google TPUv3-like configuration used for the
// paper's accuracy validation (§4.1): per core two 128x128 SAs, 128 vector
// units x 16 lanes, 16 MiB scratchpad, 940 MHz; 4 HBM2 stacks totalling
// 960 GB/s; crossbar NoC with 256-bit flits. DRAM timing parameters are the
// paper's tCL/tRCD/tRAS/tWR/tRP = 8/8/18/8/8 ns converted at 940 MHz
// (~1.064 ns/cycle).
func TPUv3Config() Config {
	return Config{
		Name:    "tpuv3",
		Cores:   2,
		FreqMHz: 940,
		Core: CoreConfig{
			NumVectorUnits: 128,
			LanesPerUnit:   16,
			SARows:         128,
			SACols:         128,
			NumSAs:         2,
			SpadBytes:      16 << 20,
			DesFIFORows:    256, // MXU results drain into a deep accumulator FIFO
			ScalarLatency:  1,
			FloatLatency:   4,
			VectorLatency:  2,
			SFULatency:     8,
			MemLatency:     2,
			// Rough block areas for the tpuv3-like shape: ~14 mm² per
			// 128x128 array, ~0.05 mm² per 16-lane vector unit, ~0.85 mm²
			// per MiB of scratchpad SRAM (~48 mm² of core logic per core).
			SAAreaMM2:         14.0,
			VectorAreaMM2:     0.05,
			SpadAreaMM2PerMiB: 0.85,
		},
		Mem: MemConfig{
			// 4 HBM2 stacks x 8 pseudo-channels; 32 B/cycle per channel at
			// 940 MHz gives the paper's 960 GB/s aggregate, and matches the
			// NoC's 256-bit (32 B) flit so neither side artificially caps
			// the other.
			Channels:     32,
			BanksPerChan: 16,
			RowBytes:     2048,
			BurstBytes:   32,
			FreqMHz:      940,
			TCL:          8, TRCD: 8, TRP: 8, TRAS: 17, TWR: 8, // ~ns at 940MHz
			TREFI: 3660, TRFC: 330, // ~3.9 us / ~350 ns at 940 MHz
			BytesPerSec: 960e9,
		},
		NoC:    NoCConfig{FlitBytes: 32, LatencyCycle: 4, Radix: 18},
		Energy: DefaultEnergyTable(),
	}
}

// SmallConfig returns a scaled-down NPU used by unit tests: an 8x8 SA,
// 4 vector units x 4 lanes, 64 KiB scratchpad, and a 2-channel memory
// system. Behaviourally identical to TPUv3Config, just small enough for
// exhaustive testing.
func SmallConfig() Config {
	return Config{
		Name:    "small",
		Cores:   1,
		FreqMHz: 1000,
		Core: CoreConfig{
			NumVectorUnits: 4,
			LanesPerUnit:   4,
			SARows:         8,
			SACols:         8,
			NumSAs:         1,
			SpadBytes:      64 << 10,
			DesFIFORows:    64,
			ScalarLatency:  1,
			FloatLatency:   4,
			VectorLatency:  2,
			SFULatency:     8,
			MemLatency:     2,
			// Same area rates scaled to the 8x8 array (1/256 of the big SA).
			SAAreaMM2:         0.055,
			VectorAreaMM2:     0.013,
			SpadAreaMM2PerMiB: 0.85,
		},
		Mem: MemConfig{
			Channels:     2,
			BanksPerChan: 4,
			RowBytes:     512,
			BurstBytes:   32,
			FreqMHz:      1000,
			TCL:          8, TRCD: 8, TRP: 8, TRAS: 18, TWR: 8,
			BytesPerSec: 32e9,
		},
		NoC:    NoCConfig{FlitBytes: 32, LatencyCycle: 2, Radix: 4},
		Energy: DefaultEnergyTable(),
	}
}
