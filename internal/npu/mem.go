package npu

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Mem is word-granularity (32-bit) storage addressed in bytes. Addresses
// must be 4-byte aligned; the simulators only generate aligned accesses.
type Mem interface {
	LoadW(addr uint64) uint32
	StoreW(addr uint64, v uint32)
}

// PagedMem is a sparse, growable memory: 64 KiB pages allocated on first
// touch. It models DRAM contents without reserving gigabytes up front.
type PagedMem struct {
	pages map[uint64][]uint32
}

const pageBytes = 64 << 10
const pageWords = pageBytes / 4

// NewPagedMem returns an empty paged memory.
func NewPagedMem() *PagedMem { return &PagedMem{pages: map[uint64][]uint32{}} }

func (m *PagedMem) page(addr uint64) []uint32 {
	pn := addr / pageBytes
	p, ok := m.pages[pn]
	if !ok {
		p = make([]uint32, pageWords)
		m.pages[pn] = p
	}
	return p
}

// LoadW implements Mem.
func (m *PagedMem) LoadW(addr uint64) uint32 {
	checkAlign(addr)
	p, ok := m.pages[addr/pageBytes]
	if !ok {
		return 0
	}
	return p[addr%pageBytes/4]
}

// StoreW implements Mem.
func (m *PagedMem) StoreW(addr uint64, v uint32) {
	checkAlign(addr)
	m.page(addr)[addr%pageBytes/4] = v
}

// LoadF loads a float32.
func (m *PagedMem) LoadF(addr uint64) float32 { return math.Float32frombits(m.LoadW(addr)) }

// StoreF stores a float32.
func (m *PagedMem) StoreF(addr uint64, v float32) { m.StoreW(addr, math.Float32bits(v)) }

// WriteFloats stores a float32 slice starting at addr.
func (m *PagedMem) WriteFloats(addr uint64, vals []float32) {
	for i, v := range vals {
		m.StoreF(addr+uint64(4*i), v)
	}
}

// ReadFloats loads n float32 values starting at addr.
func (m *PagedMem) ReadFloats(addr uint64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.LoadF(addr + uint64(4*i))
	}
	return out
}

// FootprintBytes returns the bytes touched (allocated pages).
func (m *PagedMem) FootprintBytes() int64 { return int64(len(m.pages)) * pageBytes }

// Scratchpad is the per-core software-managed SRAM, mapped at isa.SpadBase.
type Scratchpad struct {
	words []uint32
}

// NewScratchpad returns a scratchpad of the given byte capacity.
func NewScratchpad(bytes int) *Scratchpad {
	return &Scratchpad{words: make([]uint32, bytes/4)}
}

// SizeBytes returns the capacity.
func (s *Scratchpad) SizeBytes() int { return len(s.words) * 4 }

func (s *Scratchpad) index(addr uint64) int {
	checkAlign(addr)
	if addr < isa.SpadBase {
		panic(fmt.Sprintf("npu: scratchpad access to non-scratchpad address %#x", addr))
	}
	off := addr - isa.SpadBase
	if off >= uint64(len(s.words))*4 {
		panic(fmt.Sprintf("npu: scratchpad access out of range: offset %#x of %#x bytes", off, len(s.words)*4))
	}
	return int(off / 4)
}

// LoadW implements Mem for scratchpad-mapped addresses.
func (s *Scratchpad) LoadW(addr uint64) uint32 { return s.words[s.index(addr)] }

// StoreW implements Mem.
func (s *Scratchpad) StoreW(addr uint64, v uint32) { s.words[s.index(addr)] = v }

// LoadF loads a float32.
func (s *Scratchpad) LoadF(addr uint64) float32 { return math.Float32frombits(s.LoadW(addr)) }

// StoreF stores a float32.
func (s *Scratchpad) StoreF(addr uint64, v float32) { s.StoreW(addr, math.Float32bits(v)) }

// AddressSpace routes byte addresses to DRAM or a core's scratchpad based on
// the memory map (§3.4: the scratchpad occupies a high virtual region).
type AddressSpace struct {
	DRAM *PagedMem
	Spad *Scratchpad
}

// LoadW implements Mem.
func (a AddressSpace) LoadW(addr uint64) uint32 {
	if isa.IsSpadAddr(addr) {
		return a.Spad.LoadW(addr)
	}
	return a.DRAM.LoadW(addr)
}

// StoreW implements Mem.
func (a AddressSpace) StoreW(addr uint64, v uint32) {
	if isa.IsSpadAddr(addr) {
		a.Spad.StoreW(addr, v)
		return
	}
	a.DRAM.StoreW(addr, v)
}

// LoadF loads a float32 from either region.
func (a AddressSpace) LoadF(addr uint64) float32 { return math.Float32frombits(a.LoadW(addr)) }

// StoreF stores a float32 to either region.
func (a AddressSpace) StoreF(addr uint64, v float32) { a.StoreW(addr, math.Float32bits(v)) }

func checkAlign(addr uint64) {
	if addr%4 != 0 {
		panic(fmt.Sprintf("npu: unaligned 32-bit access at %#x", addr))
	}
}
