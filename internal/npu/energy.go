package npu

import "fmt"

// EnergyTable prices the simulators' activity counters in picojoules per
// event. Energy is always derived post-hoc — report-layer code multiplies
// the plain int64 activity counters by these entries after a run finishes,
// so the table never enters a simulation hot path and Results stay
// bit-identical whether or not anyone asks for energy.
//
// The default entries are calibrated for the tpuv3-like shape against the
// P2-LLM exemplar (0.7 pJ/MAC for a 128x128 array) and the usual published
// per-technology figures: on-chip SRAM around 1-2 pJ/byte, HBM2 around
// 3.9 pJ/bit (~31 pJ/byte) plus ~0.9 nJ per row activation, and a few pJ
// per 32-byte flit-hop on chip. They are order-of-magnitude anchors for
// relative comparisons (energy-per-token sweeps, cycles x energy Pareto),
// not a signed-off power model.
type EnergyTable struct {
	PJPerMAC        float64 // one multiply-accumulate in a systolic array PE
	PJPerWeightLoad float64 // one weight element streamed scratchpad -> array
	PJPerLaneOp     float64 // one 32-bit vector ALU lane operation
	PJPerSFUOp      float64 // one special-function op (ILS-level calibration)
	PJPerSpadRead   float64 // one scratchpad byte read (DMA store path)
	PJPerSpadWrite  float64 // one scratchpad byte written (DMA load path)
	PJPerDRAMAct    float64 // one DRAM row activation (row miss)
	PJPerDRAMByte   float64 // one DRAM byte transferred (column access, amortized)
	PJPerFlitHop    float64 // one NoC flit switched/serialized
	PJPerLinkFlit   float64 // one chiplet-link serialization slot (LinkBytesPerCycle bytes)
	StaticPJPerCyc  float64 // leakage per core per cycle
}

// DefaultEnergyTable returns the documented tpuv3-like table (see the type
// comment for provenance). The small test config reuses it: absolute
// numbers there are not meaningful, determinism and proportions are.
func DefaultEnergyTable() EnergyTable {
	return EnergyTable{
		PJPerMAC:        0.7,
		PJPerWeightLoad: 0.9,
		PJPerLaneOp:     1.5,
		PJPerSFUOp:      4.0,
		PJPerSpadRead:   1.2,
		PJPerSpadWrite:  1.5,
		PJPerDRAMAct:    900,
		PJPerDRAMByte:   31.2,
		PJPerFlitHop:    6.0,
		PJPerLinkFlit:   1470,
		StaticPJPerCyc:  2100,
	}
}

// IsZero reports an unset table (energy reporting disabled).
func (t EnergyTable) IsZero() bool { return t == EnergyTable{} }

// Validate rejects negative entries and, for a non-zero table, requires the
// compute entries to be set (a table with MACs priced at zero would report
// a misleading all-memory breakdown).
func (t EnergyTable) Validate() error {
	entries := []struct {
		name string
		v    float64
	}{
		{"pj_per_mac", t.PJPerMAC},
		{"pj_per_weight_load", t.PJPerWeightLoad},
		{"pj_per_lane_op", t.PJPerLaneOp},
		{"pj_per_sfu_op", t.PJPerSFUOp},
		{"pj_per_spad_read", t.PJPerSpadRead},
		{"pj_per_spad_write", t.PJPerSpadWrite},
		{"pj_per_dram_act", t.PJPerDRAMAct},
		{"pj_per_dram_byte", t.PJPerDRAMByte},
		{"pj_per_flit_hop", t.PJPerFlitHop},
		{"pj_per_link_flit", t.PJPerLinkFlit},
		{"static_pj_per_cycle", t.StaticPJPerCyc},
	}
	for _, e := range entries {
		if e.v < 0 {
			return fmt.Errorf("npu: energy table entry %s is negative (%g)", e.name, e.v)
		}
	}
	if t.IsZero() {
		return nil
	}
	if t.PJPerMAC <= 0 || t.PJPerLaneOp <= 0 {
		return fmt.Errorf("npu: energy table must price MACs and lane ops (> 0), got %g and %g",
			t.PJPerMAC, t.PJPerLaneOp)
	}
	return nil
}

// AreaMM2 returns the core's estimated silicon area from the per-block
// entries on CoreConfig (0 when the entries are unset).
func (c CoreConfig) AreaMM2() float64 {
	return float64(c.NumSAs)*c.SAAreaMM2 +
		float64(c.NumVectorUnits)*c.VectorAreaMM2 +
		float64(c.SpadBytes)/float64(1<<20)*c.SpadAreaMM2PerMiB
}

// TotalAreaMM2 returns the package's core area (cores x per-core area).
func (c Config) TotalAreaMM2() float64 {
	return float64(c.Cores) * c.Core.AreaMM2()
}
