package npu

import "fmt"

// DMADesc is a multi-dimensional DMA descriptor, the state programmed by the
// four CONFIG instructions (Fig. 3(b)) and consumed by mvin/mvout. It
// describes Outer blocks of Rows x Cols elements; the engine also supports
// an implicit transpose (§3.3.3) used by the layout optimizations (§3.6.3).
type DMADesc struct {
	Rows, Cols  int  // 2-D tile shape in elements
	DRAMStride  int  // bytes between consecutive tile rows in DRAM
	SpadStride  int  // bytes between consecutive tile rows in scratchpad
	ElemBytes   int  // element size (4 for float32)
	Transpose   bool // store the tile transposed on the scratchpad side
	Interleave  int  // scratchpad bank interleave granularity (modelled as metadata)
	Outer       int  // outer-dimension repeat count (4-D DMA, §3.6.3)
	OuterStride int  // bytes between outer blocks on the DRAM side
}

// Normalize fills in defaults for unset fields (zero values become the
// natural single-tile descriptor).
func (d DMADesc) Normalize() DMADesc {
	if d.ElemBytes == 0 {
		d.ElemBytes = 4
	}
	if d.Rows == 0 {
		d.Rows = 1
	}
	if d.Cols == 0 {
		d.Cols = 1
	}
	if d.DRAMStride == 0 {
		d.DRAMStride = d.Cols * d.ElemBytes
	}
	if d.SpadStride == 0 {
		if d.Transpose {
			d.SpadStride = d.Rows * d.ElemBytes
		} else {
			d.SpadStride = d.Cols * d.ElemBytes
		}
	}
	if d.Outer == 0 {
		d.Outer = 1
	}
	if d.OuterStride == 0 {
		d.OuterStride = d.Rows * d.DRAMStride
	}
	return d
}

// TotalBytes returns the number of payload bytes the descriptor moves.
func (d DMADesc) TotalBytes() int {
	n := d.Normalize()
	return n.Outer * n.Rows * n.Cols * n.ElemBytes
}

// SpadBlockBytes returns scratchpad bytes consumed per outer block.
func (d DMADesc) SpadBlockBytes() int {
	n := d.Normalize()
	if n.Transpose {
		return n.Cols * n.SpadStride
	}
	return n.Rows * n.SpadStride
}

// Validate rejects descriptors the hardware cannot express.
func (d DMADesc) Validate() error {
	n := d.Normalize()
	if n.Rows <= 0 || n.Cols <= 0 || n.Outer <= 0 {
		return fmt.Errorf("npu: DMA descriptor with non-positive dims %+v", n)
	}
	if n.ElemBytes != 4 {
		return fmt.Errorf("npu: only 4-byte elements supported, got %d", n.ElemBytes)
	}
	if n.DRAMStride < n.Cols*n.ElemBytes {
		return fmt.Errorf("npu: DRAM stride %d smaller than row bytes %d", n.DRAMStride, n.Cols*n.ElemBytes)
	}
	return nil
}

// RunIn functionally executes an mvin: DRAM -> scratchpad.
func (d DMADesc) RunIn(dram *PagedMem, spad *Scratchpad, dramAddr, spadAddr uint64) error {
	n := d.Normalize()
	if err := n.Validate(); err != nil {
		return err
	}
	for o := 0; o < n.Outer; o++ {
		dBase := dramAddr + uint64(o*n.OuterStride)
		sBase := spadAddr + uint64(o*n.spadOuterBytes())
		for r := 0; r < n.Rows; r++ {
			for c := 0; c < n.Cols; c++ {
				v := dram.LoadW(dBase + uint64(r*n.DRAMStride+c*n.ElemBytes))
				spad.StoreW(sBase+n.spadOffset(r, c), v)
			}
		}
	}
	return nil
}

// RunOut functionally executes an mvout: scratchpad -> DRAM.
func (d DMADesc) RunOut(dram *PagedMem, spad *Scratchpad, dramAddr, spadAddr uint64) error {
	n := d.Normalize()
	if err := n.Validate(); err != nil {
		return err
	}
	for o := 0; o < n.Outer; o++ {
		dBase := dramAddr + uint64(o*n.OuterStride)
		sBase := spadAddr + uint64(o*n.spadOuterBytes())
		for r := 0; r < n.Rows; r++ {
			for c := 0; c < n.Cols; c++ {
				v := spad.LoadW(sBase + n.spadOffset(r, c))
				dram.StoreW(dBase+uint64(r*n.DRAMStride+c*n.ElemBytes), v)
			}
		}
	}
	return nil
}

// spadOffset maps tile coordinates to the scratchpad-side byte offset,
// applying the implicit transpose if configured.
func (d DMADesc) spadOffset(r, c int) uint64 {
	if d.Transpose {
		return uint64(c*d.SpadStride + r*d.ElemBytes)
	}
	return uint64(r*d.SpadStride + c*d.ElemBytes)
}

func (d DMADesc) spadOuterBytes() int {
	if d.Transpose {
		return d.Cols * d.SpadStride
	}
	return d.Rows * d.SpadStride
}

// DRAMRanges returns the list of contiguous DRAM byte ranges the descriptor
// touches starting at dramAddr. TOGSim expands these into memory-system
// requests at burst granularity.
type Range struct {
	Addr  uint64
	Bytes int
}

// DRAMRanges enumerates per-row contiguous ranges (rows with contiguous
// strides are coalesced into larger ranges).
func (d DMADesc) DRAMRanges(dramAddr uint64) []Range {
	n := d.Normalize()
	rowBytes := n.Cols * n.ElemBytes
	var out []Range
	for o := 0; o < n.Outer; o++ {
		base := dramAddr + uint64(o*n.OuterStride)
		if n.DRAMStride == rowBytes {
			out = append(out, Range{Addr: base, Bytes: rowBytes * n.Rows})
			continue
		}
		for r := 0; r < n.Rows; r++ {
			out = append(out, Range{Addr: base + uint64(r*n.DRAMStride), Bytes: rowBytes})
		}
	}
	// Coalesce adjacent ranges (outer blocks may abut).
	merged := out[:0]
	for _, rg := range out {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.Addr+uint64(last.Bytes) == rg.Addr {
				last.Bytes += rg.Bytes
				continue
			}
		}
		merged = append(merged, rg)
	}
	return merged
}
