package npu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/tensor"
)

// The native fuzz targets promote the package's testing/quick properties:
// the same seed-driven bodies run under quick.Check in the unit suite, over
// the checked-in corpus (testdata/fuzz) in every plain `go test`, and under
// coverage-guided mutation via `go test -fuzz` / `make fuzz-smoke`.

// propDMARoundTrip: RunIn followed by RunOut restores the strided source
// region exactly for any tile shape and row pitch.
func propDMARoundTrip(seed uint64) bool {
	r := tensor.NewRNG(seed)
	rows, cols := 1+r.Intn(8), 1+r.Intn(8)
	stride := cols*4 + 4*r.Intn(4)
	dram := NewPagedMem()
	spad := NewScratchpad(64 << 10)
	src := tensor.RandNormal(r, 0, 1, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dram.StoreF(uint64(i*stride+j*4), src.At(i, j))
		}
	}
	d := DMADesc{Rows: rows, Cols: cols, DRAMStride: stride}
	if d.RunIn(dram, spad, 0, isa.SpadBase) != nil {
		return false
	}
	outBase := uint64(1 << 20)
	if d.RunOut(dram, spad, outBase, isa.SpadBase) != nil {
		return false
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if dram.LoadF(outBase+uint64(i*stride+j*4)) != src.At(i, j) {
				return false
			}
		}
	}
	return true
}

// propDMARangesTotal: the coalesced DRAM range list accounts for every byte
// the descriptor moves.
func propDMARangesTotal(seed uint64) bool {
	r := tensor.NewRNG(seed)
	d := DMADesc{
		Rows:       1 + r.Intn(6),
		Cols:       1 + r.Intn(6),
		DRAMStride: 0,
		Outer:      1 + r.Intn(3),
	}
	if r.Intn(2) == 0 {
		d.DRAMStride = d.Cols*4 + 4*(1+r.Intn(3))
	}
	total := 0
	for _, rg := range d.DRAMRanges(0) {
		total += rg.Bytes
	}
	return total == d.TotalBytes()
}

func FuzzDMARoundTrip(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !propDMARoundTrip(seed) {
			t.Fatalf("DMA in/out round trip corrupted data (seed %d)", seed)
		}
	})
}

func FuzzDMARangesTotal(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !propDMARangesTotal(seed) {
			t.Fatalf("DRAMRanges bytes do not sum to TotalBytes (seed %d)", seed)
		}
	})
}
