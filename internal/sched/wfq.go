package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// FairQueue is a bounded, multi-tenant weighted-fair queue: each tenant
// gets its own priority-ordered FIFO, and Pop interleaves tenants by
// virtual finish time so a tenant with weight w receives a w-proportional
// share of dequeues under contention — one hot tenant can fill its own
// queue (typed per-tenant overload) without starving or delaying the
// others. With a single tenant and uniform priorities it degrades to a
// plain FIFO, so it is a drop-in replacement for a channel-backed queue.
//
// Pop blocks until an item is available; after Close it keeps draining
// whatever is queued and then reports exhaustion, matching the semantics
// of ranging over a closed channel.
type FairQueue[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int // total bound across tenants
	tcap    int // per-tenant bound
	weight  func(string) int
	tenants map[string]*tenantQueue[T]
	size    int
	vtime   float64 // virtual time of the last dequeue
	seq     int64   // global arrival order, ties broken FIFO
	closed  bool
}

// tenantQueue is one tenant's backlog plus its WFQ bookkeeping.
type tenantQueue[T any] struct {
	items  itemHeap[T]
	finish float64 // virtual finish time of the last dequeued item
	weight float64
}

type queued[T any] struct {
	v    T
	prio int
	seq  int64
}

// itemHeap orders by priority (higher first), then arrival order.
type itemHeap[T any] []queued[T]

func (h itemHeap[T]) Len() int { return len(h) }
func (h itemHeap[T]) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap[T]) Push(x any)   { *h = append(*h, x.(queued[T])) }
func (h *itemHeap[T]) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// QueueOverloadError is the typed admission failure of a FairQueue push:
// either the whole queue or one tenant's share is full.
type QueueOverloadError struct {
	Tenant   string // "" when the global bound fired
	Capacity int    // the bound that fired
}

func (e *QueueOverloadError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("sched: queue full (capacity %d)", e.Capacity)
	}
	return fmt.Sprintf("sched: tenant %q queue full (per-tenant capacity %d)", e.Tenant, e.Capacity)
}

// NewFairQueue returns an empty queue. capacity bounds the total backlog,
// tenantCapacity bounds each tenant's share (<= 0 means the total bound),
// and weight maps tenant names to positive integer weights (nil or
// non-positive results mean weight 1).
func NewFairQueue[T any](capacity, tenantCapacity int, weight func(string) int) *FairQueue[T] {
	if capacity <= 0 {
		capacity = 64
	}
	if tenantCapacity <= 0 || tenantCapacity > capacity {
		tenantCapacity = capacity
	}
	q := &FairQueue[T]{
		cap:     capacity,
		tcap:    tenantCapacity,
		weight:  weight,
		tenants: map[string]*tenantQueue[T]{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v for tenant with the given priority (higher pops earlier
// within the tenant). It never blocks: a full queue returns
// *QueueOverloadError, a closed queue an error.
func (q *FairQueue[T]) Push(tenant string, priority int, v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("sched: queue closed")
	}
	if q.size >= q.cap {
		return &QueueOverloadError{Capacity: q.cap}
	}
	tq := q.tenants[tenant]
	if tq == nil {
		w := 1
		if q.weight != nil {
			if got := q.weight(tenant); got > 0 {
				w = got
			}
		}
		tq = &tenantQueue[T]{weight: float64(w)}
		q.tenants[tenant] = tq
	}
	if len(tq.items) >= q.tcap {
		return &QueueOverloadError{Tenant: tenant, Capacity: q.tcap}
	}
	if len(tq.items) == 0 && tq.finish < q.vtime {
		// A tenant returning from idle starts at the current virtual time:
		// idle periods earn no credit, but neither do they owe debt.
		tq.finish = q.vtime
	}
	q.seq++
	heap.Push(&tq.items, queued[T]{v: v, prio: priority, seq: q.seq})
	q.size++
	q.cond.Signal()
	return nil
}

// Pop dequeues the next item by weighted fair order, blocking while the
// queue is empty. After Close it drains the backlog and then returns
// ok=false forever.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return v, false
		}
		q.cond.Wait()
	}
	// Pick the backlogged tenant with the smallest virtual finish time
	// F = lastFinish + 1/weight (the idle floor was applied at enqueue);
	// ties break by tenant name so the schedule is deterministic regardless
	// of map iteration order.
	var bestName string
	var best *tenantQueue[T]
	var bestF float64
	for name, tq := range q.tenants {
		if len(tq.items) == 0 {
			continue
		}
		f := tq.finish + 1/tq.weight
		if best == nil || f < bestF || (f == bestF && name < bestName) {
			best, bestName, bestF = tq, name, f
		}
	}
	item := heap.Pop(&best.items).(queued[T])
	best.finish = bestF
	q.vtime = bestF
	q.size--
	return item.v, true
}

// Close stops admission and wakes every blocked Pop. Queued items remain
// poppable (drain semantics).
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len reports the total backlog.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Depths reports each tenant's current backlog, omitting idle tenants that
// have never queued. Keys are returned for every tenant seen since the
// queue was created so per-tenant gauges don't vanish when a queue drains.
func (q *FairQueue[T]) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		out[name] = len(tq.items)
	}
	return out
}

// Tenants lists every tenant seen so far in sorted order.
func (q *FairQueue[T]) Tenants() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	names := make([]string, 0, len(q.tenants))
	for name := range q.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
