package sched

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/tog"
	"repro/internal/togsim"
)

func TestGenerateDeterministicAndSorted(t *testing.T) {
	profiles := []Profile{
		{Model: "a", Count: 10, MeanGap: 100, Arrivals: Poisson},
		{Model: "b", Count: 5, MeanGap: 300, Arrivals: Uniform},
	}
	r1 := Generate(42, profiles)
	r2 := Generate(42, profiles)
	if len(r1) != 15 || len(r2) != 15 {
		t.Fatalf("request counts: %d, %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("generation must be deterministic")
		}
		if i > 0 && r1[i].Arrival < r1[i-1].Arrival {
			t.Fatal("requests must be sorted by arrival")
		}
	}
	// Uniform arrivals are exactly MeanGap apart.
	var bTimes []int64
	for _, r := range r1 {
		if r.Model == "b" {
			bTimes = append(bTimes, r.Arrival)
		}
	}
	for i := 1; i < len(bTimes); i++ {
		if bTimes[i]-bTimes[i-1] != 300 {
			t.Fatalf("uniform gap = %d", bTimes[i]-bTimes[i-1])
		}
	}
}

func TestBatchMergesSameModelWithinWindow(t *testing.T) {
	reqs := []Request{
		{Model: "a", Arrival: 0},
		{Model: "a", Arrival: 10},
		{Model: "a", Arrival: 20},
		{Model: "b", Arrival: 25},
		{Model: "a", Arrival: 30},
		{Model: "a", Arrival: 500},
	}
	batches := Batch(reqs, 100, 4)
	// a@0..20 merge (b interrupts), then b, then a@30, then a@500.
	if len(batches) != 4 {
		t.Fatalf("batches = %+v", batches)
	}
	if batches[0].Size != 3 || batches[0].Model != "a" {
		t.Fatalf("first batch wrong: %+v", batches[0])
	}
	if batches[1].Model != "b" || batches[2].Size != 1 || batches[3].Arrival != 500 {
		t.Fatalf("batching wrong: %+v", batches)
	}
	// Max batch size respected.
	many := make([]Request, 10)
	for i := range many {
		many[i] = Request{Model: "a", Arrival: int64(i)}
	}
	b2 := Batch(many, 100, 4)
	if len(b2) != 3 || b2[0].Size != 4 || b2[2].Size != 2 {
		t.Fatalf("max batch wrong: %+v", b2)
	}
}

// fakeCompiled produces compute-only jobs whose length scales with batch.
type fakeCompiled struct {
	batch    int
	compiles *int
}

func (f fakeCompiled) Job(name string, core, src int) *togsim.Job {
	b := tog.NewBuilder(name, "x")
	b.Loop("i", 0, int64(f.batch), 1)
	b.Compute(tog.UnitSA, 100)
	b.EndLoop()
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &togsim.Job{Name: name, TOGs: []*tog.TOG{g}, Bases: []map[string]uint64{{"x": 0}}, Core: core, Src: src}
}

func TestScheduleCompileCacheAndPolicies(t *testing.T) {
	compiles := 0
	compile := func(model string, batch int) (CompiledJob, error) {
		compiles++
		return fakeCompiled{batch: batch, compiles: &compiles}, nil
	}
	batches := []BatchedRequest{
		{Model: "a", Arrival: 0, Size: 2},
		{Model: "b", Arrival: 10, Size: 2},
		{Model: "a", Arrival: 20, Size: 2},
		{Model: "b", Arrival: 30, Size: 2},
	}
	jobs, err := Schedule(batches, 2, Spatial, compile)
	if err != nil {
		t.Fatal(err)
	}
	if compiles != 2 {
		t.Fatalf("TOG cache miss count = %d, want 2 (one per model@batch)", compiles)
	}
	// Spatial: model a on even core, model b on odd core.
	for i, j := range jobs {
		wantCore := 0
		if batches[i].Model == "b" {
			wantCore = 1
		}
		if j.Core != wantCore {
			t.Fatalf("spatial placement wrong: job %d (%s) on core %d", i, batches[i].Model, j.Core)
		}
	}
	// Temporal: round-robin across all cores.
	jobsT, err := Schedule(batches, 2, Temporal, compile)
	if err != nil {
		t.Fatal(err)
	}
	if jobsT[0].Core == jobsT[1].Core {
		t.Fatal("temporal policy should round-robin cores")
	}
}

func TestEndToEndScheduledRun(t *testing.T) {
	compile := func(model string, batch int) (CompiledJob, error) {
		return fakeCompiled{batch: batch}, nil
	}
	reqs := Generate(7, []Profile{
		{Model: "a", Count: 6, MeanGap: 150, Arrivals: Uniform},
		{Model: "b", Count: 3, MeanGap: 400, Arrivals: Uniform},
	})
	batches := Batch(reqs, 50, 4)
	cfg := npu.SmallConfig()
	cfg.Cores = 2
	jobs, err := Schedule(batches, cfg.Cores, Temporal, compile)
	if err != nil {
		t.Fatal(err)
	}
	s := togsim.NewStandard(cfg, togsim.SimpleNet, dram.FRFCFS)
	res, err := s.Engine.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	lats := Summarize(jobs, res.Jobs)
	if len(lats) != 2 {
		t.Fatalf("latency summaries: %+v", lats)
	}
	for _, l := range lats {
		if l.MeanCycles <= 0 || l.MaxCycles <= 0 {
			t.Fatalf("bad latency stats: %+v", l)
		}
	}
	// No job may start before its arrival.
	for i, j := range jobs {
		if res.Jobs[i].Start < j.Arrival {
			t.Fatalf("job %d started at %d before arrival %d", i, res.Jobs[i].Start, j.Arrival)
		}
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var jobs []*togsim.Job
	var results []togsim.JobResult
	// 100 requests with latencies 1..100.
	for i := 1; i <= 100; i++ {
		jobs = append(jobs, &togsim.Job{Name: "m#x", Arrival: 0})
		results = append(results, togsim.JobResult{End: int64(i)})
	}
	lats := Summarize(jobs, results)
	if len(lats) != 1 {
		t.Fatalf("models = %d", len(lats))
	}
	l := lats[0]
	if l.P50Cycles != 50 || l.P95Cycles != 95 || l.P99Cycles != 99 || l.MaxCycles != 100 {
		t.Fatalf("percentiles wrong: %+v", l)
	}
	if l.MeanCycles < 50 || l.MeanCycles > 51 {
		t.Fatalf("mean = %f", l.MeanCycles)
	}
}
