// Package sched implements the request generator and multi-tenant NPU
// scheduler of §3.10: a load generator produces per-model request streams
// with configurable arrival processes; the scheduler batches same-model
// requests, compiles each (model, batch) once into the TOG cache, and maps
// work onto cores with temporal or spatial sharing policies.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
	"repro/internal/togsim"
)

// Request is one inference request for a named model.
type Request struct {
	Model   string
	Arrival int64 // cycle
}

// ArrivalKind selects the load generator's arrival process.
type ArrivalKind int

const (
	// Uniform spaces requests evenly.
	Uniform ArrivalKind = iota
	// Poisson draws exponential inter-arrival gaps.
	Poisson
)

// Profile describes one model's request stream (the "DNN request profile"
// of §3.10).
type Profile struct {
	Model    string
	Count    int
	MeanGap  int64 // mean inter-arrival gap in cycles
	Arrivals ArrivalKind
}

// Generate produces the merged, arrival-sorted request stream for the
// given profiles, deterministically from seed.
func Generate(seed uint64, profiles []Profile) []Request {
	r := tensor.NewRNG(seed)
	var out []Request
	for _, p := range profiles {
		var t int64
		for i := 0; i < p.Count; i++ {
			gap := p.MeanGap
			if p.Arrivals == Poisson {
				// Exponential via inverse CDF; clamp the tail.
				u := r.Float64()
				if u < 1e-9 {
					u = 1e-9
				}
				gap = int64(float64(p.MeanGap) * negLog(u))
			}
			t += gap
			out = append(out, Request{Model: p.Model, Arrival: t})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

func negLog(u float64) float64 {
	return -math.Log(u)
}

// Policy selects how cores are shared among models (§3.10).
type Policy int

const (
	// Temporal shares every core among all models, FCFS.
	Temporal Policy = iota
	// Spatial partitions cores: model i owns cores congruent to i.
	Spatial
)

// CompiledJob is the scheduler's view of a compiled (model, batch): a
// factory for TOGSim jobs. The TOG cache (§3.10) lives behind CompileFn.
type CompiledJob interface {
	Job(name string, core, src int) *togsim.Job
}

// CompileFn compiles (or fetches from the TOG cache) a model at the given
// batch size.
type CompileFn func(model string, batch int) (CompiledJob, error)

// Memoize wraps a CompileFn with a per-(model, batch) memo table — the
// in-process ancestor of the content-addressed cache in internal/service.
// Schedule memoizes internally per call; wrap once and reuse the returned
// fn across Schedule invocations to also share compilations between them,
// or use service.SchedCompileFn for the daemon's shared cache (canonical
// hashing over model, shape, NPU config, and compiler options).
func Memoize(fn CompileFn) CompileFn {
	cache := map[string]CompiledJob{}
	return func(model string, batch int) (CompiledJob, error) {
		key := fmt.Sprintf("%s@%d", model, batch)
		if cj, ok := cache[key]; ok {
			return cj, nil
		}
		cj, err := fn(model, batch)
		if err != nil {
			return nil, fmt.Errorf("sched: compiling %s: %w", key, err)
		}
		cache[key] = cj
		return cj, nil
	}
}

// Batch groups consecutive same-model requests within window cycles into
// batches of at most maxBatch (the scheduler "creates a batch of requests
// that use the same DNN", §3.10).
type BatchedRequest struct {
	Model   string
	Arrival int64 // arrival of the last member (batch dispatch time)
	Size    int
}

// Batch merges the sorted request stream.
func Batch(reqs []Request, window int64, maxBatch int) []BatchedRequest {
	var out []BatchedRequest
	for i := 0; i < len(reqs); {
		b := BatchedRequest{Model: reqs[i].Model, Arrival: reqs[i].Arrival, Size: 1}
		j := i + 1
		for j < len(reqs) && b.Size < maxBatch &&
			reqs[j].Model == b.Model && reqs[j].Arrival-reqs[i].Arrival <= window {
			b.Arrival = reqs[j].Arrival
			b.Size++
			j++
		}
		out = append(out, b)
		i = j
	}
	return out
}

// Schedule maps batched requests onto cores, compiling each unique
// (model, batch) once, and returns the TOGSim jobs plus the model index
// used as the job source id.
func Schedule(batches []BatchedRequest, cores int, policy Policy, compile CompileFn) ([]*togsim.Job, error) {
	modelIdx := map[string]int{}
	for _, b := range batches {
		if _, ok := modelIdx[b.Model]; !ok {
			modelIdx[b.Model] = len(modelIdx)
		}
	}
	compile = Memoize(compile)
	rr := 0
	var jobs []*togsim.Job
	for i, b := range batches {
		cj, err := compile(b.Model, b.Size)
		if err != nil {
			return nil, err
		}
		src := modelIdx[b.Model]
		var core int
		switch policy {
		case Spatial:
			// Model m owns cores m, m+numModels, ...
			n := len(modelIdx)
			owned := cores / n
			if owned < 1 {
				owned = 1
			}
			core = (src + (rr/n%owned)*n) % cores
			rr++
		default: // Temporal: round-robin all cores
			core = rr % cores
			rr++
		}
		j := cj.Job(fmt.Sprintf("%s#%d", b.Model, i), core, src)
		j.Arrival = b.Arrival
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Latency summarizes per-model request latency from an engine result,
// including the tail percentiles SLO studies care about (§3.3.3 motivates
// the scratchpad design with tail latency).
type Latency struct {
	Model      string
	Count      int
	MeanCycles float64
	P50Cycles  int64
	P95Cycles  int64
	P99Cycles  int64
	MaxCycles  int64
}

// Summarize computes per-model latency stats (End - Arrival) for jobs
// named "model#idx".
func Summarize(jobs []*togsim.Job, results []togsim.JobResult) []Latency {
	byModel := map[string][]int64{}
	var order []string
	for i, j := range jobs {
		model := j.Name
		for k := 0; k < len(model); k++ {
			if model[k] == '#' {
				model = model[:k]
				break
			}
		}
		if _, ok := byModel[model]; !ok {
			order = append(order, model)
		}
		byModel[model] = append(byModel[model], results[i].End-j.Arrival)
	}
	var out []Latency
	for _, m := range order {
		lats := byModel[m]
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		l := Latency{Model: m, Count: len(lats)}
		var sum float64
		for _, v := range lats {
			sum += float64(v)
		}
		l.MeanCycles = sum / float64(len(lats))
		l.P50Cycles = percentile(lats, 0.50)
		l.P95Cycles = percentile(lats, 0.95)
		l.P99Cycles = percentile(lats, 0.99)
		l.MaxCycles = lats[len(lats)-1]
		out = append(out, l)
	}
	return out
}

// percentile returns the p-quantile of a sorted slice (nearest-rank).
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
