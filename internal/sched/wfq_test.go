package sched

import (
	"errors"
	"sync"
	"testing"
)

// A single tenant with uniform priorities is a plain FIFO.
func TestFairQueueSingleTenantFIFO(t *testing.T) {
	q := NewFairQueue[int](8, 0, nil)
	for i := 0; i < 5; i++ {
		if err := q.Push("a", 0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
}

// Higher priority pops first within a tenant; equal priorities stay FIFO.
func TestFairQueuePriority(t *testing.T) {
	q := NewFairQueue[string](8, 0, nil)
	for _, it := range []struct {
		prio int
		v    string
	}{{0, "low1"}, {5, "high"}, {0, "low2"}, {2, "mid"}} {
		if err := q.Push("a", it.prio, it.v); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high", "mid", "low1", "low2"}
	for _, w := range want {
		v, _ := q.Pop()
		if v != w {
			t.Fatalf("got %q, want %q", v, w)
		}
	}
}

// Under contention a weight-3 tenant receives three dequeues for every one
// of a weight-1 tenant, and the interleave is deterministic.
func TestFairQueueWeightedShare(t *testing.T) {
	weights := map[string]int{"heavy": 3, "light": 1}
	q := NewFairQueue[string](64, 0, func(tn string) int { return weights[tn] })
	for i := 0; i < 12; i++ {
		if err := q.Push("heavy", 0, "h"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := q.Push("light", 0, "l"); err != nil {
			t.Fatal(err)
		}
	}
	var first8 string
	heavy := 0
	for i := 0; i < 8; i++ {
		v, _ := q.Pop()
		first8 += v
		if v == "h" {
			heavy++
		}
	}
	if heavy != 6 {
		t.Fatalf("heavy got %d of the first 8 dequeues (%s), want 6 (3:1 share)", heavy, first8)
	}
	// Re-run: the schedule must be byte-identical (deterministic WFQ).
	q2 := NewFairQueue[string](64, 0, func(tn string) int { return weights[tn] })
	for i := 0; i < 12; i++ {
		_ = q2.Push("heavy", 0, "h")
	}
	for i := 0; i < 4; i++ {
		_ = q2.Push("light", 0, "l")
	}
	var again string
	for i := 0; i < 8; i++ {
		v, _ := q2.Pop()
		again += v
	}
	if again != first8 {
		t.Fatalf("schedule not deterministic: %s vs %s", first8, again)
	}
}

// The global and per-tenant bounds fire as typed errors, and the per-tenant
// bound names the tenant.
func TestFairQueueOverload(t *testing.T) {
	q := NewFairQueue[int](4, 2, nil)
	if err := q.Push("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("a", 0, 2); err != nil {
		t.Fatal(err)
	}
	err := q.Push("a", 0, 3)
	var over *QueueOverloadError
	if !errors.As(err, &over) || over.Tenant != "a" || over.Capacity != 2 {
		t.Fatalf("per-tenant overload: got %v", err)
	}
	if err := q.Push("b", 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 0, 5); err != nil {
		t.Fatal(err)
	}
	err = q.Push("d", 0, 6)
	if !errors.As(err, &over) || over.Tenant != "" || over.Capacity != 4 {
		t.Fatalf("global overload: got %v", err)
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len=%d, want 4", got)
	}
	d := q.Depths()
	if d["a"] != 2 || d["b"] != 1 || d["c"] != 1 {
		t.Fatalf("Depths=%v", d)
	}
}

// Close wakes blocked poppers, keeps draining the backlog, then reports
// exhaustion; pushes after Close fail.
func TestFairQueueCloseDrains(t *testing.T) {
	q := NewFairQueue[int](8, 0, nil)
	for i := 0; i < 3; i++ {
		if err := q.Push("a", 0, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Push("a", 0, 9); err == nil {
		t.Fatal("push after close succeeded")
	}
	var got []int
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 {
		t.Fatalf("drained %v, want 3 items", got)
	}
}

// Concurrent producers and consumers move every item exactly once (run
// under -race in the full gate).
func TestFairQueueConcurrent(t *testing.T) {
	q := NewFairQueue[int](1024, 0, nil)
	const n = 400
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := string(rune('a' + p))
			for i := 0; i < n/4; i++ {
				if err := q.Push(tenant, i%3, p*1000+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	seen := make(map[int]bool, n)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("item %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if len(seen) != n {
		t.Fatalf("popped %d items, want %d", len(seen), n)
	}
}
