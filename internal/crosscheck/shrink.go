package crosscheck

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/npu"
)

// DefaultMaxShrinkSteps bounds accepted reductions per shrink.
const DefaultMaxShrinkSteps = 64

// size scores a case for the shrinker: smaller is simpler. Every candidate
// move strictly reduces it, so greedy shrinking terminates.
func size(cs Case) int {
	w := cs.Workload
	s := w.M + w.K + w.N + w.Batch + w.In + w.Hidden + w.Classes + 16*w.Depth
	if w.Kind != "gemm" {
		s += 32
	}
	if w.Epilogue != "" {
		s += 8
	}
	if cs.Jobs > 1 {
		s += 24
	}
	if cs.Net == "cn" {
		s += 8
	}
	if cs.Workers > 2 {
		s += cs.Workers
	}
	s += 4 * configDeviation(cs.NPU)
	s += 4 * optionsDeviation(cs.Opts)
	return s
}

// configDeviation counts fields differing from the small reference machine.
func configDeviation(cfg npu.Config) int {
	ref := npu.SmallConfig()
	ref.Cores = cfg.Cores // core count is the job shape's business
	n := 0
	for _, d := range []bool{
		cfg.Core.SARows != ref.Core.SARows,
		cfg.Core.SACols != ref.Core.SACols,
		cfg.Core.NumSAs != ref.Core.NumSAs,
		cfg.Core.NumVectorUnits != ref.Core.NumVectorUnits,
		cfg.Core.LanesPerUnit != ref.Core.LanesPerUnit,
		cfg.Core.SpadBytes != ref.Core.SpadBytes,
		cfg.Core.DesFIFORows != ref.Core.DesFIFORows,
		cfg.Core.VectorLatency != ref.Core.VectorLatency,
		cfg.Core.SFULatency != ref.Core.SFULatency,
		cfg.Core.MemLatency != ref.Core.MemLatency,
		cfg.Core.FloatLatency != ref.Core.FloatLatency,
		cfg.Mem.Channels != ref.Mem.Channels,
		cfg.Mem.BanksPerChan != ref.Mem.BanksPerChan,
		cfg.Mem.RowBytes != ref.Mem.RowBytes,
		cfg.Mem.TCL != ref.Mem.TCL,
		cfg.Mem.TRCD != ref.Mem.TRCD,
		cfg.Mem.TRP != ref.Mem.TRP,
		cfg.NoC.LatencyCycle != ref.NoC.LatencyCycle,
	} {
		if d {
			n++
		}
	}
	return n
}

func optionsDeviation(o compiler.Options) int {
	def := compiler.DefaultOptions()
	n := 0
	if o.Fusion != def.Fusion {
		n++
	}
	if o.DMA != def.DMA {
		n++
	}
	if o.MaxMt != def.MaxMt {
		n++
	}
	if o.FineThresholdBytes != def.FineThresholdBytes {
		n++
	}
	return n
}

// candidates proposes strictly smaller variants of cs, most aggressive
// first: collapse the workload to a plain GEMM, zero out run-shape
// complexity, reset the machine, then chip away at individual dimensions.
func candidates(cs Case) []Case {
	var out []Case
	add := func(mut func(*Case)) {
		c := cs
		mut(&c)
		if size(c) < size(cs) {
			out = append(out, c)
		}
	}
	w := cs.Workload

	// Collapse the workload family to a plain GEMM of comparable shape.
	if w.Kind != "gemm" {
		add(func(c *Case) {
			g := WorkloadSpec{Kind: "gemm", M: w.M, K: w.K, N: w.N}
			switch w.Kind {
			case "mlp":
				g.M, g.K, g.N = w.Batch, w.In, w.Hidden
			case "chain":
				g.N = w.K
			}
			if g.M < 1 {
				g.M = 1
			}
			if g.K < 1 {
				g.K = 1
			}
			if g.N < 1 {
				g.N = 1
			}
			c.Workload = g
		})
	}
	if w.Epilogue != "" {
		add(func(c *Case) { c.Workload.Epilogue = "" })
	}
	if w.Depth > 1 {
		add(func(c *Case) { c.Workload.Depth = 1 })
		add(func(c *Case) { c.Workload.Depth-- })
	}
	// Run-shape simplifications.
	if cs.Jobs > 1 {
		add(func(c *Case) { c.Jobs, c.Arrival = 1, 0 })
	}
	if cs.Net == "cn" {
		add(func(c *Case) { c.Net = "sn" })
	}
	if cs.Workers > 2 {
		add(func(c *Case) { c.Workers = 2 })
	}
	// Machine and compiler-option resets: whole, then field by field.
	if configDeviation(cs.NPU) > 0 {
		add(func(c *Case) {
			ref := npu.SmallConfig()
			ref.Cores = c.NPU.Cores
			c.NPU = ref
		})
		ref := npu.SmallConfig()
		add(func(c *Case) { c.NPU.Core = ref.Core })
		add(func(c *Case) { c.NPU.Mem = ref.Mem })
		add(func(c *Case) { c.NPU.NoC = ref.NoC })
	}
	if optionsDeviation(cs.Opts) > 0 {
		add(func(c *Case) { c.Opts = compiler.DefaultOptions() })
	}
	// Dimension reductions: aim for 1 first, then halve, per dimension.
	for _, dim := range []struct {
		get func(*WorkloadSpec) *int
		min int
	}{
		{func(w *WorkloadSpec) *int { return &w.M }, 1},
		{func(w *WorkloadSpec) *int { return &w.K }, 1},
		{func(w *WorkloadSpec) *int { return &w.N }, minN(w.Kind)},
		{func(w *WorkloadSpec) *int { return &w.Batch }, 1},
		{func(w *WorkloadSpec) *int { return &w.In }, 1},
		{func(w *WorkloadSpec) *int { return &w.Hidden }, 1},
		{func(w *WorkloadSpec) *int { return &w.Classes }, 1},
	} {
		d := dim
		cur := *d.get(&w)
		if cur > d.min {
			add(func(c *Case) { *d.get(&c.Workload) = d.min })
			if cur/2 > d.min {
				add(func(c *Case) { *d.get(&c.Workload) = cur / 2 })
			}
		}
	}
	return out
}

// minN is the smallest legal last dimension for a workload kind (softmax
// and layernorm rows need at least two elements to be interesting and the
// reference executors require >= 2 columns for layernorm variance).
func minN(kind string) int {
	switch kind {
	case "softmax", "layernorm":
		return 2
	default:
		return 1
	}
}

// Shrink greedily minimizes a failing case: it repeatedly tries candidate
// reductions and accepts any that still fails the same oracle, until no
// candidate helps or the step budget is spent. The result is a Failure
// with the smallest case found (possibly the original) and that case's
// up-to-date divergence detail.
func (ck *Checker) Shrink(fail Failure) Failure {
	budget := ck.MaxShrinkSteps
	if budget <= 0 {
		budget = DefaultMaxShrinkSteps
	}
	cur := fail
	for budget > 0 {
		improved := false
		for _, cand := range candidates(cur.Case) {
			got := ck.RunCase(cand)
			if got != nil && got.Oracle == cur.Oracle {
				if ck.Log != nil {
					fmt.Fprintf(ck.Log, "shrink: %d -> %d (%s)\n", size(cur.Case), size(cand), cand.String())
				}
				cur = *got
				improved = true
				budget--
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur
}
