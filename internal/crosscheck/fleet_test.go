package crosscheck

import "testing"

// The fleet-determinism oracle passes clean on a seeded mixed batch.
func TestCheckFleet(t *testing.T) {
	if err := CheckFleet(3, false); err != nil {
		t.Fatal(err)
	}
}

// The fault-injection self-test: a corrupted member response MUST be
// detected (CheckFleet returns nil only when the fault was caught).
func TestCheckFleetFaultDetected(t *testing.T) {
	if err := CheckFleet(3, true); err != nil {
		t.Fatal(err)
	}
}
