package crosscheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReproVersion is the schema version of the repro file format. Bump it on
// any incompatible Case change; Load rejects mismatched files instead of
// silently replaying a different workload than the one that diverged.
const ReproVersion = 1

// Repro is the serialized form of a divergence: the (shrunk) case, which
// oracle fired, and the detail observed — a one-file, one-command bug
// report (`ptsimcheck -replay file`).
type Repro struct {
	FormatVersion int    `json:"format_version"`
	Oracle        string `json:"oracle"`
	Detail        string `json:"detail"`
	// Fault records that the divergence was produced by the deliberate
	// fault-injection self-test, so a replay re-arms the same fault.
	Fault bool `json:"fault,omitempty"`
	// EngineFault records the parallel-barrier fault hook, re-armed the
	// same way on replay.
	EngineFault bool `json:"engine_fault,omitempty"`
	Case        Case `json:"case"`
}

// NewRepro packages a failure for serialization, recording which
// deliberate-defect hooks the checker had armed so a replay re-arms them.
func NewRepro(f Failure, faulted, engineFaulted bool) Repro {
	return Repro{FormatVersion: ReproVersion, Oracle: f.Oracle, Detail: f.Detail,
		Fault: faulted, EngineFault: engineFaulted, Case: f.Case}
}

// Write serializes the repro to path as indented JSON.
func (r Repro) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads and validates a repro file.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("crosscheck: parsing repro %s: %w", path, err)
	}
	if r.FormatVersion != ReproVersion {
		return Repro{}, fmt.Errorf("crosscheck: repro %s has format version %d, this build reads %d",
			path, r.FormatVersion, ReproVersion)
	}
	return r, nil
}

// Replay re-runs a repro's case through the full oracle set. If the repro
// came from the fault-injection self-test and the checker has no fault
// armed, the standard ±1 perturbation is re-armed so the replay reproduces
// the recorded divergence.
func (ck *Checker) Replay(r Repro) *Failure {
	if r.Fault && ck.Fault == nil {
		ck.Fault = PerturbTileLatency(1)
	}
	if r.EngineFault {
		ck.EngineFault = true
	}
	return ck.RunCase(r.Case)
}
