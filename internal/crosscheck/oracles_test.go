package crosscheck

import "testing"

// The serve-determinism oracle passes clean: replaying the same seeded
// trace twice and swapping serial for parallel engines must not move a
// single cycle.
func TestCheckServe(t *testing.T) {
	if err := CheckServe(2); err != nil {
		t.Fatal(err)
	}
}

// The topology-parallel oracle passes clean on a prefix of the standing
// gate's stream (the full 200-case sweep runs in `make crosscheck`).
func TestCheckTopology(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	if err := CheckTopology(2, n); err != nil {
		t.Fatal(err)
	}
}
