package crosscheck

import (
	"fmt"
	"io"
	"math"
	"reflect"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service/cache"
	"repro/internal/tensor"
	"repro/internal/timingsim"
	"repro/internal/tog"
	"repro/internal/togsim"
)

// FuncTolerance is the relative/absolute tolerance of the funcsim-vs-host
// numerics oracle. The NPU accumulates float32 in tile order, the host
// reference in row order, so bit equality is not expected — agreement
// within float32 accumulation noise is.
const FuncTolerance = 1e-3

// Failure reports one diverging case: which oracle fired and why.
type Failure struct {
	Case   Case   `json:"case"`
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (f *Failure) Error() string {
	return fmt.Sprintf("oracle %q: %s (%s)", f.Oracle, f.Detail, f.Case.String())
}

// Checker runs cases through the oracle set.
type Checker struct {
	// Fault, when non-nil, perturbs the compiled artifact after the base
	// compile — the deliberate-defect hook the self-test uses to prove the
	// oracles detect (and the shrinker minimizes) a ±1-cycle latency drift.
	// Production checking leaves it nil.
	Fault func(*compiler.Compiled)
	// EngineFault corrupts the parallel engine's barrier ordering (staged
	// fabric submissions replay one cycle late, in reversed core order) —
	// the deliberate-defect hook the self-test uses to prove the
	// serial-vs-parallel oracle detects divergence. Production checking
	// leaves it false.
	EngineFault bool
	// MaxShrinkSteps bounds the shrinker's accepted reductions
	// (0 = DefaultMaxShrinkSteps).
	MaxShrinkSteps int
	// Log, when non-nil, receives one line per checked case.
	Log io.Writer
}

// PerturbTileLatency returns a Fault that shifts the first kernel-bearing
// compute node's latency by delta cycles — the smallest possible timing
// model drift. The ILS↔TLS oracle must catch it.
func PerturbTileLatency(delta int64) func(*compiler.Compiled) {
	return func(c *compiler.Compiled) {
		for _, g := range c.TOGs {
			for i := range g.Nodes {
				n := &g.Nodes[i]
				if n.Kind == tog.Compute && n.Kernel != "" {
					n.Cycles += delta
					return
				}
			}
		}
	}
}

// artifacts is the per-case shared state: compile once, let every oracle
// reuse it.
type artifacts struct {
	g    *graph.Graph
	comp *compiler.Compiled
	// tls is the event-driven engine result for the case's job set.
	tls togsim.Result
	// solo is the single-job result the ILS total is compared against
	// (identical to tls when the case runs one job).
	solo togsim.Result
}

func (cs Case) netKind() togsim.NetKind {
	if cs.Net == "cn" {
		return togsim.CycleNet
	}
	return togsim.SimpleNet
}

// buildJobs places the compiled model on core 0 and, for two-job cases, a
// second copy on core 1 with the case's arrival offset.
func (cs Case) buildJobs(comp *compiler.Compiled) []*togsim.Job {
	jobs := []*togsim.Job{comp.Job(comp.Name, 0, 0)}
	if cs.Jobs > 1 {
		j := comp.Job(comp.Name+"-b", 1, 1)
		j.Arrival = cs.Arrival
		jobs = append(jobs, j)
	}
	return jobs
}

// runEngine executes jobs on a fresh standard TLS stack.
func (cs Case) runEngine(comp *compiler.Compiled, strict bool, probe obs.Probe) (togsim.Result, error) {
	s := togsim.NewStandard(cs.NPU, cs.netKind(), dram.FRFCFS)
	s.Engine.StrictTick = strict
	if probe != nil {
		s.AttachProbe(probe)
	}
	return s.Engine.Run(cs.buildJobs(comp))
}

// prepare compiles the case (serial, private cache — the canonical
// artifact), applies the fault hook, and runs the baseline TLS passes.
func (ck *Checker) prepare(cs Case) (*artifacts, *Failure) {
	g, err := cs.Workload.Build()
	if err != nil {
		return nil, &Failure{Case: cs, Oracle: "build", Detail: err.Error()}
	}
	c := compiler.New(cs.NPU, cs.Opts)
	c.Workers = 1
	comp, err := c.Compile(g)
	if err != nil {
		return nil, &Failure{Case: cs, Oracle: "compile", Detail: err.Error()}
	}
	if ck.Fault != nil {
		ck.Fault(comp)
	}
	art := &artifacts{g: g, comp: comp}
	art.tls, err = cs.runEngine(comp, false, nil)
	if err != nil {
		return nil, &Failure{Case: cs, Oracle: "engine", Detail: err.Error()}
	}
	if cs.Jobs > 1 {
		solo := cs
		solo.Jobs = 1
		art.solo, err = solo.runEngine(comp, false, nil)
		if err != nil {
			return nil, &Failure{Case: cs, Oracle: "engine", Detail: err.Error()}
		}
	} else {
		art.solo = art.tls
	}
	return art, nil
}

// oracle is one named differential check.
type oracle struct {
	name string
	run  func(ck *Checker, cs Case, art *artifacts) error
}

// oracleList is the checking order: the cycle-agreement oracle first (it is
// the paper's headline claim), then numerics, then the metamorphic set.
var oracleList = []oracle{
	{"ils-tls", (*Checker).checkILSTLS},
	{"funcsim", (*Checker).checkFuncsim},
	{"engine-strict", (*Checker).checkStrictTick},
	{"engine-parallel", (*Checker).checkParallel},
	{"energy-determinism", (*Checker).checkEnergy},
	{"probe", (*Checker).checkProbe},
	{"compile-workers", (*Checker).checkWorkers},
	{"compile-store", (*Checker).checkStore},
}

// OracleNames lists every oracle in checking order.
func OracleNames() []string {
	out := make([]string, len(oracleList))
	for i, o := range oracleList {
		out[i] = o.name
	}
	return out
}

// checkILSTLS enforces the §3.8 determinism claim from both ends: every
// TOG compute node's latency must equal an independent instruction-level
// re-measurement of its kernel (funcsim + timing pipeline, fresh state),
// and a full ILS run of the program must report exactly the TLS cycle
// count.
func (ck *Checker) checkILSTLS(cs Case, art *artifacts) error {
	measured := map[string]int64{}
	for ti, g := range art.comp.TOGs {
		for ni := range g.Nodes {
			n := &g.Nodes[ni]
			if n.Kind != tog.Compute || n.Kernel == "" {
				continue
			}
			want, ok := measured[n.Kernel]
			if !ok {
				prog, have := art.comp.Kernels[n.Kernel]
				if !have {
					return fmt.Errorf("TOG %d node %d references unknown kernel %q", ti, n.ID, n.Kernel)
				}
				res, err := timingsim.MeasureKernel(cs.NPU.Core, prog, nil)
				if err != nil {
					return fmt.Errorf("re-measuring kernel %q: %v", n.Kernel, err)
				}
				want = res.Cycles
				measured[n.Kernel] = want
			}
			if n.Cycles != want {
				return fmt.Errorf("TOG %d (%s) node %d: TLS uses %d cycles for kernel %q, ILS re-measurement gives %d",
					ti, g.Name, n.ID, n.Cycles, n.Kernel, want)
			}
		}
	}
	ils, err := compiler.RunILS(art.comp, cs.NPU, cs.netKind())
	if err != nil {
		return fmt.Errorf("ILS run: %v", err)
	}
	if ils.Cycles != art.solo.Cycles {
		return fmt.Errorf("ILS total %d cycles != TLS total %d cycles", ils.Cycles, art.solo.Cycles)
	}
	return nil
}

// checkFuncsim validates the functional simulator's numerics against the
// host reference executor on the same seeded inputs.
func (ck *Checker) checkFuncsim(cs Case, art *artifacts) error {
	if !art.comp.FunctionalOK {
		return nil // timing-only program; nothing to compare
	}
	env := cs.Env(art.g)
	npuOut, err := compiler.RunFunctional(art.comp, art.g, env)
	if err != nil {
		return fmt.Errorf("functional run: %v", err)
	}
	cpuOut, err := graph.Execute(art.g, env)
	if err != nil {
		return fmt.Errorf("reference run: %v", err)
	}
	for _, id := range art.g.Outputs {
		name := art.comp.OutputTensors[id]
		got, cpu := npuOut[name], cpuOut[id]
		if got == nil || cpu == nil {
			return fmt.Errorf("output %q (node %d) missing: npu=%v cpu=%v", name, id, got != nil, cpu != nil)
		}
		if !tensor.AllClose(got, cpu, FuncTolerance, FuncTolerance) {
			return fmt.Errorf("output %q diverges: max |npu-cpu| = %g (tolerance %g)",
				name, maxAbsDiff(got, cpu), FuncTolerance)
		}
	}
	return nil
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var worst float64
	if len(a.Data) != len(b.Data) {
		return math.Inf(1)
	}
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i]) - float64(b.Data[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// checkStrictTick requires the strict per-cycle polling loop to reproduce
// the event-driven result bit for bit.
func (ck *Checker) checkStrictTick(cs Case, art *artifacts) error {
	strict, err := cs.runEngine(art.comp, true, nil)
	if err != nil {
		return fmt.Errorf("strict run: %v", err)
	}
	if !reflect.DeepEqual(art.tls, strict) {
		return fmt.Errorf("event %+v != strict %+v", art.tls, strict)
	}
	return nil
}

// checkParallel requires the windowed parallel engine (the case's Workers
// count) to reproduce the event-driven serial result bit for bit. Cases on
// the cycle-accurate crossbar fall back to the serial path inside Run (the
// crossbar is not window-safe), which this oracle still verifies end to
// end. With the checker's EngineFault set, the barrier replay is
// deliberately corrupted and this oracle must fire on coupled cases.
func (ck *Checker) checkParallel(cs Case, art *artifacts) error {
	s := togsim.NewStandard(cs.NPU, cs.netKind(), dram.FRFCFS)
	s.Engine.Workers = cs.Workers
	if s.Engine.Workers < 2 {
		s.Engine.Workers = 2
	}
	s.Engine.PerturbBarrier = ck.EngineFault
	par, err := s.Engine.Run(cs.buildJobs(art.comp))
	if err != nil {
		return fmt.Errorf("parallel run (workers=%d): %v", s.Engine.Workers, err)
	}
	if !reflect.DeepEqual(art.tls, par) {
		return fmt.Errorf("serial %+v != parallel (workers=%d) %+v", art.tls, s.Engine.Workers, par)
	}
	return nil
}

// checkProbe requires an attached observability probe to be invisible in
// the Result while still producing a non-empty trace.
func (ck *Checker) checkProbe(cs Case, art *artifacts) error {
	tw := obs.NewTraceWriter()
	traced, err := cs.runEngine(art.comp, false, tw)
	if err != nil {
		return fmt.Errorf("traced run: %v", err)
	}
	if !reflect.DeepEqual(art.tls, traced) {
		return fmt.Errorf("plain %+v != traced %+v", art.tls, traced)
	}
	if tw.Len() == 0 {
		return fmt.Errorf("traced run produced an empty trace")
	}
	return nil
}

// checkWorkers requires a Workers=N compile to be bit-identical to a
// serial one (fresh compilers, private caches on both sides).
func (ck *Checker) checkWorkers(cs Case, art *artifacts) error {
	serial := compiler.New(cs.NPU, cs.Opts)
	serial.Workers = 1
	c1, err := serial.Compile(art.g)
	if err != nil {
		return fmt.Errorf("serial compile: %v", err)
	}
	par := compiler.New(cs.NPU, cs.Opts)
	par.Workers = cs.Workers
	cN, err := par.Compile(art.g)
	if err != nil {
		return fmt.Errorf("workers=%d compile: %v", cs.Workers, err)
	}
	if !reflect.DeepEqual(c1, cN) {
		return fmt.Errorf("workers=%d compile differs from serial (%s)", cs.Workers, describeCompiledDiff(c1, cN))
	}
	return nil
}

// checkStore requires a warm compile seeded from a cold compile's
// persisted latency table to be bit-identical and measurement-free.
func (ck *Checker) checkStore(cs Case, art *artifacts) error {
	store := cache.NewMemory()
	cold := core.NewSimulator(cs.NPU, cs.Opts)
	cold.AttachStore(store)
	c1, err := cold.Compile(art.g)
	if err != nil {
		return fmt.Errorf("cold compile: %v", err)
	}
	warm := core.NewSimulator(cs.NPU, cs.Opts)
	warm.AttachStore(store)
	c2, err := warm.Compile(art.g)
	if err != nil {
		return fmt.Errorf("warm compile: %v", err)
	}
	if n := warm.Compiler.MeasureCount(); n != 0 {
		return fmt.Errorf("warm compile re-ran %d measurements (want 0)", n)
	}
	if !reflect.DeepEqual(c1, c2) {
		return fmt.Errorf("warm compile differs from cold (%s)", describeCompiledDiff(c1, c2))
	}
	return nil
}

// describeCompiledDiff localizes the first difference between two compiled
// artifacts for the divergence report.
func describeCompiledDiff(a, b *compiler.Compiled) string {
	if len(a.TOGs) != len(b.TOGs) {
		return fmt.Sprintf("TOG count %d vs %d", len(a.TOGs), len(b.TOGs))
	}
	for i := range a.TOGs {
		if !reflect.DeepEqual(a.TOGs[i], b.TOGs[i]) {
			return fmt.Sprintf("TOG %d (%s) differs", i, a.TOGs[i].Name)
		}
	}
	if !reflect.DeepEqual(a.Kernels, b.Kernels) {
		return "kernel programs differ"
	}
	if !reflect.DeepEqual(a.Bases, b.Bases) {
		return "tensor bases differ"
	}
	return "metadata differs"
}

// RunCase checks one case against every oracle, returning the first
// divergence or nil.
func (ck *Checker) RunCase(cs Case) *Failure {
	art, fail := ck.prepare(cs)
	if fail != nil {
		return fail
	}
	for _, o := range oracleList {
		if err := o.run(ck, cs, art); err != nil {
			return &Failure{Case: cs, Oracle: o.name, Detail: err.Error()}
		}
	}
	return nil
}

// Stats summarizes a generation run.
type Stats struct {
	Cases int            // cases checked (including a failing one)
	Kinds map[string]int // workload kinds seen
}

// Run generates and checks n cases from the stream seed, stopping at the
// first divergence. The returned Failure (nil when everything agreed) is
// the raw, unshrunk case.
func (ck *Checker) Run(seed uint64, n int) (*Failure, Stats) {
	st := Stats{Kinds: map[string]int{}}
	for i := 0; i < n; i++ {
		cs := Generate(seed, i)
		st.Cases++
		st.Kinds[cs.Workload.Kind]++
		if ck.Log != nil {
			fmt.Fprintf(ck.Log, "%s\n", cs.String())
		}
		if fail := ck.RunCase(cs); fail != nil {
			return fail, st
		}
	}
	return nil, st
}
