package crosscheck

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/compiler"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// topoCase is one seeded draw of the topology-parallel oracle: a parallel
// strategy, a topology preset it runs on, and a workload shape.
type topoCase struct {
	Index    int
	Strategy parallel.Strategy
	Preset   string
	// Data-parallel workload: an N×N GEMM replicated on every package.
	GemmN int
	// Tensor-parallel workload: a decoder config sharded across packages.
	Model   string
	Batch   int
	Ctx     int
	Prefill bool
	Workers int // parallel-engine host workers for the bit-identity leg
	Seed    uint64
}

func (c topoCase) String() string {
	w := fmt.Sprintf("gemm n=%d", c.GemmN)
	if c.Strategy == parallel.Tensor {
		w = fmt.Sprintf("%s batch=%d ctx=%d prefill=%v", c.Model, c.Batch, c.Ctx, c.Prefill)
	}
	return fmt.Sprintf("topo case %d: %s on %s, %s, workers=%d, seed=%d",
		c.Index, c.Strategy, c.Preset, w, c.Workers, c.Seed)
}

// CheckTopology is the topology-parallel oracle: n seeded cases of data-
// and tensor-parallel workloads placed over multi-package topologies, each
// held to two invariants —
//
//  1. Numerics: the lockstep replica execution (graph.ExecuteSharded over
//     the per-rank graphs, collectives combined across ranks) matches the
//     single-core funcsim reference within float32 tolerance on every rank.
//  2. Timing: the event-driven, strict-tick, and parallel (workers ≥ 2)
//     engines produce bit-identical results AND bit-identical per-package
//     fabric stats for the placed ranks, with nonzero link traffic and the
//     expected number of collective regions per rank.
//
// Compiles are memoized across cases (the same content-addressed-cache
// semantics the service uses), so 200 cases reuse a few dozen artifacts.
func CheckTopology(seed uint64, n int) error {
	comp := compiler.New(npu.SmallConfig(), compiler.DefaultOptions())
	memo := map[string]*compiler.Compiled{}
	for i := 0; i < n; i++ {
		c := genTopoCase(seed, i)
		if err := runTopoCase(c, comp, memo); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
	}
	return nil
}

// genTopoCase draws case i of the stream. Tensor parallelism needs heads
// and FFN divisible by the package count: decoder-tiny (2 heads) shards
// 2 ways on pkg2; decoder-small (4 heads) shards 4 ways on mesh2x2.
func genTopoCase(seed uint64, i int) topoCase {
	rng := rand.New(rand.NewSource(int64(seed)*1000003 + int64(i)))
	c := topoCase{
		Index:   i,
		Workers: 2 + rng.Intn(3),
		Seed:    seed + uint64(i)*7919,
	}
	if rng.Intn(2) == 0 {
		c.Strategy = parallel.Data
		c.Preset = []string{"pkg2", "mesh1x3", "mesh2x2", "mesh1x4"}[rng.Intn(4)]
		c.GemmN = []int{32, 48, 64}[rng.Intn(3)]
	} else {
		c.Strategy = parallel.Tensor
		if rng.Intn(8) == 0 {
			c.Preset, c.Model = "mesh2x2", "decoder-small"
			c.Batch, c.Ctx = 1, 8
		} else {
			c.Preset, c.Model = "pkg2", "decoder-tiny"
			c.Batch = 1 + rng.Intn(3)
			c.Ctx = []int{4, 8, 16}[rng.Intn(3)]
		}
		c.Prefill = rng.Intn(4) == 0
	}
	return c
}

func runTopoCase(c topoCase, comp *compiler.Compiler, memo map[string]*compiler.Compiled) error {
	tc, err := topo.Preset(c.Preset, npu.SmallConfig().Mem)
	if err != nil {
		return err
	}
	parts := tc.Packages()

	var rg *graph.Graph
	var wantRegions int64
	switch c.Strategy {
	case parallel.Data:
		rg, err = checkTopoGemmNumerics(c, parts)
		wantRegions = 1
	case parallel.Tensor:
		var cfg nn.DecoderConfig
		if c.Model == "decoder-small" {
			cfg = nn.DecoderSmallConfig(c.Batch, c.Ctx, c.Prefill)
		} else {
			cfg = nn.DecoderTinyConfig(c.Batch, c.Ctx, c.Prefill)
		}
		rg, err = checkTopoDecoderNumerics(cfg, parts, c.Seed)
		wantRegions = 2 * int64(cfg.Layers)
	default:
		return fmt.Errorf("unexpected strategy %q", c.Strategy)
	}
	if err != nil {
		return err
	}

	key := fmt.Sprintf("%s|%s|b%d|c%d|n%d|pre%v|p%d", c.Strategy, c.Model, c.Batch, c.Ctx, c.GemmN, c.Prefill, parts)
	art, ok := memo[key]
	if !ok {
		art, err = comp.Compile(rg)
		if err != nil {
			return fmt.Errorf("compiling rank graph: %w", err)
		}
		memo[key] = art
	}
	if art.FunctionalOK {
		return fmt.Errorf("collective graph compiled FunctionalOK=true: ring-lowered TOGs must not claim funcsim validity")
	}

	ev, fe, err := runTopoEngine(tc, rg.Name, art, 0, false)
	if err != nil {
		return fmt.Errorf("event engine: %w", err)
	}
	st, fs, err := runTopoEngine(tc, rg.Name, art, 0, true)
	if err != nil {
		return fmt.Errorf("strict-tick engine: %w", err)
	}
	pw, fp, err := runTopoEngine(tc, rg.Name, art, c.Workers, false)
	if err != nil {
		return fmt.Errorf("parallel engine: %w", err)
	}
	if !reflect.DeepEqual(ev, st) {
		return fmt.Errorf("event vs strict-tick results diverge:\n%+v\n%+v", ev, st)
	}
	if !reflect.DeepEqual(ev, pw) {
		return fmt.Errorf("event vs workers=%d results diverge:\n%+v\n%+v", c.Workers, ev, pw)
	}
	if !reflect.DeepEqual(fe.Pkg, fs.Pkg) || !reflect.DeepEqual(fe.Pkg, fp.Pkg) {
		return fmt.Errorf("per-package fabric stats diverge across engine modes:\nevent:  %+v\nstrict: %+v\npar:    %+v", fe.Pkg, fs.Pkg, fp.Pkg)
	}
	if fe.LinkFlits != fs.LinkFlits || fe.LinkFlits != fp.LinkFlits {
		return fmt.Errorf("link flits diverge: %d / %d / %d", fe.LinkFlits, fs.LinkFlits, fp.LinkFlits)
	}
	if fe.LinkFlits == 0 {
		return fmt.Errorf("ring collectives across %d packages moved zero link flits", parts)
	}
	if len(ev.Jobs) != parts {
		return fmt.Errorf("placed %d ranks, engine reports %d jobs", parts, len(ev.Jobs))
	}
	for _, j := range ev.Jobs {
		if j.Collectives != wantRegions {
			return fmt.Errorf("rank %s ran %d collective regions, want %d", j.Name, j.Collectives, wantRegions)
		}
		if j.CollectiveCycles <= 0 {
			return fmt.Errorf("rank %s has collective regions but zero collective cycles", j.Name)
		}
	}
	return nil
}

// checkTopoGemmNumerics builds the data-parallel rank graph of an N×N GEMM
// and checks its lockstep numerics: each rank gets its own seeded inputs,
// the output all_reduce sums across ranks, so every rank's result must
// match the elementwise sum of the per-rank single-graph outputs.
func checkTopoGemmNumerics(c topoCase, parts int) (*graph.Graph, error) {
	g := exp.GEMMGraph(c.GemmN)
	rg := parallel.DataParallel(g, parts)
	r := tensor.NewRNG(c.Seed)
	envs := make([]*graph.Env, parts)
	var want *tensor.Tensor
	for rank := 0; rank < parts; rank++ {
		env := graph.NewEnv()
		env.Set("x", tensor.RandNormal(r, 0, 1, c.GemmN, c.GemmN))
		env.Set("w", tensor.RandNormal(r, 0, 0.5, c.GemmN, c.GemmN))
		envs[rank] = env
		vals, err := graph.Execute(g, env)
		if err != nil {
			return nil, fmt.Errorf("funcsim reference rank %d: %w", rank, err)
		}
		out := vals[g.Outputs[0]]
		if want == nil {
			cp := tensor.New(out.Shape...)
			copy(cp.Data, out.Data)
			want = cp
		} else {
			for i := range want.Data {
				want.Data[i] += out.Data[i]
			}
		}
	}
	replicas := make([]*graph.Graph, parts)
	for i := range replicas {
		replicas[i] = rg
	}
	shards, err := graph.ExecuteSharded(replicas, envs)
	if err != nil {
		return nil, fmt.Errorf("sharded execution: %w", err)
	}
	for rank := 0; rank < parts; rank++ {
		got := shards[rank][rg.Outputs[0]]
		if !tensor.AllClose(got, want, FuncTolerance, FuncTolerance) {
			return nil, fmt.Errorf("data-parallel rank %d diverges from summed funcsim reference (max |Δ| %g)",
				rank, tensor.MaxAbsDiff(got, want))
		}
	}
	return rg, nil
}

// checkTopoDecoderNumerics builds the Megatron tensor-parallel shard of a
// decoder and checks every rank's lockstep output against the single-graph
// funcsim reference within float32 tolerance (sum order differs: the
// reference sums heads sequentially, TP sums rank partials).
func checkTopoDecoderNumerics(cfg nn.DecoderConfig, parts int, seed uint64) (*graph.Graph, error) {
	ref := nn.Decoder(cfg)
	env := ref.InitParams(seed)
	r := tensor.NewRNG(seed + 1)
	env.Set("x", tensor.RandNormal(r, 0, 1, ref.InputShape...))
	if !cfg.Prefill {
		kvLen := cfg.KVLen
		if kvLen <= 0 {
			kvLen = cfg.Ctx
		}
		dHead := cfg.Hidden / cfg.Heads
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				env.Set(fmt.Sprintf("l%d_h%d_kcache", l, h), tensor.RandNormal(r, 0, 1, kvLen, dHead))
				env.Set(fmt.Sprintf("l%d_h%d_vcache", l, h), tensor.RandNormal(r, 0, 1, kvLen, dHead))
			}
		}
	}
	refVals, err := graph.Execute(ref.Graph, env)
	if err != nil {
		return nil, fmt.Errorf("funcsim reference: %w", err)
	}
	want := refVals[ref.OutputID]

	tp := nn.DecoderTP(cfg, parts)
	replicas := make([]*graph.Graph, parts)
	for i := range replicas {
		replicas[i] = tp.Graph
	}
	vals, err := graph.ExecuteSharded(replicas, nn.ShardDecoderEnv(cfg, env, parts))
	if err != nil {
		return nil, fmt.Errorf("sharded execution: %w", err)
	}
	for rank := 0; rank < parts; rank++ {
		got := vals[rank][tp.OutputID]
		if !tensor.AllClose(got, want, FuncTolerance, FuncTolerance) {
			return nil, fmt.Errorf("tensor-parallel rank %d/%d diverges from funcsim reference (max |Δ| %g)",
				rank, parts, tensor.MaxAbsDiff(got, want))
		}
	}
	return tp.Graph, nil
}

// runTopoEngine places the compiled rank graph across the topology and
// runs it on a fresh fabric in the selected engine mode.
func runTopoEngine(tc topo.Config, name string, art *compiler.Compiled, workers int, strict bool) (togsim.Result, *topo.Fabric, error) {
	jobs, err := parallel.PlaceJobs(name, art, tc)
	if err != nil {
		return togsim.Result{}, nil, err
	}
	cfg := npu.SmallConfig()
	cfg.Cores = tc.TotalCores()
	fab := topo.NewFabric(tc)
	eng := togsim.NewEngine(cfg, fab)
	eng.Workers = workers
	eng.StrictTick = strict
	res, err := eng.Run(jobs)
	if err != nil {
		return togsim.Result{}, nil, err
	}
	return res, fab, nil
}
