package crosscheck

import (
	"fmt"
	"reflect"

	"repro/internal/compiler"
	"repro/internal/npu"
	"repro/internal/obs/report"
	"repro/internal/serve"
	"repro/internal/service/modelzoo"
	"repro/internal/togsim"
)

// CheckServe is the serve-determinism oracle: a seeded serving scenario
// (Poisson arrivals, continuous batching, prefill + decode iterations)
// must produce a bit-identical report when replayed — once more with the
// same seed, and once with the TLS engine stepping cores on 4 host
// goroutines. Each run gets a fresh compile cache, so cache-hit accounting
// is part of the comparison: the prefill-per-shape / decode-replay
// behaviour must reproduce too.
func CheckServe(seed int64) error {
	base, err := runServeScenario(seed, 0)
	if err != nil {
		return fmt.Errorf("serve scenario failed: %w", err)
	}
	again, err := runServeScenario(seed, 0)
	if err != nil {
		return fmt.Errorf("serve replay failed: %w", err)
	}
	if !reflect.DeepEqual(base, again) {
		return fmt.Errorf("serve-determinism: same seed %d, different reports:\nfirst:  %+v\nsecond: %+v", seed, base, again)
	}
	par, err := runServeScenario(seed, 4)
	if err != nil {
		return fmt.Errorf("serve parallel run failed: %w", err)
	}
	if !reflect.DeepEqual(base, par) {
		return fmt.Errorf("serve-determinism: serial vs engine-workers=4 reports differ:\nserial:   %+v\nparallel: %+v", base, par)
	}
	return nil
}

// runServeScenario replays the standing serving scenario with a fresh
// compiler and memoized compile results (the cache-hit semantics of the
// service's content-addressed cache, minus persistence).
func runServeScenario(seed int64, engineWorkers int) (report.ServeReport, error) {
	cfg := npu.SmallConfig()
	comp := compiler.New(cfg, compiler.DefaultOptions())
	memo := map[string]*compiler.Compiled{}
	compile := func(spec modelzoo.Spec) (*compiler.Compiled, bool, error) {
		key := fmt.Sprintf("%+v", spec.Normalize())
		if c, ok := memo[key]; ok {
			return c, true, nil
		}
		g, err := modelzoo.BuildGraph(spec)
		if err != nil {
			return nil, false, err
		}
		c, err := comp.Compile(g)
		if err != nil {
			return nil, false, err
		}
		memo[key] = c
		return c, false, nil
	}
	sc := serve.Config{
		Model:         "decoder-tiny",
		NPU:           cfg,
		Net:           togsim.SimpleNet,
		MaxBatch:      2,
		KVBlock:       16,
		EngineWorkers: engineWorkers,
		Compile:       compile,
	}
	reqs := serve.PoissonTrace(seed, 3, 2e5, cfg.FreqMHz, 4, 4)
	return serve.Run(sc, reqs)
}
