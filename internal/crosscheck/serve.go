package crosscheck

import (
	"fmt"
	"reflect"

	"repro/internal/compiler"
	"repro/internal/npu"
	"repro/internal/obs/report"
	"repro/internal/serve"
	"repro/internal/service/modelzoo"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// CheckServe is the serve-determinism oracle: each seeded serving scenario
// (Poisson arrivals, continuous batching, prefill + decode iterations)
// must produce a bit-identical report when replayed — once more with the
// same seed, and once with the TLS engine stepping cores on 4 host
// goroutines. Each run gets a fresh compile cache, so cache-hit accounting
// is part of the comparison: the prefill-per-shape / decode-replay
// behaviour must reproduce too. Two scenarios run: the single-package
// baseline with fixed prompts, and a pkg2 tensor-parallel scenario with
// per-request context lengths drawn from a seeded uniform distribution
// (collective timing and ctx-dist draws join the determinism contract).
func CheckServe(seed int64) error {
	for _, sc := range []struct {
		name string
		topo bool
	}{
		{"baseline", false},
		{"pkg2-tensor+ctx-dist", true},
	} {
		base, err := runServeScenario(seed, 0, sc.topo)
		if err != nil {
			return fmt.Errorf("serve scenario %s failed: %w", sc.name, err)
		}
		again, err := runServeScenario(seed, 0, sc.topo)
		if err != nil {
			return fmt.Errorf("serve replay %s failed: %w", sc.name, err)
		}
		if !reflect.DeepEqual(base, again) {
			return fmt.Errorf("serve-determinism (%s): same seed %d, different reports:\nfirst:  %+v\nsecond: %+v",
				sc.name, seed, base, again)
		}
		par, err := runServeScenario(seed, 4, sc.topo)
		if err != nil {
			return fmt.Errorf("serve parallel run %s failed: %w", sc.name, err)
		}
		if !reflect.DeepEqual(base, par) {
			return fmt.Errorf("serve-determinism (%s): serial vs engine-workers=4 reports differ:\nserial:   %+v\nparallel: %+v",
				sc.name, base, par)
		}
	}
	return nil
}

// runServeScenario replays a standing serving scenario with a fresh
// compiler and memoized compile results (the cache-hit semantics of the
// service's content-addressed cache, minus persistence). With topoVariant
// the decoder serves tensor-parallel over two packages and prompt lengths
// come from a seeded uniform distribution.
func runServeScenario(seed int64, engineWorkers int, topoVariant bool) (report.ServeReport, error) {
	cfg := npu.SmallConfig()
	comp := compiler.New(cfg, compiler.DefaultOptions())
	memo := map[string]*compiler.Compiled{}
	compile := func(spec modelzoo.Spec) (*compiler.Compiled, bool, error) {
		key := fmt.Sprintf("%+v", spec.Normalize())
		if c, ok := memo[key]; ok {
			return c, true, nil
		}
		g, err := modelzoo.BuildFor(spec, cfg.Mem)
		if err != nil {
			return nil, false, err
		}
		c, err := comp.Compile(g)
		if err != nil {
			return nil, false, err
		}
		memo[key] = c
		return c, false, nil
	}
	sc := serve.Config{
		Model:         "decoder-tiny",
		NPU:           cfg,
		Net:           togsim.SimpleNet,
		MaxBatch:      2,
		KVBlock:       16,
		EngineWorkers: engineWorkers,
		Compile:       compile,
	}
	reqs := serve.PoissonTrace(seed, 3, 2e5, cfg.FreqMHz, 4, 4)
	if topoVariant {
		tc, err := topo.Preset("pkg2", cfg.Mem)
		if err != nil {
			return report.ServeReport{}, err
		}
		sc.Topo, sc.Parallel = tc, "tensor"
		dist, err := serve.ParseCtxDist("uniform:3,8")
		if err != nil {
			return report.ServeReport{}, err
		}
		serve.ApplyCtxDist(reqs, dist, seed)
	}
	return serve.Run(sc, reqs)
}
