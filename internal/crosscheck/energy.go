package crosscheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"

	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/npu"
	"repro/internal/obs/report"
	"repro/internal/togsim"
)

// runWithTotals executes the case's jobs on a fresh standard stack in the
// requested engine mode and rolls the run up into activity totals (the
// int64 counters energy derivation is allowed to use).
func (cs Case) runWithTotals(comp *compiler.Compiled, strict bool, workers int) (togsim.Result, report.ActivityTotals, error) {
	s := togsim.NewStandard(cs.NPU, cs.netKind(), dram.FRFCFS)
	s.Engine.StrictTick = strict
	s.Engine.Workers = workers
	res, err := s.Engine.Run(cs.buildJobs(comp))
	if err != nil {
		return res, report.ActivityTotals{}, err
	}
	return res, report.Totals(res, s.MemStats(), s.NetFlits(), 0), nil
}

// checkEnergy enforces the energy-accounting contract end to end: the
// activity counters are bit-identical across the event-driven, strict-tick,
// and parallel engines (so the floats derived from them are too); the
// per-unit energy breakdown sums exactly — bitwise, not within a tolerance
// — to the reported total; and deriving the energy report reads the Result
// without mutating it.
func (ck *Checker) checkEnergy(cs Case, art *artifacts) error {
	cfg := cs.NPU
	if cfg.Energy.IsZero() {
		// Energy derivation is post-hoc, so pricing a table the case did not
		// carry cannot change any simulation result.
		cfg.Energy = npu.DefaultEnergyTable()
	}

	_, event, err := cs.runWithTotals(art.comp, false, 0)
	if err != nil {
		return fmt.Errorf("event run: %v", err)
	}
	_, strict, err := cs.runWithTotals(art.comp, true, 0)
	if err != nil {
		return fmt.Errorf("strict run: %v", err)
	}
	workers := cs.Workers
	if workers < 2 {
		workers = 2
	}
	_, par, err := cs.runWithTotals(art.comp, false, workers)
	if err != nil {
		return fmt.Errorf("parallel run (workers=%d): %v", workers, err)
	}
	if event != strict {
		return fmt.Errorf("activity counters diverge: event %+v != strict %+v", event, strict)
	}
	if event != par {
		return fmt.Errorf("activity counters diverge: event %+v != parallel (workers=%d) %+v", par, workers, event)
	}
	if event.SAMacCycles+event.VectorCycles+event.SparseCycles == 0 {
		return fmt.Errorf("no compute activity counted: %+v", event)
	}

	e := report.BuildEnergy(cfg, event)
	if e == nil {
		return fmt.Errorf("BuildEnergy returned nil for a non-zero table")
	}
	var sum float64
	for _, u := range e.UnitMilliJ() {
		sum += u.MJ
	}
	// Exact float equality is intended: TotalMilliJ is defined as the sum of
	// the unit fields in declaration order, the same expression as above.
	if sum != e.TotalMilliJ {
		return fmt.Errorf("per-unit breakdown sums to %v mJ, total reports %v mJ", sum, e.TotalMilliJ)
	}
	if e.TotalMilliJ <= 0 {
		return fmt.Errorf("non-positive total energy %v mJ for active run %+v", e.TotalMilliJ, event)
	}
	for _, totals := range []report.ActivityTotals{strict, par} {
		if other := report.BuildEnergy(cfg, totals); !reflect.DeepEqual(e, other) {
			return fmt.Errorf("derived energy diverges across engines: %+v != %+v", e, other)
		}
	}

	// Building the full report (the surface every CLI renders) must leave
	// the engine Result byte-identical — energy accounting is read-only.
	before, err := json.Marshal(art.tls)
	if err != nil {
		return err
	}
	_ = report.Build(cfg, report.Inputs{Res: art.tls})
	after, err := json.Marshal(art.tls)
	if err != nil {
		return err
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("report.Build mutated the engine Result")
	}
	return nil
}
