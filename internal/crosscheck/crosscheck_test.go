package crosscheck

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestGenerateDeterministic: the (seed, index) -> Case mapping is pure, and
// neighbouring indices yield distinct cases.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Generate(7, i), Generate(7, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(7, %d) is not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
	if reflect.DeepEqual(Generate(7, 0), Generate(7, 1)) {
		t.Fatalf("neighbouring indices generated identical cases")
	}
	if reflect.DeepEqual(Generate(7, 0), Generate(8, 0)) {
		t.Fatalf("different stream seeds generated identical cases")
	}
}

// TestWorkloadBuildAllKinds: every workload family builds a valid graph,
// and unknown kinds are rejected.
func TestWorkloadBuildAllKinds(t *testing.T) {
	specs := []WorkloadSpec{
		{Kind: "gemm", M: 3, K: 5, N: 4},
		{Kind: "gemm-epi", M: 3, K: 5, N: 4, Epilogue: "bias"},
		{Kind: "gemm-epi", M: 3, K: 5, N: 4, Epilogue: "relu"},
		{Kind: "gemm-epi", M: 3, K: 5, N: 4, Epilogue: "bias-relu"},
		{Kind: "gemm-epi", M: 3, K: 5, N: 4, Epilogue: "gelu"},
		{Kind: "chain", M: 3, K: 5, Depth: 3},
		{Kind: "mlp", Batch: 2, In: 5, Hidden: 6, Classes: 3},
		{Kind: "softmax", M: 3, K: 5, N: 4},
		{Kind: "layernorm", M: 3, K: 5, N: 4},
	}
	for _, w := range specs {
		g, err := w.Build()
		if err != nil {
			t.Fatalf("%+v: Build: %v", w, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: built an invalid graph: %v", w, err)
		}
		if len(g.Outputs) == 0 {
			t.Fatalf("%+v: graph has no outputs", w)
		}
	}
	if _, err := (WorkloadSpec{Kind: "nope"}).Build(); err == nil {
		t.Fatalf("unknown workload kind built without error")
	}
}

// TestEnvDeterministic: the same case binds byte-identical leaf tensors.
func TestEnvDeterministic(t *testing.T) {
	cs := Generate(1, 0)
	g, err := cs.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs.Env(g), cs.Env(g)) {
		t.Fatalf("Env is not deterministic for %s", cs.String())
	}
}

// TestGeneratedCasesAgree is the harness self-check: a prefix of the
// standing gate's stream must pass every oracle.
func TestGeneratedCasesAgree(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	ck := &Checker{}
	fail, stats := ck.Run(1, n)
	if fail != nil {
		t.Fatalf("divergence: %v", fail)
	}
	if stats.Cases != n {
		t.Fatalf("checked %d cases, want %d", stats.Cases, n)
	}
	if len(stats.Kinds) < 2 {
		t.Fatalf("generator produced only kinds %v in %d cases", stats.Kinds, n)
	}
}

// TestGeneratedConfigsValid: every generated machine passes the core-shape
// validation the compiler enforces.
func TestGeneratedConfigsValid(t *testing.T) {
	for i := 0; i < 100; i++ {
		cs := Generate(3, i)
		if err := cs.NPU.Core.Validate(); err != nil {
			t.Fatalf("case %d generated an untargetable machine: %v", i, err)
		}
	}
}

// faultFailure produces the canonical fault-injection divergence used by the
// shrink and repro tests.
func faultFailure(t *testing.T) (*Checker, Failure) {
	t.Helper()
	ck := &Checker{Fault: PerturbTileLatency(1)}
	fail, _ := ck.Run(1, 5)
	if fail == nil {
		t.Fatalf("+1 cycle fault escaped all oracles")
	}
	if fail.Oracle != "ils-tls" {
		t.Fatalf("fault caught by oracle %q, want ils-tls (%s)", fail.Oracle, fail.Detail)
	}
	return ck, *fail
}

// TestFaultDetectedAndShrunk: the deliberate ±1-cycle perturbation is caught
// by the cycle-agreement oracle and greedily minimized.
func TestFaultDetectedAndShrunk(t *testing.T) {
	ck, fail := faultFailure(t)
	shrunk := ck.Shrink(fail)
	if shrunk.Oracle != fail.Oracle {
		t.Fatalf("shrinking changed the oracle: %q -> %q", fail.Oracle, shrunk.Oracle)
	}
	if size(shrunk.Case) > size(fail.Case) {
		t.Fatalf("shrinking grew the case: %d -> %d", size(fail.Case), size(shrunk.Case))
	}
	if got := ck.RunCase(shrunk.Case); got == nil || got.Oracle != fail.Oracle {
		t.Fatalf("shrunk case no longer fails the same oracle: %v", got)
	}
	// A negative perturbation must be caught just as well.
	neg := &Checker{Fault: PerturbTileLatency(-1)}
	if fail := neg.RunCase(Generate(1, 0)); fail == nil || fail.Oracle != "ils-tls" {
		t.Fatalf("-1 cycle fault not caught by ils-tls: %v", fail)
	}
}

// TestShrinkBudget: a one-step budget performs at most one reduction.
func TestShrinkBudget(t *testing.T) {
	ck, fail := faultFailure(t)
	ck.MaxShrinkSteps = 1
	shrunk := ck.Shrink(fail)
	// One accepted step means the result is exactly one candidate away.
	found := false
	for _, cand := range candidates(fail.Case) {
		if reflect.DeepEqual(cand, shrunk.Case) {
			found = true
			break
		}
	}
	if !found && !reflect.DeepEqual(fail.Case, shrunk.Case) {
		t.Fatalf("budget=1 shrink produced a case more than one step away")
	}
}

// TestCandidatesStrictlySmaller: every proposed reduction strictly lowers
// the size metric, so greedy shrinking terminates.
func TestCandidatesStrictlySmaller(t *testing.T) {
	for i := 0; i < 50; i++ {
		cs := Generate(11, i)
		for _, cand := range candidates(cs) {
			if size(cand) >= size(cs) {
				t.Fatalf("case %d: candidate did not shrink: %d -> %d\n%+v\n%+v",
					i, size(cs), size(cand), cs, cand)
			}
		}
	}
}

// TestReproRoundTrip: a shrunk failure serializes, reloads bit-identically,
// and replays to the same divergence on a fresh checker.
func TestReproRoundTrip(t *testing.T) {
	ck, fail := faultFailure(t)
	shrunk := ck.Shrink(fail)
	path := filepath.Join(t.TempDir(), "repro.json")
	rep := NewRepro(shrunk, true, false)
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, loaded) {
		t.Fatalf("repro round trip changed content:\n%+v\n%+v", rep, loaded)
	}
	// Replay on a fresh checker: the recorded Fault flag re-arms the
	// perturbation, so the divergence must reproduce.
	fresh := &Checker{}
	got := fresh.Replay(loaded)
	if got == nil || got.Oracle != shrunk.Oracle {
		t.Fatalf("replay did not reproduce oracle %q: %v", shrunk.Oracle, got)
	}
}

// TestReplayHealthyCase: a repro of a passing case replays clean.
func TestReplayHealthyCase(t *testing.T) {
	rep := Repro{FormatVersion: ReproVersion, Oracle: "ils-tls", Case: Generate(1, 0)}
	ck := &Checker{}
	if got := ck.Replay(rep); got != nil {
		t.Fatalf("healthy case diverged on replay: %v", got)
	}
}

// TestLoadReproRejects: version mismatches, bad JSON, and missing files are
// loud errors, never a silently different workload.
func TestLoadReproRejects(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format_version": 99, "case": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepro(bad); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepro(bad); err == nil {
		t.Fatalf("malformed JSON not rejected")
	}
	if _, err := LoadRepro(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file not rejected")
	}
}

// TestOracleNames: the oracle set is stable and leads with the §3.8 claim.
func TestOracleNames(t *testing.T) {
	names := OracleNames()
	if len(names) != 8 || names[0] != "ils-tls" {
		t.Fatalf("unexpected oracle set %v", names)
	}
}

// TestCaseString: the one-line form carries the facts a human needs to
// triage a report.
func TestCaseString(t *testing.T) {
	cs := Generate(1, 0)
	s := cs.String()
	if !strings.Contains(s, cs.Workload.Kind) || !strings.Contains(s, "sa=") {
		t.Fatalf("case description %q is missing workload kind or machine shape", s)
	}
}

// TestFailureError: Failure implements error with oracle and detail.
func TestFailureError(t *testing.T) {
	f := &Failure{Case: Generate(1, 0), Oracle: "ils-tls", Detail: "boom"}
	if msg := f.Error(); !strings.Contains(msg, "ils-tls") || !strings.Contains(msg, "boom") {
		t.Fatalf("unhelpful failure message %q", msg)
	}
}
