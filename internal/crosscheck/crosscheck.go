// Package crosscheck is the cross-simulator differential checker: a
// seeded, deterministic random-workload generator feeding a set of oracles
// that hold the simulators against each other — ILS vs TLS cycle agreement
// (the §3.8 determinism claim), funcsim numerics vs the host reference,
// and a family of metamorphic invariants that must be bit-identical
// (event-driven vs strict-tick engine, serial vs parallel compile, cold vs
// warm artifact store, instrumented vs plain runs). On divergence a greedy
// shrinker minimizes the failing case to a small repro serialized as JSON
// and replayable with `ptsimcheck -replay`.
//
// Everything is derived from (seed, index): generating the same case twice
// yields byte-identical workloads, configurations, and input tensors, so a
// divergence found on one machine replays exactly on another.
package crosscheck

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tensor"
)

// WorkloadSpec describes one generated model fragment. It is a closed,
// serializable description (never a raw graph) so cases round-trip through
// the repro JSON and rebuild bit-identically.
type WorkloadSpec struct {
	// Kind selects the fragment family: gemm, gemm-epi, chain, mlp,
	// softmax, layernorm.
	Kind string `json:"kind"`
	// GEMM-family dimensions (gemm, gemm-epi, chain, softmax, layernorm).
	M int `json:"m,omitempty"`
	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
	// Epilogue for gemm-epi: bias, relu, bias-relu, gelu.
	Epilogue string `json:"epilogue,omitempty"`
	// Depth is the number of chained matmuls (chain).
	Depth int `json:"depth,omitempty"`
	// MLP shape (mlp).
	Batch   int `json:"batch,omitempty"`
	In      int `json:"in,omitempty"`
	Hidden  int `json:"hidden,omitempty"`
	Classes int `json:"classes,omitempty"`
}

// Build captures the fragment as a compiler-ready graph. Every fragment is
// convolution-free so the compiled program stays functionally executable
// (convolutions lower to timing-only TOGs; see DESIGN.md).
func (w WorkloadSpec) Build() (*graph.Graph, error) {
	switch w.Kind {
	case "gemm":
		g := graph.New(fmt.Sprintf("xc-gemm-%dx%dx%d", w.M, w.K, w.N))
		x := g.Input("x", w.M, w.K)
		wt := g.Param("w", w.K, w.N)
		mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, wt.ID}, Shape: []int{w.M, w.N}})
		g.Outputs = []int{mm.ID}
		return g, nil
	case "gemm-epi":
		g := graph.New(fmt.Sprintf("xc-gemm-epi-%s-%dx%dx%d", w.Epilogue, w.M, w.K, w.N))
		x := g.Input("x", w.M, w.K)
		wt := g.Param("w", w.K, w.N)
		cur := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, wt.ID}, Shape: []int{w.M, w.N}})
		switch w.Epilogue {
		case "bias", "bias-relu":
			b := g.Param("b", w.N)
			cur = g.Add(&graph.Node{Op: graph.OpBiasAdd, Name: "bias", Inputs: []int{cur.ID, b.ID}, Shape: []int{w.M, w.N}})
		case "relu", "gelu":
		default:
			return nil, fmt.Errorf("crosscheck: unknown epilogue %q", w.Epilogue)
		}
		switch w.Epilogue {
		case "relu", "bias-relu":
			cur = g.Add(&graph.Node{Op: graph.OpReLU, Name: "act", Inputs: []int{cur.ID}, Shape: []int{w.M, w.N}})
		case "gelu":
			cur = g.Add(&graph.Node{Op: graph.OpGELU, Name: "act", Inputs: []int{cur.ID}, Shape: []int{w.M, w.N}})
		}
		g.Outputs = []int{cur.ID}
		return g, nil
	case "chain":
		// Depth matmuls through square KxK weights, ReLU between stages:
		// exercises multi-TOG programs and inter-layer tensor reuse.
		if w.Depth < 1 {
			return nil, fmt.Errorf("crosscheck: chain depth %d", w.Depth)
		}
		g := graph.New(fmt.Sprintf("xc-chain-%d-%dx%d", w.Depth, w.M, w.K))
		cur := g.Input("x", w.M, w.K)
		for i := 0; i < w.Depth; i++ {
			wt := g.Param(fmt.Sprintf("w%d", i), w.K, w.K)
			cur = g.Add(&graph.Node{Op: graph.OpMatMul, Name: fmt.Sprintf("mm%d", i),
				Inputs: []int{cur.ID, wt.ID}, Shape: []int{w.M, w.K}})
			if i < w.Depth-1 {
				cur = g.Add(&graph.Node{Op: graph.OpReLU, Name: fmt.Sprintf("relu%d", i),
					Inputs: []int{cur.ID}, Shape: []int{w.M, w.K}})
			}
		}
		g.Outputs = []int{cur.ID}
		return g, nil
	case "mlp":
		g := graph.New(fmt.Sprintf("xc-mlp-%d-%d-%d-%d", w.Batch, w.In, w.Hidden, w.Classes))
		x := g.Input("x", w.Batch, w.In)
		w1 := g.Param("w1", w.In, w.Hidden)
		b1 := g.Param("b1", w.Hidden)
		w2 := g.Param("w2", w.Hidden, w.Classes)
		b2 := g.Param("b2", w.Classes)
		h := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "fc1", Inputs: []int{x.ID, w1.ID}, Shape: []int{w.Batch, w.Hidden}})
		h = g.Add(&graph.Node{Op: graph.OpBiasAdd, Name: "fc1b", Inputs: []int{h.ID, b1.ID}, Shape: []int{w.Batch, w.Hidden}})
		h = g.Add(&graph.Node{Op: graph.OpReLU, Name: "act1", Inputs: []int{h.ID}, Shape: []int{w.Batch, w.Hidden}})
		o := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "fc2", Inputs: []int{h.ID, w2.ID}, Shape: []int{w.Batch, w.Classes}})
		o = g.Add(&graph.Node{Op: graph.OpBiasAdd, Name: "fc2b", Inputs: []int{o.ID, b2.ID}, Shape: []int{w.Batch, w.Classes}})
		g.Outputs = []int{o.ID}
		return g, nil
	case "softmax":
		g := graph.New(fmt.Sprintf("xc-softmax-%dx%dx%d", w.M, w.K, w.N))
		x := g.Input("x", w.M, w.K)
		wt := g.Param("w", w.K, w.N)
		mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, wt.ID}, Shape: []int{w.M, w.N}})
		sm := g.Add(&graph.Node{Op: graph.OpSoftmax, Name: "sm", Inputs: []int{mm.ID}, Shape: []int{w.M, w.N}})
		g.Outputs = []int{sm.ID}
		return g, nil
	case "layernorm":
		g := graph.New(fmt.Sprintf("xc-ln-%dx%dx%d", w.M, w.K, w.N))
		x := g.Input("x", w.M, w.K)
		wt := g.Param("w", w.K, w.N)
		gam := g.Param("gamma", w.N)
		bet := g.Param("beta", w.N)
		mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, wt.ID}, Shape: []int{w.M, w.N}})
		ln := g.Add(&graph.Node{Op: graph.OpLayerNorm, Name: "ln", Eps: 1e-5,
			Inputs: []int{mm.ID, gam.ID, bet.ID}, Shape: []int{w.M, w.N}})
		g.Outputs = []int{ln.ID}
		return g, nil
	default:
		return nil, fmt.Errorf("crosscheck: unknown workload kind %q", w.Kind)
	}
}

// Case is one fully specified differential-check input: a workload, a
// target NPU, compiler options, and the run shape. Cases serialize to JSON
// (the repro format) and rebuild deterministically.
type Case struct {
	// Seed is the per-case tensor seed (inputs, parameters).
	Seed uint64 `json:"seed"`
	// Index is the case's position in its generation stream (diagnostic).
	Index int `json:"index"`

	Workload WorkloadSpec     `json:"workload"`
	NPU      npu.Config       `json:"npu"`
	Opts     compiler.Options `json:"opts"`

	// Net selects the interconnect model: "sn" or "cn".
	Net string `json:"net"`
	// Workers is the parallel compile width the compile-workers oracle
	// compares against a serial compile (>= 2).
	Workers int `json:"workers"`
	// Jobs is the number of concurrent TLS jobs (1 or 2; 2 places a second
	// copy of the model on core 1 with the given arrival offset).
	Jobs    int   `json:"jobs"`
	Arrival int64 `json:"arrival,omitempty"`
}

// Generate derives case `index` of stream `seed`. The mapping is pure:
// the same (seed, index) always yields the same case.
func Generate(seed uint64, index int) Case {
	// Mix stream seed and index through SplitMix so neighbouring indices
	// produce unrelated cases.
	r := tensor.NewRNG(seed ^ (uint64(index)+1)*0x9e3779b97f4a7c15)
	cs := Case{
		Seed:     r.Uint64(),
		Index:    index,
		Workload: genWorkload(r),
		NPU:      genConfig(r),
		Opts:     genOptions(r),
		Net:      "sn",
		Workers:  2 + r.Intn(6),
		Jobs:     1,
	}
	if r.Intn(4) == 0 {
		cs.Net = "cn"
	}
	if r.Intn(3) == 0 {
		cs.Jobs = 2
		cs.Arrival = int64(r.Intn(20000))
	}
	if cs.Jobs > cs.NPU.Cores {
		cs.NPU.Cores = cs.Jobs
	}
	return cs
}

// dim draws a matrix dimension: usually mid-sized, often tiny so the
// single-tile and partial-tile edge cases stay hot.
func dim(r *tensor.RNG) int {
	if r.Intn(3) == 0 {
		return 1 + r.Intn(8)
	}
	return 1 + r.Intn(96)
}

func genWorkload(r *tensor.RNG) WorkloadSpec {
	switch r.Intn(6) {
	case 0:
		return WorkloadSpec{Kind: "gemm", M: dim(r), K: dim(r), N: dim(r)}
	case 1:
		epis := []string{"bias", "relu", "bias-relu", "gelu"}
		return WorkloadSpec{Kind: "gemm-epi", M: dim(r), K: dim(r), N: dim(r), Epilogue: epis[r.Intn(len(epis))]}
	case 2:
		return WorkloadSpec{Kind: "chain", M: dim(r), K: 1 + r.Intn(64), Depth: 2 + r.Intn(3)}
	case 3:
		return WorkloadSpec{Kind: "mlp", Batch: 1 + r.Intn(16), In: 1 + r.Intn(64),
			Hidden: 1 + r.Intn(64), Classes: 1 + r.Intn(32)}
	case 4:
		return WorkloadSpec{Kind: "softmax", M: dim(r), K: 1 + r.Intn(64), N: 2 + r.Intn(64)}
	default:
		return WorkloadSpec{Kind: "layernorm", M: dim(r), K: 1 + r.Intn(64), N: 2 + r.Intn(64)}
	}
}

// genConfig perturbs the small test machine: every draw keeps the machine
// valid (scratchpad large enough for the generated shapes, NoC flit ==
// DRAM burst) while sweeping the dimensions that historically shift
// timing — SA geometry, vector width, scratchpad, channel count, and the
// unit/memory latencies.
func genConfig(r *tensor.RNG) npu.Config {
	cfg := npu.SmallConfig()
	sa := []int{4, 8, 16}[r.Intn(3)]
	cfg.Core.SARows, cfg.Core.SACols = sa, sa
	cfg.Core.NumSAs = 1 + r.Intn(2)
	cfg.Core.NumVectorUnits = []int{2, 4, 8}[r.Intn(3)]
	cfg.Core.LanesPerUnit = []int{2, 4, 8}[r.Intn(3)]
	// Keep the machine targetable: GEMM kernels stage one SA row per vector
	// load, so VLEN must cover the array (npu.CoreConfig.Validate).
	for cfg.Core.VLEN() < sa {
		cfg.Core.LanesPerUnit *= 2
	}
	cfg.Core.SpadBytes = []int{64 << 10, 128 << 10, 256 << 10}[r.Intn(3)]
	cfg.Core.DesFIFORows = []int{32, 64, 128}[r.Intn(3)]
	cfg.Core.VectorLatency = 1 + r.Intn(4)
	cfg.Core.SFULatency = 4 + r.Intn(8)
	cfg.Core.MemLatency = 1 + r.Intn(4)
	cfg.Core.FloatLatency = 2 + r.Intn(4)
	cfg.Mem.Channels = []int{1, 2, 4}[r.Intn(3)]
	cfg.Mem.BanksPerChan = []int{2, 4, 8}[r.Intn(3)]
	cfg.Mem.RowBytes = []int{256, 512, 1024}[r.Intn(3)]
	cfg.Mem.TCL = 4 + r.Intn(8)
	cfg.Mem.TRCD = 4 + r.Intn(8)
	cfg.Mem.TRP = 4 + r.Intn(8)
	cfg.NoC.LatencyCycle = 1 + r.Intn(8)
	return cfg
}

func genOptions(r *tensor.RNG) compiler.Options {
	opts := compiler.DefaultOptions()
	opts.Fusion = r.Intn(4) != 0
	opts.DMA = []compiler.DMAMode{compiler.DMASelective, compiler.DMACoarse, compiler.DMAFine}[r.Intn(3)]
	opts.MaxMt = []int{0, 32, 64, 128}[r.Intn(4)]
	if r.Intn(4) == 0 {
		opts.FineThresholdBytes = 4096
	}
	return opts
}

// Env builds the seeded input/parameter binding for the case's graph: every
// leaf tensor gets unit-normal values from the case seed, so a replayed
// case sees byte-identical data.
func (cs Case) Env(g *graph.Graph) *graph.Env {
	r := tensor.NewRNG(cs.Seed)
	env := graph.NewEnv()
	for _, n := range g.Nodes {
		switch n.Op {
		case graph.OpInput, graph.OpParam:
			env.Set(n.Name, tensor.RandNormal(r, 0, 1, n.Shape...))
		}
	}
	return env
}

// String is a compact one-line description for logs.
func (cs Case) String() string {
	w := cs.Workload
	shape := ""
	switch w.Kind {
	case "mlp":
		shape = fmt.Sprintf("%d/%d/%d/%d", w.Batch, w.In, w.Hidden, w.Classes)
	case "chain":
		shape = fmt.Sprintf("%dx%d depth=%d", w.M, w.K, w.Depth)
	default:
		shape = fmt.Sprintf("%dx%dx%d", w.M, w.K, w.N)
	}
	return fmt.Sprintf("case %d [%s %s] sa=%dx%d vec=%dx%d spad=%dK ch=%d net=%s jobs=%d opts{fusion=%v dma=%s mt=%d}",
		cs.Index, w.Kind, shape, cs.NPU.Core.SARows, cs.NPU.Core.SACols,
		cs.NPU.Core.NumVectorUnits, cs.NPU.Core.LanesPerUnit, cs.NPU.Core.SpadBytes>>10,
		cs.NPU.Mem.Channels, cs.Net, cs.Jobs, cs.Opts.Fusion, cs.Opts.DMA, cs.Opts.MaxMt)
}
