package crosscheck

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"

	"repro/internal/fleet"
	"repro/internal/service"
)

// CheckFleet is the fleet-determinism oracle: a seeded batch of mixed jobs
// — gemm/mlp shapes, a seeded decoder serving scenario, a multi-package
// tensor-parallel topology job, spread over tenants and priorities — runs
// once through a single in-process service and once through a 3-member
// local fleet (consistent-hash routing, peer cache tiers, weighted-fair
// dispatch). Every JobResult must be bit-identical after canonicalization
// (host-time fields zeroed): where a job ran must never change what it
// computed.
//
// With faultFleet set, the coordinator's ResultFault hook corrupts exactly
// one member response (+1 cycle) and the check SUCCEEDS only if the
// comparison catches it — the proof the oracle has teeth.
func CheckFleet(seed int64, faultFleet bool) error {
	specs := fleetSpecs(seed)

	single := service.New(service.Config{Workers: 2})
	single.Start()
	defer single.Close()
	want := make([]service.JobResult, len(specs))
	for i, spec := range specs {
		j, err := single.Submit(spec)
		if err != nil {
			return fmt.Errorf("fleet oracle: single-node submit %d: %w", i, err)
		}
		fin, err := single.Wait(j.ID)
		if err != nil {
			return fmt.Errorf("fleet oracle: single-node wait %d: %w", i, err)
		}
		if fin.State != service.StateDone {
			return fmt.Errorf("fleet oracle: single-node job %d failed: %s", i, fin.Error)
		}
		want[i] = fin.Result.Canonical()
	}

	var fault func(member string, res *service.JobResult)
	if faultFleet {
		var once sync.Once
		fault = func(member string, res *service.JobResult) {
			// Corrupt exactly one member response by the smallest possible
			// drift; the per-job comparison below must catch it.
			once.Do(func() { res.Cycles++ })
		}
	}
	fl, err := fleet.StartLocal(fleet.LocalOptions{N: 3, Workers: 1, ResultFault: fault})
	if err != nil {
		return fmt.Errorf("fleet oracle: start local fleet: %w", err)
	}
	defer fl.Close()

	ids := make([]string, len(specs))
	for i, spec := range specs {
		j, err := fl.Coord.Submit(spec)
		if err != nil {
			return fmt.Errorf("fleet oracle: fleet submit %d: %w", i, err)
		}
		ids[i] = j.ID
	}
	divergences := 0
	var firstDiff string
	for i, id := range ids {
		fin, err := fl.Coord.Wait(id)
		if err != nil {
			return fmt.Errorf("fleet oracle: fleet wait %d: %w", i, err)
		}
		if fin.State != service.StateDone {
			return fmt.Errorf("fleet oracle: fleet job %d failed on member %s: %s", i, fin.Member, fin.Error)
		}
		if got := fin.Result.Canonical(); !reflect.DeepEqual(got, want[i]) {
			divergences++
			if firstDiff == "" {
				firstDiff = fmt.Sprintf("job %d (key %s, member %s, attempts %d):\nfleet:  %+v\nsingle: %+v",
					i, fin.Key, fin.Member, fin.Attempts, got, want[i])
			}
		}
	}
	if st := fl.Coord.Stats(); st.DuplicateCompletions != 0 {
		return fmt.Errorf("fleet oracle: %d duplicate completions", st.DuplicateCompletions)
	}

	if faultFleet {
		if divergences == 0 {
			return fmt.Errorf("fleet oracle: injected result fault escaped — %d jobs compared equal; the comparison has no teeth", len(specs))
		}
		return nil // self-test passed: the corrupt response was caught
	}
	if divergences > 0 {
		return fmt.Errorf("fleet-determinism: %d of %d jobs differ between 1-node and 3-node runs; first:\n%s",
			divergences, len(specs), firstDiff)
	}
	return nil
}

// fleetSpecs generates the oracle's seeded mixed batch: every job class the
// service supports, across three tenants and two priorities.
func fleetSpecs(seed int64) []service.JobSpec {
	rng := rand.New(rand.NewSource(seed))
	tenants := []string{"alpha", "beta", "gamma"}
	specs := make([]service.JobSpec, 0, 9)
	for i := 0; i < 5; i++ {
		specs = append(specs, service.JobSpec{
			Model: "gemm", N: 24 + 8*rng.Intn(6), NPU: "small",
			Tenant: tenants[rng.Intn(len(tenants))], Priority: rng.Intn(2),
		})
	}
	specs = append(specs, service.JobSpec{
		Model: "mlp", Batch: 1 + rng.Intn(2), NPU: "small",
		Tenant: tenants[rng.Intn(len(tenants))],
	})
	// A seeded continuous-batching decoder scenario: the serve scheduler,
	// KV cache, and per-step compile caching all join the contract.
	specs = append(specs, service.JobSpec{
		Model: "decoder-tiny", NPU: "small", Tenant: "beta",
		Serve: &service.ServeSpec{Requests: 2, Prompt: 4, Output: 4,
			MaxBatch: 2, KVBlock: 16, Seed: 1 + rng.Int63n(64)},
	})
	// A multi-package tensor-parallel decode job: collective timing on the
	// pkg2 fabric joins the contract.
	specs = append(specs, service.JobSpec{
		Model: "decoder-tiny", Ctx: 8, NPU: "small", Topology: "pkg2", Parallel: "tensor",
		Tenant: "gamma", Priority: 1,
	})
	return specs
}
