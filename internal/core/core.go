// Package core is the top-level PyTorchSim-reproduction framework facade:
// it ties the model zoo, the compiler backend, and the simulators together
// behind the workflow of Fig. 1 — capture a graph, compile it to kernels
// and TOGs, then simulate with TLS (fast, cycle-accurate shared resources),
// ILS (instruction-level), or functionally (output validation / training).
//
// Typical use:
//
//	sim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
//	comp, _ := sim.Compile(model.Graph)
//	rep, _ := sim.SimulateTLS(comp, core.SimpleNet)
//	fmt.Println(rep.Cycles, rep.Time())
package core

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/togsim"
)

// NetKind re-exports the interconnect model selector (§4.1: SN vs CN).
type NetKind = togsim.NetKind

// Interconnect models.
const (
	SimpleNet = togsim.SimpleNet
	CycleNet  = togsim.CycleNet
)

// Simulator bundles a target NPU configuration with a compiler whose kernel
// latency cache persists across compilations (the TOG cache of §3.10).
type Simulator struct {
	Cfg      npu.Config
	Compiler *compiler.Compiler

	// MaxCycles bounds every timing simulation this simulator runs — the
	// deadlock guard, configurable per run instead of only the package
	// constant (0 = togsim.DefaultMaxCycles).
	MaxCycles int64

	// Probe, when non-nil, is attached to every TLS stack this simulator
	// builds (engine spans plus fabric/NoC/DRAM counters). It never changes
	// simulation results.
	Probe obs.Probe
}

// NewSimulator returns a simulator for the given NPU and compiler options.
func NewSimulator(cfg npu.Config, opts compiler.Options) *Simulator {
	return &Simulator{Cfg: cfg, Compiler: compiler.New(cfg, opts)}
}

// Compile lowers a captured graph to kernels and TOGs.
func (s *Simulator) Compile(g *graph.Graph) (*compiler.Compiled, error) {
	return s.Compiler.Compile(g)
}

// Report summarizes a timing simulation.
type Report struct {
	Cycles    int64
	FreqMHz   int
	Jobs      []togsim.JobResult
	Cores     []togsim.CoreStats
	MemStats  *dram.Stats
	WallClock time.Duration
}

// Time converts simulated cycles to simulated wall time at the core clock.
func (r Report) Time() time.Duration {
	return time.Duration(float64(r.Cycles) / float64(r.FreqMHz) * 1e3 * float64(time.Nanosecond))
}

// String renders a short human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf("%d cycles (%.3f ms simulated @ %d MHz, %v host)",
		r.Cycles, float64(r.Cycles)/float64(r.FreqMHz)/1e3, r.FreqMHz, r.WallClock.Round(time.Millisecond))
}

// SimulateTLS runs the compiled model in Tile-Level Simulation mode on one
// core with the selected interconnect model.
func (s *Simulator) SimulateTLS(comp *compiler.Compiled, kind NetKind) (Report, error) {
	return s.SimulateJobs([]*togsim.Job{comp.Job(comp.Name, 0, 0)}, kind)
}

// SimulateJobs runs an arbitrary multi-core, multi-tenant job set (§5.2).
func (s *Simulator) SimulateJobs(jobs []*togsim.Job, kind NetKind) (Report, error) {
	setup := togsim.NewStandard(s.Cfg, kind, dram.FRFCFS)
	setup.Engine.MaxCycles = s.MaxCycles
	if s.Probe != nil {
		setup.AttachProbe(s.Probe)
	}
	start := time.Now()
	res, err := setup.Engine.Run(jobs)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Cycles:    res.Cycles,
		FreqMHz:   s.Cfg.FreqMHz,
		Jobs:      res.Jobs,
		Cores:     res.Cores,
		MemStats:  &setup.Mem.Stats,
		WallClock: time.Since(start),
	}, nil
}

// AutoTune compiles the graph under each candidate option set, simulates
// each in TLS, and returns the fastest (options, compilation, report).
// A nil candidates slice sweeps compiler.TileCandidates(). Each candidate
// compiles with its own kernel-latency cache, so the sweep costs one
// compile + one TLS run per candidate — cheap enough that the paper's
// "compile once, reuse the TOG cache" story still holds for the winner.
func (s *Simulator) AutoTune(g *graph.Graph, candidates []compiler.Options, kind NetKind) (compiler.Options, *compiler.Compiled, Report, error) {
	if candidates == nil {
		candidates = compiler.TileCandidates()
	}
	if len(candidates) == 0 {
		return compiler.Options{}, nil, Report{}, fmt.Errorf("core: no autotune candidates")
	}
	var (
		bestOpts compiler.Options
		bestComp *compiler.Compiled
		bestRep  Report
	)
	for _, opts := range candidates {
		c := compiler.New(s.Cfg, opts)
		comp, err := c.Compile(g)
		if err != nil {
			// A candidate that does not fit (e.g. tile exceeds scratchpad)
			// is skipped, not fatal.
			continue
		}
		setup := togsim.NewStandard(s.Cfg, kind, dram.FRFCFS)
		setup.Engine.MaxCycles = s.MaxCycles
		start := time.Now()
		res, err := setup.Engine.Run([]*togsim.Job{comp.Job(comp.Name, 0, 0)})
		if err != nil {
			continue
		}
		rep := Report{Cycles: res.Cycles, FreqMHz: s.Cfg.FreqMHz, Jobs: res.Jobs,
			Cores: res.Cores, MemStats: &setup.Mem.Stats, WallClock: time.Since(start)}
		if bestComp == nil || rep.Cycles < bestRep.Cycles {
			bestOpts, bestComp, bestRep = opts, comp, rep
		}
	}
	if bestComp == nil {
		return compiler.Options{}, nil, Report{}, fmt.Errorf("core: no autotune candidate compiled successfully")
	}
	return bestOpts, bestComp, bestRep, nil
}

// SimulateILS runs the compiled model in Instruction-Level Simulation mode:
// same cycle counts, every dynamic instruction executed individually.
func (s *Simulator) SimulateILS(comp *compiler.Compiled, kind NetKind) (Report, compiler.ILSResult, error) {
	start := time.Now()
	ils, err := compiler.RunILS(comp, s.Cfg, kind)
	if err != nil {
		return Report{}, ils, err
	}
	return Report{
		Cycles:    ils.Cycles,
		FreqMHz:   s.Cfg.FreqMHz,
		WallClock: time.Since(start),
	}, ils, nil
}

// RunFunctional executes the compiled model on the functional simulator
// (output validation, training loss values).
func (s *Simulator) RunFunctional(comp *compiler.Compiled, g *graph.Graph, env *graph.Env) (map[string]*tensor.Tensor, error) {
	return compiler.RunFunctional(comp, g, env)
}
