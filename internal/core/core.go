// Package core is the top-level PyTorchSim-reproduction framework facade:
// it ties the model zoo, the compiler backend, and the simulators together
// behind the workflow of Fig. 1 — capture a graph, compile it to kernels
// and TOGs, then simulate with TLS (fast, cycle-accurate shared resources),
// ILS (instruction-level), or functionally (output validation / training).
//
// Typical use:
//
//	sim := core.NewSimulator(npu.TPUv3Config(), compiler.DefaultOptions())
//	comp, _ := sim.Compile(model.Graph)
//	rep, _ := sim.SimulateTLS(comp, core.SimpleNet)
//	fmt.Println(rep.Cycles, rep.Time())
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/obs/report"
	"repro/internal/service/cache"
	"repro/internal/tensor"
	"repro/internal/togsim"
)

// NetKind re-exports the interconnect model selector (§4.1: SN vs CN).
type NetKind = togsim.NetKind

// Interconnect models.
const (
	SimpleNet = togsim.SimpleNet
	CycleNet  = togsim.CycleNet
)

// Simulator bundles a target NPU configuration with a compiler whose kernel
// latency cache persists across compilations (the TOG cache of §3.10).
type Simulator struct {
	Cfg      npu.Config
	Compiler *compiler.Compiler

	// MaxCycles bounds every timing simulation this simulator runs — the
	// deadlock guard, configurable per run instead of only the package
	// constant (0 = togsim.DefaultMaxCycles).
	MaxCycles int64

	// EngineWorkers sets the TLS engine's host goroutine count for every
	// timing simulation (0 or 1 = serial). Results are bit-identical at
	// any worker count; see togsim.Engine.Workers.
	EngineWorkers int

	// Probe, when non-nil, is attached to every TLS stack this simulator
	// builds (engine spans plus fabric/NoC/DRAM counters) and to the
	// compiler (compile-phase spans). It never changes simulation results.
	Probe obs.Probe

	// Objective selects what AutoTune minimizes (default TuneCycles).
	Objective TuneObjective

	// store, when attached, persists the kernel-latency table across
	// processes (the offline TOG cache of §3.10 on disk).
	store cache.Store
}

// NewSimulator returns a simulator for the given NPU and compiler options.
func NewSimulator(cfg npu.Config, opts compiler.Options) *Simulator {
	return &Simulator{Cfg: cfg, Compiler: compiler.New(cfg, opts)}
}

// AttachStore connects a persistent artifact store: the compiler's latency
// cache is seeded from the store's table for this core configuration
// immediately, and Compile writes the grown table back whenever it measured
// new kernels. Corrupt or stale-schema entries are ignored (clean
// recompile).
func (s *Simulator) AttachStore(st cache.Store) {
	s.store = st
	if data, ok := st.Get(cache.LatencyKey(s.Cfg.Core)); ok {
		if m, err := cache.DecodeLatencies(data); err == nil {
			s.Compiler.SeedLatencies(m)
		}
	}
}

// DiskStats reports the attached store's hits and misses (zeros without a
// store).
func (s *Simulator) DiskStats() (hits, misses int64) {
	if s.store == nil {
		return 0, 0
	}
	return s.store.Stats()
}

// Compile lowers a captured graph to kernels and TOGs.
func (s *Simulator) Compile(g *graph.Graph) (*compiler.Compiled, error) {
	if s.Compiler.Probe == nil {
		s.Compiler.Probe = s.Probe
	}
	before := s.Compiler.MeasureCount()
	comp, err := s.Compiler.Compile(g)
	if err != nil {
		return nil, err
	}
	if s.store != nil && s.Compiler.MeasureCount() > before {
		// Best-effort persistence of the grown latency table; a failed
		// write only costs a future re-measure.
		if data, encErr := cache.EncodeLatencies(s.Compiler.Latencies()); encErr == nil {
			_ = s.store.Put(cache.LatencyKey(s.Cfg.Core), data)
		}
	}
	return comp, nil
}

// TuneObjective selects AutoTune's winner metric.
type TuneObjective int

const (
	// TuneCycles picks the candidate with the fewest cycles (default).
	TuneCycles TuneObjective = iota
	// TuneEnergyDelay minimizes cycles x total energy (an energy-delay
	// product), falling back to cycles when the configuration has no
	// energy table. Tie-break is the earliest candidate either way.
	TuneEnergyDelay
)

// Report summarizes a timing simulation.
type Report struct {
	Cycles    int64
	FreqMHz   int
	Jobs      []togsim.JobResult
	Cores     []togsim.CoreStats
	MemStats  *dram.Stats
	NoCFlits  int64
	Rounds    togsim.RoundStats
	WallClock time.Duration
}

// Time converts simulated cycles to simulated wall time at the core clock.
func (r Report) Time() time.Duration {
	return time.Duration(float64(r.Cycles) / float64(r.FreqMHz) * 1e3 * float64(time.Nanosecond))
}

// String renders a short human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf("%d cycles (%.3f ms simulated @ %d MHz, %v host)",
		r.Cycles, float64(r.Cycles)/float64(r.FreqMHz)/1e3, r.FreqMHz, r.WallClock.Round(time.Millisecond))
}

// SimulateTLS runs the compiled model in Tile-Level Simulation mode on one
// core with the selected interconnect model.
func (s *Simulator) SimulateTLS(comp *compiler.Compiled, kind NetKind) (Report, error) {
	return s.SimulateJobs([]*togsim.Job{comp.Job(comp.Name, 0, 0)}, kind)
}

// SimulateJobs runs an arbitrary multi-core, multi-tenant job set (§5.2).
func (s *Simulator) SimulateJobs(jobs []*togsim.Job, kind NetKind) (Report, error) {
	setup := togsim.NewStandard(s.Cfg, kind, dram.FRFCFS)
	setup.Engine.MaxCycles = s.MaxCycles
	setup.Engine.Workers = s.EngineWorkers
	if s.Probe != nil {
		setup.AttachProbe(s.Probe)
	}
	start := time.Now()
	res, err := setup.Engine.Run(jobs)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Cycles:    res.Cycles,
		FreqMHz:   s.Cfg.FreqMHz,
		Jobs:      res.Jobs,
		Cores:     res.Cores,
		MemStats:  &setup.Mem.Stats,
		NoCFlits:  setup.NetFlits(),
		Rounds:    setup.Engine.Rounds,
		WallClock: time.Since(start),
	}, nil
}

// AutoTune compiles the graph under each candidate option set, simulates
// each in TLS, and returns the fastest (options, compilation, report).
// A nil candidates slice sweeps compiler.TileCandidates(). Candidates run
// concurrently and all share the simulator's kernel-latency cache, so a
// tile shape common to several candidates (and to any earlier Compile on
// this simulator) is measured exactly once across the whole sweep. The
// winner is deterministic: fewest cycles, earliest candidate on ties —
// identical to what the old serial loop picked.
func (s *Simulator) AutoTune(g *graph.Graph, candidates []compiler.Options, kind NetKind) (compiler.Options, *compiler.Compiled, Report, error) {
	if candidates == nil {
		candidates = compiler.TileCandidates()
	}
	if len(candidates) == 0 {
		return compiler.Options{}, nil, Report{}, fmt.Errorf("core: no autotune candidates")
	}
	type outcome struct {
		comp     *compiler.Compiled
		rep      Report
		measured int64
	}
	results := make([]*outcome, len(candidates))
	var wg sync.WaitGroup
	for i, opts := range candidates {
		wg.Add(1)
		go func(i int, opts compiler.Options) {
			defer wg.Done()
			c := compiler.NewShared(s.Cfg, opts, s.Compiler.Cache())
			comp, err := c.Compile(g)
			if err != nil {
				// A candidate that does not fit (e.g. tile exceeds
				// scratchpad) is skipped, not fatal.
				return
			}
			setup := togsim.NewStandard(s.Cfg, kind, dram.FRFCFS)
			setup.Engine.MaxCycles = s.MaxCycles
			setup.Engine.Workers = s.EngineWorkers
			start := time.Now()
			res, err := setup.Engine.Run([]*togsim.Job{comp.Job(comp.Name, 0, 0)})
			if err != nil {
				return
			}
			results[i] = &outcome{
				comp: comp,
				rep: Report{Cycles: res.Cycles, FreqMHz: s.Cfg.FreqMHz, Jobs: res.Jobs,
					Cores: res.Cores, MemStats: &setup.Mem.Stats, NoCFlits: setup.NetFlits(),
					Rounds: setup.Engine.Rounds, WallClock: time.Since(start)},
				measured: c.MeasureCount(),
			}
		}(i, opts)
	}
	wg.Wait()

	best := -1
	var bestScore float64
	var sweepMeasured int64
	for i, r := range results {
		if r == nil {
			continue
		}
		sweepMeasured += r.measured
		score := s.tuneScore(r.rep)
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return compiler.Options{}, nil, Report{}, fmt.Errorf("core: no autotune candidate compiled successfully")
	}
	if s.store != nil && sweepMeasured > 0 {
		if data, err := cache.EncodeLatencies(s.Compiler.Latencies()); err == nil {
			_ = s.store.Put(cache.LatencyKey(s.Cfg.Core), data)
		}
	}
	return candidates[best], results[best].comp, results[best].rep, nil
}

// tuneScore is the metric AutoTune minimizes for one candidate's report.
// It is a deterministic function of the candidate's int64 counters (the
// energy derivation is post-hoc float math over identical inputs), so the
// sweep picks the same winner on every run and at every worker count.
func (s *Simulator) tuneScore(rep Report) float64 {
	if s.Objective == TuneEnergyDelay {
		totals := report.Totals(togsim.Result{Cycles: rep.Cycles, Jobs: rep.Jobs, Cores: rep.Cores},
			rep.MemStats, rep.NoCFlits, 0)
		if e := report.BuildEnergy(s.Cfg, totals); e != nil {
			return float64(rep.Cycles) * e.TotalMilliJ
		}
	}
	return float64(rep.Cycles)
}

// SimulateILS runs the compiled model in Instruction-Level Simulation mode:
// same cycle counts, every dynamic instruction executed individually.
func (s *Simulator) SimulateILS(comp *compiler.Compiled, kind NetKind) (Report, compiler.ILSResult, error) {
	start := time.Now()
	ils, err := compiler.RunILS(comp, s.Cfg, kind)
	if err != nil {
		return Report{}, ils, err
	}
	return Report{
		Cycles:    ils.Cycles,
		FreqMHz:   s.Cfg.FreqMHz,
		WallClock: time.Since(start),
	}, ils, nil
}

// RunFunctional executes the compiled model on the functional simulator
// (output validation, training loss values).
func (s *Simulator) RunFunctional(comp *compiler.Compiled, g *graph.Graph, env *graph.Env) (map[string]*tensor.Tensor, error) {
	return compiler.RunFunctional(comp, g, env)
}
