package core

import (
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
)

// The §3.8 determinism property, checked across shapes: for any
// (rectangular, non-aligned) GEMM, ILS and TLS report identical cycles.
func TestILSMatchesTLSCyclesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := 8 + int(seed%29)     // deliberately not multiples of the tile
		k := 8 + int(seed/7%23)   // or vector sizes, so edge tiles appear
		n := 8 + int(seed/131%31) //
		g := graph.New("gemm")
		x := g.Input("x", m, k)
		w := g.Param("w", k, n)
		mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{m, n}})
		g.Outputs = []int{mm.ID}

		sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
		comp, err := sim.Compile(g)
		if err != nil {
			t.Logf("compile (%d,%d,%d): %v", m, k, n, err)
			return false
		}
		tls, err := sim.SimulateTLS(comp, SimpleNet)
		if err != nil {
			return false
		}
		ils, _, err := sim.SimulateILS(comp, SimpleNet)
		if err != nil {
			return false
		}
		if ils.Cycles != tls.Cycles {
			t.Logf("GEMM(%d,%d,%d): ILS %d != TLS %d", m, k, n, ils.Cycles, tls.Cycles)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoTuneNeverWorseThanDefault(t *testing.T) {
	sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
	g := graph.New("gemm")
	x := g.Input("x", 96, 64)
	w := g.Param("w", 64, 48)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{96, 48}})
	g.Outputs = []int{mm.ID}

	comp, err := sim.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	def, err := sim.SimulateTLS(comp, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	opts, tunedComp, rep, err := sim.AutoTune(g, nil, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	if tunedComp == nil {
		t.Fatal("autotune returned no compilation")
	}
	if rep.Cycles > def.Cycles {
		t.Fatalf("autotune (MaxMt=%d, %d cycles) worse than default (%d cycles)",
			opts.MaxMt, rep.Cycles, def.Cycles)
	}
	// Deterministic: a second sweep picks the same winner.
	opts2, _, rep2, err := sim.AutoTune(g, nil, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	if opts2.MaxMt != opts.MaxMt || rep2.Cycles != rep.Cycles {
		t.Fatalf("autotune nondeterministic: (%d,%d) vs (%d,%d)",
			opts.MaxMt, rep.Cycles, opts2.MaxMt, rep2.Cycles)
	}
}

func TestAutoTuneSkipsInfeasibleCandidates(t *testing.T) {
	sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
	g := graph.New("gemm")
	x := g.Input("x", 32, 32)
	w := g.Param("w", 32, 32)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{32, 32}})
	g.Outputs = []int{mm.ID}
	if _, _, _, err := sim.AutoTune(g, []compiler.Options{}, SimpleNet); err == nil {
		t.Fatal("expected error for empty candidate list")
	}
	if _, _, _, err := sim.AutoTune(g, nil, SimpleNet); err != nil {
		t.Fatal(err)
	}
}
