package core

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tensor"
)

func gemmGraph(n int) *graph.Graph {
	g := graph.New("gemm")
	x := g.Input("x", n, n)
	w := g.Param("w", n, n)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{n, n}})
	g.Outputs = []int{mm.ID}
	return g
}

func TestSimulatorEndToEnd(t *testing.T) {
	sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
	comp, err := sim.Compile(gemmGraph(32))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.SimulateTLS(comp, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 || rep.Time() <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "cycles") {
		t.Fatal("String() should mention cycles")
	}
}

func TestSimulatorILSMatchesTLSCycles(t *testing.T) {
	// The headline TLS claim (§3.8): tile latencies are deterministic, so
	// TLS reports the same cycle count as ILS while running much faster.
	sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
	comp, err := sim.Compile(gemmGraph(32))
	if err != nil {
		t.Fatal(err)
	}
	tls, err := sim.SimulateTLS(comp, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	ilsRep, ils, err := sim.SimulateILS(comp, SimpleNet)
	if err != nil {
		t.Fatal(err)
	}
	if ilsRep.Cycles != tls.Cycles {
		t.Fatalf("ILS cycles %d != TLS cycles %d", ilsRep.Cycles, tls.Cycles)
	}
	if ils.Instrs == 0 || ils.KernelRuns == 0 {
		t.Fatal("ILS must execute instructions")
	}
}

func TestSimulatorFunctional(t *testing.T) {
	sim := NewSimulator(npu.SmallConfig(), compiler.DefaultOptions())
	g := gemmGraph(16)
	comp, err := sim.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	env := graph.NewEnv().
		Set("x", tensor.RandNormal(r, 0, 1, 16, 16)).
		Set("w", tensor.RandNormal(r, 0, 1, 16, 16))
	out, err := sim.RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(g, env)
	name := comp.OutputTensors[g.Outputs[0]]
	if !tensor.AllClose(out[name], cpu[g.Outputs[0]], 1e-4, 1e-4) {
		t.Fatal("functional result differs from CPU")
	}
}
