package exp

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows of columns with aligned widths.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cols ...string) { t.Rows = append(t.Rows, cols) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// RelErr returns |x-ref|/ref.
func RelErr(x, ref int64) float64 {
	if ref == 0 {
		return 0
	}
	return math.Abs(float64(x-ref)) / float64(ref)
}

// MAE returns the mean of the given relative errors.
func MAE(errs []float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	var s float64
	for _, e := range errs {
		s += e
	}
	return s / float64(len(errs))
}

// Pct formats a ratio as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// Speedup formats a speedup factor.
func Speedup(x float64) string { return fmt.Sprintf("%.2fx", x) }

// MaxInt returns the larger int.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
