package exp

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"a", "long-header"}}
	tb.Add("wider-than-header", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Every line is padded to the same column starts.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("wider-than-header"))) {
		t.Fatalf("separator not sized to widest cell:\n%s", out)
	}
	if strings.Index(lines[0], "long-header") != strings.Index(lines[2], "x") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); e < 0.0999 || e > 0.1001 {
		t.Fatalf("RelErr(110,100) = %g", e)
	}
	if e := RelErr(90, 100); e < 0.0999 || e > 0.1001 {
		t.Fatalf("RelErr(90,100) = %g", e)
	}
	if RelErr(5, 0) != 0 {
		t.Fatal("RelErr with zero reference must be 0")
	}
}

func TestMAEAveragesRelErrs(t *testing.T) {
	got := MAE([]float64{0.05, 0.15})
	if got < 0.0999 || got > 0.1001 {
		t.Fatalf("MAE = %g", got)
	}
	if MAE(nil) != 0 {
		t.Fatal("MAE(nil) must be 0")
	}
}
