package exp

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/tensor"
)

// Fig8aRow compares DMA decomposition strategies on one GEMM (§5.3).
type Fig8aRow struct {
	Workload                string
	Coarse, Fine, Selective int64 // cycles
}

// Fig8aResult is the fine-grained-DMA study.
type Fig8aResult struct{ Rows []Fig8aRow }

func (r *Fig8aResult) String() string {
	t := &Table{Header: []string{"workload", "CG-DMA", "FG-DMA", "SFG-DMA", "FG/CG", "SFG/CG"}}
	for _, row := range r.Rows {
		t.Add(row.Workload,
			fmt.Sprintf("%d", row.Coarse), fmt.Sprintf("%d", row.Fine), fmt.Sprintf("%d", row.Selective),
			Speedup(float64(row.Coarse)/float64(row.Fine)),
			Speedup(float64(row.Coarse)/float64(row.Selective)))
	}
	return "Fig. 8a — DMA-compute overlap from fine-grained DMA (speedup over coarse)\n" + t.String()
}

// Fig8a sweeps GEMMs across the three DMA modes.
func Fig8a(cfg npu.Config, quick bool) (*Fig8aResult, error) {
	sizes := []int{512, 1024, 2048}
	if quick {
		sizes = []int{256, 512}
	}
	res := &Fig8aResult{}
	for _, n := range sizes {
		row := Fig8aRow{Workload: fmt.Sprintf("GEMM(%d)", n)}
		for _, mode := range []compiler.DMAMode{compiler.DMACoarse, compiler.DMAFine, compiler.DMASelective} {
			opts := compiler.DefaultOptions()
			opts.DMA = mode
			sim := core.NewSimulator(cfg, opts)
			comp, err := sim.Compile(GEMMGraph(n))
			if err != nil {
				return nil, err
			}
			rep, err := sim.SimulateTLS(comp, core.SimpleNet)
			if err != nil {
				return nil, err
			}
			switch mode {
			case compiler.DMACoarse:
				row.Coarse = rep.Cycles
			case compiler.DMAFine:
				row.Fine = rep.Cycles
			default:
				row.Selective = rep.Cycles
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig8bRow compares conv layout optimization on a full model (§5.3).
type Fig8bRow struct {
	Workload               string
	Unoptimized, Optimized int64
}

// Fig8bResult is the batch-1 conv-tiling study.
type Fig8bResult struct{ Rows []Fig8bRow }

func (r *Fig8bResult) String() string {
	t := &Table{Header: []string{"workload", "HWNC(unopt)", "optimized", "speedup"}}
	for _, row := range r.Rows {
		t.Add(row.Workload, fmt.Sprintf("%d", row.Unoptimized), fmt.Sprintf("%d", row.Optimized),
			Speedup(float64(row.Unoptimized)/float64(row.Optimized)))
	}
	return "Fig. 8b — conv tiling optimizations, batch size 1\n" + t.String()
}

// Fig8b runs ResNets at batch 1 with and without the conv layout
// optimization.
func Fig8b(cfg npu.Config, quick bool) (*Fig8bResult, error) {
	var models []Workload
	if quick {
		rc := nn.ResNet18Config(1)
		rc.InputHW = 64
		models = []Workload{{Name: "ResNet-18(64px)", Graph: nn.ResNet(rc).Graph}}
	} else {
		models = []Workload{
			{Name: "ResNet-18", Graph: nn.ResNet(nn.ResNet18Config(1)).Graph},
			{Name: "ResNet-50", Graph: nn.ResNet(nn.ResNet50Config(1)).Graph},
		}
	}
	res := &Fig8bResult{}
	for _, m := range models {
		row := Fig8bRow{Workload: m.Name}
		for _, opt := range []bool{false, true} {
			opts := compiler.DefaultOptions()
			opts.ConvLayoutOpt = opt
			sim := core.NewSimulator(cfg, opts)
			comp, err := sim.Compile(m.Graph)
			if err != nil {
				return nil, err
			}
			rep, err := sim.SimulateTLS(comp, core.SimpleNet)
			if err != nil {
				return nil, err
			}
			if opt {
				row.Optimized = rep.Cycles
			} else {
				row.Unoptimized = rep.Cycles
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig8cRow compares layouts for a small-input-channel conv.
type Fig8cRow struct {
	Workload               string
	Unoptimized, Optimized int64
}

// Fig8cResult is the small-C conv study.
type Fig8cResult struct{ Rows []Fig8cRow }

func (r *Fig8cResult) String() string {
	t := &Table{Header: []string{"workload", "HWNC(unopt)", "optimized", "speedup"}}
	for _, row := range r.Rows {
		t.Add(row.Workload, fmt.Sprintf("%d", row.Unoptimized), fmt.Sprintf("%d", row.Optimized),
			Speedup(float64(row.Unoptimized)/float64(row.Optimized)))
	}
	return "Fig. 8c — conv tiling for small input-channel counts\n" + t.String()
}

// Fig8c runs small-C convolutions at batch 1 and a larger batch, with and
// without the layout optimization (HNWC merges the x-taps into the SA
// panel).
func Fig8c(cfg npu.Config, quick bool) (*Fig8cResult, error) {
	bigBatch := 64
	hw := 56
	if quick {
		bigBatch = 8
		hw = 28
	}
	shapes := []struct {
		c, batch int
	}{
		{4, 1}, {8, 1}, {4, bigBatch}, {8, bigBatch},
	}
	res := &Fig8cResult{}
	for _, s := range shapes {
		cs := tensor.ConvShape{N: s.batch, C: s.c, H: hw, W: hw, K: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
		name := fmt.Sprintf("CONV(C=%d,b=%d)", s.c, s.batch)
		row := Fig8cRow{Workload: name}
		for _, opt := range []bool{false, true} {
			opts := compiler.DefaultOptions()
			opts.ConvLayoutOpt = opt
			sim := core.NewSimulator(cfg, opts)
			comp, err := sim.Compile(ConvGraph(name, cs))
			if err != nil {
				return nil, err
			}
			rep, err := sim.SimulateTLS(comp, core.SimpleNet)
			if err != nil {
				return nil, err
			}
			if opt {
				row.Optimized = rep.Cycles
			} else {
				row.Unoptimized = rep.Cycles
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

var _ = strings.TrimSpace // keep strings imported for future formatting
