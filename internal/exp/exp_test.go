package exp

import (
	"strings"
	"testing"

	"repro/internal/npu"
)

// The experiment drivers run in quick mode against the TPUv3 configuration
// (its wide vector units and 128x128 SA are what the workloads are sized
// for); full-scale runs happen in the benchmark harness and the
// experiments command.
func expCfg() npu.Config {
	return npu.TPUv3Config()
}

func TestWorkloadsBuild(t *testing.T) {
	for _, w := range append(KernelWorkloads(true), ModelWorkloads(true)...) {
		if err := w.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: full accuracy sweep, ~60s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig5(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The PyTorchSim configuration under test must be far more accurate
	// than the analytical roofline (the headline Fig. 5 shape).
	if res.MAEPyTorchSim >= res.MAEAnalytical {
		t.Fatalf("PyTorchSim MAE %.3f should beat analytical %.3f",
			res.MAEPyTorchSim, res.MAEAnalytical)
	}
	if res.MAEPyTorchSim > 0.25 {
		t.Fatalf("PyTorchSim(SN) MAE too high: %.3f", res.MAEPyTorchSim)
	}
	if !strings.Contains(res.String(), "MAE") {
		t.Fatal("table must report MAE")
	}
	// Baselines must underestimate end-to-end models (missing vector ops).
	for _, row := range res.Rows {
		if row.EndToEnd && row.Analytical >= row.Reference {
			t.Fatalf("%s: analytical (%d) should underestimate reference (%d)",
				row.Workload, row.Analytical, row.Reference)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	res, err := Fig6(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.TLSSN <= 0 || row.ILS <= 0 {
			t.Fatalf("missing timings: %+v", row)
		}
		// TLS must beat ILS in wall-clock (the headline speed claim).
		if row.TLSSN >= row.ILS {
			t.Fatalf("%s: TLS (%v) must be faster than ILS (%v)", row.Workload, row.TLSSN, row.ILS)
		}
	}
}

func TestFig7aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: heterogeneous co-location sweep, ~7s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig7a(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: integrating helps the dense core (more usable
	// bandwidth under FR-FCFS) and hurts the sparse core.
	if res.DenseSpeedup() < 0.95 {
		t.Fatalf("dense core should not slow down much: %+v", res)
	}
	if res.SparseSlowdown() < 1.0 {
		t.Fatalf("sparse core should slow down when co-located: %+v", res)
	}
}

func TestFig7bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: multi-tenant BERT+ResNet sweep, ~60s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig7b(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.BERTSolo <= 0 || res.ResNetSolo <= 0 || res.BERTCo <= 0 || res.ResNetCo <= 0 {
		t.Fatalf("missing latencies: %+v", res)
	}
	// Co-location with full shared bandwidth should help the bandwidth-
	// hungry model (BERT) relative to its half-bandwidth solo run.
	if res.BERTChange() > 1.1 {
		t.Fatalf("BERT should benefit from opportunistic bandwidth: ratio %.2f", res.BERTChange())
	}
}

func TestFig8aQuick(t *testing.T) {
	res, err := Fig8a(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Coarse <= 0 || row.Fine <= 0 || row.Selective <= 0 {
			t.Fatalf("missing cycles: %+v", row)
		}
		// Fine-grained DMA must not lose badly to coarse on these sizes.
		if float64(row.Fine) > float64(row.Coarse)*1.15 {
			t.Fatalf("%s: FG (%d) much slower than CG (%d)", row.Workload, row.Fine, row.Coarse)
		}
	}
}

func TestFig8bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: conv tiling sweep, ~30s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig8b(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if float64(row.Unoptimized)/float64(row.Optimized) < 1.2 {
			t.Fatalf("%s: conv layout opt speedup only %.2fx",
				row.Workload, float64(row.Unoptimized)/float64(row.Optimized))
		}
	}
}

func TestFig8cQuick(t *testing.T) {
	res, err := Fig8c(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Optimized >= row.Unoptimized {
			t.Fatalf("%s: optimization did not help (%d vs %d)",
				row.Workload, row.Optimized, row.Unoptimized)
		}
	}
}

// TestFig9Regression pins the §5.4 study's absolute cycle counts captured
// on the pre-topology chiplet fabric (quick mode, TPUv3 config). The
// topology-layer migration must reproduce them bit-identically — any drift
// here means the refactor changed NUMA fabric timing.
func TestFig9Regression(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: chiplet mapping sweep, ~7s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig9(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	want := Fig9Result{
		Monolithic: 22587,
		Best:       39652,
		Random:     81502,
		Worst:      117990,
		BestLocal:  0.8, RandomLocal: 0.5, WorstLocal: 0.2,
	}
	if *res != want {
		t.Fatalf("fig9 drifted from the pre-topology baseline:\ngot  %+v\nwant %+v", *res, want)
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: chiplet mapping sweep, ~7s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig9(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: monolithic < best < random < worst.
	if !(res.Monolithic < res.Best && res.Best < res.Random && res.Random < res.Worst) {
		t.Fatalf("ordering wrong: %+v", res)
	}
	if !(res.BestLocal > res.RandomLocal && res.RandomLocal > res.WorstLocal) {
		t.Fatalf("locality ordering wrong: %+v", res)
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("tier-2: training batch sweep, ~7s (DESIGN.md \"Test tiers\")")
	}
	res, err := Fig10(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NPUMatchesCPU {
		t.Fatalf("NPU loss curve diverged from CPU: max delta %g", res.MaxLossDelta)
	}
	// Larger batch: more cycles per iteration but far fewer iterations per
	// epoch, so epochs cost much less (the paper's 4.6x mechanism), and
	// final accuracy drops.
	if res.Large.CyclesPerIter <= res.Small.CyclesPerIter {
		t.Fatalf("per-iteration cycles should grow with batch: %+v", res)
	}
	perEpoch := float64(res.Small.CyclesPerEpoch) / float64(res.Large.CyclesPerEpoch)
	if perEpoch < 2 {
		t.Fatalf("per-epoch speedup only %.2fx: %+v", perEpoch, res)
	}
	if res.Large.Accuracy >= res.Small.Accuracy {
		t.Fatalf("large batch should lose accuracy: %.3f vs %.3f", res.Large.Accuracy, res.Small.Accuracy)
	}
}

func TestSparseValidationQuick(t *testing.T) {
	res, err := SparseValidation(expCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.CycleErr > 0.15 {
			t.Fatalf("%s: TLS cycle error %.1f%% vs event-driven reference", row.Workload, row.CycleErr*100)
		}
		if row.RefWall <= row.TLSWall {
			t.Fatalf("%s: detailed reference (%v) should cost more wall-clock than TLS replay (%v)",
				row.Workload, row.RefWall, row.TLSWall)
		}
	}
}
