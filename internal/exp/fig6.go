package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/npu"
)

// Fig6Row is one workload's simulation wall-clock per simulator.
type Fig6Row struct {
	Workload string
	TLSSN    time.Duration // PyTorchSim-SN
	TLSCN    time.Duration // PyTorchSim-CN
	ILS      time.Duration // PyTorchSim (ILS)
	MNPUSim  time.Duration
	AccelSim time.Duration
}

// Fig6Result is the simulation-speed comparison.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 measures simulator wall-clock on the kernel workloads (§4.3).
// Compile time is excluded, matching the paper's methodology ("excluding
// ... compile time for PyTorchSim" and trace generation for Accel-Sim).
func Fig6(cfg npu.Config, quick bool) (*Fig6Result, error) {
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	sizes := []int{256, 512, 1024}
	if quick {
		sizes = []int{128, 256}
	}
	// Untimed warmup so the first timed row does not absorb one-time process
	// costs (page faults, heap growth, cold code paths): on the quick sizes
	// those costs rival the measurement itself.
	if warm, err := sim.Compile(GEMMGraph(64)); err == nil {
		if _, err := sim.SimulateTLS(warm, core.SimpleNet); err != nil {
			return nil, err
		}
		if _, _, err := sim.SimulateILS(warm, core.SimpleNet); err != nil {
			return nil, err
		}
	}
	res := &Fig6Result{}
	for _, n := range sizes {
		g := GEMMGraph(n)
		comp, err := sim.Compile(g)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Workload: g.Name}

		sn, err := sim.SimulateTLS(comp, core.SimpleNet)
		if err != nil {
			return nil, err
		}
		row.TLSSN = sn.WallClock

		cn, err := sim.SimulateTLS(comp, core.CycleNet)
		if err != nil {
			return nil, err
		}
		row.TLSCN = cn.WallClock

		ilsRep, _, err := sim.SimulateILS(comp, core.SimpleNet)
		if err != nil {
			return nil, err
		}
		row.ILS = ilsRep.WallClock

		layers := baseline.ExtractLayers(g)
		start := time.Now()
		if _, err := (baseline.MNPUSim{Cfg: cfg}).Run(layers); err != nil {
			return nil, err
		}
		row.MNPUSim = time.Since(start)

		start = time.Now()
		a := &baseline.AccelSim{Cfg: baseline.NPUEquivalentGPU(cfg)}
		if _, err := a.Run(layers); err != nil {
			return nil, err
		}
		row.AccelSim = time.Since(start)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the Fig. 6 table with speedups over Accel-Sim and ILS.
func (r *Fig6Result) String() string {
	t := &Table{Header: []string{"workload", "TLS-SN", "TLS-CN", "ILS", "mnpusim", "accelsim", "SN/accelsim", "SN/ILS"}}
	for _, row := range r.Rows {
		spAcc := float64(row.AccelSim) / float64(maxDur(row.TLSSN, time.Microsecond))
		spILS := float64(row.ILS) / float64(maxDur(row.TLSSN, time.Microsecond))
		t.Add(row.Workload,
			row.TLSSN.Round(time.Microsecond).String(),
			row.TLSCN.Round(time.Microsecond).String(),
			row.ILS.Round(time.Microsecond).String(),
			row.MNPUSim.Round(time.Microsecond).String(),
			row.AccelSim.Round(time.Microsecond).String(),
			Speedup(spAcc), Speedup(spILS))
	}
	var b strings.Builder
	b.WriteString("Fig. 6 — simulation speed (host wall-clock; speedups of PyTorchSim-SN)\n")
	b.WriteString(t.String())
	fmt.Fprintln(&b, "(compile/trace-generation time excluded, per the paper's methodology)")
	return b.String()
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
