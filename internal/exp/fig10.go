package exp

import (
	"fmt"
	"strings"

	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/train"
)

// Fig10Batch is one batch size's training outcome.
type Fig10Batch struct {
	Batch          int
	Losses         []float32
	StepsToTarget  int
	CyclesPerIter  int64
	TotalCycles    int64
	CyclesPerEpoch int64
	Accuracy       float64
}

// Fig10Result reports the training-hyperparameter study (§5.5).
type Fig10Result struct {
	Small, Large Fig10Batch
	// NPUMatchesCPU confirms the NPU-executed loss curve equals the CPU's
	// over the spot-check steps (Fig. 10a: "identical to a real CPU").
	NPUMatchesCPU bool
	MaxLossDelta  float64
}

func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — impact of training batch size (MLP, synthetic MNIST)\n")
	t := &Table{Header: []string{"batch", "steps-to-target", "cycles/iter", "cycles/epoch", "total cycles", "accuracy"}}
	for _, row := range []Fig10Batch{r.Small, r.Large} {
		t.Add(fmt.Sprintf("%d", row.Batch), fmt.Sprintf("%d", row.StepsToTarget),
			fmt.Sprintf("%d", row.CyclesPerIter), fmt.Sprintf("%d", row.CyclesPerEpoch),
			fmt.Sprintf("%d", row.TotalCycles), fmt.Sprintf("%.3f", row.Accuracy))
	}
	b.WriteString(t.String())
	perIter := float64(r.Large.CyclesPerIter) / float64(r.Small.CyclesPerIter)
	perEpoch := float64(r.Small.CyclesPerEpoch) / float64(r.Large.CyclesPerEpoch)
	total := float64(r.Small.TotalCycles) / float64(r.Large.TotalCycles)
	fmt.Fprintf(&b, "large batch: %.2fx cycles/iter, %.2fx faster per epoch (the paper's 4.6x mechanism), %.2fx total-to-target, accuracy delta %.3f\n",
		perIter, perEpoch, total, r.Large.Accuracy-r.Small.Accuracy)
	fmt.Fprintf(&b, "NPU-vs-CPU loss curves identical: %v (max delta %.2e)\n", r.NPUMatchesCPU, r.MaxLossDelta)
	return b.String()
}

// Fig10 trains the MLP at a small and a large batch size, measures per-
// iteration TLS cycles for each, and spot-checks that the NPU functional
// path reproduces the CPU loss curve exactly.
func Fig10(cfg npu.Config, quick bool) (*Fig10Result, error) {
	dsN := 2048
	exampleBudget := 16384 // training examples consumed per run (any batch)
	smallBS, largeBS := 8, 128
	lossTarget := float32(0.8)
	if quick {
		dsN = 512
		exampleBudget = 4800
		largeBS = 64
	}
	full := train.SyntheticMNIST(11, dsN+512)
	ds, eval := full.Split(dsN)

	runBatch := func(bs int) (Fig10Batch, error) {
		mlp := nn.DefaultMLP(bs)
		// Convergence is judged on the (smooth) evaluation-set loss,
		// sampled every few steps — per-batch training losses at small
		// batch sizes are too noisy to gate on.
		evalEvery := maxInt(1, 256/bs)
		res, err := train.Run(train.Config{
			MLP: mlp, LR: 0.05, Steps: exampleBudget / bs, Backend: train.CPU, Seed: 13,
			EvalEvery: evalEvery,
		}, ds, eval)
		if err != nil {
			return Fig10Batch{}, err
		}
		cycles, err := train.MeasureIterationCycles(mlp, 0.05, cfg)
		if err != nil {
			return Fig10Batch{}, err
		}
		steps := train.StepsToLoss(res.EvalLosses, lossTarget) * evalEvery
		return Fig10Batch{
			Batch:          bs,
			Losses:         res.Losses,
			StepsToTarget:  steps,
			CyclesPerIter:  cycles,
			TotalCycles:    int64(steps) * cycles,
			CyclesPerEpoch: int64(dsN/bs) * cycles,
			Accuracy:       res.FinalAccuracy,
		}, nil
	}
	small, err := runBatch(smallBS)
	if err != nil {
		return nil, err
	}
	large, err := runBatch(largeBS)
	if err != nil {
		return nil, err
	}

	// NPU-vs-CPU loss spot check (functional full-training path, Table 2).
	spotCfg := nn.DefaultMLP(smallBS)
	spotSteps := 3
	cpu, err := train.Run(train.Config{MLP: spotCfg, LR: 0.05, Steps: spotSteps, Backend: train.CPU, Seed: 13}, ds, eval)
	if err != nil {
		return nil, err
	}
	npuRes, err := train.Run(train.Config{MLP: spotCfg, LR: 0.05, Steps: spotSteps, Backend: train.NPU, NPUCfg: cfg, Seed: 13}, ds, eval)
	if err != nil {
		return nil, err
	}
	var maxDelta float64
	for i := range cpu.Losses {
		d := float64(cpu.Losses[i] - npuRes.Losses[i])
		if d < 0 {
			d = -d
		}
		if d > maxDelta {
			maxDelta = d
		}
	}
	return &Fig10Result{
		Small:         small,
		Large:         large,
		NPUMatchesCPU: maxDelta < 1e-3,
		MaxLossDelta:  maxDelta,
	}, nil
}
