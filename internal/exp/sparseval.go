package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/npu"
	"repro/internal/sparse"
	"repro/internal/sparsecore"
	"repro/internal/tensor"
	"repro/internal/tog"
	"repro/internal/togsim"
)

// SparseValRow validates the sparse-core TLS against the detailed
// event-driven model (§5.1: "PyTorchSim achieved cycle errors of only
// 1.1-2.6% against the original SST-STONNE while achieving 16.5-27.4x
// speedups").
type SparseValRow struct {
	Workload  string
	Instances int
	TLSCycles int64
	RefCycles int64
	CycleErr  float64
	TLSWall   time.Duration // tile analysis once + Instances TOG replays
	RefWall   time.Duration // Instances detailed event-driven runs
}

// SparseValResult is the §5.1 validation table.
type SparseValResult struct{ Rows []SparseValRow }

func (r *SparseValResult) String() string {
	t := &Table{Header: []string{"workload", "insts", "TLS cycles", "ref cycles", "cycle err", "TLS wall", "ref wall", "speedup"}}
	for _, row := range r.Rows {
		t.Add(row.Workload, fmt.Sprintf("%d", row.Instances),
			fmt.Sprintf("%d", row.TLSCycles), fmt.Sprintf("%d", row.RefCycles),
			Pct(row.CycleErr),
			row.TLSWall.Round(time.Microsecond).String(), row.RefWall.Round(time.Microsecond).String(),
			Speedup(float64(row.RefWall)/float64(maxDur(row.TLSWall, time.Microsecond))))
	}
	var b strings.Builder
	b.WriteString("§5.1 validation — sparse-core TLS vs detailed event-driven model (95% sparsity, flat 100-cycle DRAM)\n")
	b.WriteString(t.String())
	b.WriteString("TLS wall = one offline tile analysis + per-instance TOG replay; ref re-simulates every product per instance.\n")
	return b.String()
}

// SparseValidation runs SpMSpM workloads through both paths. Each workload
// simulates several instances of the same kernel shape (the layers of a
// sparse network): TLS performs the functional tile analysis once and
// replays the TOG per instance (§3.8, §3.10), while the detailed reference
// simulates every multiplier and merge port, cycle by cycle, every time.
func SparseValidation(cfg npu.Config, quick bool) (*SparseValResult, error) {
	sizes := []int{256, 512}
	instances := 8
	if quick {
		sizes = []int{256}
		instances = 6
	}
	res := &SparseValResult{}
	memLat := int64(100)
	for _, n := range sizes {
		r := tensor.NewRNG(uint64(n))
		a := sparse.Random(r, n, n, 0.05)
		bm := sparse.Random(r, n, n, 0.05)

		// TLS: offline per-tile latencies once, then per-instance replay.
		start := time.Now()
		job, err := sparsecore.BuildTiledJob(fmt.Sprintf("spmspm%d", n), a, bm, 64, sparsecore.DefaultConfig(), 0)
		if err != nil {
			return nil, err
		}
		var tlsCycles int64
		for inst := 0; inst < instances; inst++ {
			s := togsim.NewFlatLatency(cfg, memLat)
			tr, err := s.Engine.Run([]*togsim.Job{{
				Name:  "sparse",
				TOGs:  []*tog.TOG{job.TOG},
				Bases: []map[string]uint64{job.Bases},
				Core:  0,
			}})
			if err != nil {
				return nil, err
			}
			tlsCycles = tr.Cycles
		}
		tlsWall := time.Since(start)

		// Reference: the event-driven detailed model, once per instance.
		start = time.Now()
		sim := sparsecore.EventSim{
			Cfg:        sparsecore.DefaultConfig(),
			MemLatency: memLat,
			LoadBW:     int64(cfg.Mem.Channels * cfg.Mem.BurstBytes),
			StoreBW:    int64(cfg.NoC.FlitBytes),
		}
		var ref int64
		for inst := 0; inst < instances; inst++ {
			c, _, err := sim.RunTiled(a, bm, 64)
			if err != nil {
				return nil, err
			}
			ref = c
		}
		refWall := time.Since(start)

		res.Rows = append(res.Rows, SparseValRow{
			Workload:  fmt.Sprintf("SpMSpM%d", n),
			Instances: instances,
			TLSCycles: tlsCycles,
			RefCycles: ref,
			CycleErr:  RelErr(tlsCycles, ref),
			TLSWall:   tlsWall,
			RefWall:   refWall,
		})
	}
	return res, nil
}
