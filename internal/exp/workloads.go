// Package exp implements the paper's evaluation (§4-§5): one driver per
// table/figure that builds the workloads, runs the simulators, and reports
// the rows/series the paper reports. The benchmark harness (bench_test.go)
// and the experiments command (cmd/experiments) both call these drivers.
package exp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GEMMRectGraph builds an MxKxN GEMM workload.
func GEMMRectGraph(m, k, n int) *graph.Graph {
	g := graph.New(fmt.Sprintf("GEMM(%dx%dx%d)", m, k, n))
	x := g.Input("x", m, k)
	w := g.Param("w", k, n)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, w.ID}, Shape: []int{m, n}})
	g.Outputs = []int{mm.ID}
	return g
}

// GEMMGraph builds the GEMM(N) kernel workload of §4.1: two square NxN
// matrices.
func GEMMGraph(n int) *graph.Graph {
	g := graph.New(fmt.Sprintf("GEMM(%d)", n))
	x := g.Input("x", n, n)
	w := g.Param("w", n, n)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, w.ID}, Shape: []int{n, n}})
	g.Outputs = []int{mm.ID}
	return g
}

// ConvSpec returns CONV0-3 of §4.1: 3x3 filters; output channels 64, 128,
// 256, 512; feature maps 56, 28, 14, 7; matching input/output channels.
func ConvSpec(idx, batch int) tensor.ConvShape {
	channels := []int{64, 128, 256, 512}
	fmaps := []int{56, 28, 14, 7}
	c := channels[idx]
	h := fmaps[idx]
	return tensor.ConvShape{N: batch, C: c, H: h, W: h, K: c, KH: 3, KW: 3, Stride: 1, Pad: 1}
}

// ConvGraph builds a standalone convolution workload.
func ConvGraph(name string, cs tensor.ConvShape) *graph.Graph {
	g := graph.New(name)
	x := g.Input("x", cs.N, cs.C, cs.H, cs.W)
	w := g.Param("w", cs.K, cs.C, cs.KH, cs.KW)
	cv := g.Add(&graph.Node{Op: graph.OpConv2D, Name: "conv", Inputs: []int{x.ID, w.ID},
		Conv: cs, Shape: []int{cs.N, cs.K, cs.OutH(), cs.OutW()}})
	g.Outputs = []int{cv.ID}
	return g
}

// LayerNormGraph builds the LN kernel workload (BERT-shaped rows).
func LayerNormGraph(rows, cols int) *graph.Graph {
	g := graph.New(fmt.Sprintf("LN(%dx%d)", rows, cols))
	x := g.Input("x", rows, cols)
	gam := g.Param("gamma", cols)
	bet := g.Param("beta", cols)
	ln := g.Add(&graph.Node{Op: graph.OpLayerNorm, Name: "ln", Inputs: []int{x.ID, gam.ID, bet.ID}, Shape: []int{rows, cols}})
	g.Outputs = []int{ln.ID}
	return g
}

// SoftmaxGraph builds the softmax kernel workload (attention-shaped rows).
func SoftmaxGraph(rows, cols int) *graph.Graph {
	g := graph.New(fmt.Sprintf("Softmax(%dx%d)", rows, cols))
	x := g.Input("x", rows, cols)
	sm := g.Add(&graph.Node{Op: graph.OpSoftmax, Name: "sm", Inputs: []int{x.ID}, Shape: []int{rows, cols}})
	g.Outputs = []int{sm.ID}
	return g
}

// Workload names a graph for the evaluation tables.
type Workload struct {
	Name  string
	Graph *graph.Graph
	// EndToEnd marks full models (baselines cannot express their vector
	// layers, so their error there is structural).
	EndToEnd bool
}

// KernelWorkloads returns the §4.1 kernel set. Quick mode caps GEMM at 512
// and uses CONV0/CONV2 only.
func KernelWorkloads(quick bool) []Workload {
	var out []Workload
	sizes := []int{128, 256, 512, 1024, 2048}
	if quick {
		sizes = []int{128, 256, 512}
	}
	for _, n := range sizes {
		out = append(out, Workload{Name: fmt.Sprintf("GEMM(%d)", n), Graph: GEMMGraph(n)})
	}
	convs := []int{0, 1, 2, 3}
	if quick {
		convs = []int{0, 2}
	}
	for _, i := range convs {
		cs := ConvSpec(i, 1)
		out = append(out, Workload{Name: fmt.Sprintf("CONV%d", i), Graph: ConvGraph(fmt.Sprintf("CONV%d", i), cs)})
	}
	out = append(out,
		Workload{Name: "LayerNorm", Graph: LayerNormGraph(512, 768)},
		Workload{Name: "Softmax", Graph: SoftmaxGraph(512, 512)},
	)
	return out
}

// ModelWorkloads returns the end-to-end models of §4.1. Quick mode uses a
// reduced-resolution ResNet-18 and a shortened BERT-base.
func ModelWorkloads(quick bool) []Workload {
	if quick {
		bert := nn.BERTBaseConfig(1, 128)
		bert.Layers = 4
		rc := nn.ResNet18Config(1)
		rc.InputHW = 112
		return []Workload{
			{Name: "ResNet-18(112px)", Graph: nn.ResNet(rc).Graph, EndToEnd: true},
			{Name: "BERT-base(4L,128)", Graph: nn.BERT(bert).Graph, EndToEnd: true},
		}
	}
	return []Workload{
		{Name: "ResNet-18", Graph: nn.ResNet(nn.ResNet18Config(1)).Graph, EndToEnd: true},
		{Name: "ResNet-50", Graph: nn.ResNet(nn.ResNet50Config(1)).Graph, EndToEnd: true},
		{Name: "BERT-base", Graph: nn.BERT(nn.BERTBaseConfig(1, 512)).Graph, EndToEnd: true},
		{Name: "BERT-large", Graph: nn.BERT(nn.BERTLargeConfig(1, 512)).Graph, EndToEnd: true},
	}
}
