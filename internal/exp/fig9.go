package exp

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// Fig9Result reports the chiplet weight-mapping study (§5.4): runtime of a
// partitioned GEMM under different tensor-to-chiplet mappings, normalized
// to a monolithic NPU.
type Fig9Result struct {
	Monolithic int64
	Best       int64
	Random     int64
	Worst      int64
	// Locality fractions observed by the fabric.
	BestLocal, RandomLocal, WorstLocal float64
}

func (r *Fig9Result) String() string {
	t := &Table{Header: []string{"mapping", "cycles", "normalized", "local traffic"}}
	norm := func(v int64) string { return fmt.Sprintf("%.2fx", float64(v)/float64(r.Monolithic)) }
	t.Add("monolithic", fmt.Sprintf("%d", r.Monolithic), "1.00x", "100%")
	t.Add("best", fmt.Sprintf("%d", r.Best), norm(r.Best), Pct(r.BestLocal))
	t.Add("random", fmt.Sprintf("%d", r.Random), norm(r.Random), Pct(r.RandomLocal))
	t.Add("worst", fmt.Sprintf("%d", r.Worst), norm(r.Worst), Pct(r.WorstLocal))
	var b strings.Builder
	b.WriteString("Fig. 9 — chiplet NPU weight-mapping (2 chiplets, narrow off-chip link)\n")
	b.WriteString(t.String())
	return b.String()
}

// Fig9 partitions an NxN GEMM into four quarter products O_ij = I_i @ W_j
// and maps them to a two-chiplet NPU under best / random / worst placements
// (§5.4), plus the monolithic baseline.
func Fig9(cfg npu.Config, quick bool) (*Fig9Result, error) {
	n := 1024
	if quick {
		n = 512
	}
	half := n / 2

	// Compile one quarter GEMM: (half x n) @ (n x half).
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	quarter := quarterGEMMGraph(half, n)
	comp, err := sim.Compile(quarter)
	if err != nil {
		return nil, err
	}
	outName := comp.OutputTensors[quarter.Outputs[0]]

	// The §5.4 machine expressed in the unified topology layer: the "pkg2"
	// preset splits the monolithic HBM stack across two single-core
	// packages joined by the paper's narrow link.
	topoCfg, err := topo.Preset("pkg2", cfg.Mem)
	if err != nil {
		return nil, err
	}

	// Tensor placement helper: bases for quarter (i, j) with the output on
	// package `outCh`.
	iBytes := uint64(half) * uint64(n) * 4
	wBytes := uint64(n) * uint64(half) * 4
	bases := func(i, j, outCh, idx int) map[string]uint64 {
		return map[string]uint64{
			"x":     topoCfg.PackageBase(i),
			"w":     topoCfg.PackageBase(j) + ((iBytes + 4095) &^ 4095),
			outName: topoCfg.PackageBase(outCh) + ((iBytes+wBytes+8191)&^4095 + uint64(idx)*uint64(half)*uint64(half)*4),
		}
	}
	mkJob := func(name string, coreID, i, j, outCh, idx int) *togsim.Job {
		return &togsim.Job{
			Name:  name,
			TOGs:  comp.TOGs,
			Bases: fillBases(len(comp.TOGs), bases(i, j, outCh, idx)),
			Core:  coreID,
			Src:   coreID,
		}
	}

	type mapping struct {
		name string
		jobs func() []*togsim.Job
	}
	mappings := []mapping{
		{"best", func() []*togsim.Job {
			// Core c computes O_c0, O_c1: inputs local, outputs local.
			return []*togsim.Job{
				mkJob("q00", 0, 0, 0, 0, 0), mkJob("q01", 0, 0, 1, 0, 1),
				mkJob("q10", 1, 1, 0, 1, 2), mkJob("q11", 1, 1, 1, 1, 3),
			}
		}},
		{"random", func() []*togsim.Job {
			// Half local, half remote.
			return []*togsim.Job{
				mkJob("q00", 0, 0, 0, 1, 0), mkJob("q11", 0, 1, 1, 0, 1),
				mkJob("q01", 1, 0, 1, 1, 2), mkJob("q10", 1, 1, 0, 0, 3),
			}
		}},
		{"worst", func() []*togsim.Job {
			// Core c works on the other chiplet's partitions and writes
			// remotely.
			return []*togsim.Job{
				mkJob("q10", 0, 1, 0, 1, 0), mkJob("q11", 0, 1, 1, 1, 1),
				mkJob("q00", 1, 0, 0, 0, 2), mkJob("q01", 1, 0, 1, 0, 3),
			}
		}},
	}

	res := &Fig9Result{}
	// Monolithic baseline: standard 2-core engine, full-bandwidth memory.
	monoCfg := cfg
	monoCfg.Cores = 2
	mono := togsim.NewStandard(monoCfg, togsim.SimpleNet, dram.FRFCFS)
	monoJobs := []*togsim.Job{
		{Name: "q00", TOGs: comp.TOGs, Bases: fillBases(len(comp.TOGs), map[string]uint64{"x": 0, "w": iBytes, outName: iBytes + wBytes}), Core: 0, Src: 0},
		{Name: "q01", TOGs: comp.TOGs, Bases: fillBases(len(comp.TOGs), map[string]uint64{"x": 0, "w": iBytes, outName: iBytes + wBytes + 1<<24}), Core: 0, Src: 0},
		{Name: "q10", TOGs: comp.TOGs, Bases: fillBases(len(comp.TOGs), map[string]uint64{"x": 1 << 26, "w": iBytes, outName: iBytes + wBytes + 2<<24}), Core: 1, Src: 1},
		{Name: "q11", TOGs: comp.TOGs, Bases: fillBases(len(comp.TOGs), map[string]uint64{"x": 1 << 26, "w": iBytes, outName: iBytes + wBytes + 3<<24}), Core: 1, Src: 1},
	}
	monoRes, err := mono.Engine.Run(monoJobs)
	if err != nil {
		return nil, err
	}
	res.Monolithic = monoRes.Cycles

	baseCfg := cfg
	baseCfg.Cores = 2
	for _, m := range mappings {
		fab := topo.NewFabric(topoCfg)
		eng := togsim.NewEngine(baseCfg, fab)
		r, err := eng.Run(m.jobs())
		if err != nil {
			return nil, fmt.Errorf("fig9: mapping %s: %w", m.name, err)
		}
		localFrac := float64(fab.LocalBytes) / float64(fab.LocalBytes+fab.RemoteBytes)
		switch m.name {
		case "best":
			res.Best, res.BestLocal = r.Cycles, localFrac
		case "random":
			res.Random, res.RandomLocal = r.Cycles, localFrac
		case "worst":
			res.Worst, res.WorstLocal = r.Cycles, localFrac
		}
	}
	return res, nil
}

// quarterGEMMGraph builds the (half x n) @ (n x half) quarter product.
func quarterGEMMGraph(half, n int) *graph.Graph {
	g := graph.New("quarter")
	x := g.Input("x", half, n)
	w := g.Param("w", n, half)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{half, half}})
	g.Outputs = []int{mm.ID}
	return g
}

func fillBases(n int, m map[string]uint64) []map[string]uint64 {
	out := make([]map[string]uint64, n)
	for i := range out {
		out[i] = m
	}
	return out
}
