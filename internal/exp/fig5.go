package exp

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/npu"
)

// Fig5Row is one workload's simulated cycle counts across simulators.
type Fig5Row struct {
	Workload string
	EndToEnd bool
	// Reference is the most detailed stack we have: TLS with the
	// cycle-accurate crossbar NoC and FR-FCFS DRAM. It stands in for the
	// real TPUv3 of Fig. 5 (see DESIGN.md substitutions).
	Reference int64
	// PyTorchSim is the default configuration under test (TLS-SN).
	PyTorchSim int64
	Analytical int64
	ScaleSim   int64
	MNPUSim    int64
	AccelSim   int64 // 0 when skipped (very slow on full models)
}

// Fig5Result is the accuracy-validation table.
type Fig5Result struct {
	Rows []Fig5Row
	// MAEs across workloads, per simulator (kernels only for baselines
	// that cannot run end-to-end vector ops — mirroring the paper's
	// fairness note under Fig. 5).
	MAEPyTorchSim float64
	MAEAnalytical float64
	MAEScaleSim   float64
	MAEMNPUSim    float64
	MAEAccelSim   float64
}

// Fig5 runs the accuracy validation. quick scales the workload set down.
func Fig5(cfg npu.Config, quick bool) (*Fig5Result, error) {
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	res := &Fig5Result{}
	workloads := append(KernelWorkloads(quick), ModelWorkloads(quick)...)

	var errSN, errAna, errSS, errMNP, errAcc []float64
	for _, w := range workloads {
		comp, err := sim.Compile(w.Graph)
		if err != nil {
			return nil, fmt.Errorf("fig5: compiling %s: %w", w.Name, err)
		}
		ref, err := sim.SimulateTLS(comp, core.CycleNet)
		if err != nil {
			return nil, fmt.Errorf("fig5: reference run of %s: %w", w.Name, err)
		}
		sn, err := sim.SimulateTLS(comp, core.SimpleNet)
		if err != nil {
			return nil, err
		}
		layers := baseline.ExtractLayers(w.Graph)
		ana := baseline.Analytical{Cfg: cfg}.Run(layers)
		ss := baseline.ScaleSim{Cfg: cfg}.Run(layers)
		mnp, err := baseline.MNPUSim{Cfg: cfg}.Run(layers)
		if err != nil {
			// mNPUsim rejects batch > 1; report zero like an unsupported run.
			mnp = 0
		}
		var acc int64
		runAccel := !w.EndToEnd || (!quick && w.Workload() == "ResNet-18")
		if runAccel {
			a := &baseline.AccelSim{Cfg: baseline.NPUEquivalentGPU(cfg)}
			acc, err = a.Run(layers)
			if err != nil {
				return nil, err
			}
		}
		row := Fig5Row{
			Workload:   w.Name,
			EndToEnd:   w.EndToEnd,
			Reference:  ref.Cycles,
			PyTorchSim: sn.Cycles,
			Analytical: ana,
			ScaleSim:   ss,
			MNPUSim:    mnp,
			AccelSim:   acc,
		}
		res.Rows = append(res.Rows, row)
		errSN = append(errSN, RelErr(sn.Cycles, ref.Cycles))
		errAna = append(errAna, RelErr(ana, ref.Cycles))
		errSS = append(errSS, RelErr(ss, ref.Cycles))
		if mnp > 0 {
			errMNP = append(errMNP, RelErr(mnp, ref.Cycles))
		}
		if acc > 0 {
			errAcc = append(errAcc, RelErr(acc, ref.Cycles))
		}
	}
	res.MAEPyTorchSim = MAE(errSN)
	res.MAEAnalytical = MAE(errAna)
	res.MAEScaleSim = MAE(errSS)
	res.MAEMNPUSim = MAE(errMNP)
	res.MAEAccelSim = MAE(errAcc)
	return res, nil
}

// Workload lets Fig5 check model names without exporting internals.
func (w Workload) Workload() string { return w.Name }

// String renders the Fig. 5 table.
func (r *Fig5Result) String() string {
	t := &Table{Header: []string{"workload", "reference(CN)", "PyTorchSim(SN)", "analytical", "scalesim", "mnpusim", "accelsim"}}
	cell := func(v int64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, row := range r.Rows {
		t.Add(row.Workload, cell(row.Reference), cell(row.PyTorchSim), cell(row.Analytical), cell(row.ScaleSim), cell(row.MNPUSim), cell(row.AccelSim))
	}
	var b strings.Builder
	b.WriteString("Fig. 5 — simulation accuracy (cycles; reference = TLS+CN detailed stack)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "MAE vs reference: PyTorchSim(SN)=%s analytical=%s scalesim=%s mnpusim=%s accelsim=%s\n",
		Pct(r.MAEPyTorchSim), Pct(r.MAEAnalytical), Pct(r.MAEScaleSim), Pct(r.MAEMNPUSim), Pct(r.MAEAccelSim))
	return b.String()
}
