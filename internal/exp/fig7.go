package exp

import (
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/sparse"
	"repro/internal/sparsecore"
	"repro/internal/tensor"
	"repro/internal/tog"
	"repro/internal/togsim"
)

// Fig7aResult reports the heterogeneous dense-sparse NPU study (§5.1):
// per-core latency alone (half bandwidth each) vs integrated (shared full
// bandwidth) under FR-FCFS.
type Fig7aResult struct {
	DenseSolo, DenseHetero   int64
	SparseSolo, SparseHetero int64
}

// DenseSpeedup is solo/hetero for the dense core (paper: ~1.23x).
func (r *Fig7aResult) DenseSpeedup() float64 {
	return float64(r.DenseSolo) / float64(r.DenseHetero)
}

// SparseSlowdown is hetero/solo for the sparse core (paper: ~1.4x).
func (r *Fig7aResult) SparseSlowdown() float64 {
	return float64(r.SparseHetero) / float64(r.SparseSolo)
}

func (r *Fig7aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7a — heterogeneous dense+sparse NPU (FR-FCFS shared DRAM)\n")
	fmt.Fprintf(&b, "dense  GEMM:   solo %d cycles -> hetero %d cycles (speedup %s)\n",
		r.DenseSolo, r.DenseHetero, Speedup(r.DenseSpeedup()))
	fmt.Fprintf(&b, "sparse SpMSpM: solo %d cycles -> hetero %d cycles (slowdown %s)\n",
		r.SparseSolo, r.SparseHetero, Speedup(r.SparseSlowdown()))
	return b.String()
}

// Fig7a runs the heterogeneous NPU study: a dense GEMM stream on an SA core
// and a 95%-sparse SpMSpM stream on a Flexagon-style sparse core. The
// baselines give each core a dedicated half-bandwidth memory; the
// heterogeneous NPU shares the full bandwidth between both.
func Fig7a(cfg npu.Config, quick bool) (*Fig7aResult, error) {
	// The dense stream must be bandwidth-hungry for the contention study: a
	// skinny GEMM streams a large weight matrix continuously (an LLM-style
	// projection layer), so its runtime tracks available bandwidth and its
	// row-hit-friendly bursts dominate the FR-FCFS queues.
	n := 512
	gk := 4096
	repeats := 6
	if quick {
		n = 256
		gk = 2048
		repeats = 4
	}
	// Dense job: (128 x gk) @ (gk x gk), repeated for steady state.
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	comp, err := sim.Compile(GEMMRectGraph(128, gk, gk))
	if err != nil {
		return nil, err
	}
	denseJob := func(coreID int) *togsim.Job {
		j := comp.Job("dense", coreID, 0)
		j.TOGs = repeatTOGs(j.TOGs, repeats)
		j.Bases = repeatBases(j.Bases, repeats)
		return j
	}
	// Sparse job: SpMSpM(n) at 95% sparsity.
	r := tensor.NewRNG(1)
	a := sparse.Random(r, n, n, 0.05)
	bm := sparse.Random(r, n, n, 0.05)
	spCfg := sparsecore.DefaultConfig()
	// CSR row fibres are strided slices of the full matrix; the stride is
	// deliberately not a multiple of the channel interleave so scattered
	// fibres spread across channels with poor row-buffer locality.
	spCfg.ScatterStride = 8224
	tiled, err := sparsecore.BuildTiledJob("spmspm", a, bm, 128, spCfg, 1<<32)
	if err != nil {
		return nil, err
	}
	sparseJob := func(coreID int) *togsim.Job {
		togs := repeatTOGs([]*tog.TOG{tiled.TOG}, repeats)
		bases := make([]map[string]uint64, repeats)
		for i := range bases {
			bases[i] = tiled.Bases
		}
		return &togsim.Job{Name: "sparse", TOGs: togs, Bases: bases, Core: coreID, Src: 1}
	}

	halfCfg := cfg
	halfCfg.Cores = 1
	halfCfg.Mem.Channels = cfg.Mem.Channels / 2

	run := func(c npu.Config, jobs []*togsim.Job) ([]togsim.JobResult, error) {
		s := togsim.NewStandard(c, togsim.SimpleNet, dram.FRFCFS)
		res, err := s.Engine.Run(jobs)
		if err != nil {
			return nil, err
		}
		return res.Jobs, nil
	}

	soloD, err := run(halfCfg, []*togsim.Job{denseJob(0)})
	if err != nil {
		return nil, err
	}
	soloS, err := run(halfCfg, []*togsim.Job{sparseJob(0)})
	if err != nil {
		return nil, err
	}
	hetCfg := cfg
	hetCfg.Cores = 2
	het, err := run(hetCfg, []*togsim.Job{denseJob(0), sparseJob(1)})
	if err != nil {
		return nil, err
	}
	return &Fig7aResult{
		DenseSolo:    soloD[0].End - soloD[0].Start,
		SparseSolo:   soloS[0].End - soloS[0].Start,
		DenseHetero:  het[0].End - het[0].Start,
		SparseHetero: het[1].End - het[1].Start,
	}, nil
}

// Fig7bResult reports the multi-model tenancy study (§5.2).
type Fig7bResult struct {
	BERTSolo, BERTCo     int64
	ResNetSolo, ResNetCo int64
	// Achieved DRAM bandwidth in bytes/cycle.
	BERTSoloBW, BERTCoBW     float64
	ResNetSoloBW, ResNetCoBW float64
}

// BERTChange is co/solo latency ratio (paper: ~0.72, a 28% reduction).
func (r *Fig7bResult) BERTChange() float64 { return float64(r.BERTCo) / float64(r.BERTSolo) }

// ResNetChange is co/solo latency ratio (paper: ~1.15).
func (r *Fig7bResult) ResNetChange() float64 { return float64(r.ResNetCo) / float64(r.ResNetSolo) }

func (r *Fig7bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7b — multi-model tenancy: BERT-base (b4) + ResNet-18 (b8)\n")
	fmt.Fprintf(&b, "BERT-base: solo %d -> co-located %d cycles (ratio %s); BW %.1f -> %.1f B/cycle\n",
		r.BERTSolo, r.BERTCo, Speedup(r.BERTChange()), r.BERTSoloBW, r.BERTCoBW)
	fmt.Fprintf(&b, "ResNet-18: solo %d -> co-located %d cycles (ratio %s); BW %.1f -> %.1f B/cycle\n",
		r.ResNetSolo, r.ResNetCo, Speedup(r.ResNetChange()), r.ResNetSoloBW, r.ResNetCoBW)
	return b.String()
}

// Fig7b runs the co-location study: solo runs get half the DRAM bandwidth
// (a static partition); co-located runs share the full bandwidth.
func Fig7b(cfg npu.Config, quick bool) (*Fig7bResult, error) {
	var bertGraph, resnetGraph Workload
	if quick {
		bc := nn.BERTBaseConfig(4, 128)
		bc.Layers = 2
		rc := nn.ResNet18Config(8)
		rc.InputHW = 64
		bertGraph = Workload{Name: "bert", Graph: nn.BERT(bc).Graph}
		resnetGraph = Workload{Name: "resnet", Graph: nn.ResNet(rc).Graph}
	} else {
		bertGraph = Workload{Name: "bert", Graph: nn.BERT(nn.BERTBaseConfig(4, 512)).Graph}
		resnetGraph = Workload{Name: "resnet", Graph: nn.ResNet(nn.ResNet18Config(8)).Graph}
	}
	sim := core.NewSimulator(cfg, compiler.DefaultOptions())
	bertComp, err := sim.Compile(bertGraph.Graph)
	if err != nil {
		return nil, err
	}
	resnetComp, err := sim.Compile(resnetGraph.Graph)
	if err != nil {
		return nil, err
	}

	halfCfg := cfg
	halfCfg.Cores = 1
	halfCfg.Mem.Channels = cfg.Mem.Channels / 2
	fullCfg := cfg
	fullCfg.Cores = 2

	type runOut struct {
		lat int64
		bw  float64
	}
	run := func(c npu.Config, jobs []*togsim.Job) ([]runOut, error) {
		s := togsim.NewStandard(c, togsim.SimpleNet, dram.FRFCFS)
		res, err := s.Engine.Run(jobs)
		if err != nil {
			return nil, err
		}
		var out []runOut
		for i, jr := range res.Jobs {
			dur := jr.End - jr.Start
			out = append(out, runOut{
				lat: dur,
				bw:  float64(s.Mem.Stats.BytesBySrc[jobs[i].Src]) / float64(dur),
			})
		}
		return out, nil
	}

	bSolo, err := run(halfCfg, []*togsim.Job{bertComp.Job("bert", 0, 0)})
	if err != nil {
		return nil, err
	}
	rSolo, err := run(halfCfg, []*togsim.Job{resnetComp.Job("resnet", 0, 1)})
	if err != nil {
		return nil, err
	}
	co, err := run(fullCfg, []*togsim.Job{
		bertComp.Job("bert", 0, 0),
		resnetComp.Job("resnet", 1, 1),
	})
	if err != nil {
		return nil, err
	}
	return &Fig7bResult{
		BERTSolo: bSolo[0].lat, BERTSoloBW: bSolo[0].bw,
		ResNetSolo: rSolo[0].lat, ResNetSoloBW: rSolo[0].bw,
		BERTCo: co[0].lat, BERTCoBW: co[0].bw,
		ResNetCo: co[1].lat, ResNetCoBW: co[1].bw,
	}, nil
}

func repeatTOGs(togs []*tog.TOG, n int) []*tog.TOG {
	var out []*tog.TOG
	for i := 0; i < n; i++ {
		out = append(out, togs...)
	}
	return out
}

func repeatBases(bases []map[string]uint64, n int) []map[string]uint64 {
	var out []map[string]uint64
	for i := 0; i < n; i++ {
		out = append(out, bases...)
	}
	return out
}
