package baseline

import (
	"bufio"
	"fmt"
	"os"
	"strconv"

	"repro/internal/npu"
)

// unbufferedWriter issues one write syscall per Fprintln, reproducing the
// original's per-access file traffic.
type unbufferedWriter struct{ f *os.File }

func (w unbufferedWriter) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w unbufferedWriter) Flush() error                { return nil }

// MNPUSim is the mNPUsim-class model: tile-by-tile execution where every
// tile's memory access addresses are first written to an intermediate trace
// file and then read back for the memory simulation — reproducing the
// file-based data flow the paper identifies as mNPUsim's bottleneck
// (§4.3). It supports GEMM/CONV only and batch size one.
type MNPUSim struct {
	Cfg npu.Config
	// TraceDir is where intermediate traces are staged ("" = os temp dir).
	TraceDir string
	// MemLatency is the fixed DRAM latency (no row-buffer model).
	MemLatency int64
}

// Run simulates the layers, returning total cycles. Layers from batch
// sizes > 1 are rejected like the original.
func (m MNPUSim) Run(layers []Layer) (int64, error) {
	var total int64
	for i, l := range layers {
		if l.Kind == KindConv && l.Conv.N > 1 {
			return 0, fmt.Errorf("baseline: mnpusim supports only batch size 1 (layer %d has N=%d)", i, l.Conv.N)
		}
		c, err := m.layer(l)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func (m MNPUSim) layer(l Layer) (int64, error) {
	core := m.Cfg.Core
	tile := core.SARows
	burst := int64(m.Cfg.Mem.BurstBytes)
	memLat := m.MemLatency
	if memLat == 0 {
		memLat = 60
	}
	bytesPerCycle := int64(m.Cfg.Mem.Channels * m.Cfg.Mem.BurstBytes)

	var cycles int64
	// Tile loops: for each (mo, no, ko) tile, stage its access addresses
	// through the trace file, then replay them against the latency model.
	for mo := 0; mo < l.M; mo += tile {
		for no := 0; no < l.N; no += tile {
			for ko := 0; ko < l.K; ko += tile {
				mt := minI(tile, l.M-mo)
				kt := minI(tile, l.K-ko)
				nt := minI(tile, l.N-no)

				f, err := os.CreateTemp(m.TraceDir, "mnpusim-trace-*.txt")
				if err != nil {
					return 0, err
				}
				// Like the original, each address is written to the trace
				// file individually (the "frequent filesystem access" the
				// paper identifies as mNPUsim's bottleneck, §4.3).
				w := unbufferedWriter{f}
				// A tile addresses.
				for r := 0; r < mt; r++ {
					rowBase := int64(mo+r)*int64(l.K)*4 + int64(ko)*4
					for b := int64(0); b < int64(kt)*4; b += burst {
						fmt.Fprintln(w, rowBase+b)
					}
				}
				// B tile addresses.
				bBase := int64(1) << 30
				for r := 0; r < kt; r++ {
					rowBase := bBase + int64(ko+r)*int64(l.N)*4 + int64(no)*4
					for b := int64(0); b < int64(nt)*4; b += burst {
						fmt.Fprintln(w, rowBase+b)
					}
				}
				// C tile writeback addresses.
				cBase := int64(1) << 31
				for r := 0; r < mt; r++ {
					rowBase := cBase + int64(mo+r)*int64(l.N)*4 + int64(no)*4
					for b := int64(0); b < int64(nt)*4; b += burst {
						fmt.Fprintln(w, rowBase+b)
					}
				}
				if err := w.Flush(); err != nil {
					f.Close()
					return 0, err
				}
				// Replay: read the trace back and run the latency model.
				if _, err := f.Seek(0, 0); err != nil {
					f.Close()
					return 0, err
				}
				sc := bufio.NewScanner(f)
				// Replay: every access walks the fixed-latency memory model
				// cycle by cycle (a single-access-in-flight pipeline per
				// access stream, like the original's per-access simulation).
				var memCycles int64
				outstanding := int64(0)
				for sc.Scan() {
					if _, err := strconv.ParseInt(sc.Text(), 10, 64); err != nil {
						f.Close()
						return 0, err
					}
					outstanding += burst
					for outstanding >= bytesPerCycle {
						outstanding -= bytesPerCycle
						memCycles++
					}
				}
				memCycles += memLat
				name := f.Name()
				f.Close()
				os.Remove(name)
				if err := sc.Err(); err != nil {
					return 0, err
				}
				computeCycles := ceil64(int64(mt)*int64(kt)*int64(nt), core.MACsPerCycle())
				// mNPUsim overlaps double-buffered DMAs with compute.
				tileCycles := memCycles
				if computeCycles > tileCycles {
					tileCycles = computeCycles
				}
				cycles += tileCycles
			}
		}
	}
	return cycles, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
