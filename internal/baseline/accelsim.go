package baseline

import (
	"fmt"

	"repro/internal/npu"
)

// GPUConfig describes the Accel-Sim-class GPU model: SIMT SMs executing
// warp instructions one at a time, with a per-SM L1 cache and a shared
// latency/bandwidth DRAM.
type GPUConfig struct {
	SMs             int
	WarpsPerSM      int // resident warp slots
	IssuePerCycle   int // warp instructions issued per SM per cycle
	FMALatency      int64
	SharedLatency   int64
	CacheLatency    int64
	DRAMLatency     int64
	CacheLineBytes  int
	CacheLinesPerSM int
	BytesPerCycle   int64 // DRAM bandwidth
	TileK           int   // K-step per shared-memory staging phase
}

// NPUEquivalentGPU scales GPU resources to the NPU's FLOPS and SRAM, as the
// paper does for its Accel-Sim comparison (§4.1).
func NPUEquivalentGPU(cfg npu.Config) GPUConfig {
	// Each SM retires IssuePerCycle warp-FMA instructions (32 MACs each).
	macsPerSM := int64(32 * 4)
	sms := int(cfg.Core.MACsPerCycle() / macsPerSM)
	if sms < 1 {
		sms = 1
	}
	return GPUConfig{
		SMs:             sms,
		WarpsPerSM:      16,
		IssuePerCycle:   4,
		FMALatency:      4,
		SharedLatency:   20,
		CacheLatency:    30,
		DRAMLatency:     200,
		CacheLineBytes:  128,
		CacheLinesPerSM: cfg.Core.SpadBytes / cfg.Cores / 128 / 64,
		BytesPerCycle:   int64(cfg.Mem.Channels * cfg.Mem.BurstBytes),
		TileK:           16,
	}
}

// AccelSim runs GEMM/CONV layers through the instruction-level GPU model.
// Every warp instruction is individually scheduled — the fidelity class
// that makes Accel-Sim slow (§2.1: "trace-driven simulators are relatively
// faster but still limited in speed due to modeling of instruction-level
// details").
type AccelSim struct {
	Cfg GPUConfig
	// Stats
	WarpInstrs int64
}

// Run simulates the layers and returns total GPU cycles.
func (a *AccelSim) Run(layers []Layer) (int64, error) {
	var total int64
	for _, l := range layers {
		c, err := a.gemm(l.M, l.K, l.N)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// warp is one resident warp's execution state: a tiny program counter over
// the generated instruction pattern for a 16x16-thread block GEMM.
type warp struct {
	k, tileK int
	phase    int // 0: global loads, 1..3: shared/shared/fma steps
	kStep    int
	readyAt  int64
	done     bool
	// global addresses for cache behaviour
	aAddr, bAddr uint64
}

type smState struct {
	warps      []warp
	tags       []uint64 // direct-mapped cache tags
	blocksLeft int
}

// gemm simulates an MxKxN GEMM: grid of 16x16 blocks, 8 warps each; per
// K-tile each warp issues 2 global loads, then per k-step 2 shared loads
// and 1 FMA.
func (a *AccelSim) gemm(M, K, N int) (int64, error) {
	cfg := a.Cfg
	if cfg.SMs <= 0 || cfg.WarpsPerSM <= 0 {
		return 0, fmt.Errorf("baseline: invalid GPU config %+v", cfg)
	}
	blocksM := (M + 15) / 16
	blocksN := (N + 15) / 16
	totalBlocks := blocksM * blocksN
	const warpsPerBlock = 8

	sms := make([]smState, cfg.SMs)
	for i := range sms {
		sms[i].tags = make([]uint64, cfg.CacheLinesPerSM)
	}
	// Distribute blocks round-robin.
	for b := 0; b < totalBlocks; b++ {
		sms[b%cfg.SMs].blocksLeft++
	}

	var memSlot int64 // next free DRAM bandwidth slot
	var cycle int64
	remaining := 0
	// Launch initial warps.
	for i := range sms {
		launch(&sms[i], cfg, warpsPerBlock, K)
		remaining += len(sms[i].warps)
	}
	activeBlocks := func() bool {
		for i := range sms {
			if len(sms[i].warps) > 0 || sms[i].blocksLeft > 0 {
				return true
			}
		}
		return false
	}

	lineMask := ^uint64(cfg.CacheLineBytes - 1)
	for activeBlocks() {
		cycle++
		if cycle > 4_000_000_000 {
			return 0, fmt.Errorf("baseline: accelsim did not converge")
		}
		for si := range sms {
			sm := &sms[si]
			issued := 0
			for wi := range sm.warps {
				if issued >= cfg.IssuePerCycle {
					break
				}
				w := &sm.warps[wi]
				if w.done || w.readyAt > cycle {
					continue
				}
				a.WarpInstrs++
				issued++
				switch w.phase {
				case 0, 1: // global load A/B for the current K-tile
					addr := w.aAddr
					if w.phase == 1 {
						addr = w.bAddr
					}
					addr += uint64(w.k * 4)
					line := addr & lineMask
					slot := int(line/uint64(cfg.CacheLineBytes)) % len(sm.tags)
					if sm.tags[slot] == line {
						w.readyAt = cycle + cfg.CacheLatency
					} else {
						sm.tags[slot] = line
						if memSlot < cycle {
							memSlot = cycle
						}
						memSlot += int64(cfg.CacheLineBytes) / cfg.BytesPerCycle
						w.readyAt = memSlot + cfg.DRAMLatency
					}
					w.phase++
				case 2, 3: // shared loads
					w.readyAt = cycle + cfg.SharedLatency
					w.phase++
				default: // FMA
					w.readyAt = cycle + cfg.FMALatency
					w.kStep++
					w.k++
					if w.k >= K {
						w.done = true
					} else if w.kStep >= w.tileK {
						w.kStep = 0
						w.phase = 0 // next K-tile: reload
					} else {
						w.phase = 2
					}
				}
			}
			// Retire finished warps; launch more blocks.
			alive := sm.warps[:0]
			for _, w := range sm.warps {
				if !w.done {
					alive = append(alive, w)
				}
			}
			sm.warps = alive
			if len(sm.warps) == 0 && sm.blocksLeft > 0 {
				launch(sm, cfg, warpsPerBlock, K)
			}
		}
	}
	return cycle, nil
}

// launch admits up to WarpsPerSM/warpsPerBlock blocks' warps.
func launch(sm *smState, cfg GPUConfig, warpsPerBlock, K int) {
	for sm.blocksLeft > 0 && len(sm.warps)+warpsPerBlock <= cfg.WarpsPerSM {
		sm.blocksLeft--
		base := uint64(sm.blocksLeft) << 20
		for i := 0; i < warpsPerBlock; i++ {
			sm.warps = append(sm.warps, warp{
				tileK: cfg.TileK,
				aAddr: base + uint64(i)<<14,
				bAddr: base + 1<<30 + uint64(i)<<14,
			})
		}
	}
}
