package baseline

import "repro/internal/npu"

// Analytical is the Timeloop/MAESTRO-class roofline model: per layer,
// compute cycles are MACs divided by peak MACs/cycle and memory cycles are
// minimum traffic divided by peak bandwidth; the layer takes the max of the
// two, and layers sum. It ignores structural hazards, SA fill/drain, tile
// dimension mismatch, DMA/compute overlap limits, DRAM row behaviour, and
// every vector operation — the inaccuracy sources Fig. 5 discusses.
type Analytical struct {
	Cfg npu.Config
}

// LayerCycles returns the roofline estimate for one layer.
func (a Analytical) LayerCycles(l Layer) int64 {
	compute := ceil64(l.MACs(), a.Cfg.Core.MACsPerCycle())
	bytesPerCycle := int64(a.Cfg.Mem.Channels * a.Cfg.Mem.BurstBytes)
	memory := ceil64(l.Bytes(), bytesPerCycle)
	if memory > compute {
		return memory
	}
	return compute
}

// Run estimates total cycles for a layer list.
func (a Analytical) Run(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		total += a.LayerCycles(l)
	}
	return total
}

func ceil64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
