package baseline

import (
	"repro/internal/npu"
	"repro/internal/systolic"
)

// ScaleSim is the SCALE-Sim-class model: systolic-array-aware analytical
// timing. Unlike the pure roofline, it walks the weight-stationary tile
// schedule and accounts the SA fill/drain per tile and double-buffered DMA
// overlap — but it still has no DRAM microarchitecture (fixed bandwidth, no
// row buffers), no vector unit, no NoC, and no multi-core contention.
type ScaleSim struct {
	Cfg npu.Config
}

// LayerCycles computes the tiled weight-stationary schedule for one layer.
func (s ScaleSim) LayerCycles(l Layer) int64 {
	core := s.Cfg.Core
	bytesPerCycle := int64(s.Cfg.Mem.Channels * s.Cfg.Mem.BurstBytes)
	kt := minI(l.K, core.SARows)
	nt := minI(l.N, core.SACols)
	mt := minI(l.M, 256)

	var total int64
	for mo := 0; mo < l.M; mo += mt {
		m := minI(mt, l.M-mo)
		for no := 0; no < l.N; no += nt {
			n := minI(nt, l.N-no)
			var compute, traffic int64
			for ko := 0; ko < l.K; ko += kt {
				k := minI(kt, l.K-ko)
				compute += systolic.GEMMTileCycles(m, k, n) / int64(core.NumSAs)
				traffic += 4 * (int64(m)*int64(k) + int64(k)*int64(n))
			}
			traffic += 4 * int64(m) * int64(n) // output writeback
			dma := ceil64(traffic, bytesPerCycle)
			// Double buffering overlaps DMA with compute.
			if dma > compute {
				total += dma
			} else {
				total += compute
			}
		}
	}
	return total
}

// Run sums the layer estimates.
func (s ScaleSim) Run(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		total += s.LayerCycles(l)
	}
	return total
}
