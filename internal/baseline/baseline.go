// Package baseline reimplements the comparison simulators of the paper's
// evaluation (§4.1, Table 1) at their characteristic fidelity points:
//
//   - Analytical: a Timeloop/MAESTRO-class roofline model (compute cycles =
//     MACs/PEs, memory cycles = bytes/BW, no microarchitectural detail).
//   - MNPUSim: an mNPUsim-class tile simulator — GEMM/CONV only, batch size
//     one, and per-access address traces staged through an intermediate
//     file (the file I/O the paper identifies as its speed bottleneck).
//   - AccelSim: an Accel-Sim-class trace-driven GPU simulator — SIMT warps
//     executed instruction by instruction on SM models with a simple cache
//     and latency/bandwidth memory, resources scaled to NPU-equivalent
//     FLOPS.
//
// All three consume the same layer list extracted from a captured graph
// (only the GEMM/CONV operators — like the originals, they cannot model
// vector operations such as softmax and normalization, which is the source
// of their end-to-end underestimation in Fig. 5).
package baseline

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// LayerKind tags a baseline-visible layer.
type LayerKind int

const (
	// KindGEMM is a plain matrix multiply.
	KindGEMM LayerKind = iota
	// KindConv is a 2-D convolution (lowered to implicit GEMM).
	KindConv
)

// Layer is the simplified layer description baseline simulators consume.
type Layer struct {
	Kind    LayerKind
	M, K, N int              // GEMM dims (conv: implicit-GEMM dims)
	Conv    tensor.ConvShape // valid when Kind == KindConv
}

// MACs returns multiply-accumulate count.
func (l Layer) MACs() int64 {
	return int64(l.M) * int64(l.K) * int64(l.N)
}

// Bytes returns the minimum DRAM traffic (read A, B once; write C once).
func (l Layer) Bytes() int64 {
	return 4 * (int64(l.M)*int64(l.K) + int64(l.K)*int64(l.N) + int64(l.M)*int64(l.N))
}

// ExtractLayers pulls the GEMM/CONV layers out of a captured graph,
// dropping everything the baselines cannot express (§4.1: "for other NPU
// simulators, we only considered GEMM, GEMV, and CONV operations").
func ExtractLayers(g *graph.Graph) []Layer {
	var out []Layer
	for _, n := range g.Nodes {
		switch n.Op {
		case graph.OpMatMul, graph.OpMatMulTA, graph.OpMatMulTB:
			var m, k, nn int
			a := g.Nodes[n.Inputs[0]]
			m, nn = n.Shape[0], n.Shape[1]
			if n.Op == graph.OpMatMulTA {
				k = a.Shape[0]
			} else {
				k = a.Shape[1]
			}
			out = append(out, Layer{Kind: KindGEMM, M: m, K: k, N: nn})
		case graph.OpConv2D:
			m, k, nn := n.Conv.GEMMDims()
			out = append(out, Layer{Kind: KindConv, M: m, K: k, N: nn, Conv: n.Conv})
		}
	}
	return out
}
