package baseline

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tensor"
)

func TestExtractLayers(t *testing.T) {
	g := graph.New("mix")
	x := g.Input("x", 8, 16)
	w := g.Param("w", 16, 8)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{8, 8}})
	sm := g.Add(&graph.Node{Op: graph.OpSoftmax, Inputs: []int{mm.ID}, Shape: []int{8, 8}})
	cs := tensor.ConvShape{N: 1, C: 3, H: 8, W: 8, K: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	xi := g.Input("xi", 1, 3, 8, 8)
	wf := g.Param("wf", 4, 3, 3, 3)
	cv := g.Add(&graph.Node{Op: graph.OpConv2D, Inputs: []int{xi.ID, wf.ID}, Conv: cs, Shape: []int{1, 4, 8, 8}})
	g.Outputs = []int{sm.ID, cv.ID}
	layers := ExtractLayers(g)
	// Softmax dropped; matmul and conv kept.
	if len(layers) != 2 {
		t.Fatalf("extracted %d layers, want 2", len(layers))
	}
	if layers[0].Kind != KindGEMM || layers[0].M != 8 || layers[0].K != 16 || layers[0].N != 8 {
		t.Fatalf("GEMM layer wrong: %+v", layers[0])
	}
	if layers[1].Kind != KindConv {
		t.Fatal("conv layer missing")
	}
	m, k, n := cs.GEMMDims()
	if layers[1].M != m || layers[1].K != k || layers[1].N != n {
		t.Fatalf("conv GEMM dims wrong: %+v", layers[1])
	}
}

func TestAnalyticalRoofline(t *testing.T) {
	cfg := npu.TPUv3Config()
	a := Analytical{Cfg: cfg}
	// Huge compute-bound GEMM: cycles ~ MACs/peak.
	big := Layer{Kind: KindGEMM, M: 2048, K: 2048, N: 2048}
	got := a.LayerCycles(big)
	want := big.MACs() / cfg.Core.MACsPerCycle()
	if got < want || got > want+want/10 {
		t.Fatalf("compute-bound roofline: got %d, want ~%d", got, want)
	}
	// Skinny memory-bound GEMM: cycles ~ bytes/BW.
	skinny := Layer{Kind: KindGEMM, M: 1, K: 8192, N: 8192}
	gotM := a.LayerCycles(skinny)
	wantM := skinny.Bytes() / int64(cfg.Mem.Channels*cfg.Mem.BurstBytes)
	if gotM < wantM || gotM > wantM+wantM/10 {
		t.Fatalf("memory-bound roofline: got %d, want ~%d", gotM, wantM)
	}
	// Sum over layers.
	if a.Run([]Layer{big, skinny}) != got+gotM {
		t.Fatal("Run must sum layers")
	}
}

func TestAnalyticalUnderestimatesRealTiming(t *testing.T) {
	// The roofline ignores fill/drain and per-row instruction overhead, so
	// it must be optimistic versus the SA tile closed form for small tiles.
	cfg := npu.SmallConfig()
	a := Analytical{Cfg: cfg}
	l := Layer{Kind: KindGEMM, M: 8, K: 8, N: 8}
	if a.LayerCycles(l) > 64 {
		t.Fatalf("analytic estimate unexpectedly high: %d", a.LayerCycles(l))
	}
}

func TestMNPUSimRunsAndUsesFiles(t *testing.T) {
	dir := t.TempDir()
	m := MNPUSim{Cfg: npu.SmallConfig(), TraceDir: dir}
	cycles, err := m.Run([]Layer{{Kind: KindGEMM, M: 32, K: 32, N: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Larger layer => more cycles.
	cycles2, err := m.Run([]Layer{{Kind: KindGEMM, M: 64, K: 64, N: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if cycles2 <= cycles {
		t.Fatalf("bigger GEMM must cost more: %d vs %d", cycles2, cycles)
	}
}

func TestMNPUSimRejectsBatch(t *testing.T) {
	m := MNPUSim{Cfg: npu.SmallConfig(), TraceDir: t.TempDir()}
	cs := tensor.ConvShape{N: 4, C: 3, H: 8, W: 8, K: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	gm, gk, gn := cs.GEMMDims()
	_, err := m.Run([]Layer{{Kind: KindConv, M: gm, K: gk, N: gn, Conv: cs}})
	if err == nil {
		t.Fatal("batch > 1 must be rejected")
	}
}

func TestMNPUSimSlowerThanAnalyticalWallClock(t *testing.T) {
	layers := []Layer{{Kind: KindGEMM, M: 128, K: 128, N: 128}}
	start := time.Now()
	Analytical{Cfg: npu.SmallConfig()}.Run(layers)
	tAna := time.Since(start)

	m := MNPUSim{Cfg: npu.SmallConfig(), TraceDir: t.TempDir()}
	start = time.Now()
	if _, err := m.Run(layers); err != nil {
		t.Fatal(err)
	}
	tM := time.Since(start)
	if tM <= tAna {
		t.Fatalf("file-staged simulation should be slower: %v vs %v", tM, tAna)
	}
}

func TestAccelSimGEMM(t *testing.T) {
	cfg := NPUEquivalentGPU(npu.SmallConfig())
	a := &AccelSim{Cfg: cfg}
	cycles, err := a.Run([]Layer{{Kind: KindGEMM, M: 64, K: 64, N: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Instruction count: blocks(4x4=16) x 8 warps x (K*3 + (K/16)*2).
	wantInstrs := int64(16 * 8 * (64*3 + 4*2))
	if a.WarpInstrs != wantInstrs {
		t.Fatalf("warp instrs = %d, want %d", a.WarpInstrs, wantInstrs)
	}
}

func TestAccelSimScalesWithProblem(t *testing.T) {
	cfg := NPUEquivalentGPU(npu.SmallConfig())
	run := func(n int) int64 {
		a := &AccelSim{Cfg: cfg}
		c, err := a.Run([]Layer{{Kind: KindGEMM, M: n, K: n, N: n}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	small, large := run(32), run(128)
	if large <= small*8 {
		t.Fatalf("O(n^3) scaling expected: %d vs %d", small, large)
	}
}

func TestNPUEquivalentGPUFLOPSMatch(t *testing.T) {
	npuCfg := npu.TPUv3Config()
	g := NPUEquivalentGPU(npuCfg)
	gpuMACs := int64(g.SMs) * int64(g.IssuePerCycle) * 32
	npuMACs := npuCfg.Core.MACsPerCycle()
	ratio := float64(gpuMACs) / float64(npuMACs)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("GPU FLOPS not matched to NPU: ratio %.2f", ratio)
	}
}

func TestScaleSimBetweenRooflineAndZero(t *testing.T) {
	cfg := npu.TPUv3Config()
	l := Layer{Kind: KindGEMM, M: 512, K: 512, N: 512}
	roof := Analytical{Cfg: cfg}.LayerCycles(l)
	ss := ScaleSim{Cfg: cfg}.LayerCycles(l)
	// SA fill/drain makes the systolic-aware estimate strictly higher than
	// the roofline on square GEMMs.
	if ss <= roof {
		t.Fatalf("ScaleSim (%d) should exceed the roofline (%d)", ss, roof)
	}
	// But it must stay within a small factor (it is still analytical).
	if ss > roof*10 {
		t.Fatalf("ScaleSim (%d) implausibly high vs roofline (%d)", ss, roof)
	}
}

func TestScaleSimScalesWithTiles(t *testing.T) {
	cfg := npu.TPUv3Config()
	small := ScaleSim{Cfg: cfg}.LayerCycles(Layer{Kind: KindGEMM, M: 128, K: 128, N: 128})
	big := ScaleSim{Cfg: cfg}.LayerCycles(Layer{Kind: KindGEMM, M: 1024, K: 1024, N: 1024})
	if big < small*64 {
		t.Fatalf("8x dims should cost >= 64x tiles-worth: %d vs %d", big, small)
	}
}
