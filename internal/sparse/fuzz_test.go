package sparse

import (
	"testing"

	"repro/internal/tensor"
)

// The native fuzz targets promote the package's testing/quick properties:
// the same seed-driven bodies run under quick.Check in the unit suite, over
// the checked-in corpus (testdata/fuzz) in every plain `go test`, and under
// coverage-guided mutation via `go test -fuzz` / `make fuzz-smoke`.

// propDenseRoundTrip: CSR conversion is lossless for any density pattern.
func propDenseRoundTrip(seed uint64) bool {
	r := tensor.NewRNG(seed)
	rows, cols := 1+r.Intn(12), 1+r.Intn(12)
	d := tensor.New(rows, cols)
	for i := range d.Data {
		if r.Float64() < 0.3 {
			d.Data[i] = float32(r.Norm())
		}
	}
	return tensor.AllClose(FromDense(d).ToDense(), d, 0, 0)
}

// propSpMM: sparse-dense multiply matches the dense product.
func propSpMM(seed uint64) bool {
	r := tensor.NewRNG(seed)
	m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
	a := Random(r, m, k, 0.4)
	b := tensor.RandNormal(r, 0, 1, k, n)
	return tensor.AllClose(SpMM(a, b), tensor.MatMul(a.ToDense(), b), 1e-4, 1e-4)
}

func FuzzDenseRoundTrip(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !propDenseRoundTrip(seed) {
			t.Fatalf("FromDense/ToDense round trip lost values (seed %d)", seed)
		}
	})
}

func FuzzSpMM(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !propSpMM(seed) {
			t.Fatalf("SpMM diverges from dense product (seed %d)", seed)
		}
	})
}
