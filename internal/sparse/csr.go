// Package sparse implements CSR/CSC sparse matrices and reference
// sparse-matrix multiplication kernels (SpMM, SpMSpM). These are the numeric
// substrate for the heterogeneous dense-sparse NPU case study (§5.1 of the
// paper) and for data-dependent tile latencies in TLS.
package sparse

import (
	"fmt"

	"repro/internal/tensor"
)

// CSR is a compressed-sparse-row float32 matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32   // len Rows+1
	ColIdx     []int32   // len NNZ
	Val        []float32 // len NNZ
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns NNZ / (Rows*Cols).
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// RowNNZ returns the number of non-zeros in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// FromDense converts a dense 2-D tensor to CSR, dropping exact zeros.
func FromDense(t *tensor.Tensor) *CSR {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("sparse: FromDense requires a 2-D tensor, got %v", t.Shape))
	}
	rows, cols := t.Shape[0], t.Shape[1]
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := t.Data[r*cols+c]
			if v != 0 {
				m.ColIdx = append(m.ColIdx, int32(c))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[r+1] = int32(len(m.Val))
	}
	return m
}

// ToDense converts back to a dense tensor.
func (m *CSR) ToDense() *tensor.Tensor {
	out := tensor.New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out.Data[r*m.Cols+int(m.ColIdx[i])] = m.Val[i]
		}
	}
	return out
}

// Random returns a CSR matrix of the given shape where each element is
// non-zero with probability density; non-zero values are N(0,1).
func Random(r *tensor.RNG, rows, cols int, density float64) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				m.ColIdx = append(m.ColIdx, int32(j))
				v := float32(r.Norm())
				if v == 0 {
					v = 1
				}
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// Transpose returns m^T in CSR form (equivalently, m in CSC form).
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int32, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float32, m.NNZ()),
	}
	// Count entries per output row (= input column).
	counts := make([]int32, m.Cols)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] = t.RowPtr[i] + counts[i]
	}
	next := make([]int32, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			dst := next[c]
			t.ColIdx[dst] = int32(r)
			t.Val[dst] = m.Val[i]
			next[c]++
		}
	}
	return t
}

// SubMatrix extracts the dense-coordinates block [r0:r1) x [c0:c1) as a new
// CSR matrix (tile extraction for tiled sparse kernels).
func (m *CSR) SubMatrix(r0, r1, c0, c1 int) *CSR {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("sparse: SubMatrix bounds [%d:%d)x[%d:%d) invalid for %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	sub := &CSR{Rows: r1 - r0, Cols: c1 - c0, RowPtr: make([]int32, r1-r0+1)}
	for r := r0; r < r1; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := int(m.ColIdx[i])
			if c >= c0 && c < c1 {
				sub.ColIdx = append(sub.ColIdx, int32(c-c0))
				sub.Val = append(sub.Val, m.Val[i])
			}
		}
		sub.RowPtr[r-r0+1] = int32(len(sub.Val))
	}
	return sub
}

// SpMM multiplies sparse m by dense d (Rows x Cols) x (Cols x N) -> dense.
func SpMM(m *CSR, d *tensor.Tensor) *tensor.Tensor {
	if d.Rank() != 2 || d.Shape[0] != m.Cols {
		panic(fmt.Sprintf("sparse: SpMM dims mismatch %dx%d x %v", m.Rows, m.Cols, d.Shape))
	}
	n := d.Shape[1]
	out := tensor.New(m.Rows, n)
	for r := 0; r < m.Rows; r++ {
		orow := out.Data[r*n : (r+1)*n]
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			k := int(m.ColIdx[i])
			v := m.Val[i]
			drow := d.Data[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += v * drow[j]
			}
		}
	}
	return out
}

// SpMSpM multiplies two sparse matrices using a row-wise (Gustavson)
// formulation and returns the sparse product. It also serves as the
// functional reference for the sparse-core simulator.
func SpMSpM(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpMSpM dims mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int32, a.Rows+1)}
	acc := make([]float32, b.Cols)
	touched := make([]int32, 0, b.Cols)
	seen := make([]bool, b.Cols)
	for r := 0; r < a.Rows; r++ {
		touched = touched[:0]
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			k := int(a.ColIdx[i])
			av := a.Val[i]
			for j := b.RowPtr[k]; j < b.RowPtr[k+1]; j++ {
				c := b.ColIdx[j]
				if !seen[c] {
					seen[c] = true
					touched = append(touched, c)
				}
				acc[c] += av * b.Val[j]
			}
		}
		// Emit in ascending column order to keep canonical CSR.
		sortInt32(touched)
		for _, c := range touched {
			if acc[c] != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, acc[c])
			}
			acc[c] = 0
			seen[c] = false
		}
		out.RowPtr[r+1] = int32(len(out.Val))
	}
	return out
}

// MultCount returns the number of scalar multiplications an outer-product
// SpMSpM of a x b performs: sum over k of nnz(a[:,k]) * nnz(b[k,:]).
// This is the data-dependent quantity that drives sparse tile latency.
func MultCount(a, b *CSR) int64 {
	if a.Cols != b.Rows {
		panic("sparse: MultCount dims mismatch")
	}
	colNNZ := make([]int64, a.Cols)
	for _, c := range a.ColIdx {
		colNNZ[c]++
	}
	var total int64
	for k := 0; k < a.Cols; k++ {
		total += colNNZ[k] * int64(b.RowNNZ(k))
	}
	return total
}

func sortInt32(s []int32) {
	// Insertion sort: touched lists are short for the sparsities we model.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
