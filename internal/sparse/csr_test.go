package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	// Property body shared with FuzzDenseRoundTrip (fuzz_test.go).
	if err := quick.Check(propDenseRoundTrip, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRInvariants(t *testing.T) {
	r := tensor.NewRNG(1)
	m := Random(r, 20, 30, 0.2)
	if len(m.RowPtr) != m.Rows+1 {
		t.Fatalf("RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.Rows]) != m.NNZ() {
		t.Fatal("RowPtr must start at 0 and end at NNZ")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatal("RowPtr must be non-decreasing")
		}
		prev := int32(-1)
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			c := m.ColIdx[j]
			if c <= prev || int(c) >= m.Cols {
				t.Fatalf("row %d columns not strictly ascending / in range", i)
			}
			prev = c
		}
	}
}

func TestRandomDensity(t *testing.T) {
	r := tensor.NewRNG(2)
	m := Random(r, 200, 200, 0.05)
	d := m.Density()
	if d < 0.03 || d > 0.07 {
		t.Fatalf("density = %g, want ~0.05", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m := Random(r, 1+r.Intn(15), 1+r.Intn(15), 0.3)
		tt := m.Transpose().Transpose()
		return tensor.AllClose(tt.ToDense(), m.ToDense(), 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	r := tensor.NewRNG(3)
	m := Random(r, 7, 11, 0.4)
	want := tensor.Transpose2D(m.ToDense())
	got := m.Transpose().ToDense()
	if !tensor.AllClose(got, want, 0, 0) {
		t.Fatal("Transpose disagrees with dense transpose")
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	// Property body shared with FuzzSpMM (fuzz_test.go).
	if err := quick.Check(propSpMM, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMSpMMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := Random(r, m, k, 0.4)
		b := Random(r, k, n, 0.4)
		got := SpMSpM(a, b).ToDense()
		want := tensor.MatMul(a.ToDense(), b.ToDense())
		return tensor.AllClose(got, want, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatrix(t *testing.T) {
	r := tensor.NewRNG(5)
	m := Random(r, 16, 16, 0.3)
	sub := m.SubMatrix(4, 12, 2, 10)
	d := m.ToDense()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if sub.ToDense().At(i, j) != d.At(i+4, j+2) {
				t.Fatalf("SubMatrix element (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestSubMatrixTilingCoversAll(t *testing.T) {
	// Reassembling 4x4 tiles of the matrix must reproduce the whole matrix.
	r := tensor.NewRNG(6)
	m := Random(r, 8, 8, 0.5)
	full := m.ToDense()
	re := tensor.New(8, 8)
	for r0 := 0; r0 < 8; r0 += 4 {
		for c0 := 0; c0 < 8; c0 += 4 {
			sub := m.SubMatrix(r0, r0+4, c0, c0+4).ToDense()
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					re.Set(sub.At(i, j), r0+i, c0+j)
				}
			}
		}
	}
	if !tensor.AllClose(re, full, 0, 0) {
		t.Fatal("tiling round trip failed")
	}
}

func TestMultCountMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		k := 1 + r.Intn(12)
		a := Random(r, 1+r.Intn(12), k, 0.3)
		b := Random(r, k, 1+r.Intn(12), 0.3)
		// Brute force: for every (i,k) nnz in a, count nnz in row k of b.
		var want int64
		for i := 0; i < a.Rows; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				want += int64(b.RowNNZ(int(a.ColIdx[p])))
			}
		}
		return MultCount(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRowNNZSumsToNNZ(t *testing.T) {
	r := tensor.NewRNG(7)
	m := Random(r, 33, 17, 0.25)
	total := 0
	for i := 0; i < m.Rows; i++ {
		total += m.RowNNZ(i)
	}
	if total != m.NNZ() {
		t.Fatalf("sum RowNNZ = %d, NNZ = %d", total, m.NNZ())
	}
}

func TestSpMSpMZeroMatrix(t *testing.T) {
	a := &CSR{Rows: 3, Cols: 3, RowPtr: make([]int32, 4)}
	r := tensor.NewRNG(8)
	b := Random(r, 3, 3, 0.5)
	out := SpMSpM(a, b)
	if out.NNZ() != 0 {
		t.Fatalf("zero x anything must be zero, got %d nnz", out.NNZ())
	}
}
