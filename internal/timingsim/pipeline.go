// Package timingsim is the cycle-level NPU core timing model (the paper's
// extended Gem5 in-order pipeline). It replays the dynamic instruction
// stream produced by the functional simulator through a scoreboarded
// in-order pipeline with per-unit occupancy (scalar ALU, FPU, vector units,
// SFU, scratchpad ports) and the systolic-array ready-time model, producing
// the deterministic tile compute latencies recorded in the TOG (§3.8).
package timingsim

import (
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/systolic"
)

// regFile identifies a register file for scoreboard dependencies.
type regFile uint8

const (
	fileX regFile = iota
	fileF
	fileV
)

type regRef struct {
	file regFile
	idx  uint8
}

// Pipeline is a single-issue, in-order core timing model with a scoreboard.
// Instructions issue in order when their operands and functional unit are
// ready; completion latencies depend on the unit and the active vector
// length.
type Pipeline struct {
	cfg npu.CoreConfig

	xReady [32]int64
	fReady [32]int64
	vReady [32]int64

	unitFree  [8]int64 // indexed by isa.Class
	lastIssue int64
	cycles    int64 // completion time of the latest instruction

	// Per-class issue slots: the core issues in order, but instructions
	// bound for different functional units may share a cycle (the VLIW-
	// style parallel scalar/vector/matrix issue of TPU-like cores, §3.4).
	slotCycle [8]int64
	slotCount [8]int

	sa *systolic.Timing

	// BranchPenalty is the redirect penalty of a taken branch (cycles).
	BranchPenalty int64

	// Stats.
	Issued    int64
	StallRAW  int64 // cycles lost waiting on operands
	StallUnit int64 // cycles lost waiting on busy units
	ClassBusy [8]int64
	// ClassOps counts retired instructions per class (SA pushes/pops under
	// ClassSA). ClassOps[isa.ClassSFU] is the SFU activity counter the
	// energy model prices per op at ILS level.
	ClassOps [8]int64
}

// NewPipeline returns a timing model for the given core configuration.
func NewPipeline(cfg npu.CoreConfig) *Pipeline {
	return &Pipeline{
		cfg:           cfg,
		sa:            systolic.NewTiming(cfg.SARows, cfg.SACols, cfg.DesFIFORows),
		BranchPenalty: 3,
	}
}

// Cycles returns the cycle at which all issued instructions have completed.
func (p *Pipeline) Cycles() int64 { return p.cycles }

// classIssueCap is how many instructions of each class may issue in the
// same cycle (independent decode slots per functional unit).
var classIssueCap = [8]int{
	isa.ClassScalar:    2,
	isa.ClassScalarMem: 1,
	isa.ClassFloat:     1,
	isa.ClassVector:    1,
	isa.ClassVectorMem: 2, // two scratchpad ports
	isa.ClassSFU:       1,
	isa.ClassDMA:       1,
	isa.ClassSA:        2, // serializer push + deserializer pop ports
}

// Consume accounts one dynamically executed instruction.
func (p *Pipeline) Consume(e funcsim.TraceEvent) {
	in := e.Instr
	class := isa.ClassOf(in.Op)

	// In-order issue: never before the previous instruction's issue cycle,
	// but same-cycle issue to a different (or multi-slot) unit is allowed.
	issue := p.lastIssue

	// Operand dependencies (RAW and WAW via dest ready times).
	opsReady := issue
	for _, r := range readRegs(in) {
		if t := p.readyTime(r); t > opsReady {
			opsReady = t
		}
	}
	for _, r := range writeRegs(in) {
		if t := p.readyTime(r); t > opsReady {
			opsReady = t // WAW: do not complete before prior writer
		}
	}
	p.StallRAW += opsReady - issue
	issue = opsReady

	// Structural hazard: functional unit availability.
	if t := p.unitFree[class]; t > issue {
		p.StallUnit += t - issue
		issue = t
	}

	// Per-class issue slot availability.
	cap := classIssueCap[class]
	if cap < 1 {
		cap = 1
	}
	if p.slotCycle[class] == issue && p.slotCount[class] >= cap {
		issue++
	}

	var complete int64
	switch in.Op {
	case isa.OpWVPUSH:
		complete = p.sa.PushWeight(issue)
	case isa.OpIVPUSH:
		complete = p.sa.PushInput(issue)
	case isa.OpVPOP:
		complete = p.sa.Pop(issue)
	default:
		lat, occ := p.latency(in, e.VL)
		complete = issue + lat
		p.unitFree[class] = issue + occ
		p.ClassBusy[class] += occ
	}

	// Writeback.
	for _, r := range writeRegs(in) {
		p.setReady(r, complete)
	}

	if p.slotCycle[class] != issue {
		p.slotCycle[class] = issue
		p.slotCount[class] = 0
	}
	p.slotCount[class]++
	p.lastIssue = issue
	if isa.IsBranch(in.Op) && e.Taken {
		p.lastIssue = issue + p.BranchPenalty
	}
	if complete > p.cycles {
		p.cycles = complete
	}
	p.Issued++
	p.ClassOps[class]++
}

// latency returns (result latency, unit occupancy) for a non-SA instruction.
func (p *Pipeline) latency(in isa.Instr, vl int) (lat, occ int64) {
	c := p.cfg
	switch isa.ClassOf(in.Op) {
	case isa.ClassScalar:
		return int64(c.ScalarLatency), 1
	case isa.ClassScalarMem:
		return int64(c.MemLatency), 1
	case isa.ClassFloat:
		if in.Op == isa.OpFDIV || in.Op == isa.OpFSQRT {
			return int64(c.FloatLatency) * 4, int64(c.FloatLatency) * 4 // unpipelined
		}
		return int64(c.FloatLatency), 1
	case isa.ClassVector:
		occ = ceilDiv(vl, c.VectorThroughput())
		if in.Op == isa.OpVREDSUM || in.Op == isa.OpVREDMAX {
			// Tree reduction: log2(lanes) extra stages.
			return int64(c.VectorLatency) + occ - 1 + int64(log2(c.LanesPerUnit)+log2(c.NumVectorUnits)), occ
		}
		if in.Op == isa.OpVDIV {
			return int64(c.VectorLatency)*4 + occ - 1, occ * 4
		}
		return int64(c.VectorLatency) + occ - 1, occ
	case isa.ClassVectorMem:
		occ = ceilDiv(vl, c.VectorThroughput())
		if in.Op == isa.OpVLSE32 || in.Op == isa.OpVSSE32 {
			occ *= 2 // strided access halves scratchpad throughput
		}
		return int64(c.MemLatency) + occ - 1, occ
	case isa.ClassSFU:
		// SFU has a quarter of the vector ALU throughput.
		occ = ceilDiv(vl*4, c.VectorThroughput())
		return int64(c.SFULatency) + occ - 1, occ
	case isa.ClassDMA:
		// In kernel-timing mode DMAs are ignored (§3.8): the Gem5 analog
		// measures only the deterministic compute latency; DMA time is
		// modelled online by TOGSim.
		return 1, 1
	default:
		return 1, 1
	}
}

func (p *Pipeline) readyTime(r regRef) int64 {
	switch r.file {
	case fileX:
		if r.idx == 0 {
			return 0
		}
		return p.xReady[r.idx]
	case fileF:
		return p.fReady[r.idx]
	default:
		return p.vReady[r.idx]
	}
}

func (p *Pipeline) setReady(r regRef, t int64) {
	switch r.file {
	case fileX:
		if r.idx != 0 {
			p.xReady[r.idx] = t
		}
	case fileF:
		p.fReady[r.idx] = t
	default:
		p.vReady[r.idx] = t
	}
}

// readRegs returns the registers an instruction reads.
func readRegs(in isa.Instr) []regRef {
	switch in.Op {
	case isa.OpADDI, isa.OpSLLI, isa.OpSRLI:
		return []regRef{{fileX, in.Rs1}}
	case isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE:
		return []regRef{{fileX, in.Rs1}, {fileX, in.Rs2}}
	case isa.OpLUI, isa.OpJAL, isa.OpHALT, isa.OpFLI:
		return nil
	case isa.OpLW, isa.OpFLW:
		return []regRef{{fileX, in.Rs1}}
	case isa.OpSW:
		return []regRef{{fileX, in.Rs1}, {fileX, in.Rs2}}
	case isa.OpFSW:
		return []regRef{{fileX, in.Rs1}, {fileF, in.Rs2}}
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFMIN, isa.OpFMAX:
		return []regRef{{fileF, in.Rs1}, {fileF, in.Rs2}}
	case isa.OpFSQRT:
		return []regRef{{fileF, in.Rs1}}
	case isa.OpFMVXF:
		return []regRef{{fileF, in.Rs1}}
	case isa.OpFMVFX, isa.OpSETVL:
		return []regRef{{fileX, in.Rs1}}
	case isa.OpVLE32:
		return []regRef{{fileX, in.Rs1}}
	case isa.OpVSE32:
		return []regRef{{fileX, in.Rs1}, {fileV, in.Rs2}}
	case isa.OpVLSE32:
		return []regRef{{fileX, in.Rs1}, {fileX, in.Rs2}}
	case isa.OpVSSE32:
		return []regRef{{fileX, in.Rs1}, {fileX, in.Rs2}, {fileV, in.Funct}}
	case isa.OpVADD, isa.OpVSUB, isa.OpVMUL, isa.OpVDIV, isa.OpVMAX, isa.OpVMIN:
		return []regRef{{fileV, in.Rs1}, {fileV, in.Rs2}}
	case isa.OpVMACC:
		return []regRef{{fileV, in.Rd}, {fileV, in.Rs1}, {fileV, in.Rs2}}
	case isa.OpVADDVF, isa.OpVSUBVF, isa.OpVRSUBVF, isa.OpVMULVF, isa.OpVMAXVF:
		return []regRef{{fileV, in.Rs1}, {fileF, in.Rs2}}
	case isa.OpVMACCVF:
		return []regRef{{fileV, in.Rd}, {fileV, in.Rs1}, {fileF, in.Rs2}}
	case isa.OpVBCAST:
		return []regRef{{fileF, in.Rs1}}
	case isa.OpVMV, isa.OpVREDSUM, isa.OpVREDMAX, isa.OpSFU:
		return []regRef{{fileV, in.Rs1}}
	case isa.OpCONFIG, isa.OpMVIN, isa.OpMVOUT:
		return []regRef{{fileX, in.Rs1}, {fileX, in.Rs2}}
	case isa.OpWAITDMA:
		return []regRef{{fileX, in.Rs1}}
	case isa.OpWVPUSH, isa.OpIVPUSH:
		return []regRef{{fileV, in.Rs1}}
	case isa.OpVPOP:
		return nil
	default:
		return nil
	}
}

// writeRegs returns the registers an instruction writes.
func writeRegs(in isa.Instr) []regRef {
	switch in.Op {
	case isa.OpADDI, isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpSLLI, isa.OpSRLI,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpLUI, isa.OpJAL, isa.OpLW,
		isa.OpFMVXF, isa.OpSETVL:
		return []regRef{{fileX, in.Rd}}
	case isa.OpFLW, isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFSQRT,
		isa.OpFMIN, isa.OpFMAX, isa.OpFLI, isa.OpFMVFX, isa.OpVREDSUM, isa.OpVREDMAX:
		return []regRef{{fileF, in.Rd}}
	case isa.OpVLE32, isa.OpVLSE32, isa.OpVADD, isa.OpVSUB, isa.OpVMUL, isa.OpVDIV,
		isa.OpVMAX, isa.OpVMIN, isa.OpVMACC, isa.OpVADDVF, isa.OpVSUBVF,
		isa.OpVRSUBVF, isa.OpVMULVF, isa.OpVMAXVF, isa.OpVMACCVF,
		isa.OpVBCAST, isa.OpVMV, isa.OpSFU, isa.OpVPOP:
		return []regRef{{fileV, in.Rd}}
	default:
		return nil
	}
}

func ceilDiv(a, b int) int64 {
	if b <= 0 {
		return int64(a)
	}
	return int64((a + b - 1) / b)
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
