package timingsim

import (
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/npu"
)

// Result summarizes one kernel timing measurement.
type Result struct {
	Cycles      int64
	Instrs      int64
	StallRAW    int64
	StallUnit   int64
	ClassBusy   [8]int64
	ClassOps    [8]int64
	DMABytesIn  int64
	DMABytesOut int64
}

// MeasureKernel runs a compiled kernel through the functional simulator with
// the timing pipeline attached, returning the deterministic compute cycle
// count (this is the offline ILS pass that produces TOG compute-node
// latencies, Table 2: "TOG generation"). setup, when non-nil, initializes
// core state (e.g. writes operand tensors into DRAM) before execution.
func MeasureKernel(cfg npu.CoreConfig, p *isa.Program, setup func(*funcsim.Core)) (Result, error) {
	core := funcsim.NewCore(cfg, npu.NewPagedMem())
	if setup != nil {
		setup(core)
	}
	pipe := NewPipeline(cfg)
	core.Trace = pipe.Consume
	n, err := core.Run(p)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:      pipe.Cycles(),
		Instrs:      n,
		StallRAW:    pipe.StallRAW,
		StallUnit:   pipe.StallUnit,
		ClassBusy:   pipe.ClassBusy,
		ClassOps:    pipe.ClassOps,
		DMABytesIn:  core.DMABytesIn,
		DMABytesOut: core.DMABytesOut,
	}, nil
}
