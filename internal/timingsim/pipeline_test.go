package timingsim

import (
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/systolic"
	"repro/internal/tensor"
)

func measureSrc(t *testing.T, src string, setup func(*funcsim.Core)) Result {
	t.Helper()
	p, err := isa.Assemble("k", src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasureKernel(npu.SmallConfig().Core, p, setup)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIndependentScalarOpsPipelineAtOnePerCycle(t *testing.T) {
	r := measureSrc(t, `
		addi x1, x0, 1
		addi x2, x0, 2
		addi x3, x0, 3
		addi x4, x0, 4
		halt
	`, nil)
	// 5 instructions, 1 issue per cycle, 1-cycle latency: ~5-6 cycles.
	if r.Cycles < 5 || r.Cycles > 7 {
		t.Fatalf("cycles = %d, want ~5", r.Cycles)
	}
	if r.StallRAW != 0 {
		t.Fatalf("no RAW stalls expected, got %d", r.StallRAW)
	}
}

func TestRAWDependencyStalls(t *testing.T) {
	// A chain of dependent vector adds (latency 2) must run slower than the
	// same number of independent ones (throughput 1/cycle).
	cfg := npu.SmallConfig().Core
	mk := func(dependent bool) Result {
		b := isa.NewBuilder("chain")
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 1, Imm: 8})
		b.Emit(isa.Instr{Op: isa.OpSETVL, Rd: 2, Rs1: 1})
		for i := 0; i < 32; i++ {
			if dependent {
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: 3, Rs1: 3, Rs2: 3})
			} else {
				b.Emit(isa.Instr{Op: isa.OpVADD, Rd: uint8(3 + i%8), Rs1: 20, Rs2: 21})
			}
		}
		b.Emit(isa.Instr{Op: isa.OpHALT})
		r, err := MeasureKernel(cfg, b.Build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	dep, indep := mk(true), mk(false)
	if dep.Cycles <= indep.Cycles {
		t.Fatalf("dependent chain (%d) must be slower than independent (%d)", dep.Cycles, indep.Cycles)
	}
	if dep.StallRAW == 0 {
		t.Fatal("expected RAW stall cycles")
	}
}

func TestStructuralHazardOnFPU(t *testing.T) {
	// Two back-to-back unpipelined fdivs contend for the FPU.
	r := measureSrc(t, `
		fli f1, 8.0
		fli f2, 2.0
		fdiv f3, f1, f2
		fdiv f4, f2, f1
		halt
	`, nil)
	if r.StallUnit == 0 {
		t.Fatal("expected structural-hazard stalls on the FPU")
	}
}

func TestTakenBranchPenalty(t *testing.T) {
	// A loop with taken branches pays the redirect penalty each iteration:
	// compare the same trace through pipelines with and without a penalty.
	src := `
		addi x1, x0, 0
		addi x2, x0, 8
	head:
		addi x1, x1, 1
		blt x1, x2, head
		halt
	`
	p, err := isa.Assemble("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(penalty int64) int64 {
		core := funcsim.NewCore(npu.SmallConfig().Core, npu.NewPagedMem())
		pipe := NewPipeline(npu.SmallConfig().Core)
		pipe.BranchPenalty = penalty
		core.Trace = pipe.Consume
		if _, err := core.Run(p); err != nil {
			t.Fatal(err)
		}
		return pipe.Cycles()
	}
	with, without := run(3), run(0)
	// 7 taken back-branches; part of the redirect penalty overlaps the RAW
	// stalls the unpenalized run already pays, so require most of it.
	if with < without+7*2 {
		t.Fatalf("penalized loop (%d) should cost >= %d (unpenalized %d + 14)", with, without+14, without)
	}
}

func TestVectorOccupancyScalesWithVL(t *testing.T) {
	cfg := npu.SmallConfig().Core // VLEN = 16
	mk := func(vl int) int64 {
		b := isa.NewBuilder("v")
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 1, Imm: int32(vl)})
		b.Emit(isa.Instr{Op: isa.OpSETVL, Rd: 2, Rs1: 1})
		// 8 dependent vector adds.
		for i := 0; i < 8; i++ {
			b.Emit(isa.Instr{Op: isa.OpVADD, Rd: 3, Rs1: 3, Rs2: 4})
		}
		b.Emit(isa.Instr{Op: isa.OpHALT})
		r, err := MeasureKernel(cfg, b.Build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	// VL=16 fits in one beat; a hypothetical VL=16 vs VL=16 is equal, but
	// the small config VLEN is 16 so both fit; instead compare VL=4 vs VL=16
	// with throughput 16/cycle: equal occupancy 1. Check monotonicity only.
	if mk(16) < mk(4) {
		t.Fatal("larger VL must not be faster")
	}
}

// buildGEMMKernel emits a kernel for an m x k x n GEMM tile. When pipelined
// is true the kernel software-pipelines pushes and pops (keeping up to
// `depth` rows in flight) instead of popping immediately after each push.
func buildGEMMKernel(m, k, n, depth int, pipelined bool) *isa.Program {
	b := isa.NewBuilder("gemm")
	b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 1, Imm: int32(n)})
	b.Emit(isa.Instr{Op: isa.OpSETVL, Rd: 2, Rs1: 1})
	for kk := 0; kk < k; kk++ {
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 3, Imm: int32(1<<16 + kk*n*4)})
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: 1, Rs1: 3})
		b.Emit(isa.Instr{Op: isa.OpWVPUSH, Rs1: 1})
	}
	push := func(row int) {
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 3, Imm: int32(row * k * 4)})
		b.Emit(isa.Instr{Op: isa.OpVLE32, Rd: 2, Rs1: 3})
		b.Emit(isa.Instr{Op: isa.OpIVPUSH, Rs1: 2})
	}
	pop := func(row int) {
		b.Emit(isa.Instr{Op: isa.OpVPOP, Rd: 3})
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 4, Imm: int32(1<<20 + row*n*4)})
		b.Emit(isa.Instr{Op: isa.OpVSE32, Rs2: 3, Rs1: 4})
	}
	if !pipelined {
		for mm := 0; mm < m; mm++ {
			push(mm)
			pop(mm)
		}
	} else {
		if depth > m {
			depth = m
		}
		for mm := 0; mm < depth; mm++ {
			push(mm)
		}
		for mm := 0; mm < m-depth; mm++ {
			pop(mm)
			push(mm + depth)
		}
		for mm := m - depth; mm < m; mm++ {
			pop(mm)
		}
	}
	b.Emit(isa.Instr{Op: isa.OpHALT})
	return b.Build()
}

func TestSAGEMMKernelTiming(t *testing.T) {
	cfg := npu.SmallConfig().Core
	k, n, m := 8, 8, 64
	setup := func(c *funcsim.Core) {
		r := tensor.NewRNG(1)
		in := tensor.RandNormal(r, 0, 1, m, k)
		w := tensor.RandNormal(r, 0, 1, k, n)
		c.Mem.DRAM.WriteFloats(0, in.Data)
		c.Mem.DRAM.WriteFloats(1<<16, w.Data)
	}
	naive, err := MeasureKernel(cfg, buildGEMMKernel(m, k, n, 0, false), setup)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := MeasureKernel(cfg, buildGEMMKernel(m, k, n, cfg.DesFIFORows, true), setup)
	if err != nil {
		t.Fatal(err)
	}
	closed := systolic.GEMMTileCycles(m, k, n)
	// Software pipelining hides the SA fill/drain latency: the pipelined
	// kernel must beat the naive one and land within a small factor of the
	// SA-only closed form (the in-order core adds per-row address/load/store
	// instruction overhead).
	if piped.Cycles >= naive.Cycles {
		t.Fatalf("pipelined %d must beat naive %d", piped.Cycles, naive.Cycles)
	}
	if piped.Cycles < closed {
		t.Fatalf("pipelined cycles %d below SA closed form %d", piped.Cycles, closed)
	}
	if piped.Cycles > closed*8 {
		t.Fatalf("pipelined cycles %d unreasonably above closed form %d", piped.Cycles, closed)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
		addi x1, x0, 0
		addi x2, x0, 32
	head:
		addi x1, x1, 1
		blt x1, x2, head
		halt
	`
	a := measureSrc(t, src, nil)
	b := measureSrc(t, src, nil)
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Fatal("timing must be deterministic")
	}
}

func TestSFUSlowerThanVectorALU(t *testing.T) {
	cfg := npu.SmallConfig().Core
	mk := func(op isa.Instr) int64 {
		b := isa.NewBuilder("s")
		b.Emit(isa.Instr{Op: isa.OpADDI, Rd: 1, Imm: 16})
		b.Emit(isa.Instr{Op: isa.OpSETVL, Rd: 2, Rs1: 1})
		for i := 0; i < 16; i++ {
			b.Emit(op)
		}
		b.Emit(isa.Instr{Op: isa.OpHALT})
		r, err := MeasureKernel(cfg, b.Build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	sfu := mk(isa.Instr{Op: isa.OpSFU, Rd: 3, Rs1: 3, Funct: isa.SFUExp})
	vadd := mk(isa.Instr{Op: isa.OpVADD, Rd: 3, Rs1: 3, Rs2: 4})
	if sfu <= vadd {
		t.Fatalf("SFU chain (%d) must be slower than vector ALU chain (%d)", sfu, vadd)
	}
}

func TestMeasureKernelCountsDMABytes(t *testing.T) {
	r := measureSrc(t, `
		addi x1, x0, 2
		addi x2, x0, 4
		config.0 x1, x2
		mvin x0, x3
		waitdma x0
		halt
	`, func(c *funcsim.Core) {
		c.X[3] = int64(isa.SpadBase)
	})
	if r.DMABytesIn != 2*4*4 {
		t.Fatalf("DMABytesIn = %d, want 32", r.DMABytesIn)
	}
}
