package train

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/compiler"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/tensor"
	"repro/internal/togsim"
)

// Backend selects where training steps execute.
type Backend int

const (
	// CPU runs each step through the graph reference executor.
	CPU Backend = iota
	// NPU runs each step through the compiled kernels on the functional
	// simulator (Table 2: full training = TOGSim + Spike; loss values from
	// the functional model drive the iteration count).
	NPU
)

// Config parameterizes a training run.
type Config struct {
	MLP     nn.MLPConfig
	LR      float32
	Steps   int
	Backend Backend
	NPUCfg  npu.Config // used by the NPU backend
	Seed    uint64
	// EvalEvery, when > 0, records the evaluation-set loss every that many
	// steps (the smooth convergence signal the batch-size study uses).
	EvalEvery int
	// Optim selects the optimizer; the zero value is plain SGD with LR
	// taken from the LR field above.
	Optim autograd.Optim
}

// Result reports a training run.
type Result struct {
	Losses        []float32
	EvalLosses    []float32 // eval-set loss at every EvalEvery steps
	FinalAccuracy float64
	// CyclesPerIter is the TLS per-iteration cycle count (0 for CPU runs
	// unless measured separately).
	CyclesPerIter int64
}

// Run trains the MLP on ds and evaluates accuracy on eval.
func Run(cfg Config, ds, eval *Dataset) (*Result, error) {
	m, lossID := nn.MLPWithLoss(cfg.MLP)
	opt := cfg.Optim
	if opt.LR == 0 {
		opt.LR = cfg.LR
	}
	ts, err := autograd.BuildOptim(m.Graph, lossID, opt)
	if err != nil {
		return nil, err
	}
	env := m.InitParams(cfg.Seed)
	// Optimizer state starts at zero.
	for name, id := range ts.States {
		env.Set(name, tensor.New(ts.Graph.Nodes[id].Shape...))
	}

	var comp *compiler.Compiled
	if cfg.Backend == NPU {
		c := compiler.New(cfg.NPUCfg, compiler.DefaultOptions())
		comp, err = c.Compile(ts.Graph)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for step := 0; step < cfg.Steps; step++ {
		x, y := ds.BatchAt(step, cfg.MLP.Batch)
		env.Set("x", x)
		env.Set("labels", y)
		if opt.Kind == autograd.OptAdam {
			c := autograd.AdamCoef(opt, step+1)
			env.Set(autograd.AdamCoefName, tensor.FromSlice(c[:], 2))
		}
		switch cfg.Backend {
		case CPU:
			vals, err := graph.Execute(ts.Graph, env)
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, vals[lossID].Data[0])
			for pname, uid := range ts.Updated {
				env.Set(pname, vals[uid])
			}
			for sname, sid := range ts.States {
				env.Set(sname, vals[sid])
			}
		case NPU:
			out, err := compiler.RunFunctional(comp, ts.Graph, env)
			if err != nil {
				return nil, err
			}
			lossName := comp.OutputTensors[lossID]
			res.Losses = append(res.Losses, out[lossName].Data[0])
			for pname, uid := range ts.Updated {
				env.Set(pname, out[comp.OutputTensors[uid]])
			}
			for sname, sid := range ts.States {
				env.Set(sname, out[comp.OutputTensors[sid]])
			}
		}
		if cfg.EvalEvery > 0 && (step+1)%cfg.EvalEvery == 0 {
			res.EvalLosses = append(res.EvalLosses, EvalLoss(cfg.MLP, env, eval))
		}
	}
	res.FinalAccuracy = Accuracy(cfg.MLP, env, eval)
	return res, nil
}

// EvalLoss computes the mean cross-entropy of the current parameters on
// the evaluation set (forward pass on the CPU reference).
func EvalLoss(cfg nn.MLPConfig, env *graph.Env, eval *Dataset) float32 {
	lossCfg := cfg
	lossCfg.Batch = eval.N()
	m, lossID := nn.MLPWithLoss(lossCfg)
	fenv := graph.NewEnv()
	for name, t := range env.Values {
		fenv.Set(name, t)
	}
	fenv.Set("x", eval.Images)
	fenv.Set("labels", eval.Labels)
	vals, err := graph.Execute(m.Graph, fenv)
	if err != nil {
		panic(fmt.Sprintf("train: eval loss failed: %v", err))
	}
	return vals[lossID].Data[0]
}

// Accuracy evaluates classification accuracy of the current parameters on
// the evaluation set (forward pass on the CPU reference).
func Accuracy(cfg nn.MLPConfig, env *graph.Env, eval *Dataset) float64 {
	fwdCfg := cfg
	fwdCfg.Batch = eval.N()
	fm := nn.MLP(fwdCfg)
	fenv := graph.NewEnv()
	for name, t := range env.Values {
		fenv.Set(name, t)
	}
	fenv.Set("x", eval.Images)
	vals, err := graph.Execute(fm.Graph, fenv)
	if err != nil {
		panic(fmt.Sprintf("train: eval forward failed: %v", err))
	}
	logits := vals[fm.OutputID]
	correct := 0
	for i := 0; i < eval.N(); i++ {
		if tensor.ArgMaxRow(logits, i) == int(eval.Labels.Data[i]) {
			correct++
		}
	}
	return float64(correct) / float64(eval.N())
}

// MeasureIterationCycles compiles the training-step graph for the given
// batch size and returns the TLS per-iteration cycle count (Table 2:
// single-iteration training performance needs only the timing model).
func MeasureIterationCycles(mlp nn.MLPConfig, lr float32, cfg npu.Config) (int64, error) {
	return MeasureIterationCyclesOptim(mlp, autograd.Optim{Kind: autograd.OptSGD, LR: lr}, cfg)
}

// MeasureIterationCyclesOptim is MeasureIterationCycles with a configurable
// optimizer — the per-iteration cost of the optimizer's update kernels
// (momentum's extra AXPBY pass, Adam's two EMAs plus the SFU step) is part
// of the measured TOG.
func MeasureIterationCyclesOptim(mlp nn.MLPConfig, opt autograd.Optim, cfg npu.Config) (int64, error) {
	m, lossID := nn.MLPWithLoss(mlp)
	ts, err := autograd.BuildOptim(m.Graph, lossID, opt)
	if err != nil {
		return 0, err
	}
	c := compiler.New(cfg, compiler.DefaultOptions())
	comp, err := c.Compile(ts.Graph)
	if err != nil {
		return 0, err
	}
	s := togsim.NewStandard(cfg, togsim.SimpleNet, dram.FRFCFS)
	r, err := s.Engine.Run([]*togsim.Job{comp.Job("trainstep", 0, 0)})
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// StepsToLoss returns how many steps a loss curve took to first dip below
// the threshold (len(losses) if never).
func StepsToLoss(losses []float32, threshold float32) int {
	for i, l := range losses {
		if l < threshold {
			return i + 1
		}
	}
	return len(losses)
}

// StepsToLossSmoothed applies an exponential moving average (factor alpha)
// before thresholding; per-batch losses at small batch sizes are far too
// noisy to gate convergence on directly.
func StepsToLossSmoothed(losses []float32, threshold, alpha float32) int {
	if len(losses) == 0 {
		return 0
	}
	ema := losses[0]
	for i, l := range losses {
		ema = (1-alpha)*ema + alpha*l
		if ema < threshold {
			return i + 1
		}
	}
	return len(losses)
}
