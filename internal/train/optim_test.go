package train

import (
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/npu"
)

// smallDataset builds the 16-dim 4-class dataset the NPU-vs-CPU tests use.
func smallDataset() (*Dataset, nn.MLPConfig) {
	mlp := nn.MLPConfig{Batch: 4, In: 16, Hidden: 8, Classes: 4}
	full := SyntheticMNIST(6, 64)
	small := make([]float32, 64*16)
	for i := 0; i < 64; i++ {
		copy(small[i*16:(i+1)*16], full.Images.Data[i*784:i*784+16])
	}
	labels := make([]float32, 64)
	for i := range labels {
		labels[i] = float32(i % 4)
	}
	ds := &Dataset{Classes: 4, Images: tensorFrom(small, 64, 16), Labels: tensorFrom(labels, 64)}
	return ds, mlp
}

func TestMomentumZeroMatchesPlainSGD(t *testing.T) {
	ds, mlp := smallDataset()
	sgd, err := Run(Config{MLP: mlp, LR: 0.1, Steps: 6, Backend: CPU, Seed: 7}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := Run(Config{MLP: mlp, Steps: 6, Backend: CPU, Seed: 7,
		Optim: autograd.Optim{Kind: autograd.OptMomentum, LR: 0.1, Momentum: 0}}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sgd.Losses {
		if sgd.Losses[i] != mom.Losses[i] {
			t.Fatalf("step %d: mu=0 momentum diverged from SGD: %g vs %g",
				i, sgd.Losses[i], mom.Losses[i])
		}
	}
}

func TestMomentumConvergesFasterOnCPU(t *testing.T) {
	ds, eval := SyntheticMNIST(3, 300).Split(200)
	steps := 50
	sgd, err := Run(Config{MLP: tinyMLP(16), LR: 0.02, Steps: steps, Backend: CPU, Seed: 5}, ds, eval)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := Run(Config{MLP: tinyMLP(16), Steps: steps, Backend: CPU, Seed: 5,
		Optim: autograd.Optim{Kind: autograd.OptMomentum, LR: 0.02, Momentum: 0.9}}, ds, eval)
	if err != nil {
		t.Fatal(err)
	}
	// Momentum should reach a lower loss within the same step budget at
	// this deliberately small learning rate.
	if mom.Losses[steps-1] >= sgd.Losses[steps-1] {
		t.Fatalf("momentum did not help: %g vs SGD %g", mom.Losses[steps-1], sgd.Losses[steps-1])
	}
}

func TestAdamTrainsOnCPU(t *testing.T) {
	ds, eval := SyntheticMNIST(3, 300).Split(200)
	res, err := Run(Config{MLP: tinyMLP(16), Steps: 60, Backend: CPU, Seed: 5,
		Optim: autograd.Optim{Kind: autograd.OptAdam, LR: 0.005, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}}, ds, eval)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		t.Fatalf("Adam loss did not decrease: %g -> %g", first, last)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("Adam accuracy only %.2f", res.FinalAccuracy)
	}
}

// The Fig. 10 functional-equality claim must hold for every optimizer: the
// compiled optimizer kernels (including Adam's SFU sqrt and the runtime
// bias-correction coefficients) reproduce the CPU reference losses.
func TestNPUMomentumMatchesCPU(t *testing.T) {
	ds, mlp := smallDataset()
	opt := autograd.Optim{Kind: autograd.OptMomentum, LR: 0.1, Momentum: 0.9}
	cpu, err := Run(Config{MLP: mlp, Steps: 5, Backend: CPU, Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	npuRes, err := Run(Config{MLP: mlp, Steps: 5, Backend: NPU, NPUCfg: npu.SmallConfig(), Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpu.Losses {
		d := cpu.Losses[i] - npuRes.Losses[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("step %d: CPU %g vs NPU %g", i, cpu.Losses[i], npuRes.Losses[i])
		}
	}
}

func TestNPUAdamMatchesCPU(t *testing.T) {
	ds, mlp := smallDataset()
	opt := autograd.Optim{Kind: autograd.OptAdam, LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	cpu, err := Run(Config{MLP: mlp, Steps: 5, Backend: CPU, Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	npuRes, err := Run(Config{MLP: mlp, Steps: 5, Backend: NPU, NPUCfg: npu.SmallConfig(), Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpu.Losses {
		d := cpu.Losses[i] - npuRes.Losses[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("step %d: CPU %g vs NPU %g", i, cpu.Losses[i], npuRes.Losses[i])
		}
	}
}

func TestOptimizerIterationCycleOrdering(t *testing.T) {
	// Ablation: per-iteration TLS cycles must reflect the optimizer's extra
	// memory passes — SGD < momentum (one AXPBY per param) < Adam (two EMAs
	// + the SFU step + the squared-gradient pass).
	mlp := nn.MLPConfig{Batch: 8, In: 64, Hidden: 32, Classes: 8}
	cfg := npu.SmallConfig()
	sgd, err := MeasureIterationCyclesOptim(mlp, autograd.Optim{Kind: autograd.OptSGD, LR: 0.05}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := MeasureIterationCyclesOptim(mlp, autograd.Optim{Kind: autograd.OptMomentum, LR: 0.05, Momentum: 0.9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adam, err := MeasureIterationCyclesOptim(mlp, autograd.Optim{Kind: autograd.OptAdam, LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(sgd < mom && mom < adam) {
		t.Fatalf("cycle ordering wrong: sgd=%d momentum=%d adam=%d", sgd, mom, adam)
	}
	// On this deliberately tiny model the optimizer passes rival the GEMMs,
	// so Adam roughly doubles the step; it must still stay within a small
	// multiple (it streams a fixed number of passes over the parameters).
	if adam > 3*sgd {
		t.Fatalf("Adam overhead implausible: %d vs SGD %d", adam, sgd)
	}
}

func TestNPUAdamWMatchesCPU(t *testing.T) {
	ds, mlp := smallDataset()
	opt := autograd.Optim{Kind: autograd.OptAdam, LR: 0.01,
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.05}
	cpu, err := Run(Config{MLP: mlp, Steps: 5, Backend: CPU, Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	npuRes, err := Run(Config{MLP: mlp, Steps: 5, Backend: NPU, NPUCfg: npu.SmallConfig(), Seed: 7, Optim: opt}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpu.Losses {
		d := cpu.Losses[i] - npuRes.Losses[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("step %d: CPU %g vs NPU %g", i, cpu.Losses[i], npuRes.Losses[i])
		}
	}
	// Decay must actually bite: parameters shrink relative to wd=0.
	plain := opt
	plain.WeightDecay = 0
	noWD, err := Run(Config{MLP: mlp, Steps: 5, Backend: CPU, Seed: 7, Optim: plain}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Losses[4] == noWD.Losses[4] {
		t.Fatal("weight decay had no effect on the trajectory")
	}
}
