package train

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/tensor"
)

func tinyMLP(batch int) nn.MLPConfig {
	return nn.MLPConfig{Batch: batch, In: 28 * 28, Hidden: 32, Classes: 10}
}

func TestSyntheticMNISTStructure(t *testing.T) {
	ds := SyntheticMNIST(1, 100)
	if ds.N() != 100 || ds.Images.Shape[1] != 784 {
		t.Fatalf("dataset shape wrong: %v", ds.Images.Shape)
	}
	counts := make([]int, 10)
	for _, l := range ds.Labels.Data {
		if l < 0 || l > 9 {
			t.Fatalf("label out of range: %g", l)
		}
		counts[int(l)]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d examples, want 10", c, n)
		}
	}
	// Determinism.
	ds2 := SyntheticMNIST(1, 100)
	for i := range ds.Images.Data {
		if ds.Images.Data[i] != ds2.Images.Data[i] {
			t.Fatal("dataset must be deterministic")
		}
	}
}

func TestBatchAtWraps(t *testing.T) {
	ds := SyntheticMNIST(2, 10)
	x, y := ds.BatchAt(1, 8) // examples 8,9,0,1,...
	if x.Shape[0] != 8 || y.Shape[0] != 8 {
		t.Fatal("batch shape wrong")
	}
	if y.Data[2] != ds.Labels.Data[0] {
		t.Fatal("wrapping wrong")
	}
}

func TestCPUTrainingConverges(t *testing.T) {
	ds, eval := SyntheticMNIST(3, 300).Split(200)
	res, err := Run(Config{
		MLP: tinyMLP(16), LR: 0.05, Steps: 60, Backend: CPU, Seed: 5,
	}, ds, eval)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("accuracy only %.2f after training", res.FinalAccuracy)
	}
}

func TestNPUTrainingMatchesCPULosses(t *testing.T) {
	// Fig. 10a: "training loss curves from PyTorchSim are identical to
	// those from a real CPU". Small config for speed.
	mlp := nn.MLPConfig{Batch: 4, In: 16, Hidden: 8, Classes: 4}
	full := SyntheticMNIST(6, 64)
	// Shrink inputs to 16 dims and relabel over 4 classes.
	small := make([]float32, 64*16)
	for i := 0; i < 64; i++ {
		copy(small[i*16:(i+1)*16], full.Images.Data[i*784:i*784+16])
	}
	labels := make([]float32, 64)
	for i := range labels {
		labels[i] = float32(i % 4)
	}
	ds2 := &Dataset{Classes: 4, Images: tensorFrom(small, 64, 16), Labels: tensorFrom(labels, 64)}

	steps := 5
	cpu, err := Run(Config{MLP: mlp, LR: 0.1, Steps: steps, Backend: CPU, Seed: 7}, ds2, ds2)
	if err != nil {
		t.Fatal(err)
	}
	npuRes, err := Run(Config{MLP: mlp, LR: 0.1, Steps: steps, Backend: NPU, NPUCfg: npu.SmallConfig(), Seed: 7}, ds2, ds2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpu.Losses {
		d := cpu.Losses[i] - npuRes.Losses[i]
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("step %d: CPU loss %g vs NPU loss %g", i, cpu.Losses[i], npuRes.Losses[i])
		}
	}
}

func TestMeasureIterationCyclesScalesWithBatch(t *testing.T) {
	cfg := npu.SmallConfig()
	small, err := MeasureIterationCycles(nn.MLPConfig{Batch: 4, In: 32, Hidden: 16, Classes: 8}, 0.1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureIterationCycles(nn.MLPConfig{Batch: 16, In: 32, Hidden: 16, Classes: 8}, 0.1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("larger batch must cost more per iteration: %d vs %d", big, small)
	}
	// But less than linearly (amortized weight traffic), so per-sample
	// cost drops.
	if float64(big) >= float64(small)*4 {
		t.Fatalf("per-iteration cost should grow sub-linearly: %d vs %d", big, small)
	}
}

func TestStepsToLoss(t *testing.T) {
	losses := []float32{2.0, 1.5, 0.9, 0.5}
	if StepsToLoss(losses, 1.0) != 3 {
		t.Fatalf("StepsToLoss = %d", StepsToLoss(losses, 1.0))
	}
	if StepsToLoss(losses, 0.1) != 4 {
		t.Fatal("unreached threshold must return len")
	}
}

// tensorFrom is a small wrapper to keep test setup terse.
func tensorFrom(data []float32, shape ...int) *tensor.Tensor {
	return tensor.FromSlice(data, shape...)
}

func TestStepsToLossSmoothedFiltersNoise(t *testing.T) {
	// A single lucky dip below threshold must not count as convergence.
	noisy := []float32{2, 1.9, 0.4, 1.8, 1.7, 1.6, 1.0, 0.9, 0.7, 0.6, 0.5, 0.5}
	raw := StepsToLoss(noisy, 0.8)
	smooth := StepsToLossSmoothed(noisy, 0.8, 0.2)
	if raw != 3 {
		t.Fatalf("raw crossing = %d, want 3", raw)
	}
	if smooth <= raw {
		t.Fatalf("smoothed crossing (%d) must ignore the lucky dip at %d", smooth, raw)
	}
}
