// Package train implements the DNN training study of §5.5: a training loop
// over the MLP (28x28 inputs, hidden 256, 10 classes) that can execute each
// step either on the host CPU (the reference) or on the simulated NPU
// through the compiled training-step graph, with TLS providing per-
// iteration cycle counts. The MNIST dataset is replaced by a deterministic
// synthetic set with the same shape and cardinality structure (see
// DESIGN.md substitutions).
package train

import (
	"repro/internal/tensor"
)

// Dataset is a labelled image set: Images is (N, dim), Labels is (N,) with
// float-encoded class indices.
type Dataset struct {
	Images  *tensor.Tensor
	Labels  *tensor.Tensor
	Classes int
}

// N returns the number of examples.
func (d *Dataset) N() int { return d.Images.Shape[0] }

// SyntheticMNIST generates n 28x28 examples across 10 classes: each class
// has a random prototype "digit" pattern; examples are the prototype plus
// Gaussian pixel noise. The classes are separable but overlapping, so the
// training dynamics (loss convergence vs batch size) behave like the real
// dataset's.
func SyntheticMNIST(seed uint64, n int) *Dataset {
	const dim = 28 * 28
	const classes = 10
	r := tensor.NewRNG(seed)
	protos := make([]*tensor.Tensor, classes)
	for c := range protos {
		protos[c] = tensor.RandNormal(r, 0, 1, dim)
	}
	images := tensor.New(n, dim)
	labels := tensor.New(n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels.Data[i] = float32(c)
		for j := 0; j < dim; j++ {
			// Heavy pixel noise keeps the classes overlapping enough that
			// convergence takes many optimizer steps (the regime the batch-
			// size study of §5.5 probes); the 0.25 scale keeps input
			// magnitudes in a stable range for the fixed learning rate.
			images.Data[i*dim+j] = 0.25 * (protos[c].Data[j] + 4.0*float32(r.Norm()))
		}
	}
	// Shuffle deterministically.
	perm := r.Perm(n)
	shImages := tensor.New(n, dim)
	shLabels := tensor.New(n)
	for i, p := range perm {
		copy(shImages.Data[i*dim:(i+1)*dim], images.Data[p*dim:(p+1)*dim])
		shLabels.Data[i] = labels.Data[p]
	}
	return &Dataset{Images: shImages, Labels: shLabels, Classes: classes}
}

// Split partitions the dataset at example k into train/eval shares that
// keep the same class prototypes.
func (d *Dataset) Split(k int) (train, eval *Dataset) {
	dim := d.Images.Shape[1]
	train = &Dataset{
		Images:  tensor.FromSlice(d.Images.Data[:k*dim], k, dim),
		Labels:  tensor.FromSlice(d.Labels.Data[:k], k),
		Classes: d.Classes,
	}
	rest := d.N() - k
	eval = &Dataset{
		Images:  tensor.FromSlice(d.Images.Data[k*dim:], rest, dim),
		Labels:  tensor.FromSlice(d.Labels.Data[k:], rest),
		Classes: d.Classes,
	}
	return
}

// BatchAt returns the b-th batch of the given size (wrapping).
func (d *Dataset) BatchAt(b, size int) (x, y *tensor.Tensor) {
	n := d.N()
	dim := d.Images.Shape[1]
	x = tensor.New(size, dim)
	y = tensor.New(size)
	for i := 0; i < size; i++ {
		idx := (b*size + i) % n
		copy(x.Data[i*dim:(i+1)*dim], d.Images.Data[idx*dim:(idx+1)*dim])
		y.Data[i] = d.Labels.Data[idx]
	}
	return
}
