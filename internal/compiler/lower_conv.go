package compiler

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tog"
)

// convMapping selects the conv tiling strategy (§3.6.3). Activations are
// stored (H*W*N, C); the mapping decides which output positions form one
// GEMM tile and how the reduction dimension is panelled.
type convMapping int

const (
	// mapHWNC: one spatial position per tile; the GEMM's M dimension is the
	// batch. This is the unoptimized default — M collapses to 1 at batch 1.
	mapHWNC convMapping = iota
	// mapHWC (batch 1): a group of output rows forms the tile; M = G*OW.
	mapHWC
	// mapHNWC (small C, stride 1): x-taps and channels merge into one SA
	// panel (Kt = KW*C); M = G*OW*N, reduction panels over KH only.
	mapHNWC
)

func (m convMapping) String() string {
	switch m {
	case mapHWC:
		return "HWC"
	case mapHNWC:
		return "HNWC"
	default:
		return "HWNC"
	}
}

// chooseConvMapping applies the layout heuristic: without the optimization
// every position is its own tile (HWNC); with it, row groups form large
// tiles (HWC, generalized to any batch since positions and batch are
// adjacent in the (H*W*N, C) layout), and small-C stride-1 convs merge the
// x-taps into the SA panel (HNWC).
func (st *state) chooseConvMapping(cs convDims) convMapping {
	if !st.c.Opts.ConvLayoutOpt {
		return mapHWNC
	}
	if cs.C*cs.KW <= st.c.Cfg.Core.SARows && cs.Stride == 1 {
		return mapHNWC
	}
	return mapHWC
}

type convDims struct {
	N, C, H, W, Kout, KH, KW, Stride, OH, OW int
}

// lowerConv emits the convolution TOG. Input activations and outputs use
// the (H*W*N, C) layout; the filter is stored (Kout, C*KH*KW) and loaded
// through the transpose DMA. The compute cost of each tile is modelled by
// the GEMM panel kernel of matching dimensions (implicit im2col by the
// DMA/address generators, §3.5); conv TOGs are therefore timing-only (see
// DESIGN.md) and mark the compilation result as not functionally executable.
func (st *state) lowerConv(n *graph.Node) error {
	st.out.FunctionalOK = false
	c := n.Conv
	cs := convDims{N: c.N, C: c.C, H: c.H, W: c.W, Kout: c.K, KH: c.KH, KW: c.KW, Stride: c.Stride, OH: c.OutH(), OW: c.OutW()}
	mapping := st.chooseConvMapping(cs)
	outName, ge := st.allocOut(n)
	inName := st.tensorOf[n.Inputs[0]]
	wName := st.tensorOf[n.Inputs[1]]

	core := st.c.Cfg.Core
	K := cs.C * cs.KH * cs.KW // full reduction length
	Nt := minInt(cs.Kout, core.SACols)

	// Tile geometry per mapping.
	var mTile int     // GEMM M per tile
	var panels []int  // reduction panel sizes
	var groupRows int // output rows per tile (HWC/HNWC)
	switch mapping {
	case mapHWNC:
		mTile = cs.N
		panels = panelSizes(K, minInt(K, core.SARows))
	case mapHWC:
		groupRows = maxInt(1, minInt(cs.OH, st.c.Opts.maxMt()/(cs.OW*cs.N)))
		mTile = groupRows * cs.OW * cs.N
		panels = panelSizes(K, minInt(K, core.SARows))
	case mapHNWC:
		groupRows = maxInt(1, minInt(cs.OH, st.c.Opts.maxMt()/(cs.OW*cs.N)))
		mTile = groupRows * cs.OW * cs.N
		kt := cs.KW * cs.C
		panels = make([]int, cs.KH)
		for i := range panels {
			panels[i] = kt
		}
	}

	// Scratchpad layout: input region + weight stripe + out tile + epi rows.
	regionRows := cs.KH
	if mapping != mapHWNC {
		regionRows = groupRows*cs.Stride + cs.KH - 1
	}
	regionBytes := int64(regionRows) * int64(cs.W*cs.N*cs.C) * 4
	if mapping == mapHWNC {
		regionBytes = int64(cs.KH) * int64(cs.KW*cs.N*cs.C) * 4
	}
	// Weight residency: keep the whole K x Nt stripe when it fits;
	// otherwise stream it as a ping-pong window of two panels.
	maxKt := 0
	for _, p := range panels {
		if p > maxKt {
			maxKt = p
		}
	}
	wStripeBytes := int64(K) * int64(Nt) * 4
	wWindowBytes := 2 * int64(maxKt) * int64(Nt) * 4
	cur := int64(0)
	take := func(bytes int64) int64 {
		off := cur
		cur += (bytes + 255) &^ 255
		return off
	}
	offIn := take(regionBytes)
	wResident := regionBytes+wStripeBytes+int64(mTile)*int64(Nt)*4+3*int64(Nt)*4+2048 <= st.spadBudget()
	var offW int64
	if wResident {
		offW = take(wStripeBytes)
	} else {
		offW = take(wWindowBytes)
	}
	offOut := take(int64(mTile) * int64(Nt) * 4)
	offGamma := take(int64(Nt) * 4)
	offBeta := take(int64(Nt) * 4)
	offBias := take(int64(Nt) * 4)
	if cur > st.spadBudget() {
		return fmt.Errorf("conv tile set (%d bytes, mapping %s) exceeds scratchpad budget %d", cur, mapping, st.spadBudget())
	}

	b := tog.NewBuilder(fmt.Sprintf("conv_n%d_%s", n.ID, mapping), inName, wName, outName)
	if ge.epi.ScaleShift {
		b.DeclareTensor(st.tensorOf[ge.gammaNode])
		b.DeclareTensor(st.tensorOf[ge.betaNode])
	}
	if ge.epi.Bias {
		b.DeclareTensor(st.tensorOf[ge.biasNode])
	}

	rowBytes := int64(cs.W*cs.N*cs.C) * 4 // one input spatial row
	outPosBytes := int64(cs.N*cs.Kout) * 4

	emitTileBody := func(mt, nt int, no idx, inLoad func(), storeOff tog.AddrExpr, storeRows int) {
		// The GEMM cost-model kernel reads mt rows at inStride; clamp the
		// stride so those reads stay inside the loaded region (the region
		// is smaller than an im2col matrix precisely because positions
		// reuse input elements — the kernel's addresses are a cost model,
		// not the dataflow; see the package comment).
		inStride := int64(K) * 4
		if int64(mt)*inStride+2*int64(K)*4 > regionBytes {
			inStride = (regionBytes - 2*int64(K)*4) / int64(mt) &^ 3
			if inStride < 4 {
				inStride = 4
			}
		}
		// Weight stripe (K x nt) via transpose DMA from (Kout, K): resident
		// when it fits, otherwise streamed per panel below.
		loadWPanel := func(ko int, tag int) {
			kOff := ko * maxKt
			kt := panels[ko]
			b.Load(wName, npu.DMADesc{Rows: nt, Cols: kt, DRAMStride: K * 4, Transpose: true, SpadStride: nt * 4},
				addExpr(no.addr(int64(Nt*K*4)), tog.AddrExpr{Const: int64(kOff * 4)}), tag, offW+int64(ko%2)*int64(maxKt*nt*4))
		}
		if wResident {
			b.Load(wName, npu.DMADesc{Rows: nt, Cols: K, DRAMStride: K * 4, Transpose: true, SpadStride: nt * 4},
				no.addr(int64(Nt*K*4)), tagBStripe, offW)
		} else {
			loadWPanel(0, tagBBase)
		}
		if ge.epi.ScaleShift {
			b.Load(st.tensorOf[ge.gammaNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(Nt)*4), tagEpi, offGamma)
			b.Load(st.tensorOf[ge.betaNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(Nt)*4), tagEpi, offBeta)
		}
		if ge.epi.Bias {
			b.Load(st.tensorOf[ge.biasNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(Nt)*4), tagEpi, offBias)
		}
		inLoad()
		b.Wait(tagAStripe)
		if wResident {
			b.Wait(tagBStripe)
		}
		for ko, kt := range panels {
			if !wResident {
				if ko+1 < len(panels) {
					loadWPanel(ko+1, tagBBase+(ko+1)%2)
				}
				b.Wait(tagBBase + ko%2)
			}
			last := ko == len(panels)-1
			wOff := offW + int64(ko*kt*nt*4)
			if !wResident {
				wOff = offW + int64(ko%2)*int64(maxKt*nt*4)
			}
			spec := codegen.GEMMSpec{
				M: mt, K: kt, N: nt,
				Accumulate:  ko > 0,
				InOff:       offIn + int64(ko%2)*int64(kt*4), // cost model: panel offset within region
				WOff:        wOff,
				OutOff:      offOut,
				InRowStride: inStride,
			}
			if last {
				spec.Epi = ge.epi
				if ge.epi.Bias || ge.epi.ScaleShift {
					b.Wait(tagEpi)
				}
				spec.BiasOff = offBias
				spec.GammaOff = offGamma
				spec.BetaOff = offBeta
			}
			st.emitComputeGEMM(b, spec)
		}
		b.Store(outName, npu.DMADesc{Rows: storeRows, Cols: nt, DRAMStride: int(outPosBytes) / cs.N}, storeOff, tagStore, offOut)
	}

	switch mapping {
	case mapHWNC:
		// Per-position iteration: oy, ox loops; each position refetches its
		// KH x (KW*N*C) input window (no inter-position reuse — the cost the
		// optimized layouts avoid).
		b.Loop("oy", 0, int64(cs.OH), 1)
		b.Loop("ox", 0, int64(cs.OW), 1)
		emitDim(b, "no", cs.Kout, Nt, func(no idx, nt int) {
			inLoad := func() {
				// Clamp the window to the feature map (padding regions are
				// not fetched).
				wr := minInt(cs.KH, cs.H)
				wc := minInt(cs.KW, cs.W) * cs.N * cs.C
				desc := npu.DMADesc{Rows: wr, Cols: wc, DRAMStride: int(rowBytes)}
				off := addExpr(
					tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "oy", Coeff: int64(cs.Stride) * rowBytes}}},
					tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "ox", Coeff: int64(cs.Stride*cs.N*cs.C) * 4}}},
				)
				b.Load(inName, desc, off, tagAStripe, offIn)
			}
			storeOff := addExpr(
				tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "oy", Coeff: int64(cs.OW) * outPosBytes}}},
				tog.AddrExpr{Terms: []tog.AddrTerm{{Var: "ox", Coeff: outPosBytes}}},
				no.addr(int64(Nt)*4),
			)
			emitTileBody(mTile, nt, no, inLoad, storeOff, cs.N)
		})
		b.EndLoop()
		b.EndLoop()
	default:
		// Row-group iteration with region reuse.
		emitDim(b, "oyg", cs.OH, groupRows, func(oyg idx, gRows int) {
			mt := gRows * cs.OW * cs.N
			emitDim(b, "no", cs.Kout, Nt, func(no idx, nt int) {
				inLoad := func() {
					rows := minInt(gRows*cs.Stride+cs.KH-1, cs.H)
					desc := npu.DMADesc{Rows: rows, Cols: cs.W * cs.N * cs.C, DRAMStride: int(rowBytes)}
					b.Load(inName, desc, oyg.addr(int64(groupRows*cs.Stride)*rowBytes), tagAStripe, offIn)
				}
				storeOff := addExpr(
					oyg.addr(int64(groupRows*cs.OW)*outPosBytes),
					no.addr(int64(Nt)*4),
				)
				rows := gRows * cs.OW * cs.N
				emitTileBody(mt, nt, no, inLoad, storeOff, rows)
			})
		})
	}
	b.SetSpadBytes(st.spadBudget())
	return st.addTOG(b, n.ID)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
