package compiler

import (
	"testing"

	"repro/internal/autograd"
	"repro/internal/dram"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/tensor"
	"repro/internal/togsim"
)

func small() npu.Config { return npu.SmallConfig() }

// compileAndRunTLS compiles g and returns the TLS cycle count.
func compileAndRunTLS(t *testing.T, cfg npu.Config, opts Options, g *graph.Graph) (int64, *Compiled) {
	t.Helper()
	c := New(cfg, opts)
	comp, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	s := togsim.NewStandard(cfg, togsim.SimpleNet, dram.FRFCFS)
	res, err := s.Engine.Run([]*togsim.Job{comp.Job(g.Name, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles, comp
}

func linearGraph(m, k, n int, withEpi bool) *graph.Graph {
	g := graph.New("linear")
	x := g.Input("x", m, k)
	w := g.Param("w", k, n)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Name: "mm", Inputs: []int{x.ID, w.ID}, Shape: []int{m, n}})
	out := mm
	if withEpi {
		bias := g.Param("b", n)
		ba := g.Add(&graph.Node{Op: graph.OpBiasAdd, Name: "ba", Inputs: []int{mm.ID, bias.ID}, Shape: []int{m, n}})
		out = g.Add(&graph.Node{Op: graph.OpReLU, Name: "relu", Inputs: []int{ba.ID}, Shape: []int{m, n}})
	}
	g.Outputs = []int{out.ID}
	return g
}

func TestCompileMatMulAndRunTLS(t *testing.T) {
	cycles, comp := compileAndRunTLS(t, small(), DefaultOptions(), linearGraph(16, 24, 12, false))
	if cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if len(comp.TOGs) != 1 {
		t.Fatalf("expected 1 TOG, got %d", len(comp.TOGs))
	}
	stats, err := comp.TOGs[0].CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	// 16x24 input + 24x12 weights loaded at least once; 16x12 stored.
	if stats.LoadBytes < int64(16*24+24*12)*4 {
		t.Fatalf("LoadBytes = %d too small", stats.LoadBytes)
	}
	if stats.StoreBytes < 16*12*4 {
		t.Fatalf("StoreBytes = %d too small", stats.StoreBytes)
	}
}

func TestFunctionalMatMulMatchesCPU(t *testing.T) {
	g := linearGraph(10, 20, 9, false)
	c := New(small(), DefaultOptions())
	comp, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.FunctionalOK {
		t.Fatal("matmul must be functionally executable")
	}
	r := tensor.NewRNG(1)
	env := graph.NewEnv().
		Set("x", tensor.RandNormal(r, 0, 1, 10, 20)).
		Set("w", tensor.RandNormal(r, 0, 1, 20, 9))
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := graph.Execute(g, env)
	if err != nil {
		t.Fatal(err)
	}
	outName := comp.OutputTensors[g.Outputs[0]]
	if !tensor.AllClose(got[outName], cpu[g.Outputs[0]], 1e-4, 1e-4) {
		t.Fatalf("NPU result differs from CPU:\n npu %v\n cpu %v", got[outName], cpu[g.Outputs[0]])
	}
}

func TestFusionReducesTOGsAndStaysCorrect(t *testing.T) {
	g := linearGraph(8, 16, 8, true)
	fused := New(small(), DefaultOptions())
	compF, err := fused.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Fusion = false
	unfused := New(small(), opts)
	compU, err := unfused.Compile(linearGraph(8, 16, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(compF.TOGs) >= len(compU.TOGs) {
		t.Fatalf("fusion should reduce TOG count: %d vs %d", len(compF.TOGs), len(compU.TOGs))
	}
	// Both must produce the CPU result.
	r := tensor.NewRNG(2)
	env := graph.NewEnv().
		Set("x", tensor.RandNormal(r, 0, 1, 8, 16)).
		Set("w", tensor.RandNormal(r, 0, 1, 16, 8)).
		Set("b", tensor.RandNormal(r, 0, 1, 8))
	cpu, err := graph.Execute(g, env)
	if err != nil {
		t.Fatal(err)
	}
	want := cpu[g.Outputs[0]]
	gotF, err := RunFunctional(compF, g, env)
	if err != nil {
		t.Fatal(err)
	}
	g2 := linearGraph(8, 16, 8, true)
	gotU, err := RunFunctional(compU, g2, env)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(gotF[compF.OutputTensors[g.Outputs[0]]], want, 1e-4, 1e-4) {
		t.Fatal("fused result wrong")
	}
	if !tensor.AllClose(gotU[compU.OutputTensors[g2.Outputs[0]]], want, 1e-4, 1e-4) {
		t.Fatal("unfused result wrong")
	}
	// Fusion also eliminates the intermediate DMA round trips.
	bytes := func(c *Compiled) int64 {
		var total int64
		for _, tg := range c.TOGs {
			s, err := tg.CollectStats()
			if err != nil {
				t.Fatal(err)
			}
			total += s.LoadBytes + s.StoreBytes
		}
		return total
	}
	if bytes(compF) >= bytes(compU) {
		t.Fatalf("fusion must reduce DMA traffic: %d vs %d", bytes(compF), bytes(compU))
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	r := tensor.NewRNG(3)
	// matmul_ta: A stored (K,M).
	g := graph.New("ta")
	a := g.Input("a", 12, 7) // K=12, M=7
	bb := g.Input("b", 12, 9)
	ta := g.Add(&graph.Node{Op: graph.OpMatMulTA, Inputs: []int{a.ID, bb.ID}, Shape: []int{7, 9}})
	g.Outputs = []int{ta.ID}
	c := New(small(), DefaultOptions())
	comp, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	env := graph.NewEnv().
		Set("a", tensor.RandNormal(r, 0, 1, 12, 7)).
		Set("b", tensor.RandNormal(r, 0, 1, 12, 9))
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(g, env)
	if !tensor.AllClose(got[comp.OutputTensors[ta.ID]], cpu[ta.ID], 1e-4, 1e-4) {
		t.Fatal("matmul_ta through NPU wrong")
	}

	// matmul_tb: B stored (N,K).
	g2 := graph.New("tb")
	a2 := g2.Input("a", 6, 11)
	b2 := g2.Input("b", 5, 11)
	tb := g2.Add(&graph.Node{Op: graph.OpMatMulTB, Inputs: []int{a2.ID, b2.ID}, Shape: []int{6, 5}})
	g2.Outputs = []int{tb.ID}
	comp2, err := New(small(), DefaultOptions()).Compile(g2)
	if err != nil {
		t.Fatal(err)
	}
	env2 := graph.NewEnv().
		Set("a", tensor.RandNormal(r, 0, 1, 6, 11)).
		Set("b", tensor.RandNormal(r, 0, 1, 5, 11))
	got2, err := RunFunctional(comp2, g2, env2)
	if err != nil {
		t.Fatal(err)
	}
	cpu2, _ := graph.Execute(g2, env2)
	if !tensor.AllClose(got2[comp2.OutputTensors[tb.ID]], cpu2[tb.ID], 1e-4, 1e-4) {
		t.Fatal("matmul_tb through NPU wrong")
	}
}

func TestVectorLayersFunctional(t *testing.T) {
	r := tensor.NewRNG(4)
	rows, cols := 6, 16
	g := graph.New("vec")
	x := g.Input("x", rows, cols)
	y := g.Input("y", rows, cols)
	gam := g.Param("gam", cols)
	bet := g.Param("bet", cols)
	sum := g.Add(&graph.Node{Op: graph.OpAdd, Inputs: []int{x.ID, y.ID}, Shape: []int{rows, cols}})
	sm := g.Add(&graph.Node{Op: graph.OpSoftmax, Inputs: []int{sum.ID}, Shape: []int{rows, cols}})
	ln := g.Add(&graph.Node{Op: graph.OpLayerNorm, Inputs: []int{sm.ID, gam.ID, bet.ID}, Shape: []int{rows, cols}})
	cs := g.Add(&graph.Node{Op: graph.OpColSum, Inputs: []int{ln.ID}, Shape: []int{cols}})
	g.Outputs = []int{ln.ID, cs.ID}
	comp, err := New(small(), DefaultOptions()).Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	env := graph.NewEnv().
		Set("x", tensor.RandNormal(r, 0, 1, rows, cols)).
		Set("y", tensor.RandNormal(r, 0, 1, rows, cols)).
		Set("gam", tensor.Full(1.5, cols)).
		Set("bet", tensor.Full(-0.5, cols))
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(g, env)
	if !tensor.AllClose(got[comp.OutputTensors[ln.ID]], cpu[ln.ID], 1e-3, 1e-3) {
		t.Fatal("layernorm chain through NPU wrong")
	}
	if !tensor.AllClose(got[comp.OutputTensors[cs.ID]], cpu[cs.ID], 1e-3, 1e-3) {
		t.Fatal("col_sum through NPU wrong")
	}
}

func TestMLPForwardFunctionalMatchesCPU(t *testing.T) {
	cfg := nn.MLPConfig{Batch: 4, In: 32, Hidden: 16, Classes: 8}
	m := nn.MLP(cfg)
	comp, err := New(small(), DefaultOptions()).Compile(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	env := m.InitParams(5)
	r := tensor.NewRNG(6)
	env.Set("x", tensor.RandNormal(r, 0, 1, 4, 32))
	got, err := RunFunctional(comp, m.Graph, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(m.Graph, env)
	if !tensor.AllClose(got[comp.OutputTensors[m.OutputID]], cpu[m.OutputID], 1e-3, 1e-3) {
		t.Fatal("MLP forward through NPU differs from CPU")
	}
}

func TestMLPTrainingStepFunctionalMatchesCPU(t *testing.T) {
	cfg := nn.MLPConfig{Batch: 4, In: 20, Hidden: 12, Classes: 5}
	m, lossID := nn.MLPWithLoss(cfg)
	ts, err := autograd.Build(m.Graph, lossID, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := New(small(), DefaultOptions()).Compile(ts.Graph)
	if err != nil {
		t.Fatal(err)
	}
	env := m.InitParams(7)
	r := tensor.NewRNG(8)
	env.Set("x", tensor.RandNormal(r, 0, 1, 4, 20))
	labels := tensor.New(4)
	for i := range labels.Data {
		labels.Data[i] = float32(r.Intn(5))
	}
	env.Set("labels", labels)

	got, err := RunFunctional(comp, ts.Graph, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(ts.Graph, env)
	// Loss matches.
	lossName := comp.OutputTensors[lossID]
	if lossName == "" {
		t.Fatal("loss output not recorded")
	}
	npuLoss := got[lossName].Data[0]
	cpuLoss := cpu[lossID].Data[0]
	if d := npuLoss - cpuLoss; d > 1e-3 || d < -1e-3 {
		t.Fatalf("loss differs: NPU %g vs CPU %g", npuLoss, cpuLoss)
	}
	// Every updated parameter matches.
	for pname, uid := range ts.Updated {
		uname := comp.OutputTensors[uid]
		if uname == "" {
			t.Fatalf("update for %s not a recorded output", pname)
		}
		if !tensor.AllClose(got[uname], cpu[uid], 1e-3, 1e-3) {
			t.Fatalf("updated %s differs from CPU (max diff %g)", pname, tensor.MaxAbsDiff(got[uname], cpu[uid]))
		}
	}
}

func TestConvCompilesAndLayoutHeuristic(t *testing.T) {
	mk := func(batch, c int, opt bool) (int64, *Compiled) {
		cs := tensor.ConvShape{N: batch, C: c, H: 8, W: 8, K: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
		g := graph.New("conv")
		x := g.Input("x", batch, c, 8, 8)
		w := g.Param("w", 8, c, 3, 3)
		cv := g.Add(&graph.Node{Op: graph.OpConv2D, Inputs: []int{x.ID, w.ID}, Conv: cs,
			Shape: []int{batch, 8, 8, 8}})
		g.Outputs = []int{cv.ID}
		opts := DefaultOptions()
		opts.ConvLayoutOpt = opt
		cycles, comp := compileAndRunTLS(t, small(), opts, g)
		return cycles, comp
	}
	// Batch-1 conv: optimized mapping must beat per-position HWNC.
	slow, compSlow := mk(1, 4, false)
	fast, compFast := mk(1, 4, true)
	if fast >= slow {
		t.Fatalf("conv layout optimization must help at batch 1: opt %d vs unopt %d", fast, slow)
	}
	if compSlow.FunctionalOK || compFast.FunctionalOK {
		t.Fatal("conv compilations must be marked timing-only")
	}
	// Speedup should be substantial (paper reports 2.8-6.9x).
	if float64(slow)/float64(fast) < 1.5 {
		t.Fatalf("conv layout speedup only %.2fx", float64(slow)/float64(fast))
	}
}

func TestDMAModesCompileAndDiffer(t *testing.T) {
	g := linearGraph(32, 64, 16, false)
	run := func(mode DMAMode) int64 {
		opts := DefaultOptions()
		opts.DMA = mode
		cycles, _ := compileAndRunTLS(t, small(), opts, linearGraph(32, 64, 16, false))
		return cycles
	}
	_ = g
	coarse := run(DMACoarse)
	fine := run(DMAFine)
	sel := run(DMASelective)
	if coarse <= 0 || fine <= 0 || sel <= 0 {
		t.Fatal("all DMA modes must simulate")
	}
	// Fine-grained DMA overlaps panel loads with compute: not slower.
	if fine > coarse+coarse/10 {
		t.Fatalf("fine (%d) should not be much slower than coarse (%d)", fine, coarse)
	}
}

func TestMaxPoolAndAvgPoolCompile(t *testing.T) {
	g := graph.New("pool")
	x := g.Input("x", 1, 4, 8, 8)
	mp := g.Add(&graph.Node{Op: graph.OpMaxPool, Inputs: []int{x.ID}, Window: 2, Stride: 2,
		Shape: []int{1, 4, 4, 4}})
	ap := g.Add(&graph.Node{Op: graph.OpAvgPool, Inputs: []int{mp.ID}, Shape: []int{1, 4}})
	g.Outputs = []int{ap.ID}
	cycles, comp := compileAndRunTLS(t, small(), DefaultOptions(), g)
	if cycles <= 0 {
		t.Fatal("pooling did not simulate")
	}
	if len(comp.TOGs) != 2 {
		t.Fatalf("expected 2 TOGs, got %d", len(comp.TOGs))
	}
}

func TestKernelLatencyCacheIsShared(t *testing.T) {
	c := New(small(), DefaultOptions())
	if _, err := c.Compile(linearGraph(16, 24, 12, false)); err != nil {
		t.Fatal(err)
	}
	first := c.MeasureCount()
	if first == 0 {
		t.Fatal("expected kernel measurements")
	}
	// Same shapes: everything cached.
	if _, err := c.Compile(linearGraph(16, 24, 12, false)); err != nil {
		t.Fatal(err)
	}
	if c.MeasureCount() != first {
		t.Fatalf("second compile re-measured kernels: %d -> %d", first, c.MeasureCount())
	}
}

func TestBERTSmallCompilesAndMatchesCPU(t *testing.T) {
	cfg := nn.BERTSmallConfig(1, 4)
	cfg.Hidden = 16
	cfg.FFN = 16
	cfg.Heads = 2
	cfg.Layers = 1
	m := nn.BERT(cfg)
	comp, err := New(small(), DefaultOptions()).Compile(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	env := m.InitParams(9)
	r := tensor.NewRNG(10)
	env.Set("x", tensor.RandNormal(r, 0, 1, 4, 16))
	got, err := RunFunctional(comp, m.Graph, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(m.Graph, env)
	outName := comp.OutputTensors[m.OutputID]
	if !tensor.AllClose(got[outName], cpu[m.OutputID], 5e-3, 5e-3) {
		t.Fatalf("BERT encoder through NPU differs from CPU (max diff %g)",
			tensor.MaxAbsDiff(got[outName], cpu[m.OutputID]))
	}
}

func TestReshapeAliases(t *testing.T) {
	g := graph.New("rs")
	x := g.Input("x", 4, 6)
	rs := g.Add(&graph.Node{Op: graph.OpReshape, Inputs: []int{x.ID}, Shape: []int{6, 4}})
	w := g.Param("w", 4, 3)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{rs.ID, w.ID}, Shape: []int{6, 3}})
	g.Outputs = []int{mm.ID}
	comp, err := New(small(), DefaultOptions()).Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(11)
	xv := tensor.RandNormal(r, 0, 1, 4, 6)
	wv := tensor.RandNormal(r, 0, 1, 4, 3)
	env := graph.NewEnv().Set("x", xv).Set("w", wv)
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := graph.Execute(g, env)
	if !tensor.AllClose(got[comp.OutputTensors[mm.ID]], cpu[mm.ID], 1e-4, 1e-4) {
		t.Fatal("reshape aliasing broken")
	}
}

func TestTPUv3CompileGEMM(t *testing.T) {
	// A paper-sized GEMM(512) on the full TPUv3 config.
	g := linearGraph(512, 512, 512, false)
	cycles, comp := compileAndRunTLS(t, npu.TPUv3Config(), DefaultOptions(), g)
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Sanity: cycles should be within an order of magnitude of the
	// dense-compute bound MACs / (SAs * 128 * 128).
	macs := int64(512 * 512 * 512)
	bound := macs / npu.TPUv3Config().Core.MACsPerCycle()
	if cycles < bound {
		t.Fatalf("cycles %d below compute bound %d", cycles, bound)
	}
	if cycles > bound*100 {
		t.Fatalf("cycles %d unreasonably above bound %d", cycles, bound)
	}
	_ = comp
}
