package compiler

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tensor"
)

// Optimizer kernels must tile correctly when the parameter does not fit a
// single scratchpad pass (planFlat splits; edge chunks are not multiples of
// VLEN).
func TestLowerAXPBYTiled(t *testing.T) {
	const n = 5003 // prime: forces ragged tiles and a tail vector chunk
	g := graph.New("axpby")
	a := g.Input("a", n)
	b := g.Input("b", n)
	out := g.Add(&graph.Node{Op: graph.OpAXPBY, Name: "out", Inputs: []int{a.ID, b.ID},
		Alpha: 0.9, Beta: 0.125, Shape: []int{n}})
	g.Outputs = []int{out.ID}

	cfg := npu.SmallConfig()
	comp, err := New(cfg, DefaultOptions()).Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(41)
	env := graph.NewEnv()
	env.Set("a", tensor.RandNormal(r, 0, 1, n))
	env.Set("b", tensor.RandNormal(r, 0, 1, n))
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := graph.Execute(g, env)
	if err != nil {
		t.Fatal(err)
	}
	gotT := got[comp.OutputTensors[out.ID]]
	for i := range vals[out.ID].Data {
		if d := float64(gotT.Data[i] - vals[out.ID].Data[i]); math.Abs(d) > 1e-5 {
			t.Fatalf("axpby[%d]: NPU %g vs CPU %g", i, gotT.Data[i], vals[out.ID].Data[i])
		}
	}
}

func TestLowerAdamTiled(t *testing.T) {
	const n = 4099
	g := graph.New("adam")
	p := g.Input("p", n)
	m := g.Input("m", n)
	v := g.Input("v", n)
	coef := g.Input("coef", 2)
	out := g.Add(&graph.Node{Op: graph.OpAdamStep, Name: "out",
		Inputs: []int{p.ID, m.ID, v.ID, coef.ID}, Shape: []int{n}})
	g.Outputs = []int{out.ID}

	cfg := npu.SmallConfig()
	comp, err := New(cfg, DefaultOptions()).Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(42)
	env := graph.NewEnv()
	env.Set("p", tensor.RandNormal(r, 0, 1, n))
	env.Set("m", tensor.RandNormal(r, 0, 0.1, n))
	vv := tensor.RandNormal(r, 0, 0.1, n)
	for i := range vv.Data {
		if vv.Data[i] < 0 {
			vv.Data[i] = -vv.Data[i]
		}
	}
	env.Set("v", vv)
	env.Set("coef", tensor.FromSlice([]float32{-0.004, 1e-8}, 2))
	got, err := RunFunctional(comp, g, env)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := graph.Execute(g, env)
	if err != nil {
		t.Fatal(err)
	}
	gotT := got[comp.OutputTensors[out.ID]]
	for i := range vals[out.ID].Data {
		want := vals[out.ID].Data[i]
		if d := float64(gotT.Data[i] - want); math.Abs(d) > 1e-5*math.Max(1, math.Abs(float64(want))) {
			t.Fatalf("adam[%d]: NPU %g vs CPU %g", i, gotT.Data[i], want)
		}
	}
}

func TestAdamStepRejectsBadCoefShape(t *testing.T) {
	g := graph.New("bad")
	p := g.Input("p", 8)
	m := g.Input("m", 8)
	v := g.Input("v", 8)
	coef := g.Input("coef", 3) // must be (2,)
	g.Add(&graph.Node{Op: graph.OpAdamStep, Name: "out",
		Inputs: []int{p.ID, m.ID, v.ID, coef.ID}, Shape: []int{8}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected coef-shape validation error")
	}
}

func TestAXPBYRejectsShapeMismatch(t *testing.T) {
	g := graph.New("bad")
	a := g.Input("a", 8)
	b := g.Input("b", 9)
	g.Add(&graph.Node{Op: graph.OpAXPBY, Name: "out", Inputs: []int{a.ID, b.ID},
		Alpha: 1, Beta: 1, Shape: []int{8}})
	if err := g.Validate(); err == nil {
		t.Fatal("expected shape-mismatch validation error")
	}
}
