package compiler

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tensor"
)

// TestDMAModesFunctionallyEquivalent checks that DMA decomposition is a pure
// performance choice: coarse and fine compilations of the same graph produce
// identical numeric results.
func TestDMAModesFunctionallyEquivalent(t *testing.T) {
	g := func() *graph.Graph { return linearGraph(12, 40, 10, true) }
	r := tensor.NewRNG(21)
	env := graph.NewEnv().
		Set("x", tensor.RandNormal(r, 0, 1, 12, 40)).
		Set("w", tensor.RandNormal(r, 0, 1, 40, 10)).
		Set("b", tensor.RandNormal(r, 0, 1, 10))
	var results []*tensor.Tensor
	for _, mode := range []DMAMode{DMACoarse, DMAFine, DMASelective} {
		opts := DefaultOptions()
		opts.DMA = mode
		gr := g()
		comp, err := New(small(), opts).Compile(gr)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		out, err := RunFunctional(comp, gr, env)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results = append(results, out[comp.OutputTensors[gr.Outputs[0]]])
	}
	for i := 1; i < len(results); i++ {
		if !tensor.AllClose(results[0], results[i], 1e-5, 1e-5) {
			t.Fatalf("DMA mode %d produced different results", i)
		}
	}
}

// TestCompileDeterministic checks that compiling the same graph twice yields
// identical TOGs (byte-identical serialization) — required for the TOG
// cache to be sound.
func TestCompileDeterministic(t *testing.T) {
	mk := func() string {
		comp, err := New(small(), DefaultOptions()).Compile(linearGraph(16, 24, 12, true))
		if err != nil {
			t.Fatal(err)
		}
		var all []byte
		for _, g := range comp.TOGs {
			s, err := g.CollectStats()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, []byte(g.Name)...)
			all = append(all, byte(s.ComputeNodes), byte(s.LoadNodes))
		}
		return string(all)
	}
	if mk() != mk() {
		t.Fatal("compilation must be deterministic")
	}
}

// TestKernelBinaryRoundTripExecutes: kernels survive machine-code encoding
// (the compiled binary is what ILS executes, §3.8).
func TestKernelBinaryRoundTripExecutes(t *testing.T) {
	comp, err := New(small(), DefaultOptions()).Compile(linearGraph(8, 16, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	for id, prog := range comp.Kernels {
		code := isa.EncodeProgram(prog)
		back, err := isa.DecodeProgram(id, code)
		if err != nil {
			t.Fatalf("%s: decode: %v", id, err)
		}
		if len(back.Instrs) != len(prog.Instrs) {
			t.Fatalf("%s: instruction count changed", id)
		}
		for i := range prog.Instrs {
			if back.Instrs[i] != prog.Instrs[i] {
				t.Fatalf("%s: instr %d changed: %v -> %v", id, i, prog.Instrs[i], back.Instrs[i])
			}
		}
	}
}

// TestTLSMonotonicInProblemSize: larger GEMMs must never simulate to fewer
// cycles (sanity property over the whole TLS stack).
func TestTLSMonotonicInProblemSize(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n1 := 8 + r.Intn(24)
		n2 := n1 + 8 + r.Intn(24)
		c1, _ := compileAndRunTLS(t, small(), DefaultOptions(), linearGraph(n1, n1, n1, false))
		c2, _ := compileAndRunTLS(t, small(), DefaultOptions(), linearGraph(n2, n2, n2, false))
		return c2 > c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestSpadBudgetRespected: every compiled TOG's declared scratchpad
// footprint fits the per-context budget.
func TestSpadBudgetRespected(t *testing.T) {
	cfg := small()
	comp, err := New(cfg, DefaultOptions()).Compile(linearGraph(64, 96, 48, true))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(cfg.Core.SpadBytes) / 2
	for _, g := range comp.TOGs {
		if g.SpadBytes > budget {
			t.Fatalf("TOG %q declares %d scratchpad bytes > budget %d", g.Name, g.SpadBytes, budget)
		}
	}
}

// TestCompiledKernelsAllValidate: every generated kernel passes ISA
// validation (register ranges, branch targets).
func TestCompiledKernelsAllValidate(t *testing.T) {
	cfg := npu.TPUv3Config()
	comp, err := New(cfg, DefaultOptions()).Compile(linearGraph(300, 700, 260, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Kernels) == 0 {
		t.Fatal("no kernels generated")
	}
	for id, prog := range comp.Kernels {
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}
