package compiler

import (
	"fmt"

	"repro/internal/funcsim"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tensor"
	"repro/internal/tog"
)

// RunFunctional executes a compiled model on the functional NPU simulator
// (extended-Spike role, Table 2: accuracy validation / full training):
// input and parameter tensors from env are written to their allocated DRAM
// addresses, every TOG is walked in order — DMAs move real data between
// DRAM and the scratchpad, compute nodes run their machine-code kernels —
// and the graph outputs are read back. Compilations containing timing-only
// layers (convolutions) are rejected; see DESIGN.md.
func RunFunctional(c *Compiled, g *graph.Graph, env *graph.Env) (map[string]*tensor.Tensor, error) {
	if !c.FunctionalOK {
		return nil, fmt.Errorf("compiler: %q contains timing-only layers (convolutions); functional execution unsupported", c.Name)
	}
	dram := npu.NewPagedMem()
	// Bind every env tensor that has an allocation.
	for name, t := range env.Values {
		base, ok := c.Bases[name]
		if !ok {
			continue
		}
		dram.WriteFloats(base, t.Data)
	}
	core := funcsim.NewCore(c.cfg.Core, dram)
	for _, tg := range c.TOGs {
		if err := runTOG(c, core, dram, tg); err != nil {
			return nil, fmt.Errorf("compiler: functional run of %q: %w", tg.Name, err)
		}
	}
	// Read back graph outputs.
	out := map[string]*tensor.Tensor{}
	for nodeID, name := range c.OutputTensors {
		shape := append([]int(nil), g.Nodes[nodeID].Shape...)
		n := 1
		for _, d := range shape {
			n *= d
		}
		out[name] = tensor.FromSlice(dram.ReadFloats(c.Bases[name], n), shape...)
	}
	return out, nil
}

// runTOG walks one TOG, interpreting loops and executing DMAs/kernels.
func runTOG(c *Compiled, core *funcsim.Core, dram *npu.PagedMem, g *tog.TOG) error {
	vars := map[string]int64{}
	type frame struct{ begin, end int }
	var loops []frame
	findEnd := func(begin int) int {
		depth := 0
		for j := begin; j < len(g.Nodes); j++ {
			switch g.Nodes[j].Kind {
			case tog.LoopBegin:
				depth++
			case tog.LoopEnd:
				depth--
				if depth == 0 {
					return j
				}
			}
		}
		panic("compiler: unmatched loop in validated TOG")
	}
	for pc := 0; pc < len(g.Nodes); pc++ {
		n := &g.Nodes[pc]
		switch n.Kind {
		case tog.LoopBegin:
			if n.Init >= n.Limit {
				pc = findEnd(pc)
				continue
			}
			vars[n.Var] = n.Init
			loops = append(loops, frame{begin: pc, end: findEnd(pc)})
		case tog.LoopEnd:
			fr := loops[len(loops)-1]
			begin := &g.Nodes[fr.begin]
			vars[begin.Var] += begin.Step
			if vars[begin.Var] < begin.Limit {
				pc = fr.begin
			} else {
				delete(vars, begin.Var)
				loops = loops[:len(loops)-1]
			}
		case tog.LoadDMA, tog.StoreDMA:
			base, ok := c.Bases[n.Tensor]
			if !ok {
				return fmt.Errorf("unbound tensor %q", n.Tensor)
			}
			off, err := n.Off.Eval(vars)
			if err != nil {
				return err
			}
			addr := base + uint64(off)
			spad := isa.SpadBase + uint64(n.SpadOff)
			if n.Kind == tog.LoadDMA {
				err = n.Desc.RunIn(dram, core.Mem.Spad, addr, spad)
			} else {
				err = n.Desc.RunOut(dram, core.Mem.Spad, addr, spad)
			}
			if err != nil {
				return err
			}
		case tog.WaitDMA:
			// Functional DMAs are synchronous.
		case tog.AllReduce, tog.AllGather, tog.ReduceScatter, tog.CollEnd:
			// Collective schedules reference another rank's buffers; they
			// only make sense under multi-rank placement. Compiled graphs
			// containing them set FunctionalOK=false, so reaching one here
			// means the caller skipped that gate.
			return fmt.Errorf("collective %s cannot execute functionally (use graph.ExecuteSharded)", n.Kind)
		case tog.Compute:
			prog, ok := c.Kernels[n.Kernel]
			if !ok {
				return fmt.Errorf("compute node references unknown kernel %q", n.Kernel)
			}
			if _, err := core.Run(prog); err != nil {
				return err
			}
		}
	}
	return nil
}
