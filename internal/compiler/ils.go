package compiler

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/funcsim"
	"repro/internal/npu"
	"repro/internal/timingsim"
	"repro/internal/tog"
	"repro/internal/togsim"
)

// ILSResult reports an instruction-level-simulation run.
type ILSResult struct {
	Cycles     int64 // simulated NPU cycles (identical methodology to TLS)
	Instrs     int64 // dynamic instructions executed one at a time
	KernelRuns int64 // dynamic kernel instances
}

// RunILS executes the compiled model in Instruction-Level Simulation mode:
// every dynamic kernel instance is run through the functional simulator
// with the core timing pipeline attached — instruction by instruction, no
// cached tile latencies — while the memory system is simulated by the same
// cycle-accurate DRAM/NoC stack as TLS. The reported cycle count matches
// TLS (tile latencies are deterministic, §3.8); the wall-clock cost of the
// per-instruction work is exactly what Fig. 6's TLS-vs-ILS speedup
// measures.
func RunILS(c *Compiled, cfg npu.Config, kind togsim.NetKind) (ILSResult, error) {
	var res ILSResult
	// Per-instruction pass: execute each dynamic kernel instance.
	core := funcsim.NewCore(cfg.Core, npu.NewPagedMem())
	for _, g := range c.TOGs {
		if err := walkComputes(g, func(kernelID string) error {
			prog, ok := c.Kernels[kernelID]
			if !ok {
				return fmt.Errorf("compiler: ILS: unknown kernel %q", kernelID)
			}
			pipe := timingsim.NewPipeline(cfg.Core)
			core.Trace = pipe.Consume
			n, err := core.Run(prog)
			core.Trace = nil
			if err != nil {
				return err
			}
			res.Instrs += n
			res.KernelRuns++
			return nil
		}); err != nil {
			return res, err
		}
	}
	// System-level pass for the cycle count (shared with TLS).
	s := togsim.NewStandard(cfg, kind, dram.FRFCFS)
	r, err := s.Engine.Run([]*togsim.Job{c.Job(c.Name, 0, 0)})
	if err != nil {
		return res, err
	}
	res.Cycles = r.Cycles
	return res, nil
}

// walkComputes expands a TOG's loops and invokes f for every dynamic
// compute-node instance.
func walkComputes(g *tog.TOG, f func(kernelID string) error) error {
	var walk func(from, to int) error
	walk = func(from, to int) error {
		for i := from; i < to; i++ {
			n := &g.Nodes[i]
			switch n.Kind {
			case tog.LoopBegin:
				end, err := matchEnd(g, i)
				if err != nil {
					return err
				}
				for v := n.Init; v < n.Limit; v += n.Step {
					if err := walk(i+1, end); err != nil {
						return err
					}
				}
				i = end
			case tog.Compute:
				if n.Kernel != "" {
					if err := f(n.Kernel); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	return walk(0, len(g.Nodes))
}

func matchEnd(g *tog.TOG, begin int) (int, error) {
	depth := 0
	for j := begin; j < len(g.Nodes); j++ {
		switch g.Nodes[j].Kind {
		case tog.LoopBegin:
			depth++
		case tog.LoopEnd:
			depth--
			if depth == 0 {
				return j, nil
			}
		}
	}
	return 0, fmt.Errorf("compiler: unmatched loop at node %d", begin)
}
