package compiler

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tog"
)

// PeerPrefix marks a collective TOG tensor aliasing the ring predecessor's
// buffer: "peer:x" is tensor x on the previous rank. The compiler declares
// the name but never allocates it — placement (internal/parallel) binds it
// to the predecessor's base address when building the per-rank jobs.
const PeerPrefix = "peer:"

// IsPeerTensor reports whether a tensor name is a peer alias, returning
// the underlying tensor name it references on the ring predecessor.
func IsPeerTensor(name string) (string, bool) {
	if len(name) > len(PeerPrefix) && name[:len(PeerPrefix)] == PeerPrefix {
		return name[len(PeerPrefix):], true
	}
	return "", false
}

// lowerCollective lowers all_reduce / all_gather / reduce_scatter to a
// rank-0-normalized ring schedule (v1): each phase is P-1 pull steps, each
// moving one chunk from the ring predecessor over the package link, with
// vector adds for the reduction phases. One TOG serves every rank —
// placement binds "peer:<x>" to the predecessor's buffer and the chunk
// offsets follow rank 0's schedule, so every rank moves the same byte
// pattern, which is all the timing model needs. Collective TOGs are
// timing-only (FunctionalOK=false); numerics run via graph.ExecuteSharded.
func (st *state) lowerCollective(n *graph.Node) error {
	st.out.FunctionalOK = false
	p := n.Parts
	inName := st.tensorOf[n.Inputs[0]]
	inElems := elems(st.g.Nodes[n.Inputs[0]].Shape)
	outName, _ := st.allocOut(n)

	// The ring pulls from the predecessor's working buffer: the output for
	// all_reduce/all_gather (it fills incrementally), the input shard for
	// reduce_scatter v1 (partials are priced as shard pulls).
	peerOf := outName
	if n.Op == graph.OpReduceScatter {
		peerOf = inName
	}
	peerName := PeerPrefix + peerOf

	var kind tog.Kind
	switch n.Op {
	case graph.OpAllReduce:
		kind = tog.AllReduce
	case graph.OpAllGather:
		kind = tog.AllGather
	case graph.OpReduceScatter:
		kind = tog.ReduceScatter
	default:
		return fmt.Errorf("lowerCollective: %s is not a collective", n.Op)
	}

	b := tog.NewBuilder(fmt.Sprintf("%s_n%d", n.Op, n.ID), inName, outName)
	b.BeginCollective(kind, outName, peerName, p, int64(inElems)*4)

	switch n.Op {
	case graph.OpAllReduce:
		// Padded equal chunks; the tail chunk may be short (or empty).
		chunk := (inElems + p - 1) / p
		size := func(c int) int { return minInt(chunk, inElems-c*chunk) }
		// Seed the working buffer with the local values.
		if err := st.collCopy(b, inName, 0, outName, 0, inElems); err != nil {
			return err
		}
		// Reduce-scatter phase: pull one remote chunk per step, add it in.
		for s := 0; s < p-1; s++ {
			c := (p - 1 - s) % p
			base := int64(c) * int64(chunk) * 4
			if err := st.collAdd(b, peerName, base, outName, base, size(c)); err != nil {
				return err
			}
		}
		// All-gather phase: pull the finished chunks around the ring.
		for s := 0; s < p-1; s++ {
			c := (p - s) % p
			base := int64(c) * int64(chunk) * 4
			if err := st.collCopy(b, peerName, base, outName, base, size(c)); err != nil {
				return err
			}
		}
	case graph.OpAllGather:
		// Own shard lands in chunk 0 (rank-0 normalized); the other P-1
		// shards arrive around the ring, one full shard per step.
		if err := st.collCopy(b, inName, 0, outName, 0, inElems); err != nil {
			return err
		}
		for s := 0; s < p-1; s++ {
			c := (p - 1 - s) % p
			base := int64(c) * int64(inElems) * 4
			if err := st.collCopy(b, peerName, base, outName, base, inElems); err != nil {
				return err
			}
		}
	case graph.OpReduceScatter:
		outElems := inElems / p
		// Own chunk seeds the output; P-1 remote chunks fold in.
		if err := st.collCopy(b, inName, 0, outName, 0, outElems); err != nil {
			return err
		}
		for s := 0; s < p-1; s++ {
			c := (s + 1) % p
			if err := st.collAdd(b, peerName, int64(c)*int64(outElems)*4, outName, 0, outElems); err != nil {
				return err
			}
		}
	}
	b.EndCollective()
	return st.addTOG(b, n.ID)
}

// collCopy streams total elements from src+srcOff to dst+dstOff (byte
// offsets) through the scratchpad — pure DMA, no compute.
func (st *state) collCopy(b *tog.Builder, src string, srcOff int64, dst string, dstOff int64, total int) error {
	if total <= 0 {
		return nil
	}
	plan, err := st.planFlat(total, 2)
	if err != nil {
		return err
	}
	tb := int64(plan.tileElems) * 4
	b.DeclareTensor(src)
	b.DeclareTensor(dst)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(src, npu.DMADesc{Rows: 1, Cols: sz},
			addExpr(tog.AddrExpr{Const: srcOff}, i.addr(tb)), tagVecA, plan.offs[0])
		b.Wait(tagVecA)
		b.Store(dst, npu.DMADesc{Rows: 1, Cols: sz},
			addExpr(tog.AddrExpr{Const: dstOff}, i.addr(tb)), tagVecSt, plan.offs[1])
	})
	b.Wait(tagVecSt)
	return nil
}

// collAdd pulls total elements from src+srcOff, adds them elementwise into
// dst+dstOff, and stores the result back — one ring reduction step. The
// trailing store wait orders the steps, standing in for the per-step ring
// dependency the independent per-rank jobs cannot express.
func (st *state) collAdd(b *tog.Builder, src string, srcOff int64, dst string, dstOff int64, total int) error {
	if total <= 0 {
		return nil
	}
	plan, err := st.planFlat(total, 3)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	tb := int64(plan.tileElems) * 4
	b.DeclareTensor(src)
	b.DeclareTensor(dst)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(src, npu.DMADesc{Rows: 1, Cols: sz},
			addExpr(tog.AddrExpr{Const: srcOff}, i.addr(tb)), tagVecB, plan.offs[0])
		b.Load(dst, npu.DMADesc{Rows: 1, Cols: sz},
			addExpr(tog.AddrExpr{Const: dstOff}, i.addr(tb)), tagVecA, plan.offs[1])
		b.Wait(tagVecA)
		b.Wait(tagVecB)
		spec := codegen.EltSpec{Op: codegen.EltAdd, Rows: 1, Cols: sz, VLEN: vlen,
			AOff: plan.offs[0], BOff: plan.offs[1], OutOff: plan.offs[2]}
		st.emitComputeKernel(b, spec.Signature(), spec.Signature()+"@0",
			func() *isa.Program { return codegen.Eltwise(spec) })
		b.Store(dst, npu.DMADesc{Rows: 1, Cols: sz},
			addExpr(tog.AddrExpr{Const: dstOff}, i.addr(tb)), tagVecSt, plan.offs[2])
	})
	b.Wait(tagVecSt)
	return nil
}
