// Tests for the staged pass pipeline's concurrency contract: Compile must
// be safe to call from many goroutines on one Compiler (run with -race),
// worker-count must never change the output, and the measure pass must
// singleflight shared kernel signatures.
package compiler

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
)

// countingMeasurer wraps the real measurer and counts invocations, so
// tests can assert on singleflight behaviour independent of the
// compiler's own counters.
type countingMeasurer struct {
	calls atomic.Int64
	real  TimingMeasurer
}

func (m *countingMeasurer) Measure(cfg npu.CoreConfig, p *isa.Program) (int64, error) {
	m.calls.Add(1)
	return m.real.Measure(cfg, p)
}

func testGraph() *graph.Graph { return linearGraph(24, 32, 16, true) }

// TestConcurrentCompileSameCompiler hammers one Compiler from many
// goroutines with the same model. Under -race this catches any unsynchronized
// state in the pass pipeline; functionally, every result must be identical
// and shared signatures must be measured exactly once across all calls.
func TestConcurrentCompileSameCompiler(t *testing.T) {
	cm := &countingMeasurer{}
	c := New(small(), DefaultOptions())
	c.Measurer = cm

	const goroutines = 8
	comps := make([]*Compiled, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comps[i], errs[i] = c.Compile(testGraph())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if !reflect.DeepEqual(comps[0], comps[i]) {
			t.Fatalf("concurrent compile %d diverged from compile 0", i)
		}
	}
	if got, want := cm.calls.Load(), int64(c.Cache().Len()); got != want {
		t.Fatalf("measurer invoked %d times for %d unique signatures — singleflight failed", got, want)
	}
	if c.MeasureCount() != cm.calls.Load() {
		t.Fatalf("MeasureCount()=%d but measurer saw %d calls", c.MeasureCount(), cm.calls.Load())
	}
}

// TestWorkerCountIsInvisible compiles the same graph with worker counts 1,
// 2, and 8 and requires bit-identical results — the determinism contract
// of DESIGN.md's "Compiler pipeline" section.
func TestWorkerCountIsInvisible(t *testing.T) {
	var base *Compiled
	for _, workers := range []int{1, 2, 8} {
		c := New(small(), DefaultOptions())
		c.Workers = workers
		comp, err := c.Compile(testGraph())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = comp
			continue
		}
		if !reflect.DeepEqual(base, comp) {
			t.Fatalf("workers=%d produced a different compilation than workers=1", workers)
		}
	}
}

// TestSeededCacheSkipsMeasurement pre-seeds a compiler's latency cache from
// a finished compile and verifies a fresh compiler does zero measurements
// (and zero measurer calls — the lazy codegen path) on the same model.
func TestSeededCacheSkipsMeasurement(t *testing.T) {
	warm := New(small(), DefaultOptions())
	want, err := warm.Compile(testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if warm.MeasureCount() == 0 {
		t.Fatal("warm compile measured nothing")
	}

	cm := &countingMeasurer{}
	cold := New(small(), DefaultOptions())
	cold.Measurer = cm
	cold.SeedLatencies(warm.Latencies())
	got, err := cold.Compile(testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if cm.calls.Load() != 0 {
		t.Fatalf("seeded compile invoked the measurer %d times", cm.calls.Load())
	}
	if cold.MeasureCount() != 0 {
		t.Fatalf("seeded compile reported MeasureCount=%d", cold.MeasureCount())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("seeded compile produced a different compilation")
	}
}

// TestStatsAreConsistent checks the Stats snapshot after concurrent use:
// lookups >= measures, and cached signatures match the cache length.
func TestStatsAreConsistent(t *testing.T) {
	c := New(small(), DefaultOptions())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Compile(testGraph()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.MeasureCount == 0 || st.CachedSigs == 0 {
		t.Fatalf("empty stats after compiling: %+v", st)
	}
	if st.SigLookups < st.MeasureCount {
		t.Fatalf("fewer signature lookups (%d) than measurements (%d)", st.SigLookups, st.MeasureCount)
	}
	if st.CachedSigs != c.Cache().Len() {
		t.Fatalf("Stats.CachedSigs=%d, cache holds %d", st.CachedSigs, c.Cache().Len())
	}
}

// TestRunParallelReturnsLowestIndexError pins the serial-equivalent error
// contract: whatever the worker count, the reported error is the one the
// serial loop would have hit first.
func TestRunParallelReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		err := runParallel(10, workers, func(i int) error {
			if i >= 4 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 4 failed" {
			t.Fatalf("workers=%d: got %v, want the index-4 error", workers, err)
		}
	}
}

// TestMeasureErrorNotCached: a failing measurement must not poison the
// cache — a later compile with a working measurer succeeds.
func TestMeasureErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	c := New(small(), DefaultOptions())
	c.Measurer = measureFunc(func(npu.CoreConfig, *isa.Program) (int64, error) { return 0, boom })
	if _, err := c.Compile(testGraph()); !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped measurement error", err)
	}
	c.Measurer = nil // back to the real timing measurer
	if _, err := c.Compile(testGraph()); err != nil {
		t.Fatalf("compile after failed measurement: %v", err)
	}
}

type measureFunc func(npu.CoreConfig, *isa.Program) (int64, error)

func (f measureFunc) Measure(cfg npu.CoreConfig, p *isa.Program) (int64, error) { return f(cfg, p) }
