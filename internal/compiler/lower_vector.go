package compiler

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tog"
)

// Vector-layer DMA tags.
const (
	tagVecA  = 10
	tagVecB  = 11
	tagVecC  = 12
	tagVecSt = 13
)

// emitComputeKernel emits a vector-unit compute node, deferring codegen and
// latency measurement to the parallel passes.
func (st *state) emitComputeKernel(b *tog.Builder, sig, id string, gen func() *isa.Program) {
	st.computeKernel(b, tog.UnitVector, sig, id, gen)
}

// flatTilePlan splits a flat elementwise workload of total elements into
// tiles given the number of concurrently resident operand/output buffers.
type flatTilePlan struct {
	tileElems int
	offs      []int64 // buffer offsets (operands..., output last)
}

func (st *state) planFlat(total, buffers int) (flatTilePlan, error) {
	budget := st.spadBudget()
	maxElems := budget / 4 / int64(buffers)
	// Round down to the vector length for tidy chunks.
	vlen := int64(st.c.Cfg.Core.VLEN())
	if maxElems > vlen {
		maxElems = maxElems / vlen * vlen
	}
	if maxElems < 1 {
		return flatTilePlan{}, fmt.Errorf("no scratchpad room for %d buffers", buffers)
	}
	te := int64(total)
	if te > maxElems {
		te = maxElems
	}
	// Cap tiles so kernels stay reasonably sized.
	if te > 1<<16 {
		te = 1 << 16
	}
	p := flatTilePlan{tileElems: int(te)}
	cur := int64(0)
	for i := 0; i < buffers; i++ {
		p.offs = append(p.offs, cur)
		cur += (te*4 + 255) &^ 255
	}
	return p, nil
}

// lowerEltwiseBinary lowers add/mul/relu_grad over flattened tensors.
func (st *state) lowerEltwiseBinary(n *graph.Node, op codegen.EltOp) error {
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	bName := st.tensorOf[n.Inputs[1]]
	total := elems(n.Shape)
	plan, err := st.planFlat(total, 3)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	b := tog.NewBuilder(fmt.Sprintf("%s_n%d", op, n.ID), aName, bName, outName)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecA, plan.offs[0])
		b.Load(bName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecB, plan.offs[1])
		b.Wait(tagVecA)
		b.Wait(tagVecB)
		spec := codegen.EltSpec{Op: op, Rows: 1, Cols: sz, VLEN: vlen,
			AOff: plan.offs[0], BOff: plan.offs[1], OutOff: plan.offs[2]}
		id := spec.Signature() + "@0"
		st.emitComputeKernel(b, spec.Signature(), id, func() *isa.Program { return codegen.Eltwise(spec) })
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecSt, plan.offs[2])
	})
	return st.addTOG(b, n.ID)
}

// lowerEltwiseUnary lowers relu/gelu/tanh/scale over flattened tensors.
func (st *state) lowerEltwiseUnary(n *graph.Node, op codegen.EltOp, scale float32) error {
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	total := elems(n.Shape)
	plan, err := st.planFlat(total, 2)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	b := tog.NewBuilder(fmt.Sprintf("%s_n%d", op, n.ID), aName, outName)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecA, plan.offs[0])
		b.Wait(tagVecA)
		spec := codegen.EltSpec{Op: op, Rows: 1, Cols: sz, ScaleF: scale, VLEN: vlen,
			AOff: plan.offs[0], OutOff: plan.offs[1]}
		id := spec.Signature() + fmt.Sprintf("@s%g", scale)
		st.emitComputeKernel(b, spec.Signature()+fmt.Sprintf("_s%g", scale), id,
			func() *isa.Program { return codegen.Eltwise(spec) })
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecSt, plan.offs[1])
	})
	return st.addTOG(b, n.ID)
}

// lowerRowwise is the shared shape for layers that process row tiles of a
// 2-D tensor with per-row or per-column auxiliary vectors (bias_add,
// softmax, layernorm).
func (st *state) lowerRowwise(
	n *graph.Node, name string,
	rows, cols int,
	aux []auxVec, // auxiliary row vectors loaded once per tile
	mk func(rt int, offs rowOffsets) (sig, id string, gen func() *isa.Program),
) error {
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	budget := st.spadBudget()
	rowBytes := int64(cols) * 4
	auxBytes := int64(len(aux)) * rowBytes
	maxRows := (budget - auxBytes - 512) / (2 * rowBytes)
	if maxRows < 1 {
		return fmt.Errorf("%s: rows of %d cols do not fit scratchpad", name, cols)
	}
	rt := rows
	if int64(rt) > maxRows {
		rt = int(maxRows)
	}
	if rt > 256 {
		rt = 256
	}
	var offs rowOffsets
	cur := int64(0)
	take := func(bytes int64) int64 {
		off := cur
		cur += (bytes + 255) &^ 255
		return off
	}
	offs.a = take(int64(rt) * rowBytes)
	offs.out = take(int64(rt) * rowBytes)
	for range aux {
		offs.aux = append(offs.aux, take(rowBytes))
	}

	b := tog.NewBuilder(fmt.Sprintf("%s_n%d", name, n.ID), aName, outName)
	for _, av := range aux {
		b.DeclareTensor(av.tensor)
	}
	// Aux vectors load once, before the tile loop.
	for i, av := range aux {
		b.Load(av.tensor, npu.DMADesc{Rows: 1, Cols: cols}, tog.AddrExpr{}, tagVecC, offs.aux[i])
	}
	emitDim(b, "r", rows, rt, func(r idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: sz, Cols: cols}, r.addr(int64(rt)*rowBytes), tagVecA, offs.a)
		b.Wait(tagVecA)
		if len(aux) > 0 {
			b.Wait(tagVecC)
		}
		sig, id, gen := mk(sz, offs)
		st.emitComputeKernel(b, sig, id, gen)
		b.Store(outName, npu.DMADesc{Rows: sz, Cols: cols}, r.addr(int64(rt)*rowBytes), tagVecSt, offs.out)
	})
	return st.addTOG(b, n.ID)
}

type auxVec struct{ tensor string }

type rowOffsets struct {
	a, out int64
	aux    []int64
}

// lowerBiasAdd handles a standalone (unfused) bias_add.
func (st *state) lowerBiasAdd(n *graph.Node) error {
	rows, cols := n.Shape[0], n.Shape[1]
	biasName := st.tensorOf[n.Inputs[1]]
	vlen := st.c.Cfg.Core.VLEN()
	return st.lowerRowwise(n, "bias_add", rows, cols,
		[]auxVec{{tensor: biasName}},
		func(rt int, offs rowOffsets) (string, string, func() *isa.Program) {
			spec := codegen.EltSpec{Op: codegen.EltBiasAdd, Rows: rt, Cols: cols, VLEN: vlen,
				AOff: offs.a, BOff: offs.aux[0], OutOff: offs.out}
			return spec.Signature(), spec.Signature() + "@r", func() *isa.Program { return codegen.Eltwise(spec) }
		})
}

// lowerScaleShift handles a standalone folded-BN over (H*W*N, C) data:
// per-column gamma/beta replicated N times.
func (st *state) lowerScaleShift(n *graph.Node) error {
	shape := n.Shape // NCHW logical
	N, C, H, W := shape[0], shape[1], shape[2], shape[3]
	rows, cols := H*W, N*C
	gName := st.tensorOf[n.Inputs[1]]
	bName := st.tensorOf[n.Inputs[2]]
	vlen := st.c.Cfg.Core.VLEN()

	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	budget := st.spadBudget()
	rowBytes := int64(cols) * 4
	gbBytes := 2 * rowBytes
	maxRows := (budget - gbBytes - 512) / (2 * rowBytes)
	if maxRows < 1 {
		return fmt.Errorf("scale_shift rows of %d cols do not fit scratchpad", cols)
	}
	rt := minInt(rows, minInt(int(maxRows), 256))
	offA := int64(0)
	offOut := (int64(rt)*rowBytes + 255) &^ 255
	offGB := offOut + ((int64(rt)*rowBytes + 255) &^ 255)

	b := tog.NewBuilder(fmt.Sprintf("scale_shift_n%d", n.ID), aName, gName, bName, outName)
	// Replicate gamma and beta N times into one (2, N*C) block.
	for rep := 0; rep < N; rep++ {
		b.Load(gName, npu.DMADesc{Rows: 1, Cols: C}, tog.AddrExpr{}, tagVecC, offGB+int64(rep*C*4))
		b.Load(bName, npu.DMADesc{Rows: 1, Cols: C}, tog.AddrExpr{}, tagVecC, offGB+rowBytes+int64(rep*C*4))
	}
	emitDim(b, "r", rows, rt, func(r idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: sz, Cols: cols}, r.addr(int64(rt)*rowBytes), tagVecA, offA)
		b.Wait(tagVecA)
		b.Wait(tagVecC)
		spec := codegen.EltSpec{Op: codegen.EltScaleSh, Rows: sz, Cols: cols, VLEN: vlen,
			AOff: offA, BOff: offGB, OutOff: offOut}
		st.emitComputeKernel(b, spec.Signature(), spec.Signature()+"@r",
			func() *isa.Program { return codegen.Eltwise(spec) })
		b.Store(outName, npu.DMADesc{Rows: sz, Cols: cols}, r.addr(int64(rt)*rowBytes), tagVecSt, offOut)
	})
	return st.addTOG(b, n.ID)
}

// lowerSoftmax lowers a row-wise softmax (wide rows use the multi-pass
// kernel automatically).
func (st *state) lowerSoftmax(n *graph.Node) error {
	rows, cols := n.Shape[0], n.Shape[1]
	vlen := st.c.Cfg.Core.VLEN()
	return st.lowerRowwise(n, "softmax", rows, cols, nil,
		func(rt int, offs rowOffsets) (string, string, func() *isa.Program) {
			spec := codegen.SoftmaxSpec{Rows: rt, Cols: cols, VLEN: vlen, AOff: offs.a, OutOff: offs.out}
			return spec.Signature(), spec.Signature() + "@r", func() *isa.Program { return codegen.Softmax(spec) }
		})
}

// lowerLayerNorm lowers a row-wise layernorm with gamma/beta vectors (wide
// rows use the multi-pass kernel automatically).
func (st *state) lowerLayerNorm(n *graph.Node) error {
	rows, cols := n.Shape[0], n.Shape[1]
	vlen := st.c.Cfg.Core.VLEN()
	gName := st.tensorOf[n.Inputs[1]]
	bName := st.tensorOf[n.Inputs[2]]
	eps := n.Eps
	return st.lowerRowwise(n, "layernorm", rows, cols,
		[]auxVec{{tensor: gName}, {tensor: bName}},
		func(rt int, offs rowOffsets) (string, string, func() *isa.Program) {
			spec := codegen.LayerNormSpec{Rows: rt, Cols: cols, VLEN: vlen, Eps: eps,
				AOff: offs.a, GOff: offs.aux[0], BOff: offs.aux[1], OutOff: offs.out}
			return spec.Signature(), spec.Signature() + "@r", func() *isa.Program { return codegen.LayerNorm(spec) }
		})
}

// lowerRMSNorm lowers a row-wise RMS norm with a gamma vector (wide rows
// use the multi-pass kernel automatically).
func (st *state) lowerRMSNorm(n *graph.Node) error {
	rows, cols := n.Shape[0], n.Shape[1]
	vlen := st.c.Cfg.Core.VLEN()
	gName := st.tensorOf[n.Inputs[1]]
	eps := n.Eps
	return st.lowerRowwise(n, "rmsnorm", rows, cols,
		[]auxVec{{tensor: gName}},
		func(rt int, offs rowOffsets) (string, string, func() *isa.Program) {
			spec := codegen.RMSNormSpec{Rows: rt, Cols: cols, VLEN: vlen, Eps: eps,
				AOff: offs.a, GOff: offs.aux[0], OutOff: offs.out}
			return spec.Signature(), spec.Signature() + "@r", func() *isa.Program { return codegen.RMSNorm(spec) }
		})
}

// lowerColSum lowers the (M,N)->(N,) reduction. The whole input must fit in
// scratchpad (true for every workload in the evaluation).
func (st *state) lowerColSum(n *graph.Node) error {
	in := st.g.Nodes[n.Inputs[0]]
	rows, cols := in.Shape[0], in.Shape[1]
	vlen := st.c.Cfg.Core.VLEN()
	inBytes := int64(rows*cols) * 4
	outBytes := int64(cols) * 4
	if inBytes+outBytes > st.spadBudget() {
		return fmt.Errorf("col_sum input (%d bytes) exceeds scratchpad budget", inBytes)
	}
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	offA, offOut := int64(0), (inBytes+255)&^255
	b := tog.NewBuilder(fmt.Sprintf("col_sum_n%d", n.ID), aName, outName)
	b.Load(aName, npu.DMADesc{Rows: rows, Cols: cols}, tog.AddrExpr{}, tagVecA, offA)
	b.Wait(tagVecA)
	spec := codegen.ColSumSpec{Rows: rows, Cols: cols, VLEN: vlen, AOff: offA, OutOff: offOut}
	st.emitComputeKernel(b, spec.Signature(), spec.Signature()+"@r",
		func() *isa.Program { return codegen.ColSum(spec) })
	b.Store(outName, npu.DMADesc{Rows: 1, Cols: cols}, tog.AddrExpr{}, tagVecSt, offOut)
	return st.addTOG(b, n.ID)
}

// lowerSGD lowers the optimizer update over flattened parameters.
func (st *state) lowerSGD(n *graph.Node) error {
	outName, _ := st.allocOut(n)
	wName := st.tensorOf[n.Inputs[0]]
	gName := st.tensorOf[n.Inputs[1]]
	total := elems(n.Shape)
	plan, err := st.planFlat(total, 3)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	b := tog.NewBuilder(fmt.Sprintf("sgd_n%d", n.ID), wName, gName, outName)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(wName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecA, plan.offs[0])
		b.Load(gName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecB, plan.offs[1])
		b.Wait(tagVecA)
		b.Wait(tagVecB)
		spec := codegen.SGDSpec{N: sz, LR: n.ScaleF, VLEN: vlen,
			WOff: plan.offs[0], GOff: plan.offs[1], OutOff: plan.offs[2]}
		id := spec.Signature() + fmt.Sprintf("@lr%g", n.ScaleF)
		st.emitComputeKernel(b, spec.Signature()+fmt.Sprintf("_lr%g", n.ScaleF), id,
			func() *isa.Program { return codegen.SGD(spec) })
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecSt, plan.offs[2])
	})
	return st.addTOG(b, n.ID)
}

// lowerAXPBY lowers the fused blend alpha*a + beta*b over flattened
// tensors (momentum / EMA optimizer state updates).
func (st *state) lowerAXPBY(n *graph.Node) error {
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	bName := st.tensorOf[n.Inputs[1]]
	total := elems(n.Shape)
	plan, err := st.planFlat(total, 3)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	alpha, beta := n.Alpha, n.Beta
	b := tog.NewBuilder(fmt.Sprintf("axpby_n%d", n.ID), aName, bName, outName)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecA, plan.offs[0])
		b.Load(bName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecB, plan.offs[1])
		b.Wait(tagVecA)
		b.Wait(tagVecB)
		spec := codegen.AXPBYSpec{N: sz, Alpha: alpha, Beta: beta, VLEN: vlen,
			AOff: plan.offs[0], BOff: plan.offs[1], OutOff: plan.offs[2]}
		id := spec.Signature() + fmt.Sprintf("@a%g_b%g", alpha, beta)
		st.emitComputeKernel(b, spec.Signature(), id,
			func() *isa.Program { return codegen.AXPBY(spec) })
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecSt, plan.offs[2])
	})
	return st.addTOG(b, n.ID)
}

// lowerAdam lowers the fused Adam parameter step. The 2-element coef
// tensor (negated bias-corrected step size, epsilon) loads once; the
// parameter, first moment, and second moment stream through in tiles.
func (st *state) lowerAdam(n *graph.Node) error {
	outName, _ := st.allocOut(n)
	pName := st.tensorOf[n.Inputs[0]]
	mName := st.tensorOf[n.Inputs[1]]
	vName := st.tensorOf[n.Inputs[2]]
	cName := st.tensorOf[n.Inputs[3]]
	total := elems(n.Shape)
	plan, err := st.planFlat(total, 5)
	if err != nil {
		return err
	}
	vlen := st.c.Cfg.Core.VLEN()
	b := tog.NewBuilder(fmt.Sprintf("adam_n%d", n.ID), pName, mName, vName, cName, outName)
	// Coefficients occupy the tail buffer slot; loaded once.
	coefOff := plan.offs[4]
	b.Load(cName, npu.DMADesc{Rows: 1, Cols: 2}, tog.AddrExpr{}, tagVecC, coefOff)
	emitDim(b, "i", total, plan.tileElems, func(i idx, sz int) {
		b.Load(pName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecA, plan.offs[0])
		b.Load(mName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecB, plan.offs[1])
		b.Load(vName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecB, plan.offs[2])
		b.Wait(tagVecA)
		b.Wait(tagVecB)
		b.Wait(tagVecC)
		spec := codegen.AdamSpec{N: sz, VLEN: vlen, Decay: n.ScaleF,
			POff: plan.offs[0], MOff: plan.offs[1], VOff: plan.offs[2],
			CoefOff: coefOff, OutOff: plan.offs[3]}
		id := spec.Signature() + fmt.Sprintf("@d%g", n.ScaleF)
		st.emitComputeKernel(b, spec.Signature(), id,
			func() *isa.Program { return codegen.AdamStep(spec) })
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: sz}, i.addr(int64(plan.tileElems)*4), tagVecSt, plan.offs[3])
	})
	return st.addTOG(b, n.ID)
}

// lowerSoftmaxCE lowers the fused loss (and gradient) layer; logits and
// labels must fit in scratchpad (batch-sized tensors).
func (st *state) lowerSoftmaxCE(n *graph.Node, withGrad bool) error {
	logits := st.g.Nodes[n.Inputs[0]]
	rows, cols := logits.Shape[0], logits.Shape[1]
	vlen := st.c.Cfg.Core.VLEN()
	if cols > vlen {
		return fmt.Errorf("softmax_ce over %d cols exceeds VLEN %d", cols, vlen)
	}
	inBytes := int64(rows*cols) * 4
	if 2*inBytes+int64(rows)*4+1024 > st.spadBudget() {
		return fmt.Errorf("softmax_ce batch does not fit scratchpad")
	}
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	lName := st.tensorOf[n.Inputs[1]]
	cur := int64(0)
	take := func(bytes int64) int64 {
		off := cur
		cur += (bytes + 255) &^ 255
		return off
	}
	offA := take(inBytes)
	offLabels := take(int64(rows) * 4)
	offLoss := take(64 + int64(rows)*4 + 64) // loss slot + label-prob staging row
	offGrad := take(inBytes)                 // probability rows (grad when WithGrad)

	b := tog.NewBuilder(fmt.Sprintf("softmax_ce_n%d", n.ID), aName, lName, outName)
	b.Load(aName, npu.DMADesc{Rows: rows, Cols: cols}, tog.AddrExpr{}, tagVecA, offA)
	b.Load(lName, npu.DMADesc{Rows: 1, Cols: rows}, tog.AddrExpr{}, tagVecB, offLabels)
	b.Wait(tagVecA)
	b.Wait(tagVecB)
	spec := codegen.SoftmaxCESpec{Rows: rows, Cols: cols, VLEN: vlen, WithGrad: withGrad,
		AOff: offA, LabelOff: offLabels, LossOff: offLoss, GradOff: offGrad}
	st.emitComputeKernel(b, spec.Signature(), spec.Signature()+"@r",
		func() *isa.Program { return codegen.SoftmaxCE(spec) })
	if withGrad {
		b.Store(outName, npu.DMADesc{Rows: rows, Cols: cols}, tog.AddrExpr{}, tagVecSt, offGrad)
	} else {
		b.Store(outName, npu.DMADesc{Rows: 1, Cols: 1}, tog.AddrExpr{}, tagVecSt, offLoss)
	}
	return st.addTOG(b, n.ID)
}

// lowerMaxPool lowers spatial max pooling over (H*W*N, C)-laid-out data:
// row groups are loaded, then one strided pooling kernel runs per (n, c).
func (st *state) lowerMaxPool(n *graph.Node) error {
	in := st.g.Nodes[n.Inputs[0]]
	N, C, W := in.Shape[0], in.Shape[1], in.Shape[3]
	OH, OW := n.Shape[2], n.Shape[3]
	window, stride := n.Window, n.Stride
	vlen := st.c.Cfg.Core.VLEN()

	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	rowBytes := int64(W*N*C) * 4
	outRowBytes := int64(OW*N*C) * 4
	// Group output rows so the input region fits.
	budget := st.spadBudget()
	g := OH
	for g > 1 && int64((g-1)*stride+window)*rowBytes+int64(g)*outRowBytes > budget {
		g--
	}
	if int64((g-1)*stride+window)*rowBytes+int64(g)*outRowBytes > budget {
		return fmt.Errorf("maxpool region does not fit scratchpad")
	}
	regionRows := (g-1)*stride + window
	offIn := int64(0)
	offOut := (int64(regionRows)*rowBytes + 255) &^ 255

	b := tog.NewBuilder(fmt.Sprintf("maxpool_n%d", n.ID), aName, outName)
	emitDim(b, "oyg", OH, g, func(oyg idx, rows int) {
		rr := (rows-1)*stride + window
		b.Load(aName, npu.DMADesc{Rows: rr, Cols: W * N * C}, oyg.addr(int64(g*stride)*rowBytes), tagVecA, offIn)
		b.Wait(tagVecA)
		// One kernel per (n, c): strided access over the interleaved layout.
		for nc := 0; nc < N*C; nc++ {
			spec := strided2DPool{
				Rows: rows, OW: OW, W: W, NC: N * C,
				Window: window, Stride: stride, VLEN: vlen,
				AOff: offIn + int64(nc*4), OutOff: offOut + int64(nc*4),
			}
			id := fmt.Sprintf("%s@%d", spec.Signature(), nc)
			st.emitComputeKernel(b, spec.Signature(), id,
				func() *isa.Program { return spec.build() })
		}
		b.Store(outName, npu.DMADesc{Rows: rows, Cols: OW * N * C}, oyg.addr(int64(g)*outRowBytes), tagVecSt, offOut)
	})
	return st.addTOG(b, n.ID)
}

// strided2DPool adapts the pooling kernel to the interleaved (pos, n*c)
// layout: element (y, x) of a plane lives at (y*W + x)*NC*4.
type strided2DPool struct {
	Rows, OW, W, NC      int
	Window, Stride, VLEN int
	AOff, OutOff         int64
}

func (s strided2DPool) Signature() string {
	return fmt.Sprintf("pool2d_r%d_ow%d_w%d_nc%d_k%d_s%d_v%d", s.Rows, s.OW, s.W, s.NC, s.Window, s.Stride, s.VLEN)
}

func (s strided2DPool) build() *isa.Program {
	// Reuse the plane-pool kernel shape with the element stride scaled by
	// the channel interleave.
	return codegen.PlanePoolStrided(codegen.PlanePoolSpec{
		H: (s.Rows-1)*s.Stride + s.Window, W: s.W, OH: s.Rows, OW: s.OW,
		Window: s.Window, Stride: s.Stride, VLEN: s.VLEN,
		AOff: s.AOff, OutOff: s.OutOff,
	}, s.NC)
}

// lowerAvgPool lowers global average pooling over (H*W*N, C) data as a
// column-sum over (H*W, N*C) followed by scaling.
func (st *state) lowerAvgPool(n *graph.Node) error {
	in := st.g.Nodes[n.Inputs[0]]
	N, C, H, W := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	rows, cols := H*W, N*C
	vlen := st.c.Cfg.Core.VLEN()
	inBytes := int64(rows*cols) * 4
	if inBytes+int64(cols)*8 > st.spadBudget() {
		return fmt.Errorf("avgpool input (%d bytes) exceeds scratchpad budget", inBytes)
	}
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	offA := int64(0)
	offSum := (inBytes + 255) &^ 255
	offOut := offSum + 256 + int64(cols)*4

	b := tog.NewBuilder(fmt.Sprintf("avgpool_n%d", n.ID), aName, outName)
	b.Load(aName, npu.DMADesc{Rows: rows, Cols: cols}, tog.AddrExpr{}, tagVecA, offA)
	b.Wait(tagVecA)
	csSpec := codegen.ColSumSpec{Rows: rows, Cols: cols, VLEN: vlen, AOff: offA, OutOff: offSum}
	st.emitComputeKernel(b, csSpec.Signature(), csSpec.Signature()+"@g",
		func() *isa.Program { return codegen.ColSum(csSpec) })
	scSpec := codegen.EltSpec{Op: codegen.EltScale, Rows: 1, Cols: cols, ScaleF: 1 / float32(rows),
		VLEN: vlen, AOff: offSum, OutOff: offOut}
	st.emitComputeKernel(b, scSpec.Signature()+fmt.Sprintf("_s%g", scSpec.ScaleF),
		scSpec.Signature()+"@g", func() *isa.Program { return codegen.Eltwise(scSpec) })
	b.Store(outName, npu.DMADesc{Rows: 1, Cols: cols}, tog.AddrExpr{}, tagVecSt, offOut)
	return st.addTOG(b, n.ID)
}

// lowerTranspose lowers a 2-D transpose as a pure DMA layer through the
// transpose-capable DMA engine.
func (st *state) lowerTranspose(n *graph.Node) error {
	in := st.g.Nodes[n.Inputs[0]]
	rows, cols := in.Shape[0], in.Shape[1]
	outName, _ := st.allocOut(n)
	aName := st.tensorOf[n.Inputs[0]]
	bytes := int64(rows*cols) * 4
	if 2*bytes > st.spadBudget() {
		// Tile by column stripes of the source.
		return st.lowerTransposeTiled(n, rows, cols)
	}
	b := tog.NewBuilder(fmt.Sprintf("transpose_n%d", n.ID), aName, outName)
	b.Load(aName, npu.DMADesc{Rows: rows, Cols: cols, Transpose: true}, tog.AddrExpr{}, tagVecA, 0)
	b.Wait(tagVecA)
	b.Store(outName, npu.DMADesc{Rows: cols, Cols: rows}, tog.AddrExpr{}, tagVecSt, 0)
	return st.addTOG(b, n.ID)
}

func (st *state) lowerTransposeTiled(n *graph.Node, rows, cols int) error {
	outName := st.tensorOf[n.ID]
	aName := st.tensorOf[n.Inputs[0]]
	budget := st.spadBudget()
	ct := int(budget / (int64(rows) * 4) / 2)
	if ct < 1 {
		return fmt.Errorf("transpose of (%d,%d) does not fit scratchpad", rows, cols)
	}
	if ct > cols {
		ct = cols
	}
	b := tog.NewBuilder(fmt.Sprintf("transpose_n%d", n.ID), aName, outName)
	emitDim(b, "c", cols, ct, func(c idx, sz int) {
		b.Load(aName, npu.DMADesc{Rows: rows, Cols: sz, DRAMStride: cols * 4, Transpose: true},
			c.addr(int64(ct)*4), tagVecA, 0)
		b.Wait(tagVecA)
		b.Store(outName, npu.DMADesc{Rows: sz, Cols: rows}, c.addr(int64(ct*rows)*4), tagVecSt, 0)
	})
	return st.addTOG(b, n.ID)
}

func elems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
