package compiler

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/timingsim"
	"repro/internal/tog"
)

// Phase names one compiler pass; PhaseHook and the obs compile spans report
// per-phase host latency under these names.
type Phase string

const (
	// PhaseLower walks the graph: fusion analysis, tensor allocation, tile
	// planning, and TOG structure building (latencies still unresolved).
	PhaseLower Phase = "lower"
	// PhaseCodegen generates the machine-code kernels (isa.Program) for
	// every unique kernel id and measurement signature, in parallel.
	PhaseCodegen Phase = "codegen"
	// PhaseMeasure resolves unique kernel signatures to cycle counts via
	// the Measurer, in parallel with per-signature singleflight.
	PhaseMeasure Phase = "measure"
	// PhaseEmit patches measured latencies into the TOGs in graph order and
	// assembles the final Compiled — deterministic regardless of worker
	// count or measurement completion order.
	PhaseEmit Phase = "emit"
)

// Phases lists the passes in execution order.
func Phases() []Phase { return []Phase{PhaseLower, PhaseCodegen, PhaseMeasure, PhaseEmit} }

// Measurer times one kernel on a core model. The default implementation
// wraps timingsim.MeasureKernel (the offline ILS pass of §3.8); tests
// substitute counters or canned tables.
type Measurer interface {
	Measure(cfg npu.CoreConfig, p *isa.Program) (int64, error)
}

// TimingMeasurer is the production Measurer: the deterministic core timing
// pipeline over the functional simulator.
type TimingMeasurer struct{}

// Measure implements Measurer.
func (TimingMeasurer) Measure(cfg npu.CoreConfig, p *isa.Program) (int64, error) {
	res, err := timingsim.MeasureKernel(cfg, p, nil)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// kernelReq is one unique kernel id whose program the codegen pass must
// generate for the Compiled.Kernels map (functional execution).
type kernelReq struct {
	id   string
	gen  func() *isa.Program
	prog *isa.Program
}

// measureReq is one unique kernel signature the measure pass must resolve.
// The representative program comes from the signature's first occurrence and
// is generated lazily, inside the singleflight winner, so cache hits (warm
// restarts, autotune candidates) skip codegen for it entirely. Latencies
// depend only on the signature (never on scratchpad offsets), which is the
// invariant the latency cache has always relied on.
type measureReq struct {
	sig string
	gen func() *isa.Program
}

// latPatch marks one TOG compute node awaiting its measured latency.
type latPatch struct {
	node int // node id inside the pending builder
	sig  string
}

// pendingTOG is a lowered-but-unresolved TOG: structure complete, compute
// latencies to be patched in the emit pass.
type pendingTOG struct {
	b       *tog.Builder
	node    int // graph node this TOG implements
	patches []latPatch
}

// workers resolves the configured fan-out width.
func (c *Compiler) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel runs f(0..n-1) on up to workers goroutines. The returned
// error is the lowest-index failure — the same one a serial loop would have
// returned first — so error behavior stays deterministic under parallelism.
func runParallel(n, workers int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// phase wraps one pass with host-time accounting: PhaseHook gets the
// duration, and the obs probe (when attached) gets a span on the compile
// track in microseconds relative to t0.
func (c *Compiler) phase(t0 time.Time, name Phase, f func() error) error {
	start := time.Now()
	err := f()
	end := time.Now()
	if c.PhaseHook != nil {
		c.PhaseHook(name, end.Sub(start))
	}
	if c.Probe != nil {
		c.Probe.Span(obs.CompileTrack, string(name),
			start.Sub(t0).Microseconds(), end.Sub(t0).Microseconds(), obs.SpanInfo{})
	}
	return err
}

// codegenPass generates the program for every unique kernel id (the
// functional-execution kernels of Compiled.Kernels). Program generation is
// pure, so the fan-out needs no coordination beyond slice slots.
func (c *Compiler) codegenPass(st *state) error {
	return runParallel(len(st.kernelReqs), c.workers(), func(i int) error {
		st.kernelReqs[i].prog = st.kernelReqs[i].gen()
		return nil
	})
}

// measurePass resolves every unique signature through the shared latency
// cache. Signatures already cached (same-process reuse or a persisted table
// seeded from disk) cost a map lookup; the rest fan out across the worker
// pool, singleflighted per signature so concurrent Compile calls — even on
// different Compilers sharing the cache — never duplicate a measurement.
func (c *Compiler) measurePass(st *state) error {
	m := c.Measurer
	if m == nil {
		m = TimingMeasurer{}
	}
	return runParallel(len(st.measureReqs), c.workers(), func(i int) error {
		req := st.measureReqs[i]
		c.lookups.Add(1)
		_, measured, err := c.lat.resolve(req.sig, func() (int64, error) {
			return m.Measure(c.Cfg.Core, req.gen())
		})
		if err != nil {
			return fmt.Errorf("compiler: measuring %q: %w", req.sig, err)
		}
		if measured {
			c.measured.Add(1)
		}
		return nil
	})
}

// emitPass patches resolved latencies into the pending TOGs and builds them
// in graph order, then fills the kernel map — the only pass that writes the
// Compiled, so its output is identical however the fan-out interleaved.
func (c *Compiler) emitPass(st *state) error {
	for _, p := range st.pending {
		for _, patch := range p.patches {
			lat, ok := c.lat.Get(patch.sig)
			if !ok {
				return fmt.Errorf("compiler: internal: signature %q unresolved at emit", patch.sig)
			}
			if err := p.b.PatchComputeCycles(patch.node, lat); err != nil {
				return fmt.Errorf("compiler: internal: %w", err)
			}
		}
		g, err := p.b.Build()
		if err != nil {
			n := st.g.Nodes[p.node]
			return fmt.Errorf("compiler: node %d (%s %q): %w", n.ID, n.Op, n.Name, err)
		}
		st.out.TOGs = append(st.out.TOGs, g)
		st.out.LayerOf = append(st.out.LayerOf, p.node)
	}
	for _, req := range st.kernelReqs {
		st.out.Kernels[req.id] = req.prog
	}
	return nil
}
