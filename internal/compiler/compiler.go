// Package compiler is the NPU backend (the role of the paper's custom
// Inductor backend + MLIR/LLVM lowering, §3.6): it takes a captured graph,
// applies operator fusion, chooses tilings and activation layouts, generates
// machine-code kernels per unique tile shape, measures their deterministic
// latencies on the core timing model (offline ILS, §3.8), and emits one
// Tile Operation Graph per layer for TOGSim, plus the DRAM tensor map.
//
// Layout convention: 4-D activations are stored in DRAM as (H*W*N, C)
// row-major — the HWNC layout of §3.6.3 — so convolutions, pooling, and
// folded batch-norm all become matrix-shaped tile operations. 2-D tensors
// are plain row-major.
package compiler

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/tog"
	"repro/internal/togsim"
)

// DMAMode selects DMA decomposition (§3.6.3, Fig. 8a).
type DMAMode int

const (
	// DMASelective is fine-grained DMA except for operands whose stripe
	// exceeds FineThresholdBytes (the paper's SFG-DMA).
	DMASelective DMAMode = iota
	// DMACoarse loads whole tile stripes with single DMAs.
	DMACoarse
	// DMAFine decomposes loads to SA-panel granularity (FG-DMA).
	DMAFine
)

func (m DMAMode) String() string {
	switch m {
	case DMACoarse:
		return "coarse"
	case DMAFine:
		return "fine"
	default:
		return "selective"
	}
}

// Options control the compiler's optimizations.
type Options struct {
	Fusion             bool    // fuse bias/BN/activation epilogues into GEMM/CONV
	DMA                DMAMode // DMA decomposition strategy
	ConvLayoutOpt      bool    // HWC / HNWC tilings for batch-1 / small-C convs
	MaxMt              int     // cap on M-tile rows (0 = default 256)
	FineThresholdBytes int     // SFG: stripes above this stay coarse (0 = 2 MiB)
}

// DefaultOptions enables every optimization, as the paper's evaluation does.
func DefaultOptions() Options {
	return Options{Fusion: true, DMA: DMASelective, ConvLayoutOpt: true}
}

// TileCandidates returns the option sets the autotuner sweeps: the default
// heuristic plus capped M-tile variants. Smaller M tiles trade scratchpad
// reuse for finer DMA-compute overlap; which wins depends on the layer's
// aspect ratio and the memory system, which is exactly why the sweep runs
// each candidate through TLS instead of scoring a static model.
func TileCandidates() []Options {
	base := DefaultOptions()
	out := []Options{base}
	for _, mt := range []int{32, 64, 128} {
		o := base
		o.MaxMt = mt
		out = append(out, o)
	}
	return out
}

func (o Options) maxMt() int {
	if o.MaxMt > 0 {
		return o.MaxMt
	}
	return 256
}

func (o Options) fineThreshold() int {
	if o.FineThresholdBytes > 0 {
		return o.FineThresholdBytes
	}
	return 2 << 20
}

// Compiled is the backend's output for one graph: TOGs in execution order,
// the DRAM tensor map, and the kernel programs for functional execution.
type Compiled struct {
	Name    string
	TOGs    []*tog.TOG
	Bases   map[string]uint64 // tensor name -> DRAM base address
	Kernels map[string]*isa.Program
	// TensorBytes records each tensor's allocated footprint.
	TensorBytes map[string]int64
	TotalBytes  uint64
	// LayerOf maps each TOG index back to the graph node it implements.
	LayerOf []int
	// OutputTensors names the tensors holding graph outputs.
	OutputTensors map[int]string
	// FunctionalOK reports whether every TOG can be executed functionally
	// (convolution cost-model TOGs cannot; see DESIGN.md).
	FunctionalOK bool

	cfg npu.Config
}

// Job wraps the compiled model as a TOGSim job on the given core.
func (c *Compiled) Job(name string, core, src int) *togsim.Job {
	bases := make([]map[string]uint64, len(c.TOGs))
	for i := range bases {
		bases[i] = c.Bases
	}
	return &togsim.Job{Name: name, TOGs: c.TOGs, Bases: bases, Core: core, Src: src}
}

// Compiler lowers graphs through the staged pass pipeline (lower → codegen
// → measure → emit) and caches kernel latencies across compilations (the
// paper's TOG cache, §3.10: latencies measured offline are reused over
// simulations). A Compiler is safe for concurrent Compile calls: per-call
// state lives in the pass pipeline's state value, the latency cache is
// thread-safe with per-signature singleflight, and the counters are atomic.
type Compiler struct {
	Cfg  npu.Config
	Opts Options

	// Workers caps the codegen/measure fan-out (0 = GOMAXPROCS). The
	// output is bit-identical for every worker count — parallelism only
	// changes wall-clock time.
	Workers int
	// Measurer times kernels on the core model; nil selects
	// TimingMeasurer (the real timing simulator). Tests substitute fakes.
	Measurer Measurer
	// Probe, when non-nil, receives per-pass host-time spans on
	// obs.CompileTrack (microseconds since the Compile call began).
	Probe obs.Probe
	// PhaseHook, when non-nil, is called after each pass with its host
	// duration — the service uses it to feed compile-phase histograms.
	PhaseHook func(Phase, time.Duration)

	lat      *LatencyCache
	measured atomic.Int64 // timing-simulator invocations by this compiler
	lookups  atomic.Int64 // signature resolutions requested (incl. hits)
}

// New returns a compiler for the target NPU with a private latency cache.
func New(cfg npu.Config, opts Options) *Compiler {
	return NewShared(cfg, opts, NewLatencyCache())
}

// NewShared returns a compiler backed by an existing latency cache, so
// several compilers (autotune candidates, a service's per-core pool) share
// measurements. All sharers must target the same npu.CoreConfig.
func NewShared(cfg npu.Config, opts Options, lc *LatencyCache) *Compiler {
	if lc == nil {
		lc = NewLatencyCache()
	}
	return &Compiler{Cfg: cfg, Opts: opts, lat: lc}
}

// Cache exposes the compiler's latency cache for sharing via NewShared.
func (c *Compiler) Cache() *LatencyCache { return c.lat }

// MeasureCount reports actual timing-simulator invocations by this compiler
// (cache misses it resolved itself), exposed for tests and reporting.
func (c *Compiler) MeasureCount() int64 { return c.measured.Load() }

// Stats is a concurrency-safe snapshot of the compiler's measurement work.
type Stats struct {
	// MeasureCount is the number of timing-simulator invocations performed
	// by this compiler (signatures it resolved itself).
	MeasureCount int64
	// SigLookups is the number of signature resolutions requested,
	// including cache hits and waits on another compiler's measurement.
	SigLookups int64
	// CachedSigs is the number of signatures resident in the (possibly
	// shared) latency cache.
	CachedSigs int
}

// Stats returns a consistent snapshot of the measurement counters.
func (c *Compiler) Stats() Stats {
	return Stats{
		MeasureCount: c.measured.Load(),
		SigLookups:   c.lookups.Load(),
		CachedSigs:   c.lat.Len(),
	}
}

// Latencies returns a copy of the kernel-latency cache — the tile-latency
// table measured so far. Together with the TOGs it is the whole compiled
// artifact, so a service-level cache can persist both and reseed a fresh
// compiler without re-running the timing simulator.
func (c *Compiler) Latencies() map[string]int64 {
	return c.lat.Snapshot()
}

// SeedLatencies merges previously measured kernel latencies into the cache
// so matching kernels skip the timing simulator. Signatures encode the full
// kernel spec but not the core configuration: only seed tables measured on
// the same npu.CoreConfig.
func (c *Compiler) SeedLatencies(lat map[string]int64) {
	c.lat.Seed(lat)
}

// state carries per-compilation context. One state lives for one Compile
// call and is handed from pass to pass: the lower pass fills the pending
// TOGs and the kernel/measure work lists, codegen and measure consume the
// lists in parallel, and the emit pass assembles the output — so concurrent
// Compile calls on one Compiler never share mutable per-call state.
type state struct {
	c    *Compiler
	g    *graph.Graph
	out  *Compiled
	next uint64 // bump allocator cursor

	// tensorOf maps node ID to the name of the tensor holding its value
	// (fused nodes map to their group's output tensor).
	tensorOf map[int]string
	// fusion results.
	fusedInto map[int]int      // member node -> group root
	groupEpi  map[int]groupEpi // root -> epilogue info

	// pending holds lowered TOG builders awaiting latency patching, in
	// graph order; curPatches accumulates the patches of the TOG being
	// lowered right now (moved into pending by addTOG).
	pending    []pendingTOG
	curPatches []latPatch
	// kernelReqs / measureReqs are the deduplicated work lists for the
	// codegen and measure passes, in first-occurrence (lowering) order so
	// the schedule — and therefore error selection — is deterministic.
	kernelReqs  []kernelReq
	seenKernel  map[string]bool
	measureReqs []measureReq
	seenMeasure map[string]bool
}

type groupEpi struct {
	epi       codegen.Epilogue
	biasNode  int // bias_add's bias input node (-1 if none)
	gammaNode int // scale_shift gamma (-1 if none)
	betaNode  int
	outNode   int // last node of the group (its consumers read the tensor)
}

const allocAlign = 4096

// alloc reserves DRAM space for a named tensor.
func (st *state) alloc(name string, bytes int64) {
	if _, dup := st.out.Bases[name]; dup {
		panic(fmt.Sprintf("compiler: tensor %q allocated twice", name))
	}
	st.out.Bases[name] = st.next
	st.out.TensorBytes[name] = bytes
	st.next += (uint64(bytes) + allocAlign - 1) &^ (allocAlign - 1)
}

// tensorName returns the canonical tensor name for a node's value.
func tensorName(n *graph.Node) string {
	switch n.Op {
	case graph.OpInput, graph.OpParam, graph.OpConst:
		return n.Name
	default:
		return fmt.Sprintf("t%d", n.ID)
	}
}

// spadBudget is the scratchpad bytes available to one context (two
// double-buffered contexts share the core's scratchpad, §3.3.1).
func (st *state) spadBudget() int64 {
	return int64(st.c.Cfg.Core.SpadBytes) / 2
}

// Compile lowers g for the target NPU through the four-pass pipeline. The
// result is bit-identical regardless of Workers and of what the latency
// cache already contains: lowering fixes the TOG structure and the work
// lists, parallel passes only fill pre-assigned slots, and the emit pass
// assembles everything in graph order.
func (c *Compiler) Compile(g *graph.Graph) (*Compiled, error) {
	if err := c.Cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if err := c.Cfg.Energy.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	st := &state{
		c: c,
		g: g,
		out: &Compiled{
			Name:          g.Name,
			Bases:         map[string]uint64{},
			Kernels:       map[string]*isa.Program{},
			TensorBytes:   map[string]int64{},
			OutputTensors: map[int]string{},
			FunctionalOK:  true,
			cfg:           c.Cfg,
		},
		tensorOf:    map[int]string{},
		fusedInto:   map[int]int{},
		groupEpi:    map[int]groupEpi{},
		seenKernel:  map[string]bool{},
		seenMeasure: map[string]bool{},
	}
	t0 := time.Now()
	for _, p := range []struct {
		name Phase
		run  func(*state) error
	}{
		{PhaseLower, c.lowerPass},
		{PhaseCodegen, c.codegenPass},
		{PhaseMeasure, c.measurePass},
		{PhaseEmit, c.emitPass},
	} {
		run := p.run
		if err := c.phase(t0, p.name, func() error { return run(st) }); err != nil {
			return nil, err
		}
	}
	return st.out, nil
}

// lowerPass walks the graph: fusion analysis, tensor allocation, and TOG
// structure building. It records every kernel/measure request but invokes
// neither codegen nor the timing simulator.
func (c *Compiler) lowerPass(st *state) error {
	g := st.g
	st.analyzeFusion()

	// Allocate all leaf tensors up front — fused epilogues may reference
	// parameters declared after their group root in graph order.
	for _, n := range g.Nodes {
		switch n.Op {
		case graph.OpInput, graph.OpParam, graph.OpConst:
			name := tensorName(n)
			st.tensorOf[n.ID] = name
			st.alloc(name, st.storageBytes(n))
		}
	}
	// Lower compute nodes.
	for _, n := range g.Nodes {
		switch n.Op {
		case graph.OpInput, graph.OpParam, graph.OpConst:
			continue
		}
		if err := st.lowerNode(n); err != nil {
			return fmt.Errorf("compiler: node %d (%s %q): %w", n.ID, n.Op, n.Name, err)
		}
	}
	for _, o := range g.Outputs {
		st.out.OutputTensors[o] = st.tensorOf[o]
	}
	st.out.TotalBytes = st.next
	return nil
}

// analyzeFusion groups GEMM/CONV roots with single-consumer epilogue chains
// (bias_add, scale_shift, relu, gelu) — the fusions of §3.6.3/§3.6.4.
func (st *state) analyzeFusion() {
	if !st.c.Opts.Fusion {
		return
	}
	g := st.g
	consumers := make([][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in] = append(consumers[in], n.ID)
		}
	}
	outputSet := map[int]bool{}
	for _, o := range g.Outputs {
		outputSet[o] = true
	}
	for _, n := range g.Nodes {
		switch n.Op {
		case graph.OpMatMul, graph.OpMatMulTA, graph.OpMatMulTB, graph.OpConv2D:
		default:
			continue
		}
		ge := groupEpi{biasNode: -1, gammaNode: -1, betaNode: -1, outNode: n.ID}
		cur := n.ID
		for {
			if outputSet[cur] || len(consumers[cur]) != 1 {
				break
			}
			next := g.Nodes[consumers[cur][0]]
			if next.Inputs[0] != cur {
				break
			}
			switch next.Op {
			case graph.OpBiasAdd:
				if ge.epi.Bias || ge.epi.ReLU || ge.epi.GELU {
					goto done
				}
				ge.epi.Bias = true
				ge.biasNode = next.Inputs[1]
			case graph.OpScaleShift:
				if n.Op != graph.OpConv2D || ge.epi.ScaleShift || ge.epi.ReLU {
					goto done
				}
				ge.epi.ScaleShift = true
				ge.gammaNode = next.Inputs[1]
				ge.betaNode = next.Inputs[2]
			case graph.OpReLU:
				if ge.epi.ReLU || ge.epi.GELU {
					goto done
				}
				ge.epi.ReLU = true
			case graph.OpGELU:
				if ge.epi.ReLU || ge.epi.GELU {
					goto done
				}
				ge.epi.GELU = true
			default:
				goto done
			}
			ge.outNode = next.ID
			st.fusedInto[next.ID] = n.ID
			cur = next.ID
		}
	done:
		if ge.outNode != n.ID {
			st.groupEpi[n.ID] = ge
		}
	}
}

// lowerNode dispatches one graph node.
func (st *state) lowerNode(n *graph.Node) error {
	// Fused members were handled with their root.
	if root, fused := st.fusedInto[n.ID]; fused {
		st.tensorOf[n.ID] = st.tensorOf[root]
		return nil
	}
	switch n.Op {
	case graph.OpReshape:
		// A view: alias the input tensor.
		st.tensorOf[n.ID] = st.tensorOf[n.Inputs[0]]
		return nil
	case graph.OpMatMul:
		return st.lowerMatMul(n, false, false)
	case graph.OpMatMulTA:
		return st.lowerMatMul(n, true, false)
	case graph.OpMatMulTB:
		return st.lowerMatMul(n, false, true)
	case graph.OpConv2D:
		return st.lowerConv(n)
	case graph.OpAdd:
		return st.lowerEltwiseBinary(n, codegen.EltAdd)
	case graph.OpMul:
		return st.lowerEltwiseBinary(n, codegen.EltMul)
	case graph.OpReLUGrad:
		return st.lowerEltwiseBinary(n, codegen.EltReLUGrad)
	case graph.OpReLU:
		return st.lowerEltwiseUnary(n, codegen.EltReLU, 0)
	case graph.OpGELU:
		return st.lowerEltwiseUnary(n, codegen.EltGELU, 0)
	case graph.OpTanh:
		return st.lowerEltwiseUnary(n, codegen.EltTanh, 0)
	case graph.OpScale:
		return st.lowerEltwiseUnary(n, codegen.EltScale, n.ScaleF)
	case graph.OpBiasAdd:
		return st.lowerBiasAdd(n)
	case graph.OpScaleShift:
		return st.lowerScaleShift(n)
	case graph.OpSoftmax:
		return st.lowerSoftmax(n)
	case graph.OpLayerNorm:
		return st.lowerLayerNorm(n)
	case graph.OpRMSNorm:
		return st.lowerRMSNorm(n)
	case graph.OpColSum:
		return st.lowerColSum(n)
	case graph.OpSGDUpdate:
		return st.lowerSGD(n)
	case graph.OpAXPBY:
		return st.lowerAXPBY(n)
	case graph.OpAdamStep:
		return st.lowerAdam(n)
	case graph.OpSoftmaxCE:
		return st.lowerSoftmaxCE(n, false)
	case graph.OpSoftmaxCEGrad:
		return st.lowerSoftmaxCE(n, true)
	case graph.OpMaxPool:
		return st.lowerMaxPool(n)
	case graph.OpAvgPool:
		return st.lowerAvgPool(n)
	case graph.OpTranspose:
		return st.lowerTranspose(n)
	case graph.OpAllReduce, graph.OpAllGather, graph.OpReduceScatter:
		return st.lowerCollective(n)
	case graph.OpSparseMM:
		return fmt.Errorf("sparse_mm lowers through the sparse-core backend (internal/sparsecore), not the dense compiler")
	default:
		return fmt.Errorf("unsupported op %q", n.Op)
	}
}

// storageBytes returns a node's tensor footprint. 4-D activations and
// filters are stored flattened per the layout convention.
func (st *state) storageBytes(n *graph.Node) int64 {
	elems := int64(1)
	for _, d := range n.Shape {
		elems *= int64(d)
	}
	return elems * 4
}

// allocOut allocates the output tensor of a (possibly fused) layer rooted at
// n and returns its name plus the fusion epilogue info.
func (st *state) allocOut(n *graph.Node) (string, groupEpi) {
	ge, fused := st.groupEpi[n.ID]
	if !fused {
		ge = groupEpi{biasNode: -1, gammaNode: -1, betaNode: -1, outNode: n.ID}
	}
	name := tensorName(st.g.Nodes[ge.outNode])
	st.tensorOf[n.ID] = name
	st.alloc(name, st.storageBytes(st.g.Nodes[ge.outNode]))
	return name, ge
}

// computeKernel emits a compute node with a zero-cycle placeholder and
// registers the work it depends on: its kernel id for the codegen pass,
// its signature for the measure pass (both deduplicated, in lowering
// order), and a latency patch the emit pass applies once measured.
func (st *state) computeKernel(b *tog.Builder, unit tog.Unit, sig, id string, gen func() *isa.Program) {
	if !st.seenKernel[id] {
		st.seenKernel[id] = true
		st.kernelReqs = append(st.kernelReqs, kernelReq{id: id, gen: gen})
	}
	if !st.seenMeasure[sig] {
		st.seenMeasure[sig] = true
		st.measureReqs = append(st.measureReqs, measureReq{sig: sig, gen: gen})
	}
	b.ComputeKernel(unit, 0, id)
	st.curPatches = append(st.curPatches, latPatch{node: b.LastNodeID(), sig: sig})
}

// addTOG records a lowered TOG (with its accumulated latency patches) for
// the emit pass, which patches, validates, and appends it in graph order.
func (st *state) addTOG(b *tog.Builder, node int) error {
	st.pending = append(st.pending, pendingTOG{b: b, node: node, patches: st.curPatches})
	st.curPatches = nil
	return nil
}

// idx is a loop-position reference: either a symbolic loop variable or a
// constant iteration index.
type idx struct {
	v string
	c int64
}

// addr contributes coeff*position to an address expression.
func (p idx) addr(coeff int64) tog.AddrExpr {
	if p.v == "" {
		return tog.AddrExpr{Const: p.c * coeff}
	}
	return tog.AddrExpr{Terms: []tog.AddrTerm{{Var: p.v, Coeff: coeff}}}
}

// addExpr sums address expressions.
func addExpr(es ...tog.AddrExpr) tog.AddrExpr {
	var out tog.AddrExpr
	for _, e := range es {
		out.Const += e.Const
		out.Terms = append(out.Terms, e.Terms...)
	}
	return out
}
