package compiler

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/npu"
	"repro/internal/tog"
)

// gemmTiles is the chosen tiling of a GEMM-shaped layer.
type gemmTiles struct {
	Mt, Kt, Nt int
	// spad layout (byte offsets inside the context's scratchpad slice)
	offA, offB, offOut         int64
	offBias, offGamma, offBeta int64
	fineA, fineB               bool
}

// planGEMM picks tile sizes maximizing scratchpad utilization (the
// Gemmini-like heuristic of §3.6.3) and decides DMA granularity per operand
// according to the DMA mode.
func (st *state) planGEMM(M, K, N int, epi codegen.Epilogue) (gemmTiles, error) {
	core := st.c.Cfg.Core
	t := gemmTiles{Kt: minInt(K, core.SARows), Nt: minInt(N, core.SACols)}
	budget := st.spadBudget()
	// floats: Mt*K (A stripe) + K*Nt (B stripe) + Mt*Nt (out) + 3*Nt (epi rows)
	avail := budget/4 - int64(K)*int64(t.Nt) - 3*int64(t.Nt)
	if avail <= 0 {
		return t, fmt.Errorf("weight stripe (K=%d, Nt=%d) exceeds scratchpad budget %d", K, t.Nt, budget)
	}
	mt := avail / int64(K+t.Nt)
	if mt < 1 {
		return t, fmt.Errorf("no room for input stripe (K=%d) in scratchpad budget %d", K, budget)
	}
	t.Mt = minInt(M, minInt(int(mt), st.c.Opts.maxMt()))

	// Scratchpad layout.
	cur := int64(0)
	take := func(bytes int64) int64 {
		off := cur
		cur += (bytes + 255) &^ 255
		return off
	}
	t.offA = take(int64(t.Mt) * int64(K) * 4)
	t.offB = take(int64(K) * int64(t.Nt) * 4)
	t.offOut = take(int64(t.Mt) * int64(t.Nt) * 4)
	t.offBias = take(int64(t.Nt) * 4)
	t.offGamma = take(int64(t.Nt) * 4)
	t.offBeta = take(int64(t.Nt) * 4)
	if cur > budget {
		return t, fmt.Errorf("tile set (%d bytes) exceeds scratchpad budget %d", cur, budget)
	}

	// DMA granularity per operand (§3.6.3; Fig. 8a).
	switch st.c.Opts.DMA {
	case DMAFine:
		t.fineA, t.fineB = true, true
	case DMACoarse:
	default: // selective: fine unless the stripe is large
		thr := int64(st.c.Opts.fineThreshold())
		t.fineA = int64(t.Mt)*int64(K)*4 <= thr
		t.fineB = int64(K)*int64(t.Nt)*4 <= thr
	}
	return t, nil
}

// gemmOperand describes how to fetch one GEMM operand from DRAM.
type gemmOperand struct {
	tensor    string
	rowBytes  int64 // DRAM row pitch of the stored matrix
	transpose bool  // stored transposed (load through the transpose DMA)
}

// lowerMatMul lowers matmul / matmul_ta / matmul_tb.
func (st *state) lowerMatMul(n *graph.Node, aT, bT bool) error {
	g := st.g
	a, b := g.Nodes[n.Inputs[0]], g.Nodes[n.Inputs[1]]
	M, N := n.Shape[0], n.Shape[1]
	var K int
	if aT {
		K = a.Shape[0]
	} else {
		K = a.Shape[1]
	}
	outName, ge := st.allocOut(n)
	tiles, err := st.planGEMM(M, K, N, ge.epi)
	if err != nil {
		return err
	}
	aOp := gemmOperand{tensor: st.tensorOf[a.ID], rowBytes: int64(a.Shape[1]) * 4, transpose: aT}
	bOp := gemmOperand{tensor: st.tensorOf[b.ID], rowBytes: int64(b.Shape[1]) * 4, transpose: bT}
	return st.emitGEMMTOG(gemmEmit{
		name: fmt.Sprintf("%s_n%d", n.Op, n.ID),
		node: n.ID,
		M:    M, K: K, N: N,
		tiles: tiles,
		a:     aOp, b: bOp,
		out:      outName,
		outPitch: int64(N) * 4,
		epi:      ge,
	})
}

// gemmEmit bundles everything emitGEMMTOG needs.
type gemmEmit struct {
	name     string
	node     int
	M, K, N  int
	tiles    gemmTiles
	a, b     gemmOperand
	out      string
	outPitch int64
	epi      groupEpi
}

// DMA tag conventions inside a GEMM TOG.
const (
	tagAStripe = 1
	tagBStripe = 2
	tagEpi     = 3
	tagStore   = 4
	tagABase   = 100 // + panel index (fine-grained A)
	tagBBase   = 300 // + panel index (fine-grained B)
)

// emitGEMMTOG emits the tiled GEMM TOG: hoisted A stripes per M-tile, B
// stripes per (M,N) tile, K-panel compute with accumulation, fused epilogue
// on the last panel, asynchronous output stores.
func (st *state) emitGEMMTOG(e gemmEmit) error {
	b := tog.NewBuilder(e.name, e.a.tensor, e.b.tensor, e.out)
	t := e.tiles
	epi := e.epi.epi
	if epi.Bias {
		b.DeclareTensor(st.tensorOf[e.epi.biasNode])
	}
	if epi.ScaleShift {
		b.DeclareTensor(st.tensorOf[e.epi.gammaNode])
		b.DeclareTensor(st.tensorOf[e.epi.betaNode])
	}

	panels := panelSizes(e.K, t.Kt)

	// loadA loads panel ko (or the whole stripe when ko < 0) of the mt x K
	// input stripe for M-tile mo.
	loadA := func(mo idx, mt, ko int, tag int) {
		if !e.a.transpose {
			desc := npu.DMADesc{Rows: mt, Cols: e.K, DRAMStride: int(e.a.rowBytes)}
			off := mo.addr(int64(t.Mt) * e.a.rowBytes)
			spad := t.offA
			if ko >= 0 {
				desc.Cols = panels[ko]
				desc.SpadStride = e.K * 4
				off = addExpr(off, tog.AddrExpr{Const: int64(ko * t.Kt * 4)})
				spad += int64(ko * t.Kt * 4)
			}
			b.Load(e.a.tensor, desc, off, tag, spad)
			return
		}
		// A stored (K, M): transpose-load columns [mo*Mt, +mt).
		desc := npu.DMADesc{Rows: e.K, Cols: mt, DRAMStride: int(e.a.rowBytes), Transpose: true, SpadStride: e.K * 4}
		off := mo.addr(int64(t.Mt) * 4)
		spad := t.offA
		if ko >= 0 {
			desc.Rows = panels[ko]
			off = addExpr(off, tog.AddrExpr{Const: int64(ko*t.Kt) * e.a.rowBytes})
			spad += int64(ko * t.Kt * 4)
		}
		b.Load(e.a.tensor, desc, off, tag, spad)
	}

	// loadB loads panel ko (or whole stripe when ko < 0) of the K x nt
	// weight stripe for N-tile no.
	loadB := func(no idx, nt, ko int, tag int) {
		if !e.b.transpose {
			desc := npu.DMADesc{Rows: e.K, Cols: nt, DRAMStride: int(e.b.rowBytes)}
			off := no.addr(int64(t.Nt) * 4)
			spad := t.offB
			if ko >= 0 {
				desc.Rows = panels[ko]
				off = addExpr(off, tog.AddrExpr{Const: int64(ko*t.Kt) * e.b.rowBytes})
				spad += int64(ko * t.Kt * nt * 4)
			}
			b.Load(e.b.tensor, desc, off, tag, spad)
			return
		}
		// B stored (N, K): transpose-load rows [no*Nt, +nt).
		desc := npu.DMADesc{Rows: nt, Cols: e.K, DRAMStride: int(e.b.rowBytes), Transpose: true, SpadStride: nt * 4}
		off := no.addr(int64(t.Nt) * e.b.rowBytes)
		spad := t.offB
		if ko >= 0 {
			desc.Cols = panels[ko]
			off = addExpr(off, tog.AddrExpr{Const: int64(ko * t.Kt * 4)})
			spad += int64(ko * t.Kt * nt * 4)
		}
		b.Load(e.b.tensor, desc, off, tag, spad)
	}

	emitDim(b, "mo", e.M, t.Mt, func(mo idx, mt int) {
		if t.fineA {
			for ko := range panels {
				loadA(mo, mt, ko, tagABase+ko)
			}
		} else {
			loadA(mo, mt, -1, tagAStripe)
		}
		emitDim(b, "no", e.N, t.Nt, func(no idx, nt int) {
			if epi.Bias {
				b.Load(st.tensorOf[e.epi.biasNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(t.Nt)*4), tagEpi, t.offBias)
			}
			if epi.ScaleShift {
				b.Load(st.tensorOf[e.epi.gammaNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(t.Nt)*4), tagEpi, t.offGamma)
				b.Load(st.tensorOf[e.epi.betaNode], npu.DMADesc{Rows: 1, Cols: nt}, no.addr(int64(t.Nt)*4), tagEpi, t.offBeta)
			}
			if t.fineB {
				for ko := range panels {
					loadB(no, nt, ko, tagBBase+ko)
				}
			} else {
				loadB(no, nt, -1, tagBStripe)
			}
			for ko, kt := range panels {
				if t.fineA {
					b.Wait(tagABase + ko)
				} else if ko == 0 {
					b.Wait(tagAStripe)
				}
				if t.fineB {
					b.Wait(tagBBase + ko)
				} else if ko == 0 {
					b.Wait(tagBStripe)
				}
				last := ko == len(panels)-1
				spec := codegen.GEMMSpec{
					M: mt, K: kt, N: nt,
					Accumulate:  ko > 0,
					InOff:       t.offA + int64(ko*t.Kt*4),
					WOff:        t.offB + int64(ko*t.Kt*nt*4),
					OutOff:      t.offOut,
					InRowStride: int64(e.K) * 4,
				}
				if last {
					spec.Epi = epi
					if last && (epi.Bias || epi.ScaleShift) {
						b.Wait(tagEpi)
					}
					spec.BiasOff = t.offBias
					spec.GammaOff = t.offGamma
					spec.BetaOff = t.offBeta
				}
				st.emitComputeGEMM(b, spec)
			}
			// Store the finished tile.
			desc := npu.DMADesc{Rows: mt, Cols: nt, DRAMStride: int(e.outPitch)}
			off := addExpr(mo.addr(int64(t.Mt)*e.outPitch), no.addr(int64(t.Nt)*4))
			b.Store(e.out, desc, off, tagStore, t.offOut)
		})
	})
	b.SetSpadBytes(st.spadBudget())
	return st.addTOG(b, e.node)
}

// emitComputeGEMM emits the panel kernel's compute node, deferring codegen
// and latency measurement to the parallel passes.
func (st *state) emitComputeGEMM(b *tog.Builder, spec codegen.GEMMSpec) {
	sig := spec.Signature()
	id := fmt.Sprintf("%s@%d_%d_%d", sig, spec.InOff, spec.WOff, spec.OutOff)
	st.computeKernel(b, tog.UnitSA, sig, id, func() *isa.Program { return codegen.GEMM(spec) })
}

// panelSizes splits K into SA-depth panels.
func panelSizes(K, Kt int) []int {
	var out []int
	for k := 0; k < K; k += Kt {
		kt := Kt
		if K-k < kt {
			kt = K - k
		}
		out = append(out, kt)
	}
	return out
}

// emitDim iterates the tile regions of one dimension: a symbolic loop over
// the full tiles plus an unrolled edge tile.
func emitDim(b *tog.Builder, varName string, total, tile int, f func(pos idx, size int)) {
	full := total / tile
	edge := total % tile
	switch {
	case full == 1:
		f(idx{c: 0}, tile)
	case full > 1:
		b.Loop(varName, 0, int64(full), 1)
		f(idx{v: varName}, tile)
		b.EndLoop()
	}
	if edge > 0 {
		f(idx{c: int64(full)}, edge)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
