package compiler

import "sync"

// LatencyCache is the thread-safe kernel-latency table (the paper's
// tile-latency / TOG cache, §3.10): measured cycle counts keyed by kernel
// signature. One cache can back any number of Compilers concurrently — the
// autotune sweep and the service's per-core tables share a single instance
// so a kernel shape is measured at most once per process, with singleflight
// so concurrent compilations needing the same signature block on one
// measurement instead of duplicating it.
//
// Signatures encode the full kernel spec but not the core configuration:
// share a cache only between compilers targeting the same npu.CoreConfig.
type LatencyCache struct {
	mu       sync.Mutex
	m        map[string]int64
	inflight map[string]chan struct{}
}

// NewLatencyCache returns an empty latency cache.
func NewLatencyCache() *LatencyCache {
	return &LatencyCache{m: map[string]int64{}, inflight: map[string]chan struct{}{}}
}

// Get returns the cached latency for a signature.
func (lc *LatencyCache) Get(sig string) (int64, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	v, ok := lc.m[sig]
	return v, ok
}

// Len reports the number of cached signatures.
func (lc *LatencyCache) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.m)
}

// Snapshot returns a copy of the table — together with the TOGs it is the
// whole compiled artifact, so persistent tiers serialize exactly this.
func (lc *LatencyCache) Snapshot() map[string]int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make(map[string]int64, len(lc.m))
	for k, v := range lc.m {
		out[k] = v
	}
	return out
}

// Seed merges previously measured latencies (e.g. a table loaded from the
// persistent artifact store) into the cache.
func (lc *LatencyCache) Seed(m map[string]int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for k, v := range m {
		lc.m[k] = v
	}
}

// resolve returns the latency for sig, running measure at most once across
// all concurrent callers (singleflight). measured reports whether THIS call
// performed the measurement; waiters served by another caller's result (or
// by the cache) return measured=false. A failed measurement is not cached:
// each waiter retries, so transient errors do not poison the signature.
func (lc *LatencyCache) resolve(sig string, measure func() (int64, error)) (lat int64, measured bool, err error) {
	for {
		lc.mu.Lock()
		if v, ok := lc.m[sig]; ok {
			lc.mu.Unlock()
			return v, false, nil
		}
		if done, ok := lc.inflight[sig]; ok {
			lc.mu.Unlock()
			<-done
			continue // winner stored a value or failed; re-check
		}
		done := make(chan struct{})
		lc.inflight[sig] = done
		lc.mu.Unlock()

		v, err := measure()
		lc.mu.Lock()
		delete(lc.inflight, sig)
		if err == nil {
			lc.m[sig] = v
		}
		lc.mu.Unlock()
		close(done)
		if err != nil {
			return 0, false, err
		}
		return v, true, nil
	}
}
