package parallel_test

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/parallel"
	"repro/internal/topo"
)

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]parallel.Strategy{
		"": parallel.None, "none": parallel.None, "single": parallel.None,
		"data": parallel.Data, "tensor": parallel.Tensor,
	} {
		got, err := parallel.ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parallel.ParseStrategy("pipeline"); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestDataParallelAppendsAllReduce(t *testing.T) {
	g := graph.New("g")
	x := g.Input("x", 4, 8)
	w := g.Param("w", 8, 8)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{4, 8}})
	g.Outputs = []int{mm.ID}
	dp := parallel.DataParallel(g, 2)
	if err := dp.Validate(); err != nil {
		t.Fatal(err)
	}
	out := dp.Nodes[dp.Outputs[0]]
	if out.Op != graph.OpAllReduce || out.Parts != 2 {
		t.Fatalf("output should be a 2-part all_reduce, got %s parts=%d", out.Op, out.Parts)
	}
	if len(dp.Nodes) != len(g.Nodes)+1 {
		t.Fatalf("replica should add exactly one node per output")
	}
}

// compileTP compiles the rank-0-normalized tensor-parallel decoder shard
// for the given part count.
func compileTP(t *testing.T, cfg npu.Config, parts int) *compiler.Compiled {
	t.Helper()
	m := nn.DecoderTP(nn.DecoderTinyConfig(2, 8, false), parts)
	comp, err := compiler.New(cfg, compiler.DefaultOptions()).Compile(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if comp.FunctionalOK {
		t.Fatal("collective TOGs must not claim functional executability")
	}
	return comp
}

// TestPlaceAndSimulateTP: a tensor-parallel decoder on 2 packages must run
// to completion, move bytes over the link, attribute collective cycles,
// and stay bit-identical between the serial and parallel engines.
func TestPlaceAndSimulateTP(t *testing.T) {
	cfg := npu.SmallConfig()
	tc, err := topo.Preset("pkg2", cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	tc.PkgAddrBits = 26
	comp := compileTP(t, cfg, 2)
	jobs, err := parallel.PlaceJobs("tp", comp, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Core == jobs[1].Core {
		t.Fatalf("want one job per package, got %+v", jobs)
	}
	res, fab, err := parallel.Simulate(cfg, tc, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fab.LinkFlits == 0 || fab.RemoteBytes == 0 {
		t.Fatal("tensor parallelism must cross the package link")
	}
	for _, jr := range res.Jobs {
		if jr.Collectives == 0 || jr.CollectiveCycles <= 0 {
			t.Fatalf("%s: no collective time attributed: %+v", jr.Name, jr)
		}
		if jr.CollectiveCycles > jr.End-jr.Start {
			t.Fatalf("%s: collective cycles exceed job span", jr.Name)
		}
	}
	jobs2, err := parallel.PlaceJobs("tp", comp, tc)
	if err != nil {
		t.Fatal(err)
	}
	res2, fab2, err := parallel.Simulate(cfg, tc, jobs2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("serial vs workers=2 diverge:\n%+v\n%+v", res, res2)
	}
	if !reflect.DeepEqual(fab.Pkg, fab2.Pkg) {
		t.Fatal("per-package stats diverge across engine modes")
	}
}

// TestPlaceRejectsMismatchedRing: an artifact compiled for 2 parts must
// not place onto a 4-package mesh.
func TestPlaceRejectsMismatchedRing(t *testing.T) {
	cfg := npu.SmallConfig()
	comp := compileTP(t, cfg, 2)
	tc, err := topo.Preset("mesh2x2", cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	tc.PkgAddrBits = 26
	if _, err := parallel.PlaceJobs("tp", comp, tc); err == nil {
		t.Fatal("parts/packages mismatch must be rejected")
	}
}

// TestMeshDataParallel: a data-parallel GEMM on a 2x2 mesh exercises the
// 4-way ring and finishes with every rank's collective accounted.
func TestMeshDataParallel(t *testing.T) {
	cfg := npu.SmallConfig()
	tc, err := topo.Preset("mesh2x2", cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	tc.PkgAddrBits = 26
	g := graph.New("gemm")
	x := g.Input("x", 32, 64)
	w := g.Param("w", 64, 32)
	mm := g.Add(&graph.Node{Op: graph.OpMatMul, Inputs: []int{x.ID, w.ID}, Shape: []int{32, 32}})
	g.Outputs = []int{mm.ID}
	comp, err := compiler.New(cfg, compiler.DefaultOptions()).Compile(parallel.DataParallel(g, 4))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := parallel.PlaceJobs("dp", comp, tc)
	if err != nil {
		t.Fatal(err)
	}
	res, fab, err := parallel.Simulate(cfg, tc, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("want 4 ranks, got %d", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.Collectives != 1 {
			t.Fatalf("%s: want exactly the output all_reduce, got %d regions", jr.Name, jr.Collectives)
		}
	}
	// Each package must have both local traffic and ring-link traffic.
	for p, ps := range fab.Pkg {
		if ps.LinkFlits == 0 {
			t.Fatalf("package %d sent no link flits", p)
		}
	}
}
