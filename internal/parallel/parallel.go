// Package parallel maps sharded workloads onto multi-package topologies:
// it owns the parallelism strategies (data- and tensor-parallel), the
// graph transforms they need, and the placement of rank-0-normalized
// compiled artifacts onto the packages of a topo.Config — one rank per
// package, ring collectives bound around topo's snake ring order.
package parallel

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/graph"
	"repro/internal/npu"
	"repro/internal/tog"
	"repro/internal/togsim"
	"repro/internal/topo"
)

// Strategy selects how a workload spreads across packages.
type Strategy string

const (
	// None runs the whole model on one package (the single-core baseline).
	None Strategy = "none"
	// Data replicates the full graph on every package and all-reduces the
	// outputs (the gradient/output averaging shape of data parallelism).
	Data Strategy = "data"
	// Tensor shards weights across packages (Megatron-style: attention by
	// head, MLP column/row) with activation all-reduces.
	Tensor Strategy = "tensor"
)

// ParseStrategy normalizes a user-facing strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", None, "single":
		return None, nil
	case Data:
		return Data, nil
	case Tensor:
		return Tensor, nil
	default:
		return "", fmt.Errorf("parallel: unknown strategy %q (none|data|tensor)", s)
	}
}

// DataParallel returns the per-rank replica graph of g: the graph copied
// verbatim with an all_reduce appended to every output, so each rank's
// result is the cross-rank average scaled by the replica count — the
// communication shape of synchronous data parallelism (each rank holds a
// full model; outputs/gradients all-reduce). Every rank runs the returned
// graph, making it trivially rank-0-normalized.
func DataParallel(g *graph.Graph, parts int) *graph.Graph {
	out := graph.New(g.Name + fmt.Sprintf("-dp%d", parts))
	for _, n := range g.Nodes {
		cp := *n
		cp.Inputs = append([]int(nil), n.Inputs...)
		cp.Shape = append([]int(nil), n.Shape...)
		out.Nodes = append(out.Nodes, &cp)
	}
	for _, o := range g.Outputs {
		src := out.Nodes[o]
		ar := out.Add(&graph.Node{
			Op: graph.OpAllReduce, Name: fmt.Sprintf("dp_ar_n%d", o), Parts: parts,
			Inputs: []int{src.ID}, Shape: append([]int(nil), src.Shape...),
		})
		out.Outputs = append(out.Outputs, ar.ID)
	}
	return out
}

// PlaceJobs lays one rank-0-normalized compiled artifact out across every
// package of the topology: rank r lands on core 0 of the r-th package in
// ring order, its tensors rebased into that package's address window, and
// each "peer:<x>" tensor bound to <x> on the ring predecessor's package —
// the rotation that turns one compiled schedule into P communicating
// ranks. Jobs are named "<name>.r<rank>".
func PlaceJobs(name string, comp *compiler.Compiled, tc topo.Config) ([]*togsim.Job, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	parts := tc.Packages()
	if comp.TotalBytes > uint64(1)<<tc.PkgAddrBits {
		return nil, fmt.Errorf("parallel: rank footprint %d B exceeds the %d-bit package window",
			comp.TotalBytes, tc.PkgAddrBits)
	}
	// Collectives compiled into the artifact must match the ring size.
	peers := map[string]string{}
	for _, g := range comp.TOGs {
		for _, n := range g.Nodes {
			if tog.IsCollective(n.Kind) && n.Parts != parts {
				return nil, fmt.Errorf("parallel: %s compiled for %d parts, topology %q has %d packages",
					n.Kind, n.Parts, tc.Name, parts)
			}
		}
		for _, t := range g.Tensors {
			if base, ok := compiler.IsPeerTensor(t); ok {
				if _, known := comp.Bases[base]; !known {
					return nil, fmt.Errorf("parallel: peer tensor %q references unallocated %q", t, base)
				}
				peers[t] = base
			}
		}
	}
	order := tc.RingOrder()
	jobs := make([]*togsim.Job, parts)
	for r := 0; r < parts; r++ {
		pkg := order[r]
		prev := order[(r+parts-1)%parts]
		bases := make(map[string]uint64, len(comp.Bases)+len(peers))
		for t, b := range comp.Bases {
			bases[t] = tc.PackageBase(pkg) + b
		}
		for t, base := range peers {
			bases[t] = tc.PackageBase(prev) + comp.Bases[base]
		}
		perTOG := make([]map[string]uint64, len(comp.TOGs))
		for i := range perTOG {
			perTOG[i] = bases
		}
		core := tc.CoreOf(pkg, 0)
		jobs[r] = &togsim.Job{
			Name: fmt.Sprintf("%s.r%d", name, r),
			TOGs: comp.TOGs, Bases: perTOG,
			Core: core, Src: core,
		}
	}
	return jobs, nil
}

// Simulate runs placed jobs on a fresh fabric for the topology. The NPU
// config's core count is overridden to the topology's total; workers > 1
// selects the parallel engine (bit-identical by construction).
func Simulate(cfg npu.Config, tc topo.Config, jobs []*togsim.Job, workers int) (togsim.Result, *topo.Fabric, error) {
	cfg.Cores = tc.TotalCores()
	fab := topo.NewFabric(tc)
	eng := togsim.NewEngine(cfg, fab)
	eng.Workers = workers
	res, err := eng.Run(jobs)
	if err != nil {
		return togsim.Result{}, nil, err
	}
	return res, fab, nil
}
